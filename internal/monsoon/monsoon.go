// Package monsoon emulates the Monsoon power monitor the paper uses to
// measure whole-device power: a battery-terminal sampler at 5 kHz whose
// trace is integrated into energy (paper §IV-A).
//
// The simulator publishes instantaneous device power once per simulation
// step; the monitor resamples that at its own frequency and accumulates
// energy with rectangle integration, exactly as the host-side Monsoon
// software does.
package monsoon

import (
	"fmt"
	"time"

	"aspeo/internal/fpacc"
)

// Monitor integrates a power signal over time.
type Monitor struct {
	sampleHz float64
	// Current sample state.
	lastPowerW float64
	energyJ    float64
	elapsed    time.Duration
	samples    int
	sumPower   float64
	maxPower   float64
	running    bool
}

// New creates a monitor with the given sampling frequency. The real
// instrument runs at 5000 Hz.
func New(sampleHz float64) (*Monitor, error) {
	if sampleHz <= 0 {
		return nil, fmt.Errorf("monsoon: sample rate %v Hz invalid", sampleHz)
	}
	return &Monitor{sampleHz: sampleHz}, nil
}

// Default returns the 5 kHz instrument used in the paper.
func Default() *Monitor {
	m, err := New(5000)
	if err != nil {
		panic(err)
	}
	return m
}

// Start begins a measurement session, resetting accumulated state.
func (m *Monitor) Start() {
	m.energyJ, m.elapsed, m.samples, m.sumPower, m.maxPower = 0, 0, 0, 0, 0
	m.running = true
}

// Running reports whether a session is active.
func (m *Monitor) Running() bool { return m.running }

// Observe feeds the instantaneous device power for the next dt of
// simulated time. The monitor internally resamples at its configured
// frequency; with a constant power over dt the result is exact.
func (m *Monitor) Observe(powerW float64, dt time.Duration) {
	if !m.running || dt <= 0 {
		return
	}
	sec := dt.Seconds()
	n := int(sec*m.sampleHz + 0.5)
	if n < 1 {
		n = 1
	}
	m.lastPowerW = powerW
	m.energyJ += powerW * sec
	m.elapsed += dt
	m.samples += n
	m.sumPower += powerW * float64(n)
	if powerW > m.maxPower {
		m.maxPower = powerW
	}
}

// ObserveN feeds n consecutive constant-power observations of dt each.
// It is bit-identical to calling Observe(powerW, dt) n times: the energy
// and power sums accumulate sequentially (floating-point addition is not
// associative), while the integer sample and elapsed counters batch
// exactly.
func (m *Monitor) ObserveN(powerW float64, dt time.Duration, n int) {
	if !m.running || dt <= 0 || n <= 0 {
		return
	}
	sec := dt.Seconds()
	k := int(sec*m.sampleHz + 0.5)
	if k < 1 {
		k = 1
	}
	m.lastPowerW = powerW
	e, sp := powerW*sec, powerW*float64(k)
	for i := 0; i < n; i++ {
		m.energyJ += e
		m.sumPower += sp
	}
	m.elapsed += time.Duration(n) * dt
	m.samples += n * k
	if powerW > m.maxPower {
		m.maxPower = powerW
	}
}

// ObserveSpan is ObserveN in closed form: it produces bit-identical
// accumulator state to n sequential Observe(powerW, dt) calls, but in
// time logarithmic in n (fpacc.AddK fast-forwards the two sequential
// float sums; the integer counters batch exactly). The event-queue
// simulation backend uses it to integrate power over a whole quiescent
// interval in one call.
func (m *Monitor) ObserveSpan(powerW float64, dt time.Duration, n int) {
	if !m.running || dt <= 0 || n <= 0 {
		return
	}
	sec := dt.Seconds()
	k := int(sec*m.sampleHz + 0.5)
	if k < 1 {
		k = 1
	}
	m.lastPowerW = powerW
	m.energyJ = fpacc.AddK(m.energyJ, powerW*sec, n)
	m.sumPower = fpacc.AddK(m.sumPower, powerW*float64(k), n)
	m.elapsed += time.Duration(n) * dt
	m.samples += n * k
	if powerW > m.maxPower {
		m.maxPower = powerW
	}
}

// Stop ends the session.
func (m *Monitor) Stop() { m.running = false }

// EnergyJ returns accumulated energy in joules.
func (m *Monitor) EnergyJ() float64 { return m.energyJ }

// AveragePowerW returns the session's average power.
func (m *Monitor) AveragePowerW() float64 {
	if m.samples == 0 {
		return 0
	}
	return m.sumPower / float64(m.samples)
}

// PeakPowerW returns the maximum instantaneous power observed.
func (m *Monitor) PeakPowerW() float64 { return m.maxPower }

// LastPowerW returns the most recent instantaneous power.
func (m *Monitor) LastPowerW() float64 { return m.lastPowerW }

// Elapsed returns the measured session duration.
func (m *Monitor) Elapsed() time.Duration { return m.elapsed }

// Samples returns how many ADC samples the session represents.
func (m *Monitor) Samples() int { return m.samples }
