package monsoon

import (
	"math"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero rate should error")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("negative rate should error")
	}
	m, err := New(5000)
	if err != nil || m == nil {
		t.Fatalf("New(5000): %v", err)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := Default()
	m.Start()
	// 2 W for 3 s = 6 J.
	for i := 0; i < 3000; i++ {
		m.Observe(2.0, time.Millisecond)
	}
	m.Stop()
	if got := m.EnergyJ(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want 6", got)
	}
	if got := m.AveragePowerW(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("AveragePowerW = %v, want 2", got)
	}
	if got := m.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed = %v", got)
	}
}

func TestAverageOfVaryingPower(t *testing.T) {
	m := Default()
	m.Start()
	m.Observe(1.0, time.Second)
	m.Observe(3.0, time.Second)
	if got := m.AveragePowerW(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("AveragePowerW = %v, want 2", got)
	}
	if got := m.PeakPowerW(); got != 3 {
		t.Fatalf("PeakPowerW = %v", got)
	}
	if got := m.LastPowerW(); got != 3 {
		t.Fatalf("LastPowerW = %v", got)
	}
}

func TestIgnoresWhenStopped(t *testing.T) {
	m := Default()
	m.Observe(5, time.Second) // never started
	if m.EnergyJ() != 0 {
		t.Fatal("energy accumulated before Start")
	}
	m.Start()
	m.Observe(5, time.Second)
	m.Stop()
	m.Observe(5, time.Second)
	if got := m.EnergyJ(); got != 5 {
		t.Fatalf("EnergyJ = %v, want 5 (post-Stop observation leaked in)", got)
	}
}

func TestStartResets(t *testing.T) {
	m := Default()
	m.Start()
	m.Observe(5, time.Second)
	m.Start()
	if m.EnergyJ() != 0 || m.Elapsed() != 0 || m.PeakPowerW() != 0 {
		t.Fatal("Start did not reset session state")
	}
}

func TestSampleCountMatchesRate(t *testing.T) {
	m := Default() // 5 kHz
	m.Start()
	for i := 0; i < 1000; i++ {
		m.Observe(1, time.Millisecond)
	}
	// 1 s at 5 kHz → 5000 samples.
	if got := m.Samples(); got != 5000 {
		t.Fatalf("Samples = %d, want 5000", got)
	}
}

func TestNonPositiveDtIgnored(t *testing.T) {
	m := Default()
	m.Start()
	m.Observe(1, 0)
	m.Observe(1, -time.Second)
	if m.EnergyJ() != 0 || m.Samples() != 0 {
		t.Fatal("non-positive dt should be ignored")
	}
}

func TestAverageEmpty(t *testing.T) {
	m := Default()
	if got := m.AveragePowerW(); got != 0 {
		t.Fatalf("empty average = %v", got)
	}
}
