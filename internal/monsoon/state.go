package monsoon

import "time"

// State is a checkpointable snapshot of a measurement session. Restoring
// it mid-session (Running true) continues the integration exactly where
// the original left off — unlike Start, which resets the accumulators.
type State struct {
	SampleHz   float64       `json:"sample_hz"`
	LastPowerW float64       `json:"last_power_w"`
	EnergyJ    float64       `json:"energy_j"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Samples    int           `json:"samples"`
	SumPower   float64       `json:"sum_power"`
	MaxPower   float64       `json:"max_power"`
	Running    bool          `json:"running"`
}

// State captures the monitor for a checkpoint.
func (m *Monitor) State() State {
	return State{SampleHz: m.sampleHz, LastPowerW: m.lastPowerW,
		EnergyJ: m.energyJ, Elapsed: m.elapsed, Samples: m.samples,
		SumPower: m.sumPower, MaxPower: m.maxPower, Running: m.running}
}

// Restore overwrites the monitor with a previously captured State,
// including the running flag — a restored session must not call Start
// (which would zero the accumulators).
func (m *Monitor) Restore(s State) {
	m.sampleHz = s.SampleHz
	m.lastPowerW = s.LastPowerW
	m.energyJ = s.EnergyJ
	m.elapsed = s.Elapsed
	m.samples = s.Samples
	m.sumPower = s.SumPower
	m.maxPower = s.MaxPower
	m.running = s.Running
}
