package monsoon

import (
	"math"
	"testing"
	"time"
)

// TestObserveSpanBitIdentity: ObserveSpan must leave the monitor in the
// exact state n sequential Observe calls would, across span lengths
// that cross many floating-point binades of the energy accumulator.
func TestObserveSpanBitIdentity(t *testing.T) {
	dt := time.Millisecond
	powers := []float64{0.1837, 1.8432, 3.75}
	spans := []int{1, 2, 3, 17, 999, 180000}
	ref, fast := Default(), Default()
	ref.Start()
	fast.Start()
	for i, n := range spans {
		p := powers[i%len(powers)]
		for j := 0; j < n; j++ {
			ref.Observe(p, dt)
		}
		fast.ObserveSpan(p, dt, n)
		if math.Float64bits(ref.EnergyJ()) != math.Float64bits(fast.EnergyJ()) {
			t.Fatalf("span %d: energy %v vs %v", n, ref.EnergyJ(), fast.EnergyJ())
		}
		if math.Float64bits(ref.AveragePowerW()) != math.Float64bits(fast.AveragePowerW()) {
			t.Fatalf("span %d: avg power %v vs %v", n, ref.AveragePowerW(), fast.AveragePowerW())
		}
		if ref.Elapsed() != fast.Elapsed() || ref.Samples() != fast.Samples() {
			t.Fatalf("span %d: elapsed/samples diverged", n)
		}
		if ref.PeakPowerW() != fast.PeakPowerW() || ref.LastPowerW() != fast.LastPowerW() {
			t.Fatalf("span %d: peak/last diverged", n)
		}
	}
	// Stopped monitors ignore spans, like Observe.
	fast.Stop()
	before := fast.EnergyJ()
	fast.ObserveSpan(5, dt, 100)
	if fast.EnergyJ() != before {
		t.Fatalf("stopped monitor accumulated energy")
	}
}
