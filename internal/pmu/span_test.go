package pmu

import (
	"math"
	"testing"
)

// TestAddSpanBitIdentity: AddSpan must be bit-identical to n sequential
// Add calls for every counter, including the negative-delta no-op.
func TestAddSpanBitIdentity(t *testing.T) {
	ref, fast := New(), New()
	deltas := []float64{7.5e4, 1.3e8, 1500}
	for span := 0; span < 6; span++ {
		n := []int{1, 2, 3, 1000, 64123, 180000}[span]
		for c := Counter(0); c < numCounters; c++ {
			d := deltas[c]
			for i := 0; i < n; i++ {
				ref.Add(c, d)
			}
			fast.AddSpan(c, d, n)
		}
	}
	for c := Counter(0); c < numCounters; c++ {
		if math.Float64bits(ref.Read(c)) != math.Float64bits(fast.Read(c)) {
			t.Fatalf("%v: %v vs %v", c, ref.Read(c), fast.Read(c))
		}
	}
	// Guards: non-positive delta and n are no-ops.
	before := fast.Read(Cycles)
	fast.AddSpan(Cycles, -1, 10)
	fast.AddSpan(Cycles, 1, 0)
	fast.AddSpan(Counter(99), 1, 10)
	if fast.Read(Cycles) != before {
		t.Fatalf("guarded AddSpan mutated state")
	}
}
