// Package pmu models the performance monitoring unit of the SoC: free-
// running hardware counters that the perf tool samples to derive the
// GIPS performance metric (paper §III-B2).
//
// The simulator advances the counters; readers (the perf tool emulation)
// take snapshots and compute deltas, exactly like `perf stat` does with
// the ARM PMU cycle and instruction counters.
package pmu

import (
	"sync"

	"aspeo/internal/fpacc"
)

// Counter identifies one hardware event counter.
type Counter int

// Supported counters.
const (
	Instructions   Counter = iota // instructions retired (all cores)
	Cycles                        // core cycles while busy
	BusAccessBytes                // bytes moved on the memory bus
	numCounters
)

// String returns the perf-style event name.
func (c Counter) String() string {
	switch c {
	case Instructions:
		return "instructions"
	case Cycles:
		return "cycles"
	case BusAccessBytes:
		return "bus-access-bytes"
	}
	return "unknown"
}

// PMU is the set of counters. Safe for concurrent use: the simulator
// writes, tool emulations read.
type PMU struct {
	mu     sync.RWMutex
	counts [numCounters]float64
}

// New returns a PMU with zeroed counters.
func New() *PMU { return &PMU{} }

// Add advances a counter by delta. Negative deltas are ignored — hardware
// counters only move forward.
func (p *PMU) Add(c Counter, delta float64) {
	if delta <= 0 || c < 0 || c >= numCounters {
		return
	}
	p.mu.Lock()
	p.counts[c] += delta
	p.mu.Unlock()
}

// AddN advances a counter by delta, n times in sequence — bit-identical
// to n successive Add calls, but under one lock acquisition. The fused
// simulator step uses it to replay identical per-step increments.
func (p *PMU) AddN(c Counter, delta float64, n int) {
	if delta <= 0 || n <= 0 || c < 0 || c >= numCounters {
		return
	}
	p.mu.Lock()
	for i := 0; i < n; i++ {
		p.counts[c] += delta
	}
	p.mu.Unlock()
}

// AddSpan advances a counter as AddN does — bit-identical to n
// successive Add calls — but in closed form via fpacc.AddK, so the cost
// is logarithmic in n. The event-queue simulation backend uses it to
// integrate counter movement over variable-length quiescent intervals.
func (p *PMU) AddSpan(c Counter, delta float64, n int) {
	if delta <= 0 || n <= 0 || c < 0 || c >= numCounters {
		return
	}
	p.mu.Lock()
	p.counts[c] = fpacc.AddK(p.counts[c], delta, n)
	p.mu.Unlock()
}

// Read returns the current value of a counter.
func (p *PMU) Read(c Counter) float64 {
	if c < 0 || c >= numCounters {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.counts[c]
}

// Snapshot captures all counters at once, so a reader can compute
// mutually consistent deltas.
type Snapshot struct {
	values [numCounters]float64
}

// Snapshot returns a consistent snapshot of all counters.
func (p *PMU) Snapshot() Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return Snapshot{values: p.counts}
}

// SnapshotAt reconstructs a snapshot from recorded absolute counter
// values. Replay backends use it to hand readers the exact counter
// state a recorded run observed: deltas between two reconstructed
// snapshots are plain subtractions of the recorded values, so a
// recorded measurement chain reproduces bit-for-bit.
func SnapshotAt(instructions, cycles, busAccessBytes float64) Snapshot {
	var s Snapshot
	s.values[Instructions] = instructions
	s.values[Cycles] = cycles
	s.values[BusAccessBytes] = busAccessBytes
	return s
}

// Values returns the snapshot's absolute counter values in counter
// order (instructions, cycles, bus-access bytes) — the inverse of
// SnapshotAt, used when checkpointing counter state.
func (cur Snapshot) Values() (instructions, cycles, busAccessBytes float64) {
	return cur.values[Instructions], cur.values[Cycles], cur.values[BusAccessBytes]
}

// Restore overwrites the live counters with a snapshot's values. The
// checkpoint/restore path uses it to resume a session with the exact
// counter state the original run had, so every downstream delta (perf
// windows, run summaries) reproduces bit-for-bit.
func (p *PMU) Restore(s Snapshot) {
	p.mu.Lock()
	p.counts = s.values
	p.mu.Unlock()
}

// Delta returns the counter movement between two snapshots (cur - prev).
func (cur Snapshot) Delta(prev Snapshot, c Counter) float64 {
	if c < 0 || c >= numCounters {
		return 0
	}
	return cur.values[c] - prev.values[c]
}
