package pmu

import (
	"sync"
	"testing"
)

func TestAddAndRead(t *testing.T) {
	p := New()
	p.Add(Instructions, 100)
	p.Add(Instructions, 50)
	p.Add(Cycles, 300)
	if got := p.Read(Instructions); got != 150 {
		t.Fatalf("Instructions = %v", got)
	}
	if got := p.Read(Cycles); got != 300 {
		t.Fatalf("Cycles = %v", got)
	}
	if got := p.Read(BusAccessBytes); got != 0 {
		t.Fatalf("BusAccessBytes = %v", got)
	}
}

func TestNegativeAndZeroDeltasIgnored(t *testing.T) {
	p := New()
	p.Add(Instructions, -5)
	p.Add(Instructions, 0)
	if got := p.Read(Instructions); got != 0 {
		t.Fatalf("counter moved on non-positive delta: %v", got)
	}
}

func TestInvalidCounter(t *testing.T) {
	p := New()
	p.Add(Counter(99), 5)
	if got := p.Read(Counter(99)); got != 0 {
		t.Fatalf("invalid counter read = %v", got)
	}
	if got := p.Read(Counter(-1)); got != 0 {
		t.Fatalf("invalid counter read = %v", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	p := New()
	p.Add(Instructions, 1000)
	s1 := p.Snapshot()
	p.Add(Instructions, 234)
	p.Add(BusAccessBytes, 42)
	s2 := p.Snapshot()
	if got := s2.Delta(s1, Instructions); got != 234 {
		t.Fatalf("delta = %v, want 234", got)
	}
	if got := s2.Delta(s1, BusAccessBytes); got != 42 {
		t.Fatalf("bus delta = %v, want 42", got)
	}
	if got := s2.Delta(s1, Counter(77)); got != 0 {
		t.Fatalf("invalid counter delta = %v", got)
	}
}

func TestCounterNames(t *testing.T) {
	if Instructions.String() != "instructions" || Cycles.String() != "cycles" {
		t.Fatal("counter names wrong")
	}
	if BusAccessBytes.String() != "bus-access-bytes" {
		t.Fatal("bus counter name wrong")
	}
	if Counter(42).String() != "unknown" {
		t.Fatal("unknown counter name wrong")
	}
}

func TestConcurrentAddRead(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Add(Instructions, 1)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := p.Read(Instructions); got != 4000 {
		t.Fatalf("Instructions = %v, want 4000", got)
	}
}
