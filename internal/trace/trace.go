// Package trace records time series of a simulation run: the chosen CPU
// frequency and memory bandwidth, instantaneous power, and measured
// performance. The experiment harness derives residency histograms,
// averages and CSV exports from these records.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Point is one sample of the run state.
type Point struct {
	T       time.Duration // simulation time
	FreqIdx int           // CPU frequency ladder index (0-based)
	BWIdx   int           // memory bandwidth ladder index (0-based)
	PowerW  float64       // instantaneous device power
	GIPS    float64       // instantaneous performance
}

// Recorder accumulates points at a fixed decimation interval.
type Recorder struct {
	every  time.Duration
	next   time.Duration
	points []Point
}

// NewRecorder records one point per `every` of simulated time. A zero or
// negative interval records every observation.
func NewRecorder(every time.Duration) *Recorder {
	return &Recorder{every: every}
}

// Observe offers a sample; it is kept if the decimation interval elapsed.
func (r *Recorder) Observe(p Point) {
	if r.every > 0 && p.T < r.next {
		return
	}
	r.points = append(r.points, p)
	if r.every > 0 {
		r.next = p.T + r.every
	}
}

// Points returns the recorded series.
func (r *Recorder) Points() []Point { return r.points }

// Len returns the number of recorded points.
func (r *Recorder) Len() int { return len(r.points) }

// WriteCSV emits the series as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "freq_idx", "bw_idx", "power_w", "gips"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, p := range r.points {
		rec := []string{
			strconv.FormatFloat(p.T.Seconds(), 'f', 3, 64),
			strconv.Itoa(p.FreqIdx + 1),
			strconv.Itoa(p.BWIdx + 1),
			strconv.FormatFloat(p.PowerW, 'f', 4, 64),
			strconv.FormatFloat(p.GIPS, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
