// Package trace records time series of a simulation run: the chosen CPU
// frequency and memory bandwidth, instantaneous power, and measured
// performance. The experiment harness derives residency histograms,
// averages and CSV exports from these records.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Point is one sample of the run state.
type Point struct {
	T       time.Duration `json:"t"`        // time the step began
	FreqIdx int           `json:"freq_idx"` // CPU frequency ladder index (0-based)
	BWIdx   int           `json:"bw_idx"`   // memory bandwidth ladder index (0-based)
	PowerW  float64       `json:"power_w"`  // instantaneous device power
	GIPS    float64       `json:"gips"`     // instantaneous performance

	// Replay fields: the per-step CPU power and input events, plus the
	// cumulative counters as of the END of the step that began at T —
	// exactly the PMU/telemetry state software observes at T+step. A
	// full-rate trace (one point per engine step) carrying them is a
	// complete measurement record: platform/replay reconstructs the
	// whole observation surface from it, bit-for-bit. Zero in traces
	// recorded before these fields existed.
	CPUPowerW       float64 `json:"cpu_power_w,omitempty"`
	CumInstr        float64 `json:"cum_instr,omitempty"`
	CumBusySec      float64 `json:"cum_busy_sec,omitempty"` // machine-busy seconds
	CumCoreSec      float64 `json:"cum_core_sec,omitempty"` // OS-visible busy core-seconds
	CumTrafficBytes float64 `json:"cum_traffic,omitempty"`  // DRAM bytes
	Touches         int     `json:"touches,omitempty"`      // input events during the step
}

// Recorder accumulates points at a fixed decimation interval.
type Recorder struct {
	every  time.Duration
	next   time.Duration
	points []Point
}

// NewRecorder records one point per `every` of simulated time. A zero or
// negative interval records every observation.
func NewRecorder(every time.Duration) *Recorder {
	return &Recorder{every: every}
}

// Observe offers a sample; it is kept if the decimation interval elapsed.
func (r *Recorder) Observe(p Point) {
	if r.every > 0 && p.T < r.next {
		return
	}
	r.points = append(r.points, p)
	if r.every > 0 {
		r.next = p.T + r.every
	}
}

// Points returns the recorded series.
func (r *Recorder) Points() []Point { return r.points }

// Len returns the number of recorded points.
func (r *Recorder) Len() int { return len(r.points) }

// WriteCSV emits the series as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "freq_idx", "bw_idx", "power_w", "gips"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, p := range r.points {
		rec := []string{
			strconv.FormatFloat(p.T.Seconds(), 'f', 3, 64),
			strconv.Itoa(p.FreqIdx + 1),
			strconv.Itoa(p.BWIdx + 1),
			strconv.FormatFloat(p.PowerW, 'f', 4, 64),
			strconv.FormatFloat(p.GIPS, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full series — every Point field — as one JSON
// array. Unlike the (deliberately stable) CSV columns, the JSON format
// carries the replay fields, so a full-rate recording written this way
// can drive platform/replay.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(r.points); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// ReadJSON loads a series written by WriteJSON.
func ReadJSON(rd io.Reader) ([]Point, error) {
	var pts []Point
	if err := json.NewDecoder(rd).Decode(&pts); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return pts, nil
}
