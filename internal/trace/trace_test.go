package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordsEverythingWithoutDecimation(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 10; i++ {
		r.Observe(Point{T: time.Duration(i) * time.Millisecond})
	}
	if got := r.Len(); got != 10 {
		t.Fatalf("Len = %d", got)
	}
}

func TestDecimation(t *testing.T) {
	r := NewRecorder(100 * time.Millisecond)
	for i := 0; i < 1000; i++ {
		r.Observe(Point{T: time.Duration(i) * time.Millisecond, PowerW: float64(i)})
	}
	if got := r.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	pts := r.Points()
	if pts[0].T != 0 || pts[1].T != 100*time.Millisecond {
		t.Fatalf("decimation points wrong: %v %v", pts[0].T, pts[1].T)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(0)
	r.Observe(Point{T: 1500 * time.Millisecond, FreqIdx: 9, BWIdx: 0, PowerW: 1.75, GIPS: 0.129})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "t_s,freq_idx,bw_idx,power_w,gips" {
		t.Fatalf("header = %q", lines[0])
	}
	// Indices are 1-based in the export, matching the paper's tables.
	if lines[1] != "1.500,10,1,1.7500,0.1290" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	r := NewRecorder(0)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "t_s,freq_idx,bw_idx,power_w,gips" {
		t.Fatalf("empty CSV = %q", got)
	}
}
