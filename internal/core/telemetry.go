package core

import (
	"time"

	"aspeo/internal/obs"
	"aspeo/internal/platform"
)

// CycleSnapshot is the controller's structured per-cycle telemetry: one
// immutable record of the control loop's state at the end of a control
// cycle. It replaces log-scraping as the way runtimes observe a live
// controller — the fleet session manager folds these into fleet-wide
// rollups, and tests assert on them directly.
//
// Snapshots are plain values: emitting one never aliases controller
// state, so a consumer may retain them across cycles.
type CycleSnapshot struct {
	// CyclesRun counts every control-cycle invocation, measured or not;
	// it is the snapshot's ordinal (1 = first cycle).
	CyclesRun int `json:"cycles_run"`
	// Cycles counts closed-loop cycles (an accepted measurement reached
	// the regulator).
	Cycles int `json:"cycles"`
	// At is the backend clock when the cycle ran.
	At time.Duration `json:"at_ns"`
	// MeasuredGIPS is the most recent perf reading consumed.
	MeasuredGIPS float64 `json:"measured_gips"`
	// TargetGIPS is the performance target r.
	TargetGIPS float64 `json:"target_gips"`
	// SpeedupSetting is s_n, the regulator's current demand.
	SpeedupSetting float64 `json:"speedup_setting"`
	// BaseEstimateGIPS is the Kalman filter's current base-speed estimate.
	BaseEstimateGIPS float64 `json:"base_estimate_gips"`
	// ExpectedSpeedup is the scheduled allocation's expectation.
	ExpectedSpeedup float64 `json:"expected_speedup"`
	// MeanAbsErrGIPS is the running mean |r − y| over closed-loop cycles.
	MeanAbsErrGIPS float64 `json:"mean_abs_err_gips"`
	// PowerW is the device power over the step that ended the cycle.
	PowerW float64 `json:"power_w"`
	// AllocCacheHits counts cycles served from the allocation cache.
	AllocCacheHits int `json:"alloc_cache_hits"`
	// PhasesDetected is the phase tracker's cluster count (0 = off).
	PhasesDetected int `json:"phases_detected"`
	// Degraded reports whether the watchdog pins the safe configuration.
	Degraded bool `json:"degraded"`
	// Health is the resilience ladder's ledger as of this cycle.
	Health platform.Health `json:"health"`
}

// Snapshot assembles the controller's current per-cycle telemetry. The
// controller must be installed (it reads the device clock and power
// rail); before installation the zero-time snapshot carries only
// controller-side state.
func (c *Controller) Snapshot() CycleSnapshot {
	s := CycleSnapshot{
		CyclesRun:        c.cyclesRun,
		Cycles:           c.cycles,
		MeasuredGIPS:     c.lastMeasured,
		TargetGIPS:       c.opt.TargetGIPS,
		SpeedupSetting:   c.sPrev,
		BaseEstimateGIPS: c.BaseSpeedEstimate(),
		ExpectedSpeedup:  c.lastAlloc.ExpectedSpeedup,
		MeanAbsErrGIPS:   c.MeanAbsError(),
		AllocCacheHits:   c.allocCacheHits,
		PhasesDetected:   c.PhasesDetected(),
		Degraded:         c.degraded,
		Health:           c.health,
	}
	if c.dev != nil {
		s.At = c.dev.Now()
		s.PowerW = c.dev.LastPowerW()
	}
	return s
}

// publishCycle pushes the cycle's telemetry outward: the health ledger
// to the device (platform.Telemetry.RecordHealth, so any backend records
// it uniformly) and the full snapshot to the OnCycle subscriber.
// Publication is observation only — it must never feed back into the
// control law, so a run with a subscriber is bit-identical to one
// without.
func (c *Controller) publishCycle(dev platform.Device) {
	var snap CycleSnapshot
	haveSnap := false
	if c.opt.Trace {
		s := c.Snapshot()
		snap, haveSnap = s, true
		attrs := obs.Attrs{
			"cycles":               obs.Num(s.Cycles),
			"measured_gips":        s.MeasuredGIPS,
			"target_gips":          s.TargetGIPS,
			"speedup_setting":      s.SpeedupSetting,
			"base_estimate_gips":   s.BaseEstimateGIPS,
			"expected_speedup":     s.ExpectedSpeedup,
			"mean_abs_err_gips":    s.MeanAbsErrGIPS,
			"power_w":              s.PowerW,
			"alloc_cache_hits":     obs.Num(s.AllocCacheHits),
			"degraded":             s.Degraded,
			"relinquished":         s.Health.Relinquished,
			"consecutive_failures": obs.Num(s.Health.ConsecutiveFailures),
		}
		if s.Health.LastTransition != "" {
			attrs["last_transition"] = s.Health.LastTransition
		}
		c.emitSpan(dev, obs.StageCycle, attrs)
	}
	dev.RecordHealth(c.health)
	if c.opt.OnCycle != nil {
		if !haveSnap {
			snap = c.Snapshot()
		}
		c.opt.OnCycle(snap)
	}
	if c.opt.OnCheckpoint != nil && c.opt.CheckpointEvery > 0 &&
		c.cyclesRun%c.opt.CheckpointEvery == 0 {
		c.opt.OnCheckpoint(c.cyclesRun)
	}
}
