package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aspeo/internal/profile"
)

// tbl builds a sorted entry list from (speedup, power) pairs.
func tbl(pairs ...[2]float64) []profile.Entry {
	out := make([]profile.Entry, len(pairs))
	for i, p := range pairs {
		out[i] = profile.Entry{FreqIdx: i, BWIdx: 0, Speedup: p[0], PowerW: p[1]}
	}
	return out
}

const T = 2 * time.Second

func TestOptimizeEmptyTable(t *testing.T) {
	if _, err := Optimize(nil, 1.5, T); err != ErrEmptyTable {
		t.Fatalf("expected ErrEmptyTable, got %v", err)
	}
}

func TestOptimizeBadTarget(t *testing.T) {
	entries := tbl([2]float64{1, 1})
	for _, target := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := Optimize(entries, target, T); err == nil {
			t.Errorf("target %v should error", target)
		}
	}
}

func TestOptimizeBelowTable(t *testing.T) {
	entries := tbl([2]float64{2, 3.0}, [2]float64{2.5, 2.0}, [2]float64{3, 4.0})
	a, err := Optimize(entries, 1.0, T)
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest entry wins (it over-delivers anyway).
	if a.Low.PowerW != 2.0 || a.TauLow != T || a.TauHigh != 0 {
		t.Fatalf("below-table allocation = %+v", a)
	}
}

func TestOptimizeAboveTableSaturates(t *testing.T) {
	// The plateau: near-equal speedups at very different powers. The
	// cheapest within tolerance of the max must win.
	entries := tbl([2]float64{1, 1.5}, [2]float64{2.995, 2.0}, [2]float64{3.0, 3.5})
	a, err := Optimize(entries, 5.0, T)
	if err != nil {
		t.Fatal(err)
	}
	if a.Low.PowerW != 2.0 {
		t.Fatalf("saturation must pick the cheap plateau config, got %+v", a.Low)
	}
	if a.TauLow != T {
		t.Fatalf("saturation should be a single config: %+v", a)
	}
}

func TestOptimizeInteriorMixesTwoConfigs(t *testing.T) {
	entries := tbl([2]float64{1, 1.6}, [2]float64{2, 2.2}, [2]float64{3, 3.6})
	a, err := Optimize(entries, 1.5, T)
	if err != nil {
		t.Fatal(err)
	}
	if a.Low.Speedup != 1 || a.High.Speedup != 2 {
		t.Fatalf("bracket = (%v, %v)", a.Low.Speedup, a.High.Speedup)
	}
	if math.Abs(a.TauLow.Seconds()-1.0) > 1e-9 || math.Abs(a.TauHigh.Seconds()-1.0) > 1e-9 {
		t.Fatalf("durations = (%v, %v), want (1s, 1s)", a.TauLow, a.TauHigh)
	}
	if math.Abs(a.ExpectedPowerW-1.9) > 1e-9 {
		t.Fatalf("expected power = %v, want 1.9", a.ExpectedPowerW)
	}
	if math.Abs(a.TauLow.Seconds()+a.TauHigh.Seconds()-T.Seconds()) > 1e-9 {
		t.Fatal("durations must sum to the cycle")
	}
}

func TestOptimizePicksCheapestBracket(t *testing.T) {
	// Two candidate brackets around 2.0: the hull should use the
	// cheaper pair (1.9, 2.1) rather than (1.0, 3.0).
	entries := tbl(
		[2]float64{1.0, 1.5},
		[2]float64{1.9, 1.7},
		[2]float64{2.1, 1.8},
		[2]float64{3.0, 4.0},
	)
	a, err := Optimize(entries, 2.0, T)
	if err != nil {
		t.Fatal(err)
	}
	if a.Low.Speedup != 1.9 || a.High.Speedup != 2.1 {
		t.Fatalf("bracket = (%v, %v), want (1.9, 2.1)", a.Low.Speedup, a.High.Speedup)
	}
}

func TestOptimizeExactMatchSingleConfig(t *testing.T) {
	entries := tbl([2]float64{1, 1.5}, [2]float64{2, 2.0}, [2]float64{3, 3.5})
	a, err := Optimize(entries, 2.0, T)
	if err != nil {
		t.Fatal(err)
	}
	// An exact match competes as lo of (lo,hi) pairs; energy-optimal is
	// still effectively the single config.
	got := a.ExpectedPowerW
	if got > 2.0+1e-9 {
		t.Fatalf("expected power %v exceeds the exact config's 2.0", got)
	}
}

// Optimize and OptimizeLP must agree on the optimal energy for interior
// targets (the LP is the paper's formal formulation, the search is the
// O(N²) shortcut the paper describes).
func TestOptimizeMatchesLPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		entries := make([]profile.Entry, n)
		s, p := 1.0, 1.0+rng.Float64()
		for i := 0; i < n; i++ {
			entries[i] = profile.Entry{FreqIdx: i, Speedup: s, PowerW: p}
			s += 0.05 + rng.Float64()*0.5
			p += 0.05 + rng.Float64()
		}
		target := entries[0].Speedup +
			rng.Float64()*(entries[n-1].Speedup-entries[0].Speedup)
		a1, err1 := Optimize(entries, target, T)
		a2, err2 := OptimizeLP(entries, target, T)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a1.ExpectedPowerW-a2.ExpectedPowerW) < 1e-6*math.Max(1, a1.ExpectedPowerW)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The allocation must satisfy the LP constraints: Sᵀu = s·T, 1ᵀu = T.
func TestOptimizeConstraintsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		entries := make([]profile.Entry, n)
		s, p := 1.0, 1.5
		for i := 0; i < n; i++ {
			entries[i] = profile.Entry{FreqIdx: i, Speedup: s, PowerW: p}
			s += 0.1 + rng.Float64()
			p += 0.1 + rng.Float64()
		}
		target := entries[0].Speedup + rng.Float64()*(entries[n-1].Speedup-entries[0].Speedup)
		a, err := Optimize(entries, target, T)
		if err != nil {
			return false
		}
		tl, th := a.TauLow.Seconds(), a.TauHigh.Seconds()
		if tl < -1e-9 || th < -1e-9 {
			return false
		}
		if math.Abs(tl+th-T.Seconds()) > 1e-6 {
			return false
		}
		achieved := (a.Low.Speedup*tl + a.High.Speedup*th) / T.Seconds()
		return math.Abs(achieved-target) < 1e-6*math.Max(1, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneDominated(t *testing.T) {
	entries := tbl(
		[2]float64{1.0, 1.5},
		[2]float64{2.0, 2.0},
		[2]float64{2.01, 3.5}, // ε-dominated by the 2.0@2.0 entry
		[2]float64{3.0, 4.0},
	)
	kept := pruneDominated(entries, 0.02)
	if len(kept) != 3 {
		t.Fatalf("kept %d entries, want 3: %+v", len(kept), kept)
	}
	for _, e := range kept {
		if e.PowerW == 3.5 {
			t.Fatal("the dominated entry survived")
		}
	}
}

func TestPruneDominatedDisabled(t *testing.T) {
	entries := tbl([2]float64{1, 2}, [2]float64{1.001, 5})
	if got := pruneDominated(entries, -1); len(got) != 2 {
		t.Fatalf("negative ε must disable pruning, kept %d", len(got))
	}
}

func TestPruneDominatedKeepsPareto(t *testing.T) {
	// A strictly increasing frontier must survive untouched.
	entries := tbl([2]float64{1, 1}, [2]float64{2, 2}, [2]float64{3, 3})
	if got := pruneDominated(entries, 0.02); len(got) != 3 {
		t.Fatalf("pruned a clean Pareto frontier to %d entries", len(got))
	}
}

func TestPruneDominatedNeverEmpty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		entries := make([]profile.Entry, n)
		s := 1.0
		for i := 0; i < n; i++ {
			entries[i] = profile.Entry{Speedup: s, PowerW: 1 + rng.Float64()*3}
			s += rng.Float64() * 0.1
		}
		kept := pruneDominated(entries, 0.05)
		if len(kept) == 0 {
			return false
		}
		// Order must be preserved.
		for i := 1; i < len(kept); i++ {
			if kept[i].Speedup < kept[i-1].Speedup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimize117Entries(b *testing.B) {
	// A realistic table: 9 profiled frequencies × 13 bandwidths.
	entries := make([]profile.Entry, 117)
	s, p := 1.0, 1.6
	for i := range entries {
		entries[i] = profile.Entry{FreqIdx: i / 13, BWIdx: i % 13, Speedup: s, PowerW: p}
		s += 0.03
		p += 0.02
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(entries, 2.2, T); err != nil {
			b.Fatal(err)
		}
	}
}
