package core

import (
	"fmt"
	"math"

	"aspeo/internal/obs"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
	"aspeo/internal/sysfs"
)

// Resilience configures the controller's fault-handling ladder. On a
// real device neither I/O surface the controller depends on is
// trustworthy: sysfs stores fail transiently, OEM daemons rewrite the
// governor files mid-run, and PMU-derived readings drop, spike or stick.
// The ladder escalates — retry failed actuations, reinstall a hijacked
// governor, degrade to a safe mid-ladder configuration, and finally
// relinquish control to the stock governors — while Health exposes every
// step taken.
type Resilience struct {
	// Disabled turns every protection off (the unhardened baseline of
	// the fault campaign); faults are still counted, never acted on.
	Disabled bool
	// MaxRetriesPerCycle bounds actuation retries across the quanta of
	// one control cycle.
	MaxRetriesPerCycle int
	// OwnershipCheckEvery runs the governor-ownership check every N
	// control cycles (1 = every cycle).
	OwnershipCheckEvery int
	// OutlierSigma is the measurement gate width: a normalized
	// measurement farther than OutlierSigma·sqrt(P+R) from the Kalman
	// estimate is rejected instead of fed into the update. The default
	// is wide (10σ) because genuine workload phase transitions reach
	// 5–8σ and must pass untouched, while injected counter faults are
	// far more extreme (a zeroed reading is ~18σ, a multiplexing spike
	// ~50σ).
	OutlierSigma float64
	// OutlierPersistence accepts a measurement after this many
	// consecutive outlier rejections: isolated spikes are glitches, but
	// a persistent excursion is a genuine level shift (a workload phase
	// change) the filter must re-converge to. Must not exceed
	// DegradeAfter or real phase shifts trip the watchdog.
	OutlierPersistence int
	// StuckWindow rejects a measurement after this many bit-identical
	// consecutive values (a stuck counter; genuine readings carry
	// continuous noise).
	StuckWindow int
	// DegradeAfter is the watchdog threshold: this many consecutive
	// failing cycles switch the schedule to the safe configuration.
	DegradeAfter int
	// RelinquishAfter consecutive failing cycles hand the device back
	// to the stock governors and stop actuating.
	RelinquishAfter int
}

// DefaultResilience returns the hardened defaults.
func DefaultResilience() Resilience {
	return Resilience{
		MaxRetriesPerCycle:  3,
		OwnershipCheckEvery: 1,
		OutlierSigma:        10,
		OutlierPersistence:  2,
		StuckWindow:         3,
		DegradeAfter:        3,
		RelinquishAfter:     8,
	}
}

// withDefaults fills unset fields so a zero Options.Resilience means
// "hardened with defaults".
func (r Resilience) withDefaults() Resilience {
	d := DefaultResilience()
	if r.MaxRetriesPerCycle == 0 {
		r.MaxRetriesPerCycle = d.MaxRetriesPerCycle
	}
	if r.OwnershipCheckEvery == 0 {
		r.OwnershipCheckEvery = d.OwnershipCheckEvery
	}
	if r.OutlierSigma == 0 {
		r.OutlierSigma = d.OutlierSigma
	}
	if r.OutlierPersistence == 0 {
		r.OutlierPersistence = d.OutlierPersistence
	}
	if r.StuckWindow == 0 {
		r.StuckWindow = d.StuckWindow
	}
	if r.DegradeAfter == 0 {
		r.DegradeAfter = d.DegradeAfter
	}
	if r.RelinquishAfter == 0 {
		r.RelinquishAfter = d.RelinquishAfter
	}
	return r
}

// Health is the controller's self-diagnostics: what the fault ladder
// observed and did. The report layer prints it and the resilience tests
// match it against the injector's delivered-fault counts. The definition
// lives in platform (every backend records it through
// Telemetry.RecordHealth); the alias keeps core's consumers reading
// naturally.
type Health = platform.Health

// Health returns a snapshot of the controller's fault diagnostics.
func (c *Controller) Health() Health { return c.health }

// Perf exposes the controller's perf reader so a fault injector can arm
// its reading hook.
func (c *Controller) Perf() *perftool.Perf { return c.perf }

// applySlot actuates one slot with bounded retry-across-quanta: a failed
// write is retried immediately (transient EBUSY/EINVAL clears between
// attempts) while the cycle's retry budget lasts. It reports whether the
// configuration landed.
func (c *Controller) applySlot(dev platform.Device, e profile.Entry) bool {
	err := c.apply(dev, e)
	if err == nil {
		return true
	}
	c.health.ActuationFailures++
	if c.res.Disabled {
		return false
	}
	for c.retriesLeft > 0 {
		c.retriesLeft--
		c.health.ActuationRetries++
		if err = c.apply(dev, e); err == nil {
			return true
		}
		c.health.ActuationFailures++
	}
	return false
}

// checkOwnership verifies the controller still owns the DVFS policy
// files and repairs hijacks: a rewritten scaling_governor is switched
// back to userspace, a clamped scaling_max_freq is restored to its
// installed value. It reports false when a repair attempt failed.
func (c *Controller) checkOwnership(dev platform.Device) bool {
	if c.res.Disabled || !c.attached {
		return true
	}
	if c.res.OwnershipCheckEvery > 1 && c.cyclesRun%c.res.OwnershipCheckEvery != 0 {
		return true
	}
	ok := true
	if gov, err := dev.ReadFile(sysfs.CPUScalingGovernor); err == nil && gov != platform.GovUserspace {
		if werr := dev.WriteFile(sysfs.CPUScalingGovernor, platform.GovUserspace); werr == nil {
			c.health.GovernorReinstalls++
		} else {
			ok = false
		}
	}
	if c.installedMaxFreq != "" {
		if mf, err := dev.ReadFile(sysfs.CPUScalingMaxFreq); err == nil && mf != c.installedMaxFreq {
			if werr := dev.WriteFile(sysfs.CPUScalingMaxFreq, c.installedMaxFreq); werr == nil {
				c.health.MaxFreqRestores++
			} else {
				ok = false
			}
		}
	}
	if !c.opt.CPUOnly {
		if gov, err := dev.ReadFile(sysfs.DevFreqGovernor); err == nil && gov != platform.GovUserspace {
			if werr := dev.WriteFile(sysfs.DevFreqGovernor, platform.GovUserspace); werr == nil {
				c.health.GovernorReinstalls++
			} else {
				ok = false
			}
		}
	}
	return ok
}

// gate validates one cycle measurement before it reaches the Kalman
// update: non-finite values, stuck counters (StuckWindow bit-identical
// readings in a row) and >kσ innovation outliers are rejected; the
// regulator then falls back to the prior estimate for the cycle.
func (c *Controller) gate(y, z float64) bool {
	if c.res.Disabled {
		return true
	}
	if math.IsNaN(z) || math.IsInf(z, 0) {
		c.health.NonFiniteSamples++
		c.health.RejectedSamples++
		c.gateCause = "non-finite"
		return false
	}
	stuck := len(c.recentY) >= c.res.StuckWindow-1
	for _, prev := range c.recentY {
		if prev != y {
			stuck = false
			break
		}
	}
	c.pushRecentY(y)
	if stuck {
		c.health.StuckSamples++
		c.health.RejectedSamples++
		c.gateCause = "stuck"
		return false
	}
	if est, err := c.kf.Estimate(); err == nil {
		band := c.res.OutlierSigma * math.Sqrt(c.kf.Variance()+c.kf.MeasurementVariance())
		if math.Abs(z-est) > band && c.outlierRun < c.res.OutlierPersistence {
			c.outlierRun++
			c.health.OutlierSamples++
			c.health.RejectedSamples++
			c.gateCause = "outlier"
			return false
		}
	}
	c.outlierRun = 0
	return true
}

// pushRecentY records a raw measurement in the stuck-detection ring.
// Once the window is full the oldest entry is overwritten in place — the
// stuck scan is an order-independent equality sweep, so rotation is
// invisible to it and the steady state allocates nothing.
func (c *Controller) pushRecentY(y float64) {
	n := c.res.StuckWindow - 1
	if n <= 0 {
		c.recentY = append(c.recentY, y)
		return
	}
	if len(c.recentY) < n {
		c.recentY = append(c.recentY, y)
		return
	}
	c.recentY[c.recentYPos] = y
	c.recentYPos = (c.recentYPos + 1) % n
}

// watchdog consumes one cycle's health verdict and walks the degradation
// ladder. It returns true when the controller should skip the optimizer
// because it is degraded or has relinquished control.
func (c *Controller) watchdog(dev platform.Device, failing bool) bool {
	if c.res.Disabled {
		return false
	}
	if failing {
		c.health.ConsecutiveFailures++
	} else {
		c.health.ConsecutiveFailures = 0
		if c.degraded {
			// The fault cleared: resume closed-loop control.
			c.degraded = false
			c.ladderTransition(dev, "recovered")
		}
	}
	if c.health.ConsecutiveFailures >= c.res.RelinquishAfter {
		c.relinquish(dev)
		return true
	}
	if !c.degraded && c.health.ConsecutiveFailures >= c.res.DegradeAfter {
		c.degraded = true
		c.health.WatchdogTrips++
		c.ladderTransition(dev, "degraded")
	}
	if c.degraded {
		c.health.DegradedCycles++
		alloc := c.safeAllocation()
		c.lastAlloc = alloc
		c.fillSlots(alloc)
		if c.opt.Trace {
			c.emitSpan(dev, obs.StageSchedule, obs.Attrs{
				"safe":          true,
				"safe_freq_idx": obs.Num(alloc.Low.FreqIdx),
				"safe_bw_idx":   obs.Num(alloc.Low.BWIdx),
			})
		}
		return true
	}
	return false
}

// ladderTransition records a degradation-ladder transition in both
// observation surfaces at once: the health ledger's LastTransition field
// (which aggregate consumers — the run summary, the fleet rollup — read)
// and, when tracing, a ladder event span in the decision trace.
func (c *Controller) ladderTransition(dev platform.Device, name string) {
	c.health.LastTransition = fmt.Sprintf("%s@%d", name, c.cyclesRun)
	if c.opt.Trace {
		c.emitSpan(dev, obs.StageLadder, obs.Attrs{
			"transition":           name,
			"consecutive_failures": obs.Num(c.health.ConsecutiveFailures),
			"watchdog_trips":       obs.Num(c.health.WatchdogTrips),
		})
	}
}

// safeAllocation pins the whole cycle at the mid-ladder entry — a
// configuration every workload tolerates: roughly default-governor
// performance without the top-of-ladder power.
func (c *Controller) safeAllocation() Allocation {
	e := c.entries[len(c.entries)/2]
	return Allocation{
		Low: e, High: e,
		TauLow:          c.opt.CycleT,
		ExpectedSpeedup: e.Speedup,
	}
}

// relinquish is the ladder's last rung: restore the stock governors
// (best effort — the writes themselves may be failing) and stop
// actuating for good. Registered stock governor actors take over from
// the governor files; without them the device keeps its last state.
func (c *Controller) relinquish(dev platform.Device) {
	if c.health.Relinquished {
		return
	}
	c.health.Relinquished = true
	c.health.WatchdogTrips++
	c.ladderTransition(dev, "relinquished")
	cpuGov := c.stockCPUGov
	if cpuGov == "" {
		cpuGov = platform.GovInteractive
	}
	_ = dev.WriteFile(sysfs.CPUScalingGovernor, cpuGov)
	if c.installedMaxFreq != "" {
		_ = dev.WriteFile(sysfs.CPUScalingMaxFreq, c.installedMaxFreq)
	}
	if !c.opt.CPUOnly {
		bwGov := c.stockBWGov
		if bwGov == "" {
			bwGov = platform.GovCPUBWHwmon
		}
		_ = dev.WriteFile(sysfs.DevFreqGovernor, bwGov)
	}
}

// recordInstallState snapshots the pre-install governor names and the
// max-freq bound, so hijack repair knows the legitimate values and
// relinquish knows what to hand back to.
func (c *Controller) recordInstallState(dev platform.Device) {
	if gov, err := dev.ReadFile(sysfs.CPUScalingGovernor); err == nil && gov != platform.GovUserspace {
		c.stockCPUGov = gov
	}
	if gov, err := dev.ReadFile(sysfs.DevFreqGovernor); err == nil && gov != platform.GovUserspace {
		c.stockBWGov = gov
	}
	if mf, err := dev.ReadFile(sysfs.CPUScalingMaxFreq); err == nil {
		c.installedMaxFreq = mf
	}
}

// Degraded reports whether the watchdog currently pins the safe
// configuration.
func (c *Controller) Degraded() bool { return c.degraded }
