package core

import (
	"fmt"
	"math"
)

// PhaseTracker addresses the paper's §V-B second problem class:
// applications with rapidly varying phases (MobileBench's page-load /
// scroll alternation), where a single integrator state chases the phase
// transitions instead of the load. Following the phase-classification
// direction the paper cites ([23] Isci et al., [24] Lau et al.), the
// tracker clusters control cycles online by their measured performance
// signature and keeps an independent regulator state per phase: when the
// app re-enters a known phase, the controller resumes from that phase's
// converged speedup instead of re-learning it.
type PhaseTracker struct {
	maxPhases int
	joinTol   float64 // relative distance to join an existing cluster
	ewma      float64 // centroid adaptation rate

	phases  []phaseState
	current int
}

type phaseState struct {
	centroid float64 // typical measured GIPS of the phase
	visits   int
	s        float64 // per-phase integrator state
	hasS     bool
}

// NewPhaseTracker creates a tracker holding at most maxPhases clusters;
// cycles whose measurement is within joinTol (relative) of a centroid
// join that cluster.
func NewPhaseTracker(maxPhases int, joinTol float64) (*PhaseTracker, error) {
	if maxPhases < 1 {
		return nil, fmt.Errorf("core: maxPhases %d invalid", maxPhases)
	}
	if joinTol <= 0 || joinTol >= 1 {
		return nil, fmt.Errorf("core: joinTol %v outside (0,1)", joinTol)
	}
	return &PhaseTracker{maxPhases: maxPhases, joinTol: joinTol, ewma: 0.2}, nil
}

// Classify assigns the measurement to a phase (creating one if the
// signature is new and capacity remains), updates the centroid, and
// returns the phase index.
func (pt *PhaseTracker) Classify(y float64) int {
	if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		return pt.current
	}
	best, bestDist := -1, math.Inf(1)
	for i, p := range pt.phases {
		d := math.Abs(y-p.centroid) / p.centroid
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	switch {
	case best >= 0 && bestDist <= pt.joinTol:
		// Existing phase: adapt the centroid.
		pt.phases[best].centroid += pt.ewma * (y - pt.phases[best].centroid)
		pt.phases[best].visits++
		pt.current = best
	case len(pt.phases) < pt.maxPhases:
		pt.phases = append(pt.phases, phaseState{centroid: y, visits: 1})
		pt.current = len(pt.phases) - 1
	default:
		// Full: absorb into the nearest cluster.
		pt.phases[best].centroid += pt.ewma * (y - pt.phases[best].centroid)
		pt.phases[best].visits++
		pt.current = best
	}
	return pt.current
}

// Load returns the stored integrator state for the current phase; ok is
// false on first visit.
func (pt *PhaseTracker) Load() (s float64, ok bool) {
	if len(pt.phases) == 0 {
		return 0, false
	}
	p := pt.phases[pt.current]
	return p.s, p.hasS
}

// Store saves the integrator state into the current phase.
func (pt *PhaseTracker) Store(s float64) {
	if len(pt.phases) == 0 {
		return
	}
	pt.phases[pt.current].s = s
	pt.phases[pt.current].hasS = true
}

// Phases returns how many distinct phases have been observed.
func (pt *PhaseTracker) Phases() int { return len(pt.phases) }

// Current returns the index of the active phase.
func (pt *PhaseTracker) Current() int { return pt.current }

// Centroid returns the typical measured performance of phase i.
func (pt *PhaseTracker) Centroid(i int) float64 {
	if i < 0 || i >= len(pt.phases) {
		return 0
	}
	return pt.phases[i].centroid
}
