package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aspeo/internal/profile"
)

// randTable builds a random sorted entry list with strictly increasing
// speedups and positive powers.
func randTable(rng *rand.Rand, n int) []profile.Entry {
	entries := make([]profile.Entry, n)
	s, p := 1.0+rng.Float64(), 1.0+rng.Float64()
	for i := 0; i < n; i++ {
		entries[i] = profile.Entry{FreqIdx: i / 13, BWIdx: i % 13, Speedup: s, PowerW: p}
		s += 0.02 + rng.Float64()*0.5
		p += rng.Float64() * 0.8 // non-convex in general: hull must cope
	}
	return entries
}

// The frontier path must agree with the O(N²) reference search on the
// optimal energy for random tables and interior targets, and the
// returned pair must bracket the target.
func TestFrontierMatchesQuadraticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randTable(rng, 3+rng.Intn(40))
		n := len(entries)
		target := entries[0].Speedup + rng.Float64()*(entries[n-1].Speedup-entries[0].Speedup)

		fr, err := NewFrontier(entries)
		if err != nil {
			return false
		}
		a1, err1 := fr.Optimize(target, T)
		a2, err2 := Optimize(entries, target, T)
		if err1 != nil || err2 != nil {
			return false
		}
		if a1.Low.Speedup > target+1e-12 || a1.High.Speedup < target-1e-12 {
			t.Logf("pair (%v, %v) does not bracket %v", a1.Low.Speedup, a1.High.Speedup, target)
			return false
		}
		return math.Abs(a1.ExpectedPowerW-a2.ExpectedPowerW) < 1e-9*math.Max(1, a2.ExpectedPowerW)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Energy parity with the paper's verbatim LP formulation (Eqns. 4–7):
// the frontier optimum is the LP optimum within 1e-9 (relative), and the
// allocation satisfies the LP constraints.
func TestFrontierMatchesLPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randTable(rng, 3+rng.Intn(25))
		n := len(entries)
		target := entries[0].Speedup + rng.Float64()*(entries[n-1].Speedup-entries[0].Speedup)

		fr, err := NewFrontier(entries)
		if err != nil {
			return false
		}
		a1, err1 := fr.Optimize(target, T)
		a2, err2 := OptimizeLP(entries, target, T)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(a1.ExpectedPowerW-a2.ExpectedPowerW) > 1e-9*math.Max(1, a2.ExpectedPowerW) {
			t.Logf("frontier %v vs LP %v at target %v", a1.ExpectedPowerW, a2.ExpectedPowerW, target)
			return false
		}
		tl, th := a1.TauLow.Seconds(), a1.TauHigh.Seconds()
		if tl < -1e-9 || th < -1e-9 || math.Abs(tl+th-T.Seconds()) > 1e-6 {
			return false
		}
		achieved := (a1.Low.Speedup*tl + a1.High.Speedup*th) / T.Seconds()
		return math.Abs(achieved-target) < 1e-6*math.Max(1, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Outside the table the frontier must reproduce Optimize's fallbacks
// bit-for-bit: cheapest entry below, cheapest-of-plateau above.
func TestFrontierFallbacksMatchOptimize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randTable(rng, 2+rng.Intn(20))
		fr, err := NewFrontier(entries)
		if err != nil {
			return false
		}
		for _, target := range []float64{
			entries[0].Speedup * 0.5,
			entries[0].Speedup,
			entries[len(entries)-1].Speedup,
			entries[len(entries)-1].Speedup * 2,
		} {
			a1, err1 := fr.Optimize(target, T)
			a2, err2 := Optimize(entries, target, T)
			if err1 != nil || err2 != nil {
				return false
			}
			if a1 != a2 {
				t.Logf("target %v: frontier %+v vs quadratic %+v", target, a1, a2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierRejectsUnsortedAndEmpty(t *testing.T) {
	if _, err := NewFrontier(nil); err != ErrEmptyTable {
		t.Fatalf("empty: %v", err)
	}
	unsorted := tbl([2]float64{2, 1}, [2]float64{1, 1})
	if _, err := NewFrontier(unsorted); err == nil {
		t.Fatal("unsorted input accepted")
	}
}

func TestFrontierBadTarget(t *testing.T) {
	fr, err := NewFrontier(tbl([2]float64{1, 1}, [2]float64{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := fr.Optimize(target, T); err == nil {
			t.Errorf("target %v should error", target)
		}
	}
}

func TestFrontierCollapsesDuplicateSpeedups(t *testing.T) {
	entries := tbl(
		[2]float64{1, 3.0},
		[2]float64{1, 1.5}, // same speedup, cheaper: the hull point
		[2]float64{2, 2.0},
	)
	fr, err := NewFrontier(entries)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Len() != 2 {
		t.Fatalf("hull size %d, want 2", fr.Len())
	}
	a, err := fr.Optimize(1.5, T)
	if err != nil {
		t.Fatal(err)
	}
	if a.Low.PowerW != 1.5 {
		t.Fatalf("duplicate collapse kept power %v, want 1.5", a.Low.PowerW)
	}
}

// The old absolute 1e-9 equal-speedup fallback underflows one ulp on
// large-speedup tables; the tolerance must be relative so those tables
// still optimize.
func TestOptimizeLargeSpeedupTable(t *testing.T) {
	const scale = 1e9
	entries := tbl(
		[2]float64{1 * scale, 1.6},
		[2]float64{2 * scale, 2.2},
		[2]float64{3 * scale, 3.6},
	)
	target := 1.5 * scale
	a, err := Optimize(entries, target, T)
	if err != nil {
		t.Fatal(err)
	}
	if a.Low.Speedup != 1*scale || a.High.Speedup != 2*scale {
		t.Fatalf("bracket (%v, %v)", a.Low.Speedup, a.High.Speedup)
	}
	fr, err := NewFrontier(entries)
	if err != nil {
		t.Fatal(err)
	}
	af, err := fr.Optimize(target, T)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(af.ExpectedPowerW-a.ExpectedPowerW) > 1e-9*a.ExpectedPowerW {
		t.Fatalf("frontier %v vs quadratic %v", af.ExpectedPowerW, a.ExpectedPowerW)
	}
}

// TestControllerAllocCache drives the controller's optimize path twice
// at one target: the second call must come from the cache and return the
// identical allocation.
func TestControllerAllocCache(t *testing.T) {
	tab := &profile.Table{
		App: "synthetic", BaseGIPS: 1,
		Entries: []profile.Entry{
			{FreqIdx: 0, BWIdx: 0, Speedup: 1.0, PowerW: 1.5, GIPS: 1.0},
			{FreqIdx: 1, BWIdx: 0, Speedup: 2.0, PowerW: 2.5, GIPS: 2.0},
			{FreqIdx: 2, BWIdx: 0, Speedup: 3.0, PowerW: 4.5, GIPS: 3.0},
		},
	}
	ctl, err := New(DefaultOptions(tab, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	hits0 := ctl.AllocCacheHits()
	a1, err := ctl.optimize(1.7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ctl.optimize(1.7)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.AllocCacheHits() != hits0+1 {
		t.Fatalf("cache hits %d, want %d", ctl.AllocCacheHits(), hits0+1)
	}
	if a1 != a2 {
		t.Fatalf("cache returned a different allocation: %+v vs %+v", a1, a2)
	}
	// A target within the same quantization bucket also hits.
	if _, err := ctl.optimize(1.7 + 1.0/(4*allocCacheScale)); err != nil {
		t.Fatal(err)
	}
	if ctl.AllocCacheHits() != hits0+2 {
		t.Fatalf("nearby target missed the cache: hits %d", ctl.AllocCacheHits())
	}
}

// paperTable234 is a full 18×13 configuration table (the paper's entire
// space, pre-pruning) with a realistic concave speedup curve and a
// superlinear power curve.
func paperTable234() []profile.Entry {
	entries := make([]profile.Entry, 0, 234)
	s := 1.0
	for i := 0; i < 234; i++ {
		fi, bi := i/13, i%13
		s += 0.02 + 0.05/float64(1+i%7)
		p := 1.2 + 0.015*s*s + 0.03*float64(bi)
		entries = append(entries, profile.Entry{FreqIdx: fi, BWIdx: bi, Speedup: s, PowerW: p})
	}
	return entries
}

var benchTargets = []float64{1.3, 2.0, 3.1, 4.4, 5.2, 6.0}

// BenchmarkOptimizeQuadratic measures the O(N²) pair scan the serial
// controller ran every 2 s cycle, at the full 18×13 = 234-entry table.
func BenchmarkOptimizeQuadratic(b *testing.B) {
	entries := paperTable234()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(entries, benchTargets[i%len(benchTargets)], T); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeFrontier measures the hull binary search on the same
// table (hull built once, as in the controller).
func BenchmarkOptimizeFrontier(b *testing.B) {
	entries := paperTable234()
	fr, err := NewFrontier(entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fr.Len()), "hull_vertices")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.Optimize(benchTargets[i%len(benchTargets)], T); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewFrontier measures the one-time hull construction cost.
func BenchmarkNewFrontier(b *testing.B) {
	entries := paperTable234()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFrontier(entries); err != nil {
			b.Fatal(err)
		}
	}
}
