package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"aspeo/internal/kalman"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
)

// This file implements platform.Checkpointer for the Controller: the
// full regulator state — Kalman filter, integrator, phase tracker,
// scheduler dwell position, allocation cache/memo and hit counter,
// resilience ladder — serialized so a restored controller continues
// bit-identically. Structures rebuilt deterministically from the
// immutable profile table (entries, frontier, LP workspace, precomputed
// sysfs value strings) are not serialized; they are reconstructed by
// New on the restored cell and lazily on first actuation.
//
// The allocation cache IS serialized even though the solver is a pure
// function of the table: AllocCacheHits appears in the run summary, so
// dropping the cache would change the restored run's hit counts and
// break byte-identity of summaries. Cache entries are sorted by key so
// the snapshot bytes themselves are deterministic (map iteration is
// not). OptimizerWallTime is deliberately NOT serialized — it is host
// wall time, not simulation state, and no deterministic output includes
// it.

type allocCacheEntry struct {
	QT    float64    `json:"qt"`
	Alloc Allocation `json:"alloc"`
}

type trackerState struct {
	Phases  []trackerPhase `json:"phases"`
	Current int            `json:"current"`
}

type trackerPhase struct {
	Centroid float64 `json:"centroid"`
	Visits   int     `json:"visits"`
	S        float64 `json:"s"`
	HasS     bool    `json:"has_s"`
}

type controllerState struct {
	CyclesRun int     `json:"cycles_run"`
	SPrev     float64 `json:"s_prev"`

	Slots     []profile.Entry    `json:"slots"`
	SlotIdx   int                `json:"slot_idx"`
	Attached  bool               `json:"attached"`
	LastAlloc Allocation         `json:"last_alloc"`
	AllocLog  []AllocationRecord `json:"alloc_log,omitempty"`

	AllocCache     []allocCacheEntry `json:"alloc_cache"`
	AllocCacheHits int               `json:"alloc_cache_hits"`
	MemoQT         float64           `json:"memo_qt"`
	MemoAlloc      Allocation        `json:"memo_alloc"`
	MemoOK         bool              `json:"memo_ok"`

	Kalman  kalman.State  `json:"kalman"`
	Tracker *trackerState `json:"tracker,omitempty"`

	Health           platform.Health `json:"health"`
	RetriesLeft      int             `json:"retries_left"`
	CycleFailed      bool            `json:"cycle_failed"`
	Degraded         bool            `json:"degraded"`
	RecentY          []float64       `json:"recent_y"`
	RecentYPos       int             `json:"recent_y_pos"`
	OutlierRun       int             `json:"outlier_run"`
	StockCPUGov      string          `json:"stock_cpu_gov"`
	StockBWGov       string          `json:"stock_bw_gov"`
	InstalledMaxFreq string          `json:"installed_max_freq"`

	GateCause     string `json:"gate_cause"`
	LastSolvePath string `json:"last_solve_path"`

	Cycles       int     `json:"cycles"`
	SumAbsErr    float64 `json:"sum_abs_err"`
	LastMeasured float64 `json:"last_measured"`
}

// CheckpointState implements platform.Checkpointer.
func (c *Controller) CheckpointState() (json.RawMessage, error) {
	s := controllerState{
		CyclesRun: c.cyclesRun,
		SPrev:     c.sPrev,

		Slots:     c.slots,
		SlotIdx:   c.slotIdx,
		Attached:  c.attached,
		LastAlloc: c.lastAlloc,
		AllocLog:  c.allocLog,

		AllocCacheHits: c.allocCacheHits,
		MemoQT:         c.memoQT,
		MemoAlloc:      c.memoAlloc,
		MemoOK:         c.memoOK,

		Kalman: c.kf.State(),

		Health:           c.health,
		RetriesLeft:      c.retriesLeft,
		CycleFailed:      c.cycleFailed,
		Degraded:         c.degraded,
		RecentY:          c.recentY,
		RecentYPos:       c.recentYPos,
		OutlierRun:       c.outlierRun,
		StockCPUGov:      c.stockCPUGov,
		StockBWGov:       c.stockBWGov,
		InstalledMaxFreq: c.installedMaxFreq,

		GateCause:     c.gateCause,
		LastSolvePath: c.lastSolvePath,

		Cycles:       c.cycles,
		SumAbsErr:    c.sumAbsErr,
		LastMeasured: c.lastMeasured,
	}
	s.AllocCache = make([]allocCacheEntry, 0, len(c.allocCache))
	for qt, a := range c.allocCache {
		s.AllocCache = append(s.AllocCache, allocCacheEntry{QT: qt, Alloc: a})
	}
	sort.Slice(s.AllocCache, func(i, j int) bool { return s.AllocCache[i].QT < s.AllocCache[j].QT })
	if c.tracker != nil {
		ts := &trackerState{Current: c.tracker.current}
		for _, p := range c.tracker.phases {
			ts.Phases = append(ts.Phases, trackerPhase{
				Centroid: p.centroid, Visits: p.visits, S: p.s, HasS: p.hasS,
			})
		}
		s.Tracker = ts
	}
	return json.Marshal(s)
}

// RestoreState implements platform.Checkpointer. The controller must
// have been rebuilt (New + Install) from the same options the snapshot
// was taken under; only the dynamic state is overwritten here.
func (c *Controller) RestoreState(raw json.RawMessage, _ platform.Device) error {
	var s controllerState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if len(s.Slots) != len(c.slots) {
		return fmt.Errorf("core: restore %d slots into schedule of %d", len(s.Slots), len(c.slots))
	}
	if s.SlotIdx < 0 || s.SlotIdx >= len(c.slots) {
		return fmt.Errorf("core: restore slot index %d out of %d", s.SlotIdx, len(c.slots))
	}
	if (s.Tracker != nil) != (c.tracker != nil) {
		return fmt.Errorf("core: restore phase-tracker state mismatch (snapshot %v, controller %v)",
			s.Tracker != nil, c.tracker != nil)
	}
	if err := c.kf.Restore(s.Kalman); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}

	c.cyclesRun = s.CyclesRun
	c.sPrev = s.SPrev
	copy(c.slots, s.Slots)
	c.slotIdx = s.SlotIdx
	c.attached = s.Attached
	c.lastAlloc = s.LastAlloc
	c.allocLog = s.AllocLog

	clear(c.allocCache)
	for _, e := range s.AllocCache {
		c.allocCache[e.QT] = e.Alloc
	}
	c.allocCacheHits = s.AllocCacheHits
	c.memoQT, c.memoAlloc, c.memoOK = s.MemoQT, s.MemoAlloc, s.MemoOK

	if c.tracker != nil {
		c.tracker.phases = c.tracker.phases[:0]
		for _, p := range s.Tracker.Phases {
			c.tracker.phases = append(c.tracker.phases, phaseState{
				centroid: p.Centroid, visits: p.Visits, s: p.S, hasS: p.HasS,
			})
		}
		if s.Tracker.Current < 0 || (len(c.tracker.phases) > 0 && s.Tracker.Current >= len(c.tracker.phases)) {
			return fmt.Errorf("core: restore tracker current %d out of %d phases",
				s.Tracker.Current, len(c.tracker.phases))
		}
		c.tracker.current = s.Tracker.Current
	}

	c.health = s.Health
	c.retriesLeft = s.RetriesLeft
	c.cycleFailed = s.CycleFailed
	c.degraded = s.Degraded
	// recentY is a capacity-bounded ring; rebuild it at the restored
	// length so pushRecentY's append/rotate decisions replay exactly.
	c.recentY = append(c.recentY[:0], s.RecentY...)
	c.recentYPos = s.RecentYPos
	c.outlierRun = s.OutlierRun
	c.stockCPUGov = s.StockCPUGov
	c.stockBWGov = s.StockBWGov
	c.installedMaxFreq = s.InstalledMaxFreq

	c.gateCause = s.GateCause
	c.lastSolvePath = s.LastSolvePath

	c.cycles = s.Cycles
	c.sumAbsErr = s.SumAbsErr
	c.lastMeasured = s.LastMeasured
	return nil
}

var _ platform.Checkpointer = (*Controller)(nil)
