package core

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

// syntheticTable builds a plausible coordinated profile for tests without
// running the profiler: speedups and powers increase along a frontier.
func syntheticTable(base float64) *profile.Table {
	t := &profile.Table{App: "synthetic", Load: "BL", Mode: profile.Coordinated, BaseGIPS: base}
	s, p, step := 1.0, 1.6, 0.012
	for f := 0; f < 9; f++ {
		for bw := 0; bw < 13; bw++ {
			t.Entries = append(t.Entries, profile.Entry{
				FreqIdx: 2 * f, BWIdx: bw,
				Speedup: s, PowerW: p, GIPS: s * base,
			})
			s += 0.02
			// Strictly convex power/speedup frontier: the energy
			// optimum is unique, so LP and search pick identical
			// allocations.
			p += step
			step += 0.0004
		}
	}
	return t
}

func TestNewValidatesOptions(t *testing.T) {
	tab := syntheticTable(0.13)
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"nil table", func(o *Options) { o.Table = nil }},
		{"zero target", func(o *Options) { o.TargetGIPS = 0 }},
		{"negative target", func(o *Options) { o.TargetGIPS = -1 }},
		{"cycle not multiple", func(o *Options) { o.CycleT = 2100 * time.Millisecond }},
		{"zero quantum", func(o *Options) { o.Quantum = 0 }},
		{"perf too fast", func(o *Options) { o.PerfPeriod = 10 * time.Millisecond }},
		{"bad pole", func(o *Options) { o.Pole = 1.0 }},
		{"negative pole", func(o *Options) { o.Pole = -0.1 }},
		{"mode mismatch", func(o *Options) { o.CPUOnly = true }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := DefaultOptions(tab, 0.3)
			c.mut(&opts)
			if _, err := New(opts); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
	if _, err := New(DefaultOptions(tab, 0.3)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestCPUOnlyRequiresGovernedTable(t *testing.T) {
	tab := syntheticTable(0.13)
	tab.Mode = profile.Governed
	opts := DefaultOptions(tab, 0.3)
	opts.CPUOnly = true
	if _, err := New(opts); err != nil {
		t.Fatalf("governed table with CPUOnly should work: %v", err)
	}
	opts.CPUOnly = false
	if _, err := New(opts); err == nil {
		t.Fatal("governed table without CPUOnly must be rejected")
	}
}

func TestInstallSwitchesGovernors(t *testing.T) {
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.NoLoad, Seed: 1, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	ctl, err := New(DefaultOptions(syntheticTable(0.09), 0.12))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Install(eng); err != nil {
		t.Fatal(err)
	}
	if gov, _ := ph.FS().Read(sysfs.CPUScalingGovernor); gov != sim.GovUserspace {
		t.Fatalf("cpu governor = %q", gov)
	}
	if gov, _ := ph.FS().Read(sysfs.DevFreqGovernor); gov != sim.GovUserspace {
		t.Fatalf("devfreq governor = %q", gov)
	}
}

func TestCPUOnlyLeavesDevfreqAlone(t *testing.T) {
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.NoLoad, Seed: 1, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	tab := syntheticTable(0.09)
	tab.Mode = profile.Governed
	for i := range tab.Entries {
		tab.Entries[i].BWIdx = profile.GovernedBW
	}
	opts := DefaultOptions(tab, 0.12)
	opts.CPUOnly = true
	ctl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Install(eng); err != nil {
		t.Fatal(err)
	}
	if gov, _ := ph.FS().Read(sysfs.DevFreqGovernor); gov != sim.GovCPUBWHwmon {
		t.Fatalf("devfreq governor = %q, want untouched cpubw_hwmon", gov)
	}
}

// End-to-end closed loop: the controller must track the target GIPS on a
// real workload within a few percent, and its actuation must follow the
// two-configuration schedule.
func TestClosedLoopTracksTarget(t *testing.T) {
	// A batch app runs at capacity, so the controller can modulate its
	// speed up AND down; target the middle of the profiled range.
	spec := workload.VidCon()
	opt := profile.Options{
		Load: workload.BaselineLoad, Mode: profile.Coordinated,
		Seeds: []int64{11}, Warmup: 2 * time.Second, Window: 12 * time.Second,
	}
	tab, err := profile.Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	target := 0.5 * (tab.MinSpeedup() + tab.MaxSpeedup()) * tab.BaseGIPS

	ph, err := sim.NewPhone(sim.Config{
		Foreground: spec, Load: workload.BaselineLoad, Seed: 7, ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	ctl, err := New(DefaultOptions(tab, target))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Install(eng); err != nil {
		t.Fatal(err)
	}
	// 60 s keeps the measurement inside the conversion (the batch
	// completes at ~75 s at this target rate).
	st := eng.Run(60*time.Second, false)
	if ctl.Cycles() < 25 {
		t.Fatalf("only %d control cycles ran", ctl.Cycles())
	}
	if math.Abs(st.GIPS-target)/target > 0.08 {
		t.Fatalf("closed loop delivered %.4f GIPS, target %.4f (>8%% off)", st.GIPS, target)
	}
	if ctl.BaseSpeedEstimate() <= 0 {
		t.Fatal("Kalman estimate never initialized")
	}
}

// The controller must save energy against over-provisioning: pinning the
// maximum configuration costs more than the controller at the same
// delivered performance for a demand-limited app.
func TestControllerBeatsMaxPinned(t *testing.T) {
	spec := workload.Spotify()
	opt := profile.Options{
		Load: workload.NoLoad, Mode: profile.Coordinated,
		Seeds: []int64{11}, Warmup: 2 * time.Second, Window: 12 * time.Second,
	}
	tab, err := profile.Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}

	run := func(install func(*sim.Engine) error) sim.Stats {
		ph, err := sim.NewPhone(sim.Config{
			Foreground: spec, Load: workload.NoLoad, Seed: 7, ScreenOn: true, WiFiOn: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(ph)
		if err := install(eng); err != nil {
			t.Fatal(err)
		}
		return eng.Run(spec.RunFor, false)
	}

	pinned := run(func(eng *sim.Engine) error {
		eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 17, BWIdx: 12})
		return nil
	})
	ctlStats := run(func(eng *sim.Engine) error {
		ctl, err := New(DefaultOptions(tab, pinned.GIPS))
		if err != nil {
			return err
		}
		return ctl.Install(eng)
	})
	if ctlStats.EnergyJ >= pinned.EnergyJ {
		t.Fatalf("controller (%.1f J) did not beat max-pinned (%.1f J)",
			ctlStats.EnergyJ, pinned.EnergyJ)
	}
	if ctlStats.GIPS < 0.9*pinned.GIPS {
		t.Fatalf("controller lost too much performance: %.4f vs %.4f",
			ctlStats.GIPS, pinned.GIPS)
	}
}

// UseLP must produce the same closed-loop behaviour as the direct search.
func TestLPAndSearchAgreeOnline(t *testing.T) {
	tab := syntheticTable(0.13)
	run := func(useLP bool) float64 {
		ph, err := sim.NewPhone(sim.Config{
			Foreground: workload.AngryBirds(), Load: workload.NoLoad, Seed: 5,
			ScreenOn: true, WiFiOn: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(ph)
		opts := DefaultOptions(tab, 0.3)
		opts.UseLP = useLP
		opts.Seed = 5
		ctl, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Install(eng); err != nil {
			t.Fatal(err)
		}
		st := eng.Run(40*time.Second, false)
		return st.EnergyJ
	}
	search, lp := run(false), run(true)
	if math.Abs(search-lp)/search > 0.02 {
		t.Fatalf("LP (%f J) and search (%f J) diverge online", lp, search)
	}
}

func TestSchedulerQuantization(t *testing.T) {
	tab := syntheticTable(0.13)
	opts := DefaultOptions(tab, 0.3)
	ctl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 10 slots of 200 ms in a 2 s cycle.
	if got := len(ctl.slots); got != 10 {
		t.Fatalf("slots = %d, want 10", got)
	}
	alloc := Allocation{
		Low:     tab.Entries[0],
		High:    tab.Entries[50],
		TauLow:  1300 * time.Millisecond,
		TauHigh: 700 * time.Millisecond,
	}
	ctl.fillSlots(alloc)
	hi := 0
	for _, s := range ctl.slots {
		if s == tab.Entries[50] {
			hi++
		}
	}
	// 700 ms rounds to 4 slots (3.5 → 4).
	if hi != 4 {
		t.Fatalf("high slots = %d, want 4", hi)
	}
	// Low runs first (single transition per cycle).
	if ctl.slots[0] != tab.Entries[0] || ctl.slots[9] != tab.Entries[50] {
		t.Fatal("slot order wrong: low must run before high")
	}
}

func TestDiagnosticsAccessors(t *testing.T) {
	tab := syntheticTable(0.13)
	ctl, err := New(DefaultOptions(tab, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Cycles() != 0 || ctl.MeanAbsError() != 0 {
		t.Fatal("fresh controller has non-zero diagnostics")
	}
	if ctl.CurrentSpeedupSetting() <= 0 {
		t.Fatal("initial speedup setting must be positive")
	}
	if a := ctl.LastAllocation(); a.TauLow+a.TauHigh != 2*time.Second {
		t.Fatalf("initial allocation does not fill the cycle: %+v", a)
	}
}
