// Package core implements the paper's contribution: the application-
// specific, performance-aware energy controller (paper §III-B).
//
// Each control cycle of T = 2 s the controller
//
//  1. measures application performance y_n in GIPS through the perf tool
//     (Eqn. 2: e_n = r − y_n),
//  2. updates its Kalman estimate of the application base speed b_n and
//     integrates the error into a required speedup
//     s_n = s_{n−1} + e_{n−1}/b_{n−1} (Eqn. 3 — an adaptive-gain
//     integral regulator),
//  3. solves the energy-minimization linear program (Eqns. 4–7) over the
//     offline profiling table, whose optimum uses at most two
//     configurations c_l and c_h, and
//  4. schedules c_l for τ_l seconds and c_h for τ_h seconds by writing
//     the cpufreq/devfreq userspace sysfs files, on a 200 ms quantum.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"aspeo/internal/lp"
	"aspeo/internal/profile"
)

// Allocation is the energy optimizer's decision for one control cycle:
// run Low for TauLow, then High for TauHigh (TauLow + TauHigh = T). When
// a single configuration suffices, Low == High and TauHigh == 0.
type Allocation struct {
	Low, High profile.Entry
	TauLow    time.Duration
	TauHigh   time.Duration
	// ExpectedPowerW is the table-predicted average power of the mix.
	ExpectedPowerW float64
	// ExpectedSpeedup is the table-predicted average speedup.
	ExpectedSpeedup float64
}

// Errors returned by the optimizer.
var (
	ErrEmptyTable = errors.New("core: empty profile table")
	ErrBadTarget  = errors.New("core: target speedup must be positive and finite")
)

// Optimize solves the paper's energy LP by direct search: because the
// optimum of Eqns. (4)–(7) is a basic solution with at most two nonzero
// durations bracketing the required speedup (Fig. 3), it suffices to
// examine every (below, above) pair — O(N²), as the paper notes.
//
// entries must be sorted by ascending speedup (profile.Table.SortedBySpeedup).
func Optimize(entries []profile.Entry, target float64, T time.Duration) (Allocation, error) {
	if len(entries) == 0 {
		return Allocation{}, ErrEmptyTable
	}
	if !(target > 0) || math.IsInf(target, 0) {
		return Allocation{}, fmt.Errorf("%w: %v", ErrBadTarget, target)
	}

	minS, maxS := entries[0].Speedup, entries[len(entries)-1].Speedup

	// Below the table: no configuration is slow enough, so pick the
	// cheapest one (it still over-delivers performance).
	if target <= minS {
		best := entries[0]
		for _, e := range entries {
			if e.PowerW < best.PowerW {
				best = e
			}
		}
		return singleConfig(best, T), nil
	}
	// Above the table: saturate at the fastest configuration. Profiled
	// speedups of a demand-paced app are flat past the saturation knee,
	// so configurations within a small tolerance of the maximum deliver
	// the same performance — pick the cheapest of them.
	if target >= maxS {
		tol := 0.01 * maxS
		best := entries[len(entries)-1]
		for _, e := range entries {
			if e.Speedup >= maxS-tol && e.PowerW < best.PowerW {
				best = e
			}
		}
		return singleConfig(best, T), nil
	}

	bestEnergy := math.Inf(1)
	var best Allocation
	for _, lo := range entries {
		if lo.Speedup > target {
			continue
		}
		for _, hi := range entries {
			if hi.Speedup < target || hi.Speedup <= lo.Speedup {
				continue
			}
			// τ_h from the performance constraint Sᵀu = s_n·T.
			frac := (target - lo.Speedup) / (hi.Speedup - lo.Speedup)
			energy := (lo.PowerW*(1-frac) + hi.PowerW*frac) * T.Seconds()
			if energy < bestEnergy {
				bestEnergy = energy
				tauHigh := time.Duration(float64(T) * frac)
				best = Allocation{
					Low: lo, High: hi,
					TauLow:          T - tauHigh,
					TauHigh:         tauHigh,
					ExpectedPowerW:  energy / T.Seconds(),
					ExpectedSpeedup: target,
				}
			}
		}
	}
	if math.IsInf(bestEnergy, 1) {
		// target strictly inside (minS, maxS) guarantees a pair exists;
		// reaching here means equal speedups bracket it exactly. The
		// tolerance is relative to the target so large-speedup tables
		// (where 1e-9 is below one ulp) still match their exact entry.
		tol := 1e-9 * math.Max(1, math.Abs(target))
		for _, e := range entries {
			if math.Abs(e.Speedup-target) < tol {
				return singleConfig(e, T), nil
			}
		}
		return Allocation{}, fmt.Errorf("core: no feasible pair for target %v", target)
	}
	return best, nil
}

// pruneDominated removes entries that are ε-dominated: entry A is pruned
// when some entry B has strictly lower power and speedup(B) ≥
// speedup(A)/(1+ε). With ε = 0 this is plain Pareto pruning; a small
// positive ε additionally collapses the saturation plateau of demand-
// paced applications, whose measured speedups differ only by noise.
// entries must be sorted by ascending speedup; the result keeps that
// order and is never empty.
func pruneDominated(entries []profile.Entry, eps float64) []profile.Entry {
	if eps < 0 || len(entries) <= 1 {
		return entries
	}
	keep := make([]profile.Entry, 0, len(entries))
	for i, e := range entries {
		dominated := false
		for j, other := range entries {
			if i == j {
				continue
			}
			if other.PowerW < e.PowerW && other.Speedup >= e.Speedup/(1+eps) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, e)
		}
	}
	if len(keep) == 0 {
		return entries
	}
	return keep
}

func singleConfig(e profile.Entry, T time.Duration) Allocation {
	return Allocation{
		Low: e, High: e, TauLow: T, TauHigh: 0,
		ExpectedPowerW: e.PowerW, ExpectedSpeedup: e.Speedup,
	}
}

// OptimizeLP solves the same problem with the general simplex solver from
// internal/lp — the formulation of Eqns. (4)–(7) verbatim. It exists to
// cross-validate Optimize (they must agree on the optimal energy) and to
// demonstrate the LP formulation; the direct search is what the online
// controller uses.
func OptimizeLP(entries []profile.Entry, target float64, T time.Duration) (Allocation, error) {
	n := len(entries)
	var ws lp.Workspace
	return optimizeLPWith(&ws, make([]float64, n), make([]float64, n), make([]float64, n),
		entries, target, T)
}

// optimizeLP is the controller's UseLP-mode solve: the same formulation
// as OptimizeLP, but the simplex workspace and the problem-row vectors
// persist on the controller across cycles instead of being rebuilt.
func (c *Controller) optimizeLP(target float64) (Allocation, error) {
	if n := len(c.entries); len(c.lpC) < n {
		c.lpC = make([]float64, n)
		c.lpS = make([]float64, n)
		c.lpOnes = make([]float64, n)
	}
	n := len(c.entries)
	return optimizeLPWith(&c.lpWS, c.lpC[:n], c.lpS[:n], c.lpOnes[:n],
		c.entries, target, c.opt.CycleT)
}

// optimizeLPWith solves the energy LP into caller-supplied scratch: c,
// sRow and ones must be len(entries) vectors, overwritten on every call.
func optimizeLPWith(ws *lp.Workspace, c, sRow, ones []float64,
	entries []profile.Entry, target float64, T time.Duration) (Allocation, error) {
	if len(entries) == 0 {
		return Allocation{}, ErrEmptyTable
	}
	if !(target > 0) || math.IsInf(target, 0) {
		return Allocation{}, fmt.Errorf("%w: %v", ErrBadTarget, target)
	}
	minS, maxS := entries[0].Speedup, entries[len(entries)-1].Speedup
	clamped := math.Max(minS, math.Min(maxS, target))

	for i, e := range entries {
		c[i] = e.PowerW
		sRow[i] = e.Speedup
		ones[i] = 1
	}
	Tsec := T.Seconds()
	sol, err := ws.Solve(&lp.Problem{
		C:   c,
		A:   [][]float64{sRow, ones},
		B:   []float64{clamped * Tsec, Tsec},
		Rel: []lp.Relation{lp.EQ, lp.EQ},
	})
	if err != nil {
		return Allocation{}, fmt.Errorf("core: lp solve: %w", err)
	}

	// Extract the (at most two) nonzero durations.
	type pick struct {
		e   profile.Entry
		tau float64
	}
	var picks []pick
	for i, u := range sol.X {
		if u > 1e-7 {
			picks = append(picks, pick{entries[i], u})
		}
	}
	switch len(picks) {
	case 0:
		return Allocation{}, fmt.Errorf("core: lp returned empty allocation")
	case 1:
		a := singleConfig(picks[0].e, T)
		a.ExpectedPowerW = sol.Objective / Tsec
		return a, nil
	case 2:
		lo, hi := picks[0], picks[1]
		if lo.e.Speedup > hi.e.Speedup {
			lo, hi = hi, lo
		}
		return Allocation{
			Low: lo.e, High: hi.e,
			TauLow:          time.Duration(lo.tau * float64(time.Second)),
			TauHigh:         time.Duration(hi.tau * float64(time.Second)),
			ExpectedPowerW:  sol.Objective / Tsec,
			ExpectedSpeedup: clamped,
		}, nil
	default:
		return Allocation{}, fmt.Errorf("core: lp basic solution has %d nonzeros, expected <= 2", len(picks))
	}
}
