package core

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

func TestNewPhaseTrackerValidation(t *testing.T) {
	if _, err := NewPhaseTracker(0, 0.2); err == nil {
		t.Fatal("zero phases accepted")
	}
	if _, err := NewPhaseTracker(4, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := NewPhaseTracker(4, 1.5); err == nil {
		t.Fatal("tolerance >= 1 accepted")
	}
}

func TestClassifySeparatesPhases(t *testing.T) {
	pt, err := NewPhaseTracker(4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Two alternating signatures 4× apart.
	seq := []float64{0.3, 1.2, 0.31, 1.25, 0.29, 1.18}
	var ids []int
	for _, y := range seq {
		ids = append(ids, pt.Classify(y))
	}
	if pt.Phases() != 2 {
		t.Fatalf("phases = %d, want 2", pt.Phases())
	}
	if ids[0] != ids[2] || ids[2] != ids[4] {
		t.Fatalf("low phase not stable: %v", ids)
	}
	if ids[1] != ids[3] || ids[3] != ids[5] {
		t.Fatalf("high phase not stable: %v", ids)
	}
	if ids[0] == ids[1] {
		t.Fatalf("phases merged: %v", ids)
	}
}

func TestClassifyMergesNearbySignatures(t *testing.T) {
	pt, _ := NewPhaseTracker(4, 0.25)
	a := pt.Classify(1.00)
	b := pt.Classify(1.10) // within 25%
	if a != b || pt.Phases() != 1 {
		t.Fatalf("nearby signatures split: %d vs %d, phases %d", a, b, pt.Phases())
	}
}

func TestClassifyCapsPhaseCount(t *testing.T) {
	pt, _ := NewPhaseTracker(2, 0.05)
	for _, y := range []float64{0.1, 1.0, 5.0, 20.0} {
		pt.Classify(y)
	}
	if pt.Phases() != 2 {
		t.Fatalf("phases = %d, want cap 2", pt.Phases())
	}
}

func TestClassifyIgnoresGarbage(t *testing.T) {
	pt, _ := NewPhaseTracker(4, 0.2)
	pt.Classify(1.0)
	cur := pt.Current()
	for _, y := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if got := pt.Classify(y); got != cur {
			t.Fatalf("garbage %v moved the phase", y)
		}
	}
	if pt.Phases() != 1 {
		t.Fatalf("garbage created phases: %d", pt.Phases())
	}
}

func TestLoadStorePerPhase(t *testing.T) {
	pt, _ := NewPhaseTracker(4, 0.2)
	if _, ok := pt.Load(); ok {
		t.Fatal("empty tracker returned state")
	}
	pt.Classify(0.3)
	if _, ok := pt.Load(); ok {
		t.Fatal("first visit must have no stored state")
	}
	pt.Store(2.0)
	pt.Classify(1.2) // new phase
	pt.Store(5.0)
	pt.Classify(0.31) // back to phase 0
	if s, ok := pt.Load(); !ok || s != 2.0 {
		t.Fatalf("phase 0 state = %v, %v; want 2.0", s, ok)
	}
	pt.Classify(1.19)
	if s, ok := pt.Load(); !ok || s != 5.0 {
		t.Fatalf("phase 1 state = %v, %v; want 5.0", s, ok)
	}
}

func TestCentroidAccessor(t *testing.T) {
	pt, _ := NewPhaseTracker(4, 0.2)
	pt.Classify(0.5)
	if got := pt.Centroid(0); got != 0.5 {
		t.Fatalf("centroid = %v", got)
	}
	if got := pt.Centroid(7); got != 0 {
		t.Fatalf("out-of-range centroid = %v", got)
	}
}

// Integration: on the phase-heavy MobileBench, the phase-aware controller
// must detect the load/scroll alternation and not regress tracking error
// versus the plain controller.
func TestPhaseAwareOnMobileBench(t *testing.T) {
	spec := workload.MobileBench()
	opt := profile.Options{
		Load: workload.BaselineLoad, Mode: profile.Coordinated,
		Seeds: []int64{11}, Warmup: 2 * time.Second, Window: 16 * time.Second,
	}
	tab, err := profile.Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	target := 0.8 * tab.MaxSpeedup() * tab.BaseGIPS

	run := func(phaseAware bool) (*Controller, sim.Stats) {
		ph, err := sim.NewPhone(sim.Config{
			Foreground: spec, Load: workload.BaselineLoad, Seed: 7,
			ScreenOn: true, WiFiOn: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(ph)
		opts := DefaultOptions(tab, target)
		opts.Seed = 7
		opts.PhaseAware = phaseAware
		ctl, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Install(eng); err != nil {
			t.Fatal(err)
		}
		st := eng.Run(spec.RunFor*3, true)
		return ctl, st
	}

	plain, _ := run(false)
	aware, _ := run(true)

	if plain.PhasesDetected() != 0 {
		t.Fatal("plain controller should not track phases")
	}
	if aware.PhasesDetected() < 2 {
		t.Fatalf("phase-aware controller detected %d phases on MobileBench, want >= 2",
			aware.PhasesDetected())
	}
	if aware.MeanAbsError() > 1.5*plain.MeanAbsError() {
		t.Fatalf("phase awareness badly regressed tracking: %.4f vs %.4f",
			aware.MeanAbsError(), plain.MeanAbsError())
	}
}
