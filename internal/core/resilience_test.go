package core

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/fault"
	"aspeo/internal/governor"
	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

func newTestController(t *testing.T, mut func(*Options)) *Controller {
	t.Helper()
	opts := DefaultOptions(syntheticTable(0.13), 0.3)
	if mut != nil {
		mut(&opts)
	}
	ctl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func TestResilienceDefaults(t *testing.T) {
	d := DefaultResilience()
	if d.OutlierPersistence > d.DegradeAfter {
		t.Fatal("persistence above DegradeAfter: genuine phase shifts would trip the watchdog")
	}
	// A zero Resilience in Options must mean "hardened with defaults".
	ctl := newTestController(t, nil)
	if ctl.res != d {
		t.Fatalf("zero Options.Resilience = %+v, want defaults %+v", ctl.res, d)
	}
	// Explicit fields survive defaulting.
	r := Resilience{OutlierSigma: 3}.withDefaults()
	if r.OutlierSigma != 3 || r.DegradeAfter != d.DegradeAfter {
		t.Fatalf("withDefaults clobbered explicit fields: %+v", r)
	}
}

func TestGateRejectsNonFinite(t *testing.T) {
	ctl := newTestController(t, nil)
	for _, z := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if ctl.gate(0.5, z) {
			t.Fatalf("gate accepted z=%v", z)
		}
	}
	h := ctl.Health()
	if h.NonFiniteSamples != 3 || h.RejectedSamples != 3 {
		t.Fatalf("health = %+v, want 3 non-finite rejections", h)
	}
}

func TestGateRejectsStuck(t *testing.T) {
	ctl := newTestController(t, nil) // StuckWindow 3
	b := 0.13
	if !ctl.gate(0.5, b) || !ctl.gate(0.5, b) {
		t.Fatal("gate rejected the first identical readings prematurely")
	}
	if ctl.gate(0.5, b) {
		t.Fatal("third bit-identical reading accepted")
	}
	h := ctl.Health()
	if h.StuckSamples != 1 {
		t.Fatalf("StuckSamples = %d, want 1", h.StuckSamples)
	}
	// A changed reading clears the condition.
	if !ctl.gate(0.51, b) {
		t.Fatal("fresh reading after stuck run rejected")
	}
}

func TestGateOutlierPersistence(t *testing.T) {
	ctl := newTestController(t, nil) // OutlierSigma 10, persistence 2
	// Estimate starts at BaseGIPS = 0.13 with band 10·sqrt(P+R) ≈ 0.27;
	// z = 1.0 is far outside it.
	if ctl.gate(0.50, 1.0) {
		t.Fatal("first outlier accepted")
	}
	if ctl.gate(0.51, 1.0) {
		t.Fatal("second outlier accepted")
	}
	// Third consecutive excursion is a genuine level shift: accept so the
	// filter re-converges.
	if !ctl.gate(0.52, 1.0) {
		t.Fatal("persistent excursion still rejected; filter would freeze")
	}
	h := ctl.Health()
	if h.OutlierSamples != 2 || h.RejectedSamples != 2 {
		t.Fatalf("health = %+v, want 2 outlier rejections", h)
	}
	// Acceptance resets the run: the next isolated spike is rejected again.
	if ctl.gate(0.53, 1.9) {
		t.Fatal("isolated spike after reset accepted")
	}
}

func TestGateDisabledAcceptsEverything(t *testing.T) {
	ctl := newTestController(t, func(o *Options) { o.Resilience = Resilience{Disabled: true} })
	if !ctl.gate(0.5, math.NaN()) || !ctl.gate(0.5, 99) {
		t.Fatal("disabled gate rejected a measurement")
	}
	if ctl.Health().RejectedSamples != 0 {
		t.Fatal("disabled gate counted rejections")
	}
}

func TestWatchdogLadder(t *testing.T) {
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.NoLoad, Seed: 1, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := newTestController(t, nil) // DegradeAfter 3, RelinquishAfter 8
	for i := 1; i <= 2; i++ {
		if ctl.watchdog(ph, true) {
			t.Fatalf("watchdog intervened after %d failures, threshold is 3", i)
		}
	}
	if !ctl.watchdog(ph, true) || !ctl.Degraded() {
		t.Fatal("watchdog did not degrade at its threshold")
	}
	safe := ctl.entries[len(ctl.entries)/2]
	for _, s := range ctl.slots {
		if s != safe {
			t.Fatalf("degraded schedule holds %+v, want safe entry %+v", s, safe)
		}
	}
	// A healthy cycle recovers closed-loop control.
	if ctl.watchdog(ph, false) || ctl.Degraded() {
		t.Fatal("watchdog did not recover after a healthy cycle")
	}
	// Sustained failure relinquishes.
	for i := 0; i < 8; i++ {
		ctl.watchdog(ph, true)
	}
	if !ctl.Health().Relinquished {
		t.Fatal("watchdog never relinquished")
	}
	if ctl.Health().WatchdogTrips != 3 { // degrade, degrade again, relinquish
		t.Fatalf("WatchdogTrips = %d, want 3", ctl.Health().WatchdogTrips)
	}
}

// installController builds a phone+engine with an injector registered
// ahead of the controller (so its clock leads) and composed onto both
// I/O surfaces: the controller installs through the fault-decorated
// runner and its perf reader carries the injector's reading hook.
func installController(t *testing.T, spec *workload.Spec, tab *profile.Table,
	target float64, plan fault.Plan, mut func(*Options)) (*sim.Engine, *Controller, *fault.Injector) {
	t.Helper()
	ph, err := sim.NewPhone(sim.Config{
		Foreground: spec, Load: workload.BaselineLoad, Seed: 7, ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	inj, err := fault.NewInjector(plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng.MustRegister(inj)
	opts := DefaultOptions(tab, target)
	opts.Seed = 7
	if mut != nil {
		mut(&opts)
	}
	ctl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Install(fault.WrapRunner(eng, inj)); err != nil {
		t.Fatal(err)
	}
	fault.WrapPerf(ctl.Perf(), inj)
	return eng, ctl, inj
}

// Every probabilistic write failure the injector delivers must appear in
// the controller's actuation-failure counter, and vice versa: in a pure
// write-fault scenario the two books match exactly.
func TestActuationFailuresMatchInjectedExactly(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{WriteFailProb: 0.3}
	eng, ctl, inj := installController(t, workload.Spotify(), tab, 0.3, plan, nil)
	eng.Run(30*time.Second, false)

	h, counts := ctl.Health(), inj.Counts()
	if counts.WriteFailures == 0 {
		t.Fatal("scenario injected no write failures; test proves nothing")
	}
	if h.ActuationFailures != counts.WriteFailures {
		t.Fatalf("controller counted %d actuation failures, injector delivered %d",
			h.ActuationFailures, counts.WriteFailures)
	}
	if h.ActuationRetries == 0 {
		t.Fatal("retry path never exercised at 30% failure probability")
	}
}

// A hijacked governor must be detected and reinstalled at the next
// ownership check, once per hijack, with the max-freq clamp undone.
func TestGovernorReinstallAfterHijack(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{Hijacks: []fault.Hijack{{At: 5 * time.Second, Repeat: 6 * time.Second}}}
	eng, ctl, inj := installController(t, workload.Spotify(), tab, 0.3, plan, nil)
	// 32 s leaves a full control cycle after the last hijack (29 s), so
	// every delivered hijack has had an ownership check behind it.
	eng.Run(32*time.Second, false)

	h, counts := ctl.Health(), inj.Counts()
	if counts.Hijacks < 4 {
		t.Fatalf("only %d hijacks fired in 30 s at a 6 s repeat", counts.Hijacks)
	}
	if h.GovernorReinstalls != counts.Hijacks {
		t.Fatalf("reinstalls %d != hijacks %d", h.GovernorReinstalls, counts.Hijacks)
	}
	gov, _ := eng.Phone().FS().Read(sysfs.CPUScalingGovernor)
	if gov != sim.GovUserspace {
		t.Fatalf("governor %q at end of run, want userspace reinstalled", gov)
	}
}

func TestMaxFreqRestoreAfterClamp(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{Hijacks: []fault.Hijack{{At: 5 * time.Second, MaxFreqKHz: 1000000}}}
	eng, ctl, _ := installController(t, workload.Spotify(), tab, 0.3, plan, nil)
	eng.Run(12*time.Second, false)

	if ctl.Health().MaxFreqRestores != 1 {
		t.Fatalf("MaxFreqRestores = %d, want 1", ctl.Health().MaxFreqRestores)
	}
	mf, _ := eng.Phone().FS().Read(sysfs.CPUScalingMaxFreq)
	if mf == "1000000" {
		t.Fatal("scaling_max_freq still clamped at end of run")
	}
}

// The unhardened controller must NOT fight back: faults land uncorrected.
func TestDisabledControllerStaysHijacked(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{Hijacks: []fault.Hijack{{At: 5 * time.Second}}}
	eng, ctl, _ := installController(t, workload.Spotify(), tab, 0.3, plan,
		func(o *Options) { o.Resilience = Resilience{Disabled: true} })
	eng.Run(12*time.Second, false)

	if ctl.Health().GovernorReinstalls != 0 {
		t.Fatal("disabled resilience reinstalled the governor")
	}
	gov, _ := eng.Phone().FS().Read(sysfs.CPUScalingGovernor)
	if gov == sim.GovUserspace {
		t.Fatal("governor still userspace; hijack never landed")
	}
}

// End-to-end degradation ladder: a stuck actuation file fails every
// write, so the watchdog must degrade at its threshold and ultimately
// relinquish the device to the stock governors, which then run it.
func TestDegradationLadderEndToEnd(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{StuckFiles: []fault.StuckFile{
		{Path: sysfs.CPUScalingSetSpeed, From: 6 * time.Second},
	}}
	eng, ctl, inj := installController(t, workload.Spotify(), tab, 0.3, plan, nil)
	governor.Defaults(eng) // stock governors stand by to take over
	eng.Run(60*time.Second, false)

	h := ctl.Health()
	if h.WatchdogTrips < 2 {
		t.Fatalf("WatchdogTrips = %d, want degrade then relinquish", h.WatchdogTrips)
	}
	if h.DegradedCycles == 0 {
		t.Fatal("controller never ran degraded cycles before relinquishing")
	}
	if !h.Relinquished {
		t.Fatal("controller never relinquished under a permanently stuck actuator")
	}
	if inj.Counts().StuckWrites == 0 {
		t.Fatal("stuck file never rejected a write")
	}
	gov, _ := eng.Phone().FS().Read(sysfs.CPUScalingGovernor)
	if gov != sim.GovInteractive {
		t.Fatalf("governor %q after relinquish, want stock interactive", gov)
	}
}

// A transient fault window must degrade and then RECOVER: closed-loop
// control resumes once writes succeed again.
func TestDegradeThenRecover(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{
		WriteFailProb: 1,
		WriteFailFrom: 6 * time.Second, WriteFailUntil: 14 * time.Second,
	}
	eng, ctl, _ := installController(t, workload.Spotify(), tab, 0.3, plan, nil)
	eng.Run(40*time.Second, false)

	h := ctl.Health()
	if h.WatchdogTrips == 0 || h.DegradedCycles == 0 {
		t.Fatalf("watchdog never degraded during the fault window: %+v", h)
	}
	if h.Relinquished {
		t.Fatal("controller relinquished over a transient fault window")
	}
	if ctl.Degraded() {
		t.Fatal("controller still degraded long after the fault cleared")
	}
	// The re-convergence transient may gate a trailing sample; what
	// matters is the failing run stays below the watchdog threshold.
	if h.ConsecutiveFailures >= DefaultResilience().DegradeAfter {
		t.Fatalf("ConsecutiveFailures = %d after recovery", h.ConsecutiveFailures)
	}
}

// Under a combined fault scenario the hardened controller must stay
// within tolerance of the stock governors' delivered performance — the
// paper's fallback when userspace DVFS is not trustworthy.
func TestHardenedSlackBoundedVsStock(t *testing.T) {
	spec := workload.Spotify()
	opt := profile.Options{
		Load: workload.BaselineLoad, Mode: profile.Coordinated,
		Seeds: []int64{11}, Warmup: 2 * time.Second, Window: 10 * time.Second,
	}
	tab, err := profile.Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	target := 0.8 * tab.MaxSpeedup() * tab.BaseGIPS
	plan := fault.Plan{
		WriteFailProb: 0.2,
		Hijacks:       []fault.Hijack{{At: 8 * time.Second, Repeat: 10 * time.Second}},
		DropProb:      0.1, SpikeProb: 0.05, ZeroProb: 0.02,
	}

	// Stock condition: default governors under the same scenario.
	stockPh, err := sim.NewPhone(sim.Config{
		Foreground: spec, Load: workload.BaselineLoad, Seed: 7, ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stockEng := sim.NewEngine(stockPh)
	stockInj := fault.MustNewInjector(plan, 7)
	stockEng.MustRegister(stockInj)
	if err := governor.Defaults(stockEng); err != nil {
		t.Fatal(err)
	}
	stockStats := stockEng.Run(40*time.Second, false)

	// Hardened condition.
	eng, ctl, _ := installController(t, spec, tab, target, plan, nil)
	governor.Defaults(eng)
	stats := eng.Run(40*time.Second, false)

	if stats.GIPS < 0.9*stockStats.GIPS {
		t.Fatalf("hardened controller delivered %.4f GIPS under faults, stock %.4f (slack > 10%%)",
			stats.GIPS, stockStats.GIPS)
	}
	if ctl.Health().GovernorReinstalls == 0 {
		t.Fatal("scenario never exercised the reinstall path")
	}
}

// Perf-fault scenarios must be visible in the health ledger: dropped
// windows and gated samples.
func TestPerfFaultsReachHealthLedger(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{ZeroProb: 0.3, SpikeProb: 0.2}
	eng, ctl, inj := installController(t, workload.Spotify(), tab, 0.3, plan, nil)
	eng.Run(40*time.Second, false)

	counts := ctl.Health()
	if inj.Counts().ZeroReads == 0 || inj.Counts().Spikes == 0 {
		t.Fatalf("scenario delivered no perf faults: %+v", inj.Counts())
	}
	if counts.OutlierSamples == 0 {
		t.Fatalf("gate never rejected injected zero/spike readings: %+v", counts)
	}
}
