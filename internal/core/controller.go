package core

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"aspeo/internal/kalman"
	"aspeo/internal/lp"
	"aspeo/internal/obs"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
	"aspeo/internal/sysfs"
)

// Options configure the online controller.
type Options struct {
	// Table is the application's offline profile (Stage 1 output).
	Table *profile.Table
	// TargetGIPS is the user-specified performance target r, typically
	// the performance measured under the default governors (§III-A).
	TargetGIPS float64
	// CycleT is the control cycle duration (paper: 2 s).
	CycleT time.Duration
	// Quantum is the scheduler's minimum dwell at a configuration
	// (paper: 200 ms).
	Quantum time.Duration
	// PerfPeriod is the perf sampling period (paper: 1 s).
	PerfPeriod time.Duration
	// Seed drives measurement-noise reproduction.
	Seed int64
	// CPUOnly restricts actuation to the CPU frequency, leaving the
	// memory bandwidth to its default governor — the Table V baseline.
	CPUOnly bool
	// UseLP makes the online optimizer call the simplex solver instead
	// of the specialized two-configuration search (results identical).
	UseLP bool
	// Pole ρ ∈ [0,1) damps the integral regulator:
	// s_n = s_{n-1} + (1−ρ)·e_{n-1}/b_{n-1}. ρ = 0 is the deadbeat
	// controller of Eqn. (3); a positive pole trades convergence speed
	// for robustness to the one-cycle measurement delay (POET, the
	// paper's base controller, exposes the same knob). Defaults to 0.5
	// when NaN/unset via DefaultOptions.
	Pole float64
	// PhaseAware enables online phase tracking (§V-B): control cycles
	// are clustered by their performance signature and the integrator
	// keeps independent state per phase, so re-entering a known phase
	// resumes from its converged speedup.
	PhaseAware bool
	// MaxPhases bounds the tracker's cluster count (default 4).
	MaxPhases int
	// EpsilonDominance prunes profile entries that deliver no more than
	// (1+ε)× the speedup of a strictly cheaper entry before optimizing.
	// Demand-paced applications saturate, so the top of their profile
	// is a plateau of performance-equivalent configurations whose
	// measured speedups differ only by noise and interpolation error;
	// without pruning the optimizer can chase a 1%-faster configuration
	// that costs 30% more power. Defaults to 2% when zero; negative
	// disables pruning.
	EpsilonDominance float64
	// Resilience configures the fault-handling ladder (retry →
	// reinstall → safe-config → relinquish). The zero value enables the
	// hardened defaults; set Disabled for the unhardened baseline.
	Resilience Resilience
	// LogAllocations keeps a per-cycle record of every optimizer
	// decision, retrievable via AllocationLog. Used by the replay golden
	// tests to compare two runs decision-for-decision.
	LogAllocations bool
	// OnCycle, when non-nil, receives a CycleSnapshot at the end of
	// every control cycle (degraded and relinquishing cycles included).
	// Observation only: the callback must not touch the controller or
	// the device — the fleet runtime uses it to fold live sessions into
	// rollups. It runs on the cell's goroutine; the subscriber is
	// responsible for its own synchronization.
	OnCycle func(CycleSnapshot)
	// CheckpointEvery, together with OnCheckpoint, asks for a session
	// checkpoint every N control cycles. The controller itself never
	// snapshots anything — it only signals; the session layer captures
	// the whole cell at the next engine-loop boundary, where every actor
	// is quiescent. Observation only and free when unset: the hot path
	// pays two integer compares per cycle.
	CheckpointEvery int
	// OnCheckpoint receives the control-cycle ordinal whenever a
	// checkpoint is due (see CheckpointEvery). Like OnCycle it runs on
	// the cell's goroutine and must not touch the controller or device.
	OnCheckpoint func(cyclesRun int)
	// Trace enables per-stage decision tracing: every control cycle
	// emits measure/kalman/optimize/schedule child spans plus a cycle
	// summary span, and the resilience ladder emits transition events,
	// all through platform.Telemetry.RecordSpan — so any backend (sim,
	// replay, a real-device shim) records the identical stream.
	// Observation only: a traced run is bit-identical to an untraced
	// one, and an untraced run never pays for attribute assembly.
	Trace bool
}

// DefaultOptions returns the paper's operating parameters for the given
// profile table and target.
func DefaultOptions(t *profile.Table, targetGIPS float64) Options {
	return Options{
		Table:      t,
		TargetGIPS: targetGIPS,
		CycleT:     2 * time.Second,
		Quantum:    200 * time.Millisecond,
		PerfPeriod: time.Second,
		Seed:       1,
		Pole:       0.5,
	}
}

// cycleOverheadJ is the regulator+optimizer compute cost per control
// cycle: <10 ms at ~25 mW average over the 2 s cycle (§V-A1).
const cycleOverheadJ = 0.050

// allocCacheMax bounds the controller's allocation cache; targets are
// clamped to the table's speedup range, so in practice a phase settles
// on a handful of quantized targets and the bound is never hit.
const allocCacheMax = 256

// allocCacheScale quantizes cached targets to a 2⁻¹² grid (≈2.4e-4
// speedup resolution — an order of magnitude below the table's
// measurement noise), so a converged regulator re-requesting the same
// operating point skips the solve entirely.
const allocCacheScale = 4096

// AllocationRecord is one entry of the controller's decision log: the
// control-cycle ordinal, the clock when the cycle ran, the speedup the
// regulator demanded, and the allocation the optimizer chose.
type AllocationRecord struct {
	Cycle  int
	At     time.Duration
	Target float64
	Alloc  Allocation
}

// Controller is the online controller K plus the scheduler S of Fig. 2.
// It implements platform.Actor at the scheduler quantum and drives any
// platform.Device.
type Controller struct {
	opt     Options
	entries []profile.Entry // sorted by ascending speedup
	// frontier is the precomputed convex-hull fast path over entries;
	// entries are immutable for the controller's lifetime, so it is
	// built once in New.
	frontier *Frontier
	// allocCache memoizes solved allocations by quantized target. The
	// cached value depends only on the (static) pruned table, so entries
	// never go stale — phase switches merely change which keys are hit.
	allocCache     map[float64]Allocation
	allocCacheHits int
	// memo* is a single-entry fast path in front of allocCache: a
	// converged regulator whose Kalman target moved less than the
	// quantized-cache resolution re-requests the same key cycle after
	// cycle, and the repeat skips even the map hash. A memo hit reports
	// exactly like a map hit (allocCacheHits, lastSolvePath).
	memoQT    float64
	memoAlloc Allocation
	memoOK    bool
	// lpWS is the simplex workspace reused across UseLP-mode solves;
	// lpC/lpS/lpOnes are the matching problem-row scratch vectors.
	lpWS             lp.Workspace
	lpC, lpS, lpOnes []float64
	perf             *perftool.Perf
	kf               *kalman.Filter

	dev platform.Device // the device under control; set by Install
	// batch is dev's optional batched-write capability (nil when absent —
	// notably under fault decoration, which must see every write).
	batch platform.BatchWriter
	// writeBuf is the reusable actuation batch (cpufreq + devfreq).
	writeBuf []platform.FileWrite
	// freqVal/bwVal are the sysfs value strings per ladder index,
	// precomputed on first actuation so the per-quantum hot path never
	// formats integers.
	freqVal, bwVal []string

	sPrev     float64 // speedup applied during the previous cycle
	tracker   *PhaseTracker
	slots     []profile.Entry
	slotIdx   int
	attached  bool
	lastAlloc Allocation
	allocLog  []AllocationRecord

	// Resilience state (resilience.go).
	res              Resilience
	health           Health
	retriesLeft      int  // actuation retry budget for the current cycle
	cycleFailed      bool // an actuation failed unrecovered this cycle
	degraded         bool // watchdog pinned the safe configuration
	recentY          []float64
	recentYPos       int    // ring write position once recentY is full
	outlierRun       int    // consecutive outlier rejections (persistence-accept)
	stockCPUGov      string // governor to hand back on relinquish
	stockBWGov       string
	installedMaxFreq string // legitimate scaling_max_freq value
	cyclesRun        int    // total runCycle invocations (measured or not)

	// Decision-trace state (observation only — nothing below feeds back
	// into the control law).
	gateCause     string // why the gate rejected this cycle's sample
	lastSolvePath string // "lp", "cache" or "frontier"

	// Diagnostics.
	cycles       int
	sumAbsErr    float64
	lastMeasured float64
	optWallTime  time.Duration
}

// New validates options and builds a controller.
func New(opt Options) (*Controller, error) {
	if opt.Table == nil {
		return nil, fmt.Errorf("core: nil profile table")
	}
	if err := opt.Table.Validate(); err != nil {
		return nil, err
	}
	if !(opt.TargetGIPS > 0) {
		return nil, fmt.Errorf("core: target %v GIPS invalid", opt.TargetGIPS)
	}
	if opt.CycleT <= 0 || opt.Quantum <= 0 || opt.CycleT%opt.Quantum != 0 {
		return nil, fmt.Errorf("core: cycle %v must be a positive multiple of quantum %v",
			opt.CycleT, opt.Quantum)
	}
	if opt.PerfPeriod < perftool.MinSamplingPeriod {
		return nil, fmt.Errorf("core: perf period %v below device minimum", opt.PerfPeriod)
	}
	if opt.Pole < 0 || opt.Pole >= 1 {
		return nil, fmt.Errorf("core: pole %v outside [0,1)", opt.Pole)
	}
	if opt.CPUOnly != (opt.Table.Mode == profile.Governed) {
		return nil, fmt.Errorf("core: CPUOnly=%v requires a matching profile mode (got %v)",
			opt.CPUOnly, opt.Table.Mode)
	}

	b0 := opt.Table.BaseGIPS
	kf := kalman.MustNew(math.Pow(0.02*b0, 2), math.Pow(0.05*b0, 2))
	kf.Init(b0, math.Pow(0.2*b0, 2))

	eps := opt.EpsilonDominance
	if eps == 0 {
		eps = 0.012
	}
	entries := pruneDominated(opt.Table.SortedBySpeedup(), eps)

	frontier, err := NewFrontier(entries)
	if err != nil {
		return nil, err
	}

	nSlots := int(opt.CycleT / opt.Quantum)
	c := &Controller{
		opt:        opt,
		entries:    entries,
		frontier:   frontier,
		allocCache: make(map[float64]Allocation),
		perf:       perftool.MustNew(opt.PerfPeriod, opt.Seed),
		kf:         kf,
		res:        opt.Resilience.withDefaults(),
		sPrev: clamp(opt.TargetGIPS/b0,
			entries[0].Speedup, entries[len(entries)-1].Speedup),
		slots: make([]profile.Entry, nSlots),
	}
	if n := c.res.StuckWindow - 1; n > 0 {
		c.recentY = make([]float64, 0, n)
	}
	if opt.PhaseAware {
		maxPhases := opt.MaxPhases
		if maxPhases == 0 {
			maxPhases = 4
		}
		tracker, err := NewPhaseTracker(maxPhases, 0.25)
		if err != nil {
			return nil, err
		}
		c.tracker = tracker
	}

	// Until the first measurement arrives, schedule the open-loop guess.
	alloc, err := c.optimize(c.sPrev)
	if err != nil {
		return nil, err
	}
	c.lastAlloc = alloc
	c.fillSlots(alloc)
	return c, nil
}

func clamp(x, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, x)) }

// Install switches the relevant governors to userspace and registers the
// perf reader and the controller on the runner. This is the programmatic
// equivalent of the paper's `echo userspace > scaling_governor` setup.
// The runner's device — possibly a fault-decorated one — becomes the
// device the controller actuates for the rest of its life; a governor
// write that fails or silently doesn't stick (an OEM daemon racing the
// setup) is reported rather than swallowed.
func (c *Controller) Install(r platform.Runner) error {
	dev := r.Device()
	c.bindDevice(dev)
	c.recordInstallState(dev)
	if err := c.installGovernor(dev, sysfs.CPUScalingGovernor, "cpu"); err != nil {
		return err
	}
	if !c.opt.CPUOnly {
		if err := c.installGovernor(dev, sysfs.DevFreqGovernor, "devfreq"); err != nil {
			return err
		}
	}
	if err := r.Register(c.perf); err != nil {
		return err
	}
	if err := r.Register(c); err != nil {
		return err
	}
	c.attached = true
	return nil
}

// bindDevice fixes the device the controller actuates and probes its
// optional batched-write capability. Fault-decorated devices do not
// expose platform.BatchWriter — the assertion fails and apply falls back
// to per-file writes, keeping every write inside the fault model.
func (c *Controller) bindDevice(dev platform.Device) {
	c.dev = dev
	c.batch, _ = dev.(platform.BatchWriter)
	if c.writeBuf == nil {
		c.writeBuf = make([]platform.FileWrite, 0, 2)
	}
}

// installGovernor switches one governor file to userspace and verifies
// the write stuck — the same error path apply uses, so setup failures
// are never silently ignored.
func (c *Controller) installGovernor(dev platform.Device, path, what string) error {
	if err := dev.WriteFile(path, platform.GovUserspace); err != nil {
		return fmt.Errorf("core: set %s governor: %w", what, err)
	}
	got, err := dev.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: verify %s governor: %w", what, err)
	}
	if got != platform.GovUserspace {
		return fmt.Errorf("core: %s governor write did not stick (have %q)", what, got)
	}
	return nil
}

// Name implements platform.Actor.
func (c *Controller) Name() string { return "aspeo-controller" }

// Period implements platform.Actor: the controller wakes at every
// scheduler quantum; the control law runs on cycle boundaries.
func (c *Controller) Period() time.Duration { return c.opt.Quantum }

// Tick implements platform.Actor. The dev argument is the runner's
// undecorated device; the controller actuates through the device Install
// captured, which carries any fault decoration.
func (c *Controller) Tick(now time.Duration, dev platform.Device) {
	if c.dev == nil {
		c.bindDevice(dev)
	}
	if c.health.Relinquished {
		return // the stock governors own the device again
	}
	if c.slotIdx == 0 {
		c.retriesLeft = c.res.MaxRetriesPerCycle
		c.runCycle(c.dev)
		if c.health.Relinquished {
			return
		}
	}
	if !c.applySlot(c.dev, c.slots[c.slotIdx]) {
		c.cycleFailed = true
	}
	c.slotIdx = (c.slotIdx + 1) % len(c.slots)
}

// runCycle executes one control cycle and publishes its telemetry —
// whatever path the cycle took (closed-loop, degraded, relinquishing),
// the health ledger lands on the device and the OnCycle subscriber sees
// the cycle's snapshot.
func (c *Controller) runCycle(dev platform.Device) {
	c.cycleBody(dev)
	c.publishCycle(dev)
}

// cycleBody executes Eqns. (2)–(7) for one control cycle, wrapped in the
// resilience layer: the previous cycle's verdict (actuation failures,
// governor ownership, measurement validity) feeds the watchdog before
// the optimizer runs.
func (c *Controller) cycleBody(dev platform.Device) {
	c.cyclesRun++
	failing := c.cycleFailed
	c.cycleFailed = false
	ownershipOK := c.checkOwnership(dev)
	if !ownershipOK {
		failing = true
	}
	c.gateCause = ""

	// Trace collection: plain scalar locals populated along the decision
	// path and emitted as spans afterwards. Writes are unconditional
	// (they cost nothing); attribute maps are only built when tracing.
	var (
		trHaveY, trAccepted, trKalman bool
		trY, trZ, trErr               float64
	)

	// The controller consumes the performance of its whole previous
	// cycle (the paper measures twice per 2 s cycle and regulates on
	// the cycle's performance).
	y, ok := c.perf.MeanOver(c.opt.CycleT)
	if ok {
		c.lastMeasured = y

		// z = y_n / s_{n-1} (§III-B3). s_{n-1} is the speedup actually
		// scheduled during the window — the applied allocation's
		// expectation.
		applied := c.lastAlloc.ExpectedSpeedup
		if applied < 1e-9 {
			applied = c.sPrev
		}
		z := math.Inf(1)
		if applied > 1e-9 {
			z = y / applied
		}
		trHaveY, trY, trZ = true, y, z

		accepted := c.gate(y, z)
		if accepted {
			// Kalman update of the base speed. A non-finite measurement
			// that a disabled gate let through is counted as rejected
			// and the regulator falls back to the prior estimate.
			if _, err := c.kf.Update(z); err != nil {
				c.health.NonFiniteSamples++
				c.health.RejectedSamples++
				c.gateCause = "non-finite"
				accepted = false
			} else {
				trKalman = true
			}
		}
		if accepted {
			e := c.opt.TargetGIPS - y // Eqn. (2)
			c.cycles++
			c.sumAbsErr += math.Abs(e)
			trAccepted, trErr = true, e

			// Phase-aware mode: recognize the cycle's phase and resume
			// the integrator from that phase's converged state.
			if c.tracker != nil {
				c.tracker.Classify(y)
				if s, found := c.tracker.Load(); found {
					c.sPrev = s
				}
			}
			b, _ := c.kf.Estimate()
			if b < 1e-6 {
				b = c.opt.Table.BaseGIPS
			}
			// Eqn. (3): adaptive-gain integrator with pole damping,
			// clamped to the speedups the (pruned) table can actually
			// deliver (anti-windup).
			s := c.sPrev + (1-c.opt.Pole)*e/b
			c.sPrev = clamp(s, c.entries[0].Speedup, c.entries[len(c.entries)-1].Speedup)
			if c.tracker != nil {
				c.tracker.Store(c.sPrev)
			}
		} else {
			failing = true
		}
	} else if c.cyclesRun >= 2 {
		// After the first full cycle a healthy perf pipeline always has
		// readings; none means every sample in the window was dropped.
		failing = true
	}

	if c.opt.Trace {
		attrs := obs.Attrs{
			"have_measurement": trHaveY,
			"accepted":         trAccepted,
			"ownership_ok":     ownershipOK,
		}
		if trHaveY {
			attrs["measured_gips"] = trY
			attrs["z"] = trZ
		}
		if c.gateCause != "" {
			attrs["gate_verdict"] = c.gateCause
		}
		if trAccepted {
			attrs["err_gips"] = trErr
		}
		c.emitSpan(dev, obs.StageMeasure, attrs)
		if trKalman {
			b, _ := c.kf.Estimate()
			c.emitSpan(dev, obs.StageKalman, obs.Attrs{
				"base_estimate_gips": b,
				"variance":           c.kf.Variance(),
				"gain":               c.kf.Gain(),
				"steps":              obs.Num(c.kf.Steps()),
			})
		}
	}

	if c.watchdog(dev, failing) {
		// Degraded (safe schedule installed) or relinquished: skip the
		// optimizer. The watchdog's own compute still costs energy.
		if !c.health.Relinquished {
			dev.AddOverlayEnergyJ(cycleOverheadJ)
		}
		return
	}

	start := time.Now()
	alloc, err := c.optimize(c.sPrev)
	c.optWallTime += time.Since(start)
	if err != nil {
		// Keep the previous schedule; the table was validated so this
		// only happens for pathological targets.
		return
	}
	c.lastAlloc = alloc
	if c.opt.LogAllocations {
		c.allocLog = append(c.allocLog, AllocationRecord{
			Cycle: c.cyclesRun, At: dev.Now(), Target: c.sPrev, Alloc: alloc,
		})
	}
	if c.opt.Trace {
		c.emitSpan(dev, obs.StageOptimize, obs.Attrs{
			"target_speedup":   c.sPrev,
			"path":             c.lastSolvePath,
			"low_freq_idx":     obs.Num(alloc.Low.FreqIdx),
			"low_bw_idx":       obs.Num(alloc.Low.BWIdx),
			"high_freq_idx":    obs.Num(alloc.High.FreqIdx),
			"high_bw_idx":      obs.Num(alloc.High.BWIdx),
			"tau_low_ns":       obs.Num(int64(alloc.TauLow)),
			"tau_high_ns":      obs.Num(int64(alloc.TauHigh)),
			"expected_speedup": alloc.ExpectedSpeedup,
			"expected_power_w": alloc.ExpectedPowerW,
		})
	}
	hiSlots := c.fillSlots(alloc)
	if c.opt.Trace {
		c.emitSpan(dev, obs.StageSchedule, obs.Attrs{
			"safe":       false,
			"hi_slots":   obs.Num(hiSlots),
			"n_slots":    obs.Num(len(c.slots)),
			"quantum_ns": obs.Num(int64(c.opt.Quantum)),
		})
	}
	// Charge the regulator+optimizer compute cost (§V-A1).
	dev.AddOverlayEnergyJ(cycleOverheadJ)
}

// emitSpan publishes one decision-trace span through the device's
// telemetry surface. Callers gate on Options.Trace before assembling
// attributes, so an untraced run never builds them.
func (c *Controller) emitSpan(dev platform.Device, stage string, attrs obs.Attrs) {
	dev.RecordSpan(obs.Span{Cycle: c.cyclesRun, Stage: stage, At: dev.Now(), Attrs: attrs})
}

// optimize resolves the target through the frontier fast path, with a
// quantized-target memo in front: a converged regulator asks for the
// same operating point cycle after cycle, and within one phase those
// repeats skip the solve entirely. Quantization happens before the
// solve, so a cache hit returns exactly what the solver would.
func (c *Controller) optimize(target float64) (Allocation, error) {
	if c.opt.UseLP {
		c.lastSolvePath = "lp"
		return c.optimizeLP(target)
	}
	qt := math.Round(target*allocCacheScale) / allocCacheScale
	if c.memoOK && qt == c.memoQT {
		// Target moved less than the cache resolution: same key, same
		// allocation, and the same hit accounting as the map below.
		c.allocCacheHits++
		c.lastSolvePath = "cache"
		return c.memoAlloc, nil
	}
	if a, ok := c.allocCache[qt]; ok {
		c.allocCacheHits++
		c.lastSolvePath = "cache"
		c.memoQT, c.memoAlloc, c.memoOK = qt, a, true
		return a, nil
	}
	c.lastSolvePath = "frontier"
	a, err := c.frontier.Optimize(qt, c.opt.CycleT)
	if err != nil {
		return a, err
	}
	if len(c.allocCache) >= allocCacheMax {
		// The memo stays valid across the flush: the solver is a pure
		// function of the immutable pruned table, so a re-solve of the
		// memo key would return the identical allocation.
		clear(c.allocCache)
	}
	c.allocCache[qt] = a
	c.memoQT, c.memoAlloc, c.memoOK = qt, a, true
	return a, nil
}

// fillSlots quantizes the allocation onto the scheduler's dwell grid and
// returns the number of high-configuration slots. The low configuration
// runs first, then the high one — a single transition per cycle, as in
// the paper's scheduler S.
func (c *Controller) fillSlots(a Allocation) int {
	n := len(c.slots)
	hiSlots := int(float64(a.TauHigh)/float64(c.opt.Quantum) + 0.5)
	if hiSlots > n {
		hiSlots = n
	}
	for i := 0; i < n; i++ {
		if i < n-hiSlots {
			c.slots[i] = a.Low
		} else {
			c.slots[i] = a.High
		}
	}
	return hiSlots
}

// apply actuates one slot through the sysfs userspace files. A failed
// write — transient kernel error, or a governor flipped back by an OEM
// daemon — surfaces to the retry/watchdog path in applySlot, which is
// how a hijack is actually detected between ownership checks.
//
// The slot's writes go through the device's batched-write capability
// when it has one — one call per slot instead of one per file — and
// fall back to per-file WriteFile otherwise. Both paths write in the
// same order and stop at the first error, and both use the value
// strings precomputed per ladder index, so the per-quantum hot path
// formats nothing.
func (c *Controller) apply(dev platform.Device, e profile.Entry) error {
	if c.freqVal == nil {
		c.buildValueStrings(dev)
	}
	writeBW := !c.opt.CPUOnly && e.BWIdx >= 0
	if c.batch != nil {
		buf := append(c.writeBuf[:0],
			platform.FileWrite{Path: sysfs.CPUScalingSetSpeed, Value: c.freqVal[e.FreqIdx]})
		if writeBW {
			buf = append(buf, platform.FileWrite{Path: sysfs.DevFreqSetFreq, Value: c.bwVal[e.BWIdx]})
		}
		c.writeBuf = buf
		return c.batch.WriteFiles(buf)
	}
	if err := dev.WriteFile(sysfs.CPUScalingSetSpeed, c.freqVal[e.FreqIdx]); err != nil {
		return err
	}
	if writeBW {
		if err := dev.WriteFile(sysfs.DevFreqSetFreq, c.bwVal[e.BWIdx]); err != nil {
			return err
		}
	}
	return nil
}

// buildValueStrings precomputes the sysfs value text for every ladder
// index — the same strconv.Itoa results apply used to format on every
// write. Built lazily on first actuation, when the device (and hence
// the SoC ladder) is known.
func (c *Controller) buildValueStrings(dev platform.Device) {
	s := dev.SoC()
	c.freqVal = make([]string, len(s.CPUFreqs))
	for i := range c.freqVal {
		c.freqVal[i] = strconv.Itoa(int(s.Freq(i).GHz()*1e6 + 0.5))
	}
	c.bwVal = make([]string, len(s.MemBWs))
	for i := range c.bwVal {
		c.bwVal[i] = strconv.Itoa(int(s.BW(i).MBps()))
	}
}

// Cycles returns how many closed-loop cycles have run.
func (c *Controller) Cycles() int { return c.cycles }

// MeanAbsError returns the mean |r − y| over all cycles, in GIPS.
func (c *Controller) MeanAbsError() float64 {
	if c.cycles == 0 {
		return 0
	}
	return c.sumAbsErr / float64(c.cycles)
}

// LastMeasuredGIPS returns the most recent perf reading consumed.
func (c *Controller) LastMeasuredGIPS() float64 { return c.lastMeasured }

// LastAllocation returns the most recent optimizer decision.
func (c *Controller) LastAllocation() Allocation { return c.lastAlloc }

// AllocationLog returns a copy of the per-cycle decision log (nil
// unless Options.LogAllocations was set). The copy means a caller can
// hold the log across further cycles without the controller's appends
// showing through — or worse, a grow reallocation leaving the caller a
// stale prefix.
func (c *Controller) AllocationLog() []AllocationRecord {
	if c.allocLog == nil {
		return nil
	}
	out := make([]AllocationRecord, len(c.allocLog))
	copy(out, c.allocLog)
	return out
}

// BaseSpeedEstimate returns the Kalman filter's current base speed.
func (c *Controller) BaseSpeedEstimate() float64 {
	b, err := c.kf.Estimate()
	if err != nil {
		return c.opt.Table.BaseGIPS
	}
	return b
}

// CurrentSpeedupSetting returns s_{n}, the regulator's current demand.
func (c *Controller) CurrentSpeedupSetting() float64 { return c.sPrev }

// OptimizerWallTime returns the cumulative host time spent in the energy
// optimizer (for the §V-A1 overhead reproduction).
func (c *Controller) OptimizerWallTime() time.Duration { return c.optWallTime }

// AllocCacheHits returns how many control cycles were served from the
// quantized-target allocation cache without a solve.
func (c *Controller) AllocCacheHits() int { return c.allocCacheHits }

// PhasesDetected returns how many phases the tracker has distinguished;
// 0 when phase awareness is off.
func (c *Controller) PhasesDetected() int {
	if c.tracker == nil {
		return 0
	}
	return c.tracker.Phases()
}
