package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"aspeo/internal/profile"
)

// Frontier is the optimizer's fast path: the lower convex hull of the
// profile table's (speedup, power) points, precomputed once per table.
//
// The energy LP of Eqns. (4)–(7) mixes at most two configurations
// bracketing the required speedup, and its optimal energy at any target
// is the lower convex envelope of the (speedup, power) point set
// evaluated at that target. The O(N²) pair scan in Optimize searches
// that envelope implicitly on every call; Frontier materializes it once
// (O(N) on the speedup-sorted entries via Andrew's monotone chain), so
// each control cycle reduces to a binary search for the bracketing hull
// segment — O(log H) with H ≤ N hull vertices.
//
// The controller builds its Frontier at construction, after ε-dominance
// pruning; the profile table (and hence the hull) is immutable for the
// controller's lifetime, so it is never rebuilt. Callers that swap
// tables (e.g. load-model adaptation) build a new Frontier.
type Frontier struct {
	hull []profile.Entry // lower-hull vertices, strictly ascending speedup
	// cheapest is the minimum-power entry of the whole table: the
	// below-table fallback (any entry over-delivers performance there).
	cheapest profile.Entry
	// satCheapest is the cheapest entry within 1% of the maximum
	// speedup: the saturation fallback above the table.
	satCheapest profile.Entry
	minS, maxS  float64
}

// NewFrontier builds the hull from entries sorted by ascending speedup
// (profile.Table.SortedBySpeedup). It replicates Optimize's fallback
// selections exactly so the two paths agree on every target.
func NewFrontier(entries []profile.Entry) (*Frontier, error) {
	if len(entries) == 0 {
		return nil, ErrEmptyTable
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool {
		return entries[i].Speedup < entries[j].Speedup
	}) {
		return nil, fmt.Errorf("core: frontier input not sorted by speedup")
	}

	f := &Frontier{
		minS: entries[0].Speedup,
		maxS: entries[len(entries)-1].Speedup,
	}

	// Fallback entries, with Optimize's exact tie-breaking (strict <
	// keeps the earliest minimum).
	f.cheapest = entries[0]
	for _, e := range entries {
		if e.PowerW < f.cheapest.PowerW {
			f.cheapest = e
		}
	}
	tol := 0.01 * f.maxS
	f.satCheapest = entries[len(entries)-1]
	for _, e := range entries {
		if e.Speedup >= f.maxS-tol && e.PowerW < f.satCheapest.PowerW {
			f.satCheapest = e
		}
	}

	// Collapse duplicate speedups to their cheapest entry: vertical
	// stacks contribute only their lowest point to the lower envelope.
	pts := make([]profile.Entry, 0, len(entries))
	for _, e := range entries {
		if n := len(pts); n > 0 && pts[n-1].Speedup == e.Speedup {
			if e.PowerW < pts[n-1].PowerW {
				pts[n-1] = e
			}
			continue
		}
		pts = append(pts, e)
	}

	// Andrew's monotone chain, lower hull only. cross ≤ 0 means the
	// middle vertex lies on or above the segment joining its neighbours,
	// so it cannot support the envelope.
	hull := make([]profile.Entry, 0, len(pts))
	for _, e := range pts {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], e) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, e)
	}
	f.hull = hull
	return f, nil
}

// cross is the z-component of (b−a) × (c−a) in the (speedup, power)
// plane; positive when b lies strictly below the segment a→c.
func cross(a, b, c profile.Entry) float64 {
	return (b.Speedup-a.Speedup)*(c.PowerW-a.PowerW) -
		(b.PowerW-a.PowerW)*(c.Speedup-a.Speedup)
}

// Len returns the number of hull vertices.
func (f *Frontier) Len() int { return len(f.hull) }

// Optimize solves the energy LP for the target by binary-searching the
// hull for the bracketing segment. It agrees with the O(N²) Optimize on
// every target: identical fallbacks outside [minS, maxS], and the same
// optimal energy (the convex envelope) inside.
func (f *Frontier) Optimize(target float64, T time.Duration) (Allocation, error) {
	if !(target > 0) || math.IsInf(target, 0) {
		return Allocation{}, fmt.Errorf("%w: %v", ErrBadTarget, target)
	}
	if target <= f.minS {
		return singleConfig(f.cheapest, T), nil
	}
	if target >= f.maxS {
		return singleConfig(f.satCheapest, T), nil
	}

	// Largest hull index with hull[i].Speedup <= target; the segment
	// [i, i+1] brackets the target. sort.Search returns the first index
	// with Speedup > target, which is ≥ 1 (minS < target) and ≤ len−1
	// (target < maxS).
	i := sort.Search(len(f.hull), func(i int) bool {
		return f.hull[i].Speedup > target
	})
	lo, hi := f.hull[i-1], f.hull[i]

	// τ_h from the performance constraint Sᵀu = s_n·T, energy as the
	// power mix — the same arithmetic as Optimize's inner loop.
	frac := (target - lo.Speedup) / (hi.Speedup - lo.Speedup)
	energy := (lo.PowerW*(1-frac) + hi.PowerW*frac) * T.Seconds()
	tauHigh := time.Duration(float64(T) * frac)
	return Allocation{
		Low: lo, High: hi,
		TauLow:          T - tauHigh,
		TauHigh:         tauHigh,
		ExpectedPowerW:  energy / T.Seconds(),
		ExpectedSpeedup: target,
	}, nil
}
