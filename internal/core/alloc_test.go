package core

import (
	"testing"
	"time"

	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

// steadyCell builds a cell pinned into the controller's steady state:
// the target sits far above the table's reach, so the regulator clamps
// the demand to the maximum speedup on every cycle — the quantized
// target never moves, every optimize() after the first is a cache hit,
// and measurement noise cannot perturb the allocation. That is the
// fault-free cache-hit steady state whose allocation budget the hot
// path pins to zero.
func steadyCell(tb testing.TB) (*sim.Engine, *Controller) {
	tb.Helper()
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.NoLoad, Seed: 7,
		ScreenOn: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	tab := syntheticTable(0.09)
	opts := DefaultOptions(tab, 100*tab.BaseGIPS*tab.MaxSpeedup())
	opts.Seed = 7
	ctl, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	if err := ctl.Install(eng); err != nil {
		tb.Fatal(err)
	}
	return eng, ctl
}

// The fault-free cache-hit steady state must not allocate: scratch
// buffers, value strings and the single-entry optimize memo are all
// reused, so a control cycle is heap-silent once warm. This is the
// regression pin for the hot-path work — any new per-cycle allocation
// (a map rebuild, a fresh attr set, a fmt call) fails it.
func TestSteadyStateCycleZeroAllocs(t *testing.T) {
	eng, ctl := steadyCell(t)
	eng.Run(30*time.Second, false) // warm: caches filled, buffers grown

	allocs := testing.AllocsPerRun(10, func() {
		eng.Run(2*time.Second, false) // one control cycle
	})
	if allocs != 0 {
		t.Fatalf("steady-state control cycle allocates %.1f objects, want 0", allocs)
	}
	if hits := ctl.AllocCacheHits(); hits == 0 {
		t.Fatal("cell never hit the allocation cache; the test is not measuring the steady state")
	}
}

// BenchmarkControllerCycle measures one steady-state control cycle end
// to end (engine, device, perf sampling, controller). `make bench` runs
// it with -benchtime=1x to keep it compiling; run it with real
// benchtime for numbers. ReportAllocs keeps the 0 allocs/op visible.
func BenchmarkControllerCycle(b *testing.B) {
	eng, _ := steadyCell(b)
	eng.Run(30*time.Second, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(2*time.Second, false)
	}
}

// AllocationLog must return a copy: a caller sorting or mutating the
// returned slice — or holding it across further cycles — must never
// corrupt, or be corrupted by, the controller's own log.
func TestAllocationLogReturnsCopy(t *testing.T) {
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.NoLoad, Seed: 3,
		ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	opts := DefaultOptions(syntheticTable(0.09), 0.12)
	opts.Seed = 3
	opts.LogAllocations = true
	ctl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Install(eng); err != nil {
		t.Fatal(err)
	}
	eng.Run(10*time.Second, false)

	got := ctl.AllocationLog()
	if len(got) == 0 {
		t.Fatal("no allocation records after 10 s")
	}
	want := got[0]
	got[0].Target = -99
	got[0].Alloc.ExpectedSpeedup = -1
	if again := ctl.AllocationLog(); again[0] != want {
		t.Fatalf("mutating the returned log reached the controller: %+v", again[0])
	}

	// The snapshot must also be stable against the controller appending
	// more cycles after it was taken.
	snap := ctl.AllocationLog()
	n := len(snap)
	eng.Run(10*time.Second, false)
	if len(snap) != n {
		t.Fatalf("snapshot grew from %d to %d with the controller", n, len(snap))
	}
	if snap[0] != want {
		t.Fatalf("snapshot mutated by later cycles: %+v", snap[0])
	}
	if len(ctl.AllocationLog()) <= n {
		t.Fatal("controller log did not grow; the aliasing check proved nothing")
	}
}

// An un-logged controller returns nil, not an empty copy.
func TestAllocationLogNilWhenDisabled(t *testing.T) {
	ctl, err := New(DefaultOptions(syntheticTable(0.09), 0.12))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctl.AllocationLog(); got != nil {
		t.Fatalf("AllocationLog = %v without LogAllocations, want nil", got)
	}
}
