package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"aspeo/internal/fault"
	"aspeo/internal/governor"
	"aspeo/internal/obs"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

// Tracing is observation only: a traced run must be decision-for-decision
// identical to an untraced run of the same seed — same allocation log,
// same health ledger, same final estimates.
func TestTracingDoesNotPerturbController(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{WriteFailProb: 0.2, SpikeProb: 0.05}
	run := func(traced bool) (*Controller, []obs.Span) {
		eng, ctl, _ := installController(t, workload.Spotify(), tab, 0.3, plan,
			func(o *Options) { o.LogAllocations = true; o.Trace = traced })
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace()
			eng.Phone().AttachSpanSink(tr)
		}
		eng.Run(30*time.Second, false)
		if tr == nil {
			return ctl, nil
		}
		return ctl, tr.Spans()
	}
	plain, _ := run(false)
	traced, spans := run(true)

	if !reflect.DeepEqual(plain.AllocationLog(), traced.AllocationLog()) {
		t.Fatal("tracing changed the controller's allocation decisions")
	}
	if plain.Health() != traced.Health() {
		t.Fatalf("tracing changed the health ledger:\nplain  %+v\ntraced %+v",
			plain.Health(), traced.Health())
	}
	if len(spans) == 0 {
		t.Fatal("traced run emitted no spans")
	}
}

// Every emitted span must be well formed: a known stage, a positive
// cycle ordinal, a non-decreasing backend timestamp, and attribute
// values restricted to the JSON-scalar contract (bool, string, float64).
func TestSpanWellformedness(t *testing.T) {
	tab := syntheticTable(0.13)
	eng, _, _ := installController(t, workload.Spotify(), tab, 0.3, fault.Plan{},
		func(o *Options) { o.Trace = true })
	tr := obs.NewTrace()
	eng.Phone().AttachSpanSink(tr)
	eng.Run(20*time.Second, false)

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	valid := map[string]bool{
		obs.StageCycle: true, obs.StageMeasure: true, obs.StageKalman: true,
		obs.StageOptimize: true, obs.StageSchedule: true, obs.StageLadder: true,
	}
	stageSeen := map[string]bool{}
	var prevAt time.Duration
	for i, s := range spans {
		if !valid[s.Stage] {
			t.Fatalf("span %d has unknown stage %q", i, s.Stage)
		}
		stageSeen[s.Stage] = true
		if s.Cycle < 1 {
			t.Fatalf("span %d has cycle %d", i, s.Cycle)
		}
		if s.At < prevAt {
			t.Fatalf("span %d timestamp went backward: %v after %v", i, s.At, prevAt)
		}
		prevAt = s.At
		for k, v := range s.Attrs {
			switch v.(type) {
			case bool, string, float64:
			default:
				t.Fatalf("span %d attr %q has non-canonical type %T", i, k, v)
			}
		}
	}
	for _, stage := range []string{obs.StageCycle, obs.StageMeasure,
		obs.StageKalman, obs.StageOptimize, obs.StageSchedule} {
		if !stageSeen[stage] {
			t.Fatalf("healthy run never emitted a %q span", stage)
		}
	}
}

// A run that walks the degradation ladder must narrate it: ladder spans
// for degrade and relinquish, gate verdicts on rejected measurements,
// safe-schedule spans while degraded — and the health ledger's
// LastTransition must record the final rung.
func TestLadderSpansUnderForcedFaults(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{StuckFiles: []fault.StuckFile{
		{Path: sysfs.CPUScalingSetSpeed, From: 6 * time.Second},
	}}
	eng, ctl, _ := installController(t, workload.Spotify(), tab, 0.3, plan,
		func(o *Options) { o.Trace = true })
	governor.Defaults(eng)
	rec := obs.NewRecorder(0) // the flight recorder is a plain sink
	eng.Phone().AttachSpanSink(rec)
	eng.Run(60*time.Second, false)

	if !ctl.Health().Relinquished {
		t.Fatal("scenario never relinquished; test proves nothing")
	}
	if lt := ctl.Health().LastTransition; !strings.HasPrefix(lt, "relinquished@") {
		t.Fatalf("LastTransition = %q, want relinquished@<cycle>", lt)
	}

	sum := obs.Summarize(rec.Snapshot())
	var sawDegraded, sawRelinquished bool
	for _, tr := range sum.LadderTransitions {
		if strings.HasPrefix(tr, "degraded@") {
			sawDegraded = true
		}
		if strings.HasPrefix(tr, "relinquished@") {
			sawRelinquished = true
		}
	}
	if !sawDegraded || !sawRelinquished {
		t.Fatalf("ladder transitions %v missing degrade or relinquish", sum.LadderTransitions)
	}
	var sawSafe bool
	for _, s := range rec.Snapshot() {
		if s.Stage == obs.StageSchedule && s.Attrs["safe"] == true {
			sawSafe = true
			break
		}
	}
	if !sawSafe {
		t.Fatal("degraded cycles never emitted a safe-schedule span")
	}
}

// Gate rejections must carry their verdict into the measure span.
func TestGateVerdictInMeasureSpan(t *testing.T) {
	tab := syntheticTable(0.13)
	plan := fault.Plan{SpikeProb: 0.3}
	eng, ctl, _ := installController(t, workload.Spotify(), tab, 0.3, plan,
		func(o *Options) { o.Trace = true })
	tr := obs.NewTrace()
	eng.Phone().AttachSpanSink(tr)
	eng.Run(40*time.Second, false)

	if ctl.Health().RejectedSamples == 0 {
		t.Fatal("scenario never gated a sample; test proves nothing")
	}
	for _, s := range tr.Spans() {
		if s.Stage == obs.StageMeasure {
			if v, ok := s.Attrs["gate_verdict"].(string); ok && v != "" {
				return
			}
		}
	}
	t.Fatal("no measure span carries a gate_verdict despite rejections")
}
