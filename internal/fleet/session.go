package fleet

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"aspeo/internal/ckpt"
	"aspeo/internal/core"
	"aspeo/internal/experiment"
	"aspeo/internal/obs"
	"aspeo/internal/obs/pipeline"
	"aspeo/internal/platform"
	"aspeo/internal/report"
)

// restartSeedStride separates the seeds of a session's restart attempts:
// replaying the exact cell that just failed would fail identically, so a
// retry models what a real re-run faces — the same plan under different
// stochastic conditions. Attempt k runs at Seed + k·stride; the stride
// is a prime far larger than any campaign's seed spacing so attempt
// seeds never collide with sibling sessions'.
const restartSeedStride = 1_000_003

// session is the manager's per-session record. The simulation cell
// itself stays single-threaded on the worker goroutine; mu guards only
// this status record, which HTTP handlers and rollups read concurrently.
type session struct {
	id   string
	seq  uint64
	cfg  Config
	stop atomic.Bool

	// cohortID is the telemetry pipeline's interned cohort, captured at
	// submit so the hot path never touches the intern table.
	cohortID uint32
	// healthResid accumulates the ladder deltas each attempt's final
	// summary carried beyond its last observed cycle; the worker
	// goroutine owns it and the session's final record reports it.
	healthResid pipeline.HealthDelta
	// lastSnap is the most recent cycle snapshot, published lock-free
	// from the cycle hot path and read by views.
	lastSnap atomic.Pointer[core.CycleSnapshot]

	// Restore-on-start: a session resubmitted from a checkpoint resumes
	// from this snapshot on its first attempt. baseAttempt is the
	// attempt ordinal the snapshot was taken under — the restored
	// attempt must rebuild with that attempt's seed to restore into an
	// identical cell. Both are written before the worker starts (the
	// pool submit is the happens-before edge) and only the worker reads
	// them.
	resume      *experiment.CellState
	baseAttempt int

	mu          sync.Mutex
	state       State
	restarts    int
	errMsg      string
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	summary     *report.RunSummary
	allocLog    []core.AllocationRecord
	flight      *obs.Recorder // current attempt's flight recorder
	flightDump  string        // path of the last automatic NDJSON dump

	done chan struct{} // closed on terminal state
}

// SessionView is a session's externally visible status — the fleet
// API's session resource.
type SessionView struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Config   Config `json:"config"`
	Restarts int    `json:"restarts"`
	Error    string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// LastCycle is the controller's most recent per-cycle snapshot
	// (live telemetry; nil for governor sessions or before the first
	// cycle).
	LastCycle *core.CycleSnapshot `json:"last_cycle,omitempty"`
	// Summary is the run's final record, present once terminal (partial
	// for stopped sessions).
	Summary *report.RunSummary `json:"summary,omitempty"`
	// FlightDump is the path of the automatic flight-recorder dump, set
	// when an attempt escalated and the manager has a dump directory.
	FlightDump string `json:"flight_dump,omitempty"`

	seq uint64 // ordering key for List
}

func (s *session) view() SessionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := SessionView{
		ID: s.id, State: s.state, Config: s.cfg,
		Restarts: s.restarts, Error: s.errMsg,
		SubmittedAt: s.submittedAt, FlightDump: s.flightDump, seq: s.seq,
	}
	if !s.startedAt.IsZero() {
		t := s.startedAt
		v.StartedAt = &t
	}
	if !s.finishedAt.IsZero() {
		t := s.finishedAt
		v.FinishedAt = &t
	}
	if snap := s.lastSnap.Load(); snap != nil {
		c := *snap
		v.LastCycle = &c
	}
	if s.summary != nil {
		sum := *s.summary
		v.Summary = &sum
	}
	return v
}

// Terminal reports whether the view shows a final state.
func (v SessionView) Terminal() bool { return v.State.Terminal() }

// runSession is the worker-side lifecycle: pending → running → one or
// more attempts → terminal state. It owns the simulation cell for the
// session's whole life; everything it shares with readers goes through
// the session mutex. worker is the pool worker index running it — the
// session's telemetry shard for its whole life.
func (m *Manager) runSession(worker int, s *session) {
	// land folds the session's final telemetry record (before done
	// closes, so a rollup taken after WaitSession always includes it),
	// maintains the lifecycle population counters, and finishes.
	land := func(state State, errMsg string, from *atomic.Int64, to *atomic.Int64) {
		m.foldFinal(worker, s)
		from.Add(-1)
		to.Add(1)
		s.finish(state, errMsg)
		m.removeCheckpoint(s.id)
	}
	if s.stop.Load() {
		land(StateStopped, "stopped before start", &m.stPending, &m.stStopped)
		return
	}
	m.stPending.Add(-1)
	m.stRunning.Add(1)
	s.mu.Lock()
	s.state = StateRunning
	s.startedAt = time.Now()
	s.mu.Unlock()

	for attempt := s.baseAttempt; ; attempt++ {
		failure := m.runAttempt(worker, s, attempt)
		if s.stop.Load() {
			land(StateStopped, "", &m.stRunning, &m.stStopped)
			return
		}
		if failure == "" {
			land(StateCompleted, "", &m.stRunning, &m.stCompleted)
			return
		}
		if attempt >= s.cfg.MaxRestarts {
			land(StateFailed, failure, &m.stRunning, &m.stFailed)
			return
		}
		m.restarts.Add(1)
		s.mu.Lock()
		s.restarts++
		s.errMsg = failure // visible while the retry runs
		s.mu.Unlock()
	}
}

// foldFinal reports the session's terminal record to the telemetry
// pipeline: the run totals when a summary exists, plus the residual
// health deltas the cycle stream did not cover.
func (m *Manager) foldFinal(worker int, s *session) {
	fin := pipeline.FinalRecord{
		Session: s.seq,
		Cohort:  s.cohortID,
		Health:  s.healthResid,
	}
	s.mu.Lock()
	sum := s.summary
	s.mu.Unlock()
	if sum != nil {
		fin.HasSummary = true
		fin.DurationS = sum.DurationS
		fin.EnergyJ = sum.EnergyJ
		fin.DroppedInstr = sum.DroppedInstr
		fin.GIPS = sum.GIPS
		if c := sum.Controller; c != nil {
			fin.Controller = true
			fin.MeanAbsErrGIPS = c.MeanAbsErrGIPS
			fin.Relinquished = c.Health.Relinquished
			fin.LastTransition = c.Health.LastTransition
		}
	}
	m.pipe.ObserveFinal(worker, &fin)
}

// healthDelta computes the per-record ladder delta between two ledgers
// and advances prev. Counters difference exactly; ConsecutiveFailures
// is a level, not a counter, and its deltas (which may be negative)
// reconstruct the sum of last-seen levels when aggregated.
func healthDelta(prev *platform.Health, cur *platform.Health) pipeline.HealthDelta {
	d := pipeline.HealthDelta{
		ActuationFailures:   int32(cur.ActuationFailures - prev.ActuationFailures),
		ActuationRetries:    int32(cur.ActuationRetries - prev.ActuationRetries),
		GovernorReinstalls:  int32(cur.GovernorReinstalls - prev.GovernorReinstalls),
		MaxFreqRestores:     int32(cur.MaxFreqRestores - prev.MaxFreqRestores),
		RejectedSamples:     int32(cur.RejectedSamples - prev.RejectedSamples),
		NonFiniteSamples:    int32(cur.NonFiniteSamples - prev.NonFiniteSamples),
		StuckSamples:        int32(cur.StuckSamples - prev.StuckSamples),
		OutlierSamples:      int32(cur.OutlierSamples - prev.OutlierSamples),
		DegradedCycles:      int32(cur.DegradedCycles - prev.DegradedCycles),
		WatchdogTrips:       int32(cur.WatchdogTrips - prev.WatchdogTrips),
		ConsecutiveFailures: int32(cur.ConsecutiveFailures - prev.ConsecutiveFailures),
	}
	*prev = *cur
	return d
}

// addHealthDelta accumulates d into acc.
func addHealthDelta(acc *pipeline.HealthDelta, d pipeline.HealthDelta) {
	acc.ActuationFailures += d.ActuationFailures
	acc.ActuationRetries += d.ActuationRetries
	acc.GovernorReinstalls += d.GovernorReinstalls
	acc.MaxFreqRestores += d.MaxFreqRestores
	acc.RejectedSamples += d.RejectedSamples
	acc.NonFiniteSamples += d.NonFiniteSamples
	acc.StuckSamples += d.StuckSamples
	acc.OutlierSamples += d.OutlierSamples
	acc.DegradedCycles += d.DegradedCycles
	acc.WatchdogTrips += d.WatchdogTrips
	acc.ConsecutiveFailures += d.ConsecutiveFailures
}

// runAttempt builds and runs one cell. It returns "" on success or a
// failure description: a construction error, a run that died, a worker
// panic (contained here — the deferred recover converts it into an
// ordinary failed attempt feeding the restart ladder), or a controller
// that relinquished the device — the resilience ladder's terminal rung,
// which the fleet treats as session failure (the controller-managed run
// it was asked for did not survive).
func (m *Manager) runAttempt(worker int, s *session, attempt int) (failure string) {
	var rec *obs.Recorder
	defer func() {
		if r := recover(); r != nil {
			failure = fmt.Sprintf("panic: %v", r)
			m.panics.Add(1)
			m.cPanics.With("worker").Inc()
			if rec != nil {
				// The flight recorder holds the decision spans leading up
				// to the panic — exactly the postmortem record FlightDir
				// exists for.
				m.dumpFlight(s, attempt, rec)
			}
		}
	}()

	spec := s.cfg.spec(s.cfg.Seed + int64(attempt)*restartSeedStride)
	// The cycle hook is the fleet's telemetry hot path: one compact
	// record into this worker's ring (lock-free, allocation-free in the
	// steady state) and a lock-free snapshot publish. prevHealth turns
	// the cumulative ladder ledger into per-cycle deltas so shard sums
	// commute; it is worker-local state, one goroutine only.
	var prevHealth platform.Health
	cohort, arrival := s.cohortID, s.cfg.ArrivalS
	stormP, stormB := s.cfg.StormPeriodS, s.cfg.StormBurstS
	spec.OnCycle = func(cs core.CycleSnapshot) {
		m.agg.observeCycle()
		at := cs.At.Seconds()
		rec := pipeline.CycleRecord{
			Session:      s.seq,
			Cohort:       cohort,
			T:            arrival + at,
			MeasuredGIPS: cs.MeasuredGIPS,
			TargetGIPS:   cs.TargetGIPS,
			PowerW:       cs.PowerW,
			Health:       healthDelta(&prevHealth, &cs.Health),
		}
		if stormP > 0 {
			rec.Storm = math.Mod(at, stormP) < stormB
		}
		m.pipe.ObserveCycle(worker, &rec)
		snap := cs
		s.lastSnap.Store(&snap)
	}
	if chaos := m.opts.Chaos; !chaos.Zero() {
		inner := spec.OnCycle
		att := attempt + 1 // the plan speaks 1-based attempts
		spec.OnCycle = func(cs core.CycleSnapshot) {
			inner(cs)
			if chaos.ShouldStall(cs.CyclesRun) {
				time.Sleep(chaos.StallFor)
			}
			if chaos.ShouldPanic(att, cs.CyclesRun) {
				panic(fmt.Sprintf("fault: injected worker panic at cycle %d (attempt %d)", cs.CyclesRun, att))
			}
		}
	}
	if m.opts.CheckpointDir != "" {
		path := m.checkpointPath(s.id)
		meta := checkpointMeta{ID: s.id, Seq: s.seq, Config: s.cfg, Attempt: attempt}
		spec.CheckpointEvery = m.opts.checkpointEvery()
		spec.OnCheckpoint = func(cs *experiment.CellState) error {
			if err := ckpt.Save(m.ckptFS, path, checkpointKind, meta, cs); err != nil {
				m.cCkptFail.Inc()
				return err
			}
			m.ckptDone.Add(1)
			m.cCkpt.Inc()
			return nil
		}
	}

	// Each controller attempt gets a fresh flight recorder: the bounded
	// ring of recent decision spans, readable live (TraceSnapshot / the
	// trace endpoint) and dumped to FlightDir when the attempt escalates.
	if s.cfg.Controller && m.opts.FlightCap >= 0 {
		rec = obs.NewRecorder(m.opts.FlightCap)
		spec.Trace = rec
		s.mu.Lock()
		s.flight = rec
		s.mu.Unlock()
	}

	sess, err := experiment.NewSession(spec)
	if err != nil {
		return err.Error()
	}
	if s.resume != nil && attempt == s.baseAttempt {
		cs := s.resume
		s.resume = nil // a failed restore must not replay on the retry
		if err := sess.RestoreState(cs); err != nil {
			return fmt.Sprintf("restoring checkpoint: %v", err)
		}
	}
	st := sess.Run(s.stop.Load)
	sum := report.NewRunSummary(sess, st)
	if c := sum.Controller; c != nil {
		// Ladder activity between the last observed cycle and the final
		// ledger rides on the session's final record, so aggregate health
		// is exact — cumulative across every attempt.
		addHealthDelta(&s.healthResid, healthDelta(&prevHealth, &c.Health))
	}

	s.mu.Lock()
	s.summary = &sum
	if s.cfg.LogAllocations && sess.Controller != nil {
		s.allocLog = sess.Controller.AllocationLog()
	}
	s.mu.Unlock()

	if rec != nil {
		if c := sum.Controller; c != nil && (c.Health.WatchdogTrips > 0 || c.Health.Relinquished) {
			m.dumpFlight(s, attempt, rec)
		}
	}
	if c := sum.Controller; c != nil && c.Health.Relinquished {
		return "controller relinquished the device"
	}
	return ""
}

// dumpFlight writes the attempt's flight-recorder content to the
// manager's dump directory (best effort — a dump failure never fails the
// session) and records the path in the session's status.
func (m *Manager) dumpFlight(s *session, attempt int, rec *obs.Recorder) {
	if m.opts.FlightDir == "" {
		return
	}
	path := filepath.Join(m.opts.FlightDir, fmt.Sprintf("%s-a%d.trace.ndjson", s.id, attempt))
	f, err := os.Create(path)
	if err != nil {
		return
	}
	werr := rec.WriteNDJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return
	}
	s.mu.Lock()
	s.flightDump = path
	s.mu.Unlock()
}

// finish lands the session in a terminal state exactly once.
func (s *session) finish(state State, errMsg string) {
	s.mu.Lock()
	s.state = state
	if errMsg != "" {
		s.errMsg = errMsg
	} else if state != StateFailed {
		s.errMsg = ""
	}
	s.finishedAt = time.Now()
	s.mu.Unlock()
	close(s.done)
}

// aggregator keeps the fleet-wide cycle counter and computes a stable
// recent throughput: the rate over the window since the last baseline,
// where the baseline only advances once the window exceeds a second —
// so back-to-back /metrics scrapes don't each measure a microscopic
// window.
type aggregator struct {
	cycles atomic.Int64

	mu         sync.Mutex
	start      time.Time
	baseWall   time.Time
	baseCycles int64
	lastRate   float64
}

func (a *aggregator) observeCycle() { a.cycles.Add(1) }

func (a *aggregator) rate() (total int, perSec float64) {
	now := time.Now()
	cycles := a.cycles.Load()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.baseWall.IsZero() {
		a.baseWall = a.start
	}
	if dt := now.Sub(a.baseWall); dt >= time.Second {
		a.lastRate = float64(cycles-a.baseCycles) / dt.Seconds()
		a.baseWall = now
		a.baseCycles = cycles
	} else if a.lastRate == 0 && dt > 0 {
		// Young fleet: report the rate since start rather than 0.
		a.lastRate = float64(cycles-a.baseCycles) / dt.Seconds()
	}
	return int(cycles), a.lastRate
}
