package fleet

import (
	"fmt"

	"aspeo/internal/scenario"
)

// ConfigFromSession converts one compiled scenario session into a fleet
// session config. The generated workload rides inline (Config.Workload);
// nothing about the session references the scenario afterwards, so the
// config checkpoints, restores and restarts like any hand-submitted one.
func ConfigFromSession(g *scenario.Session) Config {
	return Config{
		App:             g.App.Name,
		Cohort:          g.Cohort,
		ArrivalS:        g.ArrivalS,
		StormPeriodS:    g.StormPeriodS,
		StormBurstS:     g.StormBurstS,
		Workload:        g.App,
		ExtraBackground: g.ExtraBackground,
		Load:            g.Load,
		Governor:        g.Governor,
		Controller:      g.Controller,
		CPUOnly:         g.CPUOnly,
		TargetGIPS:      g.TargetGIPS,
		Quick:           g.Quick,
		Seed:            g.Seed,
		Engine:          g.Engine,
		Faults:          g.Faults,
		RunForS:         g.RunForS,
		MaxRestarts:     g.MaxRestarts,
	}
}

// SubmitScenario submits every session of a compiled scenario, in
// arrival order. Acceptance is all-or-error-at-the-boundary like the
// HTTP submit fan-out: the views of the sessions that landed are
// returned alongside the error that stopped intake, so a partially
// accepted scenario is reported honestly.
func (m *Manager) SubmitScenario(g *scenario.Generated) ([]SessionView, error) {
	views := make([]SessionView, 0, len(g.Sessions))
	for i := range g.Sessions {
		cfg := ConfigFromSession(&g.Sessions[i])
		v, err := m.Submit(cfg)
		if err != nil {
			return views, fmt.Errorf("scenario %s session %d: %w", g.Name, i, err)
		}
		views = append(views, v)
	}
	return views, nil
}
