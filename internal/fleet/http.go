package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"aspeo/internal/jsonx"
	"aspeo/internal/obs"
	"aspeo/internal/par"
	"aspeo/internal/report"
	"aspeo/internal/scenario"
)

// NewServer returns the fleet's HTTP/JSON control plane over a manager
// (stdlib only, as everywhere in this repo):
//
//	POST /api/v1/sessions            submit 1..N sessions
//	POST /api/v1/scenarios           compile a scenario spec, submit its population
//	GET  /api/v1/sessions[?state=]   list sessions
//	GET  /api/v1/sessions/{id}       inspect one session
//	POST /api/v1/sessions/{id}/stop  cooperative stop
//	GET  /api/v1/sessions/{id}/stream  NDJSON live status
//	GET  /api/v1/sessions/{id}/trace   NDJSON flight-recorder snapshot
//	GET  /api/v1/rollup              fleet-wide rollup (JSON)
//	GET  /api/v1/telemetry           NDJSON batched telemetry stream
//	POST /api/v1/drain               stop intake, wait for the fleet
//	GET  /metrics                    Prometheus text exposition
//	GET  /healthz                    liveness
//	GET  /readyz                     readiness (not draining, checkpoint dir writable)
//
// Robustness: every handler runs under a recover boundary (a handler
// panic answers 500 and is counted, never kills the process); queue-full
// submissions answer 429 with Retry-After; concurrent NDJSON streams
// are bounded (Options.MaxStreams, excess shed with 429); non-streaming
// handlers are bounded by Options.RequestTimeout (streams and drain are
// exempt — they are long-lived by design).
func NewServer(m *Manager) http.Handler {
	mux := http.NewServeMux()
	// timed wraps the quick request/response handlers in the per-request
	// deadline. http.TimeoutHandler answers 503 with the JSON body below
	// once the budget is spent, whatever the handler is stuck on.
	timed := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, m.opts.requestTimeout(), `{"error":"request deadline exceeded"}`)
	}
	mux.Handle("POST /api/v1/sessions", timed(func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	}))
	mux.Handle("GET /api/v1/sessions", timed(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List(State(r.URL.Query().Get("state"))))
	}))
	mux.Handle("GET /api/v1/sessions/{id}", timed(func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	}))
	mux.Handle("POST /api/v1/sessions/{id}/stop", timed(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Stop(id); err != nil {
			writeError(w, err)
			return
		}
		v, _ := m.Get(id)
		writeJSON(w, http.StatusAccepted, v)
	}))
	mux.Handle("POST /api/v1/scenarios", timed(func(w http.ResponseWriter, r *http.Request) {
		handleScenario(m, w, r)
	}))
	mux.HandleFunc("GET /api/v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		handleStream(m, w, r)
	})
	mux.HandleFunc("GET /api/v1/telemetry", func(w http.ResponseWriter, r *http.Request) {
		handleTelemetry(m, w, r)
	})
	mux.Handle("GET /api/v1/sessions/{id}/trace", timed(func(w http.ResponseWriter, r *http.Request) {
		spans, err := m.TraceSnapshot(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = obs.WriteNDJSON(w, spans)
	}))
	mux.Handle("GET /api/v1/rollup", timed(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Rollup())
	}))
	mux.HandleFunc("POST /api/v1/drain", func(w http.ResponseWriter, r *http.Request) {
		// Drain waits for the whole fleet to land, so it outlives the
		// server-wide read/write timeouts by design; exempt this request
		// from them (no-ops when the server sets none).
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(time.Time{})
		_ = rc.SetWriteDeadline(time.Time{})
		if err := m.Drain(r.Context()); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, m.Rollup())
	})
	mux.Handle("GET /metrics", timed(func(w http.ResponseWriter, r *http.Request) {
		// Refresh the rollup families on the manager's long-lived
		// registry, then render everything on it — rollup and live
		// instruments alike — through the one text encoder.
		report.RollupMetrics(m.Registry(), m.Rollup())
		w.Header().Set("Content-Type", obs.ContentType)
		_ = m.Registry().WriteText(w)
	}))
	mux.Handle("GET /healthz", timed(func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if m.Draining() {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": status})
	}))
	mux.Handle("GET /readyz", timed(func(w http.ResponseWriter, r *http.Request) {
		probs := m.ReadyProblems()
		if len(probs) == 0 {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready", "problems": probs,
		})
	}))
	return withRecovery(m, mux)
}

// withRecovery is the control plane's panic boundary: a panicking
// handler answers 500 (when the response has not started) and is
// counted in aspeo_fleet_panics_recovered_total{boundary="http"} —
// one broken request must never take down the fleet process.
func withRecovery(m *Manager, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					// The server's own way of aborting a response
					// (client gone mid-stream); let it propagate.
					panic(rec)
				}
				m.cPanics.With("http").Inc()
				writeJSON(w, http.StatusInternalServerError,
					errorBody(fmt.Errorf("internal error: %v", rec)))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// submitRequest is the POST /api/v1/sessions body: one config, fanned
// out to Count sessions with consecutive seeds (a convenience for "run
// this cell N times" fleet campaigns).
type submitRequest struct {
	Config
	// Count submits this many sessions at seeds Seed, Seed+1, …;
	// 0 means 1.
	Count int `json:"count,omitempty"`
}

// maxSubmitCount bounds one request's fan-out; campaigns beyond it
// should batch their submissions.
const maxSubmitCount = 4096

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := jsonx.DecodeStrict(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("decoding request: %w", err)))
		return
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > maxSubmitCount {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("count %d outside [1, %d]", req.Count, maxSubmitCount)))
		return
	}
	views := make([]SessionView, 0, req.Count)
	for i := 0; i < req.Count; i++ {
		cfg := req.Config
		cfg.Seed += int64(i)
		v, err := m.Submit(cfg)
		if err != nil {
			// Partial acceptance is reported honestly: what landed is
			// in "sessions", what stopped intake in "error".
			status := statusFor(err)
			if status == http.StatusTooManyRequests {
				m.cShed.With("queue_full").Inc()
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, status, struct {
				Sessions []SessionView `json:"sessions"`
				Error    string        `json:"error"`
			}{views, err.Error()})
			return
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusCreated, struct {
		Sessions []SessionView `json:"sessions"`
	}{views})
}

// handleScenario is POST /api/v1/scenarios: the body is a declarative
// scenario spec (internal/scenario JSON schema, decoded strictly). The
// server resolves declared trace paths against its own working
// directory (the Config.Profile precedent), compiles the spec, and
// submits the generated population in arrival order. Malformed specs
// answer 400 with the offending field path.
func handleScenario(m *Manager, w http.ResponseWriter, r *http.Request) {
	var spec scenario.Spec
	if err := jsonx.DecodeStrict(r.Body, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("decoding scenario: %w", err)))
		return
	}
	if spec.Sessions > maxSubmitCount {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("scenario sessions %d outside [1, %d]", spec.Sessions, maxSubmitCount)))
		return
	}
	if err := spec.ResolveTraces(""); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(err))
		return
	}
	g, err := spec.Compile()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(err))
		return
	}
	views, err := m.SubmitScenario(g)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusTooManyRequests {
			m.cShed.With("queue_full").Inc()
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, struct {
			Scenario string        `json:"scenario"`
			Sessions []SessionView `json:"sessions"`
			Error    string        `json:"error"`
		}{g.Name, views, err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, struct {
		Scenario string        `json:"scenario"`
		Sessions []SessionView `json:"sessions"`
	}{g.Name, views})
}

// handleStream writes the session's status as NDJSON — one SessionView
// per line — every interval until the session lands in a terminal state
// (the final view is always emitted) or the client goes away.
func handleStream(m *Manager, w http.ResponseWriter, r *http.Request) {
	// Bound concurrent streams: each holds a connection and a goroutine
	// for a session's whole life, so an unbounded count is a resource
	// leak an impatient dashboard can trigger. Excess is shed, not
	// queued — the client knows immediately and can back off.
	select {
	case m.streamSem <- struct{}{}:
		defer func() { <-m.streamSem }()
	default:
		m.cShed.With("max_streams").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorBody(fmt.Errorf("too many concurrent streams (max %d)", m.opts.maxStreams())))
		return
	}
	// A healthy stream lives far past the server-wide read/write
	// timeouts: clear the read deadline (nothing more arrives from the
	// client) and extend the write deadline per emit below.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	id := r.PathValue("id")
	s, err := m.lookup(id)
	if err != nil {
		writeError(w, err)
		return
	}
	interval := 500 * time.Millisecond
	if q := r.URL.Query().Get("interval_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 20 {
			writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("interval_ms %q: want an integer >= 20", q)))
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	// Each write extends its own per-connection deadline, so a healthy
	// stream lives for hours while a stalled client is cut off within a
	// request-timeout of its last successful write.
	enc := json.NewEncoder(w)
	emit := func() bool {
		_ = rc.SetWriteDeadline(time.Now().Add(m.opts.requestTimeout()))
		v := s.view()
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !v.Terminal()
	}
	if !emit() {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			emit()
			return
		case <-ticker.C:
			if !emit() {
				return
			}
		}
	}
}

// handleTelemetry streams the fleet's raw telemetry as NDJSON — one
// pipeline.StreamBatch per line, each holding the arrivals, cycle
// records and finals folded since the previous epoch advance. The
// capture is best-effort by contract (batches are dropped, counted,
// when the client lags) but loss-free in practice at any sane interval;
// the file a client saves replays offline into the exact live rollup
// via `aspeo-trace rollup`.
func handleTelemetry(m *Manager, w http.ResponseWriter, r *http.Request) {
	// Telemetry streams share the session-stream semaphore: both hold a
	// connection and a goroutine indefinitely, so they share the bound.
	select {
	case m.streamSem <- struct{}{}:
		defer func() { <-m.streamSem }()
	default:
		m.cShed.With("max_streams").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorBody(fmt.Errorf("too many concurrent streams (max %d)", m.opts.maxStreams())))
		return
	}
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	interval := 500 * time.Millisecond
	if q := r.URL.Query().Get("interval_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 20 {
			writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("interval_ms %q: want an integer >= 20", q)))
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	ch, cancel := m.pipe.Subscribe(64)
	defer cancel()
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			// Advancing the epoch publishes everything folded since the
			// last advance to every subscriber; scrape-triggered rollups
			// land on the channel between ticks and drain here too.
			m.pipe.Advance()
			_ = rc.SetWriteDeadline(time.Now().Add(m.opts.requestTimeout()))
			for draining := true; draining; {
				select {
				case b := <-ch:
					if err := enc.Encode(b); err != nil {
						return
					}
				default:
					draining = false
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func errorBody(err error) map[string]string { return map[string]string{"error": err.Error()} }

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, par.ErrQueueFull):
		// Transient backpressure: the queue drains as workers free up,
		// so the right client response is to retry shortly — 429 +
		// Retry-After, not a generic 503.
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, par.ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorBody(err))
}
