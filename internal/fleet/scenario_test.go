package fleet_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aspeo/internal/fleet"
	"aspeo/internal/scenario"
)

// smallScenario generates a 4-session governor-mode population that
// runs in test time (short run caps, no profiling).
func smallScenario() *scenario.Spec {
	return &scenario.Spec{
		Name: "test-pop", Seed: 11, Sessions: 4, HorizonS: 60,
		Cohorts: []scenario.Cohort{
			{
				Name: "mix", Weight: 1,
				Apps:    []string{"spotify", "ebook"},
				Chain:   &scenario.Chain{Length: 2, DwellS: 2},
				RunForS: 3,
			},
		},
	}
}

// TestSubmitScenario: a compiled population submits, runs and lands;
// every session carries its generated workload inline.
func TestSubmitScenario(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 4})
	g, err := smallScenario().Compile()
	if err != nil {
		t.Fatal(err)
	}
	views, err := m.SubmitScenario(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 4 {
		t.Fatalf("submitted %d sessions, want 4", len(views))
	}
	for _, v := range views {
		final := waitTerminal(t, m, v.ID, 60*time.Second)
		if final.State != fleet.StateCompleted {
			t.Errorf("session %s: state %s (%s)", v.ID, final.State, final.Error)
		}
		if !strings.HasPrefix(final.Config.App, "chain:") {
			t.Errorf("session %s: app %q, want a generated chain", v.ID, final.Config.App)
		}
		if final.Config.Workload == nil {
			t.Errorf("session %s: no inline workload", v.ID)
		}
	}
}

// TestConfigWorkloadRoundTrip: a config carrying an inline workload
// must survive the checkpoint metadata's JSON round-trip exactly — the
// crash-safety path stores the config as JSON and rebuilds the session
// from the decoded copy.
func TestConfigWorkloadRoundTrip(t *testing.T) {
	g, err := smallScenario().Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleet.ConfigFromSession(&g.Sessions[0])
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back fleet.Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("config did not round-trip:\n%s\n%s", b, b2)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped config invalid: %v", err)
	}
}

// TestScenarioFleetSmoke is the generated-population smoke `make
// smoke-gen` runs under the race detector: a 16-session mixed
// population — chained gamers with an ad storm, perturbed readers —
// compiles, submits through the worker pool and lands every session.
func TestScenarioFleetSmoke(t *testing.T) {
	spec := &scenario.Spec{
		Name: "smoke-pop", Seed: 23, Sessions: 16, HorizonS: 120,
		Arrival: scenario.Arrival{
			Process: scenario.ProcessBursty, BurstFactor: 3,
			MeanBurstS: 10, MeanCalmS: 30,
		},
		LoadCurve: []scenario.CurveTerm{{PeriodS: 120, Amplitude: 0.3, Phase: 0.25}},
		Cohorts: []scenario.Cohort{
			{
				Name: "gamers", Weight: 0.6,
				Apps:    []string{"spotify", "ebook"},
				Chain:   &scenario.Chain{Length: 2, DwellS: 2, DwellJitter: 0.2},
				Loads:   map[string]float64{"BL": 0.7, "HL": 0.3},
				RunForS: 3,
				AdStorm: &scenario.AdStorm{PeriodS: 5, BurstS: 1, GIPS: 0.2},
			},
			{
				Name: "readers", Weight: 0.4,
				Apps:    []string{"ebook"},
				Perturb: &scenario.Perturb{DemandSigma: 0.25, DurationSigma: 0.2},
				RunForS: 3,
			},
		},
	}
	g, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m := fleet.NewManager(fleet.Options{Workers: 4})
	views, err := m.SubmitScenario(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 16 {
		t.Fatalf("submitted %d sessions, want 16", len(views))
	}
	storms := 0
	for _, v := range views {
		final := waitTerminal(t, m, v.ID, 120*time.Second)
		if final.State != fleet.StateCompleted {
			t.Errorf("session %s (%s): state %s (%s)", v.ID, final.Config.App, final.State, final.Error)
		}
		storms += len(final.Config.ExtraBackground)
	}
	if storms == 0 {
		t.Error("no session carried an ad-storm background task")
	}
}

// TestScenarioEndpoint: POST /api/v1/scenarios compiles and submits;
// malformed specs answer 400 with the offending field path.
func TestScenarioEndpoint(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 4})
	srv := httptest.NewServer(fleet.NewServer(m))
	defer srv.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/api/v1/scenarios", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Malformed: unknown field, named in the error.
	code, body := post(`{"name":"x","sessions":2,"cohortz":[]}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "cohortz") {
		t.Fatalf("unknown field: status %d body %s", code, body)
	}
	// Malformed: bad cohort app, field path in the error.
	code, body = post(`{"name":"x","sessions":2,"cohorts":[{"name":"c","weight":1,"apps":["doom"]}]}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "apps[0]") {
		t.Fatalf("bad app: status %d body %s", code, body)
	}
	// Oversized populations are rejected before compilation.
	code, _ = post(`{"name":"x","sessions":100000,"cohorts":[{"name":"c","weight":1,"apps":["spotify"]}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized: status %d, want 400", code)
	}

	// A valid scenario is accepted and its sessions land.
	spec, err := json.Marshal(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	code, body = post(string(spec))
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	var resp struct {
		Scenario string              `json:"scenario"`
		Sessions []fleet.SessionView `json:"sessions"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "test-pop" || len(resp.Sessions) != 4 {
		t.Fatalf("got scenario %q with %d sessions", resp.Scenario, len(resp.Sessions))
	}
	for _, v := range resp.Sessions {
		final := waitTerminal(t, m, v.ID, 60*time.Second)
		if final.State != fleet.StateCompleted {
			t.Errorf("session %s: state %s (%s)", v.ID, final.State, final.Error)
		}
	}
}
