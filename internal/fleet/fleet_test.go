package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"aspeo/internal/experiment"
	"aspeo/internal/fleet"
	"aspeo/internal/profile"
	"aspeo/internal/report"
)

// goldenProfile writes a synthetic coordinated profile with a strictly
// convex power/speedup frontier (the optimizer's choice is unique) to a
// temp file, so controller sessions skip the expensive on-the-fly
// profiling campaign. The returned target sits mid-frontier.
func goldenProfile(t *testing.T) (path string, target float64) {
	t.Helper()
	tab := &profile.Table{App: "golden", Load: "BL", Mode: profile.Coordinated, BaseGIPS: 0.8}
	s, p, step := 1.0, 1.6, 0.012
	for f := 0; f < 9; f++ {
		for bw := 0; bw < 13; bw++ {
			tab.Entries = append(tab.Entries, profile.Entry{
				FreqIdx: 2 * f, BWIdx: bw,
				Speedup: s, PowerW: p, GIPS: s * tab.BaseGIPS,
			})
			s += 0.02
			p += step
			step += 0.0004
		}
	}
	path = filepath.Join(t.TempDir(), "golden.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, 0.5 * (tab.MinSpeedup() + tab.MaxSpeedup()) * tab.BaseGIPS
}

// waitTerminal blocks until the session lands, failing the test on
// timeout.
func waitTerminal(t *testing.T, m *fleet.Manager, id string, timeout time.Duration) fleet.SessionView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	v, err := m.WaitSession(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s (state %s): %v", id, v.State, err)
	}
	return v
}

// waitState polls until the session reaches the wanted (non-terminal)
// state.
func waitState(t *testing.T, m *fleet.Manager, id string, want fleet.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return
		}
		if v.State.Terminal() {
			t.Fatalf("session %s terminal (%s) before reaching %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session %s never reached %s", id, want)
}

func TestFleetLifecycleCompleted(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 2})
	v, err := m.Submit(fleet.Config{App: "spotify", Seed: 7, RunForS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Config.Load != "BL" || v.Config.Governor != "interactive" {
		t.Fatalf("submit view not normalized: %+v", v)
	}

	final := waitTerminal(t, m, v.ID, time.Minute)
	if final.State != fleet.StateCompleted {
		t.Fatalf("state = %s (error %q), want completed", final.State, final.Error)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatalf("timestamps missing: %+v", final)
	}
	if final.Summary == nil {
		t.Fatal("completed session has no summary")
	}
	if got := final.Summary.DurationS; got < 1.9 || got > 2.1 {
		t.Fatalf("summary duration %.3fs, want ~2s", got)
	}
	if final.Summary.Mode != "governor" || final.Summary.Governor != "interactive" {
		t.Fatalf("summary mode/governor = %s/%s", final.Summary.Mode, final.Summary.Governor)
	}

	r := m.Rollup()
	if r.Completed != 1 || r.Submitted != 1 || r.Active() != 0 {
		t.Fatalf("rollup %+v, want 1 completed of 1 submitted", r)
	}
}

func TestFleetStopRunningAndPending(t *testing.T) {
	// One worker: the first session occupies it while the second waits
	// in the queue, so we can stop one of each kind.
	m := fleet.NewManager(fleet.Options{Workers: 1})
	blocker, err := m.Submit(fleet.Config{App: "spotify", Seed: 1, RunForS: 3600})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(fleet.Config{App: "spotify", Seed: 2, RunForS: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Stop(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, fleet.StateRunning)
	if err := m.Stop(blocker.ID); err != nil {
		t.Fatal(err)
	}

	b := waitTerminal(t, m, blocker.ID, time.Minute)
	if b.State != fleet.StateStopped {
		t.Fatalf("blocker state = %s, want stopped", b.State)
	}
	if b.Summary == nil {
		t.Fatal("stopped running session should keep its partial summary")
	}
	if b.Summary.DurationS >= 3600 {
		t.Fatalf("stop did not interrupt: ran %.0fs", b.Summary.DurationS)
	}

	q := waitTerminal(t, m, queued.ID, time.Minute)
	if q.State != fleet.StateStopped {
		t.Fatalf("queued state = %s, want stopped", q.State)
	}
	if q.Summary != nil {
		t.Fatal("session stopped before start should have no summary")
	}

	r := m.Rollup()
	if r.Stopped != 2 {
		t.Fatalf("rollup stopped = %d, want 2", r.Stopped)
	}
}

func TestFleetRestartOnFailure(t *testing.T) {
	// A missing profile table makes every attempt fail at construction;
	// the session burns its restart budget and lands in failed.
	m := fleet.NewManager(fleet.Options{Workers: 1})
	v, err := m.Submit(fleet.Config{
		App: "spotify", Controller: true,
		Profile: "/nonexistent/profile.json", TargetGIPS: 1,
		MaxRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, v.ID, time.Minute)
	if final.State != fleet.StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2 (budget exhausted)", final.Restarts)
	}
	if final.Error == "" {
		t.Fatal("failed session carries no error")
	}
	r := m.Rollup()
	if r.Failed != 1 || r.Restarts != 2 {
		t.Fatalf("rollup failed=%d restarts=%d, want 1/2", r.Failed, r.Restarts)
	}
}

func TestFleetSubmitValidates(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 1})
	for _, cfg := range []fleet.Config{
		{App: "no-such-app"},
		{App: "spotify", Load: "XX"},
		{App: "spotify", Governor: "bogus"},
		{App: "spotify", Faults: "no-such-scenario"},
		{App: "spotify", MaxRestarts: -1},
		{App: "spotify", RunForS: -1},
	} {
		if _, err := m.Submit(cfg); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid config", cfg)
		}
	}
	if got := m.List(""); len(got) != 0 {
		t.Fatalf("rejected submissions left %d sessions in the store", len(got))
	}
	if r := m.Rollup(); r.Submitted != 0 {
		t.Fatalf("rejected submissions counted: %d", r.Submitted)
	}
}

func TestFleetUnknownSession(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 1})
	if _, err := m.Get("s-999999"); !errors.Is(err, fleet.ErrNotFound) {
		t.Fatalf("Get: %v, want ErrNotFound", err)
	}
	if err := m.Stop("s-999999"); !errors.Is(err, fleet.ErrNotFound) {
		t.Fatalf("Stop: %v, want ErrNotFound", err)
	}
	if _, err := m.AllocationLog("s-999999"); !errors.Is(err, fleet.ErrNotFound) {
		t.Fatalf("AllocationLog: %v, want ErrNotFound", err)
	}
}

func TestFleetDrain(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 4})
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(fleet.Config{App: "spotify", Seed: int64(i), RunForS: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !m.Draining() {
		t.Fatal("Draining() false after drain")
	}
	if _, err := m.Submit(fleet.Config{App: "spotify"}); !errors.Is(err, fleet.ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	r := m.Rollup()
	if r.Completed != 3 || r.Active() != 0 {
		t.Fatalf("rollup after drain: %+v, want 3 completed", r)
	}
}

func TestFleetDrainTimeoutStopsSessions(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 1})
	// Long enough that even the fused-step simulator cannot finish it
	// before the drain timeout below fires; drain's cooperative stop
	// still lands the session promptly once the deadline passes.
	v, err := m.Submit(fleet.Config{App: "spotify", RunForS: 3_600_000})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, fleet.StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: %v, want deadline exceeded", err)
	}
	// Drain only returns after the stopped sessions land.
	got, err := m.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != fleet.StateStopped {
		t.Fatalf("state after timed-out drain = %s, want stopped", got.State)
	}
}

// TestFleetGoldenSingleSession is the determinism acceptance test: a
// 1-session fleet run must be the same computation as the equivalent
// direct (aspeo-run) invocation — identical summary bytes and an
// identical controller decision log, cycle for cycle. Fleet scheduling,
// telemetry publication and stop polling may not perturb a session.
func TestFleetGoldenSingleSession(t *testing.T) {
	prof, target := goldenProfile(t)

	spec := experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		RunFor: 30 * time.Second, LogAllocations: true,
	}
	sess, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Run(nil)
	direct := report.NewRunSummary(sess, st)
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	directLog := sess.Controller.AllocationLog()
	if len(directLog) < 10 {
		t.Fatalf("direct run logged only %d allocation cycles", len(directLog))
	}

	m := fleet.NewManager(fleet.Options{Workers: 4})
	v, err := m.Submit(fleet.Config{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		RunForS: 30, LogAllocations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, v.ID, 2*time.Minute)
	if final.State != fleet.StateCompleted {
		t.Fatalf("fleet session state = %s (error %q)", final.State, final.Error)
	}
	if final.Summary == nil {
		t.Fatal("fleet session has no summary")
	}
	fleetJSON, err := json.Marshal(*final.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directJSON, fleetJSON) {
		t.Fatalf("summaries diverged:\ndirect: %s\nfleet:  %s", directJSON, fleetJSON)
	}

	fleetLog, err := m.AllocationLog(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleetLog) != len(directLog) {
		t.Fatalf("fleet logged %d cycles, direct logged %d", len(fleetLog), len(directLog))
	}
	for i := range directLog {
		if !reflect.DeepEqual(directLog[i], fleetLog[i]) {
			t.Fatalf("allocation cycle %d diverged:\ndirect: %+v\nfleet:  %+v",
				i, directLog[i], fleetLog[i])
		}
	}
}

// TestFleetRace64Sessions drives 64 concurrent sessions — a mix of
// governor and controller cells — to completion while reader goroutines
// hammer the status surfaces. Run under -race (make race / make
// smoke-fleet) this is the fleet's data-race acceptance test.
func TestFleetRace64Sessions(t *testing.T) {
	prof, target := goldenProfile(t)
	m := fleet.NewManager(fleet.Options{Workers: 8, Queue: 128})

	const total = 64
	apps := []string{"spotify", "wechat", "ebook", "maps"}
	ids := make([]string, 0, total)
	for i := 0; i < total; i++ {
		cfg := fleet.Config{App: apps[i%len(apps)], Seed: int64(100 + i), RunForS: 2}
		if i%4 == 0 {
			// Every fourth session runs the controller on the stored
			// golden profile (construction stays cheap).
			cfg = fleet.Config{
				App: "spotify", Controller: true,
				Profile: prof, TargetGIPS: target,
				Seed: int64(100 + i), RunForS: 4, LogAllocations: true,
			}
		}
		v, err := m.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	stopReaders := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				m.Rollup()
				m.List("")
				if _, err := m.Get(ids[(i+w)%len(ids)]); err != nil {
					t.Errorf("reader Get: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, id := range ids {
		v, err := m.WaitSession(ctx, id)
		if err != nil {
			t.Fatalf("session %s (state %s): %v", id, v.State, err)
		}
		if v.State != fleet.StateCompleted {
			t.Fatalf("session %s ended %s (error %q)", id, v.State, v.Error)
		}
	}
	close(stopReaders)
	wg.Wait()

	r := m.Rollup()
	if r.Completed != total || r.Submitted != total {
		t.Fatalf("rollup completed=%d submitted=%d, want %d/%d", r.Completed, r.Submitted, total, total)
	}
	// 48 governor sessions × 2s + 16 controller sessions × 4s = 160s.
	if r.SimSecondsTotal < 159 || r.SimSecondsTotal > 161 {
		t.Fatalf("sim seconds total %.1f, want ~160", r.SimSecondsTotal)
	}
	if r.CyclesTotal == 0 {
		t.Fatal("no controller cycles observed by the aggregator")
	}
	if r.EnergyJTotal <= 0 {
		t.Fatal("no energy accounted")
	}

	// Controller sessions at distinct seeds must have distinct ids but
	// the same table; spot-check a decision log survived.
	log, err := m.AllocationLog(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("controller session kept no allocation log")
	}
	if strings.TrimSpace(ids[0]) == "" {
		t.Fatal("empty session id")
	}
}
