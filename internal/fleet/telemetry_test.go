package fleet_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"aspeo/internal/fleet"
	"aspeo/internal/obs/pipeline"
)

// telemetryPopulation builds a deterministic mixed population: four
// cohorts, staggered arrivals, an ad-storm phase on one cohort, a mix
// of governor and controller sessions. The same configs submitted in
// the same order must produce the same telemetry rollup whatever the
// worker count.
func telemetryPopulation(prof string, target float64, n int) []fleet.Config {
	cohorts := []string{"game", "video", "browser", ""}
	apps := []string{"spotify", "wechat", "ebook", "maps"}
	cfgs := make([]fleet.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg := fleet.Config{
			App:      apps[i%len(apps)],
			Cohort:   cohorts[i%len(cohorts)],
			ArrivalS: float64(i) * 0.5,
			Seed:     int64(200 + i),
			RunForS:  2,
		}
		if cfg.Cohort == "game" {
			cfg.StormPeriodS, cfg.StormBurstS = 2, 0.5
		}
		if i%3 == 0 {
			cfg.App = "spotify"
			cfg.Controller = true
			cfg.Profile = prof
			cfg.TargetGIPS = target
			cfg.RunForS = 4
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// runPopulation submits the configs, waits for every session to land,
// and returns the single rollup taken afterwards. Rollup is called
// exactly once so the epoch counter matches across managers.
func runPopulation(t *testing.T, workers int, cfgs []fleet.Config) *pipeline.Rollup {
	t.Helper()
	m := fleet.NewManager(fleet.Options{Workers: workers, Queue: len(cfgs) + 8})
	ids := make([]string, 0, len(cfgs))
	for i, cfg := range cfgs {
		v, err := m.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, id := range ids {
		v, err := m.WaitSession(ctx, id)
		if err != nil {
			t.Fatalf("waiting for %s: %v", id, err)
		}
		if v.State != fleet.StateCompleted {
			t.Fatalf("session %s landed %s (error %q)", id, v.State, v.Error)
		}
	}
	r := m.Rollup()
	if r.Telemetry == nil {
		t.Fatal("rollup has no telemetry")
	}
	return r.Telemetry
}

// TestFleetRollupByteIdentity is the acceptance bar for the sharded
// aggregator: the telemetry rollup of the same population is
// byte-identical at 1, 4 and 16 workers. Worker scheduling decides only
// which ring a record passes through — never what the merged totals,
// distributions or analyzer results say.
func TestFleetRollupByteIdentity(t *testing.T) {
	prof, target := goldenProfile(t)
	cfgs := telemetryPopulation(prof, target, 12)

	base := runPopulation(t, 1, cfgs)
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles == 0 {
		t.Fatal("telemetry saw no cycles (controller sessions missing?)")
	}
	if len(base.Cohorts) != 4 {
		t.Fatalf("telemetry has %d cohorts, want 4", len(base.Cohorts))
	}
	for _, workers := range []int{4, 16} {
		got := runPopulation(t, workers, cfgs)
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, gotJSON) {
			t.Errorf("telemetry rollup at %d workers differs from 1 worker:\n1:  %s\n%d: %s",
				workers, baseJSON, workers, gotJSON)
		}
	}
}

// TestBrownoutGolden seeds a saturating population — controller
// sessions asked for more GIPS than the profile's frontier can deliver
// — and requires the saturation analyzer to report it, deterministically
// across runs. This is the golden `make smoke-telemetry` pins.
func TestBrownoutGolden(t *testing.T) {
	prof, target := goldenProfile(t)
	// Double the attainable mid-frontier target: every window's
	// measured sum lands far below 90% of the asked-for sum.
	saturating := 4 * target
	cfgs := []fleet.Config{
		{App: "spotify", Controller: true, Profile: prof, TargetGIPS: saturating,
			Cohort: "game", Seed: 11, RunForS: 6},
		{App: "spotify", Controller: true, Profile: prof, TargetGIPS: saturating,
			Cohort: "game", ArrivalS: 2, Seed: 12, RunForS: 6},
	}
	a := runPopulation(t, 2, cfgs)
	if a.Saturation == nil {
		t.Fatal("saturating population produced no saturation analysis")
	}
	if len(a.Saturation.Brownouts) == 0 {
		t.Fatal("saturating population produced no brownout events")
	}
	if a.Saturation.WorstDepth <= 0.3 {
		t.Fatalf("worst brownout depth = %v, want > 0.3 (target is 4x attainable)", a.Saturation.WorstDepth)
	}
	if a.Saturation.BrownoutCycles == 0 {
		t.Fatal("brownout events cover no cycles")
	}

	aJSON, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	b := runPopulation(t, 2, cfgs)
	bJSON, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aJSON, bJSON) {
		t.Fatalf("two identical runs produced different telemetry:\na: %s\nb: %s", aJSON, bJSON)
	}
}

// TestTelemetryScrapeUnderLoad hammers the two scrape surfaces — GET
// /metrics and GET /api/v1/rollup — while the fleet runs. Under -race
// this is the proof that scraping takes no session locks and races with
// nothing on the hot path.
func TestTelemetryScrapeUnderLoad(t *testing.T) {
	prof, target := goldenProfile(t)
	m := fleet.NewManager(fleet.Options{Workers: 4, Queue: 64})
	srv := httptest.NewServer(fleet.NewServer(m))
	defer srv.Close()

	cfgs := telemetryPopulation(prof, target, 8)
	ids := make([]string, 0, len(cfgs))
	for i, cfg := range cfgs {
		v, err := m.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Errorf("GET %s read: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: status %d", path, resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go scrape("/metrics")
		go scrape("/api/v1/rollup")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, id := range ids {
		if _, err := m.WaitSession(ctx, id); err != nil {
			t.Fatalf("waiting for %s: %v", id, err)
		}
	}
	close(stop)
	wg.Wait()

	r := m.Rollup()
	if r.Telemetry == nil || r.Telemetry.Cycles == 0 {
		t.Fatal("final rollup lost the population's cycles")
	}
	if got := r.Telemetry.Totals.Finished; got != uint64(len(cfgs)) {
		t.Fatalf("telemetry finished = %d, want %d", got, len(cfgs))
	}
}

// TestTelemetryPipelineSmoke runs a 64-session population with a live
// NDJSON subscriber attached and proves the captured stream replays —
// through pipeline.Aggregate, the same code `aspeo-trace rollup` runs —
// into the exact live rollup. Run under -race this is the end-to-end
// pipeline smoke `make smoke-telemetry` executes.
func TestTelemetryPipelineSmoke(t *testing.T) {
	prof, target := goldenProfile(t)
	m := fleet.NewManager(fleet.Options{Workers: 8, Queue: 128})
	pipe := m.Telemetry()

	ch, cancelSub := pipe.Subscribe(4096)
	defer cancelSub()

	cfgs := telemetryPopulation(prof, target, 64)
	ids := make([]string, 0, len(cfgs))
	for i, cfg := range cfgs {
		v, err := m.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	// A ticker goroutine advances the epoch while the fleet runs, like
	// the /api/v1/telemetry handler does, so batches stream out live
	// rather than landing in one final flush.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				pipe.Advance()
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, id := range ids {
		v, err := m.WaitSession(ctx, id)
		if err != nil {
			t.Fatalf("waiting for %s: %v", id, err)
		}
		if v.State != fleet.StateCompleted {
			t.Fatalf("session %s landed %s (error %q)", id, v.State, v.Error)
		}
	}
	close(stop)
	wg.Wait()

	live := m.Rollup().Telemetry
	if live == nil || live.Cycles == 0 {
		t.Fatal("live rollup has no telemetry")
	}
	if pipe.Dropped() != 0 {
		t.Fatalf("stream dropped %d batches; the capture is not replayable", pipe.Dropped())
	}

	// Drain everything published, round-trip it through NDJSON bytes,
	// and replay.
	var batches []pipeline.StreamBatch
	for draining := true; draining; {
		select {
		case b := <-ch:
			batches = append(batches, b)
		default:
			draining = false
		}
	}
	var buf bytes.Buffer
	if err := pipeline.WriteNDJSON(&buf, batches); err != nil {
		t.Fatal(err)
	}
	decoded, err := pipeline.ReadNDJSON(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	replayed := pipeline.Aggregate(decoded, pipeline.Options{})

	// The epoch counts Advance calls — wall-clock-paced live, replay-
	// paced offline — so it is excluded from the equality check.
	liveCopy := *live
	liveCopy.Epoch = 0
	replayedCopy := *replayed
	replayedCopy.Epoch = 0
	liveJSON, err := json.Marshal(&liveCopy)
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := json.Marshal(&replayedCopy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Fatalf("replayed stream diverges from live rollup:\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
	if testing.Verbose() {
		fmt.Printf("smoke: %d batches, %d cycles, %d cohorts\n", len(batches), live.Cycles, len(live.Cohorts))
	}
}
