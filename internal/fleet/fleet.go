// Package fleet is the concurrent multi-device session runtime: a
// Manager that owns N independent controller-or-governor sessions (each
// one simulation cell from the existing stack — a platform.Device plus
// its actor set, built through experiment.NewSession), schedules them
// across a bounded worker pool (par.Pool), tracks their lifecycle, and
// folds their telemetry into fleet-wide rollups.
//
// The paper's controller manages one phone; the fleet layer is the
// persistent management plane above per-device controllers the ROADMAP's
// north star calls for. Sessions keep the platform backend contract's
// isolation — each is a single-threaded cell sharing nothing mutable —
// so the only synchronized state is the manager's bookkeeping: the
// sharded session store, the per-session status record, and the
// aggregator's counters. Worker scheduling therefore affects wall-clock
// time only, never a session's results: a 1-session fleet run is
// cycle-for-cycle identical to the equivalent aspeo-run invocation (the
// golden test holds this).
//
// Lifecycle: pending → running → completed | failed | stopped. A failing
// session — harness construction error, run error, or a controller that
// walked the PR 2 resilience ladder all the way to relinquish — restarts
// up to its configured budget before landing in failed. Stop is
// cooperative: the engine's interrupt hook ends the run at the next step
// boundary and the partial summary is kept.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aspeo/internal/ckpt"
	"aspeo/internal/core"
	"aspeo/internal/experiment"
	"aspeo/internal/fault"
	"aspeo/internal/obs"
	"aspeo/internal/obs/pipeline"
	"aspeo/internal/par"
	"aspeo/internal/platform"
	"aspeo/internal/report"
	"aspeo/internal/workload"
)

// State is a session's lifecycle state.
type State string

// Session lifecycle states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateStopped   State = "stopped"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateStopped
}

// Config describes one fleet session — the JSON body of a submit
// request. It mirrors experiment.SessionSpec plus fleet-only policy
// (restart budget). Zero values select the aspeo-run defaults: load BL,
// governor interactive, no restarts.
type Config struct {
	App string `json:"app"`
	// Cohort labels the session in telemetry rollups (scenario cohort
	// name; empty rolls up under "default").
	Cohort string `json:"cohort,omitempty"`
	// ArrivalS is the session's scenario arrival time in seconds — the
	// telemetry pipeline's time base (cycle records land in analyzer
	// windows at ArrivalS + simulated time). Hand-submitted sessions
	// leave it 0.
	ArrivalS float64 `json:"arrival_s,omitempty"`
	// StormPeriodS/StormBurstS describe the cohort's ad-storm phase so
	// cycle records can be tagged storm-active: a cycle at simulated
	// time t is in a storm when mod(t, period) < burst. 0 disables.
	StormPeriodS float64 `json:"storm_period_s,omitempty"`
	StormBurstS  float64 `json:"storm_burst_s,omitempty"`
	// Workload is an inline application definition — a generated
	// scenario workload (chain, perturbation, trace import) that has no
	// library name. App must be empty or match Workload.Name. The spec
	// is plain data and JSON round-trips exactly, so checkpointed
	// sessions restore bit-identically.
	Workload *workload.Spec `json:"workload,omitempty"`
	// ExtraBackground appends ambient background tasks after the load
	// condition's standard set (scenario ad storms).
	ExtraBackground []*workload.Spec `json:"extra_background,omitempty"`
	Load            string           `json:"load,omitempty"`
	Governor   string  `json:"governor,omitempty"`
	Controller bool    `json:"controller,omitempty"`
	CPUOnly    bool    `json:"cpu_only,omitempty"`
	Profile    string  `json:"profile,omitempty"`
	TargetGIPS float64 `json:"target_gips,omitempty"`
	Quick      bool    `json:"quick,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// Engine selects the simulation core: "event" (default) or "fixed"
	// (the compatibility backend); see sim.ParseBackend.
	Engine string `json:"engine,omitempty"`
	Faults string `json:"faults,omitempty"`
	// RunForS caps the session at a fixed simulated duration (seconds);
	// 0 runs the app's standard session.
	RunForS float64 `json:"run_for_s,omitempty"`
	// MaxRestarts bounds restart-on-failure: a session gets 1 +
	// MaxRestarts attempts before it lands in failed.
	MaxRestarts int `json:"max_restarts,omitempty"`
	// LogAllocations keeps the controller's per-cycle decision log,
	// retrievable via Manager.AllocationLog (golden tests).
	LogAllocations bool `json:"log_allocations,omitempty"`
	// Resilience overrides the controller's fault-handling ladder; nil
	// selects the hardened defaults.
	Resilience *core.Resilience `json:"resilience,omitempty"`
}

// normalized fills the aspeo-run defaults into zero fields.
func (c Config) normalized() Config {
	if c.Load == "" {
		c.Load = "BL"
	}
	if !c.Controller && c.Governor == "" {
		c.Governor = "interactive"
	}
	return c
}

// spec translates the config into the shared session spec, with the
// seed of one particular attempt.
func (c Config) spec(seed int64) experiment.SessionSpec {
	s := experiment.SessionSpec{
		App: c.App, AppSpec: c.Workload, ExtraBackground: c.ExtraBackground,
		Load: c.Load, Governor: c.Governor,
		Controller: c.Controller, CPUOnly: c.CPUOnly,
		Profile: c.Profile, TargetGIPS: c.TargetGIPS, Quick: c.Quick,
		Seed: seed, Engine: c.Engine, Faults: c.Faults,
		RunFor:         time.Duration(c.RunForS * float64(time.Second)),
		LogAllocations: c.LogAllocations,
	}
	if c.Resilience != nil {
		s.Resilience = *c.Resilience
	}
	return s
}

// Validate rejects configs aspeo-run would reject, plus fleet-specific
// nonsense.
func (c Config) Validate() error {
	if err := c.normalized().spec(c.Seed).Validate(); err != nil {
		return err
	}
	if c.MaxRestarts < 0 {
		return fmt.Errorf("negative restart budget %d", c.MaxRestarts)
	}
	if c.RunForS < 0 {
		return fmt.Errorf("negative run duration %vs", c.RunForS)
	}
	return nil
}

// Options configure a Manager.
type Options struct {
	// Workers is the worker-pool size (<= 0 means GOMAXPROCS).
	Workers int
	// Queue is the submission backlog capacity (<= 0 selects 1024).
	Queue int
	// FlightCap sizes each controller session's flight recorder — the
	// bounded ring of recent decision spans kept for postmortems. 0
	// selects obs.DefaultFlightCap; negative disables flight recording.
	FlightCap int
	// FlightDir, when set, receives automatic flight-recorder dumps
	// (NDJSON, one file per escalated attempt) whenever a session's
	// watchdog ladder escalates or the controller relinquishes.
	FlightDir string
	// CheckpointDir, when set, makes sessions crash-safe: each running
	// session's latest snapshot is written atomically to
	// <dir>/<id>.ckpt.json and removed when the session lands in a
	// terminal state. Restore resubmits the sessions found there after
	// a crash.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence — controller cycles for
	// controller sessions, simulated seconds for governor sessions
	// (<= 0 selects 25).
	CheckpointEvery int
	// CheckpointFS overrides the filesystem checkpoint writes go
	// through (the chaos harness injects failures here); nil selects
	// the real one.
	CheckpointFS ckpt.FS
	// RequestTimeout bounds non-streaming control-plane request
	// handling (<= 0 selects 30s). NDJSON streams and drain are exempt
	// — they are long-lived by design and guard their own writes.
	RequestTimeout time.Duration
	// MaxStreams bounds concurrent NDJSON status streams; excess
	// requests are shed with 429 (<= 0 selects 64).
	MaxStreams int
	// Chaos injects process-level faults — seeded worker panics,
	// stalls, checkpoint-write failures — for the chaos tests. The zero
	// value injects nothing.
	Chaos fault.ProcessPlan

	// Telemetry pipeline knobs (zero selects the pipeline defaults):
	// the analyzer window in scenario seconds, the per-worker ring
	// capacity, and the brownout trigger fraction.
	TelemetryWindowS  float64
	TelemetryRingCap  int
	BrownoutThreshold float64
}

// Defaults for the zero-valued knobs above.
const (
	defaultCheckpointEvery = 25
	defaultRequestTimeout  = 30 * time.Second
	defaultMaxStreams      = 64
)

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery <= 0 {
		return defaultCheckpointEvery
	}
	return o.CheckpointEvery
}

func (o Options) requestTimeout() time.Duration {
	if o.RequestTimeout <= 0 {
		return defaultRequestTimeout
	}
	return o.RequestTimeout
}

func (o Options) maxStreams() int {
	if o.MaxStreams <= 0 {
		return defaultMaxStreams
	}
	return o.MaxStreams
}

// numShards spreads the session store over independently locked maps so
// status reads (HTTP handlers, rollups) never contend on one mutex with
// tens of workers publishing cycle telemetry.
const numShards = 16

type shard struct {
	mu sync.RWMutex
	m  map[string]*session
}

// Manager owns the fleet: the session store, the worker pool and the
// telemetry aggregator. Safe for concurrent use.
type Manager struct {
	pool   *par.Pool
	opts   Options
	shards [numShards]shard

	seq       atomic.Uint64 // session ordinal source
	submitted atomic.Int64
	restarts  atomic.Int64
	panics    atomic.Int64 // worker panics recovered
	ckptDone  atomic.Int64 // checkpoints written durably
	draining  atomic.Bool

	// Lifecycle population counters, maintained at every transition so
	// Rollup never walks the session store (the scrape path takes no
	// session locks).
	stPending   atomic.Int64
	stRunning   atomic.Int64
	stCompleted atomic.Int64
	stFailed    atomic.Int64
	stStopped   atomic.Int64

	ckptFS    ckpt.FS
	streamSem chan struct{} // bounds concurrent NDJSON streams

	agg aggregator

	// pipe is the fleet's telemetry pipeline: per-worker rings the
	// session hot path pushes cycle records into, sharded commutative
	// aggregation, and the epoch snapshots the scrape paths serve from.
	pipe *pipeline.Pipeline

	// reg is the manager's long-lived metrics registry: rollup families
	// refreshed at scrape time from the pipeline's epoch snapshot.
	reg       *obs.Registry
	cPanics   obs.CounterVec // aspeo_fleet_panics_recovered_total{boundary}
	cCkpt     obs.Counter    // aspeo_fleet_checkpoints_written_total
	cCkptFail obs.Counter    // aspeo_fleet_checkpoint_failures_total
	cShed     obs.CounterVec // aspeo_fleet_requests_shed_total{reason}
}

// NewManager starts the worker pool and returns a ready manager. It
// panics on an unusable chaos plan — a construction-time configuration
// error, not a runtime condition.
func NewManager(o Options) *Manager {
	if err := o.Chaos.Validate(); err != nil {
		panic(err)
	}
	m := &Manager{pool: par.NewPool(o.Workers, o.Queue), opts: o}
	for i := range m.shards {
		m.shards[i].m = make(map[string]*session)
	}
	m.agg.start = time.Now()
	m.ckptFS = o.CheckpointFS
	if m.ckptFS == nil {
		m.ckptFS = ckpt.OS{}
	}
	m.streamSem = make(chan struct{}, o.maxStreams())
	m.pipe = pipeline.New(pipeline.Options{
		Workers:           m.pool.NumWorkers(),
		RingCap:           o.TelemetryRingCap,
		WindowS:           o.TelemetryWindowS,
		BrownoutThreshold: o.BrownoutThreshold,
	})
	m.reg = obs.NewRegistry()
	// Registered up front so the family exists on the first scrape; its
	// contents are loaded from the pipeline's epoch snapshot at scrape
	// time (report.RollupMetrics), never observed on the session hot
	// path.
	m.reg.Histogram("aspeo_fleet_measured_gips",
		"Per-cycle measured performance across all controller sessions.",
		pipeline.GIPSBounds)
	m.cPanics = m.reg.CounterVec("aspeo_fleet_panics_recovered_total",
		"Panics recovered at containment boundaries.", "boundary")
	m.cCkpt = m.reg.Counter("aspeo_fleet_checkpoints_written_total",
		"Session checkpoints written durably.")
	m.cCkptFail = m.reg.Counter("aspeo_fleet_checkpoint_failures_total",
		"Session checkpoint writes that failed (the session continued).")
	m.cShed = m.reg.CounterVec("aspeo_fleet_requests_shed_total",
		"Control-plane requests shed by overload protection.", "reason")
	return m
}

// Registry returns the manager's metrics registry. The /metrics handler
// refreshes the rollup families onto it (report.RollupMetrics) and
// renders it; callers may register additional process-level instruments.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Telemetry returns the fleet's telemetry pipeline — the epoch-snapshot
// and NDJSON-stream surface (aspeo-fleet's /api/v1/telemetry, scenario
// assertion evaluation).
func (m *Manager) Telemetry() *pipeline.Pipeline { return m.pipe }

// Errors the control plane maps to HTTP statuses.
var (
	// ErrDraining rejects submissions once a drain has begun.
	ErrDraining = fmt.Errorf("fleet: draining, not accepting sessions")
	// ErrNotFound reports an unknown session id.
	ErrNotFound = fmt.Errorf("fleet: no such session")
)

// Submit validates the config and queues one session. It returns the
// accepted session's view (state pending) without waiting for a worker.
func (m *Manager) Submit(cfg Config) (SessionView, error) {
	if m.draining.Load() {
		return SessionView{}, ErrDraining
	}
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return SessionView{}, err
	}
	seq := m.seq.Add(1)
	s := &session{
		id:          fmt.Sprintf("s-%06d", seq),
		seq:         seq,
		cfg:         cfg,
		cohortID:    m.pipe.CohortID(cfg.Cohort),
		state:       StatePending,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	sh := m.shardOf(s.id)
	sh.mu.Lock()
	sh.m[s.id] = s
	sh.mu.Unlock()

	if err := m.pool.SubmitIndexed(func(worker int) { m.runSession(worker, s) }); err != nil {
		sh.mu.Lock()
		delete(sh.m, s.id)
		sh.mu.Unlock()
		return SessionView{}, err
	}
	m.submitted.Add(1)
	m.stPending.Add(1)
	// Arrival partition is free to use any shard — arrivals are integer
	// counts, so the merged rollup is identical either way.
	m.pipe.ObserveArrival(int(seq), s.cohortID, cfg.ArrivalS)
	return s.view(), nil
}

func (m *Manager) shardOf(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.shards[h.Sum32()%numShards]
}

func (m *Manager) lookup(id string) (*session, error) {
	sh := m.shardOf(id)
	sh.mu.RLock()
	s := sh.m[id]
	sh.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// Get returns one session's status.
func (m *Manager) Get(id string) (SessionView, error) {
	s, err := m.lookup(id)
	if err != nil {
		return SessionView{}, err
	}
	return s.view(), nil
}

// List returns every session (state "" ) or those in one state, ordered
// by submission.
func (m *Manager) List(state State) []SessionView {
	var views []SessionView
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			v := s.view()
			if state == "" || v.State == state {
				views = append(views, v)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(views, func(i, j int) bool { return views[i].seq < views[j].seq })
	return views
}

// Stop requests a session stop: a pending session is skipped when its
// worker picks it up, a running one ends at the next engine step. The
// call does not wait; watch the session or WaitSession for the terminal
// state.
func (m *Manager) Stop(id string) error {
	s, err := m.lookup(id)
	if err != nil {
		return err
	}
	s.stop.Store(true)
	return nil
}

// WaitSession blocks until the session reaches a terminal state or the
// context ends, returning the final view.
func (m *Manager) WaitSession(ctx context.Context, id string) (SessionView, error) {
	s, err := m.lookup(id)
	if err != nil {
		return SessionView{}, err
	}
	select {
	case <-s.done:
		return s.view(), nil
	case <-ctx.Done():
		return s.view(), ctx.Err()
	}
}

// TraceSnapshot returns the session's flight-recorder content — the most
// recent decision spans, oldest first — live or terminal. It is empty
// for governor sessions, before the first cycle, or when flight
// recording is disabled (Options.FlightCap < 0).
func (m *Manager) TraceSnapshot(id string) ([]obs.Span, error) {
	s, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	rec := s.flight
	s.mu.Unlock()
	if rec == nil {
		return nil, nil
	}
	return rec.Snapshot(), nil
}

// AllocationLog returns a completed session's controller decision log
// (Config.LogAllocations must have been set) — the golden tests'
// cycle-for-cycle comparison record.
func (m *Manager) AllocationLog(id string) ([]core.AllocationRecord, error) {
	s, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocLog, nil
}

// Drain stops intake and waits for every queued and running session to
// reach a terminal state. If the context ends first, remaining sessions
// are stopped cooperatively and Drain still waits for them to land
// (interrupts take effect within one engine step), then reports the
// context error.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	done := make(chan struct{})
	go func() {
		m.pool.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, v := range m.List("") {
			if !v.State.Terminal() {
				_ = m.Stop(v.ID)
			}
		}
		<-done
		return ctx.Err()
	}
}

// Draining reports whether intake is closed.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Rollup folds the fleet into one aggregate: population by state, cycle
// throughput, and the pipeline's merged telemetry. It never takes a
// session lock — lifecycle populations come from the transition
// counters, everything else from the pipeline's epoch rollup — so
// scraping a large fleet under load contends only on the shard mutexes
// for the drain, never with a running session's status record.
func (m *Manager) Rollup() report.FleetRollup {
	t := m.pipe.Rollup()
	r := report.FleetRollup{
		Pending:            int(m.stPending.Load()),
		Running:            int(m.stRunning.Load()),
		Completed:          int(m.stCompleted.Load()),
		Failed:             int(m.stFailed.Load()),
		Stopped:            int(m.stStopped.Load()),
		Submitted:          int(m.submitted.Load()),
		Restarts:           int(m.restarts.Load()),
		PanicsRecovered:    int(m.panics.Load()),
		CheckpointsWritten: int(m.ckptDone.Load()),
		SimSecondsTotal:    t.Totals.SimSeconds,
		EnergyJTotal:       t.Totals.EnergyJ,
		DroppedInstrTotal:  t.Totals.DroppedInstr,
		MeanGIPS:           t.Totals.MeanGIPS,
		MeanAbsErrGIPS:     t.Totals.MeanAbsErrGIPS,
		Relinquished:       int(t.Health.Relinquished),
		Telemetry:          t,
	}
	r.Health = platform.Health{
		ActuationFailures:   int(t.Health.ActuationFailures),
		ActuationRetries:    int(t.Health.ActuationRetries),
		GovernorReinstalls:  int(t.Health.GovernorReinstalls),
		MaxFreqRestores:     int(t.Health.MaxFreqRestores),
		RejectedSamples:     int(t.Health.RejectedSamples),
		NonFiniteSamples:    int(t.Health.NonFiniteSamples),
		StuckSamples:        int(t.Health.StuckSamples),
		OutlierSamples:      int(t.Health.OutlierSamples),
		DegradedCycles:      int(t.Health.DegradedCycles),
		WatchdogTrips:       int(t.Health.WatchdogTrips),
		ConsecutiveFailures: int(t.Health.ConsecutiveFailures),
		Relinquished:        t.Health.Relinquished > 0,
		LastTransition:      t.Health.LastTransition,
	}
	r.CyclesTotal, r.CyclesPerSec = m.agg.rate()
	return r
}
