package fleet_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"aspeo/internal/fleet"
	"aspeo/internal/obs"
	"aspeo/internal/report"
)

// A controller session whose watchdog escalates must leave a flight
// recorder dump on disk — NDJSON containing the ladder transition events
// — with the path surfaced in the session view, and the rollup must
// carry the ladder's last transition into the fleet text block.
func TestFleetFlightRecorderDump(t *testing.T) {
	prof, target := goldenProfile(t)
	dir := t.TempDir()
	m := fleet.NewManager(fleet.Options{Workers: 2, FlightDir: dir})

	// stuck-perf freezes readings for 20 s from t=10 s: the gate rejects
	// the stuck samples, consecutive failures pass the degrade threshold,
	// and the ladder trips well before the 40 s run ends.
	v, err := m.Submit(fleet.Config{
		App: "spotify", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		Faults: "stuck-perf", RunForS: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, v.ID, 2*time.Minute)
	cs := final.Summary.Controller
	if cs == nil || cs.Health.WatchdogTrips == 0 {
		t.Fatalf("scenario never tripped the watchdog; test proves nothing: %+v", final.Summary)
	}
	if cs.Health.LastTransition == "" {
		t.Fatal("health ledger lost the last ladder transition")
	}

	if final.FlightDump == "" {
		t.Fatal("escalated session has no flight dump path")
	}
	f, err := os.Open(final.FlightDump)
	if err != nil {
		t.Fatalf("opening flight dump: %v", err)
	}
	defer f.Close()
	spans, err := obs.ReadNDJSON(f)
	if err != nil {
		t.Fatalf("reading flight dump: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("flight dump is empty")
	}
	sum := obs.Summarize(spans)
	if len(sum.LadderTransitions) == 0 {
		t.Fatalf("flight dump carries no ladder transitions (stages %v)", sum.StageCounts)
	}
	var degraded bool
	for _, tr := range sum.LadderTransitions {
		if strings.HasPrefix(tr, "degraded@") {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("ladder transitions %v missing the degrade event", sum.LadderTransitions)
	}

	// On-demand snapshot matches the same recorder.
	snap, err := m.TraceSnapshot(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("TraceSnapshot returned no spans for a traced session")
	}

	// The rollup carries the transition into the fleet text block.
	var buf bytes.Buffer
	report.Fleet(&buf, m.Rollup())
	if !strings.Contains(buf.String(), "last-transition:") {
		t.Fatalf("fleet text block missing last-transition:\n%s", buf.String())
	}
}

// Flight recording can be disabled fleet-wide.
func TestFleetFlightRecordingDisabled(t *testing.T) {
	prof, target := goldenProfile(t)
	m := fleet.NewManager(fleet.Options{Workers: 1, FlightCap: -1})
	v, err := m.Submit(fleet.Config{
		App: "spotify", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 7, RunForS: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, v.ID, time.Minute)
	snap, err := m.TraceSnapshot(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("disabled flight recording still captured %d spans", len(snap))
	}
}

// The trace endpoint serves the flight recorder as NDJSON; the metrics
// endpoint exposes the manager's live histogram through the registry
// encoder with the exposition content type.
func TestFleetTraceAndMetricsEndpoints(t *testing.T) {
	prof, target := goldenProfile(t)
	m := fleet.NewManager(fleet.Options{Workers: 2})
	srv := httptest.NewServer(fleet.NewServer(m))
	defer srv.Close()

	v, err := m.Submit(fleet.Config{
		App: "spotify", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42, RunForS: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, v.ID, time.Minute)

	resp, err := http.Get(srv.URL + "/api/v1/sessions/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("trace content type %q", got)
	}
	spans, err := obs.ReadNDJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("trace body is not span NDJSON: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("trace endpoint returned no spans")
	}

	if _, err := http.Get(srv.URL + "/api/v1/sessions/s-999999/trace"); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if got := mresp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("metrics content type %q, want %q", got, obs.ContentType)
	}
	metrics := string(mbody)
	for _, want := range []string{
		"# TYPE aspeo_fleet_measured_gips histogram",
		"aspeo_fleet_measured_gips_count",
		"aspeo_fleet_measured_gips_bucket{le=\"+Inf\"}",
		"# TYPE aspeo_fleet_cycles_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
