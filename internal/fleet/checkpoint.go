package fleet

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"aspeo/internal/ckpt"
	"aspeo/internal/experiment"
)

// Crash-safe fleet: with Options.CheckpointDir set, every running
// session keeps its latest snapshot at <dir>/<id>.ckpt.json (one file
// per session, overwritten atomically — see internal/ckpt) and removes
// it when it lands in a terminal state. After a process crash, Restore
// scans the directory and resubmits every in-flight session under its
// original id, resuming from its snapshot; the restored session's
// deterministic outputs (summary JSON, allocation log) are
// byte-identical to what the uninterrupted run would have produced.

// checkpointKind names the fleet session payload in the ckpt envelope.
const checkpointKind = "aspeo/fleet-session"

// checkpointMeta identifies whose snapshot a checkpoint file holds.
// Attempt matters for restore correctness: attempt k runs at seed
// Seed + k·restartSeedStride, so the restored cell must be rebuilt
// under the same attempt ordinal to land in an identical cell.
type checkpointMeta struct {
	ID      string `json:"id"`
	Seq     uint64 `json:"seq"`
	Config  Config `json:"config"`
	Attempt int    `json:"attempt"`
}

func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.opts.CheckpointDir, id+".ckpt.json")
}

// removeCheckpoint drops a terminal session's checkpoint (best effort —
// the file may never have been written).
func (m *Manager) removeCheckpoint(id string) {
	if m.opts.CheckpointDir == "" {
		return
	}
	_ = m.ckptFS.Remove(m.checkpointPath(id))
}

// Restore scans the checkpoint directory and resubmits every session
// checkpointed there, each resuming from its snapshot under its
// original id. Call it once, after NewManager and before opening
// intake. Unreadable or corrupt checkpoint files are skipped and
// reported in the joined error alongside the successfully restored
// views — a damaged file must not block the rest of the fleet from
// coming back.
func (m *Manager) Restore() ([]SessionView, error) {
	if m.opts.CheckpointDir == "" {
		return nil, fmt.Errorf("fleet: restore without a checkpoint directory")
	}
	names, err := m.ckptFS.ReadDir(m.opts.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("fleet: restore: %w", err)
	}
	var views []SessionView
	var errs []error
	for _, name := range names {
		if !strings.HasSuffix(name, ".ckpt.json") {
			continue
		}
		path := filepath.Join(m.opts.CheckpointDir, name)
		var meta checkpointMeta
		cell := new(experiment.CellState)
		if err := ckpt.Load(m.ckptFS, path, checkpointKind, &meta, cell); err != nil {
			errs = append(errs, err)
			continue
		}
		v, err := m.resubmit(meta, cell)
		if err != nil {
			errs = append(errs, fmt.Errorf("fleet: restore %s: %w", meta.ID, err))
			continue
		}
		views = append(views, v)
	}
	return views, errors.Join(errs...)
}

// resubmit queues one restored session under its checkpointed identity.
func (m *Manager) resubmit(meta checkpointMeta, cell *experiment.CellState) (SessionView, error) {
	if m.draining.Load() {
		return SessionView{}, ErrDraining
	}
	if meta.ID == "" {
		return SessionView{}, fmt.Errorf("checkpoint has no session id")
	}
	cfg := meta.Config.normalized()
	if err := cfg.Validate(); err != nil {
		return SessionView{}, err
	}
	// Keep the ordinal source above every restored session so new
	// submissions never collide with restored ids.
	for {
		cur := m.seq.Load()
		if meta.Seq <= cur || m.seq.CompareAndSwap(cur, meta.Seq) {
			break
		}
	}
	s := &session{
		id:          meta.ID,
		seq:         meta.Seq,
		cfg:         cfg,
		cohortID:    m.pipe.CohortID(cfg.Cohort),
		state:       StatePending,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
		resume:      cell,
		baseAttempt: meta.Attempt,
		restarts:    meta.Attempt,
	}
	sh := m.shardOf(s.id)
	sh.mu.Lock()
	if _, exists := sh.m[s.id]; exists {
		sh.mu.Unlock()
		return SessionView{}, fmt.Errorf("session %s already present", s.id)
	}
	sh.m[s.id] = s
	sh.mu.Unlock()

	if err := m.pool.SubmitIndexed(func(worker int) { m.runSession(worker, s) }); err != nil {
		sh.mu.Lock()
		delete(sh.m, s.id)
		sh.mu.Unlock()
		return SessionView{}, err
	}
	m.submitted.Add(1)
	m.stPending.Add(1)
	// The restored session re-arrives in this process's pipeline: the
	// pre-crash pipeline state died with the process, so the arrival is
	// counted anew here.
	m.pipe.ObserveArrival(int(meta.Seq), s.cohortID, cfg.ArrivalS)
	return s.view(), nil
}

// ReadyProblems reports why the manager is not ready to serve: draining,
// or an unwritable checkpoint directory (durability would silently
// degrade). An empty slice means ready — the /readyz contract.
func (m *Manager) ReadyProblems() []string {
	var probs []string
	if m.Draining() {
		probs = append(probs, "draining")
	}
	if m.opts.CheckpointDir != "" {
		if err := m.probeCheckpointDir(); err != nil {
			probs = append(probs, fmt.Sprintf("checkpoint dir not writable: %v", err))
		}
	}
	return probs
}

// probeCheckpointDir verifies the checkpoint directory accepts writes.
func (m *Manager) probeCheckpointDir() error {
	if err := m.ckptFS.MkdirAll(m.opts.CheckpointDir); err != nil {
		return err
	}
	f, err := m.ckptFS.CreateTemp(m.opts.CheckpointDir, ".readyz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		_ = m.ckptFS.Remove(name)
		return err
	}
	return m.ckptFS.Remove(name)
}
