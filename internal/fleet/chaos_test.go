package fleet_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"aspeo/internal/ckpt"
	"aspeo/internal/experiment"
	"aspeo/internal/fault"
	"aspeo/internal/fleet"
	"aspeo/internal/report"
)

// captureFS snoops the bytes of every durable checkpoint as it is
// renamed into place. That lets the kill-restore test "crash" a fleet
// at an exact snapshot without racing the live session: run the fleet
// to completion, then restore a second manager from a captured
// snapshot as if the first process had died right after writing it.
type captureFS struct {
	ckpt.OS
	mu    sync.Mutex
	saved map[string][]byte // final path -> last durable checkpoint bytes
}

func newCaptureFS() *captureFS { return &captureFS{saved: make(map[string][]byte)} }

func (c *captureFS) Rename(oldpath, newpath string) error {
	if err := (ckpt.OS{}).Rename(oldpath, newpath); err != nil {
		return err
	}
	if strings.HasSuffix(newpath, ".ckpt.json") {
		// Only this session's worker writes this path, so the read
		// cannot race a concurrent overwrite.
		if raw, err := os.ReadFile(newpath); err == nil {
			c.mu.Lock()
			c.saved[newpath] = raw
			c.mu.Unlock()
		}
	}
	return nil
}

func (c *captureFS) latest(path string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saved[path]
}

var _ ckpt.FS = (*captureFS)(nil)

// TestFleetKillRestoreGolden is the fleet-level crash-safety acceptance
// test: a manager killed after a checkpoint and restored by a fresh
// manager must finish the session with byte-identical outputs — the
// same summary JSON and the same controller decision log the
// uninterrupted direct run produces.
func TestFleetKillRestoreGolden(t *testing.T) {
	prof, target := goldenProfile(t)

	// Reference: the uninterrupted direct run.
	spec := experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		RunFor: 30 * time.Second, LogAllocations: true,
	}
	sess, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Run(nil)
	refJSON, err := json.Marshal(report.NewRunSummary(sess, st))
	if err != nil {
		t.Fatal(err)
	}
	refLog := sess.Controller.AllocationLog()
	if len(refLog) == 0 {
		t.Fatal("reference run kept no allocation log")
	}

	// First life: a checkpointing fleet runs the same cell to
	// completion while captureFS snoops every durable snapshot.
	dir1 := t.TempDir()
	capFS := newCaptureFS()
	m1 := fleet.NewManager(fleet.Options{
		Workers: 2, CheckpointDir: dir1, CheckpointEvery: 3, CheckpointFS: capFS,
	})
	cfg := fleet.Config{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		RunForS: 30, LogAllocations: true,
	}
	v1, err := m1.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final1 := waitTerminal(t, m1, v1.ID, 2*time.Minute)
	if final1.State != fleet.StateCompleted {
		t.Fatalf("first life ended %s (error %q)", final1.State, final1.Error)
	}
	// Checkpointing must be observation-only: the checkpointed run's
	// summary equals the no-checkpoint reference byte for byte.
	got1, err := json.Marshal(*final1.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, got1) {
		t.Fatalf("checkpointing perturbed the run:\nref:   %s\nfleet: %s", refJSON, got1)
	}
	r1 := m1.Rollup()
	if r1.CheckpointsWritten < 2 {
		t.Fatalf("only %d checkpoints written; need >= 2 for a meaningful kill point", r1.CheckpointsWritten)
	}
	ckptFile := filepath.Join(dir1, v1.ID+".ckpt.json")
	if _, err := os.Stat(ckptFile); !os.IsNotExist(err) {
		t.Fatalf("terminal session left its checkpoint behind (stat err %v)", err)
	}
	snap := capFS.latest(ckptFile)
	if snap == nil {
		t.Fatal("captureFS saw no durable checkpoint")
	}

	// Second life: plant the captured snapshot in a fresh directory —
	// exactly what a killed process would have left — and restore.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, v1.ID+".ckpt.json"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := fleet.NewManager(fleet.Options{Workers: 2, CheckpointDir: dir2, CheckpointEvery: 3})
	views, err := m2.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(views) != 1 || views[0].ID != v1.ID {
		t.Fatalf("restored views %+v, want one session %s", views, v1.ID)
	}
	final2 := waitTerminal(t, m2, v1.ID, 2*time.Minute)
	if final2.State != fleet.StateCompleted {
		t.Fatalf("restored session ended %s (error %q)", final2.State, final2.Error)
	}
	if final2.Restarts != 0 || final2.Error != "" {
		t.Fatalf("restored session restarts=%d error=%q, want a clean resume", final2.Restarts, final2.Error)
	}

	got2, err := json.Marshal(*final2.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, got2) {
		t.Fatalf("restored summary diverged:\nref:      %s\nrestored: %s", refJSON, got2)
	}
	log2, err := m2.AllocationLog(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(log2) != len(refLog) {
		t.Fatalf("restored log has %d cycles, reference %d", len(log2), len(refLog))
	}
	for i := range refLog {
		if !reflect.DeepEqual(refLog[i], log2[i]) {
			t.Fatalf("allocation cycle %d diverged:\nref:      %+v\nrestored: %+v", i, refLog[i], log2[i])
		}
	}

	// The restored session resumed past the last cadence point rather
	// than re-running from scratch: a from-scratch second life would
	// have written as many checkpoints as the first.
	if r2 := m2.Rollup(); r2.CheckpointsWritten >= r1.CheckpointsWritten {
		t.Fatalf("second life wrote %d checkpoints (first wrote %d) — it re-ran instead of resuming",
			r2.CheckpointsWritten, r1.CheckpointsWritten)
	}
	if _, err := os.Stat(filepath.Join(dir2, v1.ID+".ckpt.json")); !os.IsNotExist(err) {
		t.Fatalf("restored terminal session left its checkpoint behind (stat err %v)", err)
	}

	// New submissions never collide with restored ids: the ordinal
	// source was bumped above the restored sequence number.
	v2, err := m2.Submit(fleet.Config{App: "spotify", Seed: 9, RunForS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID <= v1.ID {
		t.Fatalf("post-restore submission got id %s, want one above %s", v2.ID, v1.ID)
	}
}

// TestFleetChaosRecovery is the seeded chaos acceptance test (run under
// -race via make smoke-chaos): 64 concurrent sessions while the plan
// panics every controller worker mid-run and fails chosen checkpoint
// writes. Every session must still terminate cleanly, panics feed the
// restart ladder exactly once each, and the ledger — rollup, counters,
// checkpoint dir — stays consistent.
func TestFleetChaosRecovery(t *testing.T) {
	prof, target := goldenProfile(t)
	ckptDir := t.TempDir()
	flightDir := t.TempDir()
	plan := fault.ProcessPlan{
		PanicAtCycle: 4, // attempt 1 only: budget 1 always recovers
		StallAtCycle: 3, StallFor: time.Millisecond,
		CheckpointFailures: []int{3, 7, 10},
	}
	chaosFS := fault.NewChaosFS(ckpt.OS{}, plan.CheckpointFailures)
	m := fleet.NewManager(fleet.Options{
		Workers: 8, Queue: 128,
		CheckpointDir: ckptDir, CheckpointEvery: 2, CheckpointFS: chaosFS,
		FlightDir: flightDir,
		Chaos:     plan,
	})

	const total = 64
	apps := []string{"spotify", "wechat", "ebook", "maps"}
	ids := make([]string, 0, total)
	controllers := 0
	for i := 0; i < total; i++ {
		cfg := fleet.Config{App: apps[i%len(apps)], Seed: int64(500 + i), RunForS: 2}
		if i%4 == 0 {
			// Every fourth session is a controller cell — the only kind
			// the panic plan can reach (governor cells have no cycles).
			controllers++
			cfg = fleet.Config{
				App: "spotify", Controller: true,
				Profile: prof, TargetGIPS: target,
				Seed: int64(500 + i), RunForS: 12,
				MaxRestarts: 1, LogAllocations: true,
			}
		}
		v, err := m.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	sawDump := false
	for i, id := range ids {
		v, err := m.WaitSession(ctx, id)
		if err != nil {
			t.Fatalf("session %s (state %s): %v", id, v.State, err)
		}
		if v.State != fleet.StateCompleted {
			t.Fatalf("session %s ended %s (error %q), want completed despite chaos", id, v.State, v.Error)
		}
		if i%4 == 0 {
			if v.Restarts != 1 {
				t.Errorf("controller session %s restarts = %d, want exactly 1 (one injected panic)", id, v.Restarts)
			}
			if v.Error != "" {
				t.Errorf("recovered session %s still carries error %q", id, v.Error)
			}
			if v.FlightDump != "" {
				sawDump = true
			}
		} else if v.Restarts != 0 {
			t.Errorf("governor session %s restarts = %d, want 0 (plan cannot reach it)", id, v.Restarts)
		}
	}
	if !sawDump {
		t.Error("no panicked attempt left a flight-recorder dump")
	}

	r := m.Rollup()
	if r.Completed != total {
		t.Fatalf("rollup completed = %d, want %d", r.Completed, total)
	}
	if r.PanicsRecovered != controllers {
		t.Fatalf("panics recovered = %d, want %d (one per controller session)", r.PanicsRecovered, controllers)
	}
	if r.Restarts != controllers {
		t.Fatalf("restarts = %d, want %d", r.Restarts, controllers)
	}
	if r.CheckpointsWritten == 0 {
		t.Fatal("chaos fleet wrote no checkpoints")
	}
	// All three planned write failures must have been consumed — the
	// plan's highest ordinal is 10, so at least that many attempts.
	if w := chaosFS.Writes(); w < 10 {
		t.Fatalf("only %d checkpoint writes attempted; failure plan not fully exercised", w)
	}

	var buf bytes.Buffer
	if err := m.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	for _, want := range []string{
		fmt.Sprintf(`aspeo_fleet_panics_recovered_total{boundary="worker"} %d`, controllers),
		fmt.Sprintf("aspeo_fleet_checkpoint_failures_total %d", len(plan.CheckpointFailures)),
		"aspeo_fleet_checkpoints_written_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Every terminal session removed its checkpoint.
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ckpt.json") {
			t.Errorf("terminal fleet left checkpoint %s behind", e.Name())
		}
	}
	dumps, err := os.ReadDir(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Error("flight dir empty after recovered panics")
	}
}

// TestFleetHTTPOverloadAndReadyz exercises the control plane's shedding
// paths: queue-full submissions and excess streams answer 429 with
// Retry-After, and /readyz flips to 503 once the fleet drains.
func TestFleetHTTPOverloadAndReadyz(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 1, Queue: 1, MaxStreams: 1})
	srv := httptest.NewServer(fleet.NewServer(m))
	defer srv.Close()

	submit := func(seed int64) (int, http.Header, []byte) {
		t.Helper()
		body := fmt.Sprintf(`{"app":"spotify","seed":%d,"run_for_s":3600000}`, seed)
		resp, err := http.Post(srv.URL+"/api/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, raw
	}
	sessionID := func(raw []byte) string {
		t.Helper()
		var out struct {
			Sessions []fleet.SessionView `json:"sessions"`
		}
		if err := json.Unmarshal(raw, &out); err != nil || len(out.Sessions) != 1 {
			t.Fatalf("submit response %s: %v", raw, err)
		}
		return out.Sessions[0].ID
	}

	// Fill the fleet: one session on the only worker, one in the only
	// queue slot, and the third submission is shed.
	code, _, raw := submit(1)
	if code != http.StatusCreated {
		t.Fatalf("first submit: %d %s", code, raw)
	}
	blocker := sessionID(raw)
	waitState(t, m, blocker, fleet.StateRunning)
	code, _, raw = submit(2)
	if code != http.StatusCreated {
		t.Fatalf("queued submit: %d %s", code, raw)
	}
	queued := sessionID(raw)
	code, hdr, raw := submit(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s, want 429", code, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 shed response missing Retry-After")
	}
	if !strings.Contains(string(raw), "queue") {
		t.Errorf("shed body %s does not name the queue", raw)
	}

	// One stream holds the only slot; the second is shed immediately.
	streamURL := srv.URL + "/api/v1/sessions/" + blocker + "/stream?interval_ms=50"
	resp1, err := http.Get(streamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first stream: %d", resp1.StatusCode)
	}
	// The first NDJSON line proves the handler is inside the semaphore.
	if _, err := bufio.NewReader(resp1.Body).ReadString('\n'); err != nil {
		t.Fatalf("first stream line: %v", err)
	}
	resp2, err := http.Get(streamURL)
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream: %d %s, want 429", resp2.StatusCode, shedBody)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("stream shed response missing Retry-After")
	}

	// Ready while serving…
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(readyBody), "ready") {
		t.Fatalf("readyz while serving: %d %s", resp.StatusCode, readyBody)
	}

	// …and unready once draining.
	if err := m.Stop(blocker); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop(queued); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/api/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	unreadyBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(unreadyBody), "draining") {
		t.Fatalf("readyz while draining: %d %s, want 503 draining", resp.StatusCode, unreadyBody)
	}
}

// TestFleetReadyzUnwritableCheckpointDir: durability degrading silently
// is exactly what /readyz exists to catch.
func TestFleetReadyzUnwritableCheckpointDir(t *testing.T) {
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A checkpoint dir nested under a regular file can never be created.
	m := fleet.NewManager(fleet.Options{Workers: 1, CheckpointDir: filepath.Join(occupied, "ckpt")})
	probs := m.ReadyProblems()
	if len(probs) != 1 || !strings.Contains(probs[0], "checkpoint dir not writable") {
		t.Fatalf("ReadyProblems() = %q, want one unwritable-dir problem", probs)
	}

	srv := httptest.NewServer(fleet.NewServer(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "checkpoint dir not writable") {
		t.Fatalf("readyz: %d %s, want 503 naming the checkpoint dir", resp.StatusCode, body)
	}
}
