package fleet_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aspeo/internal/fleet"
	"aspeo/internal/report"
)

// TestFleetSmokeHTTP is the control plane's end-to-end smoke test (the
// `make smoke-fleet` target): start the server, submit 8 sessions over
// HTTP, stream one to completion, assert the rollup and metrics, then
// drain and verify intake is closed.
func TestFleetSmokeHTTP(t *testing.T) {
	m := fleet.NewManager(fleet.Options{Workers: 4})
	srv := httptest.NewServer(fleet.NewServer(m))
	defer srv.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Invalid submissions are usage errors, not accepted sessions.
	if code, _ := post("/api/v1/sessions", `{"app":"no-such-app"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown app: status %d, want 400", code)
	}
	if code, _ := post("/api/v1/sessions", `{"app":`); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", code)
	}
	if code, _ := post("/api/v1/sessions", `{"app":"spotify","bogus_field":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", code)
	}
	if code, _ := post("/api/v1/sessions", `{"app":"spotify","count":-3}`); code != http.StatusBadRequest {
		t.Fatalf("negative count: status %d, want 400", code)
	}

	// Submit 8 sessions at consecutive seeds in one request.
	code, body := post("/api/v1/sessions", `{"app":"spotify","seed":100,"count":8,"run_for_s":2}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d, body %s", code, body)
	}
	var created struct {
		Sessions []fleet.SessionView `json:"sessions"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if len(created.Sessions) != 8 {
		t.Fatalf("submitted %d sessions, want 8", len(created.Sessions))
	}
	for i, v := range created.Sessions {
		if want := int64(100 + i); v.Config.Seed != want {
			t.Fatalf("session %d seed %d, want %d", i, v.Config.Seed, want)
		}
	}
	first := created.Sessions[0]

	// Inspect one; unknown ids are 404.
	if code, _ := get("/api/v1/sessions/" + first.ID); code != http.StatusOK {
		t.Fatalf("inspect: status %d", code)
	}
	if code, _ := get("/api/v1/sessions/s-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	if code, _ := get("/api/v1/sessions/s-999999/stream"); code != http.StatusNotFound {
		t.Fatalf("unknown stream: status %d, want 404", code)
	}

	// Stream the first session as NDJSON until it lands; the final line
	// must be terminal.
	streamResp, err := http.Get(srv.URL + "/api/v1/sessions/" + first.ID + "/stream?interval_ms=20")
	if err != nil {
		t.Fatal(err)
	}
	if got := streamResp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("stream content type %q", got)
	}
	var last fleet.SessionView
	lines := 0
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d: %v (%s)", lines, err, sc.Text())
		}
		lines++
	}
	streamResp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if lines == 0 || !last.Terminal() {
		t.Fatalf("stream ended after %d lines in state %s, want a terminal final view", lines, last.State)
	}

	// Wait for the whole batch via the rollup.
	var rollup report.FleetRollup
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := get("/api/v1/rollup")
		if code != http.StatusOK {
			t.Fatalf("rollup: status %d", code)
		}
		if err := json.Unmarshal(body, &rollup); err != nil {
			t.Fatalf("decoding rollup: %v", err)
		}
		if rollup.Completed == 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never completed: %+v", rollup)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rollup.Submitted != 8 || rollup.Failed != 0 || rollup.Stopped != 0 {
		t.Fatalf("rollup %+v, want 8 clean completions", rollup)
	}
	if rollup.SimSecondsTotal < 15.9 || rollup.SimSecondsTotal > 16.1 {
		t.Fatalf("sim seconds %.2f, want ~16 (8 sessions × 2s)", rollup.SimSecondsTotal)
	}
	if rollup.EnergyJTotal <= 0 || rollup.MeanGIPS <= 0 {
		t.Fatalf("rollup missing aggregates: %+v", rollup)
	}

	// Prometheus exposition.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	metrics := string(body)
	for _, want := range []string{
		"aspeo_fleet_sessions_submitted_total 8",
		`aspeo_fleet_sessions{state="completed"} 8`,
		`aspeo_fleet_sessions{state="running"} 0`,
		"aspeo_fleet_energy_joules_total",
		"# TYPE aspeo_fleet_cycles_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Stop on a terminal session is accepted (idempotent flag set).
	if code, _ := post("/api/v1/sessions/"+first.ID+"/stop", ""); code != http.StatusAccepted {
		t.Fatalf("stop: status %d, want 202", code)
	}

	// Drain closes intake; the rollup it returns is final.
	code, body = post("/api/v1/drain", "")
	if code != http.StatusOK {
		t.Fatalf("drain: status %d, body %s", code, body)
	}
	if code, body := post("/api/v1/sessions", `{"app":"spotify"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, body %s, want 503", code, body)
	}
	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz after drain: %d %s", code, body)
	}

	// The list endpoint still serves history after drain.
	code, body = get("/api/v1/sessions?state=completed")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var views []fleet.SessionView
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 8 {
		t.Fatalf("listed %d completed sessions, want 8", len(views))
	}
	for i := 1; i < len(views); i++ {
		if views[i-1].ID >= views[i].ID {
			t.Fatalf("list not ordered by submission: %s before %s", views[i-1].ID, views[i].ID)
		}
	}
}
