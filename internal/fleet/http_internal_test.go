package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRecoveryBoundary: a panicking handler answers 500 and is counted;
// the process survives.
func TestRecoveryBoundary(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	h := withRecovery(m, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "internal error: boom") {
		t.Fatalf("body %q does not report the panic", rr.Body.String())
	}
	var buf strings.Builder
	if err := m.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `aspeo_fleet_panics_recovered_total{boundary="http"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("metrics missing %q", want)
	}
}

// TestRecoveryBoundaryAbortPropagates: http.ErrAbortHandler is the
// server's own control flow for a dead client and must pass through.
func TestRecoveryBoundaryAbortPropagates(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	h := withRecovery(m, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", r)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	t.Fatal("ErrAbortHandler did not propagate")
}
