package report

import (
	"fmt"
	"io"

	"aspeo/internal/experiment"
)

// Faults renders the fault-resilience campaign: per (scenario, app) the
// performance slack of the three conditions against the fault-free
// target, the hardened controller's energy standing versus the stock
// governors, and the fault/repair ledger.
func Faults(w io.Writer, r *experiment.FaultCampaignResult) {
	fmt.Fprintln(w, "Fault resilience — performance slack vs fault-free target (negative = slower)")
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "\nScenario %s: %s\n", sc.Name, sc.Desc)
		fmt.Fprintf(w, "%-18s  %8s  %8s  %8s  %10s\n",
			"Application", "stock", "unhard.", "hardened", "energy Δ")
		for _, row := range r.Rows {
			if row.Scenario != sc.Name {
				continue
			}
			fmt.Fprintf(w, "%-18s  %+7.1f%%  %+7.1f%%  %+7.1f%%  %+9.1f%%\n",
				Label(row.App), row.StockSlackPct, row.UnhardenedSlackPct,
				row.HardenedSlackPct, row.HardenedVsStockEnergyPct)
		}
		for _, row := range r.Rows {
			if row.Scenario != sc.Name {
				continue
			}
			h, inj := row.Health, row.Injected
			fmt.Fprintf(w, "  %s ledger: %d/%d write faults retried-through, %d/%d hijacks reinstalled, "+
				"%d samples gated (%d outlier, %d stuck, %d non-finite)",
				Label(row.App),
				h.ActuationFailures, inj.WriteFailures+inj.StuckWrites,
				h.GovernorReinstalls, inj.Hijacks,
				h.RejectedSamples, h.OutlierSamples, h.StuckSamples, h.NonFiniteSamples)
			if h.WatchdogTrips > 0 {
				fmt.Fprintf(w, ", watchdog tripped %d× (%d degraded cycles)",
					h.WatchdogTrips, h.DegradedCycles)
			}
			if h.Relinquished {
				fmt.Fprint(w, ", RELINQUISHED to stock governors")
			}
			fmt.Fprintln(w)
		}
	}
}

// FaultsCSV exports the campaign rows for plotting.
func FaultsCSV(w io.Writer, r *experiment.FaultCampaignResult) {
	fmt.Fprintln(w, "scenario,app,target_gips,stock_slack_pct,unhardened_slack_pct,"+
		"hardened_slack_pct,hardened_vs_stock_energy_pct,actuation_failures,"+
		"governor_reinstalls,rejected_samples,watchdog_trips,degraded_cycles,relinquished")
	for _, row := range r.Rows {
		h := row.Health
		fmt.Fprintf(w, "%s,%s,%.4f,%.2f,%.2f,%.2f,%.2f,%d,%d,%d,%d,%d,%v\n",
			row.Scenario, row.App, row.TargetGIPS,
			row.StockSlackPct, row.UnhardenedSlackPct, row.HardenedSlackPct,
			row.HardenedVsStockEnergyPct,
			h.ActuationFailures, h.GovernorReinstalls, h.RejectedSamples,
			h.WatchdogTrips, h.DegradedCycles, h.Relinquished)
	}
}
