// Package report renders experiment results as the paper presents them:
// ASCII tables matching Tables I–V and side-by-side residency histograms
// matching Figures 1, 4 and 5, plus CSV exports for plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"aspeo/internal/experiment"
	"aspeo/internal/workload"
)

// appLabel maps canonical names to the paper's display names.
var appLabel = map[string]string{
	workload.NameVidCon:      "VidCon",
	workload.NameMobileBench: "MobileBench",
	workload.NameAngryBirds:  "AngryBirds",
	workload.NameWeChat:      "WeChat Video Call",
	workload.NameMXPlayer:    "MX Player",
	workload.NameSpotify:     "Spotify",
	workload.NameEBook:       "eBook Reader",
}

// Label returns the paper-style display name for an app.
func Label(app string) string {
	if l, ok := appLabel[app]; ok {
		return l
	}
	return app
}

// TableI renders the sample profiling table (first rows + the (f5,bw1)
// row the paper highlights).
func TableI(w io.Writer, r *experiment.TableIResult) {
	fmt.Fprintf(w, "Table I — offline profile of %s (load %s, base speed %.3f GIPS)\n",
		Label(r.Table.App), r.Table.Load, r.Table.BaseGIPS)
	fmt.Fprintf(w, "%4s  %-22s  %9s  %11s\n", "#", "Config (GHz,MBps)", "Speedup", "Power (mW)")
	for i, e := range r.Table.Entries {
		cfg := fmt.Sprintf("(%.4f, %.0f)", r.SoC.Freq(e.FreqIdx).GHz(), r.SoC.BW(e.Config().BWIdx).MBps())
		mark := ""
		if e.Interpolated {
			mark = " *"
		}
		fmt.Fprintf(w, "%4d  %-22s  %9.4f  %11.2f%s\n", i+1, cfg, e.Speedup, e.PowerW*1000, mark)
	}
	fmt.Fprintln(w, "(* linearly interpolated between measured bandwidth anchors)")
}

// TableII renders the frequency/bandwidth ladders.
func TableII(w io.Writer, r *experiment.TableIIResult) {
	fmt.Fprintln(w, "Table II — CPU frequencies and memory bandwidths (Nexus 6)")
	fmt.Fprintf(w, "%4s %12s    %4s %12s\n", "#", "CPU (GHz)", "#", "Mem (MBps)")
	n := len(r.SoC.CPUFreqs)
	for i := 0; i < n; i++ {
		bw := ""
		if i < len(r.SoC.MemBWs) {
			bw = fmt.Sprintf("%4d %12.0f", i+1, r.SoC.BW(i).MBps())
		}
		fmt.Fprintf(w, "%4d %12.4f    %s\n", i+1, r.SoC.Freq(i).GHz(), bw)
	}
}

// TableIII renders the headline comparison.
func TableIII(w io.Writer, r *experiment.TableIIIResult) {
	fmt.Fprintln(w, "Table III — performance difference and energy savings (baseline load)")
	fmt.Fprintf(w, "%-18s  %12s  %10s\n", "Application", "Performance", "Energy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s  %+11.1f%%  %9.1f%%\n",
			Label(row.App), row.PerfDeltaPct, row.EnergySavingsPct)
	}
}

// TableIV renders the load-sensitivity study.
func TableIV(w io.Writer, r *experiment.TableIVResult) {
	fmt.Fprintln(w, "Table IV — performance (%) and energy savings (%) under BL / NL / HL")
	fmt.Fprintf(w, "%-18s  %6s %6s %6s   %6s %6s %6s\n",
		"Application", "P:BL", "P:NL", "P:HL", "E:BL", "E:NL", "E:HL")
	for _, spec := range workload.Evaluated() {
		rows := r.Rows[spec.Name]
		bl, nl, hl := rows[workload.BaselineLoad], rows[workload.NoLoad], rows[workload.HeavierLoad]
		fmt.Fprintf(w, "%-18s  %+6.1f %+6.1f %+6.1f   %6.1f %6.1f %6.1f\n",
			Label(spec.Name),
			bl.PerfDeltaPct, nl.PerfDeltaPct, hl.PerfDeltaPct,
			bl.EnergySavingsPct, nl.EnergySavingsPct, hl.EnergySavingsPct)
	}
}

// TableV renders the CPU-only DVFS comparison.
func TableV(w io.Writer, r *experiment.TableVResult) {
	fmt.Fprintln(w, "Table V — CPU-only DVFS controller vs default governors")
	fmt.Fprintf(w, "%-18s  %12s  %10s\n", "Application", "Performance", "Energy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s  %+11.1f%%  %9.1f%%\n",
			Label(row.App), row.PerfDeltaPct, row.EnergySavingsPct)
	}
	fmt.Fprintf(w, "Average extra energy vs coordinated control (excl. MX Player): %+.1f%%\n",
		r.ExtraEnergyVsCoordinatedPct())
}

// Histogram renders one residency distribution as rows of bars.
func Histogram(w io.Writer, title string, pct []float64, width int) {
	if width <= 0 {
		width = 40
	}
	fmt.Fprintln(w, title)
	for i, p := range pct {
		bar := strings.Repeat("#", int(p/100*float64(width)+0.5))
		fmt.Fprintf(w, "%3d |%-*s| %5.1f%%\n", i+1, width, bar, p)
	}
}

// HistogramPair renders a default-vs-controller residency comparison in
// two columns, one row per ladder index (the layout of Figs. 4 and 5).
func HistogramPair(w io.Writer, title string, pair experiment.HistPair, width int) {
	if width <= 0 {
		width = 28
	}
	fmt.Fprintf(w, "%s — %s\n", title, Label(pair.App))
	fmt.Fprintf(w, "%3s  %-*s %7s | %-*s %7s\n", "#", width, "default", "", width, "controller", "")
	n := len(pair.Def)
	if len(pair.Ctl) > n {
		n = len(pair.Ctl)
	}
	at := func(xs []float64, i int) float64 {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		d, c := at(pair.Def, i), at(pair.Ctl, i)
		db := strings.Repeat("#", int(d/100*float64(width)+0.5))
		cb := strings.Repeat("#", int(c/100*float64(width)+0.5))
		fmt.Fprintf(w, "%3d  %-*s %6.1f%% | %-*s %6.1f%%\n", i+1, width, db, d, width, cb, c)
	}
}

// Fig1 renders the eBook histogram.
func Fig1(w io.Writer, r *experiment.Fig1Result) {
	Histogram(w, "Figure 1 — CPU frequency residency, eBook reader under default governor", r.ResidencyPct, 40)
}

// Fig4 renders the per-app CPU-frequency histogram pairs.
func Fig4(w io.Writer, pairs []experiment.HistPair) {
	for _, p := range pairs {
		HistogramPair(w, "Figure 4 — CPU frequency residency", p, 26)
		fmt.Fprintln(w)
	}
}

// Fig5 renders the per-app bandwidth histogram pairs.
func Fig5(w io.Writer, pairs []experiment.HistPair) {
	for _, p := range pairs {
		HistogramPair(w, "Figure 5 — memory bandwidth residency", p, 26)
		fmt.Fprintln(w)
	}
}

// Overhead renders the §V-A1 accounting.
func Overhead(w io.Writer, r *experiment.OverheadResult) {
	fmt.Fprintln(w, "Controller overhead (paper §V-A1)")
	fmt.Fprintf(w, "  perf CPU overhead at 1 s sampling:   %.1f%%  (paper: 4%%)\n", r.PerfCPUOverheadPct)
	fmt.Fprintf(w, "  perf power overhead:                 %.0f mW (paper: 15 mW)\n", r.PerfPowerOverheadW*1000)
	fmt.Fprintf(w, "  regulator+optimizer energy/cycle:    %.0f mJ (paper: ~25 mW over 2 s)\n", r.ControllerEnergyPerCycleJ*1000)
	fmt.Fprintf(w, "  optimizer host time per cycle:       %v   (paper: <10 ms on-device)\n", r.OptimizerTimePerCycle)
	fmt.Fprintf(w, "  frequency changes per cycle:         %.2f\n", r.FreqChangesPerCycle)
	fmt.Fprintf(w, "  actuation power overhead:            %.1f mW (paper: 14 mW)\n", r.ActuationPowerW*1000)
	fmt.Fprintf(w, "  control cycles observed:             %d\n", r.Cycles)
}

// ComparisonCSV writes comparisons as CSV.
func ComparisonCSV(w io.Writer, rows []experiment.Comparison) {
	fmt.Fprintln(w, "app,load,perf_delta_pct,energy_savings_pct,def_energy_j,ctl_energy_j,def_gips,ctl_gips,def_runtime_s,ctl_runtime_s")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%s,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f,%.2f,%.2f\n",
			r.App, r.Load, r.PerfDeltaPct, r.EnergySavingsPct,
			r.Default.EnergyJ, r.Ctl.EnergyJ, r.Default.GIPS, r.Ctl.GIPS,
			r.Default.RuntimeSec, r.Ctl.RuntimeSec)
	}
}
