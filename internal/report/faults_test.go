package report

import (
	"strings"
	"testing"

	"aspeo/internal/core"
	"aspeo/internal/experiment"
	"aspeo/internal/fault"
	"aspeo/internal/workload"
)

func sampleFaultResult() *experiment.FaultCampaignResult {
	return &experiment.FaultCampaignResult{
		Scenarios: []experiment.FaultScenario{
			{Name: "combined", Desc: "write failures + periodic hijack + noisy perf together"},
		},
		Rows: []experiment.FaultRow{{
			App: workload.NameSpotify, Scenario: "combined", TargetGIPS: 0.1046,
			Stock:         experiment.RunResult{GIPS: 0.1040, EnergyJ: 210},
			Unhardened:    experiment.RunResult{GIPS: 0.0812, EnergyJ: 150},
			Hardened:      experiment.RunResult{GIPS: 0.1043, EnergyJ: 190},
			StockSlackPct: -0.6, UnhardenedSlackPct: -22.4, HardenedSlackPct: -0.3,
			HardenedVsStockEnergyPct: 9.5,
			Health: core.Health{
				ActuationFailures: 48, ActuationRetries: 29, GovernorReinstalls: 5,
				RejectedSamples: 8, OutlierSamples: 6, StuckSamples: 2,
				WatchdogTrips: 2, DegradedCycles: 5, Relinquished: true,
			},
			Injected: fault.Counts{WriteFailures: 48, Hijacks: 5, DroppedSamples: 16, Spikes: 6},
		}},
	}
}

func TestFaultsRendering(t *testing.T) {
	var b strings.Builder
	Faults(&b, sampleFaultResult())
	out := b.String()
	for _, want := range []string{
		"Scenario combined",
		"Spotify",
		"-22.4%", // unhardened slack makes the case for the ladder
		"+9.5%",  // hardened energy standing vs stock
		"48/48 write faults retried-through",
		"5/5 hijacks reinstalled",
		"8 samples gated (6 outlier, 2 stuck, 0 non-finite)",
		"watchdog tripped 2×",
		"RELINQUISHED",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fault report missing %q:\n%s", want, out)
		}
	}
}

func TestFaultsCSV(t *testing.T) {
	var b strings.Builder
	FaultsCSV(&b, sampleFaultResult())
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "combined,spotify,0.1046,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
	if !strings.HasSuffix(lines[1], ",true") {
		t.Fatalf("relinquished flag missing: %q", lines[1])
	}
}
