package report

import (
	"strings"
	"testing"

	"aspeo/internal/experiment"
	"aspeo/internal/profile"
	"aspeo/internal/soc"
	"aspeo/internal/workload"
)

func TestLabel(t *testing.T) {
	if got := Label(workload.NameWeChat); got != "WeChat Video Call" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("unknown-app"); got != "unknown-app" {
		t.Fatalf("unknown label = %q", got)
	}
}

func sampleComparison() experiment.Comparison {
	return experiment.Comparison{
		App: workload.NameAngryBirds, Load: workload.BaselineLoad,
		Default:      experiment.RunResult{EnergyJ: 680, GIPS: 0.44, RuntimeSec: 200},
		Ctl:          experiment.RunResult{EnergyJ: 560, GIPS: 0.43, RuntimeSec: 200},
		PerfDeltaPct: -2.3, EnergySavingsPct: 17.6,
	}
}

func TestTableIIIRendering(t *testing.T) {
	var b strings.Builder
	TableIII(&b, &experiment.TableIIIResult{Rows: []experiment.Comparison{sampleComparison()}})
	out := b.String()
	for _, want := range []string{"Table III", "AngryBirds", "-2.3%", "17.6%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableIRendering(t *testing.T) {
	tab := &profile.Table{
		App: workload.NameAngryBirds, Load: "BL", BaseGIPS: 0.129,
		Entries: []profile.Entry{
			{FreqIdx: 0, BWIdx: 0, Speedup: 1.0, PowerW: 1.62357},
			{FreqIdx: 0, BWIdx: 1, Speedup: 1.004, PowerW: 1.68283, Interpolated: true},
		},
	}
	var b strings.Builder
	TableI(&b, &experiment.TableIResult{Table: tab, SoC: soc.Nexus6()})
	out := b.String()
	if !strings.Contains(out, "(0.3000, 762)") {
		t.Fatalf("missing config cell:\n%s", out)
	}
	if !strings.Contains(out, "1623.57") {
		t.Fatalf("power not rendered in mW:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("interpolated marker missing:\n%s", out)
	}
}

func TestTableIIRendering(t *testing.T) {
	var b strings.Builder
	TableII(&b, experiment.TableII())
	out := b.String()
	for _, want := range []string{"0.3000", "2.6496", "762", "16250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 20 { // header×2 + 18 rows
		t.Fatalf("Table II has %d lines", lines)
	}
}

func TestTableIVRendering(t *testing.T) {
	rows := map[string]map[workload.BGLoad]experiment.Comparison{}
	for _, s := range workload.Evaluated() {
		rows[s.Name] = map[workload.BGLoad]experiment.Comparison{
			workload.BaselineLoad: sampleComparison(),
			workload.NoLoad:       sampleComparison(),
			workload.HeavierLoad:  sampleComparison(),
		}
	}
	var b strings.Builder
	TableIV(&b, &experiment.TableIVResult{Rows: rows})
	out := b.String()
	if !strings.Contains(out, "P:BL") || !strings.Contains(out, "E:HL") {
		t.Fatalf("Table IV headers missing:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 8 {
		t.Fatalf("Table IV lines = %d", got)
	}
}

func TestTableVRendering(t *testing.T) {
	r := &experiment.TableVResult{
		Rows:        []experiment.Comparison{sampleComparison()},
		Coordinated: []experiment.Comparison{sampleComparison()},
	}
	var b strings.Builder
	TableV(&b, r)
	if !strings.Contains(b.String(), "extra energy vs coordinated") {
		t.Fatalf("Table V aggregate missing:\n%s", b.String())
	}
}

func TestHistogramPairRendering(t *testing.T) {
	pair := experiment.HistPair{
		App: workload.NameSpotify,
		Def: []float64{50, 30, 20},
		Ctl: []float64{90, 10, 0},
	}
	var b strings.Builder
	HistogramPair(&b, "Figure 4 — CPU frequency residency", pair, 20)
	out := b.String()
	if !strings.Contains(out, "Spotify") || !strings.Contains(out, "default") {
		t.Fatalf("pair header missing:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") || !strings.Contains(out, "50.0%") {
		t.Fatalf("percentages missing:\n%s", out)
	}
	// Asymmetric lengths must not panic.
	pair.Ctl = pair.Ctl[:1]
	var b2 strings.Builder
	HistogramPair(&b2, "t", pair, 20)
}

func TestOverheadRendering(t *testing.T) {
	var b strings.Builder
	Overhead(&b, &experiment.OverheadResult{
		PerfCPUOverheadPct: 4.0, PerfPowerOverheadW: 0.015,
		ControllerEnergyPerCycleJ: 0.05, Cycles: 99,
	})
	if !strings.Contains(b.String(), "4.0%") || !strings.Contains(b.String(), "15 mW") {
		t.Fatalf("overhead rendering wrong:\n%s", b.String())
	}
}

func TestComparisonCSV(t *testing.T) {
	var b strings.Builder
	ComparisonCSV(&b, []experiment.Comparison{sampleComparison()})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "angrybirds,BL,-2.300,17.600,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}
