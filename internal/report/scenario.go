package report

import (
	"fmt"
	"io"
	"strings"

	"aspeo/internal/scenario"
)

// Scenario renders a compiled scenario's summary: population counts by
// cohort/app/load, the phase-count histogram of the synthesized
// workloads, and the realized arrival histogram next to the spec's
// expected load curve — the spec author's pre-flight sanity check.
func Scenario(w io.Writer, s *scenario.Summary) {
	fmt.Fprintf(w, "scenario %s (seed %d): %d sessions over %.0fs\n",
		s.Name, s.Seed, s.Sessions, s.HorizonS)
	fmt.Fprintf(w, "  controller sessions: %d / %d   storm-carrying: %d\n",
		s.Controller, s.Sessions, s.Storms)
	fmt.Fprintf(w, "  mean phases/session: %.1f   mean session length: %.1fs\n\n",
		s.MeanPhases, s.MeanRunForS)

	countTable(w, "cohort", s.Cohorts, s.Sessions)
	countTable(w, "app", s.Apps, s.Sessions)
	countTable(w, "load", s.Loads, s.Sessions)

	fmt.Fprintln(w, "phase-count histogram")
	maxSess := 1
	for _, h := range s.PhaseHist {
		if h.Sessions > maxSess {
			maxSess = h.Sessions
		}
	}
	for _, h := range s.PhaseHist {
		fmt.Fprintf(w, "  %5d phases  %-30s %d\n", h.Phases, bar(h.Sessions, maxSess, 30), h.Sessions)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "arrival curve (per bucket: realized #, | marks the spec's expectation)")
	maxArr := 1.0
	for _, p := range s.ArrivalCurve {
		if float64(p.Arrivals) > maxArr {
			maxArr = float64(p.Arrivals)
		}
		if p.Expected > maxArr {
			maxArr = p.Expected
		}
	}
	for _, p := range s.ArrivalCurve {
		const width = 40
		n := scaleTo(float64(p.Arrivals), maxArr, width)
		e := scaleTo(p.Expected, maxArr, width)
		row := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if e >= width {
			e = width - 1
		}
		row[e] = '|'
		fmt.Fprintf(w, "  t=%6.0fs  %s %d\n", p.TS, row, p.Arrivals)
	}
}

// countTable prints one labelled count column with shares.
func countTable(w io.Writer, what string, rows []scenario.CountRow, total int) {
	fmt.Fprintf(w, "sessions by %s\n", what)
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = float64(r.Count) / float64(total) * 100
		}
		fmt.Fprintf(w, "  %-28s %6d  (%.1f%%)\n", Label(r.Name), r.Count, share)
	}
	fmt.Fprintln(w)
}

func bar(v, max, width int) string {
	n := scaleTo(float64(v), float64(max), width)
	return strings.Repeat("#", n)
}

func scaleTo(v, max float64, width int) int {
	if max <= 0 {
		return 0
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return n
}
