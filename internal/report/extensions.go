package report

import (
	"fmt"
	"io"

	"aspeo/internal/experiment"
)

// BatteryLife renders the battery-life translation of Table III.
func BatteryLife(w io.Writer, rows []experiment.BatteryRow) {
	fmt.Fprintln(w, "Battery life on the 3220 mAh pack (screen-on, per-app draw)")
	fmt.Fprintf(w, "%-18s  %10s  %10s  %10s\n", "Application", "default", "controller", "extension")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s  %9.1fh  %9.1fh  %+9.1f%%\n",
			Label(r.App), r.DefaultLife.Hours(), r.ControllerLife.Hours(), r.LifeExtensionPct)
	}
}

// LoadModel renders the §V-C future-work study: stale vs model-adapted
// vs re-profiled tables under NL.
func LoadModel(w io.Writer, r *experiment.LoadModelResult) {
	fmt.Fprintf(w, "Load-model study — %s under NL with a BL profile (§V-C future work)\n", Label(r.App))
	fmt.Fprintf(w, "%-22s  %12s  %10s\n", "table", "perf Δ", "energy Δ")
	row := func(name string, c experiment.Comparison) {
		fmt.Fprintf(w, "%-22s  %+11.1f%%  %9.1f%%\n", name, c.PerfDeltaPct, c.EnergySavingsPct)
	}
	row("stale BL profile", r.Stale)
	row("model-adapted", r.Adapted)
	row("full NL re-profile", r.Reprofiled)
}

// Phase renders the phase-aware controller study.
func Phase(w io.Writer, r *experiment.PhaseResult) {
	fmt.Fprintf(w, "Phase-aware control — %s (§V-B problem class)\n", Label(r.App))
	fmt.Fprintf(w, "  plain controller:       perf %+5.1f%%  energy %5.1f%%\n",
		r.Plain.PerfDeltaPct, r.Plain.EnergySavingsPct)
	fmt.Fprintf(w, "  phase-aware controller: perf %+5.1f%%  energy %5.1f%%  (%d phases tracked)\n",
		r.PhaseAware.PerfDeltaPct, r.PhaseAware.EnergySavingsPct, r.PhasesDetected)
}

// Thermal renders the thermal study.
func Thermal(w io.Writer, r *experiment.ThermalResult) {
	fmt.Fprintf(w, "Thermal behaviour — %s under a %s envelope\n", Label(r.App), "36 °C")
	fmt.Fprintf(w, "  default governors: peak %.1f °C, throttled %.1f s\n",
		r.DefaultPeakC, r.DefaultThrot.Seconds())
	fmt.Fprintf(w, "  controller:        peak %.1f °C, throttled %.1f s\n",
		r.CtlPeakC, r.CtlThrot.Seconds())
}
