package report

import (
	"encoding/json"
	"fmt"
	"io"

	"aspeo/internal/experiment"
	"aspeo/internal/fault"
	"aspeo/internal/obs"
	"aspeo/internal/obs/pipeline"
	"aspeo/internal/platform"
	"aspeo/internal/sim"
)

// RunSummary is the machine-readable record of one session: what ran,
// under which policy, and what it measured. One schema serves every
// consumer — `aspeo-run -json` prints it, the fleet API returns it per
// session, and the fleet golden test compares the two byte for byte —
// so a field added here is a field added everywhere at once.
//
// Only deterministic quantities belong in it: no wall-clock timestamps,
// no host identifiers. Two runs of the same spec must marshal
// identically.
type RunSummary struct {
	App      string `json:"app"`
	Load     string `json:"load"`
	Seed     int64  `json:"seed"`
	Mode     string `json:"mode"` // "governor" or "controller"
	Governor string `json:"governor,omitempty"`
	CPUOnly  bool   `json:"cpu_only,omitempty"`
	Faults   string `json:"faults,omitempty"`

	DurationS    float64 `json:"duration_s"`
	EnergyJ      float64 `json:"energy_j"`
	AvgPowerW    float64 `json:"avg_power_w"`
	PeakPowerW   float64 `json:"peak_power_w"`
	GIPS         float64 `json:"gips"`
	FGCompleted  bool    `json:"fg_completed"`
	DroppedInstr float64 `json:"dropped_instr,omitempty"`
	FreqChanges  int     `json:"freq_changes"`
	BWChanges    int     `json:"bw_changes"`

	Controller *ControllerSummary `json:"controller,omitempty"`
	Injected   *fault.Counts      `json:"injected_faults,omitempty"`
}

// ControllerSummary is the controller-mode slice of a RunSummary.
type ControllerSummary struct {
	TargetGIPS       float64         `json:"target_gips"`
	TableEntries     int             `json:"table_entries"`
	BaseGIPS         float64         `json:"base_gips"`
	Cycles           int             `json:"cycles"`
	MeanAbsErrGIPS   float64         `json:"mean_abs_err_gips"`
	BaseEstimateGIPS float64         `json:"base_estimate_gips"`
	AllocCacheHits   int             `json:"alloc_cache_hits"`
	PhasesDetected   int             `json:"phases_detected"`
	Health           platform.Health `json:"health"`
}

// NewRunSummary assembles the summary of a finished session.
func NewRunSummary(s *experiment.Session, st sim.Stats) RunSummary {
	sum := RunSummary{
		App:          s.App.Name,
		Load:         s.Load.String(),
		Seed:         s.Spec.Seed,
		Mode:         "governor",
		Governor:     s.Spec.Governor,
		CPUOnly:      s.Spec.CPUOnly,
		Faults:       s.Spec.Faults,
		DurationS:    st.Duration.Seconds(),
		EnergyJ:      st.EnergyJ,
		AvgPowerW:    st.AvgPowerW,
		PeakPowerW:   st.PeakPowerW,
		GIPS:         st.GIPS,
		FGCompleted:  st.FGCompleted,
		DroppedInstr: st.DroppedInstr,
		FreqChanges:  st.FreqChanges,
		BWChanges:    st.BWChanges,
	}
	if s.Controller != nil {
		sum.Mode = "controller"
		sum.Governor = ""
		sum.Controller = &ControllerSummary{
			TargetGIPS:       s.TargetGIPS,
			TableEntries:     s.TableEntries,
			BaseGIPS:         s.BaseGIPS,
			Cycles:           s.Controller.Cycles(),
			MeanAbsErrGIPS:   s.Controller.MeanAbsError(),
			BaseEstimateGIPS: s.Controller.BaseSpeedEstimate(),
			AllocCacheHits:   s.Controller.AllocCacheHits(),
			PhasesDetected:   s.Controller.PhasesDetected(),
			Health:           s.Controller.Health(),
		}
	}
	if s.Injector != nil {
		c := s.Injector.Counts()
		sum.Injected = &c
	}
	return sum
}

// WriteJSON writes the summary as indented JSON with a trailing newline.
func (r RunSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FleetRollup is the fleet-wide aggregate the session manager folds its
// sessions into: population by state, throughput, and the summed energy,
// performance and health figures. Like RunSummary it is a shared schema
// — the fleet API returns it as JSON, Fleet renders it as text, and
// PrometheusMetrics renders it in the Prometheus exposition format.
type FleetRollup struct {
	// Sessions by lifecycle state.
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Stopped   int `json:"stopped"`
	// Submitted counts every session ever accepted; Restarts every
	// restart attempt consumed.
	Submitted int `json:"submitted"`
	Restarts  int `json:"restarts"`
	// PanicsRecovered counts worker panics the manager contained (each
	// fed the restart ladder); CheckpointsWritten counts session
	// snapshots written durably. Both are zero — and omitted — on
	// fleets without chaos or checkpointing.
	PanicsRecovered    int `json:"panics_recovered,omitempty"`
	CheckpointsWritten int `json:"checkpoints_written,omitempty"`

	// CyclesTotal counts control cycles observed across all controller
	// sessions, live ones included; CyclesPerSec is the recent fleet
	// throughput (cycles per wall-clock second since the previous
	// rollup).
	CyclesTotal  int     `json:"cycles_total"`
	CyclesPerSec float64 `json:"cycles_per_sec"`

	// Finished-session aggregates (terminal states only: completed,
	// failed and stopped sessions that produced a summary).
	SimSecondsTotal   float64 `json:"sim_seconds_total"`
	EnergyJTotal      float64 `json:"energy_j_total"`
	DroppedInstrTotal float64 `json:"dropped_instr_total"`
	// MeanGIPS and MeanAbsErrGIPS average over finished sessions (the
	// error over finished controller sessions).
	MeanGIPS       float64 `json:"mean_gips"`
	MeanAbsErrGIPS float64 `json:"mean_abs_err_gips"`

	// Health sums the ladder ledgers across all controller sessions —
	// exact per-cycle deltas, cumulative across restart attempts;
	// Relinquished counts sessions whose final attempt handed the
	// device back.
	Health       platform.Health `json:"health"`
	Relinquished int             `json:"relinquished"`

	// Telemetry is the pipeline's epoch rollup: per-cohort population
	// distributions, saturation (brownout) events and interference
	// analysis. Nil on rollups assembled without a pipeline.
	Telemetry *pipeline.Rollup `json:"telemetry,omitempty"`
}

// Active reports how many sessions are not yet terminal.
func (r FleetRollup) Active() int { return r.Pending + r.Running }

// Fleet renders the rollup as a compact text block — the aspeo-fleet
// log line and the smoke test's human-readable assertion surface.
func Fleet(w io.Writer, r FleetRollup) {
	fmt.Fprintf(w, "fleet: %d pending, %d running, %d completed, %d failed, %d stopped (%d submitted, %d restarts)\n",
		r.Pending, r.Running, r.Completed, r.Failed, r.Stopped, r.Submitted, r.Restarts)
	fmt.Fprintf(w, "  cycles=%d (%.1f/s) sim-time=%.0fs energy=%.1fJ mean-gips=%.4f mean-abs-err=%.4f\n",
		r.CyclesTotal, r.CyclesPerSec, r.SimSecondsTotal, r.EnergyJTotal, r.MeanGIPS, r.MeanAbsErrGIPS)
	h := r.Health
	fmt.Fprintf(w, "  health: actuation-failures=%d reinstalls=%d rejected-samples=%d watchdog-trips=%d degraded-cycles=%d relinquished=%d\n",
		h.ActuationFailures, h.GovernorReinstalls, h.RejectedSamples, h.WatchdogTrips, h.DegradedCycles, r.Relinquished)
	if h.LastTransition != "" {
		fmt.Fprintf(w, "  last-transition: %s\n", h.LastTransition)
	}
	if r.Telemetry != nil {
		pipeline.WriteTable(w, r.Telemetry)
	}
}

// RollupMetrics publishes the rollup onto an obs.Registry, creating the
// fleet metric families on first call and refreshing their values on
// every call after that. The fleet control plane keeps one long-lived
// registry (so process-level instruments like scrape histograms coexist
// with the rollup) and refreshes it from the current Rollup() at scrape
// time. Metric names follow the Prometheus conventions: a unit suffix,
// _total on monotonic counters.
func RollupMetrics(reg *obs.Registry, r FleetRollup) {
	states := reg.GaugeVec("aspeo_fleet_sessions",
		"Sessions currently in each lifecycle state.", "state")
	for _, s := range []struct {
		state string
		n     int
	}{
		{"pending", r.Pending}, {"running", r.Running},
		{"completed", r.Completed}, {"failed", r.Failed}, {"stopped", r.Stopped},
	} {
		states.With(s.state).Set(float64(s.n))
	}

	counter := func(name, help string, v float64) {
		reg.Counter(name, help).Set(v)
	}
	gauge := func(name, help string, v float64) {
		reg.Gauge(name, help).Set(v)
	}
	counter("aspeo_fleet_sessions_submitted_total", "Sessions accepted since start.", float64(r.Submitted))
	counter("aspeo_fleet_session_restarts_total", "Session restart attempts consumed.", float64(r.Restarts))
	counter("aspeo_fleet_cycles_total", "Control cycles observed across all controller sessions.", float64(r.CyclesTotal))
	gauge("aspeo_fleet_cycles_per_second", "Recent fleet control-cycle throughput.", r.CyclesPerSec)
	counter("aspeo_fleet_sim_seconds_total", "Simulated seconds completed by finished sessions.", r.SimSecondsTotal)
	counter("aspeo_fleet_energy_joules_total", "Energy consumed by finished sessions.", r.EnergyJTotal)
	counter("aspeo_fleet_dropped_instructions_total", "Foreground instructions dropped by finished sessions.", r.DroppedInstrTotal)
	gauge("aspeo_fleet_mean_gips", "Mean GIPS over finished sessions.", r.MeanGIPS)
	gauge("aspeo_fleet_mean_abs_error_gips", "Mean |target-measured| GIPS over finished controller sessions.", r.MeanAbsErrGIPS)

	h := r.Health
	for _, m := range []struct {
		name, help string
		v          int
	}{
		{"aspeo_fleet_health_actuation_failures_total", "Failed sysfs actuation writes.", h.ActuationFailures},
		{"aspeo_fleet_health_actuation_retries_total", "Retry attempts spent on failed writes.", h.ActuationRetries},
		{"aspeo_fleet_health_governor_reinstalls_total", "Governor hijacks repaired.", h.GovernorReinstalls},
		{"aspeo_fleet_health_maxfreq_restores_total", "scaling_max_freq clamps undone.", h.MaxFreqRestores},
		{"aspeo_fleet_health_rejected_samples_total", "Measurements rejected by the validation gate.", h.RejectedSamples},
		{"aspeo_fleet_health_watchdog_trips_total", "Watchdog degrade and relinquish transitions.", h.WatchdogTrips},
		{"aspeo_fleet_health_degraded_cycles_total", "Control cycles spent at the safe configuration.", h.DegradedCycles},
	} {
		counter(m.name, m.help, float64(m.v))
	}
	gauge("aspeo_fleet_relinquished_sessions", "Sessions whose controller relinquished the device.", float64(r.Relinquished))

	if t := r.Telemetry; t != nil {
		telemetryMetrics(reg, t)
	}
}

// telemetryMetrics publishes the pipeline rollup's distribution and
// analyzer families: the population measured-GIPS histogram (loaded
// into the same family the fleet registers at construction), per-cohort
// labeled histograms, and the saturation/interference figures.
func telemetryMetrics(reg *obs.Registry, t *pipeline.Rollup) {
	reg.Histogram("aspeo_fleet_measured_gips",
		"Per-cycle measured performance across all controller sessions.",
		pipeline.GIPSBounds).Load(t.GIPS.Counts, t.GIPS.Sum)

	slackVec := reg.HistogramVec("aspeo_fleet_cohort_slack_pct",
		"Per-cycle slack (100·(measured−target)/target) by cohort.",
		pipeline.SlackBounds, "cohort")
	powVec := reg.HistogramVec("aspeo_fleet_cohort_power_watts",
		"Per-cycle device power by cohort.",
		pipeline.PowerBounds, "cohort")
	gipsVec := reg.HistogramVec("aspeo_fleet_cohort_measured_gips",
		"Per-cycle measured performance by cohort.",
		pipeline.GIPSBounds, "cohort")
	for i := range t.Cohorts {
		c := &t.Cohorts[i]
		slackVec.With(c.Name).Load(c.Slack.Counts, c.Slack.Sum)
		powVec.With(c.Name).Load(c.Power.Counts, c.Power.Sum)
		gipsVec.With(c.Name).Load(c.GIPS.Counts, c.GIPS.Sum)
	}

	brownouts, depth, cycles := 0, 0.0, uint64(0)
	if s := t.Saturation; s != nil {
		brownouts, depth, cycles = len(s.Brownouts), s.WorstDepth, s.BrownoutCycles
	}
	reg.Gauge("aspeo_fleet_brownouts",
		"Brownout events detected by the saturation analyzer.").Set(float64(brownouts))
	reg.Gauge("aspeo_fleet_brownout_worst_depth",
		"Deepest per-window GIPS deficit (1 − measured/target).").Set(depth)
	reg.Counter("aspeo_fleet_brownout_cycles_total",
		"Control cycles that ran inside brownout windows.").Set(float64(cycles))

	collapse := reg.GaugeVec("aspeo_fleet_slack_collapse_pct",
		"Calm-minus-storm mean slack by cohort (interference analyzer).", "cohort")
	corr := reg.GaugeVec("aspeo_fleet_arrival_slack_corr",
		"Correlation of population arrivals with cohort slack.", "cohort")
	for _, inf := range t.Interference {
		collapse.With(inf.Cohort).Set(inf.SlackCollapsePct)
		corr.With(inf.Cohort).Set(inf.ArrivalSlackCorr)
	}
}

// PrometheusMetrics renders the rollup in the Prometheus text exposition
// format (version 0.0.4) — a one-shot convenience over RollupMetrics
// plus obs.(*Registry).WriteText on a fresh registry.
func PrometheusMetrics(w io.Writer, r FleetRollup) {
	reg := obs.NewRegistry()
	RollupMetrics(reg, r)
	reg.WriteText(w)
}
