package histogram

import (
	"math"
	"testing"
)

func TestDistBucketing(t *testing.T) {
	d := NewDist([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9} {
		d.Observe(v)
	}
	// Boundary values land in their own bucket (v <= bound).
	wantCum := []uint64{2, 3, 4}
	for i, want := range wantCum {
		if got := d.Cumulative(i); got != want {
			t.Fatalf("Cumulative(%d) = %d, want %d", i, got, want)
		}
	}
	if d.Cumulative(len(wantCum)) != 5 {
		t.Fatalf("+Inf cumulative = %d, want 5", d.Cumulative(len(wantCum)))
	}
	if d.Total() != 5 || d.Sum() != 15 {
		t.Fatalf("Total=%d Sum=%v, want 5/15", d.Total(), d.Sum())
	}
}

func TestDistIgnoresNaN(t *testing.T) {
	d := NewDist([]float64{1})
	d.Observe(math.NaN())
	d.Observe(0.5)
	if d.Total() != 1 {
		t.Fatalf("Total = %d after one NaN and one real observation, want 1", d.Total())
	}
}

func TestDistBoundsCopied(t *testing.T) {
	in := []float64{1, 2}
	d := NewDist(in)
	in[0] = 99
	if b := d.Bounds(); b[0] != 1 {
		t.Fatal("Dist aliased the caller's bounds slice")
	}
	out := d.Bounds()
	out[1] = 99
	if b := d.Bounds(); b[1] != 2 {
		t.Fatal("Bounds returned an aliased slice")
	}
}

func TestDistInvalidBoundsPanic(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":          {},
		"non-increasing": {1, 1},
		"descending":     {2, 1},
		"nan":            {math.NaN()},
		"inf":            {math.Inf(1)},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid bounds did not panic")
				}
			}()
			NewDist(bounds)
		})
	}
}
