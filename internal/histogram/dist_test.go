package histogram

import (
	"math"
	"testing"
)

func TestDistBucketing(t *testing.T) {
	d := NewDist([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9} {
		d.Observe(v)
	}
	// Boundary values land in their own bucket (v <= bound).
	wantCum := []uint64{2, 3, 4}
	for i, want := range wantCum {
		if got := d.Cumulative(i); got != want {
			t.Fatalf("Cumulative(%d) = %d, want %d", i, got, want)
		}
	}
	if d.Cumulative(len(wantCum)) != 5 {
		t.Fatalf("+Inf cumulative = %d, want 5", d.Cumulative(len(wantCum)))
	}
	if d.Total() != 5 || d.Sum() != 15 {
		t.Fatalf("Total=%d Sum=%v, want 5/15", d.Total(), d.Sum())
	}
}

func TestDistIgnoresNaN(t *testing.T) {
	d := NewDist([]float64{1})
	d.Observe(math.NaN())
	d.Observe(0.5)
	if d.Total() != 1 {
		t.Fatalf("Total = %d after one NaN and one real observation, want 1", d.Total())
	}
}

func TestDistBoundsCopied(t *testing.T) {
	in := []float64{1, 2}
	d := NewDist(in)
	in[0] = 99
	if b := d.Bounds(); b[0] != 1 {
		t.Fatal("Dist aliased the caller's bounds slice")
	}
	out := d.Bounds()
	out[1] = 99
	if b := d.Bounds(); b[1] != 2 {
		t.Fatal("Bounds returned an aliased slice")
	}
}

func TestDistInvalidBoundsPanic(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":          {},
		"non-increasing": {1, 1},
		"descending":     {2, 1},
		"nan":            {math.NaN()},
		"inf":            {math.Inf(1)},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid bounds did not panic")
				}
			}()
			NewDist(bounds)
		})
	}
}

func TestDistQuantile(t *testing.T) {
	d := NewDist([]float64{1, 2, 4, 8})
	if got := d.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", got)
	}
	// 10 observations: 5 in (…,1], 4 in (1,2], 1 in (4,8].
	for i := 0; i < 5; i++ {
		d.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		d.Observe(1.5)
	}
	d.Observe(6)
	if got := d.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile(0.5) = %v, want 1", got)
	}
	if got := d.Quantile(0.9); got != 2 {
		t.Fatalf("Quantile(0.9) = %v, want 2", got)
	}
	if got := d.Quantile(0.95); got != 8 {
		t.Fatalf("Quantile(0.95) = %v, want 8", got)
	}
	// Clamping: out-of-range q behaves as 0 and 1.
	if got := d.Quantile(-3); got != d.Quantile(0) {
		t.Fatalf("Quantile(-3) = %v, want %v", got, d.Quantile(0))
	}
	if got := d.Quantile(7); got != d.Quantile(1) {
		t.Fatalf("Quantile(7) = %v, want %v", got, d.Quantile(1))
	}
}

// Overflow observations cannot be resolved past the top bound; Quantile
// reports the highest finite bound rather than inventing a value.
func TestDistQuantileOverflow(t *testing.T) {
	d := NewDist([]float64{1, 2})
	d.Observe(100)
	d.Observe(200)
	if got := d.Quantile(0.95); got != 2 {
		t.Fatalf("overflow Quantile(0.95) = %v, want top bound 2", got)
	}
}
