// Package histogram accumulates residency histograms: the percentage of
// time the device spends at each CPU frequency or memory bandwidth index.
// These are the quantities plotted in the paper's Figures 1, 4 and 5.
package histogram

import (
	"fmt"
	"strings"
	"time"
)

// Residency tracks time spent per ladder index.
type Residency struct {
	name    string
	buckets []time.Duration
	total   time.Duration
}

// New creates a residency histogram with n ladder steps.
func New(name string, n int) *Residency {
	if n <= 0 {
		panic(fmt.Sprintf("histogram: %d buckets", n))
	}
	return &Residency{name: name, buckets: make([]time.Duration, n)}
}

// Name returns the histogram's label.
func (r *Residency) Name() string { return r.name }

// Len returns the number of ladder steps.
func (r *Residency) Len() int { return len(r.buckets) }

// Add accounts dt of residency at ladder index idx. Out-of-range indices
// panic: they indicate a simulator bug, not bad input.
func (r *Residency) Add(idx int, dt time.Duration) {
	if idx < 0 || idx >= len(r.buckets) {
		panic(fmt.Sprintf("histogram %s: index %d out of %d", r.name, idx, len(r.buckets)))
	}
	if dt <= 0 {
		return
	}
	r.buckets[idx] += dt
	r.total += dt
}

// Total returns the accumulated observation time.
func (r *Residency) Total() time.Duration { return r.total }

// Percent returns the share of time at index idx, in percent of the
// total observation time (0 if nothing was observed).
func (r *Residency) Percent(idx int) float64 {
	if r.total == 0 {
		return 0
	}
	return 100 * float64(r.buckets[idx]) / float64(r.total)
}

// Percents returns the full distribution in percent.
func (r *Residency) Percents() []float64 {
	out := make([]float64, len(r.buckets))
	for i := range r.buckets {
		out[i] = r.Percent(i)
	}
	return out
}

// ArgMax returns the index with the largest residency.
func (r *Residency) ArgMax() int {
	best := 0
	for i := range r.buckets {
		if r.buckets[i] > r.buckets[best] {
			best = i
		}
	}
	return best
}

// TopShare returns the combined share (percent) of the k highest ladder
// indices; e.g. TopShare(1) is residency at the maximum frequency.
func (r *Residency) TopShare(k int) float64 {
	if k <= 0 {
		return 0
	}
	s := 0.0
	for i := len(r.buckets) - k; i < len(r.buckets); i++ {
		if i >= 0 {
			s += r.Percent(i)
		}
	}
	return s
}

// Dist is a fixed-bucket distribution of scalar observations — the
// bucket/sum/count shape Prometheus histograms expose, kept here beside
// Residency so every histogram in the repo shares one home. A value v
// lands in the first bucket whose upper bound satisfies v <= bound;
// values above every bound land in the implicit +Inf overflow bucket.
type Dist struct {
	bounds []float64 // strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf overflow
	sum    float64
	n      uint64
}

// NewDist creates a distribution over the given upper bounds, which must
// be finite and strictly increasing. Like New, invalid bounds panic:
// they are a programming error, not bad input.
func NewDist(bounds []float64) *Dist {
	if len(bounds) == 0 {
		panic("histogram: Dist needs at least one bucket bound")
	}
	for i, b := range bounds {
		if b != b || b > 1e308 || b < -1e308 {
			panic(fmt.Sprintf("histogram: Dist bound %v not finite", b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("histogram: Dist bounds not increasing at %d", i))
		}
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Dist{bounds: own, counts: make([]uint64, len(bounds)+1)}
}

// Observe accounts one value. NaN observations are ignored.
func (d *Dist) Observe(v float64) {
	if v != v {
		return
	}
	i := len(d.bounds) // overflow bucket
	for j, b := range d.bounds {
		if v <= b {
			i = j
			break
		}
	}
	d.counts[i]++
	d.sum += v
	d.n++
}

// Bounds returns the configured upper bounds (excluding +Inf).
func (d *Dist) Bounds() []float64 {
	out := make([]float64, len(d.bounds))
	copy(out, d.bounds)
	return out
}

// Cumulative returns the count of observations <= bounds[i]; i ==
// len(bounds) returns the total (the +Inf bucket).
func (d *Dist) Cumulative(i int) uint64 {
	var c uint64
	for j := 0; j <= i && j < len(d.counts); j++ {
		c += d.counts[j]
	}
	return c
}

// Quantile returns an upper estimate of the q-quantile: the upper bound
// of the first bucket at which the cumulative count reaches q·Total().
// q is clamped to [0, 1], and a distribution with no observations
// returns 0. Observations that landed in the +Inf overflow bucket
// report the highest finite bound — the histogram cannot resolve beyond
// it, so callers should size their top bound past the values they care
// about.
func (d *Dist) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.n)
	var c float64
	for i, b := range d.bounds {
		c += float64(d.counts[i])
		if c >= rank {
			return b
		}
	}
	return d.bounds[len(d.bounds)-1]
}

// Total returns the observation count.
func (d *Dist) Total() uint64 { return d.n }

// Sum returns the sum of all observed values.
func (d *Dist) Sum() float64 { return d.sum }

// Counts returns a copy of the raw per-bucket counts, length
// len(Bounds())+1 with the +Inf overflow bucket last. Together with
// Bounds and Sum this is a Dist's complete serializable state.
func (d *Dist) Counts() []uint64 {
	out := make([]uint64, len(d.counts))
	copy(out, d.counts)
	return out
}

// Merge folds another distribution into d. The two must share identical
// bounds — merging histograms over different buckets has no meaning and
// errors rather than guessing. Bucket counts and the observation count
// add exactly (integers); the sums add as float64, so Merge is
// commutative and associative whenever the sums are (exactly, when
// every observation was quantized — see obs/pipeline — and within one
// ULP otherwise).
func (d *Dist) Merge(o *Dist) error {
	if len(d.bounds) != len(o.bounds) {
		return fmt.Errorf("histogram: merging Dist with %d bounds into %d", len(o.bounds), len(d.bounds))
	}
	for i := range d.bounds {
		if d.bounds[i] != o.bounds[i] {
			return fmt.Errorf("histogram: merging Dist with bound[%d]=%v into %v", i, o.bounds[i], d.bounds[i])
		}
	}
	for i := range d.counts {
		d.counts[i] += o.counts[i]
	}
	d.sum += o.sum
	d.n += o.n
	return nil
}

// SetCounts overwrites the distribution's state from a snapshot: raw
// per-bucket counts (length len(Bounds())+1, overflow last) and the
// value sum. The observation count is the counts' total. It is the
// scrape-time refresh primitive — an obs.Histogram loads an externally
// aggregated pipeline distribution the way Counter.Set loads a total.
func (d *Dist) SetCounts(counts []uint64, sum float64) error {
	if len(counts) != len(d.counts) {
		return fmt.Errorf("histogram: SetCounts with %d buckets, want %d", len(counts), len(d.counts))
	}
	var n uint64
	for i, c := range counts {
		d.counts[i] = c
		n += c
	}
	d.sum = sum
	d.n = n
	return nil
}

// Render draws the histogram as ASCII art, one row per ladder index
// (1-based labels, like the paper's figures).
func (r *Residency) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total %.1fs)\n", r.name, r.total.Seconds())
	for i := range r.buckets {
		pct := r.Percent(i)
		bar := strings.Repeat("#", int(pct/100*float64(width)+0.5))
		fmt.Fprintf(&b, "%3d |%-*s| %5.1f%%\n", i+1, width, bar, pct)
	}
	return b.String()
}
