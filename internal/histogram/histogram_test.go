package histogram

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBasicResidency(t *testing.T) {
	r := New("cpu", 18)
	r.Add(0, 3*time.Second)
	r.Add(9, 1*time.Second)
	if got := r.Total(); got != 4*time.Second {
		t.Fatalf("Total = %v", got)
	}
	if got := r.Percent(0); math.Abs(got-75) > 1e-9 {
		t.Fatalf("Percent(0) = %v", got)
	}
	if got := r.Percent(9); math.Abs(got-25) > 1e-9 {
		t.Fatalf("Percent(9) = %v", got)
	}
	if got := r.Percent(5); got != 0 {
		t.Fatalf("Percent(5) = %v", got)
	}
}

func TestPercentsSumTo100(t *testing.T) {
	r := New("cpu", 13)
	for i := 0; i < 13; i++ {
		r.Add(i, time.Duration(i+1)*time.Millisecond)
	}
	sum := 0.0
	for _, p := range r.Percents() {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("percents sum to %v", sum)
	}
}

func TestEmptyHistogram(t *testing.T) {
	r := New("empty", 5)
	if got := r.Percent(2); got != 0 {
		t.Fatalf("empty Percent = %v", got)
	}
	if got := r.TopShare(2); got != 0 {
		t.Fatalf("empty TopShare = %v", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	r := New("x", 3)
	for _, idx := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) should panic", idx)
				}
			}()
			r.Add(idx, time.Second)
		}()
	}
}

func TestZeroBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New("x", 0)
}

func TestNonPositiveDurationIgnored(t *testing.T) {
	r := New("x", 3)
	r.Add(1, 0)
	r.Add(1, -time.Second)
	if r.Total() != 0 {
		t.Fatal("non-positive durations should be ignored")
	}
}

func TestArgMax(t *testing.T) {
	r := New("x", 4)
	r.Add(1, time.Second)
	r.Add(3, 2*time.Second)
	if got := r.ArgMax(); got != 3 {
		t.Fatalf("ArgMax = %d", got)
	}
}

func TestTopShare(t *testing.T) {
	r := New("x", 4)
	r.Add(0, time.Second)
	r.Add(2, time.Second)
	r.Add(3, 2*time.Second)
	if got := r.TopShare(1); math.Abs(got-50) > 1e-9 {
		t.Fatalf("TopShare(1) = %v", got)
	}
	if got := r.TopShare(2); math.Abs(got-75) > 1e-9 {
		t.Fatalf("TopShare(2) = %v", got)
	}
	if got := r.TopShare(0); got != 0 {
		t.Fatalf("TopShare(0) = %v", got)
	}
	// k larger than bucket count covers everything.
	if got := r.TopShare(99); math.Abs(got-100) > 1e-9 {
		t.Fatalf("TopShare(99) = %v", got)
	}
}

func TestRender(t *testing.T) {
	r := New("cpu frequencies", 3)
	r.Add(0, time.Second)
	r.Add(2, 3*time.Second)
	out := r.Render(20)
	if !strings.Contains(out, "cpu frequencies") {
		t.Fatalf("render missing name:\n%s", out)
	}
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "25.0%") {
		t.Fatalf("render missing percentages:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Fatalf("render has %d lines, want 4:\n%s", lines, out)
	}
	// Default width path.
	if out := r.Render(0); !strings.Contains(out, "#") {
		t.Fatalf("default width render:\n%s", out)
	}
}
