package histogram

import (
	"fmt"
	"time"
)

// ResidencyState is a checkpointable snapshot of a Residency histogram.
// Durations are integer nanoseconds, so the round-trip is exact.
type ResidencyState struct {
	Buckets []time.Duration `json:"buckets_ns"`
	Total   time.Duration   `json:"total_ns"`
}

// State captures the histogram for a checkpoint.
func (r *Residency) State() ResidencyState {
	out := ResidencyState{Buckets: make([]time.Duration, len(r.buckets)), Total: r.total}
	copy(out.Buckets, r.buckets)
	return out
}

// Restore overwrites the histogram with a previously captured State. The
// bucket count must match the ladder the histogram was built over.
func (r *Residency) Restore(s ResidencyState) error {
	if len(s.Buckets) != len(r.buckets) {
		return fmt.Errorf("histogram %s: restore with %d buckets, have %d",
			r.name, len(s.Buckets), len(r.buckets))
	}
	copy(r.buckets, s.Buckets)
	r.total = s.Total
	return nil
}
