package thermal

import (
	"testing"
	"time"

	"aspeo/internal/perfmodel"
	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

func TestParamsValidation(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.RthCPerW = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero Rth accepted")
	}
	bad = DefaultParams()
	bad.ReleaseC = bad.TripC
	if err := bad.Validate(); err == nil {
		t.Fatal("trip <= release accepted")
	}
	bad = DefaultParams()
	bad.StepsPerHit = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted invalid params")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := DefaultParams()
	bad.TauSec = -1
	MustNew(bad)
}

// burner is a batch workload that saturates the CPU.
func burner() *workload.Spec {
	return &workload.Spec{
		Name: "burner",
		Phases: []workload.Phase{{
			Name: "burn", Kind: workload.Batch,
			Traits:      perfmodel.Traits{CPI: 1.2, BPI: 0.2, Par: 4, Overlap: 0.1},
			InstrBudget: 1e15,
		}},
		RunFor: time.Hour,
	}
}

func newRig(t *testing.T, p Params) (*sim.Phone, *sim.Engine, *Monitor) {
	t.Helper()
	ph, err := sim.NewPhone(sim.Config{
		Foreground: burner(), Load: workload.NoLoad, Seed: 1, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	m := MustNew(p)
	eng.MustRegister(m)
	return ph, eng, m
}

func TestHeatsUnderLoadCoolsWhenIdle(t *testing.T) {
	p := DefaultParams()
	p.TripC = 1000 // never throttle in this test
	p.ReleaseC = 999
	_, eng, m := newRig(t, p)
	pin := &sim.FixedConfigActor{FreqIdx: 17, BWIdx: 12}
	eng.MustRegister(pin)
	eng.Run(60*time.Second, false)
	hot := m.TempC()
	if hot < p.AmbientC+20 {
		t.Fatalf("full 4-core load only reached %.1f °C", hot)
	}
	// Drop to the lowest frequency: the junction must cool.
	pin.FreqIdx = 0
	eng.Run(60*time.Second, false)
	if m.TempC() > hot-10 {
		t.Fatalf("did not cool: %.1f -> %.1f", hot, m.TempC())
	}
}

func TestSteadyStateTemperature(t *testing.T) {
	// At ~1 W CPU power and 12 °C/W the junction should settle near
	// ambient + 12 °C.
	p := DefaultParams()
	p.TripC = 1000
	p.ReleaseC = 999
	_, eng, m := newRig(t, p)
	eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 8, BWIdx: 6})
	eng.Run(150*time.Second, false) // ≫ tau
	got := m.TempC()
	if got < p.AmbientC+3 || got > p.AmbientC+35 {
		t.Fatalf("steady temp %.1f °C implausible", got)
	}
	if m.PeakC() < got-0.5 {
		t.Fatalf("peak %.1f below final %.1f", m.PeakC(), got)
	}
}

func TestThrottlesAtTrip(t *testing.T) {
	p := DefaultParams()
	p.TripC = 45 // low trip so the test is quick
	p.ReleaseC = 40
	ph, eng, m := newRig(t, p)
	eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 17, BWIdx: 12})
	eng.Run(120*time.Second, false)
	if m.CapIdx() < 0 {
		t.Fatalf("never throttled at %.1f °C (trip %v)", m.TempC(), p.TripC)
	}
	if ph.CurFreqIdx() > m.CapIdx() {
		t.Fatalf("frequency %d above the cap %d", ph.CurFreqIdx(), m.CapIdx())
	}
	if m.ThrottledFor() == 0 {
		t.Fatal("no throttled time accounted")
	}
	// Mitigation must actually bound the temperature near the trip.
	if m.TempC() > p.TripC+8 {
		t.Fatalf("temperature ran away to %.1f °C despite mitigation", m.TempC())
	}
}

func TestCapReleasesWithHysteresis(t *testing.T) {
	p := DefaultParams()
	p.TripC = 45
	p.ReleaseC = 40
	ph, eng, m := newRig(t, p)
	pin := &sim.FixedConfigActor{FreqIdx: 17, BWIdx: 12}
	eng.MustRegister(pin)
	eng.Run(120*time.Second, false)
	if m.CapIdx() < 0 {
		t.Skip("did not throttle; nothing to release")
	}
	// Pin to the lowest frequency: heat source gone, cap must lift.
	pin.FreqIdx = 0
	eng.Run(240*time.Second, false)
	if m.CapIdx() >= 0 {
		t.Fatalf("cap %d never released at %.1f °C", m.CapIdx(), m.TempC())
	}
	// And the phone can reach the top again.
	ph.SetFreqIdx(17)
	if got := ph.CurFreqIdx(); got != 17 {
		t.Fatalf("freq stuck at %d after release", got)
	}
}

func TestThermalCapClampsSetFreq(t *testing.T) {
	ph, _, _ := newRig(t, DefaultParams())
	ph.SetThermalCapIdx(5)
	ph.SetFreqIdx(17)
	if got := ph.CurFreqIdx(); got != 5 {
		t.Fatalf("cap not enforced: %d", got)
	}
	if got := ph.ThermalCapIdx(); got != 5 {
		t.Fatalf("ThermalCapIdx = %d", got)
	}
	ph.SetThermalCapIdx(-1)
	ph.SetFreqIdx(17)
	if got := ph.CurFreqIdx(); got != 17 {
		t.Fatalf("cap not lifted: %d", got)
	}
}

func TestCapAppliesImmediately(t *testing.T) {
	ph, _, _ := newRig(t, DefaultParams())
	ph.SetFreqIdx(17)
	ph.SetThermalCapIdx(3)
	if got := ph.CurFreqIdx(); got != 3 {
		t.Fatalf("active cap did not pull the frequency down: %d", got)
	}
}
