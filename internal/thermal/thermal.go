// Package thermal models the SoC's junction temperature and the kernel's
// thermal mitigation (the msm_thermal driver the paper's platform runs).
//
// The temperature follows a first-order RC model driven by CPU power:
//
//	C_th · dT/dt = P_cpu − (T − T_amb)/R_th
//
// and a stepping throttler caps the CPU frequency ladder when the
// junction crosses its trip point, releasing the cap with hysteresis —
// the behaviour that silently distorts sustained-workload measurements
// on real phones, and one more reason the paper pinned its measurement
// conditions so carefully.
package thermal

import (
	"fmt"
	"math"
	"time"

	"aspeo/internal/platform"
)

// Params describe the thermal circuit and the mitigation policy.
type Params struct {
	AmbientC    float64 // ambient temperature
	RthCPerW    float64 // junction-to-ambient thermal resistance
	TauSec      float64 // RC time constant
	TripC       float64 // throttling starts above this junction temp
	ReleaseC    float64 // cap lifts one step below this temp (hysteresis)
	StepPeriod  time.Duration
	StepsPerHit int // ladder steps removed per evaluation over trip
}

// DefaultParams approximate a passively cooled phone SoC: ~25 °C ambient,
// ~12 °C/W to ambient, a ~20 s time constant, and a 75/70 °C trip window.
func DefaultParams() Params {
	return Params{
		AmbientC:    25,
		RthCPerW:    12,
		TauSec:      20,
		TripC:       75,
		ReleaseC:    70,
		StepPeriod:  250 * time.Millisecond,
		StepsPerHit: 1,
	}
}

// Validate checks physical plausibility.
func (p Params) Validate() error {
	if p.RthCPerW <= 0 || p.TauSec <= 0 {
		return fmt.Errorf("thermal: non-positive Rth/tau")
	}
	if p.TripC <= p.ReleaseC {
		return fmt.Errorf("thermal: trip %v must exceed release %v", p.TripC, p.ReleaseC)
	}
	if p.StepPeriod <= 0 || p.StepsPerHit < 1 {
		return fmt.Errorf("thermal: bad stepping policy")
	}
	return nil
}

// Monitor integrates the junction temperature and applies mitigation. It
// implements platform.Actor.
type Monitor struct {
	p Params

	tempC     float64
	capIdx    int // -1 = uncapped
	lastTick  time.Duration
	first     bool
	throttled time.Duration // cumulative time spent with a cap active
	peakC     float64
}

// New creates a monitor at ambient temperature.
func New(p Params) (*Monitor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{p: p, tempC: p.AmbientC, capIdx: -1, first: true, peakC: p.AmbientC}, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(p Params) *Monitor {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements platform.Actor.
func (m *Monitor) Name() string { return "msm_thermal" }

// Period implements platform.Actor.
func (m *Monitor) Period() time.Duration { return m.p.StepPeriod }

// TempC returns the current junction temperature.
func (m *Monitor) TempC() float64 { return m.tempC }

// PeakC returns the maximum junction temperature observed.
func (m *Monitor) PeakC() float64 { return m.peakC }

// CapIdx returns the active frequency cap, or -1.
func (m *Monitor) CapIdx() int { return m.capIdx }

// ThrottledFor returns cumulative time spent with mitigation active.
func (m *Monitor) ThrottledFor() time.Duration { return m.throttled }

// Tick implements platform.Actor: integrate the RC model over the
// elapsed interval and step the mitigation.
func (m *Monitor) Tick(now time.Duration, dev platform.Device) {
	if m.first {
		m.first = false
		m.lastTick = now
		return
	}
	dt := (now - m.lastTick).Seconds()
	m.lastTick = now
	if dt <= 0 {
		return
	}
	// Exact solution of the first-order ODE over dt at constant power.
	steady := m.p.AmbientC + dev.LastCPUPowerW()*m.p.RthCPerW
	alpha := 1 - math.Exp(-dt/m.p.TauSec)
	m.tempC += (steady - m.tempC) * alpha
	if m.tempC > m.peakC {
		m.peakC = m.tempC
	}

	switch {
	case m.tempC >= m.p.TripC:
		// Step the cap down from the current operating point.
		cur := dev.CurFreqIdx()
		next := cur - m.p.StepsPerHit
		if m.capIdx >= 0 && m.capIdx-m.p.StepsPerHit < next {
			next = m.capIdx - m.p.StepsPerHit
		}
		if next < 0 {
			next = 0
		}
		m.capIdx = next
		dev.SetThermalCapIdx(m.capIdx)
	case m.tempC <= m.p.ReleaseC && m.capIdx >= 0:
		// Release one step at a time; fully uncap at the top.
		m.capIdx += m.p.StepsPerHit
		if m.capIdx >= len(dev.SoC().CPUFreqs)-1 {
			m.capIdx = -1
		}
		dev.SetThermalCapIdx(m.capIdx)
	}
	if m.capIdx >= 0 {
		m.throttled += time.Duration(dt * float64(time.Second))
	}
}
