package detrand

import (
	"math/rand"
	"testing"
)

// TestStreamIdentity proves the counting source is invisible: a
// rand.Rand over detrand produces the exact stream of one over the bare
// source, across every derived method the simulator uses.
func TestStreamIdentity(t *testing.T) {
	for _, seed := range []int64{1, 101, 424243, -7} {
		ref := rand.New(rand.NewSource(seed))
		got, _ := New(seed)
		for i := 0; i < 10_000; i++ {
			switch i % 4 {
			case 0:
				if a, b := ref.Float64(), got.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, b, a)
				}
			case 1:
				if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, b, a)
				}
			case 2:
				if a, b := ref.Int63(), got.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, b, a)
				}
			case 3:
				if a, b := ref.Uint64(), got.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, b, a)
				}
			}
		}
	}
}

// TestRestoreResumesStream checkpoints the source mid-stream and proves
// a fresh source restored from (seed, draws) continues identically.
func TestRestoreResumesStream(t *testing.T) {
	orig, src := New(555)
	var prefix []float64
	for i := 0; i < 1234; i++ {
		prefix = append(prefix, orig.NormFloat64())
	}
	seed, draws := src.State()
	if seed != 555 {
		t.Fatalf("seed = %d, want 555", seed)
	}
	if draws == 0 {
		t.Fatal("draw count did not advance")
	}

	restoredRand, restoredSrc := New(0)
	if err := restoredSrc.Restore(seed, draws); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		a, b := orig.NormFloat64(), restoredRand.NormFloat64()
		if a != b {
			t.Fatalf("draw %d after restore: %v != %v", i, b, a)
		}
	}
	_ = prefix
}

// TestRestoreRejectsImplausibleCount guards the replay loop.
func TestRestoreRejectsImplausibleCount(t *testing.T) {
	s := NewSource(1)
	if err := s.Restore(1, 1<<41); err == nil {
		t.Fatal("expected error for implausible draw count")
	}
}
