// Package detrand provides a deterministic, checkpointable random
// source: a math/rand Source64 that counts how many raw draws it has
// served. The (seed, draws) pair fully determines the stream position,
// so a consumer restored from a checkpoint recreates the source and
// replays the counted draws to land bit-exactly where the original
// left off.
//
// The wrapper delegates to rand.NewSource(seed), which has implemented
// rand.Source64 since Go 1.8 and advances exactly one internal position
// per Int63/Uint64 call — so counting source-level draws is exact
// regardless of how many draws a derived method (Float64, NormFloat64,
// Poisson inversion, ...) consumes, and a *rand.Rand built over this
// source produces the identical stream to one built over the bare
// source.
package detrand

import (
	"fmt"
	"math/rand"
)

// Source is a counting rand.Source64.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// New returns a *rand.Rand over a fresh counting source, plus the source
// itself for State/Restore access. The stream is identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) (*rand.Rand, *Source) {
	s := NewSource(seed)
	return rand.New(s), s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source. Reseeding resets the draw count: the
// stream position is again fully described by (seed, draws).
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// State returns the seed and the number of raw draws served so far.
func (s *Source) State() (seed int64, draws uint64) { return s.seed, s.draws }

// Restore rewinds the source to the exact position described by a
// State() pair: it reseeds and replays draws raw reads. Replay is O(n)
// but n is bounded by the draws a session makes between start and
// checkpoint (well under a million for the longest runs), and each raw
// draw is a few additions.
func (s *Source) Restore(seed int64, draws uint64) error {
	if draws > 1<<40 {
		return fmt.Errorf("detrand: implausible draw count %d", draws)
	}
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
	return nil
}
