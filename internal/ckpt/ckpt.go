// Package ckpt persists session checkpoints durably: a versioned,
// checksummed JSON envelope written atomically (temp file + fsync +
// rename), so a reader never observes a partial or torn checkpoint —
// a crash mid-write leaves either the previous complete file or none.
//
// All filesystem access goes through the FS interface so the chaos
// harness (internal/fault) can inject write failures at chosen
// ordinals without touching the real disk path.
package ckpt

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Version is the current checkpoint format version. Loaders reject
// other versions loudly — a checkpoint is a contract about bit-exact
// restoration, and guessing across format changes would break it
// silently.
const Version = 1

// Envelope is the on-disk frame around a checkpoint payload.
type Envelope struct {
	Version int `json:"version"`
	// Kind names the payload schema (e.g. "aspeo/session-cell").
	Kind string `json:"kind"`
	// Meta is caller-defined identity (session id, spec, attempt) used
	// to verify a checkpoint belongs to the cell being restored.
	Meta json.RawMessage `json:"meta,omitempty"`
	// Cell is the payload.
	Cell json.RawMessage `json:"cell"`
	// CRC is the IEEE CRC-32 of the Cell bytes.
	CRC uint32 `json:"crc32"`
}

// File is the writable-file surface Save needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations checkpointing performs.
// OS is the real implementation; fault.ChaosFS wraps one to inject
// failures.
type FS interface {
	MkdirAll(dir string) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the names (not paths) of the directory's entries.
	ReadDir(dir string) ([]string, error)
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Save atomically writes a checkpoint: marshal the envelope, write it
// to a temp file in the target directory, fsync, close, rename over
// path. On any failure the temp file is removed and the previous
// checkpoint at path (if any) is left intact.
func Save(fsys FS, path, kind string, meta, cell any) error {
	cellRaw, err := json.Marshal(cell)
	if err != nil {
		return fmt.Errorf("ckpt: marshal cell: %w", err)
	}
	env := Envelope{Version: Version, Kind: kind, Cell: cellRaw, CRC: crc32.ChecksumIEEE(cellRaw)}
	if meta != nil {
		if env.Meta, err = json.Marshal(meta); err != nil {
			return fmt.Errorf("ckpt: marshal meta: %w", err)
		}
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("ckpt: marshal envelope: %w", err)
	}
	raw = append(raw, '\n')

	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	f, err := fsys.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if _, err := f.Write(raw); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	return nil
}

// Load reads a checkpoint and unmarshals its meta and cell into the
// given pointers (either may be nil to skip). It rejects version and
// kind mismatches and payload corruption (CRC).
func Load(fsys FS, path, kind string, meta, cell any) error {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	if env.Version != Version {
		return fmt.Errorf("ckpt: read %s: version %d, want %d", path, env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("ckpt: read %s: kind %q, want %q", path, env.Kind, kind)
	}
	if got := crc32.ChecksumIEEE(env.Cell); got != env.CRC {
		return fmt.Errorf("ckpt: read %s: payload CRC %08x, recorded %08x (corrupt checkpoint)", path, got, env.CRC)
	}
	if meta != nil && env.Meta != nil {
		if err := json.Unmarshal(env.Meta, meta); err != nil {
			return fmt.Errorf("ckpt: read %s meta: %w", path, err)
		}
	}
	if cell != nil {
		if err := json.Unmarshal(env.Cell, cell); err != nil {
			return fmt.Errorf("ckpt: read %s cell: %w", path, err)
		}
	}
	return nil
}
