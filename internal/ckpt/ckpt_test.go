package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	A int     `json:"a"`
	B string  `json:"b"`
	C float64 `json:"c"`
}

type meta struct {
	ID string `json:"id"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.ckpt.json")
	in := payload{A: 7, B: "x", C: 0.30000000000000004}
	m := meta{ID: "s1"}
	if err := Save(OS{}, path, "test/payload", m, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	var mOut meta
	if err := Load(OS{}, path, "test/payload", &mOut, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
	if mOut != m {
		t.Fatalf("meta round trip: got %+v want %+v", mOut, m)
	}
	// No temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want just the checkpoint", len(ents))
	}
}

func TestLoadRejectsKindVersionCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.ckpt.json")
	if err := Save(OS{}, path, "test/payload", nil, payload{A: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Load(OS{}, path, "other/kind", nil, &payload{}); err == nil ||
		!strings.Contains(err.Error(), "kind") {
		t.Fatalf("kind mismatch not rejected: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(raw), `"a":1`, `"a":2`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(OS{}, path, "test/payload", nil, &payload{}); err == nil ||
		!strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corruption not rejected: %v", err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(raw), `"version":1`, `"version":99`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(OS{}, path, "test/payload", nil, &payload{}); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
}

// failFS fails the Nth write and verifies atomicity: a failed save
// leaves the previous checkpoint intact and no temp files behind.
type failFS struct {
	OS
	failWrites bool
}

type failFile struct {
	File
	fail bool
}

func (f failFile) Write(p []byte) (int, error) {
	if f.fail {
		return 0, fmt.Errorf("injected write failure")
	}
	return f.File.Write(p)
}

func (f failFS) CreateTemp(dir, pattern string) (File, error) {
	inner, err := f.OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return failFile{File: inner, fail: f.failWrites}, nil
}

func TestFailedSaveLeavesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.ckpt.json")
	if err := Save(OS{}, path, "test/payload", nil, payload{A: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Save(failFS{failWrites: true}, path, "test/payload", nil, payload{A: 2}); err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	var out payload
	if err := Load(OS{}, path, "test/payload", nil, &out); err != nil {
		t.Fatalf("previous checkpoint unreadable after failed save: %v", err)
	}
	if out.A != 1 {
		t.Fatalf("previous checkpoint clobbered: got %+v", out)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp droppings after failed save: %d entries", len(ents))
	}
}
