package sysfs

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// FuzzClean checks the path canonicalizer's invariants on arbitrary
// input: exactly one leading slash, no trailing slash (except the root
// itself), no surrounding whitespace, and idempotence — a canonical path
// canonicalizes to itself, which is what lets every FS entry point call
// clean unconditionally.
func FuzzClean(f *testing.F) {
	for _, seed := range []string{
		"", "/", "//", "a", "/a", "a/", "/a/b/c", "  /a/b  ", "///x///",
		CPUScalingGovernor, DevFreqSetFreq, "\t/weird path/\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		got := clean(path)
		if !strings.HasPrefix(got, "/") {
			t.Fatalf("clean(%q) = %q: no leading slash", path, got)
		}
		if strings.HasPrefix(got, "//") {
			t.Fatalf("clean(%q) = %q: doubled leading slash", path, got)
		}
		if got != "/" && strings.HasSuffix(got, "/") {
			t.Fatalf("clean(%q) = %q: trailing slash", path, got)
		}
		if strings.TrimSpace(got) != got {
			t.Fatalf("clean(%q) = %q: surrounding whitespace survived", path, got)
		}
		if again := clean(got); again != got {
			t.Fatalf("clean not idempotent: %q -> %q -> %q", path, got, again)
		}
	})
}

// A write rejected by the file's hook must leave the old value intact and
// atomically visible to concurrent readers — no torn or transient states.
// Run under -race this also proves the lock discipline of the
// hook-outside-lock write path.
func TestRejectedWriteKeepsOldValueUnderReaders(t *testing.T) {
	fs := New()
	const path = "/x/guarded"
	const good = "steady"
	fs.Create(path, good, true)
	rejection := errors.New("nope")
	fs.OnWrite(path, func(_, _, new string) error {
		if new != good {
			return rejection
		}
		return nil
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := fs.Read(path)
				if err != nil {
					t.Errorf("read failed: %v", err)
					return
				}
				if v != good {
					t.Errorf("reader observed %q, want %q", v, good)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if err := fs.Write(path, "corrupt"); !errors.Is(err, rejection) {
			t.Fatalf("write %d: err = %v, want hook rejection", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if v, _ := fs.Read(path); v != good {
		t.Fatalf("value after rejected writes = %q", v)
	}
}

// Same invariant for the tree-wide interceptor (the fault-injection
// surface): a rejected write never mutates the file, concurrent writers
// and readers included.
func TestInterceptorRejectionConcurrent(t *testing.T) {
	fs := New()
	const path = "/x/flaky"
	fs.Create(path, "0", true)
	fs.SetInterceptor(func(p, value string) error {
		if value == "bad" {
			return ErrBusy
		}
		return nil
	})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := fs.Write(path, "bad"); !errors.Is(err, ErrBusy) {
					t.Errorf("intercepted write passed: %v", err)
					return
				}
				if err := fs.Write(path, "1"); err != nil {
					t.Errorf("clean write failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := fs.Read(path); v != "1" {
		t.Fatalf("value = %q after concurrent writes, want %q", v, "1")
	}
}
