package sysfs

import "fmt"

// Export returns the stored values of every static file in the tree,
// for a session checkpoint. Dynamic files (read hooks) are excluded:
// their content derives from simulator state at read time, so they have
// nothing to store. Write hooks and the interceptor are wiring, not
// state, and are likewise not captured.
func (fs *FS) Export() map[string]string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[string]string, len(fs.files))
	for p, f := range fs.files {
		if f.readHook != nil {
			continue
		}
		out[p] = f.value
	}
	return out
}

// RestoreValues force-sets exported values back onto the tree without
// running hooks or permission checks — the files already exist with
// their hooks wired (rebuilt by device construction, plus any runtime
// files like governor tunables recreated during actor restore), so only
// the values need to land. A path missing from the tree is an error:
// it means the restored cell was not rebuilt the same way the
// checkpointed one was, and continuing would silently diverge.
func (fs *FS) RestoreValues(values map[string]string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for p, v := range values {
		f, ok := fs.files[p]
		if !ok {
			return fmt.Errorf("sysfs: restore value for missing file %q", p)
		}
		if f.readHook != nil {
			return fmt.Errorf("sysfs: restore value for dynamic file %q", p)
		}
		f.value = v
	}
	return nil
}
