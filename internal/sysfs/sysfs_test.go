package sysfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestReadMissing(t *testing.T) {
	fs := New()
	if _, err := fs.Read("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("expected ErrNotExist, got %v", err)
	}
}

func TestCreateReadWrite(t *testing.T) {
	fs := New()
	fs.Create(CPUScalingGovernor, "interactive", true)
	got, err := fs.Read(CPUScalingGovernor)
	if err != nil || got != "interactive" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if err := fs.Write(CPUScalingGovernor, "userspace\n"); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read(CPUScalingGovernor)
	if got != "userspace" {
		t.Fatalf("value after write = %q, want trimmed %q", got, "userspace")
	}
}

func TestReadOnlyRejectsWrite(t *testing.T) {
	fs := New()
	fs.Create(CPUAvailableFreqs, "300000 422400", false)
	if err := fs.Write(CPUAvailableFreqs, "x"); !errors.Is(err, ErrPermission) {
		t.Fatalf("expected ErrPermission, got %v", err)
	}
}

func TestWriteMissing(t *testing.T) {
	fs := New()
	if err := fs.Write("/nope", "1"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("expected ErrNotExist, got %v", err)
	}
}

func TestPathCanonicalization(t *testing.T) {
	fs := New()
	fs.Create("foo/bar/", "v", true)
	if got, err := fs.Read("/foo/bar"); err != nil || got != "v" {
		t.Fatalf("canonicalized read = %q, %v", got, err)
	}
	if !fs.Exists("  /foo/bar ") {
		t.Fatal("Exists should canonicalize")
	}
}

func TestWriteHookObservesAndRejects(t *testing.T) {
	fs := New()
	fs.Create(CPUScalingSetSpeed, "300000", true)
	var sawOld, sawNew string
	fs.OnWrite(CPUScalingSetSpeed, func(path, old, new string) error {
		sawOld, sawNew = old, new
		if new == "999" {
			return ErrInvalid
		}
		return nil
	})
	if err := fs.Write(CPUScalingSetSpeed, "422400"); err != nil {
		t.Fatal(err)
	}
	if sawOld != "300000" || sawNew != "422400" {
		t.Fatalf("hook saw (%q,%q)", sawOld, sawNew)
	}
	if err := fs.Write(CPUScalingSetSpeed, "999"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("expected hook rejection, got %v", err)
	}
	if got, _ := fs.Read(CPUScalingSetSpeed); got != "422400" {
		t.Fatalf("rejected write must keep old value, got %q", got)
	}
}

func TestOnWriteMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().OnWrite("/nope", func(string, string, string) error { return nil })
}

func TestDynamicFile(t *testing.T) {
	fs := New()
	n := 0
	fs.CreateDynamic(CPUInfoCurFreq, func(string) string {
		n++
		return fmt.Sprintf("%d", n*100)
	})
	if got, _ := fs.Read(CPUInfoCurFreq); got != "100" {
		t.Fatalf("first dynamic read = %q", got)
	}
	if got, _ := fs.Read(CPUInfoCurFreq); got != "200" {
		t.Fatalf("second dynamic read = %q", got)
	}
}

func TestSetBypassesHooks(t *testing.T) {
	fs := New()
	fs.Create(CPUScalingCurFreq, "300000", false)
	fs.Set(CPUScalingCurFreq, "2649600")
	if got, _ := fs.Read(CPUScalingCurFreq); got != "2649600" {
		t.Fatalf("Set did not take: %q", got)
	}
}

func TestSetMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Set("/nope", "1")
}

func TestList(t *testing.T) {
	fs := New()
	fs.Create(CPUScalingGovernor, "", true)
	fs.Create(CPUScalingSetSpeed, "", true)
	fs.Create(DevFreqGovernor, "", true)
	got := fs.List(CPUFreqDir)
	if len(got) != 2 {
		t.Fatalf("List(%q) = %v", CPUFreqDir, got)
	}
	if got[0] != CPUScalingGovernor {
		t.Fatalf("List not sorted: %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	fs.Create("/x", "0", true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				fs.Write("/x", fmt.Sprintf("%d", i*100+j))
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				fs.Read("/x")
			}
		}()
	}
	wg.Wait()
}
