// Package sysfs emulates the slice of the Linux sysfs file tree that DVFS
// software touches on an Android device: the cpufreq policy directory and
// the devfreq device directory.
//
// On the phone, both the stock governors' tunables and our controller's
// actuation happen through reads and writes of small text files such as
//
//	/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor
//	/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed
//	/sys/class/devfreq/soc:qcom,cpubw/governor
//
// Re-creating that file protocol keeps the simulated stack honest: the
// controller under test issues the same writes it would issue on the
// device, and the simulated kernel reacts through write hooks exactly the
// way cpufreq/devfreq drivers do.
package sysfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Errors returned by FS operations.
var (
	ErrNotExist   = errors.New("sysfs: no such file")
	ErrPermission = errors.New("sysfs: permission denied")
	ErrInvalid    = errors.New("sysfs: invalid argument")
	ErrBusy       = errors.New("sysfs: device or resource busy")
)

// WriteHook observes or intercepts a write. It receives the old and new
// values and may return an error to reject the write (the file keeps its
// old value), mirroring how kernel store() callbacks return -EINVAL.
type WriteHook func(path, old, new string) error

// ReadHook produces the current value of a dynamic file (e.g. cur_freq),
// overriding the stored value.
type ReadHook func(path string) string

// Interceptor observes every Write before the file's own write hook runs
// and may reject it, leaving the old value in place — the way a kernel
// store() callback returns -EBUSY or -EINVAL transiently regardless of
// the value written. One interceptor serves the whole tree; the fault
// injector installs it.
type Interceptor func(path, value string) error

// file is one sysfs node.
type file struct {
	value     string
	writable  bool
	writeHook WriteHook
	readHook  ReadHook
}

// FS is an in-memory sysfs tree. It is safe for concurrent use.
type FS struct {
	mu        sync.RWMutex
	files     map[string]*file
	intercept Interceptor
}

// New returns an empty tree.
func New() *FS {
	return &FS{files: make(map[string]*file)}
}

// clean canonicalizes a path: exactly one leading slash, no trailing
// slash, no surrounding whitespace. Trimming slashes can expose more
// whitespace ("a /" → "a "), so both are trimmed as one predicate, which
// makes clean idempotent.
//
// Already-canonical paths — every constant in this package, i.e. every
// path on the actuation hot path — are returned as-is without
// allocating: a path that starts with '/' whose second and last bytes
// are plain ASCII outside the trim set cannot lose anything to either
// trim, so the result would be the input verbatim.
func clean(path string) string {
	if n := len(path); n >= 2 && path[0] == '/' &&
		!cleanTrimByte(path[1]) && !cleanTrimByte(path[n-1]) {
		return path
	}
	return "/" + strings.TrimFunc(path, func(r rune) bool {
		return r == '/' || unicode.IsSpace(r)
	})
}

// cleanTrimByte reports whether b, as a single byte, could be trimmed by
// clean (or could begin a multi-byte rune that might be — anything
// ≥ utf8.RuneSelf is conservatively sent to the slow path).
func cleanTrimByte(b byte) bool {
	return b == '/' || b == ' ' || ('\t' <= b && b <= '\r') || b >= utf8.RuneSelf
}

// Create registers a file. Writable files accept Write; read-only files
// reject it with ErrPermission, like mode 0444 sysfs attributes.
func (fs *FS) Create(path, initial string, writable bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[clean(path)] = &file{value: initial, writable: writable}
}

// CreateDynamic registers a read-only file whose content is produced by
// hook at read time (like cpuinfo_cur_freq reading the hardware).
func (fs *FS) CreateDynamic(path string, hook ReadHook) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[clean(path)] = &file{readHook: hook}
}

// OnWrite attaches a write hook to an existing file. It panics if the file
// does not exist, because hooks are wired at device construction time and
// a missing file is a programming error.
func (fs *FS) OnWrite(path string, hook WriteHook) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[clean(path)]
	if !ok {
		panic(fmt.Sprintf("sysfs: OnWrite on missing file %q", path))
	}
	f.writeHook = hook
}

// SetInterceptor installs (or, with nil, removes) the tree-wide write
// interceptor. An interceptor error aborts the write before the file's
// own hook runs and the file keeps its old value.
func (fs *FS) SetInterceptor(fn Interceptor) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.intercept = fn
}

// Exists reports whether path is registered.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[clean(path)]
	return ok
}

// Read returns the file's value.
func (fs *FS) Read(path string) (string, error) {
	p := clean(path)
	fs.mu.RLock()
	f, ok := fs.files[p]
	if !ok {
		fs.mu.RUnlock()
		return "", fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if hook := f.readHook; hook != nil {
		fs.mu.RUnlock()
		return hook(p), nil
	}
	v := f.value
	fs.mu.RUnlock()
	return v, nil
}

// Write sets the file's value, running its write hook first. The value is
// trimmed of surrounding whitespace, as `echo val > file` would leave a
// newline.
func (fs *FS) Write(path, value string) error {
	p := clean(path)
	value = strings.TrimSpace(value)
	fs.mu.Lock()
	f, ok := fs.files[p]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if !f.writable {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPermission, path)
	}
	old := f.value
	hook := f.writeHook
	icept := fs.intercept
	fs.mu.Unlock()

	if icept != nil {
		if err := icept(p, value); err != nil {
			return fmt.Errorf("sysfs: write %s=%q failed: %w", path, value, err)
		}
	}
	if hook != nil {
		if err := hook(p, old, value); err != nil {
			return fmt.Errorf("sysfs: write %s=%q rejected: %w", path, value, err)
		}
	}
	fs.mu.Lock()
	f.value = value
	fs.mu.Unlock()
	return nil
}

// Set force-sets a value without running hooks or permission checks; for
// the kernel side (the simulation) to publish state.
func (fs *FS) Set(path, value string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[clean(path)]
	if !ok {
		panic(fmt.Sprintf("sysfs: Set on missing file %q", path))
	}
	f.value = value
}

// List returns all registered paths under prefix, sorted.
func (fs *FS) List(prefix string) []string {
	prefix = clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Canonical paths of the Nexus 6 DVFS tree. All four CPUs share one
// policy, so like the paper we expose cpu0's policy directory only.
const (
	CPUFreqDir = "/sys/devices/system/cpu/cpu0/cpufreq"
	DevFreqDir = "/sys/class/devfreq/soc:qcom,cpubw"

	CPUScalingGovernor  = CPUFreqDir + "/scaling_governor"
	CPUScalingSetSpeed  = CPUFreqDir + "/scaling_setspeed"
	CPUScalingCurFreq   = CPUFreqDir + "/scaling_cur_freq"
	CPUScalingMinFreq   = CPUFreqDir + "/scaling_min_freq"
	CPUScalingMaxFreq   = CPUFreqDir + "/scaling_max_freq"
	CPUAvailableFreqs   = CPUFreqDir + "/scaling_available_frequencies"
	CPUAvailableGovs    = CPUFreqDir + "/scaling_available_governors"
	CPUInfoCurFreq      = CPUFreqDir + "/cpuinfo_cur_freq"
	DevFreqGovernor     = DevFreqDir + "/governor"
	DevFreqCurFreq      = DevFreqDir + "/cur_freq"
	DevFreqSetFreq      = DevFreqDir + "/userspace/set_freq"
	DevFreqMinFreq      = DevFreqDir + "/min_freq"
	DevFreqMaxFreq      = DevFreqDir + "/max_freq"
	DevFreqAvailFreqs   = DevFreqDir + "/available_frequencies"
	DevFreqAvailGovs    = DevFreqDir + "/available_governors"
	MPDecisionEnabled   = "/sys/module/msm_mpdecision/enabled"
	TouchBoostEnabled   = "/sys/module/msm_performance/touchboost"
	ProcLoadAvg         = "/proc/loadavg"
	ProcMemInfoFreeMB   = "/proc/meminfo_free_mb" // simplified meminfo
	PerfInstructionsRaw = "/sys/kernel/debug/perf/instructions"
)
