package loadmodel

import (
	"math"
	"strings"
	"testing"
	"time"

	"aspeo/internal/profile"
	"aspeo/internal/workload"
)

func TestCharacterizeValidation(t *testing.T) {
	if _, err := Characterize(workload.NoLoad, "x", 1, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestCharacterizeOrdersLoads(t *testing.T) {
	window := 12 * time.Second
	nl, err := Characterize(workload.NoLoad, "probe", 1, window)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := Characterize(workload.BaselineLoad, "probe", 1, window)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := Characterize(workload.HeavierLoad, "probe", 1, window)
	if err != nil {
		t.Fatal(err)
	}
	if !(nl.BGGips < bl.BGGips && bl.BGGips < hl.BGGips) {
		t.Fatalf("background GIPS not ordered: NL %.4f, BL %.4f, HL %.4f",
			nl.BGGips, bl.BGGips, hl.BGGips)
	}
	if !(nl.BGPower < bl.BGPower && bl.BGPower < hl.BGPower) {
		t.Fatalf("background power not ordered: NL %.3f, BL %.3f, HL %.3f",
			nl.BGPower, bl.BGPower, hl.BGPower)
	}
}

func syntheticTable() *profile.Table {
	t := &profile.Table{App: "x", Load: "BL", BaseGIPS: 0.2}
	for i := 0; i < 5; i++ {
		g := 0.2 + 0.1*float64(i)
		t.Entries = append(t.Entries, profile.Entry{
			FreqIdx: i, BWIdx: 0, GIPS: g, PowerW: 2 + 0.3*float64(i),
			Speedup: g / 0.2,
		})
	}
	return t
}

func TestAdaptShiftsAndRenormalizes(t *testing.T) {
	from := Footprint{Load: workload.BaselineLoad, BGGips: 0.08, BGPower: 0.3}
	to := Footprint{Load: workload.NoLoad, BGGips: 0.02, BGPower: 0.1}
	in := syntheticTable()
	out, err := Adapt(in, from, to)
	if err != nil {
		t.Fatal(err)
	}
	// GIPS shift −0.06, power shift −0.2, base 0.14.
	if math.Abs(out.BaseGIPS-0.14) > 1e-12 {
		t.Fatalf("adapted base = %v", out.BaseGIPS)
	}
	if math.Abs(out.Entries[0].GIPS-0.14) > 1e-12 {
		t.Fatalf("adapted GIPS[0] = %v", out.Entries[0].GIPS)
	}
	if math.Abs(out.Entries[0].PowerW-1.8) > 1e-12 {
		t.Fatalf("adapted power[0] = %v", out.Entries[0].PowerW)
	}
	if math.Abs(out.Entries[0].Speedup-1.0) > 1e-12 {
		t.Fatalf("adapted speedup[0] = %v (must renormalize to 1)", out.Entries[0].Speedup)
	}
	if !strings.Contains(out.Load, "model-adapted") {
		t.Fatalf("adapted load label = %q", out.Load)
	}
	// The input table must be untouched.
	if in.Entries[0].GIPS != 0.2 {
		t.Fatal("Adapt mutated its input")
	}
}

func TestAdaptRejectsDegenerate(t *testing.T) {
	from := Footprint{BGGips: 0.5, BGPower: 3.0}
	to := Footprint{BGGips: 0.0, BGPower: 0.0}
	// Shifting down by 0.5 GIPS drives entries negative.
	if _, err := Adapt(syntheticTable(), from, to); err == nil {
		t.Fatal("degenerate adaptation accepted")
	}
	bad := syntheticTable()
	bad.Entries = nil
	if _, err := Adapt(bad, Footprint{}, Footprint{}); err == nil {
		t.Fatal("invalid table accepted")
	}
}

func TestAdaptTarget(t *testing.T) {
	from := Footprint{BGGips: 0.08}
	to := Footprint{BGGips: 0.02}
	if got := AdaptTarget(0.5, from, to); math.Abs(got-0.44) > 1e-12 {
		t.Fatalf("adapted target = %v", got)
	}
	// Degenerate shifts fall back to the original target.
	if got := AdaptTarget(0.05, from, to); got != 0.05 {
		t.Fatalf("degenerate target = %v", got)
	}
}

// End-to-end: adapting a BL profile to NL must land closer to a real NL
// profile than the stale BL profile does (the paper's claim that the
// model approach can replace re-profiling).
func TestAdaptApproximatesReprofiling(t *testing.T) {
	opts := profile.Options{
		Load: workload.BaselineLoad, Mode: profile.Coordinated,
		Seeds: []int64{11}, Warmup: 2 * time.Second, Window: 12 * time.Second,
	}
	spec := workload.MXPlayer()
	blTab, err := profile.Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Load = workload.NoLoad
	nlTab, err := profile.Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	blFp, err := Characterize(workload.BaselineLoad, spec.Name, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nlFp, err := Characterize(workload.NoLoad, spec.Name, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := Adapt(blTab, blFp, nlFp)
	if err != nil {
		t.Fatal(err)
	}

	rms := func(a, b *profile.Table) float64 {
		var s float64
		n := 0
		for i := range a.Entries {
			d := a.Entries[i].GIPS - b.Entries[i].GIPS
			s += d * d
			n++
		}
		return math.Sqrt(s / float64(n))
	}
	stale := rms(blTab, nlTab)
	modeled := rms(adapted, nlTab)
	if modeled >= stale {
		t.Fatalf("model-adapted table no closer to re-profiled truth: %.4f vs %.4f", modeled, stale)
	}
}
