// Package loadmodel implements the paper's §V-C future-work proposal:
//
//	"We envision a method which involves a power and performance model
//	 which uses the system load as the variable parameter. At runtime,
//	 the controller can track the background load and, using the models,
//	 generate power and performance data for different configurations.
//	 Such an approach would not require additional profiling."
//
// The model is deliberately first-order, matching the paper's own
// observation that "the performance and power data for NL has the same
// trend as that for BL but with a small increase in the absolute value":
// each load condition is characterized once by its background footprint
// (the GIPS and watts the background alone contributes at a reference
// configuration), and a profile table measured under one load is adapted
// to another by shifting performance and power by the footprint delta
// and re-normalizing the speedups.
package loadmodel

import (
	"fmt"
	"time"

	"aspeo/internal/perfmodel"
	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

// Footprint is one load condition's measured background contribution.
type Footprint struct {
	Load    workload.BGLoad
	BGGips  float64 // background instructions per second at the reference config
	BGPower float64 // device watts at the reference config with background only
}

// referenceConfig is where footprints are measured: a mid-ladder point
// with headroom for every background mix.
var referenceConfig = sim.FixedConfigActor{FreqIdx: 8, BWIdx: 4} // (1.2672 GHz, 3051 MBps)

// probeSpec returns a negligible foreground: characterization wants the
// background alone, but the simulator (like a real phone) always has a
// foreground app. The probe's own footprint cancels in deltas. It
// carries the *name* of the app being modelled, because the background
// set is foreground-dependent (running Spotify in the foreground removes
// the background Spotify instance).
func probeSpec(foreground string) *workload.Spec {
	return &workload.Spec{
		Name: foreground,
		Phases: []workload.Phase{{
			Name: "probe-idle", Kind: workload.Paced,
			Traits:   perfmodel.Traits{CPI: 2.0, BPI: 1.0, Par: 1.0, Overlap: 0.05},
			Duration: time.Hour, DemandGIPS: 0.002,
		}},
		Loop: true, RunFor: time.Hour,
	}
}

// Characterize measures a load condition's footprint: one short pinned
// run instead of a whole profiling campaign.
// The foreground app's name selects the background set it would actually
// run against.
func Characterize(load workload.BGLoad, foreground string, seed int64, window time.Duration) (Footprint, error) {
	if window <= 0 {
		return Footprint{}, fmt.Errorf("loadmodel: non-positive window")
	}
	ph, err := sim.NewPhone(sim.Config{
		Foreground: probeSpec(foreground), Load: load, Seed: seed,
		ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		return Footprint{}, err
	}
	eng := sim.NewEngine(ph)
	ref := referenceConfig
	eng.MustRegister(&ref)
	eng.Run(2*time.Second, false)
	st := eng.Run(window, false)
	return Footprint{Load: load, BGGips: st.GIPS, BGPower: st.AvgPowerW}, nil
}

// Adapt rewrites a profile table measured under `from` so it approximates
// what profiling under `to` would have produced, without re-running the
// application: every row's GIPS and power shift by the background
// footprint delta, and speedups re-normalize against the shifted base.
// The table's Load field records the synthetic condition.
func Adapt(t *profile.Table, from, to Footprint) (*profile.Table, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	dG := to.BGGips - from.BGGips
	dP := to.BGPower - from.BGPower

	base := t.BaseGIPS + dG
	if base <= 0 {
		return nil, fmt.Errorf("loadmodel: adapted base speed %v invalid", base)
	}
	out := &profile.Table{
		App:      t.App,
		Load:     to.Load.String() + " (model-adapted from " + from.Load.String() + ")",
		Mode:     t.Mode,
		BaseGIPS: base,
	}
	for _, e := range t.Entries {
		g := e.GIPS + dG
		p := e.PowerW + dP
		if g <= 0 || p <= 0 {
			return nil, fmt.Errorf("loadmodel: entry (%d,%d) adapted to non-positive values", e.FreqIdx, e.BWIdx)
		}
		out.Entries = append(out.Entries, profile.Entry{
			FreqIdx: e.FreqIdx, BWIdx: e.BWIdx,
			GIPS: g, PowerW: p, Speedup: g / base,
			Interpolated: e.Interpolated,
		})
	}
	return out, out.Validate()
}

// AdaptTarget shifts a performance target measured under `from` to the
// `to` condition: the foreground's share is unchanged, only the
// background contribution moves.
func AdaptTarget(target float64, from, to Footprint) float64 {
	t := target + (to.BGGips - from.BGGips)
	if t <= 0 {
		return target
	}
	return t
}
