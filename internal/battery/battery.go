// Package battery models the phone's Li-ion cell — the resource the
// paper's energy optimization ultimately protects ("energy consumption
// is strongly correlated with battery life", §I).
//
// The model is a capacity bucket with a state-of-charge-dependent
// open-circuit voltage and an internal series resistance: at higher draw
// the terminal voltage sags, the same device power costs more charge,
// and the effective capacity shrinks — which is why minimizing *energy*
// (not just power) extends runtime disproportionately.
package battery

import (
	"fmt"
	"math"
	"time"
)

// Params describe a cell. The default matches the Nexus 6's 3220 mAh
// pack.
type Params struct {
	CapacitymAh   float64
	NominalV      float64 // voltage at ~50% state of charge
	FullV         float64 // open-circuit voltage at 100%
	EmptyV        float64 // cutoff voltage at 0%
	InternalOhm   float64 // series resistance
	CoulombicEff  float64 // charge efficiency (discharge side ~1.0)
	SelfDischarge float64 // fraction of capacity lost per month (idle)
}

// Nexus6Pack returns the stock battery parameters.
func Nexus6Pack() Params {
	return Params{
		CapacitymAh:   3220,
		NominalV:      3.8,
		FullV:         4.3,
		EmptyV:        3.3,
		InternalOhm:   0.12,
		CoulombicEff:  1.0,
		SelfDischarge: 0.03,
	}
}

// Validate checks physical plausibility.
func (p Params) Validate() error {
	if p.CapacitymAh <= 0 {
		return fmt.Errorf("battery: capacity %v mAh invalid", p.CapacitymAh)
	}
	if !(p.EmptyV < p.NominalV && p.NominalV < p.FullV) {
		return fmt.Errorf("battery: voltage ordering invalid (%v < %v < %v)",
			p.EmptyV, p.NominalV, p.FullV)
	}
	if p.InternalOhm < 0 || p.CoulombicEff <= 0 || p.CoulombicEff > 1 {
		return fmt.Errorf("battery: resistance/efficiency invalid")
	}
	return nil
}

// Cell is a discharging battery.
type Cell struct {
	p         Params
	chargeC   float64 // remaining charge in coulombs
	fullC     float64
	drainedJ  float64
	elapsed   time.Duration
	exhausted bool
}

// New creates a fully charged cell.
func New(p Params) (*Cell, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	full := p.CapacitymAh / 1000 * 3600 // mAh → coulombs
	return &Cell{p: p, chargeC: full, fullC: full}, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(p Params) *Cell {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// SOC returns the state of charge in [0,1].
func (c *Cell) SOC() float64 { return c.chargeC / c.fullC }

// Exhausted reports whether the cell hit the cutoff.
func (c *Cell) Exhausted() bool { return c.exhausted }

// DrainedJ returns the total energy delivered so far.
func (c *Cell) DrainedJ() float64 { return c.drainedJ }

// Elapsed returns the discharge time simulated so far.
func (c *Cell) Elapsed() time.Duration { return c.elapsed }

// OCV returns the open-circuit voltage at the current state of charge: a
// piecewise curve with the Li-ion plateau around the middle.
func (c *Cell) OCV() float64 {
	soc := c.SOC()
	switch {
	case soc >= 0.9:
		// Steep top segment.
		return c.p.NominalV + 0.1 + (c.p.FullV-c.p.NominalV-0.1)*(soc-0.9)/0.1
	case soc >= 0.2:
		// Plateau: nominal ± 0.1 V across the middle.
		return c.p.NominalV - 0.1 + 0.2*(soc-0.2)/0.7
	default:
		// Knee towards cutoff.
		return c.p.EmptyV + (c.p.NominalV-0.1-c.p.EmptyV)*soc/0.2
	}
}

// Drain removes the charge needed to deliver powerW of device power for
// dt: the current solves P = (V_oc − I·R)·I, so higher draws cost
// disproportionate charge through the I²R loss. It returns the terminal
// voltage, or marks the cell exhausted when the charge or the terminal
// voltage runs out.
func (c *Cell) Drain(powerW float64, dt time.Duration) (terminalV float64) {
	if c.exhausted || powerW <= 0 || dt <= 0 {
		return c.OCV()
	}
	voc := c.OCV()
	// I = (Voc - sqrt(Voc² - 4·R·P)) / (2R); fall back to P/Voc when
	// the discriminant goes negative (draw beyond deliverable power).
	disc := voc*voc - 4*c.p.InternalOhm*powerW
	var current float64
	if c.p.InternalOhm == 0 || disc <= 0 {
		current = powerW / voc
	} else {
		current = (voc - math.Sqrt(disc)) / (2 * c.p.InternalOhm)
	}
	terminalV = voc - current*c.p.InternalOhm
	if terminalV <= c.p.EmptyV {
		c.exhausted = true
		return terminalV
	}
	c.chargeC -= current * dt.Seconds() / c.p.CoulombicEff
	c.drainedJ += powerW * dt.Seconds()
	c.elapsed += dt
	if c.chargeC <= 0 {
		c.chargeC = 0
		c.exhausted = true
	}
	return terminalV
}

// LifeEstimate returns how long a constant device draw of powerW would
// run a fresh cell, integrating the discharge curve at the given step.
func LifeEstimate(p Params, powerW float64, step time.Duration) (time.Duration, error) {
	if powerW <= 0 {
		return 0, fmt.Errorf("battery: non-positive power %v", powerW)
	}
	if step <= 0 {
		step = time.Second
	}
	c, err := New(p)
	if err != nil {
		return 0, err
	}
	const maxLife = 14 * 24 * time.Hour
	for !c.Exhausted() && c.Elapsed() < maxLife {
		c.Drain(powerW, step)
	}
	return c.Elapsed(), nil
}

// LifeExtensionPct returns the battery-life improvement of running at
// ctlPowerW instead of defPowerW, in percent.
func LifeExtensionPct(p Params, defPowerW, ctlPowerW float64) (float64, error) {
	defLife, err := LifeEstimate(p, defPowerW, 10*time.Second)
	if err != nil {
		return 0, err
	}
	ctlLife, err := LifeEstimate(p, ctlPowerW, 10*time.Second)
	if err != nil {
		return 0, err
	}
	if defLife == 0 {
		return 0, fmt.Errorf("battery: zero default life")
	}
	return 100 * (ctlLife.Seconds() - defLife.Seconds()) / defLife.Seconds(), nil
}
