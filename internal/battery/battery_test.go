package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestParamsValidation(t *testing.T) {
	if err := Nexus6Pack().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Nexus6Pack()
	bad.CapacitymAh = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero capacity accepted")
	}
	bad = Nexus6Pack()
	bad.EmptyV = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted voltages accepted")
	}
	bad = Nexus6Pack()
	bad.CoulombicEff = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero efficiency accepted")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted invalid params")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := Nexus6Pack()
	bad.CapacitymAh = -1
	MustNew(bad)
}

func TestFreshCellState(t *testing.T) {
	c := MustNew(Nexus6Pack())
	if got := c.SOC(); got != 1.0 {
		t.Fatalf("fresh SOC = %v", got)
	}
	if c.Exhausted() || c.DrainedJ() != 0 || c.Elapsed() != 0 {
		t.Fatal("fresh cell carries state")
	}
}

func TestOCVMonotoneInSOC(t *testing.T) {
	c := MustNew(Nexus6Pack())
	prev := math.Inf(1)
	for !c.Exhausted() && c.SOC() > 0.01 {
		v := c.OCV()
		if v > prev+1e-9 {
			t.Fatalf("OCV rose while discharging: %v after %v at SOC %.3f", v, prev, c.SOC())
		}
		prev = v
		c.Drain(3.0, time.Minute)
	}
	p := Nexus6Pack()
	if prev > p.FullV || prev < p.EmptyV-0.01 {
		t.Fatalf("final OCV %v outside [%v,%v]", prev, p.EmptyV, p.FullV)
	}
}

func TestDrainAccounting(t *testing.T) {
	c := MustNew(Nexus6Pack())
	v := c.Drain(2.0, time.Hour)
	if v <= 0 || v > Nexus6Pack().FullV {
		t.Fatalf("terminal voltage %v implausible", v)
	}
	if got := c.DrainedJ(); math.Abs(got-2.0*3600) > 1 {
		t.Fatalf("DrainedJ = %v, want 7200", got)
	}
	if c.SOC() >= 1.0 {
		t.Fatal("SOC did not fall")
	}
	// 2 W at ~3.8 V ≈ 0.53 A for 1 h ≈ 530 mAh of 3220 → SOC ≈ 0.835.
	if c.SOC() < 0.80 || c.SOC() > 0.88 {
		t.Fatalf("SOC after 1h at 2W = %.3f, want ≈0.835", c.SOC())
	}
}

func TestDrainIgnoresNonPositive(t *testing.T) {
	c := MustNew(Nexus6Pack())
	c.Drain(0, time.Hour)
	c.Drain(-5, time.Hour)
	c.Drain(5, -time.Hour)
	if c.SOC() != 1.0 {
		t.Fatal("non-positive drain moved the SOC")
	}
}

func TestCellExhausts(t *testing.T) {
	c := MustNew(Nexus6Pack())
	for i := 0; i < 100000 && !c.Exhausted(); i++ {
		c.Drain(3.0, time.Minute)
	}
	if !c.Exhausted() {
		t.Fatal("cell never exhausted")
	}
	if c.SOC() > 0.08 {
		t.Fatalf("exhausted at SOC %.3f", c.SOC())
	}
	// A 3220 mAh / 3.8 V pack holds ~44 kJ; at 3 W that's ~4.1 h.
	hours := c.Elapsed().Hours()
	if hours < 3.0 || hours > 5.0 {
		t.Fatalf("life at 3 W = %.2f h, want ≈4 h", hours)
	}
}

func TestInternalResistanceCostsLife(t *testing.T) {
	ideal := Nexus6Pack()
	ideal.InternalOhm = 0
	lossy := Nexus6Pack()
	lossy.InternalOhm = 0.3

	li, err := LifeEstimate(ideal, 4.0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := LifeEstimate(lossy, 4.0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ll >= li {
		t.Fatalf("internal resistance must cost life: %v vs %v", ll, li)
	}
}

func TestLifeEstimateValidation(t *testing.T) {
	if _, err := LifeEstimate(Nexus6Pack(), 0, time.Second); err == nil {
		t.Fatal("zero power accepted")
	}
	bad := Nexus6Pack()
	bad.CapacitymAh = -1
	if _, err := LifeEstimate(bad, 2, time.Second); err == nil {
		t.Fatal("bad params accepted")
	}
}

// Property: battery life is monotone decreasing in draw.
func TestLifeMonotoneProperty(t *testing.T) {
	f := func(raw uint8) bool {
		p1 := 1 + float64(raw%40)/10 // 1.0 .. 4.9 W
		p2 := p1 + 0.5
		l1, err1 := LifeEstimate(Nexus6Pack(), p1, time.Minute)
		l2, err2 := LifeEstimate(Nexus6Pack(), p2, time.Minute)
		return err1 == nil && err2 == nil && l2 <= l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The paper's headline translated to runtime: ~15% lower power must
// yield >15% more battery life (the I²R sag compounds the gain).
func TestLifeExtensionExceedsPowerSavings(t *testing.T) {
	const defW, ctlW = 3.354, 2.606 // the quickstart AngryBirds numbers
	ext, err := LifeExtensionPct(Nexus6Pack(), defW, ctlW)
	if err != nil {
		t.Fatal(err)
	}
	powerSavingsPct := 100 * (defW - ctlW) / defW
	if ext < powerSavingsPct {
		t.Fatalf("life extension %.1f%% below the power savings %.1f%%", ext, powerSavingsPct)
	}
	if ext > 60 {
		t.Fatalf("life extension %.1f%% implausibly high", ext)
	}
}
