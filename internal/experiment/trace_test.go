package experiment_test

// External test package: these tests compare traced and untraced runs
// through report.RunSummary, and report imports experiment — so they
// live outside the package to keep the import graph acyclic, exactly
// like the fleet golden test.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"aspeo/internal/experiment"
	"aspeo/internal/obs"
	"aspeo/internal/profile"
	"aspeo/internal/report"
)

// traceProfile writes a synthetic coordinated profile to a temp file so
// controller sessions skip on-the-fly profiling (same shape as the fleet
// golden fixture: strictly convex frontier, unique optimizer choice).
func traceProfile(t *testing.T) (path string, target float64) {
	t.Helper()
	tab := &profile.Table{App: "golden", Load: "BL", Mode: profile.Coordinated, BaseGIPS: 0.8}
	s, p, step := 1.0, 1.6, 0.012
	for f := 0; f < 9; f++ {
		for bw := 0; bw < 13; bw++ {
			tab.Entries = append(tab.Entries, profile.Entry{
				FreqIdx: 2 * f, BWIdx: bw,
				Speedup: s, PowerW: p, GIPS: s * tab.BaseGIPS,
			})
			s += 0.02
			p += step
			step += 0.0004
		}
	}
	path = filepath.Join(t.TempDir(), "golden.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, 0.5 * (tab.MinSpeedup() + tab.MaxSpeedup()) * tab.BaseGIPS
}

func traceSpec(prof string, target float64, seed int64, sink obs.Sink) experiment.SessionSpec {
	return experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: seed,
		RunFor: 30 * time.Second, LogAllocations: true,
		Trace: sink,
	}
}

func runTraced(t *testing.T, spec experiment.SessionSpec) (report.RunSummary, *experiment.Session) {
	t.Helper()
	sess, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Run(nil)
	return report.NewRunSummary(sess, st), sess
}

// TestTracingGoldenIdentity is the tentpole acceptance test: enabling
// decision tracing must not change the run. Summary JSON and the
// controller's allocation log compare byte-for-byte and
// record-for-record against an untraced run of the same seed.
func TestTracingGoldenIdentity(t *testing.T) {
	prof, target := traceProfile(t)

	plainSum, plainSess := runTraced(t, traceSpec(prof, target, 42, nil))
	tr := obs.NewTrace()
	tracedSum, tracedSess := runTraced(t, traceSpec(prof, target, 42, tr))

	plainJSON, err := json.Marshal(plainSum)
	if err != nil {
		t.Fatal(err)
	}
	tracedJSON, err := json.Marshal(tracedSum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainJSON, tracedJSON) {
		t.Fatalf("tracing changed the summary:\nplain:  %s\ntraced: %s", plainJSON, tracedJSON)
	}

	plainLog := plainSess.Controller.AllocationLog()
	tracedLog := tracedSess.Controller.AllocationLog()
	if len(plainLog) < 10 {
		t.Fatalf("run logged only %d allocation cycles", len(plainLog))
	}
	if !reflect.DeepEqual(plainLog, tracedLog) {
		t.Fatal("tracing changed the allocation log")
	}
	if len(tr.Spans()) == 0 {
		t.Fatal("traced run emitted no spans")
	}
}

// TestTraceSmoke is the smoke-trace target's substance: two runs of the
// same seed must produce traces with zero divergent cycles (including
// across an NDJSON round trip, the aspeo-trace diff path), and two
// different seeds must diverge at a definite first cycle.
func TestTraceSmoke(t *testing.T) {
	prof, target := traceProfile(t)

	trA := obs.NewTrace()
	runTraced(t, traceSpec(prof, target, 42, trA))
	trB := obs.NewTrace()
	runTraced(t, traceSpec(prof, target, 42, trB))

	if res := obs.Diff(trA.Spans(), trB.Spans()); !res.Identical() {
		t.Fatalf("same-seed traces diverged at cycle %d: %v", res.FirstDivergent, res.Deltas)
	}

	// The on-disk representation is part of the determinism contract:
	// a written-and-reread trace still diffs clean against the live one.
	var buf bytes.Buffer
	if err := obs.WriteNDJSON(&buf, trA.Spans()); err != nil {
		t.Fatal(err)
	}
	reread, err := obs.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := obs.Diff(trA.Spans(), reread); !res.Identical() {
		t.Fatalf("NDJSON round trip diverged at cycle %d: %v", res.FirstDivergent, res.Deltas)
	}

	trC := obs.NewTrace()
	runTraced(t, traceSpec(prof, target, 43, trC))
	res := obs.Diff(trA.Spans(), trC.Spans())
	if res.Identical() {
		t.Fatal("different seeds produced identical traces")
	}
	if res.FirstDivergent < 1 {
		t.Fatalf("FirstDivergent = %d, want a definite cycle", res.FirstDivergent)
	}
	if len(res.Deltas) == 0 {
		t.Fatal("divergence reported without attribute deltas")
	}
}
