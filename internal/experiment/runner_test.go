package experiment

import (
	"reflect"
	"testing"

	"aspeo/internal/workload"
)

// TestTableIIIParallelMatchesSerial is the determinism regression test
// for the campaign runner: the Quick Table III campaign must be
// bit-identical between the serial path and an 8-worker pool — rows,
// energies, speedups, profile tables and targets.
func TestTableIIIParallelMatchesSerial(t *testing.T) {
	serial := Quick()
	serial.Workers = 1
	parallel := Quick()
	parallel.Workers = 8

	sRes, err := serial.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	pRes, err := parallel.TableIII()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sRes.Rows, pRes.Rows) {
		t.Fatalf("rows diverge:\nserial:   %+v\nparallel: %+v", sRes.Rows, pRes.Rows)
	}
	if !reflect.DeepEqual(sRes.Targets, pRes.Targets) {
		t.Fatalf("targets diverge: %v vs %v", sRes.Targets, pRes.Targets)
	}
	if len(sRes.Tables) != len(pRes.Tables) {
		t.Fatalf("table counts diverge: %d vs %d", len(sRes.Tables), len(pRes.Tables))
	}
	for app, st := range sRes.Tables {
		pt, ok := pRes.Tables[app]
		if !ok {
			t.Fatalf("parallel campaign missing table for %s", app)
		}
		if !reflect.DeepEqual(st, pt) {
			t.Fatalf("%s profile table diverges", app)
		}
	}
}

// TestEvaluateParallelMatchesSerial covers the remaining fan-out shape
// (def ∥ ctl inside Evaluate) on a single cheap cell.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	spec := workload.Spotify()
	base := Quick()
	base.Workers = 1
	tab, err := base.Profile(spec, workload.BaselineLoad, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := base.MeasureDefault(spec, workload.BaselineLoad)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := base.Evaluate(spec, tab, def.GIPS, workload.BaselineLoad, false)
	if err != nil {
		t.Fatal(err)
	}
	par8 := base
	par8.Workers = 8
	parallel, err := par8.Evaluate(spec, tab, def.GIPS, workload.BaselineLoad, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Evaluate diverges:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// A failing cell must surface its error and abort the campaign under
// every worker count.
func TestRunnerPropagatesCellErrors(t *testing.T) {
	spec := workload.Spotify()
	for _, workers := range []int{1, 8} {
		c := Quick()
		c.Workers = workers
		c.Seeds = []int64{101, 202, 303}
		// A negative target makes core.New fail inside every seed cell.
		if _, err := c.RunController(spec, nil, -1, workload.BaselineLoad, false); err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
	}
}

func TestWorkerCountResolution(t *testing.T) {
	c := Quick()
	if c.workerCount() < 1 {
		t.Fatalf("default worker count %d", c.workerCount())
	}
	c.Workers = 3
	if c.workerCount() != 3 {
		t.Fatalf("explicit worker count %d", c.workerCount())
	}
}
