package experiment

import (
	"fmt"

	"aspeo/internal/profile"
	"aspeo/internal/soc"
	"aspeo/internal/workload"
)

// TableIResult is the sample offline profiling table of paper Table I:
// the AngryBirds profile with speedup and power per configuration.
type TableIResult struct {
	Table *profile.Table
	SoC   *soc.SoC
}

// TableI profiles AngryBirds under baseline load and returns the
// completed table (the paper shows its first rows).
func (c Config) TableI() (*TableIResult, error) {
	tab, err := c.Profile(workload.AngryBirds(), workload.BaselineLoad, profile.Coordinated)
	if err != nil {
		return nil, err
	}
	return &TableIResult{Table: tab, SoC: soc.Nexus6()}, nil
}

// TableIIResult lists the CPU frequency and memory bandwidth ladders.
type TableIIResult struct {
	SoC *soc.SoC
}

// TableII returns the Nexus 6 ladders (paper Table II; bit-identical by
// construction, verified in internal/soc tests).
func TableII() *TableIIResult {
	return &TableIIResult{SoC: soc.Nexus6()}
}

// TableIIIResult carries the six-app comparison plus everything needed
// for Figures 4 and 5 (the residency histograms come from the same runs).
type TableIIIResult struct {
	Rows []Comparison
	// Tables holds each app's profile, for reuse by Tables IV/V callers.
	Tables map[string]*profile.Table
	// Targets holds each app's default-measured performance target.
	Targets map[string]float64
}

// TableIII reproduces the headline result: controller vs default
// governors on the six applications under baseline load. The six app
// campaigns are independent cells; within one app the profiling stage
// and the default-governor measurement are also independent, while the
// controller run waits on both (it needs the table and the target).
func (c Config) TableIII() (*TableIIIResult, error) {
	specs := workload.Evaluated()
	type appCell struct {
		row    Comparison
		tab    *profile.Table
		target float64
	}
	cells := make([]appCell, len(specs))
	err := c.forEachCell(len(specs), func(i int) error {
		spec := specs[i]
		var tab *profile.Table
		var def RunResult
		err := c.forEachCell(2, func(j int) error {
			var err error
			if j == 0 {
				tab, err = c.Profile(spec, workload.BaselineLoad, profile.Coordinated)
				if err != nil {
					return fmt.Errorf("profiling %s: %w", spec.Name, err)
				}
				return nil
			}
			def, err = c.MeasureDefault(spec, workload.BaselineLoad)
			if err != nil {
				return fmt.Errorf("default %s: %w", spec.Name, err)
			}
			return nil
		})
		if err != nil {
			return err
		}
		ctl, err := c.RunController(spec, tab, def.GIPS, workload.BaselineLoad, false)
		if err != nil {
			return fmt.Errorf("controller %s: %w", spec.Name, err)
		}
		cells[i] = appCell{
			row:    compare(spec, workload.BaselineLoad, def, ctl),
			tab:    tab,
			target: def.GIPS,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIIIResult{
		Rows:    make([]Comparison, 0, len(specs)),
		Tables:  make(map[string]*profile.Table, len(specs)),
		Targets: make(map[string]float64, len(specs)),
	}
	for i, spec := range specs {
		res.Rows = append(res.Rows, cells[i].row)
		res.Tables[spec.Name] = cells[i].tab
		res.Targets[spec.Name] = cells[i].target
	}
	return res, nil
}

// TableIVResult holds the background-load sensitivity study.
type TableIVResult struct {
	// Rows[app][load] in Table III app order, loads ordered BL, NL, HL.
	Rows map[string]map[workload.BGLoad]Comparison
}

// Loads is the Table IV column order.
var Loads = []workload.BGLoad{workload.BaselineLoad, workload.NoLoad, workload.HeavierLoad}

// TableIV reproduces §V-C: the controller reusing the baseline-load
// profile and target under no-load and heavier-load conditions.
func (c Config) TableIV(base *TableIIIResult) (*TableIVResult, error) {
	if base == nil {
		var err error
		base, err = c.TableIII()
		if err != nil {
			return nil, err
		}
	}
	// Every (app, load) pair is an independent cell: offline data and
	// target stay from BL (§V-C), only the runtime environment changes.
	specs := workload.Evaluated()
	extraLoads := []workload.BGLoad{workload.NoLoad, workload.HeavierLoad}
	cmps := make([]Comparison, len(specs)*len(extraLoads))
	err := c.forEachCell(len(cmps), func(i int) error {
		spec := specs[i/len(extraLoads)]
		load := extraLoads[i%len(extraLoads)]
		cmp, err := c.Evaluate(spec, base.Tables[spec.Name], base.Targets[spec.Name], load, false)
		if err != nil {
			return fmt.Errorf("%s under %s: %w", spec.Name, load, err)
		}
		cmps[i] = cmp
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIVResult{Rows: make(map[string]map[workload.BGLoad]Comparison)}
	for si, spec := range specs {
		perLoad := make(map[workload.BGLoad]Comparison)
		for _, row := range base.Rows {
			if row.App == spec.Name {
				perLoad[workload.BaselineLoad] = row
			}
		}
		for li, load := range extraLoads {
			perLoad[load] = cmps[si*len(extraLoads)+li]
		}
		res.Rows[spec.Name] = perLoad
	}
	return res, nil
}

// TableVResult holds the CPU-only DVFS comparison.
type TableVResult struct {
	Rows []Comparison
	// Coordinated carries the Table III rows for the paper's "53%
	// more energy than coordinated" comparison.
	Coordinated []Comparison
}

// TableV reproduces §V-D: a controller that actuates only the CPU
// frequency, with the memory bandwidth left to cpubw_hwmon. The
// applications are re-profiled in that same condition (Governed mode),
// exactly as the paper re-profiles for this baseline.
func (c Config) TableV(base *TableIIIResult) (*TableVResult, error) {
	if base == nil {
		var err error
		base, err = c.TableIII()
		if err != nil {
			return nil, err
		}
	}
	// The CPU-only baseline for each app — governed re-profile plus the
	// cpu-only controller evaluation — is an independent cell.
	specs := workload.Evaluated()
	rows := make([]Comparison, len(specs))
	err := c.forEachCell(len(specs), func(i int) error {
		spec := specs[i]
		tab, err := c.Profile(spec, workload.BaselineLoad, profile.Governed)
		if err != nil {
			return fmt.Errorf("governed profiling %s: %w", spec.Name, err)
		}
		cmp, err := c.Evaluate(spec, tab, base.Targets[spec.Name], workload.BaselineLoad, true)
		if err != nil {
			return fmt.Errorf("cpu-only %s: %w", spec.Name, err)
		}
		rows[i] = cmp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &TableVResult{Rows: rows, Coordinated: base.Rows}, nil
}

// ExtraEnergyVsCoordinatedPct computes the paper's §V-D aggregate: the
// average extra energy consumed by the CPU-only controller relative to
// the coordinated controller, excluding MX Player (which "practically
// does not save energy").
func (r *TableVResult) ExtraEnergyVsCoordinatedPct() float64 {
	coord := make(map[string]Comparison)
	for _, c := range r.Coordinated {
		coord[c.App] = c
	}
	var sum float64
	var n int
	for _, row := range r.Rows {
		if row.App == workload.NameMXPlayer {
			continue
		}
		c, ok := coord[row.App]
		if !ok || c.Ctl.EnergyJ == 0 {
			continue
		}
		sum += 100 * (row.Ctl.EnergyJ - c.Ctl.EnergyJ) / c.Ctl.EnergyJ
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ReprofileMobileBenchNL reproduces the §V-C footnote experiment: after
// MobileBench disappoints under no-load with the BL profile, the paper
// re-profiles it under NL and re-runs ("the controller now saves 11.1%
// energy with no performance loss").
func (c Config) ReprofileMobileBenchNL() (Comparison, error) {
	spec := workload.MobileBench()
	var tab *profile.Table
	var def RunResult
	err := c.forEachCell(2, func(i int) error {
		var err error
		if i == 0 {
			tab, err = c.Profile(spec, workload.NoLoad, profile.Coordinated)
		} else {
			def, err = c.MeasureDefault(spec, workload.NoLoad)
		}
		return err
	})
	if err != nil {
		return Comparison{}, err
	}
	ctl, err := c.RunController(spec, tab, def.GIPS, workload.NoLoad, false)
	if err != nil {
		return Comparison{}, err
	}
	return compare(spec, workload.NoLoad, def, ctl), nil
}
