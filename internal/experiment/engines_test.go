package experiment_test

// Cross-engine golden equivalence: the event-queue core must reproduce
// the fixed-timestep core bit for bit on every observable surface —
// summary JSON, the controller's allocation log, and full-rate trace
// recordings. These tests are the acceptance gate for the backend
// switch: like the tracing and kill-restore goldens, they compare
// serialized bytes, not tolerances.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"aspeo/internal/experiment"
	"aspeo/internal/profile"
	"aspeo/internal/report"
	"aspeo/internal/sim"
	"aspeo/internal/trace"
)

// engineProfile writes the synthetic convex coordinated profile shared
// by the golden suites, so controller sessions skip on-the-fly
// profiling.
func engineProfile(t *testing.T) (path string, target float64) {
	t.Helper()
	tab := &profile.Table{App: "golden", Load: "BL", Mode: profile.Coordinated, BaseGIPS: 0.8}
	s, p, step := 1.0, 1.6, 0.012
	for f := 0; f < 9; f++ {
		for bw := 0; bw < 13; bw++ {
			tab.Entries = append(tab.Entries, profile.Entry{
				FreqIdx: 2 * f, BWIdx: bw,
				Speedup: s, PowerW: p, GIPS: s * tab.BaseGIPS,
			})
			s += 0.02
			p += step
			step += 0.0004
		}
	}
	path = filepath.Join(t.TempDir(), "golden.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, 0.5 * (tab.MinSpeedup() + tab.MaxSpeedup()) * tab.BaseGIPS
}

// runOnEngine runs the spec on the named backend and returns every
// observable surface: summary bytes, the controller allocation log, and
// the full-rate trace (nil unless TraceEvery was set).
func runOnEngine(t *testing.T, spec experiment.SessionSpec, engine string) ([]byte, []interface{}, []trace.Point) {
	t.Helper()
	spec.Engine = engine
	sess, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := sim.ParseBackend(engine); sess.Harness.Engine.Backend() != want {
		t.Fatalf("session engine = %v, want %v", sess.Harness.Engine.Backend(), want)
	}
	st := sess.Run(nil)
	raw, err := json.Marshal(report.NewRunSummary(sess, st))
	if err != nil {
		t.Fatal(err)
	}
	var log []interface{}
	if sess.Controller != nil {
		for _, r := range sess.Controller.AllocationLog() {
			log = append(log, r)
		}
	}
	var pts []trace.Point
	if rec := sess.Harness.Phone.Recorder(); rec != nil {
		pts = append(pts, rec.Points()...)
	}
	return raw, log, pts
}

// checkEngineEquivalence asserts the event and fixed cores produce
// byte-identical outputs for the spec.
func checkEngineEquivalence(t *testing.T, spec experiment.SessionSpec) {
	t.Helper()
	evRaw, evLog, evPts := runOnEngine(t, spec, "event")
	fxRaw, fxLog, fxPts := runOnEngine(t, spec, "fixed")
	if !bytes.Equal(evRaw, fxRaw) {
		t.Fatalf("summary diverges across engines:\nevent %s\nfixed %s", evRaw, fxRaw)
	}
	if !reflect.DeepEqual(evLog, fxLog) {
		t.Fatalf("allocation log diverges across engines:\nevent %d records %v\nfixed %d records %v",
			len(evLog), evLog, len(fxLog), fxLog)
	}
	if len(evPts) != len(fxPts) {
		t.Fatalf("trace length diverges: event %d points, fixed %d", len(evPts), len(fxPts))
	}
	for i := range evPts {
		if evPts[i] != fxPts[i] {
			t.Fatalf("trace diverges at point %d:\nevent %+v\nfixed %+v", i, evPts[i], fxPts[i])
		}
	}
}

// TestEngineEquivalenceController: the paper controller on a stored
// profile — the standard evaluation cell.
func TestEngineEquivalenceController(t *testing.T) {
	prof, target := engineProfile(t)
	checkEngineEquivalence(t, experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 7,
		RunFor: 60 * time.Second, LogAllocations: true,
	})
}

// TestEngineEquivalenceGovernor: stock kernel governors, the fastest
// actor cadence (20 ms sampling) — maximal event-queue churn.
func TestEngineEquivalenceGovernor(t *testing.T) {
	checkEngineEquivalence(t, experiment.SessionSpec{
		App: "wechat", Load: "HL", Governor: "interactive", Seed: 7,
		RunFor: 30 * time.Second,
	})
}

// TestEngineEquivalenceFaults: the combined chaos scenario layered on
// the controller — fault firings are scheduled events too.
func TestEngineEquivalenceFaults(t *testing.T) {
	prof, target := engineProfile(t)
	checkEngineEquivalence(t, experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 11,
		RunFor: 60 * time.Second, LogAllocations: true,
		Faults: "combined",
	})
}

// TestEngineEquivalenceTraced: full-rate trace recording (every engine
// step) — the strictest observable surface, one point per step.
func TestEngineEquivalenceTraced(t *testing.T) {
	checkEngineEquivalence(t, experiment.SessionSpec{
		App: "ebook", Load: "NL", Governor: "interactive", Seed: 3,
		RunFor: 10 * time.Second, TraceEvery: sim.DefaultStep,
	})
}
