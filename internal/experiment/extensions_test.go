package experiment

import (
	"testing"

	"aspeo/internal/workload"
)

func TestBatteryLifeTranslation(t *testing.T) {
	res := &TableIIIResult{Rows: []Comparison{{
		App:     workload.NameSpotify,
		Default: RunResult{AvgPowerW: 2.0},
		Ctl:     RunResult{AvgPowerW: 1.6},
	}}}
	rows, err := BatteryLife(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.ControllerLife <= r.DefaultLife {
		t.Fatalf("lower power must extend life: %v vs %v", r.ControllerLife, r.DefaultLife)
	}
	// 20% lower power → at least 20% more life (I²R compounds it).
	if r.LifeExtensionPct < 20 {
		t.Fatalf("life extension %.1f%% below the power savings", r.LifeExtensionPct)
	}
}

func TestBatteryLifeRejectsZeroPower(t *testing.T) {
	res := &TableIIIResult{Rows: []Comparison{{
		App: "x", Default: RunResult{AvgPowerW: 0}, Ctl: RunResult{AvgPowerW: 1},
	}}}
	if _, err := BatteryLife(res); err == nil {
		t.Fatal("zero power accepted")
	}
}

func TestPhaseStudy(t *testing.T) {
	r, err := Quick().PhaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if r.App != workload.NameMobileBench {
		t.Fatalf("phase study app = %s", r.App)
	}
	if r.PhasesDetected < 2 {
		t.Fatalf("detected %d phases on MobileBench, want >= 2", r.PhasesDetected)
	}
}

func TestThermalStudy(t *testing.T) {
	r, err := Quick().ThermalStudy()
	if err != nil {
		t.Fatal(err)
	}
	if r.DefaultPeakC <= 25 || r.CtlPeakC <= 25 {
		t.Fatalf("peaks never rose above ambient: %+v", r)
	}
	// The controller's lower operating point must not run hotter.
	if r.CtlPeakC > r.DefaultPeakC+0.5 {
		t.Fatalf("controller ran hotter: %.1f vs %.1f", r.CtlPeakC, r.DefaultPeakC)
	}
	if r.CtlThrot > r.DefaultThrot {
		t.Fatalf("controller throttled longer: %v vs %v", r.CtlThrot, r.DefaultThrot)
	}
}

func TestLoadModelStudy(t *testing.T) {
	r, err := Quick().LoadModelStudy(workload.Spotify())
	if err != nil {
		t.Fatal(err)
	}
	// All three variants must produce a working controller run.
	for name, cmp := range map[string]Comparison{
		"stale": r.Stale, "adapted": r.Adapted, "reprofiled": r.Reprofiled,
	} {
		if cmp.Ctl.EnergyJ <= 0 {
			t.Fatalf("%s variant produced no energy measurement", name)
		}
		if cmp.PerfDeltaPct < -15 {
			t.Fatalf("%s variant lost %.1f%% performance", name, cmp.PerfDeltaPct)
		}
	}
}
