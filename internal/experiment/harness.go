package experiment

import (
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

// Harness is one fully constructed simulation cell: a phone, its engine,
// and whatever actor set Install wired up. Every driver that used to
// hand-build the Phone/Engine/controller stack — the campaign runner,
// aspeo-run, aspeo-repro's artifacts — goes through NewHarness, so the
// construction rules (screen on, WiFi on, session semantics) live in
// exactly one place.
type Harness struct {
	Phone  *sim.Phone
	Engine *sim.Engine
	spec   *workload.Spec
}

// HarnessConfig describes one cell.
type HarnessConfig struct {
	// Foreground is the application under test.
	Foreground *workload.Spec
	// Load is the background condition (NL/BL/HL).
	Load workload.BGLoad
	// ExtraBackground appends additional background tasks after the
	// load condition's standard set (scenario ambient conditions).
	ExtraBackground []*workload.Spec
	// Seed drives the cell's whole stochastic state.
	Seed int64
	// Engine selects the simulation core (sim.BackendEvent, the zero
	// value and default, or sim.BackendFixed — the compatibility
	// backend). Both produce bit-identical observables.
	Engine sim.Backend
	// TraceEvery, when positive, attaches a trace recorder at that
	// decimation interval (sim.DefaultStep records every engine step —
	// the full-rate recording platform/replay needs).
	TraceEvery time.Duration
	// Install wires the actor set (governors, perf, controller, fault
	// injector) onto the cell. It receives the engine as a
	// platform.Runner so installers are backend-agnostic; nil installs
	// nothing.
	Install func(platform.Runner) error
}

// NewHarness builds the cell: phone (screen and WiFi on, the paper's
// measurement condition), engine, and the installed actors. Install
// errors surface instead of being dropped mid-construction.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	ph, err := sim.NewPhone(sim.Config{
		Foreground: cfg.Foreground, Load: cfg.Load, Seed: cfg.Seed,
		ExtraBackground: cfg.ExtraBackground,
		ScreenOn:        true, WiFiOn: true, TraceEvery: cfg.TraceEvery,
	})
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngineOpts(ph, sim.Options{Backend: cfg.Engine})
	h := &Harness{Phone: ph, Engine: eng, spec: cfg.Foreground}
	if cfg.Install != nil {
		if err := cfg.Install(eng); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// RunSession runs the app's standard session: deadline-critical apps run
// to completion (bounded by 3x the nominal session for pathological
// configurations), the rest run their nominal duration.
func (h *Harness) RunSession() sim.Stats {
	if h.spec.DeadlineCritical {
		return h.Engine.Run(h.spec.RunFor*3, true)
	}
	return h.Engine.Run(h.spec.RunFor, false)
}
