package experiment

import (
	"fmt"
	"strings"
	"time"

	"aspeo/internal/core"
	"aspeo/internal/fault"
	"aspeo/internal/governor"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/stats"
	"aspeo/internal/workload"
)

// This file is the fault-resilience campaign: the controller's value
// proposition only holds if a hijacked governor or a flaky PMU cannot
// silently turn "energy optimization" into "performance collapse". Each
// scenario replays one failure mode of a real device against three
// conditions — the stock governors, the unhardened controller (every
// protection off), and the hardened controller — and reports the
// performance slack against the app's fault-free target plus the
// controller's own health ledger.

// FaultScenario names one fault plan.
type FaultScenario struct {
	Name string
	Desc string
	Plan fault.Plan
}

// FaultScenarios returns the campaign's standard scenario set, one per
// failure mode the fault model covers plus a combined worst case.
func FaultScenarios() []FaultScenario {
	return []FaultScenario{
		{
			Name: "transient-writes",
			Desc: "30% of actuation writes fail with EBUSY/EINVAL",
			Plan: fault.Plan{WriteFailProb: 0.3},
		},
		{
			Name: "governor-hijack",
			Desc: "OEM daemon rewrites scaling_governor every 15 s from t=10 s",
			Plan: fault.Plan{Hijacks: []fault.Hijack{
				{At: 10 * time.Second, Repeat: 15 * time.Second},
			}},
		},
		{
			Name: "noisy-perf",
			Desc: "20% of samples dropped, 10% spiked 4x by counter multiplexing",
			Plan: fault.Plan{DropProb: 0.2, SpikeProb: 0.1, SpikeFactor: 4},
		},
		{
			Name: "stuck-perf",
			Desc: "perf readings frozen at a stale value for 20 s from t=10 s",
			Plan: fault.Plan{StuckReadFrom: 10 * time.Second, StuckReadFor: 20 * time.Second},
		},
		{
			Name: "combined",
			Desc: "write failures + periodic hijack + noisy perf together",
			Plan: fault.Plan{
				WriteFailProb: 0.2,
				Hijacks: []fault.Hijack{
					{At: 12 * time.Second, Repeat: 20 * time.Second},
				},
				DropProb: 0.1, SpikeProb: 0.05, ZeroProb: 0.02,
			},
		},
	}
}

// FaultScenarioNames lists the selectable scenario names, in campaign
// order.
func FaultScenarioNames() []string {
	var names []string
	for _, sc := range FaultScenarios() {
		names = append(names, sc.Name)
	}
	return names
}

// FaultScenarioByName resolves a scenario by name.
func FaultScenarioByName(name string) (FaultScenario, error) {
	for _, sc := range FaultScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return FaultScenario{}, fmt.Errorf("unknown fault scenario %q (have: %s)",
		name, strings.Join(FaultScenarioNames(), ", "))
}

// FaultRow is one (app, scenario) cell of the campaign.
type FaultRow struct {
	App      string
	Scenario string
	// TargetGIPS is the fault-free default-governor performance the
	// controller regulates toward — the slack reference.
	TargetGIPS float64

	Stock      RunResult // default governors under the scenario
	Unhardened RunResult // Resilience{Disabled} controller
	Hardened   RunResult // full ladder

	// SlackPct is 100·(GIPS − target)/target per condition: how far the
	// delivered performance sits from the fault-free target (negative =
	// slower).
	StockSlackPct      float64
	UnhardenedSlackPct float64
	HardenedSlackPct   float64
	// HardenedVsStockEnergyPct is the hardened controller's energy
	// savings against the stock governors under the same scenario.
	HardenedVsStockEnergyPct float64

	// Health is the hardened controller's ledger and Injected the fault
	// injector's delivered counts, both from the last seed's run.
	Health   core.Health
	Injected fault.Counts
	// UnhardenedHealth shows what the same scenario does without the
	// ladder (its counters stay near zero because nothing fights back).
	UnhardenedHealth core.Health
}

// FaultCampaignResult is the campaign output for the report layer.
type FaultCampaignResult struct {
	Scenarios []FaultScenario
	Rows      []FaultRow
}

// faultPrep is the per-app fault-free reference work.
type faultPrep struct {
	spec   *workload.Spec
	tab    *profile.Table
	target float64
}

// FaultCampaign sweeps scenarios × apps. Per app it first profiles and
// measures the fault-free default-governor performance (the target),
// then fans the (scenario, app) rows over the campaign pool; inside a
// row the three conditions run the same seeds and the same per-seed
// fault sequences, so the comparison isolates the controller's
// hardening.
func (c Config) FaultCampaign(specs []*workload.Spec, scenarios []FaultScenario) (*FaultCampaignResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 || len(scenarios) == 0 {
		return nil, fmt.Errorf("experiment: empty fault campaign")
	}
	for _, sc := range scenarios {
		if err := sc.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: scenario %s: %w", sc.Name, err)
		}
	}

	// Fault-free reference per app: profile + default measurement.
	preps := make([]faultPrep, len(specs))
	err := c.forEachCell(len(specs), func(i int) error {
		spec := specs[i]
		tab, err := c.Profile(spec, workload.BaselineLoad, 0)
		if err != nil {
			return err
		}
		def, err := c.MeasureDefault(spec, workload.BaselineLoad)
		if err != nil {
			return err
		}
		preps[i] = faultPrep{spec: spec, tab: tab, target: def.GIPS}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]FaultRow, len(scenarios)*len(specs))
	err = c.forEachCell(len(rows), func(i int) error {
		sc := scenarios[i/len(specs)]
		prep := preps[i%len(specs)]
		row, err := c.faultRow(prep, sc)
		if err != nil {
			return fmt.Errorf("scenario %s, app %s: %w", sc.Name, prep.spec.Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &FaultCampaignResult{Scenarios: scenarios, Rows: rows}, nil
}

// faultRow runs the three conditions of one (app, scenario) cell.
func (c Config) faultRow(prep faultPrep, sc FaultScenario) (FaultRow, error) {
	row := FaultRow{App: prep.spec.Name, Scenario: sc.Name, TargetGIPS: prep.target}

	// Stock: the default governors under the scenario. Perf rides along
	// (as in MeasureDefault) so the instrumentation overhead matches.
	stock, _, err := c.faultSeeds(prep.spec, sc.Plan, func(seed int64, inj *fault.Injector) func(platform.Runner) error {
		return func(r platform.Runner) error {
			if err := r.Register(inj); err != nil {
				return err
			}
			if err := governor.Defaults(r); err != nil {
				return err
			}
			p := perftool.MustNew(time.Second, seed)
			if err := r.Register(p); err != nil {
				return err
			}
			fault.WrapPerf(p, inj)
			return nil
		}
	})
	if err != nil {
		return row, err
	}
	row.Stock = stock

	// Unhardened and hardened controller conditions share the harness.
	ctlCondition := func(res core.Resilience) (RunResult, core.Health, fault.Counts, error) {
		var lastCtl *core.Controller
		var lastInj *fault.Injector
		rr, _, err := c.faultSeeds(prep.spec, sc.Plan, func(seed int64, inj *fault.Injector) func(platform.Runner) error {
			return func(r platform.Runner) error {
				if err := r.Register(inj); err != nil {
					return err
				}
				opts := core.DefaultOptions(prep.tab, prep.target)
				opts.Seed = seed
				opts.Resilience = res
				ctl, err := core.New(opts)
				if err != nil {
					return err
				}
				// The controller actuates through the fault-decorated
				// device; everything else sees the clean surface.
				if err := ctl.Install(fault.WrapRunner(r, inj)); err != nil {
					return err
				}
				// Stock governors stand by: they idle while the sysfs
				// governor files read "userspace" and take over after a
				// hijack lands or the controller relinquishes.
				if err := governor.Defaults(r); err != nil {
					return err
				}
				fault.WrapPerf(ctl.Perf(), inj)
				lastCtl, lastInj = ctl, inj
				return nil
			}
		})
		if err != nil {
			return RunResult{}, core.Health{}, fault.Counts{}, err
		}
		return rr, lastCtl.Health(), lastInj.Counts(), nil
	}

	var unhHealth core.Health
	row.Unhardened, unhHealth, _, err = ctlCondition(core.Resilience{Disabled: true})
	if err != nil {
		return row, err
	}
	row.UnhardenedHealth = unhHealth
	row.Hardened, row.Health, row.Injected, err = ctlCondition(core.DefaultResilience())
	if err != nil {
		return row, err
	}

	slack := func(rr RunResult) float64 { return stats.PctDelta(rr.GIPS, prep.target) }
	row.StockSlackPct = slack(row.Stock)
	row.UnhardenedSlackPct = slack(row.Unhardened)
	row.HardenedSlackPct = slack(row.Hardened)
	row.HardenedVsStockEnergyPct = stats.Savings(row.Hardened.EnergyJ, row.Stock.EnergyJ)
	return row, nil
}

// faultSeeds runs one fault condition once per seed, serially — the
// campaign already fans (scenario, app) rows over the pool. Each seed
// gets its own injector built from (plan, seed), so fault sequences are
// reproducible per seed and identical across the row's conditions.
func (c Config) faultSeeds(spec *workload.Spec, plan fault.Plan,
	install func(seed int64, inj *fault.Injector) func(platform.Runner) error) (RunResult, *sim.Phone, error) {

	all := make([]sim.Stats, len(c.Seeds))
	var last *sim.Phone
	for i, seed := range c.Seeds {
		inj, err := fault.NewInjector(plan, seed)
		if err != nil {
			return RunResult{}, nil, err
		}
		st, ph, err := runOne(spec, workload.BaselineLoad, seed, install(seed, inj))
		if err != nil {
			return RunResult{}, nil, err
		}
		all[i] = st
		last = ph
	}
	return aggregate(all, last), last, nil
}
