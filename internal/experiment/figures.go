package experiment

import (
	"time"

	"aspeo/internal/governor"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/workload"
)

// Fig1Result is the eBook CPU-frequency residency histogram under the
// default governor (paper Fig. 1).
type Fig1Result struct {
	ResidencyPct []float64 // per CPU frequency ladder index, percent
}

// Fig1 runs the eBook reader under the default governors with no user
// interaction (the paper's setup: lowest brightness, WiFi on, background
// sync active) and returns the CPU-frequency residency.
func (c Config) Fig1() (*Fig1Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	spec := workload.EBook()
	_, ph, err := runOne(spec, workload.BaselineLoad, c.Seeds[0], func(r platform.Runner) error {
		if err := governor.Defaults(r); err != nil {
			return err
		}
		return r.Register(perftool.MustNew(time.Second, c.Seeds[0]))
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{ResidencyPct: ph.CPUHistogram().Percents()}, nil
}

// HistPair is one app's residency distributions under the default
// governors and under the controller.
type HistPair struct {
	App string
	Def []float64 // percent per ladder index
	Ctl []float64
}

// Fig4 extracts the CPU-frequency histograms (paper Fig. 4) from a
// completed Table III campaign: one default/controller pair per app.
func Fig4(res *TableIIIResult) []HistPair {
	out := make([]HistPair, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, HistPair{
			App: row.App,
			Def: row.Default.CPUResidPct,
			Ctl: row.Ctl.CPUResidPct,
		})
	}
	return out
}

// Fig5 extracts the memory-bandwidth histograms (paper Fig. 5).
func Fig5(res *TableIIIResult) []HistPair {
	out := make([]HistPair, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, HistPair{
			App: row.App,
			Def: row.Default.BWResidPct,
			Ctl: row.Ctl.BWResidPct,
		})
	}
	return out
}
