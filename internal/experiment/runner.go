package experiment

import (
	"context"

	"aspeo/internal/par"
	"aspeo/internal/platform"
	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

// This file is the campaign runner: every paper artifact is a set of
// independent simulation cells — one (app, load, seed) run or one
// offline profiling point — and the runner fans them out over a bounded
// worker pool (Config.Workers; 0 = one worker per CPU).
//
// Determinism: each cell's inputs (its seed from Config.Seeds, its spec,
// its load) are fixed by index before dispatch, every cell constructs
// its own sim.Phone (the engine's one-Phone-per-goroutine contract), and
// results land in index-addressed slots. Serial and parallel campaigns
// therefore produce bit-identical artifacts
// (TestTableIIIParallelMatchesSerial). The first cell error cancels the
// campaign's remaining undispatched cells via context.

// workerCount resolves Config.Workers (0 or negative → GOMAXPROCS).
func (c Config) workerCount() int { return par.Workers(c.Workers) }

// forEachCell fans fn out over n independent cells on the campaign pool.
func (c Config) forEachCell(n int, fn func(i int) error) error {
	return par.ForEach(context.Background(), c.workerCount(), n,
		func(_ context.Context, i int) error { return fn(i) })
}

// runSeeds executes one measurement condition once per Config.Seeds in
// parallel. install(seed) builds the per-run actor installer, so each
// run gets its own controller/governor/perf instances. Stats come back
// in seed order; the returned phone is the last seed's device (the one
// the serial campaign used for residency extraction).
func (c Config) runSeeds(spec *workload.Spec, load workload.BGLoad,
	install func(seed int64) func(platform.Runner) error) ([]sim.Stats, *sim.Phone, error) {

	stats_ := make([]sim.Stats, len(c.Seeds))
	phones := make([]*sim.Phone, len(c.Seeds))
	err := c.forEachCell(len(c.Seeds), func(i int) error {
		st, ph, err := runOne(spec, load, c.Seeds[i], install(c.Seeds[i]))
		if err != nil {
			return err
		}
		stats_[i] = st
		phones[i] = ph
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stats_, phones[len(phones)-1], nil
}
