package experiment

import (
	"testing"

	"aspeo/internal/profile"
	"aspeo/internal/workload"
)

// The experiment tests run the Quick configuration: single seed, short
// windows. They verify the paper's qualitative claims end to end; the
// full-fidelity numbers live in EXPERIMENTS.md and the benchmarks.

func TestConfigValidation(t *testing.T) {
	c := Quick()
	c.Seeds = nil
	if _, err := c.MeasureDefault(workload.Spotify(), workload.NoLoad); err == nil {
		t.Fatal("empty seeds accepted")
	}
	c = Quick()
	c.ProfileWindow = 0
	if err := c.validate(); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestMeasureDefaultProducesSaneNumbers(t *testing.T) {
	c := Quick()
	def, err := c.MeasureDefault(workload.Spotify(), workload.BaselineLoad)
	if err != nil {
		t.Fatal(err)
	}
	if def.EnergyJ <= 0 || def.AvgPowerW < 1 || def.AvgPowerW > 6 {
		t.Fatalf("implausible default run: %+v", def)
	}
	if def.GIPS <= 0 || def.RuntimeSec <= 0 {
		t.Fatalf("missing metrics: %+v", def)
	}
	if len(def.CPUResidPct) != 18 || len(def.BWResidPct) != 13 {
		t.Fatalf("residency shapes wrong: %d/%d", len(def.CPUResidPct), len(def.BWResidPct))
	}
}

func TestEvaluateHeadlineClaim(t *testing.T) {
	// The paper's core claim on one app: the controller saves energy at
	// comparable performance.
	c := Quick()
	spec := workload.Spotify()
	tab, err := c.Profile(spec, workload.BaselineLoad, profile.Coordinated)
	if err != nil {
		t.Fatal(err)
	}
	def, err := c.MeasureDefault(spec, workload.BaselineLoad)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := c.Evaluate(spec, tab, def.GIPS, workload.BaselineLoad, false)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnergySavingsPct <= 0 {
		t.Fatalf("controller did not save energy: %+v", cmp)
	}
	if cmp.PerfDeltaPct < -8 {
		t.Fatalf("performance loss %.1f%% far beyond the paper's envelope", cmp.PerfDeltaPct)
	}
}

func TestFig1Shape(t *testing.T) {
	c := Quick()
	r, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ResidencyPct) != 18 {
		t.Fatalf("Fig1 buckets = %d", len(r.ResidencyPct))
	}
	sum := 0.0
	for _, p := range r.ResidencyPct {
		sum += p
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("residency sums to %.2f%%", sum)
	}
	// The paper's headline observation: even with no interaction the
	// default governor spends significant time at frequency 10.
	if r.ResidencyPct[9] < 5 {
		t.Fatalf("frequency-10 residency %.1f%%, want the paper's >10%% shape", r.ResidencyPct[9])
	}
}

func TestTableIShape(t *testing.T) {
	c := Quick()
	r, err := c.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.App != workload.NameAngryBirds {
		t.Fatalf("Table I app = %s", r.Table.App)
	}
	// 5 profiled freqs × 13 bandwidths.
	if r.Table.Len() != 65 {
		t.Fatalf("Table I rows = %d", r.Table.Len())
	}
	// Base speed anchor: 0.129 GIPS ± 15%.
	if r.Table.BaseGIPS < 0.10 || r.Table.BaseGIPS > 0.15 {
		t.Fatalf("base speed %.4f outside the paper's neighbourhood", r.Table.BaseGIPS)
	}
}

func TestTableIIExact(t *testing.T) {
	r := TableII()
	if len(r.SoC.CPUFreqs) != 18 || len(r.SoC.MemBWs) != 13 {
		t.Fatal("Table II ladders wrong")
	}
}

func TestOverheadNumbers(t *testing.T) {
	c := Quick()
	r, err := c.Overhead(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerfCPUOverheadPct < 3.9 || r.PerfCPUOverheadPct > 4.1 {
		t.Fatalf("perf overhead %.2f%%, paper says 4%%", r.PerfCPUOverheadPct)
	}
	if r.PerfPowerOverheadW < 0.014 || r.PerfPowerOverheadW > 0.016 {
		t.Fatalf("perf power %.4f W, paper says 15 mW", r.PerfPowerOverheadW)
	}
	if r.OptimizerTimePerCycle <= 0 || r.OptimizerTimePerCycle > 10e6 {
		t.Fatalf("optimizer per cycle %v, paper bound is 10 ms", r.OptimizerTimePerCycle)
	}
	if r.Cycles == 0 {
		t.Fatal("no cycles observed")
	}
}

func TestFig4Fig5Extraction(t *testing.T) {
	rows := []Comparison{{
		App:     "x",
		Default: RunResult{CPUResidPct: []float64{1, 2}, BWResidPct: []float64{3}},
		Ctl:     RunResult{CPUResidPct: []float64{4, 5}, BWResidPct: []float64{6}},
	}}
	res := &TableIIIResult{Rows: rows}
	f4 := Fig4(res)
	if len(f4) != 1 || f4[0].Def[0] != 1 || f4[0].Ctl[1] != 5 {
		t.Fatalf("Fig4 extraction wrong: %+v", f4)
	}
	f5 := Fig5(res)
	if len(f5) != 1 || f5[0].Def[0] != 3 || f5[0].Ctl[0] != 6 {
		t.Fatalf("Fig5 extraction wrong: %+v", f5)
	}
}

func TestTableVExtraEnergyAggregate(t *testing.T) {
	r := &TableVResult{
		Coordinated: []Comparison{
			{App: "a", Ctl: RunResult{EnergyJ: 100}},
			{App: workload.NameMXPlayer, Ctl: RunResult{EnergyJ: 100}},
		},
		Rows: []Comparison{
			{App: "a", Ctl: RunResult{EnergyJ: 120}},
			{App: workload.NameMXPlayer, Ctl: RunResult{EnergyJ: 500}}, // excluded
		},
	}
	if got := r.ExtraEnergyVsCoordinatedPct(); got != 20 {
		t.Fatalf("extra energy = %v, want 20 (MX Player excluded)", got)
	}
}
