// Package experiment reproduces every table and figure of the paper's
// evaluation (§V): it profiles the applications, measures the default
// governors, runs the controller, and aggregates the comparisons the
// paper reports. Each artifact has one entry point (Fig1, TableI …
// TableV, Overhead) returning structured data that internal/report
// renders.
package experiment

import (
	"fmt"
	"time"

	"aspeo/internal/core"
	"aspeo/internal/governor"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/stats"
	"aspeo/internal/workload"
)

// Config controls an experiment campaign.
type Config struct {
	// Seeds for repeated runs; the paper averages three runs.
	Seeds []int64
	// ProfileSeeds for the offline profiling stage.
	ProfileSeeds []int64
	// ProfileWarmup/ProfileWindow per configuration.
	ProfileWarmup time.Duration
	ProfileWindow time.Duration
	// Quick reduces fidelity (single seed, short windows) for smoke
	// tests and benchmarks.
	Quick bool
	// Workers bounds the campaign worker pool fanning out independent
	// simulation cells (runs and profiling points). 0 or negative means
	// one worker per CPU (runtime.GOMAXPROCS(0)); 1 forces the serial
	// path. Results are identical for every setting — see runner.go.
	Workers int
}

// Default returns the paper-faithful campaign configuration.
func Default() Config {
	return Config{
		Seeds:         []int64{101, 202, 303},
		ProfileSeeds:  []int64{11, 22, 33},
		ProfileWarmup: 4 * time.Second,
		ProfileWindow: 36 * time.Second,
	}
}

// Quick returns a reduced-fidelity configuration: one seed and short
// profiling windows. Result shapes hold; confidence is lower.
func Quick() Config {
	return Config{
		Seeds:         []int64{101},
		ProfileSeeds:  []int64{11},
		ProfileWarmup: 2 * time.Second,
		ProfileWindow: 16 * time.Second,
		Quick:         true,
	}
}

func (c Config) validate() error {
	if len(c.Seeds) == 0 || len(c.ProfileSeeds) == 0 {
		return fmt.Errorf("experiment: empty seed lists")
	}
	if c.ProfileWindow <= 0 {
		return fmt.Errorf("experiment: non-positive profile window")
	}
	return nil
}

func (c Config) profileOptions(load workload.BGLoad, mode profile.BWMode) profile.Options {
	return profile.Options{
		Load:    load,
		Mode:    mode,
		Seeds:   c.ProfileSeeds,
		Warmup:  c.ProfileWarmup,
		Window:  c.ProfileWindow,
		Workers: c.Workers,
	}
}

// RunResult aggregates one measurement condition over the seed set.
type RunResult struct {
	EnergyJ     float64 // mean
	AvgPowerW   float64
	PeakPowerW  float64
	GIPS        float64
	RuntimeSec  float64
	EnergyStd   float64
	CPUResidPct []float64 // last run's CPU-frequency residency (percent)
	BWResidPct  []float64 // last run's bandwidth residency (percent)
	FreqChanges int
	BWChanges   int
}

// runOne executes one run of spec under the given installer and returns
// stats plus the phone for residency extraction.
func runOne(spec *workload.Spec, load workload.BGLoad, seed int64,
	install func(platform.Runner) error) (sim.Stats, *sim.Phone, error) {

	h, err := NewHarness(HarnessConfig{
		Foreground: spec, Load: load, Seed: seed, Install: install,
	})
	if err != nil {
		return sim.Stats{}, nil, err
	}
	return h.RunSession(), h.Phone, nil
}

// aggregate folds per-seed stats into a RunResult.
func aggregate(stats_ []sim.Stats, lastPh *sim.Phone) RunResult {
	var e, p, pk, g, t []float64
	for _, st := range stats_ {
		e = append(e, st.EnergyJ)
		p = append(p, st.AvgPowerW)
		pk = append(pk, st.PeakPowerW)
		g = append(g, st.GIPS)
		t = append(t, st.Duration.Seconds())
	}
	rr := RunResult{
		EnergyJ:    stats.Mean(e),
		AvgPowerW:  stats.Mean(p),
		PeakPowerW: stats.Max(pk),
		GIPS:       stats.Mean(g),
		RuntimeSec: stats.Mean(t),
		EnergyStd:  stats.StdDev(e),
	}
	if lastPh != nil {
		rr.CPUResidPct = lastPh.CPUHistogram().Percents()
		rr.BWResidPct = lastPh.BWHistogram().Percents()
		rr.FreqChanges = lastPh.FreqChanges()
		rr.BWChanges = lastPh.BWChanges()
	}
	return rr
}

// MeasureDefault runs the app under the stock governors (interactive +
// cpubw_hwmon) with perf attached — the paper's R_def / T_def / P_def /
// E_def measurement (§III-A).
func (c Config) MeasureDefault(spec *workload.Spec, load workload.BGLoad) (RunResult, error) {
	if err := c.validate(); err != nil {
		return RunResult{}, err
	}
	all, last, err := c.runSeeds(spec, load, func(seed int64) func(platform.Runner) error {
		return func(r platform.Runner) error {
			if err := governor.Defaults(r); err != nil {
				return err
			}
			return r.Register(perftool.MustNew(time.Second, seed))
		}
	})
	if err != nil {
		return RunResult{}, err
	}
	return aggregate(all, last), nil
}

// RunController runs the app under the energy controller with the given
// profile table and target.
func (c Config) RunController(spec *workload.Spec, tab *profile.Table,
	targetGIPS float64, load workload.BGLoad, cpuOnly bool) (RunResult, error) {

	if err := c.validate(); err != nil {
		return RunResult{}, err
	}
	all, last, err := c.runSeeds(spec, load, func(seed int64) func(platform.Runner) error {
		return func(r platform.Runner) error {
			opts := core.DefaultOptions(tab, targetGIPS)
			opts.Seed = seed
			opts.CPUOnly = cpuOnly
			ctl, err := core.New(opts)
			if err != nil {
				return err
			}
			if cpuOnly {
				// The bandwidth stays under its default governor.
				if err := r.Register(governor.NewDevFreq()); err != nil {
					return err
				}
			}
			return ctl.Install(r)
		}
	})
	if err != nil {
		return RunResult{}, err
	}
	return aggregate(all, last), nil
}

// Comparison is one row of Tables III/IV/V: controller vs default.
type Comparison struct {
	App     string
	Load    workload.BGLoad
	Default RunResult
	Ctl     RunResult
	// PerfDeltaPct follows the paper's convention: positive = the
	// controller performed better. Deadline-critical apps compare
	// execution time; the rest compare GIPS.
	PerfDeltaPct float64
	// EnergySavingsPct is 100·(E_def − E_ctl)/E_def.
	EnergySavingsPct float64
}

func compare(spec *workload.Spec, load workload.BGLoad, def, ctl RunResult) Comparison {
	var perf float64
	if spec.DeadlineCritical {
		perf = stats.PctDelta(1/ctl.RuntimeSec, 1/def.RuntimeSec)
	} else {
		perf = stats.PctDelta(ctl.GIPS, def.GIPS)
	}
	return Comparison{
		App: spec.Name, Load: load, Default: def, Ctl: ctl,
		PerfDeltaPct:     perf,
		EnergySavingsPct: stats.Savings(ctl.EnergyJ, def.EnergyJ),
	}
}

// Evaluate profiles the app under BL, measures the default under `load`,
// and runs the controller against the default's performance. This is the
// paper's end-to-end protocol for one (app, load) cell.
func (c Config) Evaluate(spec *workload.Spec, tab *profile.Table,
	targetGIPS float64, load workload.BGLoad, cpuOnly bool) (Comparison, error) {

	// The default measurement and the controller run are independent
	// (the target is given), so they are two cells of the campaign pool.
	var def, ctl RunResult
	err := c.forEachCell(2, func(i int) error {
		var err error
		if i == 0 {
			def, err = c.MeasureDefault(spec, load)
		} else {
			ctl, err = c.RunController(spec, tab, targetGIPS, load, cpuOnly)
		}
		return err
	})
	if err != nil {
		return Comparison{}, err
	}
	return compare(spec, load, def, ctl), nil
}

// Profile runs the offline profiling stage for the app.
func (c Config) Profile(spec *workload.Spec, load workload.BGLoad, mode profile.BWMode) (*profile.Table, error) {
	return profile.Run(spec, c.profileOptions(load, mode))
}
