package experiment

import (
	"fmt"
	"time"

	"aspeo/internal/battery"
	"aspeo/internal/core"
	"aspeo/internal/governor"
	"aspeo/internal/loadmodel"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/sim"
	"aspeo/internal/thermal"
	"aspeo/internal/workload"
)

// These experiments go beyond the paper's evaluation, implementing the
// extensions its §V-C and §VII sketch: battery-life translation of the
// energy savings, model-based profile adaptation across load conditions,
// phase-aware control for the §V-B problem apps, and thermal behaviour.

// BatteryRow translates one Table III row into battery life.
type BatteryRow struct {
	App              string
	DefaultLife      time.Duration
	ControllerLife   time.Duration
	LifeExtensionPct float64
}

// BatteryLife converts a Table III campaign's average powers into
// screen-on battery life on the stock 3220 mAh pack — the end-user
// quantity the paper's abstract motivates.
func BatteryLife(res *TableIIIResult) ([]BatteryRow, error) {
	pack := battery.Nexus6Pack()
	var out []BatteryRow
	for _, row := range res.Rows {
		defLife, err := battery.LifeEstimate(pack, row.Default.AvgPowerW, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("battery life for %s: %w", row.App, err)
		}
		ctlLife, err := battery.LifeEstimate(pack, row.Ctl.AvgPowerW, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("battery life for %s: %w", row.App, err)
		}
		ext, err := battery.LifeExtensionPct(pack, row.Default.AvgPowerW, row.Ctl.AvgPowerW)
		if err != nil {
			return nil, err
		}
		out = append(out, BatteryRow{
			App: row.App, DefaultLife: defLife, ControllerLife: ctlLife,
			LifeExtensionPct: ext,
		})
	}
	return out, nil
}

// LoadModelResult compares the three ways to obtain an NL table for an
// app profiled under BL: reuse it stale, adapt it with the load model,
// or re-profile from scratch (§V-C future work).
type LoadModelResult struct {
	App        string
	Stale      Comparison // BL table + BL target under NL
	Adapted    Comparison // model-adapted table + target under NL
	Reprofiled Comparison // full NL re-profile
}

// LoadModelStudy runs the comparison for one app.
func (c Config) LoadModelStudy(spec *workload.Spec) (*LoadModelResult, error) {
	blTab, err := c.Profile(spec, workload.BaselineLoad, 0)
	if err != nil {
		return nil, err
	}
	blDef, err := c.MeasureDefault(spec, workload.BaselineLoad)
	if err != nil {
		return nil, err
	}
	blFp, err := loadmodel.Characterize(workload.BaselineLoad, spec.Name, c.Seeds[0], c.ProfileWindow)
	if err != nil {
		return nil, err
	}
	nlFp, err := loadmodel.Characterize(workload.NoLoad, spec.Name, c.Seeds[0], c.ProfileWindow)
	if err != nil {
		return nil, err
	}

	res := &LoadModelResult{App: spec.Name}

	// 1. Stale: the paper's Table IV condition.
	res.Stale, err = c.Evaluate(spec, blTab, blDef.GIPS, workload.NoLoad, false)
	if err != nil {
		return nil, err
	}
	// 2. Model-adapted: no re-profiling, just the footprint shift.
	adTab, err := loadmodel.Adapt(blTab, blFp, nlFp)
	if err != nil {
		return nil, err
	}
	adTarget := loadmodel.AdaptTarget(blDef.GIPS, blFp, nlFp)
	res.Adapted, err = c.Evaluate(spec, adTab, adTarget, workload.NoLoad, false)
	if err != nil {
		return nil, err
	}
	// 3. Re-profiled: the expensive ground truth.
	nlTab, err := c.Profile(spec, workload.NoLoad, 0)
	if err != nil {
		return nil, err
	}
	nlDef, err := c.MeasureDefault(spec, workload.NoLoad)
	if err != nil {
		return nil, err
	}
	res.Reprofiled, err = c.Evaluate(spec, nlTab, nlDef.GIPS, workload.NoLoad, false)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PhaseResult compares the plain and phase-aware controllers on a
// phase-heavy application.
type PhaseResult struct {
	App            string
	Plain          Comparison
	PhaseAware     Comparison
	PhasesDetected int
}

// PhaseStudy runs the §V-B extension on MobileBench, the app the paper
// singles out as hardest for the fixed-table controller.
func (c Config) PhaseStudy() (*PhaseResult, error) {
	spec := workload.MobileBench()
	tab, err := c.Profile(spec, workload.BaselineLoad, 0)
	if err != nil {
		return nil, err
	}
	def, err := c.MeasureDefault(spec, workload.BaselineLoad)
	if err != nil {
		return nil, err
	}

	run := func(phaseAware bool) (Comparison, int, error) {
		var all []sim.Stats
		var last *sim.Phone
		phases := 0
		for _, seed := range c.Seeds {
			var ctl *core.Controller
			st, ph, err := runOne(spec, workload.BaselineLoad, seed, func(r platform.Runner) error {
				opts := core.DefaultOptions(tab, def.GIPS)
				opts.Seed = seed
				opts.PhaseAware = phaseAware
				var err error
				ctl, err = core.New(opts)
				if err != nil {
					return err
				}
				return ctl.Install(r)
			})
			if err != nil {
				return Comparison{}, 0, err
			}
			all = append(all, st)
			last = ph
			phases = ctl.PhasesDetected()
		}
		return compare(spec, workload.BaselineLoad, def, aggregate(all, last)), phases, nil
	}

	res := &PhaseResult{App: spec.Name}
	var err2 error
	res.Plain, _, err2 = run(false)
	if err2 != nil {
		return nil, err2
	}
	res.PhaseAware, res.PhasesDetected, err2 = run(true)
	if err2 != nil {
		return nil, err2
	}
	return res, nil
}

// ThermalResult summarizes junction behaviour under default governors vs
// the controller.
type ThermalResult struct {
	App          string
	DefaultPeakC float64
	CtlPeakC     float64
	DefaultThrot time.Duration
	CtlThrot     time.Duration
}

// ThermalStudy runs AngryBirds with the thermal monitor active under
// both policies inside a tight passive-cooling envelope: the default
// governor's 1.5 GHz excursions push the junction over the trip point
// while the controller's lower operating point stays under it.
func (c Config) ThermalStudy() (*ThermalResult, error) {
	spec := workload.AngryBirds()
	tab, err := c.Profile(spec, workload.BaselineLoad, 0)
	if err != nil {
		return nil, err
	}
	def, err := c.MeasureDefault(spec, workload.BaselineLoad)
	if err != nil {
		return nil, err
	}

	params := thermal.DefaultParams()
	params.TripC = 36 // a tight envelope (hot day, case on) so gaming bites
	params.ReleaseC = 33

	run := func(install func(platform.Runner) error) (*thermal.Monitor, error) {
		mon := thermal.MustNew(params)
		_, _, err := runOne(spec, workload.BaselineLoad, c.Seeds[0], func(r platform.Runner) error {
			if err := install(r); err != nil {
				return err
			}
			return r.Register(mon)
		})
		return mon, err
	}

	defMon, err := run(func(r platform.Runner) error {
		if err := governor.Defaults(r); err != nil {
			return err
		}
		return r.Register(perftool.MustNew(time.Second, c.Seeds[0]))
	})
	if err != nil {
		return nil, err
	}
	ctlMon, err := run(func(r platform.Runner) error {
		opts := core.DefaultOptions(tab, def.GIPS)
		opts.Seed = c.Seeds[0]
		ctl, err := core.New(opts)
		if err != nil {
			return err
		}
		return ctl.Install(r)
	})
	if err != nil {
		return nil, err
	}
	return &ThermalResult{
		App:          spec.Name,
		DefaultPeakC: defMon.PeakC(), CtlPeakC: ctlMon.PeakC(),
		DefaultThrot: defMon.ThrottledFor(), CtlThrot: ctlMon.ThrottledFor(),
	}, nil
}
