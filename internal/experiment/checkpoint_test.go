package experiment_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"aspeo/internal/experiment"
	"aspeo/internal/profile"
	"aspeo/internal/report"
)

// storedProfile writes a synthetic coordinated profile with a strictly
// convex frontier so controller sessions skip on-the-fly profiling.
func storedProfile(t *testing.T) (path string, target float64) {
	t.Helper()
	tab := &profile.Table{App: "golden", Load: "BL", Mode: profile.Coordinated, BaseGIPS: 0.8}
	s, p, step := 1.0, 1.6, 0.012
	for f := 0; f < 9; f++ {
		for bw := 0; bw < 13; bw++ {
			tab.Entries = append(tab.Entries, profile.Entry{
				FreqIdx: 2 * f, BWIdx: bw,
				Speedup: s, PowerW: p, GIPS: s * tab.BaseGIPS,
			})
			s += 0.02
			p += step
			step += 0.0004
		}
	}
	path = filepath.Join(t.TempDir(), "golden.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, 0.5 * (tab.MinSpeedup() + tab.MaxSpeedup()) * tab.BaseGIPS
}

// runToEnd runs a fresh session from the spec (with checkpointing
// stripped) and returns its summary bytes and allocation log — the
// reference an interrupted-and-restored run must reproduce exactly.
func runToEnd(t *testing.T, spec experiment.SessionSpec) ([]byte, []interface{}) {
	t.Helper()
	spec.CheckpointEvery = 0
	spec.OnCheckpoint = nil
	sess, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Run(nil)
	raw, err := json.Marshal(report.NewRunSummary(sess, st))
	if err != nil {
		t.Fatal(err)
	}
	var log []interface{}
	if sess.Controller != nil {
		for _, r := range sess.Controller.AllocationLog() {
			log = append(log, r)
		}
	}
	return raw, log
}

// killRestore runs the spec with checkpointing, interrupts ("kills")
// the run after `afterCkpts` snapshots have landed, rebuilds a fresh
// session from the same spec, restores the last snapshot, and runs it
// to completion — returning the restored run's summary and log.
func killRestore(t *testing.T, spec experiment.SessionSpec, afterCkpts int) ([]byte, []interface{}) {
	t.Helper()
	var last *experiment.CellState
	sink := func(cs *experiment.CellState) error { last = cs; return nil }
	spec.OnCheckpoint = sink

	first, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The interrupt polls BEFORE the checkpoint hook each iteration, so
	// the kill lands one loop iteration after the target snapshot — the
	// cell has advanced past the checkpoint, and restore must rewind it.
	st := first.Run(func() bool { return first.CheckpointStats().Captured >= afterCkpts })
	if got := first.CheckpointStats(); got.Captured < afterCkpts || got.Failures != 0 {
		t.Fatalf("checkpoint stats before kill: %+v", got)
	}
	if last == nil {
		t.Fatal("no checkpoint captured before the kill")
	}
	if st.Duration >= spec.RunFor {
		t.Fatalf("kill did not interrupt: ran %v of %v", st.Duration, spec.RunFor)
	}

	second, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreState(last); err != nil {
		t.Fatal(err)
	}
	if !second.Restored() {
		t.Fatal("Restored() false after RestoreState")
	}
	st2 := second.Run(nil)
	raw, err := json.Marshal(report.NewRunSummary(second, st2))
	if err != nil {
		t.Fatal(err)
	}
	var log []interface{}
	if second.Controller != nil {
		for _, r := range second.Controller.AllocationLog() {
			log = append(log, r)
		}
	}
	return raw, log
}

func checkGolden(t *testing.T, spec experiment.SessionSpec, afterCkpts int) {
	t.Helper()
	wantJSON, wantLog := runToEnd(t, spec)
	gotJSON, gotLog := killRestore(t, spec, afterCkpts)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("restored summary diverged:\nuninterrupted: %s\nrestored:      %s", wantJSON, gotJSON)
	}
	if len(wantLog) != len(gotLog) {
		t.Fatalf("restored run logged %d allocation cycles, uninterrupted %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if !reflect.DeepEqual(wantLog[i], gotLog[i]) {
			t.Fatalf("allocation cycle %d diverged:\nuninterrupted: %+v\nrestored:      %+v",
				i, wantLog[i], gotLog[i])
		}
	}
}

// TestKillRestoreControllerGolden is the checkpoint acceptance test: a
// controller session killed mid-run and restored from its last snapshot
// finishes with byte-identical summary JSON and an identical allocation
// log, cycle for cycle.
func TestKillRestoreControllerGolden(t *testing.T) {
	prof, target := storedProfile(t)
	checkGolden(t, experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		RunFor: 30 * time.Second, LogAllocations: true,
		CheckpointEvery: 3,
	}, 2)
}

// TestKillRestoreGovernorGolden covers the stock-governor path: the
// interactive governor's timer state, tunable files, perf tool RNG and
// ring all come back bit-exactly.
func TestKillRestoreGovernorGolden(t *testing.T) {
	checkGolden(t, experiment.SessionSpec{
		App: "wechat", Load: "HL", Governor: "interactive", Seed: 7,
		RunFor:          20 * time.Second,
		CheckpointEvery: 4,
	}, 2)
}

// TestKillRestoreFaultsGolden adds a fault scenario on top of the
// controller: the injector's RNG, schedule and hijack counts restore
// mid-torment without perturbing the stream.
func TestKillRestoreFaultsGolden(t *testing.T) {
	prof, target := storedProfile(t)
	checkGolden(t, experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 1234,
		Faults: "combined",
		RunFor: 30 * time.Second, LogAllocations: true,
		CheckpointEvery: 2,
	}, 3)
}

// TestCheckpointSinkFailureDoesNotKillRun: losing durability is counted,
// not fatal — the session completes and reports the failures.
func TestCheckpointSinkFailureDoesNotKillRun(t *testing.T) {
	prof, target := storedProfile(t)
	spec := experiment.SessionSpec{
		App: "spotify", Load: "BL", Controller: true,
		Profile: prof, TargetGIPS: target, Seed: 42,
		RunFor: 10 * time.Second, CheckpointEvery: 2,
		OnCheckpoint: func(*experiment.CellState) error {
			return os.ErrPermission
		},
	}
	sess, err := experiment.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Run(nil)
	if st.Duration != 10*time.Second {
		t.Fatalf("run duration %v, want full 10s", st.Duration)
	}
	stats := sess.CheckpointStats()
	if stats.Failures == 0 || stats.Captured != 0 || stats.LastErr == "" {
		t.Fatalf("checkpoint stats %+v, want only failures", stats)
	}
}

// TestCheckpointSpecValidation: checkpointing without a sink or with
// trace recording is rejected up front, not at the first capture.
func TestCheckpointSpecValidation(t *testing.T) {
	base := experiment.SessionSpec{App: "spotify", Load: "BL", Governor: "interactive"}

	s := base
	s.CheckpointEvery = 2
	if err := s.Validate(); err == nil {
		t.Error("CheckpointEvery without sink accepted")
	}
	s.OnCheckpoint = func(*experiment.CellState) error { return nil }
	s.TraceEvery = time.Millisecond
	if err := s.Validate(); err == nil {
		t.Error("checkpointing with trace recording accepted")
	}
	s.TraceEvery = 0
	if err := s.Validate(); err != nil {
		t.Errorf("valid checkpoint spec rejected: %v", err)
	}
	s.CheckpointEvery = -1
	if err := s.Validate(); err == nil {
		t.Error("negative CheckpointEvery accepted")
	}
}
