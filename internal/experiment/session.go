package experiment

import (
	"fmt"
	"os"
	"strings"
	"time"

	"aspeo/internal/core"
	"aspeo/internal/fault"
	"aspeo/internal/governor"
	"aspeo/internal/obs"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

// SessionSpec declaratively describes one end-to-end run: an application
// on a simulated phone under either a stock governor pair or the energy
// controller, optionally tormented by a fault scenario. It is the shared
// construction path of aspeo-run and the fleet runtime — both validate a
// spec, build a Session from it, and run it — so the wiring rules
// (registration order, fault decoration, profiling fallbacks) live in
// exactly one place and a 1-session fleet run is the same computation as
// the equivalent aspeo-run invocation.
type SessionSpec struct {
	// App is the application under test (workload.ByName). Ignored for
	// resolution when AppSpec is set.
	App string
	// AppSpec, when non-nil, is an inline application definition — a
	// generated workload (scenario chain, perturbation, imported trace)
	// that has no library name. App, if also set, must match
	// AppSpec.Name; when empty it is filled from it for display.
	AppSpec *workload.Spec
	// ExtraBackground appends additional background tasks after the
	// load condition's standard set — scenario ambient conditions such
	// as ad-burst storms.
	ExtraBackground []*workload.Spec
	// Load is the background condition: NL, BL or HL.
	Load string
	// Governor is the baseline cpufreq policy when Controller is false
	// (one of governor.CPUFreqPolicies).
	Governor string
	// Controller runs the energy controller instead of a stock governor.
	Controller bool
	// CPUOnly restricts the controller to CPU frequency (Table V
	// baseline).
	CPUOnly bool
	// Profile is a profile-table JSON path; empty profiles on the fly.
	Profile string
	// TargetGIPS is the performance target; 0 measures it from the
	// default governors.
	TargetGIPS float64
	// Quick selects reduced-fidelity on-the-fly profiling.
	Quick bool
	// Seed drives the cell's whole stochastic state.
	Seed int64
	// Engine selects the simulation core: "event" (the default, also
	// selected by ""), or "fixed" for the compatibility backend. The two
	// cores are golden-tested bit-identical; the knob exists for that
	// proof and for falling back if an event-core bug ever surfaces.
	Engine string
	// Faults names a fault scenario (FaultScenarioByName); empty injects
	// nothing.
	Faults string
	// TraceEvery, when positive, attaches a trace recorder at that
	// decimation interval.
	TraceEvery time.Duration
	// RunFor caps the session at a fixed duration instead of the app's
	// nominal session; 0 keeps the standard session semantics. The fleet
	// runtime uses it to bound session length.
	RunFor time.Duration
	// LogAllocations keeps the controller's per-cycle decision log — the
	// golden tests' cycle-for-cycle comparison record.
	LogAllocations bool
	// Resilience overrides the controller's fault-handling ladder; the
	// zero value selects the hardened defaults.
	Resilience core.Resilience
	// OnCycle subscribes to the controller's per-cycle telemetry
	// (controller mode only; see core.Options.OnCycle for the contract).
	OnCycle func(core.CycleSnapshot)
	// CheckpointEvery, when positive, captures a full session snapshot
	// every CheckpointEvery control cycles (controller mode) or every
	// CheckpointEvery seconds of simulated time (governor mode) and
	// delivers it to OnCheckpoint. Incompatible with TraceEvery (the
	// trace recorder's ring cannot be restored bit-exactly).
	CheckpointEvery int
	// OnCheckpoint receives each captured snapshot (required when
	// CheckpointEvery is set). The sink owns durability — typically an
	// atomic write through internal/ckpt. A sink error is counted
	// (CheckpointStats) and the run continues.
	OnCheckpoint func(*CellState) error
	// Trace receives the controller's per-stage decision spans
	// (controller mode only). A non-nil sink turns on decision tracing
	// (core.Options.Trace) and is attached to the cell's telemetry
	// surface; tracing is observation only, so a traced run is
	// bit-identical to an untraced one.
	Trace obs.Sink
	// Logf receives informational progress messages ("profiling...");
	// nil is silent.
	Logf func(format string, args ...any)
}

// Validate rejects specs that would otherwise fall through to defaults
// silently: unknown apps, loads, governors and fault scenarios are
// errors, not no-ops.
func (s SessionSpec) Validate() error {
	if s.AppSpec != nil {
		if err := s.AppSpec.Validate(); err != nil {
			return err
		}
		if s.App != "" && s.App != s.AppSpec.Name {
			return fmt.Errorf("app %q does not match inline workload %q", s.App, s.AppSpec.Name)
		}
	} else if _, err := workload.ByName(s.App); err != nil {
		return err
	}
	for i, bg := range s.ExtraBackground {
		if bg == nil {
			return fmt.Errorf("extra background %d: nil spec", i)
		}
		if err := bg.Validate(); err != nil {
			return fmt.Errorf("extra background %d: %w", i, err)
		}
	}
	if _, err := workload.ParseBGLoad(s.Load); err != nil {
		return err
	}
	if !s.Controller {
		ok := false
		for _, g := range governor.CPUFreqPolicies() {
			if s.Governor == g {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown governor %q (want one of: %s)",
				s.Governor, strings.Join(governor.CPUFreqPolicies(), ", "))
		}
	}
	if _, err := sim.ParseBackend(s.Engine); err != nil {
		return err
	}
	if s.Faults != "" {
		if _, err := FaultScenarioByName(s.Faults); err != nil {
			return err
		}
	}
	if s.TargetGIPS < 0 {
		return fmt.Errorf("negative target %v GIPS", s.TargetGIPS)
	}
	if s.RunFor < 0 {
		return fmt.Errorf("negative run duration %v", s.RunFor)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("negative checkpoint interval %d", s.CheckpointEvery)
	}
	if s.CheckpointEvery > 0 {
		if s.OnCheckpoint == nil {
			return fmt.Errorf("CheckpointEvery set without an OnCheckpoint sink")
		}
		if s.TraceEvery > 0 {
			return fmt.Errorf("checkpointing is incompatible with trace recording (TraceEvery)")
		}
	}
	return nil
}

// Session is one fully constructed run: the harness plus the actors
// NewSession wired onto it and the inputs it resolved along the way.
type Session struct {
	Spec SessionSpec
	// App and Load are the resolved workload inputs.
	App  *workload.Spec
	Load workload.BGLoad
	// Harness is the underlying simulation cell.
	Harness *Harness
	// Controller is the installed energy controller; nil in governor
	// mode.
	Controller *core.Controller
	// Injector is the installed fault injector; nil without a scenario.
	Injector *fault.Injector
	// TargetGIPS is the resolved performance target (0 in governor
	// mode).
	TargetGIPS float64
	// TableEntries and BaseGIPS describe the profile table the
	// controller runs on (0 in governor mode).
	TableEntries int
	BaseGIPS     float64

	// Checkpoint plumbing (see checkpoint.go). ckptPending carries the
	// controller cycle that requested a snapshot (0 = none); nextCkptAt
	// is the governor-mode schedule; cursor/restored drive Run's resume
	// path after RestoreState.
	onCheckpoint func(*CellState) error
	ckptPending  int
	nextCkptAt   time.Duration
	ckptStats    CheckpointStats
	cursor       sim.RunCursor
	restored     bool
}

// NewSession validates the spec and builds the cell: phone, engine,
// injector, governors or controller — the exact wiring aspeo-run
// performs, exported so the fleet runtime reuses it. Construction can be
// expensive in controller mode without a stored profile: the on-the-fly
// profiling campaign runs here.
func NewSession(spec SessionSpec) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	logf := spec.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	app := spec.AppSpec
	if app == nil {
		app, _ = workload.ByName(spec.App)
	}
	if spec.App == "" {
		spec.App = app.Name
	}
	bg, _ := workload.ParseBGLoad(spec.Load)
	s := &Session{Spec: spec, App: app, Load: bg}

	// The injector registers first so its clock leads the actors it
	// torments; it decorates the controller's (or perf's) I/O surfaces.
	if spec.Faults != "" {
		sc, err := FaultScenarioByName(spec.Faults)
		if err != nil {
			return nil, err
		}
		s.Injector, err = fault.NewInjector(sc.Plan, spec.Seed)
		if err != nil {
			return nil, err
		}
		logf("fault scenario %s: %s", sc.Name, sc.Desc)
	}

	install := func(r platform.Runner) error {
		if s.Injector != nil {
			if err := r.Register(s.Injector); err != nil {
				return err
			}
		}
		if spec.Controller {
			tab, tgt, err := resolveTableAndTarget(app, bg, spec, logf)
			if err != nil {
				return err
			}
			opts := core.DefaultOptions(tab, tgt)
			opts.Seed = spec.Seed
			opts.CPUOnly = spec.CPUOnly
			opts.LogAllocations = spec.LogAllocations
			opts.Resilience = spec.Resilience
			opts.OnCycle = spec.OnCycle
			opts.Trace = spec.Trace != nil
			if spec.CheckpointEvery > 0 {
				// The controller only signals; the engine hook captures at
				// the next loop boundary, where the cell is quiescent.
				opts.CheckpointEvery = spec.CheckpointEvery
				opts.OnCheckpoint = func(cyclesRun int) { s.ckptPending = cyclesRun }
			}
			ctl, err := core.New(opts)
			if err != nil {
				return err
			}
			if spec.CPUOnly {
				if err := r.Register(governor.NewDevFreq()); err != nil {
					return err
				}
			}
			ctlRunner := r
			if s.Injector != nil {
				ctlRunner = fault.WrapRunner(r, s.Injector)
			}
			if err := ctl.Install(ctlRunner); err != nil {
				return err
			}
			if s.Injector != nil {
				// Stock governors stand by to take over after a hijack
				// or a relinquish; they idle while the governor files
				// read "userspace".
				if err := governor.Defaults(r); err != nil {
					return err
				}
				fault.WrapPerf(ctl.Perf(), s.Injector)
			}
			s.Controller = ctl
			s.TargetGIPS = tgt
			s.TableEntries = tab.Len()
			s.BaseGIPS = tab.BaseGIPS
			logf("controller: target %.4f GIPS, table %d entries (base %.4f GIPS)",
				tgt, tab.Len(), tab.BaseGIPS)
			return nil
		}
		if err := r.Device().WriteFile(sysfs.CPUScalingGovernor, spec.Governor); err != nil {
			return fmt.Errorf("setting governor: %w", err)
		}
		if err := governor.Defaults(r); err != nil {
			return err
		}
		p := perftool.MustNew(time.Second, spec.Seed)
		if err := r.Register(p); err != nil {
			return err
		}
		if s.Injector != nil {
			fault.WrapPerf(p, s.Injector)
		}
		return nil
	}

	backend, _ := sim.ParseBackend(spec.Engine)
	h, err := NewHarness(HarnessConfig{
		Foreground: app, Load: bg, ExtraBackground: spec.ExtraBackground,
		Seed: spec.Seed, Engine: backend,
		TraceEvery: spec.TraceEvery, Install: install,
	})
	if err != nil {
		return nil, err
	}
	if spec.Trace != nil {
		h.Phone.AttachSpanSink(spec.Trace)
	}
	s.Harness = h
	if spec.CheckpointEvery > 0 {
		s.onCheckpoint = spec.OnCheckpoint
		if !spec.Controller {
			s.nextCkptAt = time.Duration(spec.CheckpointEvery) * time.Second
		}
		h.Engine.SetCheckpointHook(s.pollCheckpoint)
	}
	return s, nil
}

// Run executes the session. stop, when non-nil, is polled at every
// engine step; a true return ends the run there and the Stats cover the
// partial window (cooperative stop — the fleet runtime's session
// cancellation). A nil stop, or one that never fires, yields exactly the
// standard session.
func (s *Session) Run(stop func() bool) sim.Stats {
	if stop != nil {
		s.Harness.Engine.SetInterrupt(stop)
		defer s.Harness.Engine.SetInterrupt(nil)
	}
	if s.restored {
		// A restored session resumes the checkpointed run window; Stats
		// still cover the original run interval, so the summary matches an
		// uninterrupted run byte for byte.
		return s.Harness.Engine.Resume(s.cursor)
	}
	if s.Spec.RunFor > 0 {
		return s.Harness.Engine.Run(s.Spec.RunFor, s.App.DeadlineCritical)
	}
	return s.Harness.RunSession()
}

// resolveTableAndTarget resolves the controller inputs: a stored table
// or a fresh profiling pass, and the default-measured target when none
// given.
func resolveTableAndTarget(app *workload.Spec, bg workload.BGLoad,
	spec SessionSpec, logf func(string, ...any)) (*profile.Table, float64, error) {

	exp := Default()
	if spec.Quick {
		exp = Quick()
	}
	var tab *profile.Table
	if spec.Profile != "" {
		f, err := os.Open(spec.Profile)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		tab, err = profile.ReadJSON(f)
		if err != nil {
			return nil, 0, err
		}
	} else {
		var err error
		logf("profiling (pass a profile table to reuse a stored one)...")
		mode := profile.Coordinated
		if spec.CPUOnly {
			mode = profile.Governed
		}
		tab, err = exp.Profile(app, bg, mode)
		if err != nil {
			return nil, 0, err
		}
	}
	target := spec.TargetGIPS
	if target == 0 {
		logf("measuring default-governor performance for the target...")
		def, err := exp.MeasureDefault(app, bg)
		if err != nil {
			return nil, 0, err
		}
		target = def.GIPS
	}
	return tab, target, nil
}
