package experiment

import (
	"fmt"
	"time"

	"aspeo/internal/sim"
)

// Session checkpointing. A CellState is the complete dynamic state of a
// running session cell — engine cursor, actor schedule and state, and
// the full device snapshot — captured only at the engine's quiescent
// point (the checkpoint hook). The contract is bit-exactness: a session
// killed after a checkpoint and rebuilt from the same SessionSpec, then
// restored and resumed, produces byte-identical deterministic outputs
// (run summary JSON, allocation log) to one that ran uninterrupted.
//
// Cadence: in controller mode a checkpoint is captured at the first
// engine-loop boundary after every CheckpointEvery-th control cycle
// (the controller signals via core.Options.OnCheckpoint; the session
// only raises a flag — nothing is snapshotted mid-tick). In governor
// mode there are no control cycles, so the session checkpoints on a
// simulated-time schedule of CheckpointEvery seconds (the perf tool's
// reporting period is 1 s, making the two cadences comparable).
//
// Checkpoint capture and delivery are observation only: a sink failure
// is counted and the run continues — losing durability must never kill
// an otherwise healthy session.

// CellState is one full session snapshot.
type CellState struct {
	// CyclesRun is the controller cycle count that triggered the capture
	// (0 for governor-mode time-scheduled checkpoints).
	CyclesRun int `json:"cycles_run"`
	// At is the simulated time of capture.
	At time.Duration `json:"at_ns"`
	// Cursor is the engine run in progress — window and Stats baselines.
	Cursor sim.RunCursor `json:"cursor"`
	// NextCheckpointAt is the governor-mode schedule position (0 in
	// controller mode, where cadence derives from the restored cycle
	// count).
	NextCheckpointAt time.Duration `json:"next_checkpoint_at_ns"`
	// Actors is the engine's actor set in registration order.
	Actors []sim.ActorState `json:"actors"`
	// Phone is the device snapshot.
	Phone sim.PhoneState `json:"phone"`
}

// CheckpointStats reports a session's checkpoint activity.
type CheckpointStats struct {
	// Captured counts successfully captured and delivered snapshots.
	Captured int
	// Failures counts capture or sink errors (the run continued).
	Failures int
	// LastErr is the most recent failure, "" if none.
	LastErr string
}

// CheckpointStats returns the session's checkpoint counters.
func (s *Session) CheckpointStats() CheckpointStats { return s.ckptStats }

// CaptureState snapshots the cell. Sessions normally checkpoint through
// the engine hook (SessionSpec.CheckpointEvery + OnCheckpoint); this is
// exported for harnesses that stop a run cooperatively and want a final
// snapshot at the stop boundary — the engine is quiescent there too.
func (s *Session) CaptureState(cyclesRun int) (*CellState, error) {
	eng := s.Harness.Engine
	actors, err := eng.CheckpointActors()
	if err != nil {
		return nil, err
	}
	phone, err := s.Harness.Phone.CheckpointState()
	if err != nil {
		return nil, err
	}
	return &CellState{
		CyclesRun:        cyclesRun,
		At:               s.Harness.Phone.Now(),
		Cursor:           eng.Cursor(),
		NextCheckpointAt: s.nextCkptAt,
		Actors:           actors,
		Phone:            phone,
	}, nil
}

// RestoreState restores a snapshot onto a freshly built session. The
// session must have been constructed from the same SessionSpec
// (identity checks live in the ckpt envelope layer). Order matters:
// actors first (they recreate runtime sysfs files — governor tunables —
// that the phone's sysfs value restore then fills), then the device,
// then the run cursor so Run resumes instead of starting over.
func (s *Session) RestoreState(cs *CellState) error {
	if cs == nil {
		return fmt.Errorf("experiment: restore nil cell state")
	}
	if err := s.Harness.Engine.RestoreActors(cs.Actors); err != nil {
		return err
	}
	if err := s.Harness.Phone.RestoreState(cs.Phone); err != nil {
		return err
	}
	s.cursor = cs.Cursor
	s.nextCkptAt = cs.NextCheckpointAt
	s.restored = true
	s.ckptPending = 0
	return nil
}

// Restored reports whether the session was restored from a checkpoint
// (its next Run resumes the captured run window).
func (s *Session) Restored() bool { return s.restored }

// pollCheckpoint is the engine checkpoint hook: it runs at every loop
// top and captures a snapshot when one is due — the controller raised
// the pending flag, or the governor-mode schedule expired. The schedule
// state is advanced BEFORE capture so the serialized snapshot carries
// the post-capture schedule and a restored session does not immediately
// re-checkpoint.
func (s *Session) pollCheckpoint() {
	var cycle int
	switch {
	case s.ckptPending > 0:
		cycle = s.ckptPending
		s.ckptPending = 0
	case s.nextCkptAt > 0 && s.Harness.Phone.Now() >= s.nextCkptAt:
		s.nextCkptAt += time.Duration(s.Spec.CheckpointEvery) * time.Second
	default:
		return
	}
	cs, err := s.CaptureState(cycle)
	if err == nil {
		err = s.onCheckpoint(cs)
	}
	if err != nil {
		s.ckptStats.Failures++
		s.ckptStats.LastErr = err.Error()
		return
	}
	s.ckptStats.Captured++
}
