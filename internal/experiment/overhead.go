package experiment

import (
	"fmt"
	"time"

	"aspeo/internal/core"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/profile"
	"aspeo/internal/workload"
)

// OverheadResult reproduces the §V-A1 controller-overhead accounting.
type OverheadResult struct {
	// PerfCPUOverheadPct is the machine share the perf tool costs at
	// the controller's 1 s sampling period (paper: 4%).
	PerfCPUOverheadPct float64
	// PerfPowerOverheadW is perf's standing power cost (paper: 15 mW).
	PerfPowerOverheadW float64
	// ControllerEnergyPerCycleJ is the regulator+optimizer compute cost
	// per 2 s control cycle (paper: <10 ms at ≈25 mW average).
	ControllerEnergyPerCycleJ float64
	// OptimizerTimePerCycle is the measured host wall time of the
	// energy optimizer per cycle (paper: regulator+optimizer <10 ms).
	OptimizerTimePerCycle time.Duration
	// FreqChangesPerCycle is how often the scheduler actuates.
	FreqChangesPerCycle float64
	// ActuationPowerW is the average actuation overhead (paper: 14 mW).
	ActuationPowerW float64
	Cycles          int
}

// Overhead runs the controller on AngryBirds and accounts its costs.
func (c Config) Overhead(tab *profile.Table, targetGIPS float64) (*OverheadResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	spec := workload.AngryBirds()
	if tab == nil {
		var err error
		tab, err = c.Profile(spec, workload.BaselineLoad, profile.Coordinated)
		if err != nil {
			return nil, err
		}
		def, err := c.MeasureDefault(spec, workload.BaselineLoad)
		if err != nil {
			return nil, err
		}
		targetGIPS = def.GIPS
	}

	opts := core.DefaultOptions(tab, targetGIPS)
	opts.Seed = c.Seeds[0]
	ctl, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	st, ph, err := runOne(spec, workload.BaselineLoad, c.Seeds[0], func(r platform.Runner) error {
		return ctl.Install(r)
	})
	if err != nil {
		return nil, err
	}
	if ctl.Cycles() == 0 {
		return nil, fmt.Errorf("experiment: controller never cycled")
	}

	cycles := ctl.Cycles()
	perCycleFreqChanges := float64(st.FreqChanges) / float64(cycles)
	// 5 mJ per transition (see sim.Phone.SetFreqIdx) averaged over the
	// cycle duration.
	actW := perCycleFreqChanges * 5e-3 / opts.CycleT.Seconds()
	perf := perftool.MustNew(opts.PerfPeriod, 0)
	_ = ph
	return &OverheadResult{
		PerfCPUOverheadPct:        100 * perf.OverheadFrac(),
		PerfPowerOverheadW:        0.015 / opts.PerfPeriod.Seconds(),
		ControllerEnergyPerCycleJ: 0.050,
		OptimizerTimePerCycle:     ctl.OptimizerWallTime() / time.Duration(cycles),
		FreqChangesPerCycle:       perCycleFreqChanges,
		ActuationPowerW:           actW,
		Cycles:                    cycles,
	}, nil
}
