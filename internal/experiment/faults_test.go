package experiment

import (
	"fmt"
	"testing"
	"time"

	"aspeo/internal/fault"
	"aspeo/internal/workload"
)

// TestFaultCampaignSmoke is the CI smoke test (`make smoke-faults`): one
// scenario against one app at Quick fidelity must produce a coherent
// row — faults delivered, ledger populated, hardened slack bounded by
// the stock governors' slack under the same scenario.
func TestFaultCampaignSmoke(t *testing.T) {
	cfg := Quick()
	scenario := FaultScenario{
		Name: "smoke-combined",
		Desc: "write failures + hijack + noisy perf",
		Plan: fault.Plan{
			WriteFailProb: 0.2,
			Hijacks:       []fault.Hijack{{At: 8 * time.Second, Repeat: 12 * time.Second}},
			DropProb:      0.1, SpikeProb: 0.05,
		},
	}
	res, err := cfg.FaultCampaign([]*workload.Spec{workload.Spotify()}, []FaultScenario{scenario})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.TargetGIPS <= 0 {
		t.Fatal("no fault-free target measured")
	}
	inj := row.Injected
	if inj.WriteFailures == 0 || inj.Hijacks == 0 || inj.DroppedSamples == 0 {
		t.Fatalf("scenario delivered too few faults: %+v", inj)
	}
	h := row.Health
	if h.ActuationFailures == 0 || h.GovernorReinstalls == 0 {
		t.Fatalf("hardened ledger empty under a combined scenario: %+v", h)
	}
	if row.UnhardenedHealth.GovernorReinstalls != 0 {
		t.Fatal("unhardened condition reinstalled governors")
	}
	// The acceptance bound: hardened performance no worse than the stock
	// governors under the same faults (small tolerance for noise).
	if row.Hardened.GIPS < 0.9*row.Stock.GIPS {
		t.Fatalf("hardened %.4f GIPS vs stock %.4f under faults",
			row.Hardened.GIPS, row.Stock.GIPS)
	}
}

// The campaign must replay bit-identically at any worker count: same
// seeds, same plans, same cells — the determinism contract of
// internal/par extended through the fault injector.
func TestFaultCampaignParallelMatchesSerial(t *testing.T) {
	scenarios := []FaultScenario{
		{Name: "writes", Plan: fault.Plan{WriteFailProb: 0.3}},
		{Name: "hijack", Plan: fault.Plan{Hijacks: []fault.Hijack{{At: 6 * time.Second}}}},
	}
	specs := []*workload.Spec{workload.Spotify(), workload.AngryBirds()}

	run := func(workers int) string {
		cfg := Quick()
		cfg.Workers = workers
		res, err := cfg.FaultCampaign(specs, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res.Rows)
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("fault campaign not worker-count invariant:\nserial:   %.200s\nparallel: %.200s",
			serial, parallel)
	}
}
