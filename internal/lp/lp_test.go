package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  (minimize the negation)
	p := &Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{1, 2}, {3, 1}},
		B:   []float64{4, 6},
		Rel: []Relation{LE, LE},
	}
	s := solveOK(t, p)
	// Optimum at intersection: x=1.6, y=1.2, objective -2.8.
	if math.Abs(s.X[0]-1.6) > 1e-6 || math.Abs(s.X[1]-1.2) > 1e-6 {
		t.Fatalf("X = %v, want [1.6 1.2]", s.X)
	}
	if math.Abs(s.Objective+2.8) > 1e-6 {
		t.Fatalf("Objective = %v, want -2.8", s.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min 2x+3y s.t. x+y=10, x-y=2 → x=6, y=4, obj 24.
	p := &Problem{
		C:   []float64{2, 3},
		A:   [][]float64{{1, 1}, {1, -1}},
		B:   []float64{10, 2},
		Rel: []Relation{EQ, EQ},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-6) > 1e-6 || math.Abs(s.X[1]-4) > 1e-6 {
		t.Fatalf("X = %v, want [6 4]", s.X)
	}
	if math.Abs(s.Objective-24) > 1e-6 {
		t.Fatalf("Objective = %v", s.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// min x s.t. x >= 5 → x=5.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}},
		B:   []float64{5},
		Rel: []Relation{GE},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-5) > 1e-6 {
		t.Fatalf("X = %v, want [5]", s.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x+y s.t. -x-y <= -3 (i.e. x+y>=3) → obj 3.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{-1, -1}},
		B:   []float64{-3},
		Rel: []Relation{LE},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-3) > 1e-6 {
		t.Fatalf("Objective = %v, want 3", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		B:   []float64{2, 5},
		Rel: []Relation{EQ, EQ},
	}
	if _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 1 → unbounded below.
	p := &Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		B:   []float64{1},
		Rel: []Relation{GE},
	}
	if _, err := Solve(p); err != ErrUnbounded {
		t.Fatalf("expected ErrUnbounded, got %v", err)
	}
}

func TestBadShape(t *testing.T) {
	p := &Problem{
		C:   []float64{1, 2},
		A:   [][]float64{{1}},
		B:   []float64{1},
		Rel: []Relation{LE},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestNonFinite(t *testing.T) {
	p := &Problem{
		C:   []float64{math.NaN()},
		A:   [][]float64{{1}},
		B:   []float64{1},
		Rel: []Relation{LE},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("expected numeric error")
	}
}

func TestDegenerateRedundantRow(t *testing.T) {
	// x+y=2 stated twice; still solvable.
	p := &Problem{
		C:   []float64{1, 2},
		A:   [][]float64{{1, 1}, {1, 1}},
		B:   []float64{2, 2},
		Rel: []Relation{EQ, EQ},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]) > 1e-6 {
		t.Fatalf("X = %v, want [2 0]", s.X)
	}
}

// energyLP builds the paper's optimizer LP: min uᵀP s.t. Sᵀu = sT,
// 1ᵀu = T, u >= 0.
func energyLP(speedup, power []float64, target, T float64) *Problem {
	n := len(speedup)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return &Problem{
		C:   append([]float64(nil), power...),
		A:   [][]float64{append([]float64(nil), speedup...), ones},
		B:   []float64{target * T, T},
		Rel: []Relation{EQ, EQ},
	}
}

func TestEnergyLPTwoConfigStructure(t *testing.T) {
	// Convex-ish power/speedup curve; optimum must use at most 2 configs
	// and satisfy both constraints.
	speedup := []float64{1.0, 1.3, 1.8, 2.2, 2.9, 3.4}
	power := []float64{1.6, 1.8, 2.2, 2.7, 3.5, 4.4}
	const T = 2.0
	s := solveOK(t, energyLP(speedup, power, 2.0, T))
	nonzero := 0
	var sumU, sumSU float64
	for i, u := range s.X {
		if u > 1e-7 {
			nonzero++
		}
		sumU += u
		sumSU += u * speedup[i]
	}
	if nonzero > 2 {
		t.Fatalf("optimal basic solution uses %d configs, want <= 2 (X=%v)", nonzero, s.X)
	}
	if math.Abs(sumU-T) > 1e-6 {
		t.Fatalf("time constraint violated: sum u = %v", sumU)
	}
	if math.Abs(sumSU-2.0*T) > 1e-6 {
		t.Fatalf("performance constraint violated: Sᵀu = %v want %v", sumSU, 2.0*T)
	}
}

func TestEnergyLPInfeasibleTarget(t *testing.T) {
	speedup := []float64{1.0, 1.5}
	power := []float64{1.0, 2.0}
	if _, err := Solve(energyLP(speedup, power, 3.0, 2.0)); err != ErrInfeasible {
		t.Fatalf("target above max speedup should be infeasible, got %v", err)
	}
}

// Property test: on random feasible energy LPs, (1) the solver succeeds,
// (2) constraints hold, (3) at most two nonzero entries (paper's basic
// solution property), (4) objective never beats the obvious lower bound
// min-power · T.
func TestEnergyLPRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		speedup := make([]float64, n)
		power := make([]float64, n)
		s, p := 1.0, 1.0+rng.Float64()
		for i := 0; i < n; i++ {
			speedup[i] = s
			power[i] = p
			s += 0.05 + rng.Float64()
			p += 0.05 + rng.Float64()*2
		}
		// Pick a target strictly inside [min, max] speedup.
		target := speedup[0] + rng.Float64()*(speedup[n-1]-speedup[0])
		const T = 2.0
		sol, err := Solve(energyLP(speedup, power, target, T))
		if err != nil {
			return false
		}
		var sumU, sumSU, minP float64
		minP = power[0]
		nonzero := 0
		for i, u := range sol.X {
			if u < -1e-7 {
				return false
			}
			if u > 1e-7 {
				nonzero++
			}
			sumU += u
			sumSU += u * speedup[i]
			if power[i] < minP {
				minP = power[i]
			}
		}
		if nonzero > 2 {
			return false
		}
		if math.Abs(sumU-T) > 1e-6 || math.Abs(sumSU-target*T) > 1e-5 {
			return false
		}
		return sol.Objective >= minP*T-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnergyLP234Configs(b *testing.B) {
	// Full Nexus 6 configuration space: 18 × 13 = 234 variables.
	n := 234
	speedup := make([]float64, n)
	power := make([]float64, n)
	for i := 0; i < n; i++ {
		speedup[i] = 1 + 3*float64(i)/float64(n-1)
		power[i] = 1.6 + 3*float64(i)/float64(n-1) + 0.3*math.Sin(float64(i))
	}
	p := energyLP(speedup, power, 2.5, 2.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
