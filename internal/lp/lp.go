// Package lp implements a small dense linear-program solver used by the
// energy optimizer (paper Eqns (4)–(7)).
//
// The solver handles problems of the form
//
//	minimize    cᵀx
//	subject to  A_i·x (≤ | = | ≥) b_i     for each row i
//	            x ≥ 0
//
// via the two-phase primal simplex method with Bland's anti-cycling rule.
// The problems the controller solves are tiny (two constraint rows, up to
// a few hundred variables), so a dense tableau is both simple and fast.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one constraint row.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // A_i·x ≤ b_i
	EQ                 // A_i·x = b_i
	GE                 // A_i·x ≥ b_i
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Problem is a linear program in inequality form with non-negative
// variables.
type Problem struct {
	C   []float64   // objective coefficients, length n
	A   [][]float64 // constraint matrix, m rows × n cols
	B   []float64   // right-hand sides, length m
	Rel []Relation  // sense of each row, length m
}

// Solution is the result of a successful solve.
type Solution struct {
	X          []float64 // optimal variable values, length n
	Objective  float64   // cᵀx at the optimum
	Iterations int       // simplex pivots performed
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrBadShape   = errors.New("lp: inconsistent problem dimensions")
	ErrNumeric    = errors.New("lp: non-finite coefficient")
)

const eps = 1e-9

// Validate checks dimensional consistency and finiteness.
func (p *Problem) Validate() error {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m || len(p.Rel) != m {
		return fmt.Errorf("%w: %d rows in A, %d in B, %d in Rel", ErrBadShape, m, len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("%w: row %d has %d cols, want %d", ErrBadShape, i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: A[%d][%d]=%v", ErrNumeric, i, j, v)
			}
		}
	}
	for i, v := range p.B {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: B[%d]=%v", ErrNumeric, i, v)
		}
	}
	for j, v := range p.C {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: C[%d]=%v", ErrNumeric, j, v)
		}
	}
	return nil
}

// tableau is the dense simplex tableau. Columns are laid out as
// [structural | slack/surplus | artificial | rhs]; row 0..m-1 are
// constraints, the cost row is kept separately.
type tableau struct {
	m, n       int // constraint rows, structural columns
	nSlack     int
	nArt       int
	rows       [][]float64 // m rows, width = n + nSlack + nArt + 1
	basis      []int       // basic column per row
	zbuf       []float64   // reducedCosts scratch, length = width
	iterations int
}

func (t *tableau) width() int { return t.n + t.nSlack + t.nArt + 1 }

func (t *tableau) rhsCol() int { return t.width() - 1 }

// pivot performs a Gauss-Jordan pivot at (r, c).
func (t *tableau) pivot(r, c int) {
	t.iterations++
	w := t.width()
	pr := t.rows[r]
	pv := pr[c]
	inv := 1 / pv
	for j := 0; j < w; j++ {
		pr[j] *= inv
	}
	pr[c] = 1 // kill rounding residue on the pivot element
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		row := t.rows[i]
		f := row[c]
		if f == 0 {
			continue
		}
		for j := 0; j < w; j++ {
			row[j] -= f * pr[j]
		}
		row[c] = 0
	}
	t.basis[r] = c
}

// reducedCosts computes the cost row z_j - c_j for objective vector cost
// (length width-1) given the current basis, returning the row and the
// current objective value.
func (t *tableau) reducedCosts(cost []float64) ([]float64, float64) {
	w := t.width()
	z := t.zbuf[:w]
	for j := range z {
		z[j] = 0
	}
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < w; j++ {
			z[j] += cb * row[j]
		}
	}
	obj := z[w-1]
	for j := 0; j < w-1; j++ {
		z[j] -= cost[j]
	}
	return z, obj
}

// iterate runs primal simplex minimizing cost over allowed columns until
// optimal. Bland's rule: entering column is the lowest index with
// positive z_j - c_j; leaving row is the lowest-index tie in the min
// ratio test.
func (t *tableau) iterate(cost []float64, allowed func(j int) bool) error {
	const maxIters = 100000
	for it := 0; it < maxIters; it++ {
		z, _ := t.reducedCosts(cost)
		enter := -1
		for j := 0; j < t.width()-1; j++ {
			if !allowed(j) {
				continue
			}
			if z[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		leave := -1
		best := math.Inf(1)
		rhs := t.rhsCol()
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][rhs] / a
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return errors.New("lp: iteration limit exceeded (cycling?)")
}

// Solve solves the problem with the two-phase simplex method.
func Solve(p *Problem) (*Solution, error) {
	var ws Workspace
	return ws.Solve(p)
}

// Workspace holds the solver's tableau buffers for reuse across solves.
// A controller solving the same-shaped LP every cycle allocates the
// tableau once and reuses it; the zero value is ready to use. Not safe
// for concurrent use; Solution.X is freshly allocated per solve and
// remains valid after the next Solve.
type Workspace struct {
	t     tableau
	cells []float64 // backing storage for the tableau rows
	cost  []float64 // phase-1/phase-2 objective row
}

// growF returns buf resized to n and zeroed, reallocating only when the
// capacity is short.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Solve solves the problem with the two-phase simplex method, reusing
// the workspace's buffers.
func (ws *Workspace) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := len(p.A), len(p.C)

	// Count slack and artificial columns.
	nSlack := 0
	for _, r := range p.Rel {
		if r == LE || r == GE {
			nSlack++
		}
	}
	// Normalize rows to b >= 0 while building.
	w := n + nSlack + m + 1
	ws.cells = growF(ws.cells, m*w)
	rows := ws.t.rows
	if cap(rows) < m {
		rows = make([][]float64, m)
	}
	rows = rows[:m]
	basis := ws.t.basis
	if cap(basis) < m {
		basis = make([]int, m)
	}
	zbuf := growF(ws.t.zbuf, w)
	ws.t = tableau{m: m, n: n, nSlack: nSlack, nArt: m, rows: rows, basis: basis[:m], zbuf: zbuf}
	t := &ws.t

	slackIdx := 0
	for i := 0; i < m; i++ {
		row := ws.cells[i*w : (i+1)*w]
		t.rows[i] = row
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[w-1] = sign * p.B[i]
		switch p.Rel[i] {
		case LE:
			row[n+slackIdx] = sign * 1
			slackIdx++
		case GE:
			row[n+slackIdx] = sign * -1
			slackIdx++
		case EQ:
			// no slack
		default:
			return nil, fmt.Errorf("lp: unknown relation %v in row %d", p.Rel[i], i)
		}
		// Artificial variable for every row gives a trivially feasible
		// phase-1 start; slack columns that happen to form an identity
		// will drive the artificials out quickly.
		row[n+nSlack+i] = 1
		t.basis[i] = n + nSlack + i
	}

	// Phase 1: minimize sum of artificials.
	ws.cost = growF(ws.cost, w)
	phase1 := ws.cost
	for j := n + nSlack; j < w-1; j++ {
		phase1[j] = 1
	}
	if err := t.iterate(phase1, func(j int) bool { return true }); err != nil {
		return nil, err
	}
	if _, obj := t.reducedCosts(phase1); obj > 1e-6 {
		return nil, ErrInfeasible
	}
	// Drive any artificial still in the basis out (degenerate case).
	for i := 0; i < m; i++ {
		if t.basis[i] >= n+nSlack {
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial basic at value 0.
				continue
			}
		}
	}

	// Phase 2: minimize the real objective, artificials barred. Phase 1's
	// cost row is dead after the feasibility check, so its buffer is
	// rewritten in place.
	phase2 := growF(ws.cost, w)
	copy(phase2, p.C)
	barArt := func(j int) bool { return j < n+nSlack }
	if err := t.iterate(phase2, barArt); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	rhs := t.rhsCol()
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			v := t.rows[i][rhs]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[t.basis[i]] = v
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{X: x, Objective: obj, Iterations: t.iterations}, nil
}
