// Package jsonx provides strict JSON decoding for the repo's
// configuration surfaces: scenario specs, fleet session configs and
// checkpoint metadata. Strict means two things the stdlib decoder does
// not give by default:
//
//   - unknown fields are errors, not silent drops (a typo'd knob must
//     fail the spec load, never fall through to a default — the same
//     discipline the CLIs apply to their flags);
//   - decode errors carry a field path ("cohorts.weight: cannot decode
//     string into float64") instead of a byte offset, so a hand-edited
//     spec points at the line to fix.
package jsonx

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// DecodeStrict decodes exactly one JSON value from r into v, rejecting
// unknown fields and trailing garbage. Errors name the offending field
// path where the decoder provides one.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return describe(err)
	}
	// A config file is one document; trailing content is a structural
	// mistake (e.g. two concatenated objects) worth failing on.
	if dec.More() {
		return fmt.Errorf("trailing content after the JSON document")
	}
	return nil
}

// UnmarshalStrict is DecodeStrict over a byte slice.
func UnmarshalStrict(data []byte, v any) error {
	return DecodeStrict(strings.NewReader(string(data)), v)
}

// describe rewrites the stdlib decoder's errors into field-path form.
func describe(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		path := typeErr.Field
		if path == "" {
			path = "(document root)"
		}
		return fmt.Errorf("%s: cannot decode %s into %s", path, typeErr.Value, typeErr.Type)
	}
	var synErr *json.SyntaxError
	if errors.As(err, &synErr) {
		return fmt.Errorf("syntax error at byte %d: %s", synErr.Offset, synErr.Error())
	}
	// The unknown-field error is unexported; its message already names
	// the field (`json: unknown field "xyz"`). Strip the package prefix
	// so callers can add their own context.
	if msg, ok := strings.CutPrefix(err.Error(), "json: "); ok {
		return errors.New(msg)
	}
	return err
}
