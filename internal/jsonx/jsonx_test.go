package jsonx

import (
	"strings"
	"testing"
)

type inner struct {
	Rate float64 `json:"rate"`
}

type outer struct {
	Name    string  `json:"name"`
	Weight  float64 `json:"weight"`
	Nested  inner   `json:"nested"`
	Numbers []int   `json:"numbers"`
}

func TestDecodeStrictOK(t *testing.T) {
	var v outer
	err := UnmarshalStrict([]byte(`{"name":"a","weight":2,"nested":{"rate":0.5},"numbers":[1,2]}`), &v)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v.Name != "a" || v.Weight != 2 || v.Nested.Rate != 0.5 || len(v.Numbers) != 2 {
		t.Fatalf("decoded %+v", v)
	}
}

func TestDecodeStrictUnknownField(t *testing.T) {
	var v outer
	err := UnmarshalStrict([]byte(`{"name":"a","wieght":2}`), &v)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), `"wieght"`) {
		t.Fatalf("error does not name the field: %v", err)
	}
	if strings.HasPrefix(err.Error(), "json: ") {
		t.Fatalf("error keeps the stdlib prefix: %v", err)
	}
}

func TestDecodeStrictFieldPath(t *testing.T) {
	var v outer
	err := UnmarshalStrict([]byte(`{"nested":{"rate":"fast"}}`), &v)
	if err == nil {
		t.Fatal("type mismatch accepted")
	}
	if !strings.Contains(err.Error(), "nested.rate") {
		t.Fatalf("error lacks the field path: %v", err)
	}
}

func TestDecodeStrictTrailingGarbage(t *testing.T) {
	var v outer
	if err := UnmarshalStrict([]byte(`{"name":"a"} {"name":"b"}`), &v); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestDecodeStrictSyntax(t *testing.T) {
	var v outer
	err := UnmarshalStrict([]byte(`{"name":`), &v)
	if err == nil {
		t.Fatal("syntax error accepted")
	}
}
