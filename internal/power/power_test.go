package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aspeo/internal/soc"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := Default()
	p.CeffWPerGHzV2 = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero Ceff should be invalid")
	}
	p = Default()
	p.RestW = math.NaN()
	if err := p.Validate(); err == nil {
		t.Fatal("NaN should be invalid")
	}
	p = Default()
	p.BusWPerMBps = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative coefficient should be invalid")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	p := Default()
	p.CeffWPerGHzV2 = -1
	if _, err := New(p); err == nil {
		t.Fatal("expected error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := Default()
	p.CeffWPerGHzV2 = 0
	MustNew(p)
}

func TestBreakdownTotalSums(t *testing.T) {
	b := Breakdown{CPUDynamic: 1, CPULeak: 2, Bus: 3, DRAM: 4, Screen: 5,
		WiFi: 6, Rest: 7, Aux: 8, Overlay: 9}
	if got := b.Total(); got != 45 {
		t.Fatalf("Total = %v, want 45", got)
	}
}

func TestScreenWiFiGating(t *testing.T) {
	m := MustNew(Default())
	in := Input{FreqGHz: 1, Voltage: 1, CoresOnline: 4}
	off := m.Compute(in)
	if off.Screen != 0 || off.WiFi != 0 {
		t.Fatalf("screen/wifi should be zero when off: %+v", off)
	}
	in.ScreenOn, in.WiFiOn = true, true
	on := m.Compute(in)
	if on.Screen != Default().ScreenW {
		t.Fatalf("Screen = %v", on.Screen)
	}
	if on.WiFi != Default().WiFiIdleW {
		t.Fatalf("WiFi = %v", on.WiFi)
	}
}

func TestMonotoneInFrequency(t *testing.T) {
	m := MustNew(Default())
	n6 := soc.Nexus6()
	prev := -1.0
	for i := range n6.CPUFreqs {
		in := Input{
			FreqGHz: n6.Freq(i).GHz(), Voltage: n6.Voltage(i),
			ActiveCoreSec: 1.5, CoresOnline: 4, BWMBps: 762,
			ScreenOn: true, WiFiOn: true,
		}
		tot := m.Compute(in).Total()
		if tot <= prev {
			t.Fatalf("power not increasing at freq index %d: %v <= %v", i, tot, prev)
		}
		prev = tot
	}
}

func TestMonotoneInBandwidth(t *testing.T) {
	m := MustNew(Default())
	n6 := soc.Nexus6()
	prev := -1.0
	for i := range n6.MemBWs {
		in := Input{FreqGHz: 0.3, Voltage: 0.701, ActiveCoreSec: 1,
			CoresOnline: 4, BWMBps: n6.BW(i).MBps(), ScreenOn: true}
		tot := m.Compute(in).Total()
		if tot <= prev {
			t.Fatalf("power not increasing at bw index %d", i)
		}
		prev = tot
	}
}

// Calibration: the Table I anchor points. An AngryBirds-like operating
// point must land near the paper's measured device power.
func TestTableICalibration(t *testing.T) {
	m := MustNew(Default())
	n6 := soc.Nexus6()

	// Row 1: (0.3 GHz, 762 MBps) → 1623.57 mW. Game capacity-bound,
	// ~1.5 busy core-seconds, nearly all computing at this low clock.
	base := m.Compute(Input{
		FreqGHz: 0.3, Voltage: n6.Voltage(0),
		ActiveCoreSec: 1.45, StalledCoreSec: 0.05,
		CoresOnline: 4, BWMBps: 762, TrafficBps: 0.39e9,
		ScreenOn: true, WiFiOn: true, AuxW: 0.16,
	}).Total()
	if math.Abs(base-1.624) > 0.20 {
		t.Fatalf("base config power = %.3f W, want 1.624 ± 0.20", base)
	}

	// Row 31: (0.8832 GHz, 762 MBps) → 2219.22 mW. Now memory-bound:
	// cores stall on the unchanged bus while the game renders ~1.8×
	// more frames (higher aux/GPU power, more traffic).
	f5 := m.Compute(Input{
		FreqGHz: 0.8832, Voltage: n6.Voltage(4),
		ActiveCoreSec: 0.90, StalledCoreSec: 0.60,
		CoresOnline: 4, BWMBps: 762, TrafficBps: 0.72e9,
		ScreenOn: true, WiFiOn: true, AuxW: 0.30,
	}).Total()
	if math.Abs(f5-2.219) > 0.28 {
		t.Fatalf("freq-5 config power = %.3f W, want 2.219 ± 0.28", f5)
	}
	if f5 <= base {
		t.Fatal("higher frequency must cost more power")
	}
}

// The provisioned-bandwidth slope must match Table I rows 1→3:
// ~52 µW per MBps.
func TestBandwidthSlopeMatchesTableI(t *testing.T) {
	m := MustNew(Default())
	in := Input{FreqGHz: 0.3, Voltage: 0.701, ActiveCoreSec: 1.5, CoresOnline: 4}
	in.BWMBps = 762
	p1 := m.Compute(in).Total()
	in.BWMBps = 3051
	p3 := m.Compute(in).Total()
	slope := (p3 - p1) / (3051 - 762) * 1e6 // µW per MBps
	if math.Abs(slope-52) > 5 {
		t.Fatalf("bandwidth slope = %.1f µW/MBps, want ~52", slope)
	}
}

// Property: power is linear in overlay and aux terms.
func TestOverlayAdditiveProperty(t *testing.T) {
	m := MustNew(Default())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Input{
			FreqGHz: 0.3 + rng.Float64()*2.3, Voltage: 0.7 + rng.Float64()*0.4,
			ActiveCoreSec: rng.Float64() * 4, StalledCoreSec: rng.Float64() * 2,
			CoresOnline: 4, BWMBps: 762 + rng.Float64()*15000,
			TrafficBps: rng.Float64() * 2e9, ScreenOn: true, WiFiOn: true,
		}
		base := m.Compute(in).Total()
		extra := rng.Float64()
		in.OverlayW = extra
		withOverlay := m.Compute(in).Total()
		return math.Abs(withOverlay-base-extra) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stalled cores cost less than active cores.
func TestStallCheaperThanActiveProperty(t *testing.T) {
	m := MustNew(Default())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coreSec := rng.Float64() * 4
		in := Input{FreqGHz: 1.5, Voltage: 0.9, CoresOnline: 4}
		in.ActiveCoreSec, in.StalledCoreSec = coreSec, 0
		allActive := m.Compute(in).Total()
		in.ActiveCoreSec, in.StalledCoreSec = 0, coreSec
		allStalled := m.Compute(in).Total()
		return allStalled <= allActive+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
