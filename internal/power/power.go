// Package power models whole-device power of the simulated phone, the
// quantity the paper measures with a Monsoon power monitor at the battery
// terminals.
//
// The model is the usual CMOS decomposition plus fixed platform rails:
//
//	P = P_rest + P_screen + P_wifi
//	  + Σcores ( P_leak(V) + C_eff·f·V²·(active + σ·stalled) )
//	  + P_bus(bw) + e_DRAM·traffic + P_aux
//
// where `active` is core time spent retiring instructions, `stalled` is
// core time stalled on memory (a stalled core still clocks, hence the σ
// factor), P_bus is the memory-controller/bus rail which scales with the
// *provisioned* bandwidth (this is what makes cpubw_hwmon's over-
// provisioning expensive), e_DRAM charges actual traffic, and P_aux is a
// workload-coupled term (GPU render, hardware video decoder, camera,
// radio) supplied by the workload model.
//
// Coefficients are calibrated so an AngryBirds-like workload reproduces
// the neighbourhood of paper Table I: ≈1.62 W at (0.3 GHz, 762 MBps) and
// ≈2.22 W at (0.8832 GHz, 762 MBps), with ≈52 µW/MBps of provisioned
// bandwidth (the Table I rows 1→3 slope).
package power

import (
	"fmt"
	"math"
)

// Params are the model coefficients. Zero value is invalid; use Default.
type Params struct {
	// CeffWPerGHzV2 is effective switching capacitance: watts per
	// (GHz · V²) of one fully active core.
	CeffWPerGHzV2 float64
	// StallPowerFactor σ: fraction of active power a memory-stalled
	// core burns.
	StallPowerFactor float64
	// LeakWPerV2 is leakage per online core: watts per V².
	LeakWPerV2 float64
	// BusBaseW and BusWPerMBps model the provisioned-bandwidth rail.
	BusBaseW    float64
	BusWPerMBps float64
	// DRAMJPerByte is DRAM access energy per byte of actual traffic.
	DRAMJPerByte float64
	// ScreenW is the display at the fixed lowest brightness the paper
	// uses.
	ScreenW float64
	// WiFiIdleW is the connected-idle WiFi power; WiFiJPerByte charges
	// actual network traffic.
	WiFiIdleW    float64
	WiFiJPerByte float64
	// RestW covers PMIC, RAM refresh, sensor hub and other fixed rails.
	RestW float64
}

// Default returns the calibrated Nexus 6 coefficients.
func Default() Params {
	return Params{
		CeffWPerGHzV2:    0.50,
		StallPowerFactor: 0.60,
		LeakWPerV2:       0.080,
		BusBaseW:         0.030,
		BusWPerMBps:      52e-6,
		DRAMJPerByte:     1.0e-10,
		ScreenW:          0.450,
		WiFiIdleW:        0.050,
		WiFiJPerByte:     20e-9,
		RestW:            0.550,
	}
}

// Validate checks that all coefficients are finite and non-negative and
// the load-bearing ones are positive.
func (p Params) Validate() error {
	fields := map[string]float64{
		"CeffWPerGHzV2": p.CeffWPerGHzV2, "StallPowerFactor": p.StallPowerFactor,
		"LeakWPerV2": p.LeakWPerV2, "BusBaseW": p.BusBaseW,
		"BusWPerMBps": p.BusWPerMBps, "DRAMJPerByte": p.DRAMJPerByte,
		"ScreenW": p.ScreenW, "WiFiIdleW": p.WiFiIdleW,
		"WiFiJPerByte": p.WiFiJPerByte, "RestW": p.RestW,
	}
	for name, v := range fields {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("power: %s = %v invalid", name, v)
		}
	}
	if p.CeffWPerGHzV2 == 0 {
		return fmt.Errorf("power: CeffWPerGHzV2 must be positive")
	}
	return nil
}

// Input is an instantaneous operating point of the device.
type Input struct {
	FreqGHz float64 // current CPU clock
	Voltage float64 // current supply voltage
	// ActiveCoreSec and StalledCoreSec are core-seconds per second:
	// time cores spent computing vs. stalled on memory, summed over
	// cores (0..NumCores each).
	ActiveCoreSec  float64
	StalledCoreSec float64
	CoresOnline    int
	BWMBps         float64 // provisioned memory bandwidth
	TrafficBps     float64 // actual DRAM traffic, bytes/second
	ScreenOn       bool
	WiFiOn         bool
	WiFiBps        float64 // network traffic, bytes/second
	AuxW           float64 // workload-coupled components (GPU, codec, …)
	OverlayW       float64 // instrumentation/controller overheads
}

// Breakdown is per-component power in watts.
type Breakdown struct {
	CPUDynamic float64
	CPULeak    float64
	Bus        float64
	DRAM       float64
	Screen     float64
	WiFi       float64
	Rest       float64
	Aux        float64
	Overlay    float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.CPUDynamic + b.CPULeak + b.Bus + b.DRAM + b.Screen + b.WiFi +
		b.Rest + b.Aux + b.Overlay
}

// Model evaluates device power. It is a pure function of Params.
type Model struct {
	p Params
}

// New builds a Model, validating the parameters.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(p Params) *Model {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the model coefficients.
func (m *Model) Params() Params { return m.p }

// Compute evaluates the power breakdown at the given operating point.
func (m *Model) Compute(in Input) Breakdown {
	v2 := in.Voltage * in.Voltage
	effCoreSec := in.ActiveCoreSec + m.p.StallPowerFactor*in.StalledCoreSec
	b := Breakdown{
		CPUDynamic: m.p.CeffWPerGHzV2 * in.FreqGHz * v2 * effCoreSec,
		CPULeak:    m.p.LeakWPerV2 * v2 * float64(in.CoresOnline),
		Bus:        m.p.BusBaseW + m.p.BusWPerMBps*in.BWMBps,
		DRAM:       m.p.DRAMJPerByte * in.TrafficBps,
		Rest:       m.p.RestW,
		Aux:        in.AuxW,
		Overlay:    in.OverlayW,
	}
	if in.ScreenOn {
		b.Screen = m.p.ScreenW
	}
	if in.WiFiOn {
		b.WiFi = m.p.WiFiIdleW + m.p.WiFiJPerByte*in.WiFiBps
	}
	return b
}
