package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(4)
	g.Add(-1.5)

	out := render(t, r)
	want := "# HELP test_ops_total Operations.\n" +
		"# TYPE test_ops_total counter\n" +
		"test_ops_total 3\n" +
		"# HELP test_depth Queue depth.\n" +
		"# TYPE test_depth gauge\n" +
		"test_depth 2.5\n"
	if out != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", out, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "").Add(1)
	r.Counter("test_total", "").Add(1) // same handle, not a reset
	if v := r.Counter("test_total", "").Value(); v != 2 {
		t.Fatalf("re-registered counter = %v, want accumulated 2", v)
	}
	// Set supports scrape-time refresh from an external aggregate.
	r.Counter("test_total", "").Set(7)
	if v := r.Counter("test_total", "").Value(); v != 7 {
		t.Fatalf("Set = %v, want 7", v)
	}
}

func TestRegistryConflictPanics(t *testing.T) {
	for name, f := range map[string]func(*Registry){
		"type":        func(r *Registry) { r.Counter("m", ""); r.Gauge("m", "") },
		"label-arity": func(r *Registry) { r.GaugeVec("m", "", "a"); r.GaugeVec("m", "", "a", "b") },
		"label-names": func(r *Registry) { r.GaugeVec("m", "", "a"); r.GaugeVec("m", "", "b") },
		"bad-name":    func(r *Registry) { r.Counter("bad metric", "") },
		"bad-label":   func(r *Registry) { r.GaugeVec("m", "", "bad label") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("conflicting registration did not panic")
				}
			}()
			f(NewRegistry())
		})
	}
}

func TestRegistryLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_sessions", "Sessions by state.", "state")
	v.With("completed").Set(8)
	v.With(`we"ird\state` + "\n").Set(1)

	out := render(t, r)
	if !strings.Contains(out, `test_sessions{state="completed"} 8`) {
		t.Fatalf("plain label series missing:\n%s", out)
	}
	if !strings.Contains(out, `test_sessions{state="we\"ird\\state\n"} 1`) {
		t.Fatalf("escaped label series missing:\n%s", out)
	}
	// Series are sorted by label value for deterministic scrapes.
	first, second := strings.Index(out, `state="completed"`), strings.Index(out, `state="we`)
	if first > second {
		t.Fatalf("series not sorted:\n%s", out)
	}
}

func TestRegistryHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "line one\nwith \\ backslash").Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP test_total line one\nwith \\ backslash`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
}

func TestRegistryHistogramEncoding(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.5, 1})
	// Dyadic observations keep the sum exact in float64, so the expected
	// exposition is byte-stable.
	for _, v := range []float64{0.0625, 0.25, 0.75, 2.5} {
		h.Observe(v)
	}
	out := render(t, r)
	want := "# HELP test_latency_seconds Latency.\n" +
		"# TYPE test_latency_seconds histogram\n" +
		"test_latency_seconds_bucket{le=\"0.1\"} 1\n" +
		"test_latency_seconds_bucket{le=\"0.5\"} 2\n" +
		"test_latency_seconds_bucket{le=\"1\"} 3\n" +
		"test_latency_seconds_bucket{le=\"+Inf\"} 4\n" +
		"test_latency_seconds_sum 3.5625\n" +
		"test_latency_seconds_count 4\n"
	if out != want {
		t.Fatalf("histogram exposition:\n%s\nwant:\n%s", out, want)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

func TestRegistryEmptyFamiliesOmitted(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("test_sessions", "never resolved", "state")
	if out := render(t, r); out != "" {
		t.Fatalf("family with no series rendered:\n%s", out)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("test_total", "")
			h := r.Histogram("test_hist", "", []float64{1, 2})
			v := r.GaugeVec("test_vec", "", "w")
			for i := 0; i < 200; i++ {
				c.Inc()
				h.Observe(float64(i % 3))
				v.With(string(rune('a' + w))).Set(float64(i))
				var buf bytes.Buffer
				if i%50 == 0 {
					_ = r.WriteText(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if v := r.Counter("test_total", "").Value(); v != 1600 {
		t.Fatalf("counter = %v after concurrent increments, want 1600", v)
	}
}
