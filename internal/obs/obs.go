// Package obs is the runtime's observability layer: a structured
// decision-trace model (spans), a deterministic bounded flight recorder,
// and a metrics registry with a Prometheus text encoder.
//
// The controller's four-stage decision every control cycle — perf
// measurement, Kalman base-speed update, LP/frontier solve, dwell
// scheduling — used to be opaque: the only windows into it were the
// end-of-cycle CycleSnapshot and hand-rolled metric text. The span model
// makes each stage a first-class record with typed attributes, so "the
// run was 7% over the energy baseline" becomes "the Kalman variance
// collapsed at cycle 41".
//
// Determinism contract: nothing in this package reads the wall clock or
// any other ambient state. Span timestamps are backend-clock values
// supplied by the emitter, ring-buffer eviction depends only on emission
// order, and NDJSON encoding is canonical (sorted attribute keys,
// shortest float form) — so two runs of the same seed produce
// byte-identical traces, and a trace survives a write/read round trip
// losslessly. Emission is observation-only by construction: a Sink can
// see controller state but has no handle to change it.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage names of the controller's per-cycle decision spans. One "cycle"
// span summarizes the whole control cycle; the others are its children,
// emitted in decision order. "ladder" spans appear only on resilience
// ladder transitions.
const (
	StageCycle    = "cycle"    // end-of-cycle summary (parent span)
	StageMeasure  = "measure"  // perf window consumption + fault gate
	StageKalman   = "kalman"   // base-speed filter update
	StageOptimize = "optimize" // LP/frontier/cache energy solve
	StageSchedule = "schedule" // two-configuration dwell plan
	StageLadder   = "ladder"   // resilience ladder transition event
)

// Attrs is a span's typed attribute set. Values are restricted to JSON
// scalars — bool, string, and float64 (use Num for any numeric) — so
// every span is losslessly NDJSON-round-trippable and two traces compare
// value-for-value regardless of which side was decoded from disk.
type Attrs map[string]any

// Num canonicalizes a numeric attribute value: all numbers are stored as
// float64, matching what a JSON decode produces, so in-memory and
// round-tripped traces diff cleanly. Exact for integers up to 2⁵³.
func Num[T ~int | ~int64 | ~float64](v T) float64 { return float64(v) }

// Span is one record of the decision trace: a stage of one control
// cycle (or a ladder event within it), stamped with the backend clock —
// never the wall clock, so seeded runs trace identically.
type Span struct {
	// Cycle is the control-cycle ordinal (1 = first cycle).
	Cycle int `json:"cycle"`
	// Stage names the decision stage (Stage* constants).
	Stage string `json:"stage"`
	// At is the backend clock when the span was emitted.
	At time.Duration `json:"at_ns"`
	// Attrs carries the stage's typed attributes.
	Attrs Attrs `json:"attrs,omitempty"`
}

// Sink receives emitted spans. Implementations must treat spans as
// read-only observations; Emit must be cheap enough to call several
// times per control cycle.
type Sink interface {
	Emit(Span)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Span)

// Emit implements Sink.
func (f SinkFunc) Emit(s Span) { f(s) }

// Tee fans one emission out to several sinks, in order. Nil sinks are
// skipped — including typed nils like a nil *Trace or *Recorder hiding
// inside the interface, the classic trap when sinks are assembled from
// optional flags.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
		case *Trace:
			if v != nil {
				kept = append(kept, s)
			}
		case *Recorder:
			if v != nil {
				kept = append(kept, s)
			}
		default:
			kept = append(kept, s)
		}
	}
	return SinkFunc(func(s Span) {
		for _, snk := range kept {
			snk.Emit(s)
		}
	})
}

// Trace is an unbounded span collector — the full decision trace of one
// run, as written by `aspeo-run -trace-out` and consumed by
// `aspeo-trace`. Safe for concurrent emission.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return &Trace{} }

// Emit implements Sink.
func (t *Trace) Emit(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the collected spans in emission order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteNDJSON dumps the trace as NDJSON.
func (t *Trace) WriteNDJSON(w io.Writer) error { return WriteNDJSON(w, t.Spans()) }

// DefaultFlightCap is the flight recorder's default ring capacity:
// roughly 700 control cycles of full-verbosity tracing — minutes of
// history around a failure, at a few hundred kilobytes per session.
const DefaultFlightCap = 4096

// Recorder is the flight recorder: a bounded ring buffer of the most
// recent spans, dumped as NDJSON when something goes wrong (watchdog
// escalation, session failure) or on demand. Eviction is purely
// count-based — no wall-clock reads — so a seeded run's ring content is
// deterministic. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	buf     []Span
	next    int    // write position
	n       int    // live spans (== len(buf) once wrapped)
	total   uint64 // spans ever emitted
	dropped uint64 // spans evicted by the ring bound
}

// NewRecorder returns a flight recorder holding the last capacity spans
// (<= 0 selects DefaultFlightCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &Recorder{buf: make([]Span, capacity)}
}

// Emit implements Sink: the span enters the ring, evicting the oldest
// once full.
func (r *Recorder) Emit(s Span) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the ring's current content, oldest first.
func (r *Recorder) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns how many spans were ever emitted into the recorder.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many spans the ring bound evicted.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteNDJSON dumps the ring's current content as NDJSON, oldest first.
func (r *Recorder) WriteNDJSON(w io.Writer) error { return WriteNDJSON(w, r.Snapshot()) }

// WriteNDJSON writes spans as NDJSON: one JSON object per line, attribute
// keys sorted (encoding/json sorts map keys), floats in shortest form —
// the canonical flight-recorder dump format.
func WriteNDJSON(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON reads a span stream written by WriteNDJSON. Blank lines are
// skipped; a malformed line fails with its line number.
func ReadNDJSON(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return spans, nil
}
