package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aspeo/internal/histogram"
)

// Registry is a set of named counters, gauges and histograms with a
// Prometheus text-exposition encoder (format version 0.0.4) — the typed
// replacement for hand-rolled fmt.Fprintf metric assembly. Registration
// is get-or-create and idempotent: asking for an existing name returns
// the existing metric, so scrape-time refresh code can re-resolve
// handles without bookkeeping. Names, types and label arity are
// validated; a conflicting re-registration panics (a programming error,
// like histogram.New's bucket check).
//
// Safe for concurrent use. Exposition output is deterministic: families
// appear in registration order, series within a family sorted by label
// values.
type Registry struct {
	mu      sync.Mutex
	ordered []*family
	byName  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one metric name: its metadata plus all labeled series.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu     sync.Mutex
	series map[string]*value // canonical label-values key -> series
	order  []string          // insertion order of keys (sorted at write)
	bounds []float64         // histogram bucket bounds
}

// value is one series: a scalar for counters/gauges, a Dist for
// histograms. The owning family's mutex guards it.
type value struct {
	labelValues []string
	f           *family
	scalar      float64
	dist        *histogram.Dist
}

func (r *Registry) register(name, help string, typ metricType, labels []string, bounds []float64) *family {
	validateName(name, "metric")
	for _, l := range labels {
		validateName(l, "label")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with label %q, was %q",
					name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		series: make(map[string]*value), bounds: bounds}
	r.byName[name] = f
	r.ordered = append(r.ordered, f)
	return f
}

func validateName(s, what string) {
	if s == "" {
		panic("obs: empty " + what + " name")
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') || (what == "metric" && c == ':')
		if !ok {
			panic(fmt.Sprintf("obs: invalid %s name %q", what, s))
		}
	}
}

func (f *family) get(labelValues ...string) *value {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := canonicalKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.series[key]; ok {
		return v
	}
	own := make([]string, len(labelValues))
	copy(own, labelValues)
	v := &value{labelValues: own, f: f}
	if f.typ == typeHistogram {
		v.dist = histogram.NewDist(f.bounds)
	}
	f.series[key] = v
	f.order = append(f.order, key)
	return v
}

func canonicalKey(values []string) string {
	escaped := make([]string, len(values))
	for i, v := range values {
		escaped[i] = escapeLabelValue(v)
	}
	return strings.Join(escaped, "\x00")
}

// Counter is a monotonically increasing metric. Set exists for
// scrape-time refresh from an externally aggregated total (the fleet
// rollup); live instrumentation should use Add/Inc.
type Counter struct{ v *value }

// Add increases the counter; negative deltas are ignored.
func (c Counter) Add(d float64) {
	if d < 0 {
		return
	}
	c.v.f.mu.Lock()
	c.v.scalar += d
	c.v.f.mu.Unlock()
}

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Set overwrites the counter with an externally aggregated total.
func (c Counter) Set(total float64) {
	c.v.f.mu.Lock()
	c.v.scalar = total
	c.v.f.mu.Unlock()
}

// Value returns the current total.
func (c Counter) Value() float64 {
	c.v.f.mu.Lock()
	defer c.v.f.mu.Unlock()
	return c.v.scalar
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v *value }

// Set overwrites the gauge.
func (g Gauge) Set(x float64) {
	g.v.f.mu.Lock()
	g.v.scalar = x
	g.v.f.mu.Unlock()
}

// Add adjusts the gauge by d (may be negative).
func (g Gauge) Add(d float64) {
	g.v.f.mu.Lock()
	g.v.scalar += d
	g.v.f.mu.Unlock()
}

// Value returns the current value.
func (g Gauge) Value() float64 {
	g.v.f.mu.Lock()
	defer g.v.f.mu.Unlock()
	return g.v.scalar
}

// Histogram is a fixed-bucket distribution metric backed by
// histogram.Dist, exposed as the standard _bucket/_sum/_count triple.
type Histogram struct{ v *value }

// Observe accounts one value.
func (h Histogram) Observe(x float64) {
	h.v.f.mu.Lock()
	h.v.dist.Observe(x)
	h.v.f.mu.Unlock()
}

// Count returns the observation count.
func (h Histogram) Count() uint64 {
	h.v.f.mu.Lock()
	defer h.v.f.mu.Unlock()
	return h.v.dist.Total()
}

// Load overwrites the histogram's state from an externally aggregated
// snapshot — raw per-bucket counts (+Inf overflow last) and the value
// sum — the histogram analogue of Counter.Set for scrape-time refresh.
// A bucket-count mismatch panics: bounds are fixed at registration, so
// a mismatched snapshot is a programming error.
func (h Histogram) Load(counts []uint64, sum float64) {
	h.v.f.mu.Lock()
	defer h.v.f.mu.Unlock()
	if err := h.v.dist.SetCounts(counts, sum); err != nil {
		panic("obs: " + err.Error())
	}
}

// Counter returns (registering on first use) the unlabeled counter name.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, typeCounter, nil, nil).get()}
}

// Gauge returns (registering on first use) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, typeGauge, nil, nil).get()}
}

// Histogram returns (registering on first use) the unlabeled histogram
// name over the given strictly increasing upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) Histogram {
	return Histogram{r.register(name, help, typeHistogram, nil, bounds).get()}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns (registering on first use) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With resolves the series for one label-value tuple (one value per
// label name, in declaration order).
func (v CounterVec) With(labelValues ...string) Counter {
	return Counter{v.f.get(labelValues...)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns (registering on first use) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// With resolves the series for one label-value tuple.
func (v GaugeVec) With(labelValues ...string) Gauge {
	return Gauge{v.f.get(labelValues...)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns (registering on first use) a labeled histogram
// family over the given strictly increasing upper bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	return HistogramVec{r.register(name, help, typeHistogram, labels, bounds)}
}

// With resolves the series for one label-value tuple.
func (v HistogramVec) With(labelValues ...string) Histogram {
	return Histogram{v.f.get(labelValues...)}
}

// WriteText renders the registry in the Prometheus text exposition
// format: # HELP and # TYPE lines per family, label values escaped per
// the spec (backslash, double-quote, newline).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.ordered))
	copy(fams, r.ordered)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

// ContentType is the HTTP Content-Type of WriteText output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	sort.Strings(keys)
	for _, key := range keys {
		v := f.series[key]
		if err := f.writeSeries(w, v); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, v *value) error {
	if f.typ == typeHistogram {
		base := labelPairs(f.labels, v.labelValues)
		for i, b := range v.dist.Bounds() {
			le := strconv.FormatFloat(b, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLE(base, le), v.dist.Cumulative(i)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, withLE(base, "+Inf"), v.dist.Total()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(base),
			formatValue(v.dist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(base), v.dist.Total())
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
		renderLabels(labelPairs(f.labels, v.labelValues)), formatValue(v.scalar))
	return err
}

func labelPairs(names, values []string) []string {
	pairs := make([]string, len(names))
	for i := range names {
		pairs[i] = names[i] + `="` + escapeLabelValue(values[i]) + `"`
	}
	return pairs
}

func withLE(base []string, le string) string {
	return renderLabels(append(append([]string{}, base...), `le="`+le+`"`))
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and line feed.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and line feed.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
