package obs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"
)

func span(cycle int, stage string, at time.Duration, attrs Attrs) Span {
	return Span{Cycle: cycle, Stage: stage, At: at, Attrs: attrs}
}

func TestRecorderRingBound(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Emit(span(i, StageCycle, time.Duration(i), nil))
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := 7 + i; s.Cycle != want {
			t.Fatalf("snapshot[%d].Cycle = %d, want %d (oldest-first of the last 4)", i, s.Cycle, want)
		}
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Total=%d Dropped=%d, want 10/6", r.Total(), r.Dropped())
	}
}

func TestRecorderBelowCapacity(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(span(1, StageMeasure, 0, nil))
	r.Emit(span(1, StageOptimize, 1, nil))
	got := r.Snapshot()
	if len(got) != 2 || got[0].Stage != StageMeasure || got[1].Stage != StageOptimize {
		t.Fatalf("snapshot = %+v, want emission order", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d before the ring filled", r.Dropped())
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	for _, cap := range []int{0, -1} {
		r := NewRecorder(cap)
		if len(r.buf) != DefaultFlightCap {
			t.Fatalf("NewRecorder(%d) capacity = %d, want DefaultFlightCap", cap, len(r.buf))
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	in := []Span{
		span(1, StageMeasure, 2*time.Second, Attrs{
			"measured_gips": 0.4375, "accepted": true, "gate_verdict": "outlier",
		}),
		span(1, StageOptimize, 2*time.Second, Attrs{
			"low_freq_idx": Num(3), "tau_low_ns": Num(int64(1_400_000_000)),
		}),
		span(2, StageLadder, 4*time.Second, Attrs{"transition": "degraded"}),
		span(3, StageCycle, 6*time.Second, nil),
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the trace:\nin  %+v\nout %+v", in, out)
	}
	// Round-tripped and in-memory traces must also diff as identical —
	// the determinism contract aspeo-trace relies on.
	if res := Diff(in, out); !res.Identical() {
		t.Fatalf("Diff(in, roundtrip) diverged at cycle %d: %v", res.FirstDivergent, res.Deltas)
	}
}

func TestNDJSONDeterministicBytes(t *testing.T) {
	spans := []Span{span(1, StageKalman, time.Second, Attrs{
		"b": 0.125, "a": true, "c": "x",
	})}
	var b1, b2 bytes.Buffer
	if err := WriteNDJSON(&b1, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&b2, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two encodings of the same trace differ byte for byte")
	}
}

func TestReadNDJSONBadLine(t *testing.T) {
	_, err := ReadNDJSON(bytes.NewBufferString("{\"cycle\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if want := "line 2"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not carry the line number", err)
	}
}

func TestTeeSkipsNils(t *testing.T) {
	var got []Span
	sink := Tee(nil, SinkFunc(func(s Span) { got = append(got, s) }), nil)
	sink.Emit(span(1, StageCycle, 0, nil))
	if len(got) != 1 {
		t.Fatalf("tee delivered %d spans, want 1", len(got))
	}
}

// A nil *Trace or *Recorder wrapped in the Sink interface is not a nil
// interface — Tee must still skip it instead of panicking on Emit.
// (Regression: aspeo-run -trace-out without -flight-out teed a typed-nil
// recorder.)
func TestTeeSkipsTypedNils(t *testing.T) {
	var tr *Trace
	var rec *Recorder
	var got []Span
	sink := Tee(tr, rec, SinkFunc(func(s Span) { got = append(got, s) }))
	sink.Emit(span(1, StageCycle, 0, nil))
	if len(got) != 1 {
		t.Fatalf("tee delivered %d spans, want 1", len(got))
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace()
	rec := NewRecorder(64)
	sink := Tee(tr, rec)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sink.Emit(span(i, StageCycle, time.Duration(w), nil))
			}
		}(w)
	}
	wg.Wait()
	if n := len(tr.Spans()); n != workers*per {
		t.Fatalf("trace holds %d spans, want %d", n, workers*per)
	}
	if rec.Total() != workers*per {
		t.Fatalf("recorder saw %d spans, want %d", rec.Total(), workers*per)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := []Span{
		span(1, StageMeasure, time.Second, Attrs{"measured_gips": 0.4}),
		span(1, StageCycle, time.Second, nil),
		span(2, StageMeasure, 2*time.Second, Attrs{"measured_gips": 0.41}),
	}
	res := Diff(a, a)
	if !res.Identical() || res.CyclesA != 2 || res.SpansA != 3 {
		t.Fatalf("Diff(a, a) = %+v", res)
	}
}

func TestDiffFirstDivergentCycle(t *testing.T) {
	a := []Span{
		span(1, StageMeasure, time.Second, Attrs{"measured_gips": 0.4}),
		span(2, StageMeasure, 2*time.Second, Attrs{"measured_gips": 0.5}),
		span(3, StageMeasure, 3*time.Second, Attrs{"measured_gips": 0.6}),
	}
	b := []Span{
		span(1, StageMeasure, time.Second, Attrs{"measured_gips": 0.4}),
		span(2, StageMeasure, 2*time.Second, Attrs{"measured_gips": 0.55}),
		span(3, StageMeasure, 3*time.Second, Attrs{"measured_gips": 0.7}),
	}
	res := Diff(a, b)
	if res.FirstDivergent != 2 {
		t.Fatalf("FirstDivergent = %d, want 2", res.FirstDivergent)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Key != "measured_gips" ||
		res.Deltas[0].A != "0.4" && res.Deltas[0].A != "0.5" {
		t.Fatalf("Deltas = %+v", res.Deltas)
	}
	if res.Deltas[0].A != "0.5" || res.Deltas[0].B != "0.55" {
		t.Fatalf("delta values = %s / %s, want 0.5 / 0.55", res.Deltas[0].A, res.Deltas[0].B)
	}
}

func TestDiffMissingStage(t *testing.T) {
	a := []Span{
		span(1, StageMeasure, time.Second, nil),
		span(1, StageOptimize, time.Second, nil),
	}
	b := []Span{span(1, StageMeasure, time.Second, nil)}
	res := Diff(a, b)
	if res.FirstDivergent != 1 {
		t.Fatalf("FirstDivergent = %d, want 1", res.FirstDivergent)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Stage != StageOptimize || res.Deltas[0].B != "<none>" {
		t.Fatalf("Deltas = %+v", res.Deltas)
	}
}

func TestDiffOneTraceLonger(t *testing.T) {
	a := []Span{
		span(1, StageCycle, time.Second, nil),
		span(2, StageCycle, 2*time.Second, nil),
	}
	b := a[:1]
	res := Diff(a, b)
	if res.FirstDivergent != 2 {
		t.Fatalf("FirstDivergent = %d, want the first extra cycle", res.FirstDivergent)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].A != "present" || res.Deltas[0].B != "<none>" {
		t.Fatalf("Deltas = %+v", res.Deltas)
	}
}

func TestDiffAttrPresence(t *testing.T) {
	a := []Span{span(1, StageMeasure, time.Second, Attrs{"gate_verdict": "stuck"})}
	b := []Span{span(1, StageMeasure, time.Second, nil)}
	res := Diff(a, b)
	if res.FirstDivergent != 1 || len(res.Deltas) != 1 {
		t.Fatalf("res = %+v", res)
	}
	d := res.Deltas[0]
	if d.Key != "gate_verdict" || d.A != `"stuck"` || d.B != "<none>" {
		t.Fatalf("delta = %+v", d)
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		span(1, StageMeasure, time.Second, nil),
		span(1, StageCycle, time.Second, Attrs{"degraded": false}),
		span(2, StageLadder, 2*time.Second, Attrs{"transition": "degraded"}),
		span(2, StageCycle, 2*time.Second, Attrs{"degraded": true}),
		span(3, StageLadder, 3*time.Second, Attrs{"transition": "recovered"}),
	}
	sum := Summarize(spans)
	if sum.Spans != 5 || sum.Cycles != 3 || sum.FirstCycle != 1 || sum.LastCycle != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	want := []string{"degraded@2", "recovered@3"}
	if !reflect.DeepEqual(sum.LadderTransitions, want) {
		t.Fatalf("LadderTransitions = %v, want %v", sum.LadderTransitions, want)
	}
	if got := sum.Final["degraded"]; got != true {
		t.Fatalf("Final = %+v, want the last cycle span's attrs", sum.Final)
	}
	var buf bytes.Buffer
	WriteSummary(&buf, sum)
	for _, want := range []string{"spans=5", "ladder: degraded@2 recovered@3", "final cycle:"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("summary text missing %q:\n%s", want, buf.String())
		}
	}
}
