package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Delta is one attribute-level difference between two traces at the
// first divergent cycle. Absent spans or attributes render as "<none>".
type Delta struct {
	Stage string
	Key   string // "" when a whole stage is present on only one side
	A, B  string
}

func (d Delta) String() string {
	if d.Key == "" {
		return fmt.Sprintf("%s: %s != %s", d.Stage, d.A, d.B)
	}
	return fmt.Sprintf("%s.%s: %s != %s", d.Stage, d.Key, d.A, d.B)
}

// DiffResult reports how two decision traces compare cycle by cycle.
type DiffResult struct {
	// CyclesA and CyclesB are each trace's cycle counts.
	CyclesA, CyclesB int
	// SpansA and SpansB are each trace's span counts.
	SpansA, SpansB int
	// FirstDivergent is the first cycle ordinal whose span set differs;
	// 0 means the traces are identical cycle for cycle.
	FirstDivergent int
	// Deltas are the attribute-level differences at FirstDivergent
	// (empty when identical).
	Deltas []Delta
}

// Identical reports whether no divergence was found.
func (r DiffResult) Identical() bool { return r.FirstDivergent == 0 }

// Diff compares two decision traces cycle by cycle and reports the first
// divergent cycle with its per-stage attribute deltas — the one-command
// diagnosis of replay-vs-live or seed-vs-seed divergence. Span order
// within a cycle is part of the comparison (the controller emits stages
// in decision order), as are timestamps and attribute values.
func Diff(a, b []Span) DiffResult {
	ca, cb := groupByCycle(a), groupByCycle(b)
	res := DiffResult{
		CyclesA: len(ca.order), CyclesB: len(cb.order),
		SpansA: len(a), SpansB: len(b),
	}
	n := len(ca.order)
	if len(cb.order) < n {
		n = len(cb.order)
	}
	for i := 0; i < n; i++ {
		cycA, cycB := ca.order[i], cb.order[i]
		if cycA != cycB {
			res.FirstDivergent = min(cycA, cycB)
			res.Deltas = []Delta{{Stage: "cycle-ordinal",
				A: strconv.Itoa(cycA), B: strconv.Itoa(cycB)}}
			return res
		}
		if deltas := diffCycle(ca.spans[cycA], cb.spans[cycB]); len(deltas) > 0 {
			res.FirstDivergent = cycA
			res.Deltas = deltas
			return res
		}
	}
	if len(ca.order) != len(cb.order) {
		// All shared cycles match; one trace simply ran longer.
		longer, side := ca, "A"
		if len(cb.order) > len(ca.order) {
			longer, side = cb, "B"
		}
		res.FirstDivergent = longer.order[n]
		res.Deltas = []Delta{{Stage: "cycle", A: presentIf(side == "A"), B: presentIf(side == "B")}}
	}
	return res
}

func presentIf(p bool) string {
	if p {
		return "present"
	}
	return "<none>"
}

type cycleGroups struct {
	order []int
	spans map[int][]Span
}

func groupByCycle(spans []Span) cycleGroups {
	g := cycleGroups{spans: make(map[int][]Span)}
	for _, s := range spans {
		if _, seen := g.spans[s.Cycle]; !seen {
			g.order = append(g.order, s.Cycle)
		}
		g.spans[s.Cycle] = append(g.spans[s.Cycle], s)
	}
	sort.Ints(g.order)
	return g
}

// diffCycle compares one cycle's span sequences positionally.
func diffCycle(a, b []Span) []Delta {
	var deltas []Delta
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(a):
			deltas = append(deltas, Delta{Stage: b[i].Stage, A: "<none>", B: "present"})
		case i >= len(b):
			deltas = append(deltas, Delta{Stage: a[i].Stage, A: "present", B: "<none>"})
		case a[i].Stage != b[i].Stage:
			deltas = append(deltas, Delta{Stage: "stage-order", A: a[i].Stage, B: b[i].Stage})
		default:
			deltas = append(deltas, diffSpan(a[i], b[i])...)
		}
	}
	return deltas
}

func diffSpan(a, b Span) []Delta {
	var deltas []Delta
	if a.At != b.At {
		deltas = append(deltas, Delta{Stage: a.Stage, Key: "at_ns",
			A: strconv.FormatInt(int64(a.At), 10), B: strconv.FormatInt(int64(b.At), 10)})
	}
	keys := make(map[string]struct{}, len(a.Attrs)+len(b.Attrs))
	for k := range a.Attrs {
		keys[k] = struct{}{}
	}
	for k := range b.Attrs {
		keys[k] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		va, oka := a.Attrs[k]
		vb, okb := b.Attrs[k]
		sa, sb := renderAttr(va, oka), renderAttr(vb, okb)
		if sa != sb {
			deltas = append(deltas, Delta{Stage: a.Stage, Key: k, A: sa, B: sb})
		}
	}
	return deltas
}

// renderAttr canonicalizes an attribute value for comparison and
// display. Numbers render in shortest float form, so an in-memory
// float64 and its JSON round trip compare equal.
func renderAttr(v any, present bool) string {
	if !present {
		return "<none>"
	}
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return strconv.Quote(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Summary condenses a decision trace for `aspeo-trace summary`.
type Summary struct {
	Spans  int
	Cycles int
	// FirstCycle and LastCycle are the trace's cycle ordinal range.
	FirstCycle, LastCycle int
	// StageCounts maps stage name to span count.
	StageCounts map[string]int
	// LadderTransitions lists ladder events in order, rendered as
	// "degraded@41".
	LadderTransitions []string
	// Final holds the last cycle span's attributes (nil when the trace
	// has no cycle spans).
	Final Attrs
}

// Summarize scans a trace into a Summary.
func Summarize(spans []Span) Summary {
	sum := Summary{Spans: len(spans), StageCounts: make(map[string]int)}
	seen := make(map[int]struct{})
	for _, s := range spans {
		sum.StageCounts[s.Stage]++
		if _, ok := seen[s.Cycle]; !ok {
			seen[s.Cycle] = struct{}{}
			if sum.Cycles == 0 || s.Cycle < sum.FirstCycle {
				sum.FirstCycle = s.Cycle
			}
			if s.Cycle > sum.LastCycle {
				sum.LastCycle = s.Cycle
			}
			sum.Cycles++
		}
		switch s.Stage {
		case StageLadder:
			if t, ok := s.Attrs["transition"].(string); ok {
				sum.LadderTransitions = append(sum.LadderTransitions,
					fmt.Sprintf("%s@%d", t, s.Cycle))
			}
		case StageCycle:
			sum.Final = s.Attrs
		}
	}
	return sum
}

// WriteSummary renders the summary as the aspeo-trace text block.
func WriteSummary(w interface{ Write([]byte) (int, error) }, sum Summary) {
	fmt.Fprintf(w, "spans=%d cycles=%d (cycle %d..%d)\n",
		sum.Spans, sum.Cycles, sum.FirstCycle, sum.LastCycle)
	stages := make([]string, 0, len(sum.StageCounts))
	for s := range sum.StageCounts {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	parts := make([]string, 0, len(stages))
	for _, s := range stages {
		parts = append(parts, fmt.Sprintf("%s=%d", s, sum.StageCounts[s]))
	}
	fmt.Fprintf(w, "stages: %s\n", strings.Join(parts, " "))
	if len(sum.LadderTransitions) > 0 {
		fmt.Fprintf(w, "ladder: %s\n", strings.Join(sum.LadderTransitions, " "))
	}
	if sum.Final != nil {
		keys := make([]string, 0, len(sum.Final))
		for k := range sum.Final {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "final cycle:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, renderAttr(sum.Final[k], true))
		}
		fmt.Fprintln(w)
	}
}
