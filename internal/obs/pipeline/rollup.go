package pipeline

import (
	"sort"

	"aspeo/internal/histogram"
)

// DistSnapshot is a histogram.Dist's complete serializable state: the
// bucket bounds, raw per-bucket counts (+Inf overflow last) and the
// value sum. Quantized accumulation makes it exact, so snapshots of
// merged shards are byte-identical at any worker count.
type DistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
}

func snapshotDist(d *histogram.Dist) DistSnapshot {
	return DistSnapshot{Bounds: d.Bounds(), Counts: d.Counts(), Sum: d.Sum()}
}

// Dist reconstructs the snapshot as a histogram.Dist (for quantile
// queries on a scraped or deserialized snapshot).
func (s DistSnapshot) Dist() *histogram.Dist {
	d := histogram.NewDist(s.Bounds)
	if err := d.SetCounts(s.Counts, s.Sum); err != nil {
		panic(err) // a snapshot is self-consistent by construction
	}
	return d
}

// Total returns the snapshot's observation count.
func (s DistSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the snapshot's mean value (0 when empty).
func (s DistSnapshot) Mean() float64 {
	n := s.Total()
	if n == 0 {
		return 0
	}
	return s.Sum / float64(n)
}

// HealthTotals is the fleet-wide ladder ledger: exact integer sums of
// per-record deltas across every session and attempt (cumulative across
// restart attempts — a richer ledger than the pre-pipeline rollup,
// which only saw each session's final attempt).
type HealthTotals struct {
	ActuationFailures   int64 `json:"actuation_failures"`
	ActuationRetries    int64 `json:"actuation_retries"`
	GovernorReinstalls  int64 `json:"governor_reinstalls"`
	MaxFreqRestores     int64 `json:"max_freq_restores"`
	RejectedSamples     int64 `json:"rejected_samples"`
	NonFiniteSamples    int64 `json:"non_finite_samples"`
	StuckSamples        int64 `json:"stuck_samples"`
	OutlierSamples      int64 `json:"outlier_samples"`
	DegradedCycles      int64 `json:"degraded_cycles"`
	WatchdogTrips       int64 `json:"watchdog_trips"`
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// Relinquished counts sessions whose final attempt handed the
	// device back.
	Relinquished uint64 `json:"relinquished"`
	// LastTransition is the ladder transition reported by the
	// highest-ordinal finished session that fired one — a deterministic
	// stand-in for "most recent across the fleet".
	LastTransition string `json:"last_transition,omitempty"`
}

// Totals are the finished-session aggregates (final records that
// carried a run summary).
type Totals struct {
	Finished           uint64  `json:"finished"`
	ControllerFinished uint64  `json:"controller_finished"`
	SimSeconds         float64 `json:"sim_seconds"`
	EnergyJ            float64 `json:"energy_j"`
	DroppedInstr       float64 `json:"dropped_instr"`
	// MeanGIPS averages finished sessions' whole-run GIPS;
	// MeanAbsErrGIPS averages finished controller sessions' tracking
	// error.
	MeanGIPS       float64 `json:"mean_gips"`
	MeanAbsErrGIPS float64 `json:"mean_abs_err_gips"`
}

// CohortStats is one cohort's population aggregate.
type CohortStats struct {
	Name string `json:"name"`
	// Sessions counts arrivals observed; Finished counts final records
	// with a run summary; Cycles counts control cycles folded.
	Sessions uint64 `json:"sessions"`
	Finished uint64 `json:"finished"`
	Cycles   uint64 `json:"cycles"`
	// Per-cycle population means.
	MeanGIPS   float64 `json:"mean_gips"`
	MeanPowerW float64 `json:"mean_power_w"`
	// Slack statistics cover cycles with a positive target (controller
	// sessions): slack% = 100·(measured−target)/target.
	MeanSlackPct float64 `json:"mean_slack_pct"`
	P50SlackPct  float64 `json:"p50_slack_pct"`
	P95SlackPct  float64 `json:"p95_slack_pct"`
	// Population distributions.
	Slack DistSnapshot `json:"slack_pct"`
	Power DistSnapshot `json:"power_w"`
	GIPS  DistSnapshot `json:"measured_gips"`
}

// Rollup is one epoch snapshot: the merged, analyzed population
// aggregate the scrape paths serve from. Every field is a deterministic
// function of the records folded — no wall-clock, no worker-count
// dependence — so two fleets running the same sessions produce
// byte-identical rollup JSON regardless of parallelism.
type Rollup struct {
	Epoch    uint64  `json:"epoch"`
	WindowS  float64 `json:"window_s"`
	Cycles   uint64  `json:"cycles"`
	Sessions uint64  `json:"sessions"`

	Totals Totals       `json:"totals"`
	Health HealthTotals `json:"health"`

	// Fleet-wide population distributions (all cohorts merged).
	Slack DistSnapshot `json:"slack_pct"`
	Power DistSnapshot `json:"power_w"`
	GIPS  DistSnapshot `json:"measured_gips"`

	// Cohorts are sorted by name.
	Cohorts []CohortStats `json:"cohorts,omitempty"`

	Saturation   *Saturation    `json:"saturation,omitempty"`
	Interference []Interference `json:"interference,omitempty"`
}

// Cohort returns the named cohort's stats, or nil.
func (r *Rollup) Cohort(name string) *CohortStats {
	for i := range r.Cohorts {
		if r.Cohorts[i].Name == name {
			return &r.Cohorts[i]
		}
	}
	return nil
}

// assemble builds the epoch snapshot from merged per-cohort aggregates.
// Iteration is in sorted cohort-name order everywhere, so assembly is
// deterministic.
func (p *Pipeline) assemble(epoch uint64, merged []*cohortAgg) *Rollup {
	names := p.cohortNames()
	r := &Rollup{Epoch: epoch, WindowS: p.opts.WindowS}

	var aggs []namedAgg
	for id, a := range merged {
		if a == nil || id >= len(names) {
			continue
		}
		aggs = append(aggs, namedAgg{names[id], a})
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].name < aggs[j].name })

	pop := newCohortAgg()
	for _, na := range aggs {
		a := na.a
		pop.merge(a)
		cs := CohortStats{
			Name:     na.name,
			Sessions: a.arrivals,
			Finished: a.finals,
			Cycles:   a.cycles,
			Slack:    snapshotDist(a.slack),
			Power:    snapshotDist(a.pow),
			GIPS:     snapshotDist(a.gips),
		}
		if a.cycles > 0 {
			cs.MeanGIPS = a.measuredSum / float64(a.cycles)
			cs.MeanPowerW = a.powerSum / float64(a.cycles)
		}
		if a.slackCycles > 0 {
			cs.MeanSlackPct = a.slackSum / float64(a.slackCycles)
			cs.P50SlackPct = a.slack.Quantile(0.50)
			cs.P95SlackPct = a.slack.Quantile(0.95)
		}
		r.Cohorts = append(r.Cohorts, cs)
	}

	r.Cycles = pop.cycles
	r.Sessions = pop.arrivals
	r.Slack = snapshotDist(pop.slack)
	r.Power = snapshotDist(pop.pow)
	r.GIPS = snapshotDist(pop.gips)
	r.Totals = Totals{
		Finished:           pop.finals,
		ControllerFinished: pop.ctlFinals,
		SimSeconds:         pop.simS,
		EnergyJ:            pop.energyJ,
		DroppedInstr:       pop.droppedInstr,
	}
	if pop.finals > 0 {
		r.Totals.MeanGIPS = pop.finalGIPS / float64(pop.finals)
	}
	if pop.ctlFinals > 0 {
		r.Totals.MeanAbsErrGIPS = pop.absErr / float64(pop.ctlFinals)
	}
	r.Health = HealthTotals{
		ActuationFailures:   pop.health.ActuationFailures,
		ActuationRetries:    pop.health.ActuationRetries,
		GovernorReinstalls:  pop.health.GovernorReinstalls,
		MaxFreqRestores:     pop.health.MaxFreqRestores,
		RejectedSamples:     pop.health.RejectedSamples,
		NonFiniteSamples:    pop.health.NonFiniteSamples,
		StuckSamples:        pop.health.StuckSamples,
		OutlierSamples:      pop.health.OutlierSamples,
		DegradedCycles:      pop.health.DegradedCycles,
		WatchdogTrips:       pop.health.WatchdogTrips,
		ConsecutiveFailures: pop.health.ConsecutiveFailures,
		Relinquished:        pop.relinquished,
		LastTransition:      pop.lastTrans,
	}

	r.Saturation = analyzeSaturation(pop.wins, p.opts)
	r.Interference = analyzeInterference(aggs, pop.wins)
	return r
}

// namedAgg pairs a cohort's merged aggregate with its name for the
// assembly and analyzer passes.
type namedAgg struct {
	name string
	a    *cohortAgg
}
