package pipeline

import (
	"sync"

	"aspeo/internal/histogram"
)

// winCell is one analyzer time window of one cohort: exact integer
// counts plus quantized-exact float sums, so window merges commute.
type winCell struct {
	Cycles      uint64
	SlackCycles uint64 // cycles with a positive target (slack defined)
	StormCycles uint64
	Arrivals    uint64
	MeasuredSum float64
	TargetSum   float64
	SlackSum    float64
	PowerSum    float64
}

func (w *winCell) merge(o *winCell) {
	w.Cycles += o.Cycles
	w.SlackCycles += o.SlackCycles
	w.StormCycles += o.StormCycles
	w.Arrivals += o.Arrivals
	w.MeasuredSum += o.MeasuredSum
	w.TargetSum += o.TargetSum
	w.SlackSum += o.SlackSum
	w.PowerSum += o.PowerSum
}

// healthSums is the ladder ledger aggregated as exact int64 sums of
// per-record deltas.
type healthSums struct {
	ActuationFailures   int64
	ActuationRetries    int64
	GovernorReinstalls  int64
	MaxFreqRestores     int64
	RejectedSamples     int64
	NonFiniteSamples    int64
	StuckSamples        int64
	OutlierSamples      int64
	DegradedCycles      int64
	WatchdogTrips       int64
	ConsecutiveFailures int64
}

func (h *healthSums) add(d *HealthDelta) {
	h.ActuationFailures += int64(d.ActuationFailures)
	h.ActuationRetries += int64(d.ActuationRetries)
	h.GovernorReinstalls += int64(d.GovernorReinstalls)
	h.MaxFreqRestores += int64(d.MaxFreqRestores)
	h.RejectedSamples += int64(d.RejectedSamples)
	h.StuckSamples += int64(d.StuckSamples)
	h.NonFiniteSamples += int64(d.NonFiniteSamples)
	h.OutlierSamples += int64(d.OutlierSamples)
	h.DegradedCycles += int64(d.DegradedCycles)
	h.WatchdogTrips += int64(d.WatchdogTrips)
	h.ConsecutiveFailures += int64(d.ConsecutiveFailures)
}

func (h *healthSums) merge(o *healthSums) {
	h.ActuationFailures += o.ActuationFailures
	h.ActuationRetries += o.ActuationRetries
	h.GovernorReinstalls += o.GovernorReinstalls
	h.MaxFreqRestores += o.MaxFreqRestores
	h.RejectedSamples += o.RejectedSamples
	h.StuckSamples += o.StuckSamples
	h.NonFiniteSamples += o.NonFiniteSamples
	h.OutlierSamples += o.OutlierSamples
	h.DegradedCycles += o.DegradedCycles
	h.WatchdogTrips += o.WatchdogTrips
	h.ConsecutiveFailures += o.ConsecutiveFailures
}

// Distribution bucket bounds. GIPSBounds must match the fleet's
// aspeo_fleet_measured_gips registration so epoch snapshots load
// straight into the scrape histogram.
var (
	// SlackBounds bucket slack percent: (measured-target)/target · 100.
	SlackBounds = []float64{-100, -50, -25, -10, -5, -1, 0, 1, 5, 10, 25, 50, 100}
	// PowerBounds bucket device power in watts.
	PowerBounds = []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 7.5, 10}
	// GIPSBounds bucket measured performance.
	GIPSBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}
)

// cohortAgg is one cohort's aggregate state within one shard (and, in
// merged form, across all shards). Every field either sums exactly
// (integers, quantized floats, bucket counts) or resolves by a
// deterministic max rule (lastTransition), so merging aggs in any
// grouping or order produces identical state.
type cohortAgg struct {
	cycles      uint64
	slackCycles uint64
	stormCycles uint64
	arrivals    uint64

	measuredSum  float64
	targetSum    float64
	powerSum     float64
	slackSum     float64
	stormSlack   float64 // slack sum over storm-active cycles
	stormSlackN  uint64  // slack observations under storm
	slack, pow   *histogram.Dist
	gips         *histogram.Dist
	health       healthSums
	relinquished uint64

	// Finished-session totals (final records with a run summary).
	finals       uint64
	ctlFinals    uint64
	simS         float64
	energyJ      float64
	droppedInstr float64
	finalGIPS    float64
	absErr       float64

	// Highest-ordinal final that carried a ladder transition.
	lastTransSeq uint64
	lastTrans    string

	wins []winCell
}

func newCohortAgg() *cohortAgg {
	return &cohortAgg{
		slack: histogram.NewDist(SlackBounds),
		pow:   histogram.NewDist(PowerBounds),
		gips:  histogram.NewDist(GIPSBounds),
	}
}

// shard is one worker's half of the pipeline: the SPSC ring the worker
// pushes into and the aggregate state its records fold into. mu guards
// the aggregate state and the consumer side of the ring; the producer
// takes it only on the amortized overflow path.
type shard struct {
	mu      sync.Mutex
	ring    *ring
	cohorts []*cohortAgg // indexed by interned cohort id

	// pending stream payloads, accumulated only while subscribers
	// exist; the collector moves them into the next epoch batch.
	pendCycles   []CycleRecord
	pendFinals   []FinalRecord
	pendArrivals []arrival
}

type arrival struct {
	cohort uint32
	t      float64
}

// agg returns the shard's aggregate cell for a cohort id, growing the
// index as cohorts intern.
func (sh *shard) agg(cohort uint32) *cohortAgg {
	for int(cohort) >= len(sh.cohorts) {
		sh.cohorts = append(sh.cohorts, nil)
	}
	if sh.cohorts[cohort] == nil {
		sh.cohorts[cohort] = newCohortAgg()
	}
	return sh.cohorts[cohort]
}

// win returns the window cell for scenario time t, clamping to the
// window bound so one runaway timestamp cannot grow the slice without
// limit.
func (a *cohortAgg) win(t, windowS float64, maxWindows int) *winCell {
	w := 0
	if t > 0 {
		w = int(t / windowS)
	}
	if w >= maxWindows {
		w = maxWindows - 1
	}
	for w >= len(a.wins) {
		a.wins = append(a.wins, winCell{})
	}
	return &a.wins[w]
}

// foldCycle folds one cycle record into the shard. Callers hold sh.mu.
// All float accumulation goes through Quantize — the exactness step the
// commutativity proof rests on.
func (sh *shard) foldCycle(rec *CycleRecord, windowS float64, maxWindows int) {
	a := sh.agg(rec.Cohort)
	qm := Quantize(rec.MeasuredGIPS)
	qt := Quantize(rec.TargetGIPS)
	qp := Quantize(rec.PowerW)

	a.cycles++
	a.measuredSum += qm
	a.targetSum += qt
	a.powerSum += qp
	a.gips.Observe(qm)
	a.pow.Observe(qp)
	a.health.add(&rec.Health)

	w := a.win(rec.T, windowS, maxWindows)
	w.Cycles++
	w.MeasuredSum += qm
	w.TargetSum += qt
	w.PowerSum += qp
	if rec.Storm {
		a.stormCycles++
		w.StormCycles++
	}
	if rec.TargetGIPS > 0 {
		qs := Quantize(100 * (rec.MeasuredGIPS - rec.TargetGIPS) / rec.TargetGIPS)
		a.slackCycles++
		a.slackSum += qs
		a.slack.Observe(qs)
		w.SlackCycles++
		w.SlackSum += qs
		if rec.Storm {
			a.stormSlack += qs
			a.stormSlackN++
		}
	}
}

// foldFinal folds one terminal-session record. Callers hold sh.mu.
func (sh *shard) foldFinal(fin *FinalRecord) {
	a := sh.agg(fin.Cohort)
	if fin.Relinquished {
		a.relinquished++
	}
	a.health.add(&fin.Health)
	if fin.LastTransition != "" && fin.Session > a.lastTransSeq {
		a.lastTransSeq = fin.Session
		a.lastTrans = fin.LastTransition
	}
	if !fin.HasSummary {
		return
	}
	a.finals++
	a.simS += Quantize(fin.DurationS)
	a.energyJ += Quantize(fin.EnergyJ)
	a.droppedInstr += Quantize(fin.DroppedInstr)
	a.finalGIPS += Quantize(fin.GIPS)
	if fin.Controller {
		a.ctlFinals++
		a.absErr += Quantize(fin.MeanAbsErrGIPS)
	}
}

// foldArrival counts one session arrival. Callers hold sh.mu.
func (sh *shard) foldArrival(cohort uint32, t, windowS float64, maxWindows int) {
	a := sh.agg(cohort)
	a.arrivals++
	a.win(t, windowS, maxWindows).Arrivals++
}

// merge folds another cohort's aggregate into a. Exact in every field:
// integer adds, quantized float adds, bucket-count adds, and the
// highest-ordinal rule for the transition string.
func (a *cohortAgg) merge(o *cohortAgg) {
	a.cycles += o.cycles
	a.slackCycles += o.slackCycles
	a.stormCycles += o.stormCycles
	a.arrivals += o.arrivals
	a.measuredSum += o.measuredSum
	a.targetSum += o.targetSum
	a.powerSum += o.powerSum
	a.slackSum += o.slackSum
	a.stormSlack += o.stormSlack
	a.stormSlackN += o.stormSlackN
	if err := a.slack.Merge(o.slack); err != nil {
		panic(err) // bounds are package constants; a mismatch is a bug
	}
	if err := a.pow.Merge(o.pow); err != nil {
		panic(err)
	}
	if err := a.gips.Merge(o.gips); err != nil {
		panic(err)
	}
	a.health.merge(&o.health)
	a.relinquished += o.relinquished
	a.finals += o.finals
	a.ctlFinals += o.ctlFinals
	a.simS += o.simS
	a.energyJ += o.energyJ
	a.droppedInstr += o.droppedInstr
	a.finalGIPS += o.finalGIPS
	a.absErr += o.absErr
	if o.lastTrans != "" && o.lastTransSeq > a.lastTransSeq {
		a.lastTransSeq = o.lastTransSeq
		a.lastTrans = o.lastTrans
	}
	for len(a.wins) < len(o.wins) {
		a.wins = append(a.wins, winCell{})
	}
	for i := range o.wins {
		a.wins[i].merge(&o.wins[i])
	}
}
