// Package pipeline is the fleet-scale telemetry pipeline: per-worker
// SPSC ring buffers on the session hot path, per-worker rollup shards
// with a provably commutative/associative merge, epoch snapshots for
// scrape paths, and population analyzers (saturation brownouts,
// storm-interference correlation) over the batched record stream.
//
// # Why rings and shards
//
// The fleet's previous telemetry path took a per-session mutex on every
// control cycle and walked every session lock on every rollup — the
// measurement path distorting the system being measured, exactly the
// failure mode the in-situ Android measurement literature warns about.
// Here the hot path is one lock-free push of a fixed-size record into
// the worker's own single-producer/single-consumer ring; a collector
// drains rings in batches into per-worker shards, and scrape paths read
// merged epoch snapshots. Sessions are never locked by observers.
//
// # Determinism contract
//
// A merged rollup is byte-identical at any worker count, ring capacity
// or drain schedule. Integer aggregates (counts, health deltas) commute
// trivially; float aggregates commute because every observed scalar is
// quantized to the dyadic grid 2^-17 before accumulation (Quantize), so
// every partial sum is exactly representable in float64 as long as its
// magnitude stays under 2^36 ≈ 6.9e10 — far beyond any fleet's sums —
// making float addition exact and therefore order- and
// partition-independent. The property tests in this package hold the
// merge to that claim.
//
// When a producer's ring fills, the producer folds its own ring into
// its own shard (the amortized backpressure path) and retries the push:
// records are never dropped, which the byte-identity contract requires.
package pipeline

import "math"

// qBits is the quantization grid: observations are rounded to multiples
// of 2^-17 ≈ 7.6e-6 before accumulation. Fine enough that rollup means
// and distributions are unaffected at reporting precision, coarse
// enough that sums of fleet magnitude stay exactly representable.
const qBits = 17

// qMax bounds quantized magnitudes at 2^36: partial sums of values on
// the 2^-17 grid stay exact up to 2^53-ulp territory only while the sum
// itself is below 2^36. One pathological observation must not void the
// whole rollup's exactness, so values beyond the bound clamp to it.
const qMax = 1 << 36

// Quantize rounds v to the dyadic grid 2^-17, clamping to ±2^36 and
// mapping non-finite values to 0 (degenerate telemetry must not poison
// an aggregate). Sums of quantized values are exact — the foundation of
// the merge's commutativity/associativity.
func Quantize(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > qMax {
		return qMax
	}
	if v < -qMax {
		return -qMax
	}
	return math.Ldexp(math.Round(math.Ldexp(v, qBits)), -qBits)
}

// HealthDelta is the per-record change of the resilience ladder's
// integer counters since the previous record of the same attempt.
// Deltas sum exactly (integers), so shard merges reproduce the sum of
// last-seen values regardless of how records were partitioned.
// ConsecutiveFailures is a level, not a counter — its deltas may be
// negative; the sum still reconstructs the level sum exactly.
type HealthDelta struct {
	ActuationFailures   int32 `json:"actuation_failures,omitempty"`
	ActuationRetries    int32 `json:"actuation_retries,omitempty"`
	GovernorReinstalls  int32 `json:"governor_reinstalls,omitempty"`
	MaxFreqRestores     int32 `json:"max_freq_restores,omitempty"`
	RejectedSamples     int32 `json:"rejected_samples,omitempty"`
	NonFiniteSamples    int32 `json:"non_finite_samples,omitempty"`
	StuckSamples        int32 `json:"stuck_samples,omitempty"`
	OutlierSamples      int32 `json:"outlier_samples,omitempty"`
	DegradedCycles      int32 `json:"degraded_cycles,omitempty"`
	WatchdogTrips       int32 `json:"watchdog_trips,omitempty"`
	ConsecutiveFailures int32 `json:"consecutive_failures,omitempty"`
}

// Zero reports whether the delta carries no change.
func (d *HealthDelta) Zero() bool { return *d == HealthDelta{} }

// CycleRecord is the compact fixed-size record one control cycle
// appends to its worker's ring: no pointers, no strings, no slices —
// a ring slot is one flat copy.
type CycleRecord struct {
	// Session is the session's fleet ordinal (unique per process).
	Session uint64
	// Cohort is the interned cohort id (Pipeline.CohortID).
	Cohort uint32
	// Storm marks cycles that ran while the session's ad-storm burst
	// window was active (precomputed by the producer from the session's
	// storm phase — the consumer never needs per-session config).
	Storm bool
	// T is scenario time in seconds: the session's arrival offset plus
	// the cycle's session-local clock. Window analyzers bucket on it.
	T float64
	// MeasuredGIPS, TargetGIPS and PowerW are the cycle's raw
	// telemetry; quantization happens at fold time.
	MeasuredGIPS float64
	TargetGIPS   float64
	PowerW       float64
	// Health is the ladder ledger's change since the previous cycle of
	// this attempt.
	Health HealthDelta
}

// FinalRecord is a session's terminal record. Finals bypass the ring —
// they are rare (once per session) and fold under the shard lock before
// the session's done channel closes, so a rollup taken after a session
// lands always includes it. Bypassing the ring is also what lets finals
// carry a string.
type FinalRecord struct {
	// Session is the session's fleet ordinal.
	Session uint64
	// Cohort is the interned cohort id.
	Cohort uint32
	// HasSummary distinguishes sessions that produced a run summary
	// from ones that died in construction; only the former contribute
	// to the finished-session aggregates.
	HasSummary bool
	// Controller marks controller-mode sessions (the MeanAbsErrGIPS
	// denominator).
	Controller bool
	// Finished-session aggregates, raw (quantized at fold time).
	DurationS      float64
	EnergyJ        float64
	DroppedInstr   float64
	GIPS           float64
	MeanAbsErrGIPS float64
	// Health is the residual ledger delta since the last cycle record
	// of the final attempt (for governor sessions: the whole ledger).
	Health HealthDelta
	// Relinquished marks sessions whose final attempt handed the device
	// back to the stock governors.
	Relinquished bool
	// LastTransition is the final attempt's last ladder transition
	// ("degraded@41"); the merged rollup keeps the one from the highest
	// session ordinal — a deterministic stand-in for "most recent".
	LastTransition string
}
