package pipeline

import (
	"sync"
	"sync/atomic"
)

// Options configure a Pipeline. Zero values select the defaults.
type Options struct {
	// Workers is the number of producer shards — one per worker
	// goroutine (<= 0 selects 1).
	Workers int
	// RingCap is the per-worker ring capacity in records, rounded up to
	// a power of two (<= 0 selects 1024). A full ring never drops: the
	// producer folds its own ring and retries.
	RingCap int
	// WindowS is the analyzer window in scenario seconds (<= 0 selects
	// 1.0).
	WindowS float64
	// BrownoutThreshold is the saturation analyzer's trigger: a window
	// browns out when the population's measured GIPS sum falls below
	// threshold · target sum (<= 0 selects 0.9).
	BrownoutThreshold float64
	// MaxWindows bounds the analyzer timeline; records beyond it clamp
	// into the last window (<= 0 selects 65536).
	MaxWindows int
}

// Defaults for the zero-valued knobs above.
const (
	DefaultRingCap           = 1024
	DefaultWindowS           = 1.0
	DefaultBrownoutThreshold = 0.9
	DefaultMaxWindows        = 1 << 16
)

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.RingCap <= 0 {
		o.RingCap = DefaultRingCap
	}
	if o.WindowS <= 0 {
		o.WindowS = DefaultWindowS
	}
	if o.BrownoutThreshold <= 0 {
		o.BrownoutThreshold = DefaultBrownoutThreshold
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = DefaultMaxWindows
	}
	return o
}

// Pipeline is the telemetry pipeline instance: per-worker rings and
// shards, the cohort intern table, the epoch snapshot, and the NDJSON
// stream fan-out. Safe for concurrent use under the worker-identity
// contract: ObserveCycle(w, …) for one w is called by at most one
// goroutine at a time (the pool worker that owns shard w).
type Pipeline struct {
	opts   Options
	shards []*shard

	cmu     sync.Mutex
	cohorts map[string]uint32
	names   []string // cohort id -> name

	epoch     atomic.Uint64
	snap      atomic.Pointer[Rollup]
	advanceMu sync.Mutex // serializes epoch advances

	smu       sync.Mutex
	subs      map[uint64]chan StreamBatch
	subSeq    uint64
	streaming atomic.Bool
	dropped   atomic.Uint64
	overflows atomic.Uint64
}

// New builds a pipeline.
func New(o Options) *Pipeline {
	o = o.normalized()
	p := &Pipeline{
		opts:    o,
		shards:  make([]*shard, o.Workers),
		cohorts: make(map[string]uint32),
		subs:    make(map[uint64]chan StreamBatch),
	}
	for i := range p.shards {
		p.shards[i] = &shard{ring: newRing(o.RingCap)}
	}
	return p
}

// Workers returns the pipeline's shard count.
func (p *Pipeline) Workers() int { return len(p.shards) }

// CohortID interns a cohort name, returning its dense id. Intended for
// submit time — the returned id is captured once per session, never
// looked up per cycle. The empty name interns as "default".
func (p *Pipeline) CohortID(name string) uint32 {
	if name == "" {
		name = "default"
	}
	p.cmu.Lock()
	defer p.cmu.Unlock()
	if id, ok := p.cohorts[name]; ok {
		return id
	}
	id := uint32(len(p.names))
	p.cohorts[name] = id
	p.names = append(p.names, name)
	return id
}

// cohortNames snapshots the intern table (id -> name).
func (p *Pipeline) cohortNames() []string {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// ObserveCycle appends one cycle record to worker w's ring — the
// session hot path: lock-free and allocation-free in the steady state.
// When the ring is full the producer folds its own ring into its own
// shard under the shard mutex (amortized over RingCap pushes) and
// retries; records are never dropped.
func (p *Pipeline) ObserveCycle(w int, rec *CycleRecord) {
	sh := p.shards[w]
	if sh.ring.push(rec) {
		return
	}
	p.overflows.Add(1)
	sh.mu.Lock()
	p.drainLocked(sh)
	sh.ring.push(rec) // the ring is empty now; cannot fail
	sh.mu.Unlock()
}

// ObserveFinal folds a session's terminal record into worker w's shard.
// It must run before the session is reported terminal (before its done
// channel closes), so any rollup taken after a session lands includes
// its final.
func (p *Pipeline) ObserveFinal(w int, fin *FinalRecord) {
	sh := p.shards[w]
	sh.mu.Lock()
	p.drainLocked(sh) // keep ring records ordered before the final
	sh.foldFinal(fin)
	if p.streaming.Load() {
		sh.pendFinals = append(sh.pendFinals, *fin)
	}
	sh.mu.Unlock()
}

// ObserveArrival counts one session arrival at scenario time t. The
// shard index may be any value in [0, Workers()) — arrivals are integer
// counts, so the partition does not affect the merged rollup.
func (p *Pipeline) ObserveArrival(w int, cohort uint32, t float64) {
	sh := p.shards[w%len(p.shards)]
	sh.mu.Lock()
	sh.foldArrival(cohort, t, p.opts.WindowS, p.opts.MaxWindows)
	if p.streaming.Load() {
		sh.pendArrivals = append(sh.pendArrivals, arrival{cohort: cohort, t: t})
	}
	sh.mu.Unlock()
}

// drainLocked folds everything in sh's ring into its aggregates.
// Callers hold sh.mu.
func (p *Pipeline) drainLocked(sh *shard) {
	streaming := p.streaming.Load()
	sh.ring.drain(func(rec *CycleRecord) {
		sh.foldCycle(rec, p.opts.WindowS, p.opts.MaxWindows)
		if streaming {
			sh.pendCycles = append(sh.pendCycles, *rec)
		}
	})
}

// Advance drains every ring into its shard and, when subscribers exist,
// publishes the drained records as one epoch batch. It returns the new
// epoch ordinal. Advance takes shard mutexes only — never a session
// lock.
func (p *Pipeline) Advance() uint64 {
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	return p.advanceLocked()
}

func (p *Pipeline) advanceLocked() uint64 {
	epoch := p.epoch.Add(1)
	var batch StreamBatch
	streaming := p.streaming.Load()
	for _, sh := range p.shards {
		sh.mu.Lock()
		p.drainLocked(sh)
		if streaming {
			batch.append(p, sh)
			sh.pendCycles = sh.pendCycles[:0]
			sh.pendFinals = sh.pendFinals[:0]
			sh.pendArrivals = sh.pendArrivals[:0]
		}
		sh.mu.Unlock()
	}
	if streaming && !batch.empty() {
		batch.Epoch = epoch
		p.publish(batch)
	}
	return epoch
}

// Rollup advances an epoch, merges every shard in fixed order, runs the
// analyzers, publishes the result as the current epoch snapshot, and
// returns it. The merge is commutative and associative (property-
// tested), so the result is byte-identical at any worker count.
func (p *Pipeline) Rollup() *Rollup {
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	epoch := p.advanceLocked()

	merged := make([]*cohortAgg, len(p.cohortNames()))
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, a := range sh.cohorts {
			if a == nil {
				continue
			}
			for id >= len(merged) {
				merged = append(merged, nil)
			}
			if merged[id] == nil {
				merged[id] = newCohortAgg()
			}
			merged[id].merge(a)
		}
		sh.mu.Unlock()
	}
	r := p.assemble(epoch, merged)
	p.snap.Store(r)
	return r
}

// Snapshot returns the last published epoch snapshot without touching
// any shard or session state — the scrape fast path. It is nil before
// the first Rollup.
func (p *Pipeline) Snapshot() *Rollup { return p.snap.Load() }

// Overflows reports producer ring-full folds — the amortized slow path
// taken; a runtime gauge, deliberately not part of the Rollup schema
// (its value is timing-dependent).
func (p *Pipeline) Overflows() uint64 { return p.overflows.Load() }

// Dropped reports stream batches dropped on slow subscribers.
func (p *Pipeline) Dropped() uint64 { return p.dropped.Load() }

// Subscribe registers a stream subscriber: every epoch batch published
// while it is registered is delivered on the returned channel. A full
// subscriber channel drops the batch (counted; the stream is best
// effort — rollups never lose records, streams may). cancel
// unregisters and closes the channel.
func (p *Pipeline) Subscribe(buf int) (<-chan StreamBatch, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan StreamBatch, buf)
	p.smu.Lock()
	p.subSeq++
	id := p.subSeq
	p.subs[id] = ch
	p.streaming.Store(true)
	p.smu.Unlock()
	cancel := func() {
		p.smu.Lock()
		if _, ok := p.subs[id]; ok {
			delete(p.subs, id)
			close(ch)
		}
		p.streaming.Store(len(p.subs) > 0)
		p.smu.Unlock()
	}
	return ch, cancel
}

func (p *Pipeline) publish(b StreamBatch) {
	p.smu.Lock()
	for _, ch := range p.subs {
		select {
		case ch <- b:
		default:
			p.dropped.Add(1)
		}
	}
	p.smu.Unlock()
}
