package pipeline

import "sync/atomic"

// ring is a bounded single-producer/single-consumer queue of cycle
// records over a power-of-two buffer. The producer is the one worker
// goroutine that owns this ring; the consumer role (drain) is taken by
// whoever holds the owning shard's mutex — the collector during an
// epoch advance, or the producer itself on overflow. head and tail are
// monotonic uint64 positions; the atomic stores publish slot writes to
// the other side (release/acquire via sync/atomic), so the steady-state
// push takes no lock and allocates nothing.
type ring struct {
	buf  []CycleRecord
	mask uint64
	head atomic.Uint64 // next write position; producer-owned
	tail atomic.Uint64 // next read position; consumer-owned
}

// newRing sizes a ring to at least capacity slots, rounded up to a
// power of two (minimum 2).
func newRing(capacity int) *ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &ring{buf: make([]CycleRecord, n), mask: uint64(n - 1)}
}

// push appends one record; it reports false when the ring is full (the
// producer then folds its own ring into its shard and retries). Single
// producer only.
func (r *ring) push(rec *CycleRecord) bool {
	h := r.head.Load()
	if h-r.tail.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[h&r.mask] = *rec
	r.head.Store(h + 1)
	return true
}

// drain consumes every record currently in the ring, in push order.
// Single consumer: callers must hold the owning shard's mutex.
func (r *ring) drain(fn func(*CycleRecord)) int {
	t := r.tail.Load()
	h := r.head.Load()
	n := int(h - t)
	for ; t != h; t++ {
		fn(&r.buf[t&r.mask])
	}
	r.tail.Store(t)
	return n
}
