package pipeline

import "math"

// Saturation is the brownout analyzer's output: population-wide windows
// where measured GIPS fell below the threshold fraction of the target.
type Saturation struct {
	WindowS   float64 `json:"window_s"`
	Threshold float64 `json:"threshold"`
	// Brownouts are the detected events, in time order.
	Brownouts []Brownout `json:"brownouts,omitempty"`
	// WorstDepth is the deepest per-window deficit seen anywhere;
	// BrownoutCycles counts control cycles that ran inside brownout
	// windows.
	WorstDepth     float64 `json:"worst_depth,omitempty"`
	BrownoutCycles uint64  `json:"brownout_cycles,omitempty"`
}

// Brownout is one saturation event: a maximal run of consecutive
// brownout windows.
type Brownout struct {
	// OnsetS is the event's start in scenario seconds; WidthS its
	// duration (a whole number of windows).
	OnsetS float64 `json:"onset_s"`
	WidthS float64 `json:"width_s"`
	// Depth is the event's worst per-window deficit: 1 − measured/target
	// GIPS sums, in (0, 1].
	Depth float64 `json:"depth"`
	// Cycles counts control cycles inside the event's windows.
	Cycles uint64 `json:"cycles"`
}

// analyzeSaturation scans the merged population windows for brownouts.
// Windows without a target (no controller cycles) never brown out. The
// scan is a deterministic function of exact window sums.
func analyzeSaturation(wins []winCell, o Options) *Saturation {
	s := &Saturation{WindowS: o.WindowS, Threshold: o.BrownoutThreshold}
	var cur *Brownout
	for i := range wins {
		w := &wins[i]
		brown := w.TargetSum > 0 && w.MeasuredSum < o.BrownoutThreshold*w.TargetSum
		if !brown {
			cur = nil
			continue
		}
		depth := 1 - w.MeasuredSum/w.TargetSum
		s.BrownoutCycles += w.Cycles
		if depth > s.WorstDepth {
			s.WorstDepth = depth
		}
		if cur == nil {
			s.Brownouts = append(s.Brownouts, Brownout{OnsetS: float64(i) * o.WindowS})
			cur = &s.Brownouts[len(s.Brownouts)-1]
		}
		cur.WidthS += o.WindowS
		cur.Cycles += w.Cycles
		if depth > cur.Depth {
			cur.Depth = depth
		}
	}
	if len(s.Brownouts) == 0 {
		return nil
	}
	return s
}

// Interference is one cohort's storm-interference rollup: how the
// cohort's slack behaves while its ad-storm burst windows are active
// versus calm, and how its per-window slack correlates with concurrent
// population arrivals (bursty-arrival interference).
type Interference struct {
	Cohort string `json:"cohort"`
	// StormCycles/CalmCycles split the cohort's slack-bearing cycles by
	// storm activity.
	StormCycles uint64 `json:"storm_cycles"`
	CalmCycles  uint64 `json:"calm_cycles"`
	// Mean slack% in each regime, and the collapse (calm − storm): a
	// positive collapse means the storm costs the cohort slack.
	StormMeanSlackPct float64 `json:"storm_mean_slack_pct"`
	CalmMeanSlackPct  float64 `json:"calm_mean_slack_pct"`
	SlackCollapsePct  float64 `json:"slack_collapse_pct"`
	// ArrivalSlackCorr is the Pearson correlation between the
	// population's per-window arrival counts and this cohort's
	// per-window mean slack, over windows where the cohort has slack
	// observations (0 when degenerate).
	ArrivalSlackCorr float64 `json:"arrival_slack_corr"`
}

// analyzeInterference emits one rollup per cohort with slack
// observations, in sorted cohort order. popWins supplies the
// population-wide arrival series.
func analyzeInterference(aggs []namedAgg, popWins []winCell) []Interference {
	var out []Interference
	for _, na := range aggs {
		a := na.a
		if a.slackCycles == 0 {
			continue
		}
		inf := Interference{
			Cohort:      na.name,
			StormCycles: a.stormSlackN,
			CalmCycles:  a.slackCycles - a.stormSlackN,
		}
		if a.stormSlackN > 0 {
			inf.StormMeanSlackPct = a.stormSlack / float64(a.stormSlackN)
		}
		if inf.CalmCycles > 0 {
			inf.CalmMeanSlackPct = (a.slackSum - a.stormSlack) / float64(inf.CalmCycles)
		}
		if a.stormSlackN > 0 && inf.CalmCycles > 0 {
			inf.SlackCollapsePct = inf.CalmMeanSlackPct - inf.StormMeanSlackPct
		}
		inf.ArrivalSlackCorr = arrivalSlackCorr(a.wins, popWins)
		out = append(out, inf)
	}
	return out
}

// arrivalSlackCorr computes the Pearson correlation between population
// arrivals per window and the cohort's mean slack per window, over the
// cohort's slack-bearing windows. Inputs are exact sums, iteration
// order is fixed, so the result is deterministic (not exact — it
// involves divisions and a square root — but identical at any worker
// count).
func arrivalSlackCorr(cohortWins, popWins []winCell) float64 {
	var n float64
	var sumX, sumY, sumXX, sumYY, sumXY float64
	for i := range cohortWins {
		w := &cohortWins[i]
		if w.SlackCycles == 0 {
			continue
		}
		var x float64
		if i < len(popWins) {
			x = float64(popWins[i].Arrivals)
		}
		y := w.SlackSum / float64(w.SlackCycles)
		n++
		sumX += x
		sumY += y
		sumXX += x * x
		sumYY += y * y
		sumXY += x * y
	}
	if n < 2 {
		return 0
	}
	cov := sumXY - sumX*sumY/n
	varX := sumXX - sumX*sumX/n
	varY := sumYY - sumY*sumY/n
	if varX <= 0 || varY <= 0 {
		return 0
	}
	return cov / math.Sqrt(varX*varY)
}
