package pipeline

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestQuantize(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{-2.5, -2.5},
		{math.NaN(), 0},
		{math.Inf(1), 1 << 36},
		{math.Inf(-1), -(1 << 36)},
		{1e300, 1 << 36},
	}
	for _, c := range cases {
		if got := Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Idempotence: a quantized value is on the grid already.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := (rng.Float64() - 0.5) * 1e3
		q := Quantize(v)
		if Quantize(q) != q {
			t.Fatalf("Quantize not idempotent at %v: %v -> %v", v, q, Quantize(q))
		}
		if math.Abs(q-v) > math.Ldexp(1, -18)+1e-12 {
			t.Fatalf("Quantize(%v) = %v too far off", v, q)
		}
	}
}

func TestRing(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 8; i++ {
		if !r.push(&CycleRecord{Session: uint64(i)}) {
			t.Fatalf("push %d failed on empty ring", i)
		}
	}
	if r.push(&CycleRecord{}) {
		t.Fatal("push succeeded on full ring")
	}
	var got []uint64
	n := r.drain(func(rec *CycleRecord) { got = append(got, rec.Session) })
	if n != 8 || len(got) != 8 {
		t.Fatalf("drain returned %d records", n)
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("drain order: got[%d] = %d", i, s)
		}
	}
	// Wraparound: interleave pushes and drains past the capacity.
	for round := 0; round < 5; round++ {
		for i := 0; i < 5; i++ {
			if !r.push(&CycleRecord{Session: uint64(round*5 + i)}) {
				t.Fatalf("wrap push failed round %d", round)
			}
		}
		want := uint64(round * 5)
		r.drain(func(rec *CycleRecord) {
			if rec.Session != want {
				t.Fatalf("wrap drain: got %d want %d", rec.Session, want)
			}
			want++
		})
	}
}

// genRecords builds a deterministic pseudo-random record stream: cycles,
// finals and arrivals over several cohorts, with storms, governor
// sessions (no target) and occasional health deltas.
func genRecords(seed int64, n int) (cycles []CycleRecord, finals []FinalRecord, arrivals []StreamArrival, cohorts []string) {
	rng := rand.New(rand.NewSource(seed))
	cohorts = []string{"default", "game", "browser", "video"}
	for s := 0; s < n/50+2; s++ {
		c := cohorts[rng.Intn(len(cohorts))]
		arrivals = append(arrivals, StreamArrival{Cohort: c, T: rng.Float64() * 20})
	}
	for i := 0; i < n; i++ {
		rec := CycleRecord{
			Session:      uint64(rng.Intn(64)),
			Cohort:       uint32(rng.Intn(len(cohorts))),
			T:            rng.Float64() * 30,
			MeasuredGIPS: rng.Float64() * 8,
			PowerW:       0.5 + rng.Float64()*4,
			Storm:        rng.Intn(4) == 0,
		}
		if rng.Intn(3) != 0 {
			rec.TargetGIPS = 0.5 + rng.Float64()*6
		}
		if rng.Intn(10) == 0 {
			rec.Health = HealthDelta{
				RejectedSamples:     int32(rng.Intn(3)),
				DegradedCycles:      int32(rng.Intn(2)),
				ConsecutiveFailures: int32(rng.Intn(5) - 2),
			}
		}
		cycles = append(cycles, rec)
	}
	for s := 0; s < n/20+2; s++ {
		fin := FinalRecord{
			Session:    uint64(s),
			Cohort:     uint32(rng.Intn(len(cohorts))),
			HasSummary: rng.Intn(5) != 0,
			Controller: rng.Intn(2) == 0,
			DurationS:  rng.Float64() * 30,
			EnergyJ:    rng.Float64() * 100,
			GIPS:       rng.Float64() * 8,
		}
		if fin.Controller {
			fin.MeanAbsErrGIPS = rng.Float64()
		}
		if rng.Intn(6) == 0 {
			fin.Relinquished = true
			fin.LastTransition = "thermal"
		}
		finals = append(finals, fin)
	}
	return
}

// feed pushes a record stream through a pipeline with the given worker
// count, partitioning records round-robin, and returns one rollup.
func feed(workers int, cycles []CycleRecord, finals []FinalRecord, arrivals []StreamArrival, cohorts []string) *Rollup {
	p := New(Options{Workers: workers, RingCap: 64})
	for _, c := range cohorts {
		p.CohortID(c)
	}
	for i, ar := range arrivals {
		p.ObserveArrival(i%workers, p.CohortID(ar.Cohort), ar.T)
	}
	for i := range cycles {
		p.ObserveCycle(i%workers, &cycles[i])
	}
	for i := range finals {
		p.ObserveFinal(i%workers, &finals[i])
	}
	return p.Rollup()
}

// TestRollupByteIdentity is the core determinism property: the same
// record stream partitioned across 1, 4 and 16 shards — exercising the
// ring-overflow fold path via the small RingCap — produces byte-
// identical rollup JSON.
func TestRollupByteIdentity(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		cycles, finals, arrivals, cohorts := genRecords(seed, 5000)
		var want []byte
		for _, workers := range []int{1, 4, 16} {
			r := feed(workers, cycles, finals, arrivals, cohorts)
			got, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("seed %d: %d-worker rollup differs from 1-worker:\n%s\nvs\n%s",
					seed, workers, want, got)
			}
		}
	}
}

// TestMergeCommutativeAssociative checks the shard merge algebra
// directly: folding record subsets into separate aggregates and merging
// them in any order or grouping yields identical state.
func TestMergeCommutativeAssociative(t *testing.T) {
	cycles, finals, _, _ := genRecords(3, 2000)
	build := func(lo, hi int) *shard {
		sh := &shard{ring: newRing(2)}
		for i := lo; i < hi; i++ {
			sh.foldCycle(&cycles[i], 1.0, DefaultMaxWindows)
		}
		for i := range finals {
			if i%3 == lo%3 {
				sh.foldFinal(&finals[i])
			}
		}
		return sh
	}
	agg := func(sh *shard, cohort uint32) *cohortAgg { return sh.agg(cohort) }

	for cohort := uint32(0); cohort < 4; cohort++ {
		a := agg(build(0, 700), cohort)
		b := agg(build(700, 1400), cohort)
		c := agg(build(1400, 2000), cohort)

		// (a+b)+c
		x := newCohortAgg()
		x.merge(a)
		x.merge(b)
		x.merge(c)
		// c+(b+a)
		y := newCohortAgg()
		bc := newCohortAgg()
		bc.merge(b)
		bc.merge(a)
		y.merge(c)
		y.merge(bc)

		if !reflect.DeepEqual(x, y) {
			t.Fatalf("cohort %d: merge not commutative/associative:\n%+v\nvs\n%+v", cohort, x, y)
		}
	}
}

func TestDistMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		d1 := newCohortAgg().slack
		d2 := newCohortAgg().slack
		vals := make([]float64, 500)
		for i := range vals {
			vals[i] = Quantize((rng.Float64() - 0.5) * 250)
		}
		for i, v := range vals {
			if i%2 == 0 {
				d1.Observe(v)
			} else {
				d2.Observe(v)
			}
		}
		m1 := newCohortAgg().slack
		if err := m1.Merge(d1); err != nil {
			t.Fatal(err)
		}
		if err := m1.Merge(d2); err != nil {
			t.Fatal(err)
		}
		m2 := newCohortAgg().slack
		if err := m2.Merge(d2); err != nil {
			t.Fatal(err)
		}
		if err := m2.Merge(d1); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("Dist merge not commutative")
		}
		if m1.Sum() != m1.Sum() || m1.Total() != uint64(len(vals)) {
			t.Fatalf("Dist merge lost observations")
		}
	}
}

func TestBrownoutAnalyzer(t *testing.T) {
	p := New(Options{Workers: 1, WindowS: 1.0, BrownoutThreshold: 0.9})
	id := p.CohortID("sat")
	// Windows 0-4: measured meets target. Windows 5-7: measured at half
	// target (brownout). Windows 8-9: recovered.
	for w := 0; w < 10; w++ {
		for i := 0; i < 10; i++ {
			m := 2.0
			if w >= 5 && w < 8 {
				m = 1.0
			}
			p.ObserveCycle(0, &CycleRecord{
				Cohort: id, T: float64(w) + float64(i)*0.1,
				MeasuredGIPS: m, TargetGIPS: 2.0, PowerW: 1,
			})
		}
	}
	r := p.Rollup()
	if r.Saturation == nil {
		t.Fatal("no saturation detected")
	}
	s := r.Saturation
	if len(s.Brownouts) != 1 {
		t.Fatalf("got %d brownouts, want 1: %+v", len(s.Brownouts), s.Brownouts)
	}
	b := s.Brownouts[0]
	if b.OnsetS != 5 || b.WidthS != 3 {
		t.Fatalf("brownout onset %v width %v, want 5/3", b.OnsetS, b.WidthS)
	}
	if math.Abs(b.Depth-0.5) > 1e-9 {
		t.Fatalf("brownout depth %v, want 0.5", b.Depth)
	}
	if b.Cycles != 30 || s.BrownoutCycles != 30 {
		t.Fatalf("brownout cycles %d/%d, want 30", b.Cycles, s.BrownoutCycles)
	}
}

func TestInterferenceAnalyzer(t *testing.T) {
	p := New(Options{Workers: 2, WindowS: 1.0})
	id := p.CohortID("game")
	// Calm cycles hold slack at +10%; storm cycles collapse it to -20%.
	for i := 0; i < 200; i++ {
		storm := i%4 == 0
		m := 2.2
		if storm {
			m = 1.6
		}
		p.ObserveCycle(i%2, &CycleRecord{
			Cohort: id, T: float64(i) * 0.1,
			MeasuredGIPS: m, TargetGIPS: 2.0, PowerW: 1, Storm: storm,
		})
	}
	r := p.Rollup()
	if len(r.Interference) != 1 {
		t.Fatalf("got %d interference rows, want 1", len(r.Interference))
	}
	inf := r.Interference[0]
	if inf.Cohort != "game" || inf.StormCycles != 50 || inf.CalmCycles != 150 {
		t.Fatalf("unexpected interference row: %+v", inf)
	}
	if math.Abs(inf.CalmMeanSlackPct-10) > 1e-3 || math.Abs(inf.StormMeanSlackPct+20) > 1e-3 {
		t.Fatalf("slack means: %+v", inf)
	}
	if math.Abs(inf.SlackCollapsePct-30) > 1e-3 {
		t.Fatalf("collapse %v, want 30", inf.SlackCollapsePct)
	}
}

// TestStreamRoundTrip: offline aggregation of the captured NDJSON
// stream reproduces the live rollup (epochs aside).
func TestStreamRoundTrip(t *testing.T) {
	cycles, finals, arrivals, cohorts := genRecords(11, 3000)
	p := New(Options{Workers: 4, RingCap: 64})
	for _, c := range cohorts {
		p.CohortID(c)
	}
	ch, cancel := p.Subscribe(64)
	defer cancel()

	var batches []StreamBatch
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := range ch {
			batches = append(batches, b)
		}
	}()

	for i, ar := range arrivals {
		p.ObserveArrival(i%4, p.CohortID(ar.Cohort), ar.T)
	}
	for i := range cycles {
		p.ObserveCycle(i%4, &cycles[i])
		if i%500 == 0 {
			p.Advance()
		}
	}
	for i := range finals {
		p.ObserveFinal(i%4, &finals[i])
	}
	live := p.Rollup()
	cancel()
	wg.Wait()
	if p.Dropped() != 0 {
		t.Fatalf("stream dropped %d batches with an unbounded reader", p.Dropped())
	}

	// Round-trip through NDJSON bytes.
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, batches); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline := Aggregate(decoded, Options{})

	live.Epoch, offline.Epoch = 0, 0
	lj, _ := json.Marshal(live)
	oj, _ := json.Marshal(offline)
	if !bytes.Equal(lj, oj) {
		t.Fatalf("offline rollup differs from live:\n%s\nvs\n%s", lj, oj)
	}
}

// TestConcurrentScrape drives producers, rollups and snapshot reads
// concurrently; run under -race this is the scrape-under-load property.
func TestConcurrentScrape(t *testing.T) {
	const workers = 8
	p := New(Options{Workers: workers, RingCap: 128})
	ids := []uint32{p.CohortID("a"), p.CohortID("b")}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				p.ObserveCycle(w, &CycleRecord{
					Session: uint64(w), Cohort: ids[i%2], T: float64(i) * 0.01,
					MeasuredGIPS: 2, TargetGIPS: 2, PowerW: 1,
				})
			}
			p.ObserveFinal(w, &FinalRecord{Session: uint64(w), Cohort: ids[0], HasSummary: true, DurationS: 1, GIPS: 2})
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				p.Rollup()
				p.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	r := p.Rollup()
	if r.Cycles != workers*5000 {
		t.Fatalf("lost cycles: %d, want %d", r.Cycles, workers*5000)
	}
	if r.Totals.Finished != workers {
		t.Fatalf("lost finals: %d, want %d", r.Totals.Finished, workers)
	}
}
