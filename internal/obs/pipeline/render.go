package pipeline

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a rollup as a fixed-width text report: the
// population totals, a per-cohort distribution table, and the analyzer
// sections. Shared by `aspeo-trace rollup` (offline NDJSON replay) and
// the fleet's shutdown report.
func WriteTable(w io.Writer, r *Rollup) {
	if r == nil {
		fmt.Fprintln(w, "telemetry: no rollup")
		return
	}
	fmt.Fprintf(w, "telemetry rollup (epoch %d, window %gs)\n", r.Epoch, r.WindowS)
	fmt.Fprintf(w, "  sessions %d  finished %d  cycles %d\n",
		r.Sessions, r.Totals.Finished, r.Cycles)
	if r.Totals.Finished > 0 {
		fmt.Fprintf(w, "  sim %.1fs  energy %.1fJ  mean gips %.3f  mean |err| %.3f\n",
			r.Totals.SimSeconds, r.Totals.EnergyJ, r.Totals.MeanGIPS, r.Totals.MeanAbsErrGIPS)
	}

	if len(r.Cohorts) > 0 {
		fmt.Fprintf(w, "\n  %-16s %8s %8s %10s %9s %9s %9s %9s %9s\n",
			"cohort", "sessions", "finished", "cycles", "gips", "power W", "slack%", "p50", "p95")
		for i := range r.Cohorts {
			c := &r.Cohorts[i]
			fmt.Fprintf(w, "  %-16s %8d %8d %10d %9.3f %9.3f %9.2f %9.1f %9.1f\n",
				clip(c.Name, 16), c.Sessions, c.Finished, c.Cycles,
				c.MeanGIPS, c.MeanPowerW, c.MeanSlackPct, c.P50SlackPct, c.P95SlackPct)
		}
	}

	if r.Slack.Total() > 0 {
		fmt.Fprintf(w, "\n  population slack%% distribution (%d obs)\n", r.Slack.Total())
		writeDist(w, r.Slack)
	}

	if s := r.Saturation; s != nil {
		fmt.Fprintf(w, "\n  saturation: %d brownout(s), worst depth %.2f, %d cycles in brownout (threshold %.2f)\n",
			len(s.Brownouts), s.WorstDepth, s.BrownoutCycles, s.Threshold)
		for _, b := range s.Brownouts {
			fmt.Fprintf(w, "    onset %7.1fs  width %6.1fs  depth %.2f  cycles %d\n",
				b.OnsetS, b.WidthS, b.Depth, b.Cycles)
		}
	}

	if len(r.Interference) > 0 {
		fmt.Fprintf(w, "\n  interference (storm vs calm slack)\n")
		fmt.Fprintf(w, "  %-16s %10s %10s %9s %9s %9s %7s\n",
			"cohort", "storm cyc", "calm cyc", "storm", "calm", "collapse", "corr")
		for _, inf := range r.Interference {
			fmt.Fprintf(w, "  %-16s %10d %10d %9.2f %9.2f %9.2f %7.3f\n",
				clip(inf.Cohort, 16), inf.StormCycles, inf.CalmCycles,
				inf.StormMeanSlackPct, inf.CalmMeanSlackPct, inf.SlackCollapsePct,
				inf.ArrivalSlackCorr)
		}
	}
}

// writeDist draws one distribution as per-bucket bars.
func writeDist(w io.Writer, s DistSnapshot) {
	total := s.Total()
	if total == 0 {
		return
	}
	const width = 40
	var max uint64
	for _, c := range s.Counts {
		if c > max {
			max = c
		}
	}
	label := func(i int) string {
		if i < len(s.Bounds) {
			return fmt.Sprintf("<= %g", s.Bounds[i])
		}
		return "+Inf"
	}
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		bar := int(float64(c) / float64(max) * width)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "    %-10s %8d |%s\n", label(i), c, strings.Repeat("#", bar))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
