package pipeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// StreamBatch is one epoch's drained records, the NDJSON telemetry
// stream's line unit: everything an offline consumer needs to rebuild
// the rollup through the same fold code (aspeo-trace rollup does
// exactly that). Cohorts travel by name — the intern table is
// process-local.
type StreamBatch struct {
	Epoch    uint64          `json:"epoch"`
	Arrivals []StreamArrival `json:"arrivals,omitempty"`
	Cycles   []StreamCycle   `json:"cycles,omitempty"`
	Finals   []StreamFinal   `json:"finals,omitempty"`
}

func (b *StreamBatch) empty() bool {
	return len(b.Arrivals) == 0 && len(b.Cycles) == 0 && len(b.Finals) == 0
}

// StreamArrival is one session arrival.
type StreamArrival struct {
	Cohort string  `json:"cohort"`
	T      float64 `json:"t_s"`
}

// StreamCycle is one cycle record with the cohort resolved to its name.
type StreamCycle struct {
	Session      uint64       `json:"session"`
	Cohort       string       `json:"cohort"`
	T            float64      `json:"t_s"`
	MeasuredGIPS float64      `json:"measured_gips"`
	TargetGIPS   float64      `json:"target_gips,omitempty"`
	PowerW       float64      `json:"power_w"`
	Storm        bool         `json:"storm,omitempty"`
	Health       *HealthDelta `json:"health,omitempty"`
}

// StreamFinal is one terminal-session record with the cohort resolved.
type StreamFinal struct {
	Session        uint64       `json:"session"`
	Cohort         string       `json:"cohort"`
	HasSummary     bool         `json:"has_summary"`
	Controller     bool         `json:"controller,omitempty"`
	DurationS      float64      `json:"duration_s,omitempty"`
	EnergyJ        float64      `json:"energy_j,omitempty"`
	DroppedInstr   float64      `json:"dropped_instr,omitempty"`
	GIPS           float64      `json:"gips,omitempty"`
	MeanAbsErrGIPS float64      `json:"mean_abs_err_gips,omitempty"`
	Health         *HealthDelta `json:"health,omitempty"`
	Relinquished   bool         `json:"relinquished,omitempty"`
	LastTransition string       `json:"last_transition,omitempty"`
}

// append moves a shard's pending records into the batch, resolving
// cohort names. Callers hold the shard's mutex.
func (b *StreamBatch) append(p *Pipeline, sh *shard) {
	names := p.cohortNames()
	name := func(id uint32) string {
		if int(id) < len(names) {
			return names[id]
		}
		return fmt.Sprintf("cohort-%d", id)
	}
	for _, ar := range sh.pendArrivals {
		b.Arrivals = append(b.Arrivals, StreamArrival{Cohort: name(ar.cohort), T: ar.t})
	}
	for i := range sh.pendCycles {
		rec := &sh.pendCycles[i]
		sc := StreamCycle{
			Session: rec.Session, Cohort: name(rec.Cohort), T: rec.T,
			MeasuredGIPS: rec.MeasuredGIPS, TargetGIPS: rec.TargetGIPS,
			PowerW: rec.PowerW, Storm: rec.Storm,
		}
		if !rec.Health.Zero() {
			h := rec.Health
			sc.Health = &h
		}
		b.Cycles = append(b.Cycles, sc)
	}
	for i := range sh.pendFinals {
		fin := &sh.pendFinals[i]
		sf := StreamFinal{
			Session: fin.Session, Cohort: name(fin.Cohort),
			HasSummary: fin.HasSummary, Controller: fin.Controller,
			DurationS: fin.DurationS, EnergyJ: fin.EnergyJ,
			DroppedInstr: fin.DroppedInstr, GIPS: fin.GIPS,
			MeanAbsErrGIPS: fin.MeanAbsErrGIPS,
			Relinquished:   fin.Relinquished, LastTransition: fin.LastTransition,
		}
		if !fin.Health.Zero() {
			h := fin.Health
			sf.Health = &h
		}
		b.Finals = append(b.Finals, sf)
	}
}

// WriteNDJSON writes batches as NDJSON, one batch per line.
func WriteNDJSON(w io.Writer, batches []StreamBatch) error {
	enc := json.NewEncoder(w)
	for i := range batches {
		if err := enc.Encode(&batches[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON reads a captured batch stream (blank lines skipped).
func ReadNDJSON(r io.Reader) ([]StreamBatch, error) {
	var out []StreamBatch
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var b StreamBatch
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("pipeline: stream line %d: %w", line, err)
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Aggregate replays a captured batch stream through a fresh one-worker
// pipeline and returns its rollup — the offline counterpart of the live
// path, sharing the same fold and analyzer code, so an offline rollup
// of a complete stream matches the live rollup of the same records.
func Aggregate(batches []StreamBatch, o Options) *Rollup {
	o.Workers = 1
	p := New(o)
	for bi := range batches {
		b := &batches[bi]
		for _, ar := range b.Arrivals {
			p.ObserveArrival(0, p.CohortID(ar.Cohort), ar.T)
		}
		for i := range b.Cycles {
			c := &b.Cycles[i]
			rec := CycleRecord{
				Session: c.Session, Cohort: p.CohortID(c.Cohort), T: c.T,
				MeasuredGIPS: c.MeasuredGIPS, TargetGIPS: c.TargetGIPS,
				PowerW: c.PowerW, Storm: c.Storm,
			}
			if c.Health != nil {
				rec.Health = *c.Health
			}
			p.ObserveCycle(0, &rec)
		}
		for i := range b.Finals {
			f := &b.Finals[i]
			fin := FinalRecord{
				Session: f.Session, Cohort: p.CohortID(f.Cohort),
				HasSummary: f.HasSummary, Controller: f.Controller,
				DurationS: f.DurationS, EnergyJ: f.EnergyJ,
				DroppedInstr: f.DroppedInstr, GIPS: f.GIPS,
				MeanAbsErrGIPS: f.MeanAbsErrGIPS,
				Relinquished:   f.Relinquished, LastTransition: f.LastTransition,
			}
			if f.Health != nil {
				fin.Health = *f.Health
			}
			p.ObserveFinal(0, &fin)
		}
	}
	return p.Rollup()
}
