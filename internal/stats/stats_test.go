package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); got != c.want {
				t.Fatalf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if want := 2.5; got != want {
		t.Fatalf("WeightedMean = %v, want %v", got, want)
	}
	if got := WeightedMean([]float64{1, 2}, []float64{0, 0}); got != 0 {
		t.Fatalf("WeightedMean with zero weight = %v, want 0", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance singleton = %v, want 0", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Min(xs); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestPctDeltaAndSavings(t *testing.T) {
	if got := PctDelta(110, 100); got != 10 {
		t.Fatalf("PctDelta = %v", got)
	}
	if got := PctDelta(5, 0); got != 0 {
		t.Fatalf("PctDelta zero ref = %v", got)
	}
	if got := Savings(75, 100); got != 25 {
		t.Fatalf("Savings = %v", got)
	}
	if got := Savings(5, 0); got != 0 {
		t.Fatalf("Savings zero ref = %v", got)
	}
}

func TestLerpClamp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Fatalf("Lerp = %v", got)
	}
	if got := Clamp(5, 0, 3); got != 3 {
		t.Fatalf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Fatalf("Clamp low = %v", got)
	}
	if got := Clamp(1, 0, 3); got != 1 {
		t.Fatalf("Clamp mid = %v", got)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Lerp endpoints reproduce the inputs.
func TestLerpEndpointsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true // b-a overflows; Lerp documents finite inputs
		}
		return Lerp(a, b, 0) == a && Lerp(a, b, 1) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Fatal("expected approx equal for tiny diff")
	}
	if ApproxEqual(1.0, 2.0, 1e-9) {
		t.Fatal("expected not equal")
	}
	if !ApproxEqual(1e15, 1e15+1, 0) {
		t.Fatal("expected relative tolerance to kick in")
	}
}
