// Package stats provides the small set of statistics helpers used by the
// profiler, the experiment harness and the report generators: means,
// standard deviations, percentage deltas and weighted aggregation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). It returns 0 when the total
// weight is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sw, swx float64
	for i, x := range xs {
		sw += ws[i]
		swx += ws[i] * x
	}
	if sw == 0 {
		return 0
	}
	return swx / sw
}

// Variance returns the population variance of xs (not Bessel-corrected),
// or 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, interpolating for even-length samples.
// It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// PctDelta returns the relative difference of got vs ref in percent:
// 100*(got-ref)/ref. A zero reference yields 0 to keep report tables sane.
func PctDelta(got, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (got - ref) / ref
}

// Savings returns the percentage by which got improves on (is lower than)
// ref: 100*(ref-got)/ref. Positive means got consumed less.
func Savings(got, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (ref - got) / ref
}

// Lerp linearly interpolates between a and b: Lerp(a,b,0)=a, Lerp(a,b,1)=b.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b differ by no more than tol in
// absolute terms or 1e-9 relative terms, whichever is larger.
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
