package workload

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/perfmodel"
)

func testTraits() perfmodel.Traits {
	return perfmodel.Traits{CPI: 1, BPI: 0.1, Par: 1}
}

// pacedSpec returns a one-phase paced spec with the given jitter.
func pacedSpec(sigma float64) *Spec {
	return &Spec{
		Name: "span-paced",
		Phases: []Phase{{
			Name:         "p",
			Kind:         Paced,
			Traits:       testTraits(),
			Duration:     5 * time.Second,
			DemandGIPS:   0.075,
			DemandJitter: sigma,
			JitterPeriod: 60 * time.Millisecond,
		}},
		Loop:   true,
		RunFor: 100 * time.Second,
	}
}

func batchSpec(window time.Duration) *Spec {
	return &Spec{
		Name: "span-batch",
		Phases: []Phase{{
			Name:        "b",
			Kind:        Batch,
			Traits:      testTraits(),
			Duration:    window,
			InstrBudget: 4.5e8,
		}},
		Loop:   true,
		RunFor: 100 * time.Second,
	}
}

// taskStateEqual compares every observable field of two tasks, optionally
// ignoring the jitter resample bookkeeping (which SpanBound is allowed to
// leave stale when σ = 0).
func taskStateEqual(t *testing.T, a, b *Task, ignoreJitterClock bool) {
	t.Helper()
	type cmp struct {
		name string
		x, y float64
	}
	checks := []cmp{
		{"phaseExec", a.phaseExec, b.phaseExec},
		{"totalExec", a.totalExec, b.totalExec},
		{"backlog", a.backlog, b.backlog},
		{"dropped", a.dropped, b.dropped},
		{"jitterMul", a.jitterMul, b.jitterMul},
	}
	for _, c := range checks {
		if math.Float64bits(c.x) != math.Float64bits(c.y) {
			t.Fatalf("%s mismatch: %v (%#x) vs %v (%#x)", c.name, c.x, math.Float64bits(c.x), c.y, math.Float64bits(c.y))
		}
	}
	if a.now != b.now || a.phaseElapsed != b.phaseElapsed || a.phaseIdx != b.phaseIdx ||
		a.loopsDone != b.loopsDone || a.done != b.done {
		t.Fatalf("clock/phase state mismatch: %+v vs %+v", a, b)
	}
	if !ignoreJitterClock && a.jitterUntil != b.jitterUntil {
		t.Fatalf("jitterUntil mismatch: %v vs %v", a.jitterUntil, b.jitterUntil)
	}
}

// TestAdvanceSpanBitIdentity drives AdvanceSpan against AdvanceN on the
// telescoping regimes (batch, windowed batch, served paced) and the
// fallback regime (starved paced with a draining backlog).
func TestAdvanceSpanBitIdentity(t *testing.T) {
	dt := time.Millisecond
	cases := []struct {
		name string
		spec *Spec
		exec func(Demand) float64 // per-step executed instructions
		n    int
	}{
		{"batch-starved", batchSpec(0), func(Demand) float64 { return 7.5e4 }, 1000},
		{"windowed-batch-idle", batchSpec(4 * time.Second), func(Demand) float64 { return 0 }, 3999},
		{"paced-served", pacedSpec(0), func(d Demand) float64 { return d.WantedInstr }, 4999},
		{"paced-starved", pacedSpec(0), func(Demand) float64 { return 1e4 }, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := NewTask(tc.spec, 42)
			fast := NewTask(tc.spec, 42)
			// Prime both with one slow step so jitter state initializes
			// identically, mirroring how the engine captures a plan.
			e0 := tc.exec(ref.Demand(dt))
			_ = fast.Demand(dt)
			ref.Advance(e0, dt)
			fast.Advance(e0, dt)
			ref.AdvanceN(e0, dt, tc.n)
			fast.AdvanceSpan(e0, dt, tc.n)
			taskStateEqual(t, ref, fast, false)
		})
	}
}

// TestSpanBoundRelaxesZeroJitter: with σ = 0 a served paced phase's span
// bound must reach the phase boundary instead of stopping at the jitter
// resample, and replaying that whole span must leave every observable
// identical to per-step execution (the jitter clock alone may go stale).
func TestSpanBoundRelaxesZeroJitter(t *testing.T) {
	dt := time.Millisecond
	spec := pacedSpec(0)
	mk := func() (*Task, StepPlan, float64) {
		tk := NewTask(spec, 7)
		want := tk.Demand(dt).WantedInstr
		tk.Advance(want, dt)
		return tk, StepPlan{Exec: want, MaxInstr: 1e9, Served: true, PhaseIdx: 0}, want
	}
	ref, sp, want := mk()
	if fb := ref.FuseBound(sp, dt); fb != 60-1 {
		t.Fatalf("FuseBound = %d, want 59 (capped at 60 ms jitter period)", fb)
	}
	sb := ref.SpanBound(sp, dt)
	if wantBound := ceilSteps(spec.Phases[0].Duration-ref.phaseElapsed, dt); sb != wantBound {
		t.Fatalf("SpanBound = %d, want %d (phase boundary)", sb, wantBound)
	}
	// Replay the full relaxed span in one call vs. stepwise.
	fast, _, _ := mk()
	ref.AdvanceN(want, dt, sb)
	fast.AdvanceSpan(want, dt, sb)
	taskStateEqual(t, ref, fast, true)
	if ref.phaseElapsed != fast.phaseElapsed {
		t.Fatalf("span must cross the phase boundary identically")
	}

	// σ > 0 must keep the jitter cap even under SpanBound.
	jt := NewTask(pacedSpec(1.0), 7)
	w := jt.Demand(dt).WantedInstr
	jt.Advance(w, dt)
	jsp := StepPlan{Exec: w, MaxInstr: 1e9, Served: true, PhaseIdx: 0}
	if got, want := jt.SpanBound(jsp, dt), jt.FuseBound(jsp, dt); got != want {
		t.Fatalf("σ>0 SpanBound = %d, want FuseBound = %d", got, want)
	}

	// A stale non-1 multiplier (entering a σ=0 phase mid-jitter-window)
	// must not be granted the relaxation.
	st := NewTask(spec, 7)
	_ = st.Demand(dt)
	st.Advance(0, dt)
	st.jitterMul = 1.37
	ssp := StepPlan{Exec: 0, MaxInstr: 1e9, Served: true, PhaseIdx: 0}
	if got, want := st.SpanBound(ssp, dt), st.FuseBound(ssp, dt); got != want {
		t.Fatalf("stale-multiplier SpanBound = %d, want FuseBound = %d", got, want)
	}
}
