package workload

import (
	"fmt"
	"time"

	"aspeo/internal/perfmodel"
)

// BGLoad selects the background environment of a run (paper §III-A and
// §V-C): what else is alive on the phone while the foreground app runs.
type BGLoad int

// The three load conditions of Table IV.
const (
	// NoLoad: only the controlled application runs (NL).
	NoLoad BGLoad = iota
	// BaselineLoad: WiFi on, e-mail sync enabled, Spotify playing in
	// the background (BL) — the profiling environment.
	BaselineLoad
	// HeavierLoad: BL plus Gallery, eBook reader, Chrome, Facebook,
	// e-mail and MX Player minimized (HL).
	HeavierLoad
)

// String returns the paper's abbreviation.
func (l BGLoad) String() string {
	switch l {
	case NoLoad:
		return "NL"
	case BaselineLoad:
		return "BL"
	case HeavierLoad:
		return "HL"
	}
	return fmt.Sprintf("BGLoad(%d)", int(l))
}

// ParseBGLoad converts "NL"/"BL"/"HL" to a BGLoad.
func ParseBGLoad(s string) (BGLoad, error) {
	switch s {
	case "NL", "nl":
		return NoLoad, nil
	case "BL", "bl":
		return BaselineLoad, nil
	case "HL", "hl":
		return HeavierLoad, nil
	}
	return 0, fmt.Errorf("workload: unknown load %q (want NL, BL or HL)", s)
}

// FreeMemMB returns the free-memory figure the paper reports for each
// load (§V-C): 1 GB under NL, 500 MB under BL, 134 MB under HL.
func (l BGLoad) FreeMemMB() int {
	switch l {
	case NoLoad:
		return 1000
	case BaselineLoad:
		return 500
	case HeavierLoad:
		return 134
	}
	return 0
}

// LoadAvg returns the /proc/loadavg figure for the condition (§V-C
// reports 6.7, 6.3, 6.6 — the CPU loads are deliberately similar).
func (l BGLoad) LoadAvg() float64 {
	switch l {
	case NoLoad:
		return 6.7
	case BaselineLoad:
		return 6.3
	case HeavierLoad:
		return 6.6
	}
	return 0
}

// BPIPressure returns the memory-traffic multiplier applied to every
// task: under HL the 134 MB of free memory forces page reclaim and cache
// thrash, inflating bytes per instruction.
func (l BGLoad) BPIPressure() float64 {
	switch l {
	case HeavierLoad:
		return 1.15
	default:
		return 1.0
	}
}

// bgSpotify is Spotify minimized: decode bursts without the UI.
func bgSpotify() *Spec {
	s := &Spec{
		Name: "bg-spotify",
		Phases: []Phase{
			{
				Name: "bg-stream", Kind: Paced,
				Traits:   perfmodel.Traits{CPI: 2.2, BPI: 1.2, Par: 1.0, Overlap: 0.05},
				Duration: 19 * time.Second, DemandGIPS: 0.045,
				DemandJitter: 1.1, AuxBaseW: 0.10,
			},
			{
				Name: "bg-song-change", Kind: Batch,
				Traits:      perfmodel.Traits{CPI: 2.0, BPI: 1.5, Par: 1.0, Overlap: 0.05},
				InstrBudget: 0.30e9, Duration: 3 * time.Second,
				NetBps: 1.2e6,
			},
		},
		Loop: true, RunFor: time.Hour, Background: true,
	}
	return s
}

// bgPeriodic builds a background service that sleeps and periodically
// bursts (mail sync, feed refresh, thumbnail scans).
func bgPeriodic(name string, idle, burst time.Duration, burstGIPS, netBps float64) *Spec {
	return &Spec{
		Name: name,
		Phases: []Phase{
			{
				Name: name + "-idle", Kind: Paced,
				Traits:   perfmodel.Traits{CPI: 2.0, BPI: 1.0, Par: 1.0, Overlap: 0.05},
				Duration: idle, DemandGIPS: 0.004, DemandJitter: 0.5,
			},
			{
				// Sync work is a fixed batch: at low configurations it
				// simply takes longer, it is never dropped.
				Name: name + "-burst", Kind: Batch,
				Traits:      perfmodel.Traits{CPI: 2.1, BPI: 1.6, Par: 1.2, Overlap: 0.05},
				InstrBudget: burstGIPS * burst.Seconds() * 1e9,
				Duration:    3 * burst,
				NetBps:      netBps,
			},
		},
		Loop: true, RunFor: time.Hour, Background: true,
	}
}

// Background returns the background task specs for a load condition. The
// foreground app's name is needed so that running Spotify in the
// foreground does not duplicate the background Spotify instance.
func Background(load BGLoad, foreground string) []*Spec {
	var specs []*Spec
	switch load {
	case NoLoad:
		return nil
	case BaselineLoad, HeavierLoad:
		if foreground != NameSpotify {
			specs = append(specs, bgSpotify())
		}
		specs = append(specs, bgPeriodic("email-sync", 28*time.Second, 2*time.Second, 0.35, 2e6))
	}
	if load == HeavierLoad {
		// The heavier load's minimized apps are mostly in the sleep
		// state (§V-C reports nearly identical loadavg across NL/BL/HL:
		// 6.7/6.3/6.6); what changes most is memory pressure (134 MB
		// free), modelled by BPIPressure. Their periodic wakeups add
		// only modest CPU work but real network and traffic activity.
		specs = append(specs,
			bgPeriodic("gallery-scan", 40*time.Second, 2*time.Second, 0.10, 0),
			bgPeriodic("chrome-refresh", 25*time.Second, 2*time.Second, 0.12, 1.5e6),
			bgPeriodic("facebook-feed", 18*time.Second, 2*time.Second, 0.12, 1.8e6),
			bgPeriodic("mxplayer-paused", 60*time.Second, time.Second, 0.05, 0),
		)
	}
	return specs
}
