package workload

import (
	"fmt"
	"time"
)

// TaskState is a checkpointable snapshot of a running Task. The rng is
// captured as its (seed, draws) stream position — see internal/detrand —
// so jitter multipliers and touch-event Poisson draws continue on the
// identical stream after a restore.
type TaskState struct {
	Spec         string        `json:"spec"`
	RNGSeed      int64         `json:"rng_seed"`
	RNGDraws     uint64        `json:"rng_draws"`
	Now          time.Duration `json:"now_ns"`
	PhaseIdx     int           `json:"phase_idx"`
	PhaseElapsed time.Duration `json:"phase_elapsed_ns"`
	PhaseExec    float64       `json:"phase_exec"`
	TotalExec    float64       `json:"total_exec"`
	LoopsDone    int           `json:"loops_done"`
	Done         bool          `json:"done"`
	JitterMul    float64       `json:"jitter_mul"`
	JitterUntil  time.Duration `json:"jitter_until_ns"`
	Backlog      float64       `json:"backlog"`
	Dropped      float64       `json:"dropped"`
}

// State captures the task for a checkpoint.
func (t *Task) State() TaskState {
	seed, draws := t.rngSrc.State()
	return TaskState{
		Spec:         t.Spec.Name,
		RNGSeed:      seed,
		RNGDraws:     draws,
		Now:          t.now,
		PhaseIdx:     t.phaseIdx,
		PhaseElapsed: t.phaseElapsed,
		PhaseExec:    t.phaseExec,
		TotalExec:    t.totalExec,
		LoopsDone:    t.loopsDone,
		Done:         t.done,
		JitterMul:    t.jitterMul,
		JitterUntil:  t.jitterUntil,
		Backlog:      t.backlog,
		Dropped:      t.dropped,
	}
}

// Restore overwrites the task with a previously captured State. The
// task must have been built from the same Spec the state was captured
// from.
func (t *Task) Restore(s TaskState) error {
	if s.Spec != t.Spec.Name {
		return fmt.Errorf("workload: restoring %q state into task for %q", s.Spec, t.Spec.Name)
	}
	if s.PhaseIdx < 0 || s.PhaseIdx >= len(t.Spec.Phases) {
		return fmt.Errorf("workload %s: restore phase index %d out of %d", t.Spec.Name, s.PhaseIdx, len(t.Spec.Phases))
	}
	if err := t.rngSrc.Restore(s.RNGSeed, s.RNGDraws); err != nil {
		return fmt.Errorf("workload %s: %w", t.Spec.Name, err)
	}
	t.now = s.Now
	t.phaseIdx = s.PhaseIdx
	t.phaseElapsed = s.PhaseElapsed
	t.phaseExec = s.PhaseExec
	t.totalExec = s.TotalExec
	t.loopsDone = s.LoopsDone
	t.done = s.Done
	t.jitterMul = s.JitterMul
	t.jitterUntil = s.JitterUntil
	t.backlog = s.Backlog
	t.dropped = s.Dropped
	return nil
}
