package workload

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/perfmodel"
	"aspeo/internal/soc"
)

var n6 = soc.Nexus6()

func TestAllSpecsValidate(t *testing.T) {
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestEvaluatedOrderMatchesTableIII(t *testing.T) {
	got := Evaluated()
	want := []string{NameVidCon, NameMobileBench, NameAngryBirds, NameWeChat, NameMXPlayer, NameSpotify}
	if len(got) != len(want) {
		t.Fatalf("Evaluated returned %d specs", len(got))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Errorf("Evaluated[%d] = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestPaperBaseSpeedAnchors(t *testing.T) {
	// Paper §III-B3: at (300 MHz, 762 MBps) AngryBirds runs 0.129 GIPS,
	// VidCon 0.471 GIPS.
	cases := []struct {
		spec *Spec
		want float64
		tol  float64
	}{
		{AngryBirds(), 0.129, 0.015},
		{VidCon(), 0.471, 0.05},
	}
	for _, c := range cases {
		tr := c.spec.Phases[0].Traits
		got := tr.CapacityAt(n6, n6.MinConfig()) / 1e9
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s base speed = %.4f GIPS, want %.3f ± %.3f",
				c.spec.Name, got, c.want, c.tol)
		}
	}
}

func TestAngryBirdsSpeedupAnchor(t *testing.T) {
	// Paper Table I row 31: speedup 1.837 at (0.8832 GHz, 762 MBps).
	tr := AngryBirds().Phases[0].Traits
	base := tr.CapacityAt(n6, soc.Config{FreqIdx: 0, BWIdx: 0})
	f5 := tr.CapacityAt(n6, soc.Config{FreqIdx: 4, BWIdx: 0})
	if got := f5 / base; math.Abs(got-1.837) > 0.15 {
		t.Errorf("AngryBirds speedup at (f5,bw1) = %.3f, want 1.837 ± 0.15", got)
	}
}

func TestAngryBirdsSaturatesBeyondFreq5(t *testing.T) {
	// Paper §V-A: AngryBirds GIPS does not improve beyond frequency 5
	// (at low bandwidth) while power keeps rising.
	tr := AngryBirds().Phases[0].Traits
	c5 := tr.CapacityAt(n6, soc.Config{FreqIdx: 4, BWIdx: 0})
	c10 := tr.CapacityAt(n6, soc.Config{FreqIdx: 9, BWIdx: 0})
	if gain := c10/c5 - 1; gain > 0.10 {
		t.Errorf("AngryBirds gained %.1f%% from f5→f10 at bw1; paper says <5%%", 100*gain)
	}
}

func TestProfileRestrictionsMatchPaper(t *testing.T) {
	cases := []struct {
		spec    *Spec
		firstF1 int // 1-based first allowed frequency
		lastF1  int
	}{
		{VidCon(), 7, 17},      // 7–18 alternate → 7,9,...,17
		{MobileBench(), 7, 17}, // same restriction
		{AngryBirds(), 1, 9},
		{WeChat(), 3, 17},
		{MXPlayer(), 5, 17},
		{Spotify(), 1, 5},
	}
	for _, c := range cases {
		idxs := c.spec.ProfileFreqIdxs
		if len(idxs) == 0 {
			t.Fatalf("%s: no profile freqs", c.spec.Name)
		}
		if got := idxs[0] + 1; got != c.firstF1 {
			t.Errorf("%s first profiled freq = %d, want %d", c.spec.Name, got, c.firstF1)
		}
		if got := idxs[len(idxs)-1] + 1; got != c.lastF1 {
			t.Errorf("%s last profiled freq = %d, want %d", c.spec.Name, got, c.lastF1)
		}
		if len(idxs) > 9 {
			t.Errorf("%s profiles %d freqs; paper caps at 9", c.spec.Name, len(idxs))
		}
		for i := 1; i < len(idxs); i++ {
			if idxs[i] != idxs[i-1]+2 {
				t.Errorf("%s profile freqs not alternate: %v", c.spec.Name, idxs)
			}
		}
	}
}

func TestDeadlineCriticalFlags(t *testing.T) {
	want := map[string]bool{
		NameVidCon: true, NameMobileBench: true, NameMXPlayer: true,
		NameAngryBirds: false, NameWeChat: false, NameSpotify: false,
	}
	for _, s := range Evaluated() {
		if s.DeadlineCritical != want[s.Name] {
			t.Errorf("%s DeadlineCritical = %v", s.Name, s.DeadlineCritical)
		}
	}
}

func TestRunLengthsMatchPaper(t *testing.T) {
	if got := AngryBirds().RunFor; got != 200*time.Second {
		t.Errorf("AngryBirds RunFor = %v, want 200s", got)
	}
	if got := WeChat().RunFor; got != 100*time.Second {
		t.Errorf("WeChat RunFor = %v, want 100s", got)
	}
	if got := MXPlayer().RunFor; got != 137*time.Second {
		t.Errorf("MXPlayer RunFor = %v, want 137s", got)
	}
	if got := Spotify().RunFor; got != 100*time.Second {
		t.Errorf("Spotify RunFor = %v, want 100s", got)
	}
}

func TestBatchTaskLifecycle(t *testing.T) {
	spec := &Spec{
		Name: "batch1",
		Phases: []Phase{{
			Name: "work", Kind: Batch,
			Traits:      perfmodel.Traits{CPI: 1, BPI: 0.1, Par: 1},
			InstrBudget: 1000,
		}},
		RunFor: time.Minute,
	}
	task := NewTask(spec, 1)
	d := task.Demand(time.Millisecond)
	if d.WantedInstr != 1000 {
		t.Fatalf("initial batch demand = %v", d.WantedInstr)
	}
	task.Advance(600, time.Millisecond)
	if task.Done() {
		t.Fatal("task done too early")
	}
	if d := task.Demand(time.Millisecond); d.WantedInstr != 400 {
		t.Fatalf("remaining = %v, want 400", d.WantedInstr)
	}
	task.Advance(400, time.Millisecond)
	if !task.Done() {
		t.Fatal("task should be done")
	}
	if got := task.TotalExecuted(); got != 1000 {
		t.Fatalf("TotalExecuted = %v", got)
	}
	// A done task demands nothing and generates no touches.
	if d := task.Demand(time.Millisecond); d.WantedInstr != 0 {
		t.Fatalf("done task demand = %v", d.WantedInstr)
	}
	if task.Touches(time.Second) != 0 {
		t.Fatal("done task should not touch")
	}
}

func TestLoopCountStopsLoops(t *testing.T) {
	spec := &Spec{
		Name: "loops",
		Phases: []Phase{{
			Name: "work", Kind: Batch,
			Traits:      perfmodel.Traits{CPI: 1, BPI: 0.1, Par: 1},
			InstrBudget: 100,
		}},
		Loop: true, LoopCount: 3, RunFor: time.Minute,
	}
	task := NewTask(spec, 1)
	for i := 0; i < 3; i++ {
		if task.Done() {
			t.Fatalf("done after %d loops, want 3", i)
		}
		task.Advance(100, time.Millisecond)
	}
	if !task.Done() {
		t.Fatal("task should stop after LoopCount iterations")
	}
}

func TestPacedDemandAveragesToTarget(t *testing.T) {
	spec := &Spec{
		Name: "paced",
		Phases: []Phase{{
			Name: "p", Kind: Paced,
			Traits:   perfmodel.Traits{CPI: 1, BPI: 0.1, Par: 1},
			Duration: time.Hour, DemandGIPS: 0.5, DemandJitter: 1.0,
		}},
		Loop: true, RunFor: time.Hour,
	}
	task := NewTask(spec, 42)
	dt := time.Millisecond
	total := 0.0
	steps := 120000 // 120 s
	for i := 0; i < steps; i++ {
		d := task.Demand(dt)
		// Execute everything wanted: no backlog accumulates.
		task.Advance(d.WantedInstr, dt)
		total += d.WantedInstr
	}
	gotGIPS := total / (float64(steps) * dt.Seconds()) / 1e9
	if math.Abs(gotGIPS-0.5) > 0.05 {
		t.Fatalf("average demand = %.3f GIPS, want 0.5 (lognormal jitter must be mean-one)", gotGIPS)
	}
}

func TestBacklogCarriesUnmetDemand(t *testing.T) {
	spec := &Spec{
		Name: "paced",
		Phases: []Phase{{
			Name: "p", Kind: Paced,
			Traits:   perfmodel.Traits{CPI: 1, BPI: 0.1, Par: 1},
			Duration: time.Hour, DemandGIPS: 1.0,
		}},
		Loop: true, RunFor: time.Hour,
	}
	task := NewTask(spec, 1)
	dt := 100 * time.Millisecond
	d1 := task.Demand(dt)
	task.Advance(0, dt) // starved
	d2 := task.Demand(dt)
	if d2.WantedInstr <= d1.WantedInstr {
		t.Fatalf("backlog not carried: %v then %v", d1.WantedInstr, d2.WantedInstr)
	}
}

func TestBacklogCapDropsWork(t *testing.T) {
	spec := &Spec{
		Name: "paced",
		Phases: []Phase{{
			Name: "p", Kind: Paced,
			Traits:   perfmodel.Traits{CPI: 1, BPI: 0.1, Par: 1},
			Duration: time.Hour, DemandGIPS: 1.0,
		}},
		Loop: true, RunFor: time.Hour,
	}
	task := NewTask(spec, 1)
	dt := 100 * time.Millisecond
	for i := 0; i < 100; i++ { // starve for 10 s
		task.Demand(dt)
		task.Advance(0, dt)
	}
	if task.DroppedInstr() == 0 {
		t.Fatal("long starvation must drop work (frames)")
	}
	// Backlog itself stays bounded at backlogCap seconds of demand.
	d := task.Demand(dt)
	maxWant := 1.0e9*dt.Seconds() + 1.0e9*defaultBacklogSec + 1
	if d.WantedInstr > maxWant {
		t.Fatalf("backlog unbounded: wants %v > %v", d.WantedInstr, maxWant)
	}
}

func TestPhaseTransitions(t *testing.T) {
	spec := AngryBirds()
	task := NewTask(spec, 7)
	if task.Phase().Name != "gameplay" {
		t.Fatalf("initial phase = %s", task.Phase().Name)
	}
	// Run past the 28 s gameplay phase.
	dt := 100 * time.Millisecond
	for i := 0; i < 285; i++ {
		d := task.Demand(dt)
		task.Advance(d.WantedInstr, dt)
	}
	if task.Phase().Name != "advertisement" {
		t.Fatalf("after 28.5s phase = %s, want advertisement", task.Phase().Name)
	}
}

func TestTouchesPoisson(t *testing.T) {
	spec := AngryBirds() // 1.5 touches/s in gameplay
	task := NewTask(spec, 99)
	total := 0
	for i := 0; i < 20000; i++ { // 20 s at 1 ms
		total += task.Touches(time.Millisecond)
	}
	// Expect ~30 touches over 20 s.
	if total < 10 || total > 60 {
		t.Fatalf("touches over 20s = %d, want ≈30", total)
	}
}

func TestBGLoadParsingAndProperties(t *testing.T) {
	for _, c := range []struct {
		s    string
		want BGLoad
	}{{"NL", NoLoad}, {"bl", BaselineLoad}, {"HL", HeavierLoad}} {
		got, err := ParseBGLoad(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseBGLoad(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParseBGLoad("xx"); err == nil {
		t.Fatal("expected parse error")
	}
	if NoLoad.FreeMemMB() != 1000 || BaselineLoad.FreeMemMB() != 500 || HeavierLoad.FreeMemMB() != 134 {
		t.Fatal("free memory figures drifted from §V-C")
	}
	if HeavierLoad.BPIPressure() <= BaselineLoad.BPIPressure() {
		t.Fatal("HL must apply memory pressure")
	}
}

func TestBackgroundComposition(t *testing.T) {
	if got := Background(NoLoad, NameAngryBirds); len(got) != 0 {
		t.Fatalf("NL background = %d tasks", len(got))
	}
	bl := Background(BaselineLoad, NameAngryBirds)
	if len(bl) != 2 {
		t.Fatalf("BL background = %d tasks, want 2 (spotify + email)", len(bl))
	}
	hl := Background(HeavierLoad, NameAngryBirds)
	if len(hl) <= len(bl) {
		t.Fatalf("HL (%d tasks) must exceed BL (%d)", len(hl), len(bl))
	}
	for _, s := range hl {
		if !s.Background {
			t.Errorf("%s not marked background", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpotifyForegroundDeduplicated(t *testing.T) {
	for _, s := range Background(BaselineLoad, NameSpotify) {
		if s.Name == "bg-spotify" {
			t.Fatal("foreground Spotify must not also run in background")
		}
	}
}

func TestPhaseValidation(t *testing.T) {
	bad := []Phase{
		{Name: "p", Kind: Paced, Traits: perfmodel.Traits{CPI: 1, Par: 1}, Duration: time.Second}, // no demand
		{Name: "p", Kind: Paced, Traits: perfmodel.Traits{CPI: 1, Par: 1}, DemandGIPS: 1},         // no duration
		{Name: "b", Kind: Batch, Traits: perfmodel.Traits{CPI: 1, Par: 1}},                        // no budget
		{Name: "k", Kind: Kind(9), Traits: perfmodel.Traits{CPI: 1, Par: 1}},                      // bad kind
		{Name: "n", Kind: Batch, Traits: perfmodel.Traits{CPI: 1, Par: 1}, InstrBudget: 1, NetBps: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	ok := AngryBirds()
	ok.Name = ""
	if err := ok.Validate(); err == nil {
		t.Fatal("empty name should fail")
	}
	s := AngryBirds()
	s.Phases = nil
	if err := s.Validate(); err == nil {
		t.Fatal("no phases should fail")
	}
	s = AngryBirds()
	s.RunFor = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero RunFor should fail")
	}
	s = AngryBirds()
	s.ProfileFreqIdxs = []int{55}
	if err := s.Validate(); err == nil {
		t.Fatal("out-of-range profile index should fail")
	}
}

func TestDeterminismBySeed(t *testing.T) {
	run := func(seed int64) float64 {
		task := NewTask(Spotify(), seed)
		total := 0.0
		for i := 0; i < 5000; i++ {
			d := task.Demand(time.Millisecond)
			task.Advance(d.WantedInstr, time.Millisecond)
			total += d.WantedInstr
		}
		return total
	}
	if run(5) != run(5) {
		t.Fatal("same seed must reproduce the same trace")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds should differ")
	}
}

func TestVidConTotalBudget(t *testing.T) {
	v := VidCon()
	perLoop := v.TotalBatchInstr()
	total := perLoop * float64(v.LoopCount)
	// Default-governor conversion takes ~59 s at ~3.3 GIPS ≈ 190e9.
	if total < 150e9 || total > 250e9 {
		t.Fatalf("VidCon total budget = %.0fe9, want ≈190e9", total/1e9)
	}
}

func TestExtraWorkloadsValidate(t *testing.T) {
	for _, s := range Extras() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(s.ProfileFreqIdxs) == 0 || len(s.ProfileFreqIdxs) > 9 {
			t.Errorf("%s profiles %d freqs, outside the paper's budget", s.Name, len(s.ProfileFreqIdxs))
		}
	}
}

func TestExtraWorkloadsResolvable(t *testing.T) {
	for _, name := range []string{NameMaps, NameCamera, NameVideoStream} {
		spec, err := ByName(name)
		if err != nil || spec.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, spec, err)
		}
	}
}

func TestCameraIsDeadlineCritical(t *testing.T) {
	if !Camera().DeadlineCritical {
		t.Fatal("a fixed-length recording is deadline critical")
	}
	if Camera().LoopCount != 1 {
		t.Fatal("one recording session, then done")
	}
}

func TestExtrasAreControllable(t *testing.T) {
	// Demand of each extra paced phase must be servable inside its
	// profiled frequency range at full bandwidth — otherwise the spec
	// is mis-calibrated and the controller cannot hold any target.
	for _, s := range Extras() {
		top := s.ProfileFreqIdxs[len(s.ProfileFreqIdxs)-1]
		for _, p := range s.Phases {
			if p.Kind != Paced {
				continue
			}
			cap := p.Traits.CapacityAt(n6, soc.Config{FreqIdx: top, BWIdx: 12})
			if cap < p.DemandGIPS*1e9 {
				t.Errorf("%s/%s: demand %.2f GIPS exceeds capacity %.2f at profiled top",
					s.Name, p.Name, p.DemandGIPS, cap/1e9)
			}
		}
	}
}
