package workload

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// driveTask runs a fixed synthetic schedule against the task and
// returns a fingerprint of everything observable: demands, totals,
// drops, touches and phase indices.
func driveTask(t *Task) []float64 {
	var fp []float64
	dt := 10 * time.Millisecond
	for i := 0; i < 2000; i++ {
		d := t.Demand(dt)
		// Serve 70% of the want, so backlog and drop paths both run.
		exec := d.WantedInstr * 0.7
		t.Advance(exec, dt)
		fp = append(fp, d.WantedInstr, float64(t.Touches(dt)),
			float64(t.PhaseIndex()), t.TotalExecuted(), t.DroppedInstr())
		if t.Done() {
			break
		}
	}
	return fp
}

func TestTaskResetBitIdentical(t *testing.T) {
	for _, spec := range append(Evaluated(), EBook()) {
		fresh := NewTask(spec, 42)
		want := driveTask(fresh)

		reused := NewTask(spec, 7)
		driveTask(reused) // dirty every piece of mutable state
		reused.Reset(42)
		got := driveTask(reused)

		if len(want) != len(got) {
			t.Fatalf("%s: reset run length %d, fresh %d", spec.Name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: reset diverges at sample %d: %v vs %v", spec.Name, i, got[i], want[i])
			}
		}
	}
}

func TestTaskResetRNGPosition(t *testing.T) {
	task := NewTask(Spotify(), 3)
	driveTask(task)
	task.Reset(99)
	if seed, draws := task.State().RNGSeed, task.State().RNGDraws; seed != 99 || draws != 0 {
		t.Fatalf("after Reset(99): seed %d draws %d, want 99, 0", seed, draws)
	}
}

func TestSpecCloneIndependent(t *testing.T) {
	orig := AngryBirds()
	c := orig.Clone()
	if !reflect.DeepEqual(orig, c) {
		t.Fatal("clone differs from original")
	}
	c.Name = "mutant"
	c.Phases[0].DemandGIPS *= 2
	c.Phases[0].Traits.CPI = math.Pi
	c.ProfileFreqIdxs[0] = 17
	c.Phases = append(c.Phases, c.Phases[0])

	ref := AngryBirds()
	if !reflect.DeepEqual(orig, ref) {
		t.Fatal("mutating the clone changed the original")
	}
}
