package workload

import (
	"fmt"
	"time"

	"aspeo/internal/perfmodel"
)

// App names, used by the CLIs and the experiment harness.
const (
	NameVidCon      = "vidcon"
	NameMobileBench = "mobilebench"
	NameAngryBirds  = "angrybirds"
	NameWeChat      = "wechat"
	NameMXPlayer    = "mxplayer"
	NameSpotify     = "spotify"
	NameEBook       = "ebook"
)

// evens returns 0-based ladder indices for every other 1-based frequency
// in [lo1, hi1], mirroring the paper's "each alternate CPU frequency"
// profiling rule applied to the app-specific allowed range.
func evens(lo1, hi1 int) []int {
	var out []int
	for f := lo1; f <= hi1; f += 2 {
		out = append(out, f-1)
	}
	return out
}

// VidCon is the FFmpeg-based video converter: a deadline-critical batch
// transcode with short I/O dips between chunks. The paper's default
// governor converts the sample video in 59 s, mostly at the highest
// frequency; base speed at the lowest configuration is 0.471 GIPS.
func VidCon() *Spec {
	transcode := perfmodel.Traits{CPI: 1.55, BPI: 0.43, ExtraBPI: 1.20, Par: 2.5, Overlap: 0.10}
	io := perfmodel.Traits{CPI: 2.5, BPI: 1.0, Par: 1.0, Overlap: 0.10}
	return &Spec{
		Name: NameVidCon,
		Phases: []Phase{
			{
				Name: "transcode-chunk", Kind: Batch, Traits: transcode,
				InstrBudget: 5e9, AuxWPerGIPS: 0.06,
			},
			{
				Name: "io-flush", Kind: Paced, Traits: io,
				Duration: 300 * time.Millisecond, DemandGIPS: 0.10,
			},
		},
		Loop:             true,
		LoopCount:        34, // ≈170e9 instructions of transcode work
		RunFor:           600 * time.Second,
		DeadlineCritical: true,
		ProfileFreqIdxs:  evens(7, 18), // paper: frequencies below 7 lose >50% perf
	}
}

// MobileBench is the BBench-derived browser benchmark: successive page
// loads (batch) with scripted zoom/scroll between them. Deadline
// critical; the paper restricts its profile to frequencies 7–18.
func MobileBench() *Spec {
	load := perfmodel.Traits{CPI: 2.0, BPI: 1.2, ExtraBPI: 1.5, Par: 2.0, Overlap: 0.10}
	scroll := perfmodel.Traits{CPI: 2.4, BPI: 2.4, Par: 1.5, Overlap: 0.10}
	return &Spec{
		Name: NameMobileBench,
		Phases: []Phase{
			{
				Name: "page-load", Kind: Batch, Traits: load,
				InstrBudget: 2.4e9, AuxWPerGIPS: 0.08, NetBps: 0, // content is on-device
			},
			{
				Name: "zoom-scroll", Kind: Paced, Traits: scroll,
				Duration: 1500 * time.Millisecond, DemandGIPS: 0.60,
				DemandJitter: 0.30, JitterPeriod: 100 * time.Millisecond,
				AuxWPerGIPS: 0.25, TouchRate: 2.5,
			},
		},
		Loop:             true,
		LoopCount:        12, // twelve sites
		RunFor:           400 * time.Second,
		DeadlineCritical: true,
		ProfileFreqIdxs:  evens(7, 18),
	}
}

// AngryBirds is the representative game: a paced render/physics loop that
// is memory-bound past frequency 5 (profiled speedup 1.837 at
// (0.8832 GHz, 762 MBps), base speed 0.129 GIPS) with periodic
// advertisement bursts that light up the radio and the bandwidth governor.
func AngryBirds() *Spec {
	game := perfmodel.Traits{CPI: 3.30, BPI: 3.05, Par: 1.5, Overlap: 0.05}
	ad := perfmodel.Traits{CPI: 2.80, BPI: 4.50, ExtraBPI: 3.0, Par: 1.8, Overlap: 0.05}
	return &Spec{
		Name: NameAngryBirds,
		Phases: []Phase{
			{
				Name: "gameplay", Kind: Paced, Traits: game,
				Duration: 28 * time.Second, DemandGIPS: 0.34,
				DemandJitter: 0.18, JitterPeriod: 100 * time.Millisecond,
				BacklogSec: 0.15, AuxWPerGIPS: 1.2, TouchRate: 1.0,
			},
			{
				Name: "advertisement", Kind: Paced, Traits: ad,
				Duration: 5 * time.Second, DemandGIPS: 0.34,
				DemandJitter: 0.18, JitterPeriod: 100 * time.Millisecond,
				BacklogSec: 0.3, AuxWPerGIPS: 1.0, AuxBaseW: 0.5,
				NetBps: 400e3, TouchRate: 0.2,
			},
		},
		Loop:            true,
		RunFor:          200 * time.Second, // played for 200 s in the paper
		ProfileFreqIdxs: evens(1, 9),       // GIPS flat beyond frequency 5; power keeps rising
	}
}

// WeChat models the 100-second video call: steady paced encode/decode
// with heavy per-frame jitter, constant camera+codec power, and
// frequencies 1–2 excluded (camera fails there, §V-A).
func WeChat() *Spec {
	call := perfmodel.Traits{CPI: 2.0, BPI: 0.70, Par: 2.0, Overlap: 0.05}
	return &Spec{
		Name: NameWeChat,
		Phases: []Phase{
			{
				Name: "video-call", Kind: Paced, Traits: call,
				Duration: 100 * time.Second, DemandGIPS: 0.56,
				DemandJitter: 0.32, JitterPeriod: 60 * time.Millisecond,
				BacklogSec: 0.25, AuxBaseW: 0.55, AuxWPerGIPS: 0.15,
				NetBps: 300e3, TouchRate: 0.05,
			},
		},
		Loop:            true,
		RunFor:          100 * time.Second,
		ProfileFreqIdxs: evens(3, 18),
	}
}

// MXPlayer plays a 137-second HD video through the hardware decoder: CPU
// demand is low and flat, most power sits in the decoder and display
// path, so DVFS has little left to save (the paper saves only ~4-5%).
// Frequencies 1–4 are excluded (video stutters).
func MXPlayer() *Spec {
	play := perfmodel.Traits{CPI: 2.5, BPI: 2.0, Par: 1.3, Overlap: 0.05}
	return &Spec{
		Name: NameMXPlayer,
		Phases: []Phase{
			{
				Name: "playback", Kind: Paced, Traits: play,
				Duration: 137 * time.Second, DemandGIPS: 0.22,
				DemandJitter: 0.12,
				AuxBaseW:     0.45, AuxWPerGIPS: 0.10,
			},
		},
		Loop:             true,
		LoopCount:        1, // one 137 s video
		RunFor:           137 * time.Second,
		DeadlineCritical: true,
		ProfileFreqIdxs:  evens(5, 18),
	}
}

// Spotify streams audio for 100 s with a song change every 20 s. Decode
// happens in racy buffer-refill bursts (high jitter around a tiny mean),
// which is what tricks the default governor into its 1.5 GHz excursions;
// the profile uses only frequencies 1, 3 and 5 (§V-A).
func Spotify() *Spec {
	steady := perfmodel.Traits{CPI: 2.2, BPI: 1.2, Par: 1.0, Overlap: 0.05}
	change := perfmodel.Traits{CPI: 2.0, BPI: 1.5, Par: 1.5, Overlap: 0.05}
	return &Spec{
		Name: NameSpotify,
		Phases: []Phase{
			{
				Name: "stream", Kind: Paced, Traits: steady,
				Duration: 16 * time.Second, DemandGIPS: 0.075,
				DemandJitter: 1.00, JitterPeriod: 60 * time.Millisecond,
				BacklogSec: 2.0, AuxBaseW: 0.12,
			},
			{
				// Buffer prefetch + decode-ahead: a fixed chunk of work
				// that races to completion — not latency critical, so at
				// low frequencies it just takes longer.
				Name: "song-change", Kind: Batch, Traits: change,
				InstrBudget: 0.45e9, Duration: 4 * time.Second,
				AuxBaseW: 0.20, NetBps: 1.5e6,
			},
		},
		Loop:            true,
		RunFor:          100 * time.Second,
		ProfileFreqIdxs: []int{0, 2, 4}, // frequencies 1, 3, 5
	}
}

// EBook is the reader of the paper's Figure 1: the user just reads, the
// CPU is nearly idle, yet the default governor still spends >10% of time
// at the highest frequency thanks to background activity and render
// timers.
func EBook() *Spec {
	read := perfmodel.Traits{CPI: 2.0, BPI: 1.0, Par: 1.0, Overlap: 0.05}
	turn := perfmodel.Traits{CPI: 2.2, BPI: 2.0, Par: 1.2, Overlap: 0.05}
	return &Spec{
		Name: NameEBook,
		Phases: []Phase{
			{
				Name: "read", Kind: Paced, Traits: read,
				Duration: 24 * time.Second, DemandGIPS: 0.035,
				DemandJitter: 1.3, JitterPeriod: 60 * time.Millisecond,
			},
			{
				Name: "page-render", Kind: Paced, Traits: turn,
				Duration: 1200 * time.Millisecond, DemandGIPS: 1.80,
				DemandJitter: 0.3,
			},
		},
		Loop:            true,
		RunFor:          120 * time.Second,
		ProfileFreqIdxs: evens(1, 9),
	}
}

// Evaluated returns the six applications of the paper's evaluation, in
// Table III order.
func Evaluated() []*Spec {
	return []*Spec{VidCon(), MobileBench(), AngryBirds(), WeChat(), MXPlayer(), Spotify()}
}

// ByName resolves an app spec by its canonical name.
func ByName(name string) (*Spec, error) {
	switch name {
	case NameVidCon:
		return VidCon(), nil
	case NameMobileBench:
		return MobileBench(), nil
	case NameAngryBirds:
		return AngryBirds(), nil
	case NameWeChat:
		return WeChat(), nil
	case NameMXPlayer:
		return MXPlayer(), nil
	case NameSpotify:
		return Spotify(), nil
	case NameEBook:
		return EBook(), nil
	case NameMaps:
		return Maps(), nil
	case NameCamera:
		return Camera(), nil
	case NameVideoStream:
		return VideoStream(), nil
	case NameSpotifyIdle:
		return SpotifyIdle(), nil
	case NameEBookIdle:
		return EBookIdle(), nil
	}
	return nil, fmt.Errorf("workload: unknown app %q", name)
}

// Names lists all known app names.
func Names() []string {
	return []string{NameVidCon, NameMobileBench, NameAngryBirds, NameWeChat,
		NameMXPlayer, NameSpotify, NameEBook, NameMaps, NameCamera, NameVideoStream,
		NameSpotifyIdle, NameEBookIdle}
}
