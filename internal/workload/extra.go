package workload

import (
	"time"

	"aspeo/internal/perfmodel"
)

// Additional library workloads beyond the paper's six evaluated apps.
// They exercise characteristic mixes the paper's scope discussion calls
// out — sustained navigation, camera capture, adaptive streaming — and
// give downstream users ready-made models for controller studies.
const (
	NameMaps        = "maps"
	NameCamera      = "camera"
	NameVideoStream = "videostream"
	NameSpotifyIdle = "spotify-idle"
	NameEBookIdle   = "ebook-idle"
)

// Maps models turn-by-turn navigation: continuous tile rendering and
// position tracking with a route-recalculation burst every few minutes,
// GPS radio always on. CPU demand is moderate and steady — the paper's
// "first type" of unsuitable app is nearby (network-dominated), but the
// render loop still leaves DVFS room.
func Maps() *Spec {
	render := perfmodel.Traits{CPI: 2.4, BPI: 2.2, Par: 1.4, Overlap: 0.05}
	reroute := perfmodel.Traits{CPI: 1.8, BPI: 1.2, Par: 2.0, Overlap: 0.10}
	return &Spec{
		Name: NameMaps,
		Phases: []Phase{
			{
				Name: "navigate", Kind: Paced, Traits: render,
				Duration: 45 * time.Second, DemandGIPS: 0.26,
				DemandJitter: 0.15, JitterPeriod: 100 * time.Millisecond,
				BacklogSec:  0.8,
				AuxBaseW:    0.35, // GPS + cell radio
				AuxWPerGIPS: 0.9,  // map tile rendering on the GPU
				NetBps:      60e3,
			},
			{
				// Route recalculation: a burst of graph search that must
				// finish within a few seconds.
				Name: "reroute", Kind: Batch, Traits: reroute,
				InstrBudget: 1.8e9, Duration: 4 * time.Second,
				AuxBaseW: 0.35, NetBps: 250e3,
			},
		},
		Loop:            true,
		RunFor:          180 * time.Second,
		ProfileFreqIdxs: evens(3, 15),
	}
}

// Camera models 1080p video recording: a hard real-time encode pipeline
// with ISP and sensor power that DVFS cannot touch, like WeChat but
// heavier. Frequencies 1–2 are excluded (encoder starves).
func Camera() *Spec {
	encode := perfmodel.Traits{CPI: 1.9, BPI: 1.1, Par: 2.2, Overlap: 0.05}
	return &Spec{
		Name: NameCamera,
		Phases: []Phase{
			{
				Name: "record-1080p", Kind: Paced, Traits: encode,
				Duration: 120 * time.Second, DemandGIPS: 0.72,
				DemandJitter: 0.30, JitterPeriod: 60 * time.Millisecond,
				BacklogSec: 0.2,
				AuxBaseW:   0.85, // sensor + ISP + preview display path
				TouchRate:  0.05,
			},
		},
		Loop:             true,
		LoopCount:        1,
		RunFor:           120 * time.Second,
		DeadlineCritical: true,
		ProfileFreqIdxs:  evens(3, 18),
	}
}

// VideoStream models adaptive web video (software decode, unlike MX
// Player's hardware path): steady decode demand with periodic segment
// downloads and an occasional quality switch that re-primes the decoder.
func VideoStream() *Spec {
	decode := perfmodel.Traits{CPI: 2.1, BPI: 1.8, Par: 1.8, Overlap: 0.05}
	fetch := perfmodel.Traits{CPI: 2.3, BPI: 1.4, Par: 1.0, Overlap: 0.05}
	return &Spec{
		Name: NameVideoStream,
		Phases: []Phase{
			{
				Name: "decode", Kind: Paced, Traits: decode,
				Duration: 9 * time.Second, DemandGIPS: 0.45,
				DemandJitter: 0.35, JitterPeriod: 60 * time.Millisecond,
				BacklogSec:  1.0, // the player buffers seconds of frames
				AuxWPerGIPS: 0.5,
			},
			{
				// Segment download + demux: a windowed batch racing the
				// buffer.
				Name: "segment-fetch", Kind: Batch, Traits: fetch,
				InstrBudget: 0.6e9, Duration: 3 * time.Second,
				NetBps: 2.5e6,
			},
		},
		Loop:            true,
		RunFor:          150 * time.Second,
		ProfileFreqIdxs: evens(3, 15),
	}
}

// SpotifyIdle models screen-off audio playback over a full hour: the
// steady decode demand of Spotify's stream phase with no buffer-refill
// jitter (σ = 0) and no song-change bursts. The demand trace is exactly
// periodic, which is the idle-dominated regime where the event-queue
// engine's closed-form spans pay off: a whole controller quantum folds
// into one O(log k) accumulator jump instead of k fused steps.
func SpotifyIdle() *Spec {
	steady := perfmodel.Traits{CPI: 2.2, BPI: 1.2, Par: 1.0, Overlap: 0.05}
	return &Spec{
		Name: NameSpotifyIdle,
		Phases: []Phase{
			{
				Name: "stream-idle", Kind: Paced, Traits: steady,
				Duration: 3600 * time.Second, DemandGIPS: 0.075,
				BacklogSec: 2.0, AuxBaseW: 0.12,
			},
		},
		Loop:            true,
		RunFor:          3600 * time.Second,
		ProfileFreqIdxs: []int{0, 2, 4},
	}
}

// EBookIdle is the reader of Figure 1 left open on one page for an
// hour: render timers and background sync keep a tiny, perfectly
// steady CPU demand (σ = 0) with no page turns. Like SpotifyIdle it is
// an idle-dominated wall-time benchmark for the event engine.
func EBookIdle() *Spec {
	read := perfmodel.Traits{CPI: 2.0, BPI: 1.0, Par: 1.0, Overlap: 0.05}
	return &Spec{
		Name: NameEBookIdle,
		Phases: []Phase{
			{
				Name: "read-idle", Kind: Paced, Traits: read,
				Duration: 3600 * time.Second, DemandGIPS: 0.035,
			},
		},
		Loop:            true,
		RunFor:          3600 * time.Second,
		ProfileFreqIdxs: evens(1, 9),
	}
}

// Extras lists the additional library workloads.
func Extras() []*Spec {
	return []*Spec{Maps(), Camera(), VideoStream(), SpotifyIdle(), EBookIdle()}
}
