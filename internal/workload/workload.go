// Package workload models the applications the paper evaluates and the
// background loads they run against.
//
// Each application is a Spec: a looped sequence of phases, where a phase
// is either *paced* (the app wants a target instruction rate — game
// loops, video frames, audio buffers; unmet demand accumulates in a small
// backlog and surplus capacity idles) or *batch* (the app consumes all
// capacity until an instruction budget is done — transcoding, page
// loads). Phases carry the architectural traits (perfmodel.Traits) that
// determine how fast they run at each system configuration, plus the
// power coupling of non-CPU units (GPU render, hardware codecs, camera,
// radio) that the Monsoon measures but DVFS does not control.
//
// The six evaluated apps (VidCon, MobileBench, AngryBirds, WeChat video
// call, MX Player, Spotify) are calibrated to the paper's anchors: base
// speeds (AngryBirds 0.129 GIPS, VidCon 0.471 GIPS at the lowest
// configuration), saturation knees ("no GIPS improvement beyond CPU
// frequency No. 5" for AngryBirds), excluded frequency ranges, and run
// lengths. The eBook reader used for the paper's Figure 1 is included as
// a seventh spec.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"aspeo/internal/detrand"
	"aspeo/internal/fpacc"
	"aspeo/internal/perfmodel"
)

// Kind distinguishes how a phase consumes the machine.
type Kind int

// Phase kinds.
const (
	// Paced phases want DemandGIPS instructions per second.
	Paced Kind = iota
	// Batch phases consume all available capacity until InstrBudget
	// instructions have retired.
	Batch
)

func (k Kind) String() string {
	if k == Batch {
		return "batch"
	}
	return "paced"
}

// Phase is one stage of an application's execution.
type Phase struct {
	Name   string
	Kind   Kind
	Traits perfmodel.Traits

	// Paced parameters.
	Duration   time.Duration // phase length
	DemandGIPS float64       // wanted instruction rate, GIPS
	// DemandJitter is the σ of a mean-one lognormal multiplier on the
	// paced demand; it models frame spikes and decode bursts. The
	// multiplier is resampled every JitterPeriod (default 200 ms):
	// short periods create the micro-bursts that trip the 20 ms-window
	// default governor while washing out of the controller's 2 s
	// averages.
	DemandJitter float64
	JitterPeriod time.Duration

	// Batch parameters. A batch phase with Duration == 0 ends when
	// InstrBudget instructions have retired (a transcode chunk, a page
	// load). A batch phase with Duration > 0 is *windowed*: it lasts
	// exactly Duration — the budget races to completion and the rest of
	// the window idles (prefetch, sync bursts); budget not finished by
	// the window's end is abandoned.
	InstrBudget float64 // instructions to retire before the phase ends

	// Power coupling of units DVFS does not control.
	AuxBaseW    float64 // constant draw while the phase runs (codec, camera…)
	AuxWPerGIPS float64 // draw proportional to achieved GIPS (GPU render)

	// NetBps is network traffic while the phase runs (bytes/second).
	NetBps float64

	// TouchRate is user input events per second (Poisson); these drive
	// the interactive governor's input boost.
	TouchRate float64

	// BacklogSec bounds how much unmet paced demand is buffered, in
	// seconds of demand, before work is dropped. Games keep a few
	// frames (~0.1 s); audio players buffer seconds. 0 means the
	// package default.
	BacklogSec float64
}

// Validate checks phase consistency.
func (p Phase) Validate() error {
	if err := p.Traits.Validate(); err != nil {
		return fmt.Errorf("phase %q: %w", p.Name, err)
	}
	switch p.Kind {
	case Paced:
		if p.DemandGIPS <= 0 {
			return fmt.Errorf("phase %q: paced phase needs positive DemandGIPS", p.Name)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("phase %q: paced phase needs positive Duration", p.Name)
		}
	case Batch:
		if p.InstrBudget <= 0 {
			return fmt.Errorf("phase %q: batch phase needs positive InstrBudget", p.Name)
		}
	default:
		return fmt.Errorf("phase %q: unknown kind %d", p.Name, int(p.Kind))
	}
	if p.DemandJitter < 0 || p.BacklogSec < 0 || p.AuxBaseW < 0 || p.AuxWPerGIPS < 0 || p.NetBps < 0 || p.TouchRate < 0 {
		return fmt.Errorf("phase %q: negative parameter", p.Name)
	}
	return nil
}

// Spec describes an application.
type Spec struct {
	Name   string
	Phases []Phase

	// Loop restarts the phase sequence when it completes.
	Loop bool
	// LoopCount bounds the number of phase-sequence iterations for
	// looped apps that have a natural end (MobileBench's site list);
	// 0 means unbounded.
	LoopCount int
	// RunFor is the nominal foreground session length for paced apps
	// and a safety bound for batch apps.
	RunFor time.Duration

	// DeadlineCritical marks apps whose performance is reported via
	// execution time rather than GIPS (paper Table III: VidCon,
	// MobileBench, MX Player).
	DeadlineCritical bool

	// ProfileFreqIdxs are the 0-based CPU frequency ladder indices
	// included in the offline profiling table — the paper's app-
	// specific range restrictions (§V-A).
	ProfileFreqIdxs []int

	// Background marks specs that model background services.
	Background bool
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", s.Name)
	}
	for _, p := range s.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload %s: %w", s.Name, err)
		}
	}
	if s.RunFor <= 0 {
		return fmt.Errorf("workload %s: RunFor must be positive", s.Name)
	}
	for _, i := range s.ProfileFreqIdxs {
		if i < 0 || i > 17 {
			return fmt.Errorf("workload %s: profile freq index %d out of range", s.Name, i)
		}
	}
	return nil
}

// Clone returns a deep copy of the spec. Generated workloads (scenario
// perturbations, chain synthesis) mutate their copy freely without
// aliasing the library specs or each other: Phase carries only value
// types, so copying the phase slice and the frequency-index slice makes
// the copy fully independent.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Phases = append([]Phase(nil), s.Phases...)
	c.ProfileFreqIdxs = append([]int(nil), s.ProfileFreqIdxs...)
	return &c
}

// TotalBatchInstr returns the total instruction budget of one iteration
// of the phase sequence (batch phases only).
func (s *Spec) TotalBatchInstr() float64 {
	sum := 0.0
	for _, p := range s.Phases {
		if p.Kind == Batch {
			sum += p.InstrBudget
		}
	}
	return sum
}

const defaultJitterPeriod = 200 * time.Millisecond

// backlogCap bounds how much unmet paced demand may be buffered, in
// seconds of demand. Real apps queue work elastically — decoded audio,
// buffered frames, deferred physics ticks — and only visibly degrade when
// starved for sustained periods.
const defaultBacklogSec = 1.0

// Task is a running instance of a Spec. It is a pure state machine: the
// simulator asks for its Demand each step, executes some portion of it,
// and reports the result to Advance.
type Task struct {
	Spec *Spec

	rng          *rand.Rand
	rngSrc       *detrand.Source
	now          time.Duration
	phaseIdx     int
	phaseElapsed time.Duration
	phaseExec    float64 // instructions retired in the current phase
	totalExec    float64
	loopsDone    int
	done         bool

	jitterMul   float64
	jitterUntil time.Duration
	backlog     float64 // unmet paced instructions carried over
	dropped     float64 // paced instructions dropped at backlog overflow
}

// NewTask instantiates a spec with a deterministic seed.
func NewTask(spec *Spec, seed int64) *Task {
	rng, src := detrand.New(seed)
	return &Task{
		Spec:      spec,
		rng:       rng,
		rngSrc:    src,
		jitterMul: 1,
	}
}

// Reset rewinds the task to its initial state under a fresh seed —
// bit-identical to NewTask(t.Spec, seed). One Task definition can then
// back many generated sessions in turn (the scenario compiler's reuse
// path) instead of callers rebuilding tasks by hand; no phase state,
// backlog, drop accounting or rng position leaks from the previous run.
func (t *Task) Reset(seed int64) {
	rng, src := detrand.New(seed)
	*t = Task{Spec: t.Spec, rng: rng, rngSrc: src, jitterMul: 1}
}

// Demand is what a task wants from the machine for one step.
type Demand struct {
	WantedInstr float64 // instructions the task would consume this step
	Traits      perfmodel.Traits
	AuxBaseW    float64
	AuxWPerGIPS float64
	NetBps      float64
}

// Phase returns the currently executing phase.
func (t *Task) Phase() Phase { return t.Spec.Phases[t.phaseIdx] }

// Done reports whether the task has finished (batch budget exhausted and
// not looping, or loop count reached).
func (t *Task) Done() bool { return t.done }

// TotalExecuted returns instructions retired so far.
func (t *Task) TotalExecuted() float64 { return t.totalExec }

// DroppedInstr returns paced work dropped due to backlog overflow (missed
// frames).
func (t *Task) DroppedInstr() float64 { return t.dropped }

// Now returns the task-local clock.
func (t *Task) Now() time.Duration { return t.now }

// Demand computes what the task wants for the next dt.
func (t *Task) Demand(dt time.Duration) Demand {
	if t.done {
		return Demand{Traits: t.Spec.Phases[0].Traits}
	}
	p := &t.Spec.Phases[t.phaseIdx]
	d := Demand{
		Traits:      p.Traits,
		AuxBaseW:    p.AuxBaseW,
		AuxWPerGIPS: p.AuxWPerGIPS,
		NetBps:      p.NetBps,
	}
	switch p.Kind {
	case Batch:
		d.WantedInstr = p.InstrBudget - t.phaseExec
		if d.WantedInstr < 0 {
			d.WantedInstr = 0
		}
	case Paced:
		if t.now >= t.jitterUntil {
			t.jitterMul = t.sampleJitter(p.DemandJitter)
			jp := p.JitterPeriod
			if jp <= 0 {
				jp = defaultJitterPeriod
			}
			t.jitterUntil = t.now + jp
		}
		want := p.DemandGIPS * 1e9 * dt.Seconds() * t.jitterMul
		d.WantedInstr = want + t.backlog
	}
	return d
}

// sampleJitter draws a mean-one lognormal multiplier with σ = sigma.
func (t *Task) sampleJitter(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(sigma*t.rng.NormFloat64() - sigma*sigma/2)
}

// Advance reports that `executed` instructions of the previous Demand ran
// during dt, and moves the phase machine forward.
func (t *Task) Advance(executed float64, dt time.Duration) {
	if t.done {
		return
	}
	p := &t.Spec.Phases[t.phaseIdx]
	t.now += dt
	t.phaseElapsed += dt
	t.phaseExec += executed
	t.totalExec += executed

	if p.Kind == Paced {
		want := p.DemandGIPS * 1e9 * dt.Seconds() * t.jitterMul
		unmet := want + t.backlog - executed
		if unmet < 0 {
			unmet = 0
		}
		backlogSec := p.BacklogSec
		if backlogSec <= 0 {
			backlogSec = defaultBacklogSec
		}
		cap := p.DemandGIPS * 1e9 * backlogSec
		if unmet > cap {
			t.dropped += unmet - cap
			unmet = cap
		}
		t.backlog = unmet
	}

	switch p.Kind {
	case Batch:
		if p.Duration > 0 {
			// Windowed batch: fixed wall-clock window.
			if t.phaseElapsed >= p.Duration {
				if t.phaseExec < p.InstrBudget {
					t.dropped += p.InstrBudget - t.phaseExec
				}
				t.nextPhase()
			}
		} else if t.phaseExec >= p.InstrBudget {
			t.nextPhase()
		}
	case Paced:
		if t.phaseElapsed >= p.Duration {
			t.nextPhase()
		}
	}
}

func (t *Task) nextPhase() {
	t.phaseIdx++
	t.phaseElapsed = 0
	t.phaseExec = 0
	t.backlog = 0
	if t.phaseIdx >= len(t.Spec.Phases) {
		t.phaseIdx = 0
		t.loopsDone++
		if !t.Spec.Loop || (t.Spec.LoopCount > 0 && t.loopsDone >= t.Spec.LoopCount) {
			t.done = true
		}
	}
}

// --- K-step fusion support (sim.Phone.StepN) ---
//
// The fixed-step simulator spends most of its time repeating steps whose
// inputs have not changed: the configuration is constant between actor
// ticks and a task's demand is constant between jitter resamples and
// phase transitions. StepPlan/FuseBound let the simulator prove, from
// task state alone, that the next k steps would execute exactly what the
// last slow step executed — so it can replay them without recomputing
// demand or the power model. The contract is bit-identity: a fused step
// must leave every observable value (task state, rng stream, dropped
// work) exactly as k slow steps would.

// StepPlan records what one simulator step executed for this task.
type StepPlan struct {
	Exec     float64 // instructions the step executed
	MaxInstr float64 // capacity available to the task that step
	Served   bool    // Exec == WantedInstr (demand not capacity-clamped)
	PhaseIdx int     // phase the step executed in
	Done     bool    // task was already done (step skipped it)
}

// unboundedSteps is FuseBound's "no task-side limit" answer; callers
// min() it against engine-side bounds.
const unboundedSteps = math.MaxInt32

// ceilSteps returns how many dt-steps fit strictly before deadline a,
// counting the step that crosses it: the largest k with (k-1)·dt < a.
func ceilSteps(a, dt time.Duration) int {
	if a <= 0 {
		return 0
	}
	return int((a + dt - 1) / dt)
}

// FuseBound returns how many consecutive dt-steps the task can repeat
// sp before its demand could change: during those steps Demand would
// return the same WantedInstr with the same clamp decision and no rng
// draw would occur. 0 means the next step must run the slow path. The
// bound may include the step that ends a paced phase or a windowed
// batch (Advance handles the transition), but never extends past it.
func (t *Task) FuseBound(sp StepPlan, dt time.Duration) int {
	return t.fuseBound(sp, dt, false)
}

// SpanBound is FuseBound for the event-queue backend: identical
// guarantees, with one relaxation. A steadily-served paced phase whose
// jitter is disabled (σ = 0) and whose multiplier sits at its fixed
// point of 1 is not capped at the next jitter resample — crossing the
// resample deadline draws no randomness and cannot change the demand,
// so the span may run all the way to the phase boundary. The resample
// deadline then goes stale, which is harmless: Demand refreshes it
// lazily on the next slow step, and no observable depends on it.
func (t *Task) SpanBound(sp StepPlan, dt time.Duration) int {
	return t.fuseBound(sp, dt, true)
}

func (t *Task) fuseBound(sp StepPlan, dt time.Duration, relaxJitter bool) int {
	if t.done || sp.Done || t.phaseIdx != sp.PhaseIdx {
		return 0
	}
	p := &t.Spec.Phases[t.phaseIdx]
	switch p.Kind {
	case Batch:
		remaining := p.InstrBudget - t.phaseExec
		k := unboundedSteps
		switch {
		case sp.Served && sp.Exec == 0 && remaining <= 0:
			// Windowed batch idling out its window: demand stays zero
			// until the window ends.
		case sp.Served:
			// The budget finishes this step; the transition needs the
			// slow path.
			return 0
		case sp.MaxInstr <= 0:
			// Starved of all capacity: no progress, state frozen.
		default:
			// Starved: exec == MaxInstr until the budget approaches.
			// phaseExec accumulates sequentially in floating point, so
			// keep a two-step safety margin from the exact boundary.
			m := (remaining - sp.MaxInstr) / sp.MaxInstr
			if m < float64(unboundedSteps) {
				k = int(m) - 1
			}
			if k < 1 {
				return 0
			}
		}
		if p.Duration > 0 {
			if kw := ceilSteps(p.Duration-t.phaseElapsed, dt); kw < k {
				k = kw
			}
		}
		return k
	case Paced:
		// Never step past the jitter resample deadline: Demand draws
		// from the rng there (even with σ = 0 the multiplier is
		// re-evaluated), and past it the demand may change. The one
		// provable exception — σ = 0 with the multiplier already at its
		// fixed point in a served phase — is granted only to SpanBound.
		k := unboundedSteps
		if !(relaxJitter && sp.Served && p.DemandJitter <= 0 && t.jitterMul == 1) {
			k = ceilSteps(t.jitterUntil-t.now, dt)
			if k <= 0 {
				return 0
			}
		}
		if kp := ceilSteps(p.Duration-t.phaseElapsed, dt); kp < k {
			k = kp
		}
		if k <= 0 {
			return 0
		}
		want := p.DemandGIPS * 1e9 * dt.Seconds() * t.jitterMul
		if sp.Served {
			// Steady served state: backlog empty and the step executes
			// exactly the per-step demand.
			if t.backlog != 0 || want != sp.Exec {
				return 0
			}
		} else {
			// Starved: the clamp persists only while demand alone
			// exceeds capacity; a draining backlog (want < capacity)
			// changes exec per step and must run slow.
			if want < sp.MaxInstr {
				return 0
			}
		}
		return k
	}
	return 0
}

// AdvanceN reports n identical steps — bit-identical to n consecutive
// Advance calls. The fused fast path uses it when FuseBound guarantees
// the demand is unchanged across the batch.
func (t *Task) AdvanceN(executed float64, dt time.Duration, n int) {
	for i := 0; i < n; i++ {
		t.Advance(executed, dt)
	}
}

// AdvanceSpan reports n identical steps like AdvanceN — bit-identically
// to n consecutive Advance calls — but folds the first n-1 steps in
// closed form when the task state provably telescopes: batch phases
// (instruction totals accumulate sequentially, fast-forwarded exactly
// by fpacc.AddK) and steadily-served paced phases (an empty backlog
// with executed == want keeps the unmet-work arithmetic at exactly
// zero every step). Anything else falls back to the literal loop.
//
// Precondition: n must not exceed the task's SpanBound (or FuseBound)
// for the step being replayed, so that no phase transition can occur
// before the final step. The final step always runs the literal
// Advance, which handles the transition if the span ends the phase.
func (t *Task) AdvanceSpan(executed float64, dt time.Duration, n int) {
	if n <= 0 || t.done {
		return
	}
	p := &t.Spec.Phases[t.phaseIdx]
	closed := false
	switch p.Kind {
	case Batch:
		closed = true
	case Paced:
		want := p.DemandGIPS * 1e9 * dt.Seconds() * t.jitterMul
		closed = t.backlog == 0 && executed == want
	}
	if !closed {
		t.AdvanceN(executed, dt, n)
		return
	}
	t.now += time.Duration(n-1) * dt
	t.phaseElapsed += time.Duration(n-1) * dt
	t.phaseExec = fpacc.AddK(t.phaseExec, executed, n-1)
	t.totalExec = fpacc.AddK(t.totalExec, executed, n-1)
	t.Advance(executed, dt)
}

// PhaseIndex returns the index of the currently executing phase.
func (t *Task) PhaseIndex() int { return t.phaseIdx }

// TouchActive reports whether the current phase generates touch events —
// i.e. whether Touches would consume randomness.
func (t *Task) TouchActive() bool {
	return !t.done && t.Spec.Phases[t.phaseIdx].TouchRate > 0
}

// Touches returns the number of user-input events during dt (Poisson
// with the phase's TouchRate).
func (t *Task) Touches(dt time.Duration) int {
	if t.done {
		return 0
	}
	rate := t.Spec.Phases[t.phaseIdx].TouchRate * dt.Seconds()
	if rate <= 0 {
		return 0
	}
	// Poisson via inversion; rates per step are ≪ 1.
	n := 0
	l := math.Exp(-rate)
	p := t.rng.Float64()
	for p > l {
		n++
		p *= t.rng.Float64()
	}
	return n
}
