// Package kalman implements the scalar Kalman filter the controller uses
// to track an application's base speed (paper §III-B3, following POET).
//
// The state is the base speed b_n — the application speed at the lowest
// system configuration. The process model is a random walk
//
//	b_n = b_{n-1} + w_n,        w_n ~ N(0, Q)
//
// and the measurement is the observed performance divided by the speedup
// that was applied during the cycle:
//
//	z_n = y_n / s_{n-1} = b_n + v_n,   v_n ~ N(0, R)
//
// which is exactly how POET folds the multiplicative performance model
// y = s·b into a linear observation.
package kalman

import (
	"errors"
	"math"
)

// Filter is a one-dimensional Kalman filter. The zero value is not usable;
// construct with New.
type Filter struct {
	q float64 // process noise variance
	r float64 // measurement noise variance

	x float64 // state estimate
	p float64 // estimate variance

	initialized bool
	steps       int
	lastGain    float64
}

// Errors returned by Filter methods.
var (
	ErrBadVariance   = errors.New("kalman: variances must be positive and finite")
	ErrBadMeasure    = errors.New("kalman: measurement must be finite")
	ErrUninitialized = errors.New("kalman: filter not initialized")
)

// New creates a filter with process noise variance q and measurement noise
// variance r. Typical controller values are q ≈ (1% of base speed)² and
// r ≈ (5% of base speed)².
func New(q, r float64) (*Filter, error) {
	if !(q > 0) || !(r > 0) || math.IsInf(q, 0) || math.IsInf(r, 0) {
		return nil, ErrBadVariance
	}
	return &Filter{q: q, r: r}, nil
}

// MustNew is New but panics on invalid parameters; for use in tests and
// package-internal constants.
func MustNew(q, r float64) *Filter {
	f, err := New(q, r)
	if err != nil {
		panic(err)
	}
	return f
}

// Init seeds the state estimate. p0 is the initial estimate variance; it
// should reflect how much the seed is trusted (large when the seed is a
// guess).
func (f *Filter) Init(x0, p0 float64) {
	f.x = x0
	f.p = math.Abs(p0)
	f.initialized = true
	f.steps = 0
}

// Initialized reports whether Init or a first Update has run.
func (f *Filter) Initialized() bool { return f.initialized }

// Update folds in a new measurement z and returns the posterior state
// estimate. If the filter has not been initialized, the first measurement
// initializes it with a large prior variance.
func (f *Filter) Update(z float64) (float64, error) {
	if math.IsNaN(z) || math.IsInf(z, 0) {
		return f.x, ErrBadMeasure
	}
	if !f.initialized {
		f.Init(z, 100*f.r)
		f.steps = 1
		return f.x, nil
	}
	// Predict.
	pPred := f.p + f.q
	// Update.
	k := pPred / (pPred + f.r)
	f.x += k * (z - f.x)
	f.p = (1 - k) * pPred
	f.lastGain = k
	f.steps++
	return f.x, nil
}

// Estimate returns the current state estimate.
func (f *Filter) Estimate() (float64, error) {
	if !f.initialized {
		return 0, ErrUninitialized
	}
	return f.x, nil
}

// Variance returns the current estimate variance.
func (f *Filter) Variance() float64 { return f.p }

// MeasurementVariance returns the configured measurement noise variance
// R; controllers scale their innovation gates by sqrt(P + R).
func (f *Filter) MeasurementVariance() float64 { return f.r }

// Gain returns the Kalman gain applied by the most recent Update.
func (f *Filter) Gain() float64 { return f.lastGain }

// Steps returns the number of measurements folded in so far.
func (f *Filter) Steps() int { return f.steps }

// SteadyStateGain returns the asymptotic Kalman gain for the filter's q
// and r; useful for analysis and tests. For the random-walk model it is
// the positive root of k² + (q/r)k - q/r = 0 applied to the predicted
// variance fixed point.
func (f *Filter) SteadyStateGain() float64 {
	// Fixed point of p' = (1-k)(p+q) with k = (p+q)/(p+q+r):
	// p* = (-q + sqrt(q² + 4qr)) / 2.
	pStar := (-f.q + math.Sqrt(f.q*f.q+4*f.q*f.r)) / 2
	return (pStar + f.q) / (pStar + f.q + f.r)
}
