package kalman

import "math"

// State is a checkpointable snapshot of the filter. All fields are
// plain float64/bool/int values that round-trip exactly through
// encoding/json (Go emits shortest-round-trip decimal for floats), so a
// restored filter continues bit-identically.
type State struct {
	Q           float64 `json:"q"`
	R           float64 `json:"r"`
	X           float64 `json:"x"`
	P           float64 `json:"p"`
	Initialized bool    `json:"initialized"`
	Steps       int     `json:"steps"`
	LastGain    float64 `json:"last_gain"`
}

// State captures the filter for a checkpoint.
func (f *Filter) State() State {
	return State{Q: f.q, R: f.r, X: f.x, P: f.p,
		Initialized: f.initialized, Steps: f.steps, LastGain: f.lastGain}
}

// Restore overwrites the filter with a previously captured State.
func (f *Filter) Restore(s State) error {
	if !(s.Q > 0) || !(s.R > 0) || math.IsInf(s.Q, 0) || math.IsInf(s.R, 0) {
		return ErrBadVariance
	}
	f.q, f.r = s.Q, s.R
	f.x, f.p = s.X, s.P
	f.initialized = s.Initialized
	f.steps = s.Steps
	f.lastGain = s.LastGain
	return nil
}
