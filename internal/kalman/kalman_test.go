package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct{ q, r float64 }{
		{0, 1}, {1, 0}, {-1, 1}, {1, -1},
		{math.Inf(1), 1}, {1, math.Inf(1)}, {math.NaN(), 1},
	}
	for _, c := range cases {
		if _, err := New(c.q, c.r); err == nil {
			t.Errorf("New(%v, %v): expected error", c.q, c.r)
		}
	}
	if _, err := New(1e-6, 1e-3); err != nil {
		t.Fatalf("New valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid variance")
		}
	}()
	MustNew(0, 1)
}

func TestFirstUpdateInitializes(t *testing.T) {
	f := MustNew(1e-4, 1e-2)
	if f.Initialized() {
		t.Fatal("fresh filter should not be initialized")
	}
	got, err := f.Update(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("first update should seed the state, got %v", got)
	}
	if !f.Initialized() || f.Steps() != 1 {
		t.Fatalf("after first update: initialized=%v steps=%d", f.Initialized(), f.Steps())
	}
}

func TestEstimateUninitialized(t *testing.T) {
	f := MustNew(1e-4, 1e-2)
	if _, err := f.Estimate(); err != ErrUninitialized {
		t.Fatalf("expected ErrUninitialized, got %v", err)
	}
}

func TestRejectsNonFiniteMeasurements(t *testing.T) {
	f := MustNew(1e-4, 1e-2)
	f.Init(1, 1)
	for _, z := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := f.Update(z); err != ErrBadMeasure {
			t.Errorf("Update(%v): expected ErrBadMeasure, got %v", z, err)
		}
	}
	if x, _ := f.Estimate(); x != 1 {
		t.Fatalf("bad measurements must not move the estimate, got %v", x)
	}
}

func TestConvergesToConstant(t *testing.T) {
	f := MustNew(1e-6, 1e-2)
	f.Init(0, 10)
	const truth = 0.129 // AngryBirds base speed in GIPS
	var got float64
	for i := 0; i < 200; i++ {
		got, _ = f.Update(truth)
	}
	if math.Abs(got-truth) > 1e-3 {
		t.Fatalf("filter did not converge: got %v want %v", got, truth)
	}
}

func TestTracksNoisyConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := MustNew(1e-6, 25e-4) // 5% noise on a 1.0 signal
	f.Init(0.5, 1)
	const truth = 1.0
	var got float64
	for i := 0; i < 500; i++ {
		got, _ = f.Update(truth + rng.NormFloat64()*0.05)
	}
	if math.Abs(got-truth) > 0.02 {
		t.Fatalf("noisy convergence off: got %v", got)
	}
}

func TestTracksStepChange(t *testing.T) {
	// Base speed changes when the app enters a new phase; the filter
	// must follow within a bounded number of cycles.
	f := MustNew(1e-4, 1e-3)
	f.Init(0.129, 0.01)
	for i := 0; i < 50; i++ {
		f.Update(0.129)
	}
	var got float64
	for i := 0; i < 60; i++ {
		got, _ = f.Update(0.471)
	}
	if math.Abs(got-0.471) > 0.02 {
		t.Fatalf("step tracking off: got %v want 0.471", got)
	}
}

func TestVarianceShrinks(t *testing.T) {
	f := MustNew(1e-6, 1e-2)
	f.Init(1, 10)
	prev := f.Variance()
	for i := 0; i < 10; i++ {
		f.Update(1)
		if v := f.Variance(); v >= prev {
			t.Fatalf("variance did not shrink at step %d: %v >= %v", i, v, prev)
		} else {
			prev = v
		}
	}
}

func TestSteadyStateGainMatchesIteration(t *testing.T) {
	f := MustNew(3e-5, 7e-3)
	f.Init(1, 1)
	for i := 0; i < 2000; i++ {
		f.Update(1)
	}
	if got, want := f.Gain(), f.SteadyStateGain(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("iterated gain %v != analytic steady-state gain %v", got, want)
	}
}

// Property: the posterior estimate always lies between the prior estimate
// and the measurement (scalar KF convexity), and gain stays in (0,1).
func TestUpdateConvexProperty(t *testing.T) {
	f := func(seed int64, x0, z float64) bool {
		if math.IsNaN(x0) || math.IsInf(x0, 0) || math.Abs(x0) > 1e9 {
			return true
		}
		if math.IsNaN(z) || math.IsInf(z, 0) || math.Abs(z) > 1e9 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		kf := MustNew(1e-6+rng.Float64(), 1e-6+rng.Float64())
		kf.Init(x0, rng.Float64()*10)
		post, err := kf.Update(z)
		if err != nil {
			return false
		}
		lo, hi := math.Min(x0, z), math.Max(x0, z)
		return post >= lo-1e-9 && post <= hi+1e-9 && kf.Gain() > 0 && kf.Gain() < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
