package sim

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/workload"
)

// --- eventQueue properties -------------------------------------------------

// TestEventQueueStableFIFO: events pushed at the same timestamp pop in
// push order, regardless of what else is in the heap.
func TestEventQueueStableFIFO(t *testing.T) {
	var q eventQueue
	// Interleave two timestamps; within each, push order must survive.
	for i := 0; i < 64; i++ {
		q.Push(Event{At: time.Duration(i % 2), Actor: i})
	}
	var got [2][]int
	for q.Len() > 0 {
		ev := q.Pop()
		got[ev.At] = append(got[ev.At], ev.Actor)
	}
	for at := 0; at < 2; at++ {
		for j := 1; j < len(got[at]); j++ {
			if got[at][j] <= got[at][j-1] {
				t.Fatalf("t=%d: pop order %v not push order", at, got[at])
			}
		}
		if len(got[at]) != 32 {
			t.Fatalf("t=%d: popped %d events, want 32", at, len(got[at]))
		}
	}
}

// TestEventQueueOrderingRandomized: under seeded storms of interleaved
// pushes and pops, every popped event is ordered by (At, Seq) — i.e.
// non-decreasing in time, FIFO among equal timestamps — and nothing is
// lost or invented.
func TestEventQueueOrderingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0x57047))
	for trial := 0; trial < 200; trial++ {
		var q eventQueue
		pushed, popped := 0, 0
		var last Event
		haveLast := false
		// A small timestamp alphabet forces heavy collision; pops are
		// interleaved with pushes so the heap shape is exercised at every
		// size.
		for op := 0; op < 500; op++ {
			if q.Len() == 0 || rng.Intn(3) != 0 {
				q.Push(Event{At: time.Duration(rng.Intn(8)) * time.Millisecond, Actor: pushed})
				pushed++
				continue
			}
			ev := q.Pop()
			popped++
			// Seq must be the unique global push index ordering; among
			// still-queued events with equal At, the earliest Seq pops
			// first, so consecutive pops with equal At have increasing Seq.
			if haveLast && ev.At == last.At && ev.Seq <= last.Seq {
				t.Fatalf("trial %d: FIFO violated at t=%v: seq %d after %d", trial, ev.At, ev.Seq, last.Seq)
			}
			// NOTE: across a push between two pops, At may step backward
			// only if the push introduced an earlier event — which the heap
			// must surface immediately. Verify against the queue minimum.
			if q.Len() > 0 && q.less(q.Peek(), ev) {
				t.Fatalf("trial %d: popped %v but %v still queued", trial, ev, q.Peek())
			}
			last, haveLast = ev, true
		}
		// Drain with no more pushes: now the pop sequence as a whole must
		// be (At, Seq)-sorted. (During the interleaved phase a push could
		// legitimately introduce an event earlier than the previous pop,
		// so this global check only holds from here on.)
		haveLast = false
		for q.Len() > 0 {
			ev := q.Pop()
			popped++
			if haveLast && (ev.At < last.At || (ev.At == last.At && ev.Seq <= last.Seq)) {
				t.Fatalf("trial %d: drain out of order: %v after %v", trial, ev, last)
			}
			last, haveLast = ev, true
		}
		if popped != pushed {
			t.Fatalf("trial %d: pushed %d, popped %d", trial, pushed, popped)
		}
	}
}

// --- cross-backend bit identity --------------------------------------------

// stormActor is a deterministic actor for randomized engine storms: a
// per-actor LCG decides on each tick whether to move the CPU or bus
// configuration. Two fresh instances with the same parameters replay
// the same decisions, so an event-backend cell and a fixed-backend cell
// see identical actuation sequences iff the engines tick them at the
// same boundaries in the same order — which is exactly what the test
// asserts through the phones' final state.
type stormActor struct {
	name   string
	period time.Duration
	state  uint64
	ticks  int
	nFreq  int
	nBW    int
}

func (a *stormActor) Name() string          { return a.name }
func (a *stormActor) Period() time.Duration { return a.period }

func (a *stormActor) Tick(_ time.Duration, dev platform.Device) {
	a.ticks++
	a.state = a.state*6364136223846793005 + 1442695040888963407
	switch a.state >> 61 {
	case 0, 1, 2:
		dev.SetFreqIdx(int((a.state >> 8) % uint64(a.nFreq)))
	case 3, 4:
		dev.SetBWIdx(int((a.state >> 8) % uint64(a.nBW)))
	}
}

// phoneStateJSON snapshots the complete dynamic device state as the
// checkpoint codec's canonical bytes — the strictest practical equality
// on two cells.
func phoneStateJSON(t *testing.T, ph *Phone) []byte {
	t.Helper()
	st, err := ph.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrossBackendStormBitIdentity is the work-conservation and
// monotonicity property test: randomized seeded actor storms (random
// actor counts, periods, phase offsets through the LCG) run on both
// backends with the event core's invariant enforcement enabled, and the
// complete device state plus Stats must match bit for bit.
func TestCrossBackendStormBitIdentity(t *testing.T) {
	specs := []func() *workload.Spec{workload.AngryBirds, workload.Spotify, workload.EBook}
	rng := rand.New(rand.NewSource(0xe5709))
	periods := []time.Duration{
		3 * time.Millisecond, 7 * time.Millisecond, 20 * time.Millisecond,
		50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
		time.Second, 2 * time.Second,
	}
	for trial := 0; trial < 12; trial++ {
		spec := specs[trial%len(specs)]()
		nActors := 1 + rng.Intn(4)
		seeds := make([]uint64, nActors)
		pers := make([]time.Duration, nActors)
		for i := range seeds {
			seeds[i] = rng.Uint64()
			pers[i] = periods[rng.Intn(len(periods))]
		}
		runFor := time.Duration(2+rng.Intn(8)) * time.Second

		type result struct {
			stats Stats
			state []byte
			ticks []int
		}
		run := func(be Backend) result {
			ph, err := NewPhone(Config{
				Foreground: spec, Load: workload.BaselineLoad, Seed: int64(trial),
				ScreenOn: true, WiFiOn: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngineOpts(ph, Options{Backend: be, DebugInvariants: true})
			actors := make([]*stormActor, nActors)
			for i := range actors {
				actors[i] = &stormActor{
					name: "storm", period: pers[i], state: seeds[i],
					nFreq: len(ph.SoC().CPUFreqs), nBW: len(ph.SoC().MemBWs),
				}
				eng.MustRegister(actors[i])
			}
			st := eng.Run(runFor, false)
			ticks := make([]int, nActors)
			for i, a := range actors {
				ticks[i] = a.ticks
			}
			return result{stats: st, state: phoneStateJSON(t, ph), ticks: ticks}
		}

		ev, fx := run(BackendEvent), run(BackendFixed)
		if !reflect.DeepEqual(ev.ticks, fx.ticks) {
			t.Fatalf("trial %d: tick counts diverge: event %v fixed %v", trial, ev.ticks, fx.ticks)
		}
		if ev.stats != fx.stats {
			t.Fatalf("trial %d: stats diverge:\nevent %+v\nfixed %+v", trial, ev.stats, fx.stats)
		}
		if string(ev.state) != string(fx.state) {
			t.Fatalf("trial %d: device state diverges:\nevent %s\nfixed %s", trial, ev.state, fx.state)
		}
	}
}

// TestInterruptBoundaryParity: both backends poll the interrupt at the
// same event boundaries, so an interrupt that fires on the Nth poll
// stops both cells at the identical simulated instant with identical
// Stats.
func TestInterruptBoundaryParity(t *testing.T) {
	for _, polls := range []int{1, 3, 10, 57} {
		run := func(be Backend) (time.Duration, Stats) {
			ph := newTestPhone(t, workload.AngryBirds(), workload.BaselineLoad)
			eng := NewEngineOpts(ph, Options{Backend: be, DebugInvariants: true})
			eng.MustRegister(&FixedConfigActor{FreqIdx: 4, BWIdx: 4})
			n := 0
			eng.SetInterrupt(func() bool {
				n++
				return n >= polls
			})
			st := eng.Run(30*time.Second, false)
			return ph.Now(), st
		}
		evNow, evSt := run(BackendEvent)
		fxNow, fxSt := run(BackendFixed)
		if evNow != fxNow {
			t.Fatalf("polls=%d: stop instant diverges: event %v fixed %v", polls, evNow, fxNow)
		}
		if evSt != fxSt {
			t.Fatalf("polls=%d: stats diverge:\nevent %+v\nfixed %+v", polls, evSt, fxSt)
		}
	}
}

// TestEventBackendIsDefault pins the backend-selection contract: the
// zero Options value and NewEngine select the event core, and the flag
// spellings round-trip.
func TestEventBackendIsDefault(t *testing.T) {
	ph := newTestPhone(t, workload.AngryBirds(), workload.NoLoad)
	if be := NewEngine(ph).Backend(); be != BackendEvent {
		t.Fatalf("NewEngine backend = %v, want event", be)
	}
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"", BackendEvent}, {"event", BackendEvent}, {"fixed", BackendFixed}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseBackend("warp"); err == nil {
		t.Fatal("ParseBackend(warp) should fail")
	}
	if BackendEvent.String() != "event" || BackendFixed.String() != "fixed" {
		t.Fatal("backend String() drift")
	}
}
