package sim

import (
	"fmt"
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/pmu"
)

// Actor is the platform actor contract: a periodically scheduled
// software component (governor, perf tool, controller) ticked at its
// period boundaries, before the device advances.
type Actor = platform.Actor

// DefaultStep is the engine's integration step: 1 ms, finer than every
// software period in the system (the fastest is the interactive
// governor's 20 ms timer).
const DefaultStep = time.Millisecond

// Backend selects the engine core that drives the simulation loop.
// Both backends produce bit-identical observables for the same seeded
// cell; they differ only in how they spend wall time getting there.
type Backend int

// Engine backends.
const (
	// BackendEvent is the default core: a min-heap event queue that
	// processes typed events (control-cycle ticks, governor sampling
	// windows, perf-window closes, fault firings, the run deadline) in
	// non-decreasing timestamp order and integrates the quiescent
	// intervals between them in closed form. Idle-dominated workloads
	// simulate in near-zero wall time.
	BackendEvent Backend = iota
	// BackendFixed is the original fixed-timestep loop, kept as the
	// compatibility backend the event core is golden-tested against.
	BackendFixed
)

// String returns the -engine flag spelling.
func (b Backend) String() string {
	if b == BackendFixed {
		return "fixed"
	}
	return "event"
}

// ParseBackend parses the -engine flag: "event", "fixed", or "" (the
// default, event).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "event":
		return BackendEvent, nil
	case "fixed":
		return BackendFixed, nil
	}
	return 0, fmt.Errorf("sim: unknown engine backend %q (want event or fixed)", s)
}

// Options configures engine construction.
type Options struct {
	// Step is the integration step; 0 means DefaultStep.
	Step time.Duration
	// Backend selects the engine core; the zero value is BackendEvent.
	Backend Backend
	// DebugInvariants enables the event core's invariant enforcement:
	// clock monotonicity of the event stream and the work-conserving
	// property of every span. Violations panic — they are engine bugs,
	// never data errors. Cheap enough for tests; off in production runs.
	DebugInvariants bool
}

// Engine advances a Phone and its actors in lockstep.
//
// Concurrency contract: an Engine, its Phone, its workload and every
// registered Actor form one single-threaded simulation cell — none of
// them is safe for concurrent use, and none holds global state. Parallel
// campaigns (internal/par, internal/experiment's runner) exploit exactly
// this: each goroutine constructs its own Phone/Engine/actor set ("one
// Phone per goroutine") and cells share nothing but read-only inputs
// such as workload specs and profile tables.
type Engine struct {
	phone     *Phone
	step      time.Duration
	backend   Backend
	debug     bool
	actors    []scheduled
	interrupt func() bool
	ckptHook  func()
	cursor    RunCursor

	// Event-core scratch state, rebuilt from actors[i].next at every
	// Run/Resume entry so the checkpoint machinery (CheckpointActors/
	// RestoreActors) stays backend-agnostic.
	queue eventQueue
	due   []int
}

type scheduled struct {
	actor Actor
	next  time.Duration
	kind  EventKind
}

// NewEngine creates an engine over the phone with the default step and
// backend.
func NewEngine(ph *Phone) *Engine {
	return NewEngineOpts(ph, Options{})
}

// NewEngineOpts creates an engine with explicit options.
func NewEngineOpts(ph *Phone, opt Options) *Engine {
	if opt.Step <= 0 {
		opt.Step = DefaultStep
	}
	return &Engine{phone: ph, step: opt.Step, backend: opt.Backend, debug: opt.DebugInvariants}
}

// Backend returns the engine core in use.
func (e *Engine) Backend() Backend { return e.backend }

// Phone returns the concrete device under simulation — for harnesses
// extracting simulator-only state (histograms, trace recorder).
// Platform consumers use Device instead.
func (e *Engine) Phone() *Phone { return e.phone }

// Device implements platform.Runner.
func (e *Engine) Device() platform.Device { return e.phone }

// Register adds an actor. It returns an error if the actor's period is
// not a positive multiple of the engine step.
func (e *Engine) Register(a Actor) error {
	p := a.Period()
	if p <= 0 || p%e.step != 0 {
		return fmt.Errorf("sim: actor %q period %v is not a positive multiple of step %v",
			a.Name(), p, e.step)
	}
	e.actors = append(e.actors, scheduled{actor: a, next: e.phone.Now(), kind: classifyActor(a.Name())})
	return nil
}

// MustRegister is Register but panics on error; for experiment harnesses
// with statically known periods.
func (e *Engine) MustRegister(a Actor) {
	if err := e.Register(a); err != nil {
		panic(err)
	}
}

// SetInterrupt installs a callback polled at every event boundary of
// the run — the loop points where an actor is due to tick (or the run
// is about to begin). Both backends poll at exactly the same boundaries,
// so the spacing of polls in simulated time equals the gap between
// consecutive actor deadlines: with the default session actor set that
// is the fastest registered period (20 ms under a kernel governor, 1 s
// under the controller's perf tool, up to the 2 s control quantum in a
// controller-only cell). When the callback returns true the run stops
// at that boundary, and Run's Stats cover exactly the steps that
// executed. nil clears it. The fleet runtime uses this for cooperative
// session stop; an interrupt that never fires leaves the run
// bit-identical to one without (the poll is observation only — it
// cannot touch the cell).
func (e *Engine) SetInterrupt(f func() bool) { e.interrupt = f }

// Stats summarizes a run; the definition lives in platform so every
// backend reports the same shape.
type Stats = platform.Stats

// Run advances the simulation until `until` elapses (relative to the
// current clock) or, if stopWhenFGDone, until the foreground task
// completes. It returns run statistics measured over exactly the
// interval it simulated.
func (e *Engine) Run(until time.Duration, stopWhenFGDone bool) Stats {
	ph := e.phone
	start := ph.Now()

	ph.Monitor().Start()
	instr, cycles, bus := ph.PMU().Snapshot().Values()
	cur := RunCursor{
		Start:              start,
		Deadline:           start + until,
		StopWhenFGDone:     stopWhenFGDone,
		StartInstr:         instr,
		StartCycles:        cycles,
		StartBus:           bus,
		DropsAtStart:       ph.Foreground().DroppedInstr(),
		FreqChangesAtStart: ph.FreqChanges(),
		BWChangesAtStart:   ph.BWChanges(),
	}
	return e.run(cur)
}

// Resume continues a run from a restored cursor WITHOUT re-taking
// baselines: the monitor keeps its restored accumulators (Run's Start
// would zero them) and the final Stats are still deltas against the
// original run's entry point, so a killed-and-restored run reports the
// identical Stats an uninterrupted one would.
func (e *Engine) Resume(cur RunCursor) Stats { return e.run(cur) }

// run dispatches to the selected backend core and computes the run's
// Stats over the cursor's window. Both cores share the same boundary
// semantics — loop top is the quiescent point where the interrupt and
// checkpoint hooks are polled, due actors tick in registration order,
// and the device then advances to the next actor deadline — so the
// observable trajectory is identical; they differ only in how the
// quiescent intervals are integrated.
func (e *Engine) run(cur RunCursor) Stats {
	e.cursor = cur
	if e.backend == BackendEvent {
		e.runEvent(cur)
	} else {
		e.runFixed(cur)
	}
	return e.finishRun(cur)
}

// runFixed is the compatibility core: the original fixed-timestep loop.
// Each iteration ticks every actor that is due, then hands the phone
// all the steps up to the next actor deadline (or the run deadline) at
// once. StepN fuses those steps where the workload allows; the actor
// schedule is unchanged because no actor deadline can fall inside a
// batch.
func (e *Engine) runFixed(cur RunCursor) {
	ph := e.phone
	deadline := cur.Deadline
	stopWhenFGDone := cur.StopWhenFGDone

	for ph.Now() < deadline {
		if stopWhenFGDone && ph.FGDone() {
			break
		}
		if e.interrupt != nil && e.interrupt() {
			break
		}
		if e.ckptHook != nil {
			// Loop top is the engine's quiescent point: no actor is
			// mid-tick and every actor deadline is consistent, so this is
			// the only place a checkpoint may be captured.
			e.ckptHook()
		}
		now := ph.Now()
		next := deadline
		for i := range e.actors {
			if now >= e.actors[i].next {
				e.actors[i].actor.Tick(now, ph)
				e.actors[i].next = now + e.actors[i].actor.Period()
			}
			if e.actors[i].next < next {
				next = e.actors[i].next
			}
		}
		n := int((next - now) / e.step)
		if n < 1 {
			n = 1
		}
		ph.StepN(e.step, n, stopWhenFGDone)
	}
}

// finishRun closes the measurement session and diffs the run's Stats
// against the cursor's baselines. Shared by both backend cores.
func (e *Engine) finishRun(cur RunCursor) Stats {
	ph := e.phone
	ph.Monitor().Stop()
	endSnap := ph.PMU().Snapshot()
	dur := ph.Now() - cur.Start
	instr := endSnap.Delta(pmu.SnapshotAt(cur.StartInstr, cur.StartCycles, cur.StartBus), pmu.Instructions)
	st := Stats{
		Duration:     dur,
		EnergyJ:      ph.Monitor().EnergyJ(),
		AvgPowerW:    ph.Monitor().AveragePowerW(),
		PeakPowerW:   ph.Monitor().PeakPowerW(),
		Instructions: instr,
		FGCompleted:  ph.FGDone(),
		DroppedInstr: ph.Foreground().DroppedInstr() - cur.DropsAtStart,
		FreqChanges:  ph.FreqChanges() - cur.FreqChangesAtStart,
		BWChanges:    ph.BWChanges() - cur.BWChangesAtStart,
	}
	if dur > 0 {
		st.GIPS = instr / dur.Seconds() / 1e9
	}
	return st
}

// FixedConfigActor pins the device at one configuration — the profiler's
// workhorse and the building block for `userspace`-style control in
// tests.
type FixedConfigActor struct {
	FreqIdx, BWIdx int
}

// Name implements Actor.
func (f *FixedConfigActor) Name() string { return "fixed-config" }

// Period implements Actor.
func (f *FixedConfigActor) Period() time.Duration { return 100 * time.Millisecond }

// Tick pins the configuration.
func (f *FixedConfigActor) Tick(_ time.Duration, dev platform.Device) {
	dev.SetFreqIdx(f.FreqIdx)
	dev.SetBWIdx(f.BWIdx)
}

var _ platform.Runner = (*Engine)(nil)
