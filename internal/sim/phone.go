// Package sim is the fixed-step simulation engine: a Phone that executes
// workload tasks under a chosen (CPU frequency, memory bandwidth)
// configuration, accounts core time and memory traffic, evaluates the
// power model, and exposes the same observation and actuation surfaces
// software has on the real device — sysfs files, PMU counters, load
// statistics and touch events.
package sim

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"aspeo/internal/fpacc"
	"aspeo/internal/histogram"
	"aspeo/internal/monsoon"
	"aspeo/internal/obs"
	"aspeo/internal/perfmodel"
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
	"aspeo/internal/power"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
	"aspeo/internal/trace"
	"aspeo/internal/workload"
)

// Governor names understood by the cpufreq/devfreq trees. The canonical
// definitions live in platform (they are part of the backend contract);
// these aliases keep sim's historical spelling working.
const (
	GovInteractive  = platform.GovInteractive
	GovOndemand     = platform.GovOndemand
	GovUserspace    = platform.GovUserspace
	GovPerformance  = platform.GovPerformance
	GovPowersave    = platform.GovPowersave
	GovCPUBWHwmon   = platform.GovCPUBWHwmon
	GovConservative = platform.GovConservative
)

// Config bundles phone construction options.
type Config struct {
	SoC        *soc.SoC
	Power      power.Params
	Foreground *workload.Spec
	Load       workload.BGLoad
	// ExtraBackground appends additional background tasks after the
	// load condition's standard set — the scenario layer's ambient
	// conditions (ad-burst storms, cohort-specific services). Seeded
	// deterministically in slice order, continuing the standard set's
	// seed scheme.
	ExtraBackground []*workload.Spec
	Seed            int64
	ScreenOn        bool
	WiFiOn          bool
	// Recorder decimation; 0 disables trace recording.
	TraceEvery time.Duration
}

// Phone is the simulated device.
type Phone struct {
	soc   *soc.SoC
	fs    *sysfs.FS
	model *power.Model
	pmu   *pmu.PMU
	mon   *monsoon.Monitor

	freqIdx    int
	bwIdx      int
	thermalCap int // max allowed freq index (thermal driver); -1 = none
	load       workload.BGLoad

	screenOn bool
	wifiOn   bool

	fg    *workload.Task
	bg    []*workload.Task
	tasks []*workload.Task // fg followed by bg, fixed at construction

	now time.Duration

	// K-step fusion state (StepN). fusion gates the fast path; plan
	// caches the per-step quantities of the last slow Step.
	fusion bool
	plan   stepPlan

	// Cumulative telemetry counters (governors snapshot and diff).
	cumMachineBusySec float64 // aggregate machine-busy seconds
	cumBusyCoreSec    float64 // OS-visible busy core-seconds
	cumTrafficBytes   float64
	pendingTouches    int
	freqChanges       int
	bwChanges         int
	health            platform.Health // last RecordHealth publication
	spanSink          obs.Sink        // decision-trace sink; nil drops spans

	// Per-step transient state.
	pendingOverlayJ float64 // one-shot overlay energy charged to the next step
	standingOverlay float64 // persistent overlay (perf tool power cost)
	perfOverheadCPU float64 // fraction of machine time eaten by perf

	lastPowerW    float64
	lastCPUPowerW float64
	lastStepIPS   float64

	cpuHist *histogram.Residency
	bwHist  *histogram.Residency
	rec     *trace.Recorder

	fgDropsAtStart float64
}

// NewPhone builds a phone with the foreground app and the background
// tasks of the load condition, wires the sysfs tree, and leaves the
// governors set to the Android defaults (interactive + cpubw_hwmon).
func NewPhone(cfg Config) (*Phone, error) {
	if cfg.SoC == nil {
		cfg.SoC = soc.Nexus6()
	}
	if err := cfg.SoC.Validate(); err != nil {
		return nil, err
	}
	if cfg.Foreground == nil {
		return nil, fmt.Errorf("sim: no foreground app")
	}
	if err := cfg.Foreground.Validate(); err != nil {
		return nil, err
	}
	if (cfg.Power == power.Params{}) {
		cfg.Power = power.Default()
	}
	model, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}

	p := &Phone{
		thermalCap: -1,
		soc:        cfg.SoC,
		fs:         sysfs.New(),
		model:      model,
		pmu:        pmu.New(),
		mon:        monsoon.Default(),
		load:       cfg.Load,
		screenOn:   cfg.ScreenOn,
		wifiOn:     cfg.WiFiOn,
		fg:         workload.NewTask(cfg.Foreground, cfg.Seed),
		cpuHist:    histogram.New("cpu-frequency residency", len(cfg.SoC.CPUFreqs)),
		bwHist:     histogram.New("memory-bandwidth residency", len(cfg.SoC.MemBWs)),
	}
	bgSpecs := workload.Background(cfg.Load, cfg.Foreground.Name)
	for _, spec := range cfg.ExtraBackground {
		if spec == nil {
			return nil, fmt.Errorf("sim: nil extra background spec")
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("sim: extra background: %w", err)
		}
		bgSpecs = append(bgSpecs, spec)
	}
	for i, spec := range bgSpecs {
		p.bg = append(p.bg, workload.NewTask(spec, cfg.Seed+int64(1000+i)))
	}
	p.tasks = make([]*workload.Task, 0, 1+len(p.bg))
	p.tasks = append(p.tasks, p.fg)
	p.tasks = append(p.tasks, p.bg...)
	p.fusion = os.Getenv("ASPEO_NO_FUSION") == ""
	p.plan.tasks = make([]fusedTask, 0, len(p.tasks))
	if cfg.TraceEvery > 0 {
		p.rec = trace.NewRecorder(cfg.TraceEvery)
	}
	p.buildSysfs()
	return p, nil
}

// buildSysfs registers the cpufreq/devfreq file protocol.
func (p *Phone) buildSysfs() {
	s := p.soc
	freqList := ""
	for i := range s.CPUFreqs {
		freqList += strconv.Itoa(freqKHz(s.Freq(i))) + " "
	}
	bwList := ""
	for i := range s.MemBWs {
		bwList += strconv.Itoa(int(s.BW(i).MBps())) + " "
	}

	p.fs.Create(sysfs.CPUScalingGovernor, GovInteractive, true)
	p.fs.Create(sysfs.CPUScalingSetSpeed, strconv.Itoa(freqKHz(s.Freq(0))), true)
	p.fs.Create(sysfs.CPUAvailableFreqs, freqList, false)
	p.fs.Create(sysfs.CPUAvailableGovs, "interactive ondemand conservative userspace performance powersave", false)
	p.fs.Create(sysfs.CPUScalingMinFreq, strconv.Itoa(freqKHz(s.Freq(0))), true)
	p.fs.Create(sysfs.CPUScalingMaxFreq, strconv.Itoa(freqKHz(s.Freq(len(s.CPUFreqs)-1))), true)
	p.fs.CreateDynamic(sysfs.CPUScalingCurFreq, func(string) string {
		return strconv.Itoa(freqKHz(s.Freq(p.freqIdx)))
	})
	p.fs.CreateDynamic(sysfs.CPUInfoCurFreq, func(string) string {
		return strconv.Itoa(freqKHz(s.Freq(p.freqIdx)))
	})

	p.fs.Create(sysfs.DevFreqGovernor, GovCPUBWHwmon, true)
	p.fs.Create(sysfs.DevFreqSetFreq, strconv.Itoa(int(s.BW(0).MBps())), true)
	p.fs.Create(sysfs.DevFreqAvailFreqs, bwList, false)
	p.fs.Create(sysfs.DevFreqAvailGovs, "cpubw_hwmon userspace performance powersave", false)
	p.fs.Create(sysfs.DevFreqMinFreq, strconv.Itoa(int(s.BW(0).MBps())), true)
	p.fs.Create(sysfs.DevFreqMaxFreq, strconv.Itoa(int(s.BW(len(s.MemBWs)-1).MBps())), true)
	p.fs.CreateDynamic(sysfs.DevFreqCurFreq, func(string) string {
		return strconv.Itoa(int(s.BW(p.bwIdx).MBps()))
	})

	p.fs.CreateDynamic(sysfs.ProcLoadAvg, func(string) string {
		return fmt.Sprintf("%.2f %.2f %.2f 2/812 12345", p.load.LoadAvg(), p.load.LoadAvg(), p.load.LoadAvg())
	})
	p.fs.Create(sysfs.ProcMemInfoFreeMB, strconv.Itoa(p.load.FreeMemMB()), false)
	p.fs.Create(sysfs.MPDecisionEnabled, "0", true) // hotplug disabled, as in §IV-A
	p.fs.Create(sysfs.TouchBoostEnabled, "0", true) // kernel touch boost disabled

	// Userspace actuation paths: writing setspeed applies only when the
	// matching governor is "userspace", exactly like the kernel.
	p.fs.OnWrite(sysfs.CPUScalingSetSpeed, func(_, _, val string) error {
		gov, _ := p.fs.Read(sysfs.CPUScalingGovernor)
		if gov != GovUserspace {
			return fmt.Errorf("scaling_setspeed: governor is %q, not userspace", gov)
		}
		khz, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scaling_setspeed: %w", err)
		}
		p.SetFreqIdx(p.soc.NearestFreqIdx(soc.Freq(float64(khz) / 1e6)))
		return nil
	})
	p.fs.OnWrite(sysfs.DevFreqSetFreq, func(_, _, val string) error {
		gov, _ := p.fs.Read(sysfs.DevFreqGovernor)
		if gov != GovUserspace {
			return fmt.Errorf("devfreq set_freq: governor is %q, not userspace", gov)
		}
		mbps, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("devfreq set_freq: %w", err)
		}
		p.SetBWIdx(p.soc.NearestBWIdx(soc.Bandwidth(mbps)))
		return nil
	})
}

// freqKHz converts a ladder frequency to the kHz integer cpufreq uses.
func freqKHz(f soc.Freq) int { return int(f.GHz()*1e6 + 0.5) }

// --- Accessors ---

// SoC returns the chip description.
func (p *Phone) SoC() *soc.SoC { return p.soc }

// FS returns the sysfs tree.
func (p *Phone) FS() *sysfs.FS { return p.fs }

// PMU returns the hardware counters.
func (p *Phone) PMU() *pmu.PMU { return p.pmu }

// Monitor returns the attached power monitor.
func (p *Phone) Monitor() *monsoon.Monitor { return p.mon }

// Now returns the simulation clock.
func (p *Phone) Now() time.Duration { return p.now }

// CurFreqIdx returns the current CPU frequency ladder index.
func (p *Phone) CurFreqIdx() int { return p.freqIdx }

// CurBWIdx returns the current bandwidth ladder index.
func (p *Phone) CurBWIdx() int { return p.bwIdx }

// Foreground returns the foreground task.
func (p *Phone) Foreground() *workload.Task { return p.fg }

// BackgroundTasks returns the background tasks.
func (p *Phone) BackgroundTasks() []*workload.Task { return p.bg }

// CPUHistogram returns the CPU-frequency residency accumulated so far.
func (p *Phone) CPUHistogram() *histogram.Residency { return p.cpuHist }

// BWHistogram returns the bandwidth residency accumulated so far.
func (p *Phone) BWHistogram() *histogram.Residency { return p.bwHist }

// Recorder returns the trace recorder (nil when tracing is disabled).
func (p *Phone) Recorder() *trace.Recorder { return p.rec }

// FreqChanges returns how many CPU frequency transitions happened.
func (p *Phone) FreqChanges() int { return p.freqChanges }

// BWChanges returns how many bandwidth transitions happened.
func (p *Phone) BWChanges() int { return p.bwChanges }

// LastPowerW returns the device power of the last step.
func (p *Phone) LastPowerW() float64 { return p.lastPowerW }

// LastStepGIPS returns the instantaneous performance of the last step.
func (p *Phone) LastStepGIPS() float64 { return p.lastStepIPS / 1e9 }

// --- Actuation (governors and sysfs hooks call these) ---

// SetFreqIdx changes the CPU frequency (all four cores, as in §IV-A).
// A thermal cap, when set, bounds the request like the kernel's thermal
// driver bounding policy->max.
func (p *Phone) SetFreqIdx(i int) {
	i = p.soc.ClampFreqIdx(i)
	if p.thermalCap >= 0 && i > p.thermalCap {
		i = p.thermalCap
	}
	if i != p.freqIdx {
		p.freqIdx = i
		p.freqChanges++
		// Paper §V-A1 reports a 14 mW average actuation overhead while
		// the controller runs (a handful of transitions per 2 s cycle);
		// that corresponds to a few millijoules per transition.
		p.pendingOverlayJ += 5e-3
	}
}

// SetBWIdx changes the memory bandwidth vote.
func (p *Phone) SetBWIdx(i int) {
	i = p.soc.ClampBWIdx(i)
	if i != p.bwIdx {
		p.bwIdx = i
		p.bwChanges++
	}
}

// SetThermalCapIdx bounds the CPU frequency to ladder index i (the
// thermal driver's mitigation); pass a negative value to lift the cap.
// An active cap is applied immediately.
func (p *Phone) SetThermalCapIdx(i int) {
	if i < 0 {
		p.thermalCap = -1
		return
	}
	p.thermalCap = p.soc.ClampFreqIdx(i)
	if p.freqIdx > p.thermalCap {
		p.SetFreqIdx(p.thermalCap)
	}
}

// ThermalCapIdx returns the active cap, or -1 when none.
func (p *Phone) ThermalCapIdx() int { return p.thermalCap }

// LastCPUPowerW returns the CPU component (dynamic + leakage) of the last
// step's power — the heat source for thermal models.
func (p *Phone) LastCPUPowerW() float64 { return p.lastCPUPowerW }

// AddOverlayEnergyJ charges a one-shot instrumentation energy cost
// (controller compute, actuation) to the next step.
func (p *Phone) AddOverlayEnergyJ(j float64) {
	if j > 0 {
		p.pendingOverlayJ += j
	}
}

// SetStandingOverlayW sets a persistent instrumentation power draw
// (e.g. the perf tool's sampling cost).
func (p *Phone) SetStandingOverlayW(w float64) { p.standingOverlay = w }

// SetPerfOverheadFrac reserves a fraction of machine time for the perf
// tool's own computation (40% at a 100 ms sampling period, 4% at 1 s —
// paper §IV-B).
func (p *Phone) SetPerfOverheadFrac(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 0.9 {
		f = 0.9
	}
	p.perfOverheadCPU = f
}

// --- Telemetry (governors snapshot and diff) ---

// CumMachineBusySec returns cumulative aggregate machine-busy seconds —
// the basis for the load the governors compute.
func (p *Phone) CumMachineBusySec() float64 { return p.cumMachineBusySec }

// CumBusyCoreSec returns cumulative OS-visible busy core-seconds.
func (p *Phone) CumBusyCoreSec() float64 { return p.cumBusyCoreSec }

// CumTrafficBytes returns cumulative DRAM traffic.
func (p *Phone) CumTrafficBytes() float64 { return p.cumTrafficBytes }

// RecordHealth stores the control software's latest health ledger.
// Observation only: it does not touch the simulation state.
func (p *Phone) RecordHealth(h platform.Health) { p.health = h }

// LastHealth returns the most recently recorded health ledger.
func (p *Phone) LastHealth() platform.Health { return p.health }

// AttachSpanSink installs the decision-trace sink RecordSpan forwards
// to; nil detaches it. Observation only — attaching a sink never alters
// the simulation's trajectory.
func (p *Phone) AttachSpanSink(s obs.Sink) { p.spanSink = s }

// RecordSpan forwards a decision-trace span to the attached sink, or
// drops it when none is attached (platform.Telemetry).
func (p *Phone) RecordSpan(s obs.Span) {
	if p.spanSink != nil {
		p.spanSink.Emit(s)
	}
}

// TakeTouches drains and returns pending input events.
func (p *Phone) TakeTouches() int {
	n := p.pendingTouches
	p.pendingTouches = 0
	return n
}

// FGDone reports whether the foreground task completed.
func (p *Phone) FGDone() bool { return p.fg.Done() }

// --- Simulation step ---

// Step advances the device by dt: tasks demand work, the machine executes
// within its capacity at the current configuration, and power/energy/
// telemetry are accounted.
//
// Besides advancing the device, Step captures a step plan: the per-step
// quantities it just computed, which StepN's fast path replays verbatim
// while the workload's FuseBound contract proves they cannot change.
func (p *Phone) Step(dt time.Duration) {
	s := p.soc
	f := s.Freq(p.freqIdx)
	v := s.Voltage(p.freqIdx)
	bw := s.BW(p.bwIdx)
	dtSec := dt.Seconds()

	// The perf tool eats a slice of the machine before apps run.
	avail := dtSec * (1 - p.perfOverheadCPU)
	perfBusy := dtSec * p.perfOverheadCPU

	pressure := p.load.BPIPressure()
	var (
		machineUsed  = perfBusy
		activeSec    = perfBusy // perf's own work is compute
		stalledSec   float64
		trafficBytes float64
		instrRetired float64
		auxW         float64
		netBps       float64
	)

	// A step is plan-capturable only when nothing transient is in play:
	// no one-shot overlay energy and no full-rate trace recording (the
	// recorder must see every step individually).
	capture := p.fusion && p.rec == nil && p.pendingOverlayJ == 0
	p.plan.valid = false
	if capture {
		p.plan.tasks = p.plan.tasks[:0]
	}

	touchesBefore := p.pendingTouches

	for _, task := range p.tasks {
		if task.Done() {
			if capture {
				p.plan.tasks = append(p.plan.tasks, fusedTask{task: task, sp: workload.StepPlan{Done: true}})
			}
			continue
		}
		d := task.Demand(dt)
		tr := d.Traits
		tr.BPI *= pressure
		spi := tr.SecPerInstr(s, f, bw)
		maxInstr := avail / spi
		exec := d.WantedInstr
		if exec > maxInstr {
			exec = maxInstr
		}
		acc := tr.Execute(s, f, bw, exec)
		wall := exec * spi
		avail -= wall
		machineUsed += wall
		activeSec += acc.ActiveSec
		stalledSec += acc.StalledSec
		trafficBytes += acc.TrafficBytes
		instrRetired += exec
		auxW += d.AuxBaseW + d.AuxWPerGIPS*(exec/dtSec)/1e9
		netBps += d.NetBps
		if capture {
			p.plan.tasks = append(p.plan.tasks, fusedTask{
				task: task,
				sp: workload.StepPlan{
					Exec:     exec,
					MaxInstr: maxInstr,
					Served:   exec == d.WantedInstr,
					PhaseIdx: task.PhaseIndex(),
				},
				touch: task.TouchActive(),
			})
		}
		task.Advance(exec, dt)
		p.pendingTouches += task.Touches(dt)
		if avail <= 0 {
			avail = 0
		}
	}

	// Traffic cannot exceed the provisioned bus bandwidth; speculative
	// prefetches beyond it are simply dropped.
	if maxBytes := bw.BytesPerSec() * dtSec; trafficBytes > maxBytes {
		trafficBytes = maxBytes
	}

	// Clamp OS-visible core time to physical cores.
	maxCoreSec := float64(s.NumCores) * dtSec
	if activeSec+stalledSec > maxCoreSec {
		scale := maxCoreSec / (activeSec + stalledSec)
		activeSec *= scale
		stalledSec *= scale
	}

	in := power.Input{
		FreqGHz:        f.GHz(),
		Voltage:        v,
		ActiveCoreSec:  activeSec / dtSec,
		StalledCoreSec: stalledSec / dtSec,
		CoresOnline:    s.NumCores,
		BWMBps:         bw.MBps(),
		TrafficBps:     trafficBytes / dtSec,
		ScreenOn:       p.screenOn,
		WiFiOn:         p.wifiOn,
		WiFiBps:        netBps,
		AuxW:           auxW,
		OverlayW:       p.standingOverlay + p.pendingOverlayJ/dtSec,
	}
	bd := p.model.Compute(in)
	p.lastPowerW = bd.Total()
	p.lastCPUPowerW = bd.CPUDynamic + bd.CPULeak
	p.pendingOverlayJ = 0

	p.pmu.Add(pmu.Instructions, instrRetired)
	p.pmu.Add(pmu.Cycles, activeSec*f.Hz())
	p.pmu.Add(pmu.BusAccessBytes, trafficBytes)

	p.cumMachineBusySec += machineUsed
	p.cumBusyCoreSec += activeSec + stalledSec
	p.cumTrafficBytes += trafficBytes
	p.lastStepIPS = instrRetired / dtSec

	p.cpuHist.Add(p.freqIdx, dt)
	p.bwHist.Add(p.bwIdx, dt)
	p.mon.Observe(p.lastPowerW, dt)
	if p.rec != nil {
		// T is the step's start time; the cumulative counters are their
		// values AFTER the step — i.e. the PMU/telemetry state an actor
		// observes at time T+dt. Replay backends rely on this offset.
		p.rec.Observe(trace.Point{
			T: p.now, FreqIdx: p.freqIdx, BWIdx: p.bwIdx,
			PowerW: p.lastPowerW, GIPS: p.lastStepIPS / 1e9,
			CPUPowerW:       p.lastCPUPowerW,
			CumInstr:        p.pmu.Read(pmu.Instructions),
			CumBusySec:      p.cumMachineBusySec,
			CumCoreSec:      p.cumBusyCoreSec,
			CumTrafficBytes: p.cumTrafficBytes,
			Touches:         p.pendingTouches - touchesBefore,
		})
	}
	p.now += dt

	if capture {
		p.plan.valid = true
		p.plan.dt = dt
		p.plan.freqIdx = p.freqIdx
		p.plan.bwIdx = p.bwIdx
		p.plan.perfFrac = p.perfOverheadCPU
		p.plan.standingW = p.standingOverlay
		p.plan.machineUsed = machineUsed
		p.plan.coreSec = activeSec + stalledSec
		p.plan.traffic = trafficBytes
		p.plan.instr = instrRetired
		p.plan.cycles = activeSec * f.Hz()
		p.plan.powerW = p.lastPowerW
	}
}

// --- K-step fusion (fast path) ---

// fusedTask is one task's slice of the cached step plan.
type fusedTask struct {
	task  *workload.Task
	sp    workload.StepPlan
	touch bool // captured phase generates touch events (consumes rng)
}

// stepPlan caches what the last slow Step computed, so fastSteps can
// replay it. Replay is bit-identical because every input that fed the
// computation is provably unchanged: the configuration and overlay
// fields below are revalidated before each batch, and each task's
// FuseBound proves its demand cannot change for the batch length.
type stepPlan struct {
	valid   bool
	dt      time.Duration
	freqIdx int
	bwIdx   int
	// Device-side inputs the plan depends on.
	perfFrac  float64
	standingW float64
	// Per-step accumulator deltas (already clamped).
	machineUsed float64
	coreSec     float64
	traffic     float64
	instr       float64
	cycles      float64
	powerW      float64
	tasks       []fusedTask
}

// SetStepFusion enables or disables the K-step fused fast path. Fusion
// is on by default (or off when the ASPEO_NO_FUSION environment variable
// is set); results are bit-identical either way — the knob exists so
// tests and benchmarks can prove exactly that.
func (p *Phone) SetStepFusion(on bool) {
	p.fusion = on
	p.plan.valid = false
}

// StepFusion reports whether the fused fast path is enabled.
func (p *Phone) StepFusion() bool { return p.fusion }

// planReady reports whether the cached plan may be replayed for steps of
// dt under the current device state.
func (p *Phone) planReady(dt time.Duration) bool {
	pl := &p.plan
	return pl.valid && p.fusion && p.rec == nil &&
		pl.dt == dt &&
		pl.freqIdx == p.freqIdx && pl.bwIdx == p.bwIdx &&
		pl.perfFrac == p.perfOverheadCPU && pl.standingW == p.standingOverlay &&
		p.pendingOverlayJ == 0
}

// planBudget returns how many steps (≤ limit) the plan can be replayed
// before any task's demand could change; 0 sends the next step down the
// slow path.
func (p *Phone) planBudget(dt time.Duration, limit int) int {
	k := limit
	for i := range p.plan.tasks {
		ft := &p.plan.tasks[i]
		if ft.sp.Done {
			if !ft.task.Done() {
				return 0
			}
			continue
		}
		b := ft.task.FuseBound(ft.sp, dt)
		if b <= 0 {
			return 0
		}
		if b < k {
			k = b
		}
	}
	return k
}

// fastSteps replays the cached plan for k steps. Bit-identity with k
// slow steps holds per task: AdvanceN repeats the identical executed
// amount with sequential floating-point accumulation, touch draws happen
// in step order from the same per-task rng stream, and a phase
// transition can only occur on the batch's final step (FuseBound bounds
// the batch to end there).
func (p *Phone) fastSteps(dt time.Duration, k int) {
	pl := &p.plan
	for i := range pl.tasks {
		ft := &pl.tasks[i]
		if ft.sp.Done {
			continue
		}
		t := ft.task
		if ft.touch {
			// Touch draws must interleave with advances step by step.
			for j := 0; j < k; j++ {
				t.Advance(ft.sp.Exec, dt)
				p.pendingTouches += t.Touches(dt)
			}
		} else {
			// No rng use before the final step; the final step may
			// transition into a phase that does generate touches, in
			// which case the slow path would have drawn for it.
			t.AdvanceN(ft.sp.Exec, dt, k-1)
			t.Advance(ft.sp.Exec, dt)
			if t.TouchActive() {
				p.pendingTouches += t.Touches(dt)
			}
		}
	}
	for i := 0; i < k; i++ {
		p.cumMachineBusySec += pl.machineUsed
		p.cumBusyCoreSec += pl.coreSec
		p.cumTrafficBytes += pl.traffic
	}
	kd := time.Duration(k) * dt
	p.cpuHist.Add(p.freqIdx, kd)
	p.bwHist.Add(p.bwIdx, kd)
	p.pmu.AddN(pmu.Instructions, pl.instr, k)
	p.pmu.AddN(pmu.Cycles, pl.cycles, k)
	p.pmu.AddN(pmu.BusAccessBytes, pl.traffic, k)
	p.mon.ObserveN(pl.powerW, dt, k)
	p.now += kd
}

// StepN advances the device by n steps of dt, replaying the cached step
// plan in fused batches where the workload's FuseBound contract proves
// the result is bit-identical to n individual Step calls, and falling
// back to Step everywhere else. When stopWhenFGDone is set it returns as
// soon as the step that completed the foreground task finishes, exactly
// where a step-at-a-time caller would stop. It returns the number of
// steps executed.
func (p *Phone) StepN(dt time.Duration, n int, stopWhenFGDone bool) int {
	ran := 0
	for ran < n {
		if p.planReady(dt) {
			if k := p.planBudget(dt, n-ran); k > 0 {
				p.fastSteps(dt, k)
				ran += k
				if stopWhenFGDone && p.fg.Done() {
					return ran
				}
				continue
			}
		}
		p.Step(dt)
		ran++
		if stopWhenFGDone && p.fg.Done() {
			return ran
		}
	}
	return ran
}

// --- Variable-length span fast-forward (event-queue backend) ---

// spanBudget is planBudget under the workload's SpanBound contract: how
// many steps (≤ limit) the cached plan can be replayed before any
// task's demand could change. SpanBound grants the event backend one
// extra liberty over FuseBound — jitter-free served paced phases run to
// their phase boundary instead of stopping at every (no-op) jitter
// resample deadline.
func (p *Phone) spanBudget(dt time.Duration, limit int) int {
	k := limit
	for i := range p.plan.tasks {
		ft := &p.plan.tasks[i]
		if ft.sp.Done {
			if !ft.task.Done() {
				return 0
			}
			continue
		}
		b := ft.task.SpanBound(ft.sp, dt)
		if b <= 0 {
			return 0
		}
		if b < k {
			k = b
		}
	}
	return k
}

// fastForwardSpan replays the cached plan for k steps like fastSteps,
// but integrates the per-step accumulations in closed form: task state
// through workload.AdvanceSpan, PMU counters through pmu.AddSpan, the
// power monitor through monsoon.ObserveSpan, and the phone's cumulative
// telemetry through fpacc.AddK — each bit-identical to its sequential
// loop. Tasks whose phase draws touch randomness still advance step by
// step (the rng interleaving is part of the contract).
func (p *Phone) fastForwardSpan(dt time.Duration, k int) {
	pl := &p.plan
	for i := range pl.tasks {
		ft := &pl.tasks[i]
		if ft.sp.Done {
			continue
		}
		t := ft.task
		if ft.touch {
			for j := 0; j < k; j++ {
				t.Advance(ft.sp.Exec, dt)
				p.pendingTouches += t.Touches(dt)
			}
		} else {
			t.AdvanceSpan(ft.sp.Exec, dt, k)
			if t.TouchActive() {
				p.pendingTouches += t.Touches(dt)
			}
		}
	}
	p.cumMachineBusySec = fpacc.AddK(p.cumMachineBusySec, pl.machineUsed, k)
	p.cumBusyCoreSec = fpacc.AddK(p.cumBusyCoreSec, pl.coreSec, k)
	p.cumTrafficBytes = fpacc.AddK(p.cumTrafficBytes, pl.traffic, k)
	kd := time.Duration(k) * dt
	p.cpuHist.Add(p.freqIdx, kd)
	p.bwHist.Add(p.bwIdx, kd)
	p.pmu.AddSpan(pmu.Instructions, pl.instr, k)
	p.pmu.AddSpan(pmu.Cycles, pl.cycles, k)
	p.pmu.AddSpan(pmu.BusAccessBytes, pl.traffic, k)
	p.mon.ObserveSpan(pl.powerW, dt, k)
	p.now += kd
}

// StepSpan is StepN for the event-queue backend: it advances the device
// by n steps of dt, bit-identically to n individual Step calls, but
// integrates fused spans in closed form so an idle quiescent interval
// costs O(log n) instead of O(n). Workload-phase transitions inside the
// interval surface as derived micro-events: each span is bounded at the
// next phase boundary, and the slow Step that follows re-plans from the
// new phase. Returns the number of steps executed (early exit on
// foreground completion, like StepN).
func (p *Phone) StepSpan(dt time.Duration, n int, stopWhenFGDone bool) int {
	ran := 0
	for ran < n {
		if p.planReady(dt) {
			if k := p.spanBudget(dt, n-ran); k > 0 {
				p.fastForwardSpan(dt, k)
				ran += k
				if stopWhenFGDone && p.fg.Done() {
					return ran
				}
				continue
			}
		}
		p.Step(dt)
		ran++
		if stopWhenFGDone && p.fg.Done() {
			return ran
		}
	}
	return ran
}

// traitsOfForeground is a test hook exposing the foreground's current
// traits with load pressure applied.
func (p *Phone) traitsOfForeground() perfmodel.Traits {
	tr := p.fg.Phase().Traits
	tr.BPI *= p.load.BPIPressure()
	return tr
}
