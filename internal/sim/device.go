package sim

import (
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
	"aspeo/internal/sysfs"
)

// This file is the thin adapter making Phone a platform.Device. Most of
// the capability surface (Clock, PowerMeter, ConfigActuator, Telemetry)
// is Phone's native method set; the handful of methods below bridge the
// remaining naming/shape gaps so consumers never need the concrete
// *Phone, *pmu.PMU or *sysfs.FS types.

var (
	_ platform.Device      = (*Phone)(nil)
	_ platform.BatchWriter = (*Phone)(nil)
)

// PMUSnapshot implements platform.PerfReader.
func (p *Phone) PMUSnapshot() pmu.Snapshot { return p.pmu.Snapshot() }

// SetPerfOverhead implements platform.PerfReader: the sampling tool's
// standing CPU and power cost, charged to the simulated device.
func (p *Phone) SetPerfOverhead(cpuFrac, standingW float64) {
	p.SetPerfOverheadFrac(cpuFrac)
	p.SetStandingOverlayW(standingW)
}

// ReadFile implements platform.SysfsView.
func (p *Phone) ReadFile(path string) (string, error) { return p.fs.Read(path) }

// WriteFile implements platform.SysfsView (userspace write semantics:
// permissions and hooks apply).
func (p *Phone) WriteFile(path, value string) error { return p.fs.Write(path, value) }

// WriteFiles implements platform.BatchWriter: sequential WriteFile
// semantics under one call, first error aborts. The controller's
// actuator batches one dwell slot's cpufreq+devfreq writes through it.
func (p *Phone) WriteFiles(writes []platform.FileWrite) error {
	for _, w := range writes {
		if err := p.fs.Write(w.Path, w.Value); err != nil {
			return err
		}
	}
	return nil
}

// SetFile implements platform.SysfsView (root semantics: hooks and
// permissions bypassed).
func (p *Phone) SetFile(path, value string) { p.fs.Set(path, value) }

// FileExists implements platform.SysfsView.
func (p *Phone) FileExists(path string) bool { return p.fs.Exists(path) }

// CreateFile implements platform.SysfsView.
func (p *Phone) CreateFile(path, initial string, writable bool, hook sysfs.WriteHook) {
	p.fs.Create(path, initial, writable)
	if hook != nil {
		p.fs.OnWrite(path, hook)
	}
}
