package sim

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/governor"
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
	"aspeo/internal/workload"
)

// fusionCell builds one simulation cell (phone + engine + default
// governors) with step fusion forced on or off.
func fusionCell(t *testing.T, spec *workload.Spec, load workload.BGLoad, seed int64, fused bool) (*Phone, *Engine) {
	t.Helper()
	ph, err := NewPhone(Config{
		Foreground: spec, Load: load, Seed: seed,
		ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ph.SetStepFusion(fused)
	eng := NewEngine(ph)
	if err := governor.Defaults(eng); err != nil {
		t.Fatal(err)
	}
	return ph, eng
}

// eqf compares floats for exact bit-level equality (the fusion contract
// is bit-identity, not approximate equality).
func eqf(t *testing.T, what string, fused, slow float64) {
	t.Helper()
	if math.Float64bits(fused) != math.Float64bits(slow) {
		t.Errorf("%s diverged: fused %v (%x) vs slow %v (%x)",
			what, fused, math.Float64bits(fused), slow, math.Float64bits(slow))
	}
}

// TestStepFusionBitIdentity runs every evaluated app under the default
// governors twice — once with the fused fast path, once step-at-a-time —
// and requires every observable quantity to match bit for bit. This is
// the test that guards the FuseBound contract: the recorded-trace
// goldens cannot catch fusion bugs because recorded runs always take the
// slow path.
func TestStepFusionBitIdentity(t *testing.T) {
	specs := append(workload.Evaluated(), workload.EBook())
	for _, spec := range specs {
		for _, load := range []workload.BGLoad{workload.BaselineLoad, workload.HeavierLoad} {
			spec, load := spec, load
			t.Run(spec.Name+"/"+load.String(), func(t *testing.T) {
				t.Parallel()
				const runFor = 30 * time.Second
				phF, engF := fusionCell(t, spec, load, 707, true)
				phS, engS := fusionCell(t, spec, load, 707, false)
				stF := engF.Run(runFor, true)
				stS := engS.Run(runFor, true)

				if stF != stS {
					t.Errorf("stats diverged:\nfused %+v\nslow  %+v", stF, stS)
				}
				if phF.Now() != phS.Now() {
					t.Errorf("clock diverged: %v vs %v", phF.Now(), phS.Now())
				}
				for _, c := range []pmu.Counter{pmu.Instructions, pmu.Cycles, pmu.BusAccessBytes} {
					eqf(t, "pmu "+c.String(), phF.PMU().Read(c), phS.PMU().Read(c))
				}
				eqf(t, "energy", phF.Monitor().EnergyJ(), phS.Monitor().EnergyJ())
				eqf(t, "avg power", phF.Monitor().AveragePowerW(), phS.Monitor().AveragePowerW())
				eqf(t, "peak power", phF.Monitor().PeakPowerW(), phS.Monitor().PeakPowerW())
				if phF.Monitor().Samples() != phS.Monitor().Samples() {
					t.Errorf("monsoon samples diverged: %d vs %d",
						phF.Monitor().Samples(), phS.Monitor().Samples())
				}
				eqf(t, "cum busy", phF.CumMachineBusySec(), phS.CumMachineBusySec())
				eqf(t, "cum core", phF.CumBusyCoreSec(), phS.CumBusyCoreSec())
				eqf(t, "cum traffic", phF.CumTrafficBytes(), phS.CumTrafficBytes())
				eqf(t, "fg executed", phF.Foreground().TotalExecuted(), phS.Foreground().TotalExecuted())
				eqf(t, "fg dropped", phF.Foreground().DroppedInstr(), phS.Foreground().DroppedInstr())
				bgF, bgS := phF.BackgroundTasks(), phS.BackgroundTasks()
				for i := range bgF {
					eqf(t, "bg executed", bgF[i].TotalExecuted(), bgS[i].TotalExecuted())
					eqf(t, "bg dropped", bgF[i].DroppedInstr(), bgS[i].DroppedInstr())
					if bgF[i].Now() != bgS[i].Now() {
						t.Errorf("bg %d clock diverged", i)
					}
				}
				for i := 0; i < phF.CPUHistogram().Len(); i++ {
					eqf(t, "cpu residency", phF.CPUHistogram().Percent(i), phS.CPUHistogram().Percent(i))
				}
				for i := 0; i < phF.BWHistogram().Len(); i++ {
					eqf(t, "bw residency", phF.BWHistogram().Percent(i), phS.BWHistogram().Percent(i))
				}
				if phF.TakeTouches() != phS.TakeTouches() {
					t.Error("pending touches diverged")
				}
			})
		}
	}
}

// TestStepFusionConfigChurn exercises plan invalidation: an actor that
// rewrites the configuration on a fixed cadence must leave fused and
// slow runs identical, including the overlay energy charged per freq
// transition.
func TestStepFusionConfigChurn(t *testing.T) {
	run := func(fused bool) (Stats, *Phone) {
		ph, err := NewPhone(Config{
			Foreground: workload.EBook(), Load: workload.BaselineLoad, Seed: 99,
			ScreenOn: true, WiFiOn: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ph.SetStepFusion(fused)
		eng := NewEngine(ph)
		eng.MustRegister(&churnActor{})
		st := eng.Run(20*time.Second, false)
		return st, ph
	}
	stF, phF := run(true)
	stS, phS := run(false)
	if stF != stS {
		t.Errorf("stats diverged:\nfused %+v\nslow  %+v", stF, stS)
	}
	eqf(t, "energy", phF.Monitor().EnergyJ(), phS.Monitor().EnergyJ())
	eqf(t, "instr", phF.PMU().Read(pmu.Instructions), phS.PMU().Read(pmu.Instructions))
}

// churnActor cycles the configuration every 300 ms, hitting freq/bw
// transitions (which invalidate the step plan and charge overlay energy)
// in the middle of would-be fused stretches.
type churnActor struct{ n int }

func (c *churnActor) Name() string          { return "churn" }
func (c *churnActor) Period() time.Duration { return 300 * time.Millisecond }
func (c *churnActor) Tick(_ time.Duration, dev platform.Device) {
	c.n++
	dev.SetFreqIdx(c.n * 5 % 18)
	dev.SetBWIdx(c.n * 3 % 11)
	if c.n%4 == 0 {
		dev.AddOverlayEnergyJ(0.01)
	}
}
