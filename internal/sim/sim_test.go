package sim

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/power"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

func newTestPhone(t *testing.T, spec *workload.Spec, load workload.BGLoad) *Phone {
	t.Helper()
	ph, err := NewPhone(Config{
		Foreground: spec, Load: load, Seed: 1, ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ph
}

func TestNewPhoneValidation(t *testing.T) {
	if _, err := NewPhone(Config{}); err == nil {
		t.Fatal("no foreground should fail")
	}
	bad := workload.AngryBirds()
	bad.Phases = nil
	if _, err := NewPhone(Config{Foreground: bad}); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

func TestDefaultsToNexus6AndDefaultGovernors(t *testing.T) {
	ph := newTestPhone(t, workload.AngryBirds(), workload.BaselineLoad)
	if got := ph.SoC().Name; got != "snapdragon805-nexus6" {
		t.Fatalf("SoC = %s", got)
	}
	gov, err := ph.FS().Read(sysfs.CPUScalingGovernor)
	if err != nil || gov != GovInteractive {
		t.Fatalf("cpu governor = %q, %v", gov, err)
	}
	gov, err = ph.FS().Read(sysfs.DevFreqGovernor)
	if err != nil || gov != GovCPUBWHwmon {
		t.Fatalf("devfreq governor = %q, %v", gov, err)
	}
}

func TestCapacityBoundExecution(t *testing.T) {
	// At the lowest configuration AngryBirds is choked to its base
	// speed: measured GIPS ≈ 0.129 plus a little background work.
	ph := newTestPhone(t, workload.AngryBirds(), workload.NoLoad)
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 0, BWIdx: 0})
	st := eng.Run(20*time.Second, false)
	if st.GIPS < 0.10 || st.GIPS > 0.16 {
		t.Fatalf("GIPS at min config = %.4f, want ≈0.129 (capacity bound)", st.GIPS)
	}
	if st.DroppedInstr == 0 {
		t.Fatal("choked game must drop frames")
	}
}

func TestDemandBoundExecution(t *testing.T) {
	// At a high configuration the game only takes what it demands
	// (~0.36 GIPS average), far below capacity.
	ph := newTestPhone(t, workload.AngryBirds(), workload.NoLoad)
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 9, BWIdx: 12})
	st := eng.Run(30*time.Second, false)
	if st.GIPS < 0.28 || st.GIPS > 0.48 {
		t.Fatalf("GIPS at high config = %.4f, want ≈0.36 (demand bound)", st.GIPS)
	}
}

func TestHigherConfigMorePowerSamePacedWork(t *testing.T) {
	run := func(fi, bi int) Stats {
		ph := newTestPhone(t, workload.MXPlayer(), workload.NoLoad)
		eng := NewEngine(ph)
		eng.MustRegister(&FixedConfigActor{FreqIdx: fi, BWIdx: bi})
		return eng.Run(20*time.Second, false)
	}
	lo := run(6, 2)
	hi := run(17, 12)
	if hi.AvgPowerW <= lo.AvgPowerW {
		t.Fatalf("overprovisioning must cost power: lo=%.3f hi=%.3f", lo.AvgPowerW, hi.AvgPowerW)
	}
	// Paced demand met in both cases → similar GIPS.
	if math.Abs(hi.GIPS-lo.GIPS) > 0.15*lo.GIPS {
		t.Fatalf("paced GIPS should match: lo=%.3f hi=%.3f", lo.GIPS, hi.GIPS)
	}
}

func TestBatchRunsToCompletionFasterAtHigherConfig(t *testing.T) {
	run := func(fi, bi int) Stats {
		ph := newTestPhone(t, workload.VidCon(), workload.NoLoad)
		eng := NewEngine(ph)
		eng.MustRegister(&FixedConfigActor{FreqIdx: fi, BWIdx: bi})
		return eng.Run(900*time.Second, true)
	}
	hi := run(17, 7)
	lo := run(8, 7)
	if !hi.FGCompleted {
		t.Fatal("VidCon did not complete at max frequency")
	}
	if !lo.FGCompleted {
		t.Fatal("VidCon did not complete at frequency 9")
	}
	if hi.Duration >= lo.Duration {
		t.Fatalf("batch must finish faster at higher frequency: %v vs %v", hi.Duration, lo.Duration)
	}
	// Sanity: at max config the conversion should take tens of seconds,
	// like the paper's 59 s default run.
	if hi.Duration < 30*time.Second || hi.Duration > 120*time.Second {
		t.Fatalf("VidCon at max config took %v, want ≈1 minute", hi.Duration)
	}
}

func TestUserspaceSysfsActuation(t *testing.T) {
	ph := newTestPhone(t, workload.AngryBirds(), workload.NoLoad)
	fs := ph.FS()
	// Writing setspeed under the default governor is rejected.
	if err := fs.Write(sysfs.CPUScalingSetSpeed, "1497600"); err == nil {
		t.Fatal("setspeed must be rejected while governor != userspace")
	}
	if err := fs.Write(sysfs.CPUScalingGovernor, GovUserspace); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(sysfs.CPUScalingSetSpeed, "1497600"); err != nil {
		t.Fatal(err)
	}
	if got := ph.CurFreqIdx(); got != 9 {
		t.Fatalf("freq idx = %d, want 9 (1.4976 GHz)", got)
	}
	if got, _ := fs.Read(sysfs.CPUScalingCurFreq); got != "1497600" {
		t.Fatalf("scaling_cur_freq = %q", got)
	}

	if err := fs.Write(sysfs.DevFreqSetFreq, "3051"); err == nil {
		t.Fatal("devfreq set_freq must be rejected while governor != userspace")
	}
	if err := fs.Write(sysfs.DevFreqGovernor, GovUserspace); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(sysfs.DevFreqSetFreq, "3051"); err != nil {
		t.Fatal(err)
	}
	if got := ph.CurBWIdx(); got != 4 {
		t.Fatalf("bw idx = %d, want 4 (3051 MBps)", got)
	}
}

func TestSetSpeedRejectsGarbage(t *testing.T) {
	ph := newTestPhone(t, workload.AngryBirds(), workload.NoLoad)
	fs := ph.FS()
	fs.Write(sysfs.CPUScalingGovernor, GovUserspace)
	if err := fs.Write(sysfs.CPUScalingSetSpeed, "fast"); err == nil {
		t.Fatal("non-numeric setspeed must be rejected")
	}
}

func TestTelemetryCountersAdvance(t *testing.T) {
	ph := newTestPhone(t, workload.AngryBirds(), workload.BaselineLoad)
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 4, BWIdx: 4})
	eng.Run(5*time.Second, false)
	if ph.CumMachineBusySec() <= 0 || ph.CumMachineBusySec() > 5.01 {
		t.Fatalf("CumMachineBusySec = %v", ph.CumMachineBusySec())
	}
	if ph.CumBusyCoreSec() <= 0 || ph.CumBusyCoreSec() > 4*5.01 {
		t.Fatalf("CumBusyCoreSec = %v", ph.CumBusyCoreSec())
	}
	if ph.CumTrafficBytes() <= 0 {
		t.Fatal("no traffic accounted")
	}
	if n := ph.TakeTouches(); n == 0 {
		t.Fatal("game generated no touches in 5s")
	}
	if n := ph.TakeTouches(); n != 0 {
		t.Fatalf("TakeTouches must drain: %d", n)
	}
}

func TestHistogramsAccumulate(t *testing.T) {
	ph := newTestPhone(t, workload.Spotify(), workload.NoLoad)
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 2, BWIdx: 1})
	eng.Run(3*time.Second, false)
	if got := ph.CPUHistogram().Percent(2); got < 99 {
		t.Fatalf("cpu residency at pinned freq = %.1f%%", got)
	}
	if got := ph.BWHistogram().Percent(1); got < 99 {
		t.Fatalf("bw residency at pinned bw = %.1f%%", got)
	}
	if got := ph.CPUHistogram().Total(); got != 3*time.Second {
		t.Fatalf("total observed = %v", got)
	}
}

func TestBGLoadAddsWorkAndPower(t *testing.T) {
	run := func(load workload.BGLoad) Stats {
		ph := newTestPhone(t, workload.MXPlayer(), load)
		eng := NewEngine(ph)
		eng.MustRegister(&FixedConfigActor{FreqIdx: 9, BWIdx: 6})
		return eng.Run(30*time.Second, false)
	}
	nl, bl, hl := run(workload.NoLoad), run(workload.BaselineLoad), run(workload.HeavierLoad)
	if bl.GIPS <= nl.GIPS {
		t.Fatalf("BL must add background instructions: NL=%.3f BL=%.3f", nl.GIPS, bl.GIPS)
	}
	if hl.GIPS <= bl.GIPS {
		t.Fatalf("HL must add more: BL=%.3f HL=%.3f", bl.GIPS, hl.GIPS)
	}
	if hl.AvgPowerW <= nl.AvgPowerW {
		t.Fatalf("HL must cost more power: NL=%.3f HL=%.3f", nl.AvgPowerW, hl.AvgPowerW)
	}
}

func TestPerfOverheadReducesCapacity(t *testing.T) {
	run := func(overhead float64) Stats {
		ph := newTestPhone(t, workload.VidCon(), workload.NoLoad)
		ph.SetPerfOverheadFrac(overhead)
		eng := NewEngine(ph)
		eng.MustRegister(&FixedConfigActor{FreqIdx: 17, BWIdx: 12})
		return eng.Run(20*time.Second, false)
	}
	clean := run(0)
	heavy := run(0.4) // 100 ms perf sampling: 40% overhead (§IV-B)
	if heavy.GIPS >= clean.GIPS*0.75 {
		t.Fatalf("40%% perf overhead should cut batch throughput: %.3f vs %.3f",
			heavy.GIPS, clean.GIPS)
	}
}

func TestPerfOverheadClamped(t *testing.T) {
	ph := newTestPhone(t, workload.VidCon(), workload.NoLoad)
	ph.SetPerfOverheadFrac(-1)
	ph.SetPerfOverheadFrac(2) // clamps to 0.9, must not panic or wedge
	ph.Step(time.Millisecond)
}

func TestFreqChangeAccounting(t *testing.T) {
	ph := newTestPhone(t, workload.AngryBirds(), workload.NoLoad)
	ph.SetFreqIdx(5)
	ph.SetFreqIdx(5) // no-op
	ph.SetFreqIdx(7)
	ph.SetBWIdx(3)
	if got := ph.FreqChanges(); got != 2 {
		t.Fatalf("FreqChanges = %d", got)
	}
	if got := ph.BWChanges(); got != 1 {
		t.Fatalf("BWChanges = %d", got)
	}
	// Clamping.
	ph.SetFreqIdx(99)
	if got := ph.CurFreqIdx(); got != 17 {
		t.Fatalf("clamped freq = %d", got)
	}
	ph.SetBWIdx(-4)
	if got := ph.CurBWIdx(); got != 0 {
		t.Fatalf("clamped bw = %d", got)
	}
}

func TestEngineActorScheduling(t *testing.T) {
	ph := newTestPhone(t, workload.Spotify(), workload.NoLoad)
	eng := NewEngine(ph)
	count := 0
	a := &funcActor{name: "counter", period: 100 * time.Millisecond,
		fn: func(time.Duration, platform.Device) { count++ }}
	eng.MustRegister(a)
	eng.Run(time.Second, false)
	if count != 10 {
		t.Fatalf("actor ticked %d times in 1s at 100ms, want 10", count)
	}
}

func TestEngineRejectsBadPeriod(t *testing.T) {
	ph := newTestPhone(t, workload.Spotify(), workload.NoLoad)
	eng := NewEngine(ph)
	bad := &funcActor{name: "bad", period: 1500 * time.Microsecond}
	if err := eng.Register(bad); err == nil {
		t.Fatal("non-multiple period must be rejected")
	}
	bad2 := &funcActor{name: "bad2", period: 0}
	if err := eng.Register(bad2); err == nil {
		t.Fatal("zero period must be rejected")
	}
}

func TestRunStopsWhenFGDone(t *testing.T) {
	spec := workload.VidCon()
	ph := newTestPhone(t, spec, workload.NoLoad)
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 17, BWIdx: 12})
	st := eng.Run(time.Hour, true)
	if !st.FGCompleted {
		t.Fatal("run should have completed the conversion")
	}
	if st.Duration >= time.Hour {
		t.Fatal("run did not stop at completion")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		ph := newTestPhone(t, workload.AngryBirds(), workload.BaselineLoad)
		eng := NewEngine(ph)
		eng.MustRegister(&FixedConfigActor{FreqIdx: 6, BWIdx: 3})
		return eng.Run(10*time.Second, false)
	}
	a, b := run(), run()
	if a.EnergyJ != b.EnergyJ || a.GIPS != b.GIPS {
		t.Fatalf("same seed must reproduce identical runs: %+v vs %+v", a, b)
	}
}

func TestEnergyConsistency(t *testing.T) {
	ph := newTestPhone(t, workload.WeChat(), workload.BaselineLoad)
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 6, BWIdx: 4})
	st := eng.Run(10*time.Second, false)
	if math.Abs(st.EnergyJ-st.AvgPowerW*st.Duration.Seconds()) > 0.02*st.EnergyJ {
		t.Fatalf("E=%.3f J vs P·t=%.3f J", st.EnergyJ, st.AvgPowerW*st.Duration.Seconds())
	}
	// Whole-device power must be in a plausible phone envelope.
	if st.AvgPowerW < 1.0 || st.AvgPowerW > 5.0 {
		t.Fatalf("WeChat avg power = %.2f W, outside [1,5]", st.AvgPowerW)
	}
}

func TestCustomSoCAndPowerParams(t *testing.T) {
	small := &soc.SoC{
		Name: "tiny", NumCores: 2,
		CPUFreqs: []soc.OPP{{Freq: 0.5, Voltage: 0.8}, {Freq: 1.0, Voltage: 0.9}},
		MemBWs:   []soc.Bandwidth{500, 1000},
	}
	pp := power.Default()
	pp.ScreenW = 0.1
	ph, err := NewPhone(Config{
		SoC: small, Power: pp, Foreground: workload.Spotify(),
		Seed: 3, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 1, BWIdx: 1})
	st := eng.Run(2*time.Second, false)
	if st.EnergyJ <= 0 {
		t.Fatal("no energy accounted on custom SoC")
	}
}

func TestTraceRecorderWiring(t *testing.T) {
	ph, err := NewPhone(Config{
		Foreground: workload.Spotify(), Seed: 1, ScreenOn: true,
		TraceEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ph)
	eng.MustRegister(&FixedConfigActor{FreqIdx: 0, BWIdx: 0})
	eng.Run(time.Second, false)
	if ph.Recorder() == nil || ph.Recorder().Len() != 10 {
		t.Fatalf("recorder points = %v", ph.Recorder())
	}
}

type funcActor struct {
	name   string
	period time.Duration
	fn     func(time.Duration, platform.Device)
}

func (f *funcActor) Name() string          { return f.name }
func (f *funcActor) Period() time.Duration { return f.period }
func (f *funcActor) Tick(now time.Duration, dev platform.Device) {
	if f.fn != nil {
		f.fn(now, dev)
	}
}
