package sim

import (
	"fmt"
	"time"
)

// This file is the event-queue engine core. Instead of marching the
// clock one fixed step at a time and asking every actor "are you due
// yet?", the core keeps a min-heap of future events — one per
// registered actor, plus the run deadline — processes them in
// non-decreasing timestamp order, and integrates each quiescent
// interval between events in closed form (Phone.StepSpan). Workload-
// phase transitions do not need heap entries: they surface as derived
// micro-events inside StepSpan, which bounds every fused span at the
// next phase boundary and re-plans there.
//
// The core maintains two invariants, enforced when Options.
// DebugInvariants is set:
//
//	INV-MONO  (clock monotonicity): events are consumed in
//	          non-decreasing timestamp order, and the device clock
//	          never runs ahead of the next pending event.
//	INV-WORK  (work conservation): every span the device is handed is
//	          integrated to exactly the next event boundary — the
//	          engine neither idles short of it nor overshoots it. The
//	          only sanctioned early exit is foreground completion
//	          under StopWhenFGDone.

// EventKind classifies the typed events the core schedules.
type EventKind uint8

// Event kinds. Actor-driven kinds are assigned at Register time from
// the actor's identity; EvDeadline is the run's terminal event.
const (
	// EvActorTick is a periodic actor with no more specific type.
	EvActorTick EventKind = iota
	// EvControlCycle is the paper controller's T-quantum tick.
	EvControlCycle
	// EvGovernorSample is a kernel governor's sampling-window timer
	// (cpufreq interactive/ondemand/conservative, devfreq cpubw_hwmon).
	EvGovernorSample
	// EvPerfWindow closes a perf-tool measurement window.
	EvPerfWindow
	// EvFaultFiring delivers a scheduled fault-plan step.
	EvFaultFiring
	// EvDeadline ends the run window.
	EvDeadline
)

// String returns a short label for traces and invariant panics.
func (k EventKind) String() string {
	switch k {
	case EvControlCycle:
		return "control-cycle"
	case EvGovernorSample:
		return "governor-sample"
	case EvPerfWindow:
		return "perf-window"
	case EvFaultFiring:
		return "fault-firing"
	case EvDeadline:
		return "deadline"
	}
	return "actor-tick"
}

// classifyActor maps a registered actor to its event kind by the
// actor's published name. Unknown actors schedule as generic ticks —
// classification is cosmetic (traces, invariant messages), never
// semantic: ordering depends only on (time, seq).
func classifyActor(name string) EventKind {
	switch name {
	case "aspeo-controller":
		return EvControlCycle
	case "cpufreq", "devfreq":
		return EvGovernorSample
	case "perf":
		return EvPerfWindow
	case "fault-injector":
		return EvFaultFiring
	}
	return EvActorTick
}

// Event is one scheduled occurrence in the queue.
type Event struct {
	At   time.Duration
	Seq  uint64 // FIFO tiebreak: assigned in push order, strictly increasing
	Kind EventKind
	// Actor is the index into the engine's registration list, or -1 for
	// engine-internal events (the deadline).
	Actor int
}

// eventQueue is a binary min-heap ordered by (At, Seq): earliest
// timestamp first, and stable FIFO — push order — among equal
// timestamps. Implemented directly rather than via container/heap to
// keep Push/Pop allocation-free on the hot path.
type eventQueue struct {
	ev  []Event
	seq uint64
}

func (q *eventQueue) less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

// Reset empties the queue, keeping capacity.
func (q *eventQueue) Reset() {
	q.ev = q.ev[:0]
	q.seq = 0
}

// Len returns the number of pending events.
func (q *eventQueue) Len() int { return len(q.ev) }

// Push schedules an event, assigning its FIFO sequence number.
func (q *eventQueue) Push(e Event) {
	e.Seq = q.seq
	q.seq++
	q.ev = append(q.ev, e)
	// Sift up.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.ev[i], q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// Peek returns the earliest pending event without removing it. The
// queue must be non-empty.
func (q *eventQueue) Peek() Event { return q.ev[0] }

// Pop removes and returns the earliest pending event. The queue must be
// non-empty.
func (q *eventQueue) Pop() Event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(q.ev) {
			break
		}
		min := l
		if r < len(q.ev) && q.less(q.ev[r], q.ev[l]) {
			min = r
		}
		if !q.less(q.ev[min], q.ev[i]) {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}

// runEvent is the event-core run loop. It rebuilds the queue from the
// authoritative actor schedule (actors[i].next) at entry, so a cell
// restored via RestoreActors resumes with the exact deadlines the
// checkpoint recorded, and the fixed core's checkpoint machinery works
// unchanged.
//
// Loop-top boundary semantics match runFixed exactly: foreground-done
// check, interrupt poll, checkpoint hook (the quiescent point), due
// actors ticked in registration order, then one span to the next event.
func (e *Engine) runEvent(cur RunCursor) {
	ph := e.phone
	deadline := cur.Deadline
	stopWhenFGDone := cur.StopWhenFGDone

	e.queue.Reset()
	for i := range e.actors {
		e.queue.Push(Event{At: e.actors[i].next, Kind: e.actors[i].kind, Actor: i})
	}
	e.queue.Push(Event{At: deadline, Kind: EvDeadline, Actor: -1})
	if e.due == nil {
		e.due = make([]int, 0, len(e.actors))
	}
	lastAt := time.Duration(-1 << 62)

	for ph.Now() < deadline {
		if stopWhenFGDone && ph.FGDone() {
			break
		}
		if e.interrupt != nil && e.interrupt() {
			break
		}
		if e.ckptHook != nil {
			// Quiescent point: no actor mid-tick, no span in flight, and
			// actors[i].next consistent with the queue.
			e.ckptHook()
		}
		now := ph.Now()

		// Consume every event due now. Actor events re-arm; the deadline
		// event terminates the loop via the outer condition. Due actors
		// are collected and ticked in registration order — the engine's
		// stable ordering contract for simultaneous events (heap order
		// among equal timestamps is push order, which after re-arms is
		// not registration order; the due set restores it).
		e.due = e.due[:0]
		for e.queue.Len() > 0 && e.queue.Peek().At <= now {
			ev := e.queue.Pop()
			if e.debug && ev.At < lastAt {
				panic(fmt.Sprintf("sim: INV-MONO violated: %s event at %v after boundary %v", ev.Kind, ev.At, lastAt))
			}
			if ev.At > lastAt {
				lastAt = ev.At
			}
			if ev.Actor >= 0 {
				e.due = append(e.due, ev.Actor)
			}
		}
		insertionSort(e.due)
		for _, i := range e.due {
			e.actors[i].actor.Tick(now, ph)
			e.actors[i].next = now + e.actors[i].actor.Period()
			e.queue.Push(Event{At: e.actors[i].next, Kind: e.actors[i].kind, Actor: i})
		}

		// Integrate the quiescent interval to the next event boundary.
		next := deadline
		if e.queue.Len() > 0 && e.queue.Peek().At < next {
			next = e.queue.Peek().At
		}
		if e.debug && next < now {
			panic(fmt.Sprintf("sim: INV-MONO violated: next event %v behind clock %v", next, now))
		}
		n := int((next - now) / e.step)
		if n < 1 {
			n = 1
		}
		ran := ph.StepSpan(e.step, n, stopWhenFGDone)
		if e.debug && ran != n && !(stopWhenFGDone && ph.FGDone()) {
			panic(fmt.Sprintf("sim: INV-WORK violated: span [%v, %v) ran %d/%d steps without a sanctioned early exit", now, next, ran, n))
		}
	}
}

// insertionSort orders the small due-actor index set ascending without
// allocating; len is bounded by the registered actor count (≤ 5 in any
// current session).
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
