package sim_test

import (
	"testing"

	"aspeo/internal/platform/platformtest"
	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

// The simulated phone must pass the platform conformance suite — the
// same one the replay backend (and any future real-device backend)
// passes.
func TestPhoneConformance(t *testing.T) {
	platformtest.Run(t, "sim", func(t *testing.T) platformtest.Fixture {
		ph, err := sim.NewPhone(sim.Config{
			Foreground: workload.Spotify(), Load: workload.BaselineLoad,
			Seed: 7, ScreenOn: true, WiFiOn: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return platformtest.Fixture{
			Device: ph,
			Step:   func() { ph.Step(sim.DefaultStep) },
		}
	})
}
