package sim

import (
	"encoding/json"
	"fmt"
	"time"

	"aspeo/internal/histogram"
	"aspeo/internal/monsoon"
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
	"aspeo/internal/workload"
)

// This file is the simulation layer of session checkpointing: the
// engine's run cursor and actor-schedule walk, and the phone's full
// device snapshot. The contract throughout is bit-exactness — a cell
// rebuilt from the same Config, restored from these snapshots, and
// resumed produces byte-identical outputs to one that was never
// interrupted. Snapshots may only be captured from the engine's
// checkpoint hook (loop top), where no actor is mid-tick and no step
// batch is in flight.

// RunCursor captures everything Engine.Run derives at entry: the run
// window and the baselines its final Stats are diffed against. It is
// part of a session checkpoint so that Resume reports Stats over the
// ORIGINAL run interval, not the post-restore remainder.
type RunCursor struct {
	Start          time.Duration `json:"start_ns"`
	Deadline       time.Duration `json:"deadline_ns"`
	StopWhenFGDone bool          `json:"stop_when_fg_done"`

	StartInstr  float64 `json:"start_instr"`
	StartCycles float64 `json:"start_cycles"`
	StartBus    float64 `json:"start_bus"`

	DropsAtStart       float64 `json:"drops_at_start"`
	FreqChangesAtStart int     `json:"freq_changes_at_start"`
	BWChangesAtStart   int     `json:"bw_changes_at_start"`
}

// Cursor returns the cursor of the run in progress (or most recently
// finished). Valid inside a checkpoint hook, where it describes the
// active run.
func (e *Engine) Cursor() RunCursor { return e.cursor }

// Suspend captures the active run's cursor for a later Resume — the
// engine half of a session checkpoint. It must be called from inside
// the checkpoint hook (the engine's quiescent point): there, and only
// there, the cursor, the actor schedule (CheckpointActors) and the
// device snapshot (Phone.CheckpointState) are mutually consistent, so
// a cell rebuilt from the same Config, restored via RestoreActors →
// Phone.RestoreState, and continued with Resume(cursor) reproduces the
// uninterrupted run byte for byte. Outside the hook it returns the same
// value as Cursor, which describes the most recent run entry rather
// than a resumable point.
func (e *Engine) Suspend() RunCursor { return e.cursor }

// SetCheckpointHook installs a callback polled once per engine-loop
// iteration, after the interrupt poll and before any actor ticks. At
// that point the cell is quiescent — it is the only place snapshot
// capture is allowed. Like the interrupt, the hook is observation
// only: a run with a hook that captures state is bit-identical to one
// without. nil clears it.
func (e *Engine) SetCheckpointHook(f func()) { e.ckptHook = f }

// ActorState is one registered actor's entry in a checkpoint: its
// schedule position plus, for actors carrying run state
// (platform.Checkpointer implementors), their serialized state.
// Stateless actors (e.g. FixedConfigActor) snapshot with a nil State.
type ActorState struct {
	Name  string          `json:"name"`
	Next  time.Duration   `json:"next_ns"`
	State json.RawMessage `json:"state,omitempty"`
}

// CheckpointActors snapshots every registered actor in registration
// order.
func (e *Engine) CheckpointActors() ([]ActorState, error) {
	out := make([]ActorState, len(e.actors))
	for i := range e.actors {
		a := e.actors[i].actor
		out[i] = ActorState{Name: a.Name(), Next: e.actors[i].next}
		if ck, ok := a.(platform.Checkpointer); ok {
			raw, err := ck.CheckpointState()
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint actor %q: %w", a.Name(), err)
			}
			out[i].State = raw
		}
	}
	return out, nil
}

// RestoreActors restores a snapshot onto a freshly rebuilt actor set.
// The actors must have been registered in the same order with the same
// names as in the checkpointed cell; any mismatch is an error rather
// than a silent divergence. Actor restore runs BEFORE the phone's
// sysfs value restore: actors that publish runtime sysfs files (the
// interactive governor's tunables) recreate them here so the value
// restore finds every file present.
func (e *Engine) RestoreActors(states []ActorState) error {
	if len(states) != len(e.actors) {
		return fmt.Errorf("sim: restore %d actor states into %d registered actors",
			len(states), len(e.actors))
	}
	for i := range e.actors {
		a := e.actors[i].actor
		if states[i].Name != a.Name() {
			return fmt.Errorf("sim: restore actor %d: snapshot %q, registered %q",
				i, states[i].Name, a.Name())
		}
		ck, isCk := a.(platform.Checkpointer)
		if isCk != (states[i].State != nil) {
			return fmt.Errorf("sim: restore actor %q: checkpointability mismatch (snapshot state %v, actor checkpointer %v)",
				a.Name(), states[i].State != nil, isCk)
		}
		if isCk {
			if err := ck.RestoreState(states[i].State, e.phone); err != nil {
				return fmt.Errorf("sim: restore actor %q: %w", a.Name(), err)
			}
		}
		e.actors[i].next = states[i].Next
	}
	return nil
}

// PhoneState is the device half of a session checkpoint: the complete
// dynamic state of a Phone. Everything rebuilt deterministically from
// Config (SoC tables, power model, sysfs wiring, fusion plan cache) is
// excluded; everything that evolves during a run is here.
type PhoneState struct {
	Now        time.Duration `json:"now_ns"`
	FreqIdx    int           `json:"freq_idx"`
	BWIdx      int           `json:"bw_idx"`
	ThermalCap int           `json:"thermal_cap"`
	ScreenOn   bool          `json:"screen_on"`
	WiFiOn     bool          `json:"wifi_on"`

	// Tasks holds fg followed by bg, in the fixed construction order.
	Tasks []workload.TaskState `json:"tasks"`

	CumMachineBusySec float64         `json:"cum_machine_busy_sec"`
	CumBusyCoreSec    float64         `json:"cum_busy_core_sec"`
	CumTrafficBytes   float64         `json:"cum_traffic_bytes"`
	PendingTouches    int             `json:"pending_touches"`
	FreqChanges       int             `json:"freq_changes"`
	BWChanges         int             `json:"bw_changes"`
	Health            platform.Health `json:"health"`

	PendingOverlayJ float64 `json:"pending_overlay_j"`
	StandingOverlay float64 `json:"standing_overlay_w"`
	PerfOverheadCPU float64 `json:"perf_overhead_cpu"`

	LastPowerW    float64 `json:"last_power_w"`
	LastCPUPowerW float64 `json:"last_cpu_power_w"`
	LastStepIPS   float64 `json:"last_step_ips"`

	PMUInstr  float64 `json:"pmu_instr"`
	PMUCycles float64 `json:"pmu_cycles"`
	PMUBus    float64 `json:"pmu_bus"`

	Monitor monsoon.State            `json:"monitor"`
	CPUHist histogram.ResidencyState `json:"cpu_hist"`
	BWHist  histogram.ResidencyState `json:"bw_hist"`

	// Sysfs holds every static file's stored value. Dynamic (read-hook)
	// files derive their content from the state above and are excluded.
	Sysfs map[string]string `json:"sysfs"`
}

// CheckpointState captures the phone. It refuses when a full-rate trace
// recorder is attached: the recorder's ring is diagnostic state that a
// restored cell cannot reproduce, so checkpointing such a session would
// silently break the bit-exactness contract instead of loudly here.
func (p *Phone) CheckpointState() (PhoneState, error) {
	if p.rec != nil {
		return PhoneState{}, fmt.Errorf("sim: checkpoint unsupported with trace recording enabled (TraceEvery > 0)")
	}
	s := PhoneState{
		Now:        p.now,
		FreqIdx:    p.freqIdx,
		BWIdx:      p.bwIdx,
		ThermalCap: p.thermalCap,
		ScreenOn:   p.screenOn,
		WiFiOn:     p.wifiOn,

		CumMachineBusySec: p.cumMachineBusySec,
		CumBusyCoreSec:    p.cumBusyCoreSec,
		CumTrafficBytes:   p.cumTrafficBytes,
		PendingTouches:    p.pendingTouches,
		FreqChanges:       p.freqChanges,
		BWChanges:         p.bwChanges,
		Health:            p.health,

		PendingOverlayJ: p.pendingOverlayJ,
		StandingOverlay: p.standingOverlay,
		PerfOverheadCPU: p.perfOverheadCPU,

		LastPowerW:    p.lastPowerW,
		LastCPUPowerW: p.lastCPUPowerW,
		LastStepIPS:   p.lastStepIPS,

		Monitor: p.mon.State(),
		CPUHist: p.cpuHist.State(),
		BWHist:  p.bwHist.State(),
		Sysfs:   p.fs.Export(),
	}
	s.PMUInstr, s.PMUCycles, s.PMUBus = p.pmu.Snapshot().Values()
	s.Tasks = make([]workload.TaskState, len(p.tasks))
	for i, t := range p.tasks {
		s.Tasks[i] = t.State()
	}
	return s, nil
}

// RestoreState restores a snapshot onto a phone freshly rebuilt from
// the same Config. Actor restore must already have run (so runtime
// sysfs files exist for the value restore). The fusion plan cache is
// dropped, not restored: it is a pure function of the state above and
// the first post-restore Step recomputes it bit-identically.
func (p *Phone) RestoreState(s PhoneState) error {
	if p.rec != nil {
		return fmt.Errorf("sim: restore unsupported with trace recording enabled (TraceEvery > 0)")
	}
	if len(s.Tasks) != len(p.tasks) {
		return fmt.Errorf("sim: restore %d task states into %d tasks", len(s.Tasks), len(p.tasks))
	}
	if s.FreqIdx < 0 || s.FreqIdx >= len(p.soc.CPUFreqs) {
		return fmt.Errorf("sim: restore freq index %d out of %d", s.FreqIdx, len(p.soc.CPUFreqs))
	}
	if s.BWIdx < 0 || s.BWIdx >= len(p.soc.MemBWs) {
		return fmt.Errorf("sim: restore bw index %d out of %d", s.BWIdx, len(p.soc.MemBWs))
	}
	for i, t := range p.tasks {
		if err := t.Restore(s.Tasks[i]); err != nil {
			return fmt.Errorf("sim: restore task %d: %w", i, err)
		}
	}
	if err := p.cpuHist.Restore(s.CPUHist); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := p.bwHist.Restore(s.BWHist); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := p.fs.RestoreValues(s.Sysfs); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}

	p.now = s.Now
	p.freqIdx = s.FreqIdx
	p.bwIdx = s.BWIdx
	p.thermalCap = s.ThermalCap
	p.screenOn = s.ScreenOn
	p.wifiOn = s.WiFiOn

	p.cumMachineBusySec = s.CumMachineBusySec
	p.cumBusyCoreSec = s.CumBusyCoreSec
	p.cumTrafficBytes = s.CumTrafficBytes
	p.pendingTouches = s.PendingTouches
	p.freqChanges = s.FreqChanges
	p.bwChanges = s.BWChanges
	p.health = s.Health

	p.pendingOverlayJ = s.PendingOverlayJ
	p.standingOverlay = s.StandingOverlay
	p.perfOverheadCPU = s.PerfOverheadCPU

	p.lastPowerW = s.LastPowerW
	p.lastCPUPowerW = s.LastCPUPowerW
	p.lastStepIPS = s.LastStepIPS

	p.pmu.Restore(pmu.SnapshotAt(s.PMUInstr, s.PMUCycles, s.PMUBus))
	p.mon.Restore(s.Monitor)
	p.plan.valid = false
	return nil
}
