// Package perftool emulates the Linux perf tool as the paper uses it: a
// sampled reader of the PMU instruction counter from which the GIPS
// performance metric is derived (paper §III-B2, §IV-B).
//
// The emulation reproduces the measured costs that shaped the paper's
// controller design:
//
//   - the minimum sampling period on the Nexus 6 is 100 ms;
//   - the computation overhead is ~40 ms of CPU per sample — 40% of the
//     machine at a 100 ms period, 4% at the 1 s period the controller
//     uses (this is why the paper settles on a 2 s control cycle);
//   - the power overhead at a 1 s period is ~15 mW;
//   - a reading takes ~1.04 s to be reported, so the controller consumes
//     the previous window's measurement;
//   - PMU-derived readings carry noise, especially over short windows.
package perftool

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"aspeo/internal/detrand"
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
)

// MinSamplingPeriod is the shortest period perf supports on the device.
const MinSamplingPeriod = 100 * time.Millisecond

// cpuSecondsPerSample is the compute cost of collecting and reporting one
// sample (≈40 ms of CPU), the source of the 40%-at-100 ms figure.
const cpuSecondsPerSample = 0.040

// powerPerSampleJ is the energy cost of one sample: 15 mW at a 1 s
// period.
const powerPerSampleJ = 0.015

// noiseSigma is the relative standard deviation of a GIPS reading over a
// 1-second window; shorter windows are proportionally noisier (§V-B:
// "PMU-based performance measurements could have high variations" for
// short durations).
const noiseSigma = 0.02

// Reading is one completed measurement.
type Reading struct {
	GIPS    float64
	Window  time.Duration // the interval the reading covers
	EndedAt time.Duration // when the window closed
	Seq     int
}

// historyLen bounds the reading ring buffer (enough for several control
// cycles at any sane period).
const historyLen = 64

// FaultHook intercepts a completed raw reading before it is published.
// It may rewrite the reading (spikes, stuck counters) or drop it
// entirely by returning keep=false — the reading then never reaches
// Last or MeanOver, as when perf's ring buffer overflows on the device.
// Installed by internal/fault; nil means pass-through.
type FaultHook func(r Reading) (out Reading, keep bool)

// Perf is the sampling reader. It implements platform.Actor and reads
// any platform.Device.
type Perf struct {
	period time.Duration
	rng    *rand.Rand
	rngSrc *detrand.Source

	prev        pmu.Snapshot
	prevAt      time.Duration
	initialized bool
	last        Reading
	// history is a fixed ring of the most recent readings: histPos is
	// the next write slot, histN the live count (== historyLen once
	// wrapped). A ring instead of an append-and-reslice window keeps the
	// per-sample steady state allocation-free.
	history  [historyLen]Reading
	histPos  int
	histN    int
	seq      int
	attached bool

	hook    FaultHook
	dropped int
}

// New creates a perf reader with the given sampling period.
func New(period time.Duration, seed int64) (*Perf, error) {
	if period < MinSamplingPeriod {
		return nil, fmt.Errorf("perftool: period %v below device minimum %v", period, MinSamplingPeriod)
	}
	rng, src := detrand.New(seed)
	return &Perf{period: period, rng: rng, rngSrc: src}, nil
}

// MustNew is New but panics on invalid periods.
func MustNew(period time.Duration, seed int64) *Perf {
	p, err := New(period, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements platform.Actor.
func (p *Perf) Name() string { return "perf" }

// Period implements platform.Actor.
func (p *Perf) Period() time.Duration { return p.period }

// OverheadFrac returns the fraction of machine time the sampling costs at
// this period.
func (p *Perf) OverheadFrac() float64 {
	f := cpuSecondsPerSample / p.period.Seconds()
	if f > 0.9 {
		f = 0.9
	}
	return f
}

// Tick implements platform.Actor: close the current window, produce a
// reading, and charge the instrumentation costs to the device.
func (p *Perf) Tick(now time.Duration, dev platform.Device) {
	if !p.attached {
		// First tick: install the standing CPU and power overheads.
		// Each sample costs ~15 mJ, so the average power overhead is
		// 15 mW at the 1 s period the paper reports.
		dev.SetPerfOverhead(p.OverheadFrac(), powerPerSampleJ/p.period.Seconds())
		p.attached = true
	}
	snap := dev.PMUSnapshot()
	if !p.initialized {
		p.initialized = true
		p.prev, p.prevAt = snap, now
		return
	}
	window := now - p.prevAt
	if window <= 0 {
		return
	}
	instr := snap.Delta(p.prev, pmu.Instructions)
	p.prev, p.prevAt = snap, now

	gips := instr / window.Seconds() / 1e9
	// Noise scales with 1/sqrt(window): short windows are unreliable.
	sigma := noiseSigma / math.Sqrt(math.Max(window.Seconds(), 1e-3))
	gips *= 1 + sigma*p.rng.NormFloat64()
	if gips < 0 {
		gips = 0
	}
	r := Reading{GIPS: gips, Window: window, EndedAt: now, Seq: p.seq + 1}
	if p.hook != nil {
		var keep bool
		if r, keep = p.hook(r); !keep {
			p.dropped++
			return
		}
	}
	p.seq++
	r.Seq = p.seq
	p.last = r
	p.history[p.histPos] = r
	p.histPos = (p.histPos + 1) % historyLen
	if p.histN < historyLen {
		p.histN++
	}
}

// SetFaultHook installs (or, with nil, removes) the reading interceptor.
func (p *Perf) SetFaultHook(h FaultHook) { p.hook = h }

// Dropped returns how many completed readings the fault hook discarded.
func (p *Perf) Dropped() int { return p.dropped }

// Detach removes the instrumentation costs from the device (perf
// stopped).
func (p *Perf) Detach(dev platform.Device) {
	dev.SetPerfOverhead(0, 0)
	p.attached = false
}

// Last returns the most recent completed reading; ok is false before the
// first window closes.
func (p *Perf) Last() (Reading, bool) {
	return p.last, p.seq > 0
}

// MeanOver returns the time-weighted mean GIPS of the readings covering
// (approximately) the trailing `span` — what a controller with a control
// cycle longer than the sampling period consumes. Readings whose window
// closed before the span began — stale survivors of dropped samples —
// are excluded, so ok is false for a non-positive span, before the first
// window closes, and when every sample inside the span was dropped.
func (p *Perf) MeanOver(span time.Duration) (float64, bool) {
	if span <= 0 || p.histN == 0 {
		return 0, false
	}
	cutoff := p.prevAt - span
	var sum, weight float64
	covered := time.Duration(0)
	for k := 0; k < p.histN && covered < span; k++ {
		r := &p.history[(p.histPos-1-k+2*historyLen)%historyLen]
		if r.EndedAt <= cutoff {
			break // window entirely before the span: stale
		}
		w := r.Window.Seconds()
		sum += r.GIPS * w
		weight += w
		covered += r.Window
	}
	if weight == 0 {
		return 0, false
	}
	return sum / weight, true
}
