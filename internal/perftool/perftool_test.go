package perftool

import (
	"math"
	"testing"
	"time"

	"aspeo/internal/sim"
	"aspeo/internal/workload"
)

func TestNewRejectsSubMinimumPeriod(t *testing.T) {
	if _, err := New(50*time.Millisecond, 1); err == nil {
		t.Fatal("perf on the Nexus 6 cannot sample below 100 ms")
	}
	if _, err := New(MinSamplingPeriod, 1); err != nil {
		t.Fatalf("minimum period must be accepted: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(time.Millisecond, 1)
}

func TestOverheadMatchesPaper(t *testing.T) {
	// Paper §IV-B: 40% at 100 ms, 4% at 1 s.
	if got := MustNew(100*time.Millisecond, 1).OverheadFrac(); math.Abs(got-0.40) > 1e-9 {
		t.Fatalf("overhead at 100ms = %v, want 0.40", got)
	}
	if got := MustNew(time.Second, 1).OverheadFrac(); math.Abs(got-0.04) > 1e-9 {
		t.Fatalf("overhead at 1s = %v, want 0.04", got)
	}
}

func newPhone(t *testing.T) *sim.Phone {
	t.Helper()
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.MXPlayer(), Load: workload.NoLoad, Seed: 1,
		ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ph
}

func TestReadingsTrackTrueGIPS(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 9, BWIdx: 6})
	p := MustNew(time.Second, 42)
	eng.MustRegister(p)
	st := eng.Run(20*time.Second, false)

	r, ok := p.Last()
	if !ok {
		t.Fatal("no reading after 20 s")
	}
	if r.Window != time.Second {
		t.Fatalf("window = %v", r.Window)
	}
	mean, ok := p.MeanOver(10 * time.Second)
	if !ok {
		t.Fatal("MeanOver failed")
	}
	// The 10 s mean must sit within a few percent of the engine-exact
	// GIPS (noise is 2%/√s per reading).
	if math.Abs(mean-st.GIPS)/st.GIPS > 0.05 {
		t.Fatalf("perf mean %.4f vs true %.4f", mean, st.GIPS)
	}
}

func TestMeanOverBeforeFirstReading(t *testing.T) {
	p := MustNew(time.Second, 1)
	if _, ok := p.MeanOver(2 * time.Second); ok {
		t.Fatal("MeanOver must report no data before the first window")
	}
	if _, ok := p.Last(); ok {
		t.Fatal("Last must report no data before the first window")
	}
}

func TestAttachInstallsOverheads(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 17, BWIdx: 12})
	clean := eng.Run(5*time.Second, false)

	ph2 := newPhone(t)
	eng2 := sim.NewEngine(ph2)
	eng2.MustRegister(&sim.FixedConfigActor{FreqIdx: 17, BWIdx: 12})
	p := MustNew(time.Second, 1)
	eng2.MustRegister(p)
	instrumented := eng2.Run(5*time.Second, false)

	// Power must include the 15 mW standing overlay.
	if instrumented.AvgPowerW <= clean.AvgPowerW {
		t.Fatalf("perf attachment did not cost power: %.4f vs %.4f",
			instrumented.AvgPowerW, clean.AvgPowerW)
	}
}

func TestDetachRemovesOverheads(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 9, BWIdx: 6})
	p := MustNew(time.Second, 1)
	eng.MustRegister(p)
	eng.Run(3*time.Second, false)
	p.Detach(ph)
	// After detach, a step must not reserve perf CPU. (Indirect check:
	// the standing overlay is gone, so power at idle drops.)
	before := ph.LastPowerW()
	ph.Step(time.Millisecond)
	after := ph.LastPowerW()
	if after > before {
		t.Fatalf("power rose after detach: %.4f -> %.4f", before, after)
	}
}

func TestNoiseIsSeededAndBounded(t *testing.T) {
	run := func(seed int64) float64 {
		ph := newPhone(t)
		eng := sim.NewEngine(ph)
		eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 9, BWIdx: 6})
		p := MustNew(time.Second, seed)
		eng.MustRegister(p)
		eng.Run(10*time.Second, false)
		r, _ := p.Last()
		return r.GIPS
	}
	if run(7) != run(7) {
		t.Fatal("same seed must reproduce readings")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds should produce different noise")
	}
}

func TestHistoryBounded(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	eng.MustRegister(&sim.FixedConfigActor{FreqIdx: 9, BWIdx: 6})
	p := MustNew(100*time.Millisecond, 1)
	eng.MustRegister(p)
	eng.Run(30*time.Second, false) // 300 samples >> historyLen
	if p.histN > historyLen {
		t.Fatalf("history grew to %d, cap %d", p.histN, historyLen)
	}
	if _, ok := p.MeanOver(2 * time.Second); !ok {
		t.Fatal("MeanOver must work at the cap")
	}
}

func TestMeanOverDegenerateSpans(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	p := MustNew(time.Second, 42)
	eng.MustRegister(p)
	eng.Run(5*time.Second, false)

	if _, ok := p.MeanOver(0); ok {
		t.Fatal("zero-length window must report no data")
	}
	if _, ok := p.MeanOver(-time.Second); ok {
		t.Fatal("negative window must report no data")
	}
	// A window shorter than the control cycle still yields the latest
	// reading.
	m, ok := p.MeanOver(100 * time.Millisecond)
	if !ok || m <= 0 {
		t.Fatalf("sub-period window: %v, %v", m, ok)
	}
}

// When samples are dropped, readings older than the requested span must
// not leak into the mean: MeanOver covers trailing time, not a trailing
// reading count.
func TestMeanOverExcludesStaleReadingsAfterDrops(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	p := MustNew(time.Second, 42)
	// Poison the early history: gigantic readings, then drop everything
	// in the middle so they sit right below the fresh ones.
	drop := false
	p.SetFaultHook(func(r Reading) (Reading, bool) {
		if r.EndedAt <= 3*time.Second {
			r.GIPS = 100 // absurd; must never reach a 2 s mean at t=20 s
			return r, true
		}
		if drop = r.EndedAt < 18*time.Second; drop {
			return r, false
		}
		return r, true
	})
	eng.MustRegister(p)
	eng.Run(20*time.Second, false)

	if p.Dropped() == 0 {
		t.Fatal("hook dropped nothing; test proves nothing")
	}
	m, ok := p.MeanOver(2 * time.Second)
	if !ok {
		t.Fatal("no mean despite fresh readings")
	}
	if m > 50 {
		t.Fatalf("stale poisoned readings leaked into the mean: %v", m)
	}
}

// A window in which every sample was dropped must report no data, not a
// stale mean — the controller treats that as a failing cycle.
func TestMeanOverAllSamplesDropped(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	p := MustNew(time.Second, 42)
	p.SetFaultHook(func(r Reading) (Reading, bool) { return r, false })
	eng.MustRegister(p)
	eng.Run(10*time.Second, false)

	if p.Dropped() != 9 {
		t.Fatalf("Dropped = %d, want 9 (one per closed window)", p.Dropped())
	}
	if _, ok := p.Last(); ok {
		t.Fatal("Last reported a reading although every sample was dropped")
	}
	if _, ok := p.MeanOver(2 * time.Second); ok {
		t.Fatal("MeanOver reported data although every sample was dropped")
	}
}

// The hook can rewrite a reading in place (spikes, zeros); the published
// reading and history carry the rewritten value.
func TestFaultHookRewritesReading(t *testing.T) {
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	p := MustNew(time.Second, 42)
	p.SetFaultHook(func(r Reading) (Reading, bool) {
		r.GIPS *= 4
		return r, true
	})
	eng.MustRegister(p)
	st := eng.Run(10*time.Second, false)

	r, ok := p.Last()
	if !ok {
		t.Fatal("no reading")
	}
	if r.GIPS < 2*st.GIPS {
		t.Fatalf("hook rewrite not visible: reading %.4f, true %.4f", r.GIPS, st.GIPS)
	}
	if p.Dropped() != 0 {
		t.Fatalf("Dropped = %d for a rewrite-only hook", p.Dropped())
	}
}

// Clearing the hook restores pass-through behavior.
func TestFaultHookCleared(t *testing.T) {
	p := MustNew(time.Second, 42)
	p.SetFaultHook(func(r Reading) (Reading, bool) { return r, false })
	p.SetFaultHook(nil)
	ph := newPhone(t)
	eng := sim.NewEngine(ph)
	eng.MustRegister(p)
	eng.Run(5*time.Second, false)
	if _, ok := p.Last(); !ok {
		t.Fatal("cleared hook still dropping readings")
	}
}
