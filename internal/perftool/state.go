package perftool

import (
	"encoding/json"
	"fmt"
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/pmu"
)

// state is the JSON shape of a checkpointed perf reader. The noise rng
// is stored as its (seed, draws) stream position; the reading ring is
// stored verbatim so MeanOver sees the identical trailing window after
// a restore.
type state struct {
	Period      time.Duration `json:"period_ns"`
	RNGSeed     int64         `json:"rng_seed"`
	RNGDraws    uint64        `json:"rng_draws"`
	PrevInstr   float64       `json:"prev_instr"`
	PrevCycles  float64       `json:"prev_cycles"`
	PrevBus     float64       `json:"prev_bus"`
	PrevAt      time.Duration `json:"prev_at_ns"`
	Initialized bool          `json:"initialized"`
	Last        Reading       `json:"last"`
	History     []Reading     `json:"history"`
	HistPos     int           `json:"hist_pos"`
	HistN       int           `json:"hist_n"`
	Seq         int           `json:"seq"`
	Attached    bool          `json:"attached"`
	Dropped     int           `json:"dropped"`
}

// CheckpointState implements platform.Checkpointer.
func (p *Perf) CheckpointState() (json.RawMessage, error) {
	seed, draws := p.rngSrc.State()
	instr, cycles, bus := p.prev.Values()
	s := state{
		Period: p.period, RNGSeed: seed, RNGDraws: draws,
		PrevInstr: instr, PrevCycles: cycles, PrevBus: bus,
		PrevAt: p.prevAt, Initialized: p.initialized, Last: p.last,
		History: p.history[:], HistPos: p.histPos, HistN: p.histN,
		Seq: p.seq, Attached: p.attached, Dropped: p.dropped,
	}
	return json.Marshal(s)
}

// RestoreState implements platform.Checkpointer. The fault hook is a
// live wiring concern (re-installed by session construction), not
// state, and is left untouched.
func (p *Perf) RestoreState(raw json.RawMessage, _ platform.Device) error {
	var s state
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("perftool: %w", err)
	}
	if s.Period != p.period {
		return fmt.Errorf("perftool: restore period %v into reader at %v", s.Period, p.period)
	}
	if len(s.History) != historyLen {
		return fmt.Errorf("perftool: restore history of %d readings, ring holds %d", len(s.History), historyLen)
	}
	if s.HistPos < 0 || s.HistPos >= historyLen || s.HistN < 0 || s.HistN > historyLen {
		return fmt.Errorf("perftool: restore ring cursor %d/%d out of range", s.HistPos, s.HistN)
	}
	if err := p.rngSrc.Restore(s.RNGSeed, s.RNGDraws); err != nil {
		return fmt.Errorf("perftool: %w", err)
	}
	p.prev = pmu.SnapshotAt(s.PrevInstr, s.PrevCycles, s.PrevBus)
	p.prevAt = s.PrevAt
	p.initialized = s.Initialized
	p.last = s.Last
	copy(p.history[:], s.History)
	p.histPos, p.histN = s.HistPos, s.HistN
	p.seq = s.Seq
	p.attached = s.Attached
	p.dropped = s.Dropped
	return nil
}
