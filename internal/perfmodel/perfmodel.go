// Package perfmodel computes how fast a piece of work executes at a given
// system configuration — the performance side of the simulated phone.
//
// Each workload phase is characterized by a small set of architectural
// parameters (cycles per instruction, memory bytes per instruction,
// thread-level parallelism). Throughput at a configuration follows a
// softened roofline: per aggregate instruction the machine needs
//
//	t_c = CPI / (f · par)        core-compute seconds
//	t_m = BPI / BW               memory-transfer seconds
//	t   = max(t_c, t_m) + κ·min(t_c, t_m)
//
// so throughput IPS = 1/t saturates once the memory term dominates —
// exactly the behaviour the paper measures on AngryBirds ("performance
// does not improve beyond CPU frequency No. 5") — while κ models the
// imperfect overlap of compute and memory that gives neighbouring
// configurations slightly different performance.
package perfmodel

import (
	"fmt"
	"math"

	"aspeo/internal/soc"
)

// Traits are the architectural parameters of one phase of an application.
type Traits struct {
	// CPI is average cycles per instruction of the instruction mix,
	// ignoring memory-bandwidth stalls (those come from BPI).
	CPI float64
	// BPI is DRAM bytes transferred per instruction (cache misses,
	// framebuffer traffic, DMA attributable to the app).
	BPI float64
	// ExtraBPI is additional, speculative DRAM traffic per instruction
	// — hardware prefetch overshoot and write-allocate waste. It does
	// not gate throughput (dropping it is free) but it flows on the
	// bus: the power model charges it and the cpubw_hwmon governor's
	// event counters see it, which is a large part of why that governor
	// overprovisions bandwidth for streaming applications.
	ExtraBPI float64
	// Par is effective thread-level parallelism in cores (1.0 = one
	// saturated core). Bounded by the SoC core count at evaluation.
	Par float64
	// Overlap κ ∈ [0,1]: 0 = perfect compute/memory overlap (hard
	// roofline), 1 = fully serialized.
	Overlap float64
}

// Validate checks the traits are physically meaningful.
func (tr Traits) Validate() error {
	if !(tr.CPI > 0) || math.IsInf(tr.CPI, 0) {
		return fmt.Errorf("perfmodel: CPI = %v invalid", tr.CPI)
	}
	if tr.BPI < 0 || math.IsNaN(tr.BPI) || math.IsInf(tr.BPI, 0) {
		return fmt.Errorf("perfmodel: BPI = %v invalid", tr.BPI)
	}
	if tr.ExtraBPI < 0 || math.IsNaN(tr.ExtraBPI) || math.IsInf(tr.ExtraBPI, 0) {
		return fmt.Errorf("perfmodel: ExtraBPI = %v invalid", tr.ExtraBPI)
	}
	if !(tr.Par > 0) {
		return fmt.Errorf("perfmodel: Par = %v invalid", tr.Par)
	}
	if tr.Overlap < 0 || tr.Overlap > 1 {
		return fmt.Errorf("perfmodel: Overlap = %v outside [0,1]", tr.Overlap)
	}
	return nil
}

// SecPerInstr returns the aggregate machine seconds consumed per
// instruction at frequency f and bandwidth bw on chip s.
func (tr Traits) SecPerInstr(s *soc.SoC, f soc.Freq, bw soc.Bandwidth) float64 {
	par := math.Min(tr.Par, float64(s.NumCores))
	tc := tr.CPI / (f.Hz() * par)
	tm := tr.BPI / bw.BytesPerSec()
	if tc >= tm {
		return tc + tr.Overlap*tm
	}
	return tm + tr.Overlap*tc
}

// CapacityIPS returns the maximum instructions per second the phase can
// retire at configuration (f, bw).
func (tr Traits) CapacityIPS(s *soc.SoC, f soc.Freq, bw soc.Bandwidth) float64 {
	return 1 / tr.SecPerInstr(s, f, bw)
}

// CapacityAt is CapacityIPS addressed by ladder indices.
func (tr Traits) CapacityAt(s *soc.SoC, cfg soc.Config) float64 {
	return tr.CapacityIPS(s, s.Freq(cfg.FreqIdx), s.BW(cfg.BWIdx))
}

// Account describes the core-time decomposition of executing a batch of
// instructions, used by the power model.
type Account struct {
	Instructions float64 // instructions retired
	ActiveSec    float64 // core-seconds spent computing (summed over cores)
	StalledSec   float64 // core-seconds stalled on memory
	BusySec      float64 // ActiveSec + StalledSec (what /proc/stat reports)
	TrafficBytes float64 // DRAM bytes moved
}

// Execute accounts for running `instr` instructions at (f, bw): how much
// core time the OS sees busy, how much of it was real compute, and the
// memory traffic. The busy time charges all `par` threads for the wall
// time the batch occupies, matching how top/loadavg see a multi-threaded
// app that is partially stalled.
func (tr Traits) Execute(s *soc.SoC, f soc.Freq, bw soc.Bandwidth, instr float64) Account {
	if instr <= 0 {
		return Account{}
	}
	par := math.Min(tr.Par, float64(s.NumCores))
	wall := instr * tr.SecPerInstr(s, f, bw) // aggregate machine seconds
	active := instr * tr.CPI / f.Hz()        // true compute core-seconds
	busy := wall * par
	if active > busy {
		active = busy
	}
	return Account{
		Instructions: instr,
		ActiveSec:    active,
		StalledSec:   busy - active,
		BusySec:      busy,
		TrafficBytes: instr * (tr.BPI + tr.ExtraBPI),
	}
}

// KneeFreqIdx returns the lowest frequency-ladder index at which the
// phase becomes memory-bound at bandwidth bw (capacity stops improving
// with frequency), or the top index if it never does.
func (tr Traits) KneeFreqIdx(s *soc.SoC, bw soc.Bandwidth) int {
	par := math.Min(tr.Par, float64(s.NumCores))
	for i := range s.CPUFreqs {
		tc := tr.CPI / (s.Freq(i).Hz() * par)
		tm := tr.BPI / bw.BytesPerSec()
		if tm >= tc {
			return i
		}
	}
	return len(s.CPUFreqs) - 1
}
