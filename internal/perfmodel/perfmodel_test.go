package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aspeo/internal/soc"
)

var n6 = soc.Nexus6()

func TestValidate(t *testing.T) {
	good := Traits{CPI: 1.5, BPI: 0.5, Par: 2, Overlap: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Traits{
		{CPI: 0, BPI: 1, Par: 1},
		{CPI: 1, BPI: -1, Par: 1},
		{CPI: 1, BPI: 1, Par: 0},
		{CPI: 1, BPI: 1, Par: 1, Overlap: 1.5},
		{CPI: math.Inf(1), BPI: 1, Par: 1},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, tr)
		}
	}
}

func TestCapacityMonotoneInFreq(t *testing.T) {
	tr := Traits{CPI: 2, BPI: 0.8, Par: 1.5, Overlap: 0.1}
	prev := 0.0
	for i := range n6.CPUFreqs {
		c := tr.CapacityAt(n6, soc.Config{FreqIdx: i, BWIdx: 12})
		if c < prev {
			t.Fatalf("capacity decreased at freq %d", i)
		}
		prev = c
	}
}

func TestCapacityMonotoneInBW(t *testing.T) {
	tr := Traits{CPI: 2, BPI: 3, Par: 1.5, Overlap: 0.1}
	prev := 0.0
	for i := range n6.MemBWs {
		c := tr.CapacityAt(n6, soc.Config{FreqIdx: 17, BWIdx: i})
		if c < prev {
			t.Fatalf("capacity decreased at bw %d", i)
		}
		prev = c
	}
}

func TestMemoryBoundSaturation(t *testing.T) {
	// Memory-heavy traits at the lowest bandwidth: frequency must stop
	// mattering once memory-bound (AngryBirds behaviour in the paper).
	tr := Traits{CPI: 3.3, BPI: 3.0, Par: 1.5, Overlap: 0.05}
	knee := tr.KneeFreqIdx(n6, n6.BW(0))
	if knee <= 0 || knee >= len(n6.CPUFreqs)-1 {
		t.Fatalf("knee = %d, expected an interior frequency", knee)
	}
	cKnee := tr.CapacityAt(n6, soc.Config{FreqIdx: knee, BWIdx: 0})
	cTop := tr.CapacityAt(n6, soc.Config{FreqIdx: 17, BWIdx: 0})
	if gain := cTop/cKnee - 1; gain > 0.08 {
		t.Fatalf("capacity still gained %.1f%% past the knee; should saturate", 100*gain)
	}
}

func TestComputeBoundScaling(t *testing.T) {
	// Pure compute traits: capacity must scale ~linearly with frequency.
	tr := Traits{CPI: 1.5, BPI: 0.01, Par: 2, Overlap: 0}
	c0 := tr.CapacityAt(n6, soc.Config{FreqIdx: 0, BWIdx: 12})
	c17 := tr.CapacityAt(n6, soc.Config{FreqIdx: 17, BWIdx: 12})
	wantRatio := n6.Freq(17).GHz() / n6.Freq(0).GHz()
	if got := c17 / c0; math.Abs(got-wantRatio) > 0.05*wantRatio {
		t.Fatalf("compute-bound scaling = %.3f, want ≈ %.3f", got, wantRatio)
	}
}

func TestAngryBirdsBaseSpeedAnchor(t *testing.T) {
	// The paper: AngryBirds base speed at (300 MHz, 762 MBps) is
	// 0.129 GIPS. These traits are the ones the workload package uses.
	tr := Traits{CPI: 3.30, BPI: 3.05, Par: 1.5, Overlap: 0.05}
	got := tr.CapacityAt(n6, n6.MinConfig()) / 1e9
	if math.Abs(got-0.129) > 0.013 {
		t.Fatalf("AngryBirds base speed = %.4f GIPS, want 0.129 ± 0.013", got)
	}
}

func TestParCappedByCores(t *testing.T) {
	tr8 := Traits{CPI: 1, BPI: 0.01, Par: 8, Overlap: 0}
	tr4 := Traits{CPI: 1, BPI: 0.01, Par: 4, Overlap: 0}
	cfg := soc.Config{FreqIdx: 9, BWIdx: 12}
	if c8, c4 := tr8.CapacityAt(n6, cfg), tr4.CapacityAt(n6, cfg); math.Abs(c8-c4) > 1e-6*c4 {
		t.Fatalf("Par beyond core count must clamp: %v vs %v", c8, c4)
	}
}

func TestExecuteAccounting(t *testing.T) {
	tr := Traits{CPI: 2, BPI: 1, Par: 2, Overlap: 0.1}
	f, bw := n6.Freq(9), n6.BW(4)
	const instr = 1e9
	acc := tr.Execute(n6, f, bw, instr)
	if acc.Instructions != instr {
		t.Fatalf("Instructions = %v", acc.Instructions)
	}
	if acc.TrafficBytes != instr*tr.BPI {
		t.Fatalf("TrafficBytes = %v", acc.TrafficBytes)
	}
	if acc.BusySec <= 0 || acc.ActiveSec <= 0 || acc.StalledSec < 0 {
		t.Fatalf("bad accounting: %+v", acc)
	}
	if math.Abs(acc.BusySec-(acc.ActiveSec+acc.StalledSec)) > 1e-9 {
		t.Fatalf("BusySec must equal Active+Stalled: %+v", acc)
	}
	// Wall time consistency: busy = wall · par.
	wall := instr * tr.SecPerInstr(n6, f, bw)
	if math.Abs(acc.BusySec-wall*2) > 1e-9 {
		t.Fatalf("BusySec = %v, want wall·par = %v", acc.BusySec, wall*2)
	}
}

func TestExecuteZeroInstr(t *testing.T) {
	tr := Traits{CPI: 2, BPI: 1, Par: 2}
	if acc := tr.Execute(n6, n6.Freq(0), n6.BW(0), 0); acc != (Account{}) {
		t.Fatalf("zero instructions should account to zero: %+v", acc)
	}
	if acc := tr.Execute(n6, n6.Freq(0), n6.BW(0), -5); acc != (Account{}) {
		t.Fatalf("negative instructions should account to zero: %+v", acc)
	}
}

// Property: capacity · sec-per-instr == 1 (definitional inverse).
func TestCapacityInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Traits{
			CPI: 0.5 + rng.Float64()*5, BPI: rng.Float64() * 5,
			Par: 0.5 + rng.Float64()*4, Overlap: rng.Float64(),
		}
		fi, bi := rng.Intn(18), rng.Intn(13)
		cap := tr.CapacityAt(n6, soc.Config{FreqIdx: fi, BWIdx: bi})
		spi := tr.SecPerInstr(n6, n6.Freq(fi), n6.BW(bi))
		return math.Abs(cap*spi-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: active core time never exceeds busy core time, and stalled
// time grows with memory boundedness.
func TestAccountingSanityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Traits{
			CPI: 0.5 + rng.Float64()*5, BPI: rng.Float64() * 5,
			Par: 0.5 + rng.Float64()*4, Overlap: rng.Float64(),
		}
		fi, bi := rng.Intn(18), rng.Intn(13)
		acc := tr.Execute(n6, n6.Freq(fi), n6.BW(bi), 1e8)
		return acc.ActiveSec <= acc.BusySec+1e-9 && acc.StalledSec >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKneeMovesUpWithBandwidth(t *testing.T) {
	tr := Traits{CPI: 2, BPI: 2, Par: 1.5, Overlap: 0.1}
	lo := tr.KneeFreqIdx(n6, n6.BW(0))
	hi := tr.KneeFreqIdx(n6, n6.BW(12))
	if hi < lo {
		t.Fatalf("knee should not move down with more bandwidth: %d -> %d", lo, hi)
	}
}
