package governor

import (
	"time"

	"aspeo/internal/platform"
)

// ConservativeTunables configure the conservative cpufreq governor — the
// classic kernel policy that steps the frequency gradually instead of
// jumping, designed for battery-sensitive devices.
type ConservativeTunables struct {
	SamplingRate  time.Duration
	UpThreshold   float64 // load above which the frequency steps up
	DownThreshold float64 // load below which the frequency steps down
	FreqStep      int     // ladder steps per adjustment
}

// DefaultConservative mirrors the kernel defaults (up 80 / down 20,
// 5%-of-range steps ≈ one ladder rung on an 18-step ladder).
func DefaultConservative() ConservativeTunables {
	return ConservativeTunables{
		SamplingRate:  60 * time.Millisecond,
		UpThreshold:   0.80,
		DownThreshold: 0.20,
		FreqStep:      1,
	}
}

type conservative struct {
	tun         ConservativeTunables
	lastBusy    float64
	lastTime    time.Duration
	nextSample  time.Duration
	initialized bool
}

func newConservative(tun ConservativeTunables) *conservative {
	return &conservative{tun: tun}
}

func (g *conservative) tick(now time.Duration, dev platform.Device) {
	if now < g.nextSample {
		return
	}
	g.nextSample = now + g.tun.SamplingRate
	busy := dev.CumMachineBusySec()
	if !g.initialized {
		g.initialized = true
		g.lastBusy, g.lastTime = busy, now
		return
	}
	elapsed := (now - g.lastTime).Seconds()
	if elapsed <= 0 {
		return
	}
	load := (busy - g.lastBusy) / elapsed
	g.lastBusy, g.lastTime = busy, now

	cur := dev.CurFreqIdx()
	switch {
	case load >= g.tun.UpThreshold:
		dev.SetFreqIdx(cur + g.tun.FreqStep)
	case load <= g.tun.DownThreshold:
		dev.SetFreqIdx(cur - g.tun.FreqStep)
	}
}
