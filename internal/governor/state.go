package governor

import (
	"encoding/json"
	"fmt"
	"time"

	"aspeo/internal/platform"
)

// Checkpoint states for the policy engines. Only evaluation state is
// captured — tunables live either in the constructor (restored cells are
// rebuilt with the same tunables) or in sysfs (covered by the sysfs
// value snapshot). The interactive governor is special: its sysfs
// tunable files are created at its first tick, so RestoreState
// republishes them before the checkpointed sysfs values are applied.

type interactiveState struct {
	LastBusy    float64       `json:"last_busy"`
	LastTime    time.Duration `json:"last_time_ns"`
	FloorUntil  time.Duration `json:"floor_until_ns"`
	BoostUntil  time.Duration `json:"boost_until_ns"`
	HispeedTime time.Duration `json:"hispeed_time_ns"`
	Initialized bool          `json:"initialized"`
}

type sampledState struct {
	LastBusy    float64       `json:"last_busy"`
	LastTime    time.Duration `json:"last_time_ns"`
	NextSample  time.Duration `json:"next_sample_ns"`
	Initialized bool          `json:"initialized"`
}

type hwmonState struct {
	LastBytes   float64       `json:"last_bytes"`
	LastTime    time.Duration `json:"last_time_ns"`
	LowSince    time.Duration `json:"low_since_ns"`
	Initialized bool          `json:"initialized"`
}

type cpufreqState struct {
	Interactive  interactiveState `json:"interactive"`
	Ondemand     sampledState     `json:"ondemand"`
	Conservative sampledState     `json:"conservative"`
}

// CheckpointState implements platform.Checkpointer.
func (c *CPUFreq) CheckpointState() (json.RawMessage, error) {
	g, o, v := c.interactive, c.ondemand, c.conservative
	s := cpufreqState{
		Interactive: interactiveState{
			LastBusy: g.lastBusy, LastTime: g.lastTime,
			FloorUntil: g.floorUntil, BoostUntil: g.boostUntil,
			HispeedTime: g.hispeedTime, Initialized: g.initialized,
		},
		Ondemand: sampledState{
			LastBusy: o.lastBusy, LastTime: o.lastTime,
			NextSample: o.nextSample, Initialized: o.initialized,
		},
		Conservative: sampledState{
			LastBusy: v.lastBusy, LastTime: v.lastTime,
			NextSample: v.nextSample, Initialized: v.initialized,
		},
	}
	return json.Marshal(s)
}

// RestoreState implements platform.Checkpointer. When the interactive
// governor had already initialized, its sysfs tunable files are
// recreated (with their write-validation hooks) so the subsequent sysfs
// value restore can land the checkpointed tunable values on them.
func (c *CPUFreq) RestoreState(raw json.RawMessage, dev platform.Device) error {
	var s cpufreqState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("governor: cpufreq: %w", err)
	}
	g := c.interactive
	g.lastBusy, g.lastTime = s.Interactive.LastBusy, s.Interactive.LastTime
	g.floorUntil, g.boostUntil = s.Interactive.FloorUntil, s.Interactive.BoostUntil
	g.hispeedTime = s.Interactive.HispeedTime
	g.initialized = s.Interactive.Initialized
	if g.initialized && dev != nil {
		g.publishTunables(dev)
	}
	o := c.ondemand
	o.lastBusy, o.lastTime = s.Ondemand.LastBusy, s.Ondemand.LastTime
	o.nextSample, o.initialized = s.Ondemand.NextSample, s.Ondemand.Initialized
	v := c.conservative
	v.lastBusy, v.lastTime = s.Conservative.LastBusy, s.Conservative.LastTime
	v.nextSample, v.initialized = s.Conservative.NextSample, s.Conservative.Initialized
	return nil
}

// CheckpointState implements platform.Checkpointer.
func (d *DevFreq) CheckpointState() (json.RawMessage, error) {
	h := d.hwmon
	s := hwmonState{
		LastBytes: h.lastBytes, LastTime: h.lastTime,
		LowSince: h.lowSince, Initialized: h.initialized,
	}
	return json.Marshal(s)
}

// RestoreState implements platform.Checkpointer.
func (d *DevFreq) RestoreState(raw json.RawMessage, _ platform.Device) error {
	var s hwmonState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("governor: devfreq: %w", err)
	}
	h := d.hwmon
	h.lastBytes, h.lastTime = s.LastBytes, s.LastTime
	h.lowSince, h.initialized = s.LowSince, s.Initialized
	return nil
}
