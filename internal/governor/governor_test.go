package governor

import (
	"testing"
	"time"

	"aspeo/internal/perfmodel"
	"aspeo/internal/sim"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

// heavySpec returns a capacity-hungry batch workload that drives load to 1.
func heavySpec() *workload.Spec {
	return &workload.Spec{
		Name: "heavy",
		Phases: []workload.Phase{{
			Name: "grind", Kind: workload.Batch,
			Traits:      perfmodel.Traits{CPI: 1.5, BPI: 0.3, Par: 2.5, Overlap: 0.1},
			InstrBudget: 1e15,
		}},
		RunFor: time.Hour,
	}
}

// idleSpec returns a near-idle paced workload.
func idleSpec() *workload.Spec {
	return &workload.Spec{
		Name: "idle",
		Phases: []workload.Phase{{
			Name: "tick", Kind: workload.Paced,
			Traits:   perfmodel.Traits{CPI: 2, BPI: 1, Par: 1, Overlap: 0.05},
			Duration: time.Hour, DemandGIPS: 0.01,
		}},
		Loop: true, RunFor: time.Hour,
	}
}

// burstySpec alternates idle with heavy demand bursts.
func burstySpec() *workload.Spec {
	return &workload.Spec{
		Name: "bursty",
		Phases: []workload.Phase{
			{
				Name: "calm", Kind: workload.Paced,
				Traits:   perfmodel.Traits{CPI: 2, BPI: 1, Par: 1, Overlap: 0.05},
				Duration: 2 * time.Second, DemandGIPS: 0.02,
			},
			{
				Name: "burst", Kind: workload.Paced,
				Traits:   perfmodel.Traits{CPI: 2, BPI: 1, Par: 2, Overlap: 0.05},
				Duration: time.Second, DemandGIPS: 1.2,
			},
		},
		Loop: true, RunFor: time.Hour,
	}
}

func newPhone(t *testing.T, spec *workload.Spec) (*sim.Phone, *sim.Engine) {
	t.Helper()
	ph, err := sim.NewPhone(sim.Config{
		Foreground: spec, Load: workload.NoLoad, Seed: 1, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ph, sim.NewEngine(ph)
}

func setGov(t *testing.T, ph *sim.Phone, cpuGov, bwGov string) {
	t.Helper()
	if err := ph.FS().Write(sysfs.CPUScalingGovernor, cpuGov); err != nil {
		t.Fatal(err)
	}
	if err := ph.FS().Write(sysfs.DevFreqGovernor, bwGov); err != nil {
		t.Fatal(err)
	}
}

func TestPerformanceGovernorPinsMax(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	setGov(t, ph, sim.GovPerformance, sim.GovPerformance)
	Defaults(eng)
	eng.Run(time.Second, false)
	if got := ph.CurFreqIdx(); got != 17 {
		t.Fatalf("performance governor at freq idx %d, want 17", got)
	}
	if got := ph.CurBWIdx(); got != 12 {
		t.Fatalf("performance devfreq at bw idx %d, want 12", got)
	}
}

func TestPowersaveGovernorPinsMin(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	setGov(t, ph, sim.GovPowersave, sim.GovPowersave)
	Defaults(eng)
	// Start high to prove it comes down.
	ph.SetFreqIdx(17)
	ph.SetBWIdx(12)
	eng.Run(time.Second, false)
	if got := ph.CurFreqIdx(); got != 0 {
		t.Fatalf("powersave at freq idx %d, want 0", got)
	}
	if got := ph.CurBWIdx(); got != 0 {
		t.Fatalf("powersave devfreq at bw idx %d, want 0", got)
	}
}

func TestUserspaceGovernorHoldsStill(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	setGov(t, ph, sim.GovUserspace, sim.GovUserspace)
	Defaults(eng)
	ph.SetFreqIdx(7)
	ph.SetBWIdx(3)
	eng.Run(time.Second, false)
	if ph.CurFreqIdx() != 7 || ph.CurBWIdx() != 3 {
		t.Fatalf("userspace moved the config to (%d,%d)", ph.CurFreqIdx(), ph.CurBWIdx())
	}
}

func TestInteractiveRampsUpUnderLoad(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	Defaults(eng) // interactive is the default
	eng.Run(3*time.Second, false)
	if got := ph.CurFreqIdx(); got < 15 {
		t.Fatalf("interactive under full load at freq idx %d, want near max", got)
	}
}

func TestInteractiveStaysLowWhenIdle(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	Defaults(eng)
	ph.SetFreqIdx(17)
	eng.Run(3*time.Second, false)
	if got := ph.CurFreqIdx(); got > 2 {
		t.Fatalf("interactive on idle workload at freq idx %d, want near min", got)
	}
}

func TestInteractiveHispeedResidency(t *testing.T) {
	// The bursty workload must populate the hispeed bucket (index 9 =
	// 1.4976 GHz), the signature behaviour in the paper's Fig. 4.
	ph, eng := newPhone(t, burstySpec())
	Defaults(eng)
	eng.Run(30*time.Second, false)
	if got := ph.CPUHistogram().Percent(9); got < 5 {
		t.Fatalf("hispeed (freq 10) residency = %.1f%%, want >= 5%%", got)
	}
}

func TestInteractiveClimbsPastHispeedStepwise(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	Defaults(eng)
	// Sample the frequency trajectory at 20 ms: there must be at least
	// one intermediate reading strictly between hispeed and max.
	sawMid := false
	for i := 0; i < 50 && !sawMid; i++ {
		eng.Run(20*time.Millisecond, false)
		if f := ph.CurFreqIdx(); f > 9 && f < 17 {
			sawMid = true
		}
	}
	if !sawMid {
		t.Fatal("interactive jumped hispeed→max without intermediate steps")
	}
}

func TestOndemandJumpsToMaxAboveThreshold(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	setGov(t, ph, sim.GovOndemand, sim.GovCPUBWHwmon)
	Defaults(eng)
	eng.Run(time.Second, false)
	if got := ph.CurFreqIdx(); got != 17 {
		t.Fatalf("ondemand under full load at freq idx %d, want 17", got)
	}
}

func TestOndemandScalesDownGradually(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	setGov(t, ph, sim.GovOndemand, sim.GovCPUBWHwmon)
	Defaults(eng)
	ph.SetFreqIdx(17)
	eng.Run(2*time.Second, false)
	if got := ph.CurFreqIdx(); got > 2 {
		t.Fatalf("ondemand on idle workload stuck at freq idx %d", got)
	}
}

func TestHwmonRampsWithTraffic(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	// Pin CPU high so the batch generates sustained traffic.
	setGov(t, ph, sim.GovPerformance, sim.GovCPUBWHwmon)
	Defaults(eng)
	eng.Run(2*time.Second, false)
	if got := ph.CurBWIdx(); got == 0 {
		t.Fatal("hwmon did not raise bandwidth under sustained traffic")
	}
}

func TestHwmonBacksOffExponentially(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	setGov(t, ph, sim.GovPerformance, sim.GovCPUBWHwmon)
	Defaults(eng)
	ph.SetBWIdx(12)
	// With near-zero traffic the vote must decay, but through
	// intermediate rungs (exponential back-off), not a cliff.
	trail := []int{ph.CurBWIdx()}
	for i := 0; i < 40; i++ {
		eng.Run(time.Second, false)
		if bw := ph.CurBWIdx(); bw != trail[len(trail)-1] {
			trail = append(trail, bw)
		}
	}
	if final := trail[len(trail)-1]; final > 1 {
		t.Fatalf("hwmon never decayed: trail %v", trail)
	}
	if len(trail) < 4 {
		t.Fatalf("hwmon decay skipped the back-off ladder: trail %v", trail)
	}
	for i := 1; i < len(trail); i++ {
		if trail[i] > trail[i-1] {
			t.Fatalf("hwmon decay not monotone: trail %v", trail)
		}
	}
}

func TestGovernorSwitchingViaSysfs(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	Defaults(eng)
	eng.Run(2*time.Second, false)
	high := ph.CurFreqIdx()
	if high < 15 {
		t.Fatalf("setup: interactive should be high, at %d", high)
	}
	setGov(t, ph, sim.GovPowersave, sim.GovPowersave)
	eng.Run(500*time.Millisecond, false)
	if got := ph.CurFreqIdx(); got != 0 {
		t.Fatalf("after switching to powersave freq idx = %d", got)
	}
}

func TestInputBoostOnTouch(t *testing.T) {
	// An idle workload with touch events: interactive must boost to
	// hispeed even though the load is negligible.
	spec := idleSpec()
	spec.Phases[0].TouchRate = 30 // a storm of touches
	ph, eng := newPhone(t, spec)
	Defaults(eng)
	eng.Run(5*time.Second, false)
	if got := ph.CPUHistogram().Percent(9); got < 30 {
		t.Fatalf("input boost residency at hispeed = %.1f%%, want dominant", got)
	}
}

func TestDefaultTunablesMatchNexus6(t *testing.T) {
	it := DefaultInteractive()
	if it.HispeedFreqIdx != 9 {
		t.Fatalf("hispeed_freq index = %d, want 9 (1.4976 GHz)", it.HispeedFreqIdx)
	}
	if it.TimerRate != 20*time.Millisecond {
		t.Fatalf("timer_rate = %v", it.TimerRate)
	}
	ht := DefaultHwmon()
	if ht.DecayFactor <= 0 || ht.DecayFactor >= 1 {
		t.Fatalf("decay factor %v outside (0,1)", ht.DecayFactor)
	}
	if ht.EventInflation < 1 {
		t.Fatalf("event inflation %v should exceed 1 (prefetch overshoot)", ht.EventInflation)
	}
}

func TestConservativeStepsGradually(t *testing.T) {
	ph, eng := newPhone(t, heavySpec())
	setGov(t, ph, sim.GovConservative, sim.GovCPUBWHwmon)
	Defaults(eng)
	// Under sustained full load the conservative governor must climb,
	// but through every intermediate rung.
	last := ph.CurFreqIdx()
	maxJump := 0
	for i := 0; i < 120; i++ {
		eng.Run(20*time.Millisecond, false)
		cur := ph.CurFreqIdx()
		if d := cur - last; d > maxJump {
			maxJump = d
		}
		last = cur
	}
	if last < 10 {
		t.Fatalf("conservative never climbed: at %d after 2.4s of full load", last)
	}
	if maxJump > 1 {
		t.Fatalf("conservative jumped %d rungs at once", maxJump)
	}
}

func TestConservativeStepsDownWhenIdle(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	setGov(t, ph, sim.GovConservative, sim.GovCPUBWHwmon)
	Defaults(eng)
	ph.SetFreqIdx(17)
	eng.Run(3*time.Second, false)
	if got := ph.CurFreqIdx(); got > 2 {
		t.Fatalf("conservative on idle stuck at %d", got)
	}
}

func TestInteractiveTunablesPublishedToSysfs(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	Defaults(eng)
	eng.Run(100*time.Millisecond, false)
	got, err := ph.FS().Read(TunableHispeedFreq)
	if err != nil {
		t.Fatalf("tunables not published: %v", err)
	}
	if got != "1497600" {
		t.Fatalf("hispeed_freq = %q, want 1497600 (frequency 10)", got)
	}
	if v, _ := ph.FS().Read(TunableGoHispeedLoad); v != "85" {
		t.Fatalf("go_hispeed_load = %q", v)
	}
}

func TestInteractiveTunablesLiveRetune(t *testing.T) {
	// Lower hispeed_freq via sysfs; the input-boost floor must now park
	// the touch-storm workload at frequency 4 instead of frequency 10.
	spec := idleSpec()
	spec.Phases[0].TouchRate = 30
	ph, eng := newPhone(t, spec)
	Defaults(eng)
	eng.Run(100*time.Millisecond, false)
	if err := ph.FS().Write(TunableHispeedFreq, "729600"); err != nil { // frequency 4
		t.Fatal(err)
	}
	eng.Run(10*time.Second, false)
	f4 := ph.CPUHistogram().Percent(3)
	f10 := ph.CPUHistogram().Percent(9)
	if f4 < 50 || f10 > f4 {
		t.Fatalf("retuned hispeed ignored: f4=%.1f%% f10=%.1f%%", f4, f10)
	}
}

func TestInteractiveTunablesRejectGarbage(t *testing.T) {
	ph, eng := newPhone(t, idleSpec())
	Defaults(eng)
	eng.Run(100*time.Millisecond, false)
	if err := ph.FS().Write(TunableMinSampleTime, "fast"); err == nil {
		t.Fatal("non-numeric tunable accepted")
	}
	if err := ph.FS().Write(TunableGoHispeedLoad, "-5"); err == nil {
		t.Fatal("negative tunable accepted")
	}
	// The stored value must be unchanged.
	if v, _ := ph.FS().Read(TunableGoHispeedLoad); v != "85" {
		t.Fatalf("rejected write corrupted the tunable: %q", v)
	}
}
