package governor

import (
	"fmt"
	"strconv"
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/sysfs"
)

// The real interactive governor exposes its tunables as sysfs files under
// /sys/devices/system/cpu/cpufreq/interactive/ — the exact knobs device
// vendors ship tuned and the paper's experiments inherit. This file wires
// the same protocol onto the simulated phone: the files are created when
// the governor first runs, validated on write, and re-read every timer
// tick, so experiments can retune the default governor exactly the way a
// kernel engineer would (`echo 1190400 > hispeed_freq`).
const (
	InteractiveDir       = "/sys/devices/system/cpu/cpufreq/interactive"
	TunableHispeedFreq   = InteractiveDir + "/hispeed_freq"        // kHz
	TunableGoHispeedLoad = InteractiveDir + "/go_hispeed_load"     // percent
	TunableAboveHispeed  = InteractiveDir + "/above_hispeed_delay" // usec
	TunableMinSampleTime = InteractiveDir + "/min_sample_time"     // usec
	TunableTargetLoads   = InteractiveDir + "/target_loads"        // percent
	TunableInputBoostMS  = InteractiveDir + "/input_boost_ms"      // msec
)

// publishTunables creates the sysfs files from the current tunables.
func (g *interactive) publishTunables(dev platform.Device) {
	if dev.FileExists(TunableHispeedFreq) {
		return
	}
	khz := int(dev.SoC().Freq(g.tun.HispeedFreqIdx).GHz()*1e6 + 0.5)
	entries := map[string]string{
		TunableHispeedFreq:   strconv.Itoa(khz),
		TunableGoHispeedLoad: strconv.Itoa(int(g.tun.GoHispeedLoad*100 + 0.5)),
		TunableAboveHispeed:  strconv.Itoa(int(g.tun.AboveHispeedWait / time.Microsecond)),
		TunableMinSampleTime: strconv.Itoa(int(g.tun.MinSampleTime / time.Microsecond)),
		TunableTargetLoads:   strconv.Itoa(int(g.tun.TargetLoad*100 + 0.5)),
		TunableInputBoostMS:  strconv.Itoa(int(g.tun.InputBoost / time.Millisecond)),
	}
	for path, val := range entries {
		dev.CreateFile(path, val, true, requirePositiveInt)
	}
}

// requirePositiveInt rejects writes that are not positive integers, like
// the kernel's store() callbacks returning -EINVAL.
func requirePositiveInt(path, _, val string) error {
	n, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("%w: %q", sysfs.ErrInvalid, val)
	}
	if n <= 0 {
		return fmt.Errorf("%w: %d must be positive", sysfs.ErrInvalid, n)
	}
	return nil
}

// loadTunables refreshes the in-memory tunables from sysfs, so userspace
// writes take effect at the next evaluation.
func (g *interactive) loadTunables(dev platform.Device) {
	if v, ok := readInt(dev, TunableHispeedFreq); ok {
		g.tun.HispeedFreqIdx = dev.SoC().NearestFreqIdx(khzToFreq(v))
	}
	if v, ok := readInt(dev, TunableGoHispeedLoad); ok {
		g.tun.GoHispeedLoad = float64(v) / 100
	}
	if v, ok := readInt(dev, TunableAboveHispeed); ok {
		g.tun.AboveHispeedWait = time.Duration(v) * time.Microsecond
	}
	if v, ok := readInt(dev, TunableMinSampleTime); ok {
		g.tun.MinSampleTime = time.Duration(v) * time.Microsecond
	}
	if v, ok := readInt(dev, TunableTargetLoads); ok {
		g.tun.TargetLoad = float64(v) / 100
	}
	if v, ok := readInt(dev, TunableInputBoostMS); ok {
		g.tun.InputBoost = time.Duration(v) * time.Millisecond
	}
}

func readInt(dev platform.SysfsView, path string) (int, bool) {
	s, err := dev.ReadFile(path)
	if err != nil {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return n, true
}
