package governor

import (
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
)

// HwmonTunables configure the cpubw_hwmon bandwidth governor.
type HwmonTunables struct {
	SamplingRate time.Duration
	// EventInflation models the gap between the L2 read/write events
	// the hardware monitor counts and actual DRAM bytes: prefetches,
	// write allocations and full-line transfers make the monitor see
	// substantially more than the useful traffic. This inflation is
	// exactly why the paper finds the default picks "higher-than-
	// necessary bandwidth for over 60% of the application runtime".
	EventInflation float64
	// IOPercent is the utilization target: provision so the measured
	// traffic is IOPercent of the vote.
	IOPercent float64
	// DecayHold is how long measured demand must sit low before any
	// down-step.
	DecayHold time.Duration
	// DecayFactor is the multiplicative down-step (exponential
	// back-off, §V-A: "implements an exponential back-off algorithm
	// while reducing the bandwidth").
	DecayFactor float64
}

// DefaultHwmon returns tunables shaped after the msm_bw_hwmon defaults.
func DefaultHwmon() HwmonTunables {
	return HwmonTunables{
		SamplingRate:   50 * time.Millisecond,
		EventInflation: 3.0,
		IOPercent:      0.80,
		DecayHold:      2 * time.Second,
		DecayFactor:    0.90,
	}
}

type hwmon struct {
	tun HwmonTunables

	lastBytes   float64
	lastTime    time.Duration
	lowSince    time.Duration
	initialized bool
}

func newHwmon(tun HwmonTunables) *hwmon {
	return &hwmon{tun: tun}
}

func (g *hwmon) tick(now time.Duration, dev platform.Device) {
	bytes := dev.CumTrafficBytes()
	if !g.initialized {
		g.initialized = true
		g.lastBytes, g.lastTime = bytes, now
		g.lowSince = now
		return
	}
	elapsed := (now - g.lastTime).Seconds()
	if elapsed <= 0 {
		return
	}
	measuredMBps := (bytes - g.lastBytes) / elapsed / 1e6 * g.tun.EventInflation
	g.lastBytes, g.lastTime = bytes, now

	s := dev.SoC()
	cur := s.BW(dev.CurBWIdx()).MBps()
	needed := measuredMBps / g.tun.IOPercent

	if needed > cur {
		// Ramp up immediately to fit the demand.
		dev.SetBWIdx(s.NearestBWIdx(soc.Bandwidth(needed)))
		g.lowSince = now
		return
	}
	if needed > cur*g.tun.IOPercent {
		// Within the utilization band: hold.
		g.lowSince = now
		return
	}
	// Demand is low; back off exponentially after the hold period. The
	// decayed vote rounds *down* the ladder (a decay that rounded up
	// would wedge at rungs spaced wider than the decay factor), but
	// never below what the measured demand needs.
	if now-g.lowSince >= g.tun.DecayHold {
		idx := floorBWIdx(s, cur*g.tun.DecayFactor)
		if min := s.NearestBWIdx(soc.Bandwidth(needed)); idx < min {
			idx = min
		}
		dev.SetBWIdx(idx)
		g.lowSince = now
	}
}

// floorBWIdx returns the highest ladder index whose bandwidth is <= b,
// or 0 when b is below the ladder.
func floorBWIdx(s *soc.SoC, b float64) int {
	idx := 0
	for i, bw := range s.MemBWs {
		if bw.MBps() <= b {
			idx = i
		}
	}
	return idx
}

// DevFreq is the devfreq policy engine for the memory bus, dispatching on
// the sysfs governor file.
type DevFreq struct {
	hwmon  *hwmon
	period time.Duration
}

// NewDevFreq builds the policy engine with default tunables.
func NewDevFreq() *DevFreq { return NewDevFreqTuned(DefaultHwmon()) }

// NewDevFreqTuned builds the policy engine with explicit tunables.
func NewDevFreqTuned(tun HwmonTunables) *DevFreq {
	return &DevFreq{hwmon: newHwmon(tun), period: 50 * time.Millisecond}
}

// Name implements platform.Actor.
func (d *DevFreq) Name() string { return "devfreq" }

// Period implements platform.Actor.
func (d *DevFreq) Period() time.Duration { return d.period }

// Tick dispatches to the active governor.
func (d *DevFreq) Tick(now time.Duration, dev platform.Device) {
	gov, err := dev.ReadFile(sysfs.DevFreqGovernor)
	if err != nil {
		return
	}
	switch gov {
	case platform.GovCPUBWHwmon:
		d.hwmon.tick(now, dev)
	case platform.GovPerformance:
		dev.SetBWIdx(len(dev.SoC().MemBWs) - 1)
	case platform.GovPowersave:
		dev.SetBWIdx(0)
	case platform.GovUserspace:
		// Bandwidth comes from userspace/set_freq writes.
	}
}

// Defaults registers the Android default policy engines (interactive +
// cpubw_hwmon) on a runner. The governor actually applied still follows
// the sysfs governor files.
func Defaults(r platform.Runner) error {
	if err := r.Register(NewCPUFreq()); err != nil {
		return err
	}
	return r.Register(NewDevFreq())
}
