// Package governor re-implements the stock Android/Linux DVFS governors
// that the paper compares against: the cpufreq governors `interactive`
// (the Android default), `ondemand`, `performance`, `powersave` and
// `userspace`, and the devfreq bandwidth governor `cpubw_hwmon` with its
// exponential back-off (paper §II-A, §V-A).
//
// Each governor is implemented from its documented algorithm and runs
// against the simulated phone through the same observation surface the
// kernel uses (busy-time counters, memory traffic counters, input
// events), while dispatch follows the sysfs `scaling_governor` /
// `governor` files so experiments can switch policies exactly as the
// paper does.
package governor

import (
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
)

// InteractiveTunables are the interactive governor's knobs, named after
// the sysfs tunables of the real driver.
type InteractiveTunables struct {
	TimerRate        time.Duration // load evaluation period
	GoHispeedLoad    float64       // load that triggers the hispeed jump
	HispeedFreqIdx   int           // ladder index of hispeed_freq
	AboveHispeedWait time.Duration // dwell before climbing past hispeed
	MinSampleTime    time.Duration // dwell before any down-step
	TargetLoad       float64       // steady-state load the governor aims at
	InputBoost       time.Duration // floor at hispeed after a touch event
}

// DefaultInteractive returns tunables matching the Nexus 6 shipping
// configuration: hispeed_freq is ladder step 10 (1.4976 GHz) — the very
// frequency the paper finds the default governor parked at for
// 12.7–27.9% of every app's runtime.
func DefaultInteractive() InteractiveTunables {
	return InteractiveTunables{
		TimerRate:        20 * time.Millisecond,
		GoHispeedLoad:    0.85,
		HispeedFreqIdx:   9,
		AboveHispeedWait: 80 * time.Millisecond,
		MinSampleTime:    150 * time.Millisecond,
		TargetLoad:       0.85,
		InputBoost:       200 * time.Millisecond,
	}
}

// interactive is the per-policy state of the interactive algorithm.
type interactive struct {
	tun InteractiveTunables

	lastBusy    float64
	lastTime    time.Duration
	floorUntil  time.Duration // no down-steps before this
	boostUntil  time.Duration // input boost active until this
	hispeedTime time.Duration // when we arrived at/above hispeed
	initialized bool
}

func newInteractive(tun InteractiveTunables) *interactive {
	return &interactive{tun: tun}
}

// tick runs one evaluation of the interactive algorithm.
func (g *interactive) tick(now time.Duration, dev platform.Device) {
	busy := dev.CumMachineBusySec()
	if !g.initialized {
		g.initialized = true
		g.lastBusy, g.lastTime = busy, now
		g.publishTunables(dev)
		return
	}
	g.loadTunables(dev)
	elapsed := (now - g.lastTime).Seconds()
	if elapsed <= 0 {
		return
	}
	load := (busy - g.lastBusy) / elapsed
	g.lastBusy, g.lastTime = busy, now
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}

	if dev.TakeTouches() > 0 {
		g.boostUntil = now + g.tun.InputBoost
	}

	cur := dev.CurFreqIdx()
	s := dev.SoC()
	maxIdx := len(s.CPUFreqs) - 1

	// Frequency that would put the load at TargetLoad.
	curGHz := s.Freq(cur).GHz()
	wantGHz := curGHz * load / g.tun.TargetLoad
	target := s.NearestFreqIdx(freqFromGHz(wantGHz))

	// Hispeed jump: heavy load below hispeed jumps straight there.
	if load >= g.tun.GoHispeedLoad && cur < g.tun.HispeedFreqIdx {
		target = g.tun.HispeedFreqIdx
	}
	// Climbing past hispeed is gated: each further step up waits out
	// above_hispeed_delay, so the governor walks the upper ladder a
	// couple of steps at a time rather than leaping to the maximum.
	// This staircase is what populates the mid-frequency buckets of the
	// paper's Figure 4 histograms.
	if target > g.tun.HispeedFreqIdx && cur >= g.tun.HispeedFreqIdx {
		if now-g.hispeedTime < g.tun.AboveHispeedWait {
			target = cur
		} else if target > cur+2 {
			target = cur + 2
		}
	}
	if target > maxIdx {
		target = maxIdx
	}

	// Input boost floors the frequency at hispeed.
	if now < g.boostUntil && target < g.tun.HispeedFreqIdx {
		target = g.tun.HispeedFreqIdx
	}

	switch {
	case target > cur:
		dev.SetFreqIdx(target)
		g.floorUntil = now + g.tun.MinSampleTime
		if target >= g.tun.HispeedFreqIdx {
			g.hispeedTime = now
		}
	case target < cur:
		// Down-steps wait out min_sample_time (the floor timer).
		if now >= g.floorUntil {
			dev.SetFreqIdx(target)
			g.floorUntil = now + g.tun.MinSampleTime
		}
	}
}

// OndemandTunables configure the ondemand governor.
type OndemandTunables struct {
	SamplingRate time.Duration
	UpThreshold  float64 // load that jumps to max frequency
	DownFactor   float64 // proportional scaling target when below threshold
}

// DefaultOndemand mirrors the classic kernel defaults (sampling tuned to
// the simulator's 20 ms governor clock).
func DefaultOndemand() OndemandTunables {
	return OndemandTunables{
		SamplingRate: 60 * time.Millisecond,
		UpThreshold:  0.90,
		DownFactor:   0.80,
	}
}

type ondemand struct {
	tun         OndemandTunables
	lastBusy    float64
	lastTime    time.Duration
	nextSample  time.Duration
	initialized bool
}

func newOndemand(tun OndemandTunables) *ondemand {
	return &ondemand{tun: tun}
}

func (g *ondemand) tick(now time.Duration, dev platform.Device) {
	if now < g.nextSample {
		return
	}
	g.nextSample = now + g.tun.SamplingRate
	busy := dev.CumMachineBusySec()
	if !g.initialized {
		g.initialized = true
		g.lastBusy, g.lastTime = busy, now
		return
	}
	elapsed := (now - g.lastTime).Seconds()
	if elapsed <= 0 {
		return
	}
	load := (busy - g.lastBusy) / elapsed
	g.lastBusy, g.lastTime = busy, now

	s := dev.SoC()
	if load >= g.tun.UpThreshold {
		// Ondemand's signature move: straight to the maximum.
		dev.SetFreqIdx(len(s.CPUFreqs) - 1)
		return
	}
	cur := dev.CurFreqIdx()
	wantGHz := s.Freq(cur).GHz() * load / g.tun.DownFactor
	dev.SetFreqIdx(s.NearestFreqIdx(freqFromGHz(wantGHz)))
}

// CPUFreq is the cpufreq policy engine: it dispatches to whichever
// governor the sysfs scaling_governor file names, mirroring how the
// kernel switches policies.
type CPUFreq struct {
	interactive  *interactive
	ondemand     *ondemand
	conservative *conservative
	period       time.Duration
}

// CPUFreqPolicies lists the governor names the policy engine dispatches
// to — the valid values of a baseline run's scaling_governor. userspace
// is deliberately absent: it is a policy vacuum on its own (frequency
// then comes only from setspeed writes), so selecting it as a baseline
// is almost always a flag typo, and callers validating user input should
// reject it alongside unknown names.
func CPUFreqPolicies() []string {
	return []string{
		platform.GovInteractive, platform.GovOndemand, platform.GovConservative,
		platform.GovPerformance, platform.GovPowersave,
	}
}

// NewCPUFreq builds the policy engine with default tunables.
func NewCPUFreq() *CPUFreq {
	return NewCPUFreqTuned(DefaultInteractive(), DefaultOndemand())
}

// NewCPUFreqTuned builds the policy engine with explicit tunables.
func NewCPUFreqTuned(it InteractiveTunables, ot OndemandTunables) *CPUFreq {
	return &CPUFreq{
		interactive:  newInteractive(it),
		ondemand:     newOndemand(ot),
		conservative: newConservative(DefaultConservative()),
		period:       20 * time.Millisecond,
	}
}

// Name implements platform.Actor.
func (c *CPUFreq) Name() string { return "cpufreq" }

// Period implements platform.Actor.
func (c *CPUFreq) Period() time.Duration { return c.period }

// Tick dispatches to the active governor.
func (c *CPUFreq) Tick(now time.Duration, dev platform.Device) {
	gov, err := dev.ReadFile(sysfs.CPUScalingGovernor)
	if err != nil {
		return
	}
	switch gov {
	case platform.GovInteractive:
		c.interactive.tick(now, dev)
	case platform.GovOndemand:
		c.ondemand.tick(now, dev)
	case platform.GovConservative:
		c.conservative.tick(now, dev)
	case platform.GovPerformance:
		dev.SetFreqIdx(len(dev.SoC().CPUFreqs) - 1)
	case platform.GovPowersave:
		dev.SetFreqIdx(0)
	case platform.GovUserspace:
		// The userspace governor does nothing on its own; frequency
		// comes from scaling_setspeed writes.
	}
}

// freqFromGHz converts a GHz value to the soc.Freq the ladder lookup
// expects.
func freqFromGHz(g float64) soc.Freq { return soc.Freq(g) }

// khzToFreq converts a cpufreq kHz value to a ladder frequency.
func khzToFreq(khz int) soc.Freq { return soc.Freq(float64(khz) / 1e6) }
