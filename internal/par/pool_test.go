package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllJobs(t *testing.T) {
	p := NewPool(4, 128)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d jobs, want 100", got)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2, 8)
	p.Close()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolQueueFull(t *testing.T) {
	// One worker, wedged on a gate; the backlog then has room for
	// exactly `queue` more jobs before Submit sheds.
	gate := make(chan struct{})
	p := NewPool(1, 2)
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatalf("Submit (worker job): %v", err)
	}
	// The worker may not have picked up the first job yet; fill until
	// full, which must happen within queue+1 submissions.
	var errFull error
	for i := 0; i < 4 && errFull == nil; i++ {
		errFull = p.Submit(func() {})
	}
	if errFull != ErrQueueFull {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", errFull)
	}
	close(gate)
	p.Close()
}

func TestPoolConcurrentSubmitAndClose(t *testing.T) {
	// Submits racing Close must either run or fail cleanly — never
	// panic on a closed channel. Run under -race in CI.
	p := NewPool(4, 64)
	var wg sync.WaitGroup
	var ran atomic.Int64
	var rejected atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := p.Submit(func() { ran.Add(1) })
				switch err {
				case nil:
				case ErrPoolClosed, ErrQueueFull:
					rejected.Add(1)
				default:
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
	}
	p.Close()
	wg.Wait()
	p.Close()
	if ran.Load()+rejected.Load() != 400 {
		t.Fatalf("ran %d + rejected %d != 400", ran.Load(), rejected.Load())
	}
}
