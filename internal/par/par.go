// Package par provides the bounded fan-out primitives behind the
// parallel experiment campaigns: a fixed-size worker pool that runs
// independent simulation cells concurrently while keeping results
// deterministic.
//
// Determinism contract: callers enumerate their cells up front (so every
// cell's inputs — seeds, configurations, specs — are fixed before
// dispatch) and write each cell's output into an index-addressed slot.
// Worker scheduling then affects only wall-clock time, never results.
// Each cell must build its own simulation state (one sim.Phone per
// goroutine — see the internal/sim engine contract); nothing mutable may
// be shared across cells.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count setting: n <= 0 selects one worker
// per available CPU (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most `workers`
// goroutines (workers <= 0 means GOMAXPROCS). The first cell error
// cancels the shared context so queued cells never start; cells already
// running finish. ForEach returns the error of the lowest-indexed failed
// cell, wrapped with its index — a deterministic choice regardless of
// which goroutine tripped first.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return fmt.Errorf("cell %d: %w", i, err)
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if cctx.Err() != nil {
					continue // drain without starting new cells
				}
				if err := fn(cctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if cctx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cell %d: %w", i, err)
		}
	}
	return ctx.Err()
}

// Map runs fn over [0, n) like ForEach and collects the results into an
// index-addressed slice, so out[i] is fn's result for cell i no matter
// which worker ran it.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
