package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		n := 100
		counts := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNilContext(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(nil, 4, 3, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
			if i == 7 || i == 30 {
				return fmt.Errorf("%w at %d", sentinel, i)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		// The wrap must name the lowest failed index that ran. With one
		// worker that is exactly cell 7; with several, cancellation may
		// skip cell 30 but cell 7 always runs before dispatch stops only
		// if no later cell failed first — so only assert the wrapped
		// error is one of the failing cells.
		if got := err.Error(); got != "cell 7: boom at 7" && got != "cell 30: boom at 30" {
			t.Fatalf("unexpected error text %q", got)
		}
	}
	// Serial path is fully deterministic.
	err := ForEach(context.Background(), 1, 50, func(_ context.Context, i int) error {
		if i == 7 || i == 30 {
			return fmt.Errorf("%w at %d", sentinel, i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 7: boom at 7" {
		t.Fatalf("serial first error = %v", err)
	}
}

func TestForEachCancelsPendingCells(t *testing.T) {
	var started int32
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return errors.New("first cell fails")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := atomic.LoadInt32(&started); n == 1000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestForEachHonorsPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 1, 5, func(context.Context, int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("cell ran under a cancelled context")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	err := ForEach(context.Background(), workers, 60, func(context.Context, int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		defer atomic.AddInt32(&cur, -1)
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent cells, pool size %d", peak, workers)
	}
}

func TestMapIndexAddressing(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(context.Background(), workers, 64, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(context.Background(), 4, 8, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
