package par

import (
	"errors"
	"fmt"
	"sync"
)

// Pool errors.
var (
	// ErrPoolClosed is returned by Submit after Close has begun.
	ErrPoolClosed = errors.New("par: pool closed")
	// ErrQueueFull is returned by Submit when the backlog is at
	// capacity; the caller sheds load instead of blocking.
	ErrQueueFull = errors.New("par: pool queue full")
)

// Pool is the long-lived counterpart of ForEach: a fixed-size worker
// pool consuming dynamically submitted jobs. ForEach serves campaigns —
// a work-list enumerated up front, run to completion, done. A runtime
// that accepts work over its whole lifetime (the fleet session manager)
// needs the inverse shape: jobs arrive one at a time, queue in a bounded
// backlog, and drain on shutdown.
//
// Determinism is the submitter's concern here, not the pool's: a job
// must own its mutable state (one simulation cell per job) exactly as
// ForEach cells do, and results must not depend on which worker runs a
// job or in what order queued jobs start.
type Pool struct {
	jobs    chan func(int)
	workers int
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with `workers` goroutines (<= 0 means
// GOMAXPROCS) and a backlog of `queue` jobs (<= 0 selects 1024).
func NewPool(workers, queue int) *Pool {
	if queue <= 0 {
		queue = 1024
	}
	w := Workers(workers)
	p := &Pool{jobs: make(chan func(int), queue), workers: w}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go func(worker int) {
			defer p.wg.Done()
			for job := range p.jobs {
				job(worker)
			}
		}(i)
	}
	return p
}

// NumWorkers returns the pool's worker count — the valid worker indices
// a SubmitIndexed job may observe are [0, NumWorkers()).
func (p *Pool) NumWorkers() int { return p.workers }

// Submit enqueues a job without blocking. It fails with ErrPoolClosed
// once Close has begun and ErrQueueFull when the backlog is at capacity.
func (p *Pool) Submit(job func()) error {
	if job == nil {
		return fmt.Errorf("par: nil job")
	}
	return p.SubmitIndexed(func(int) { job() })
}

// SubmitIndexed enqueues a job that receives the index of the worker
// goroutine running it — the handle per-worker state (telemetry rings,
// shards) is keyed by. Same backpressure contract as Submit. The index
// identifies the goroutine, not the job: which worker runs a given job
// is scheduling-dependent, so correctness must not hinge on the value —
// only on its uniqueness while the job runs.
func (p *Pool) SubmitIndexed(job func(worker int)) error {
	if job == nil {
		return fmt.Errorf("par: nil job")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// Backlog returns the number of queued jobs not yet picked up.
func (p *Pool) Backlog() int { return len(p.jobs) }

// Close stops intake and blocks until every queued job has run — the
// pool's graceful drain. Idempotent; concurrent Submits during Close
// fail with ErrPoolClosed rather than racing the channel close.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
