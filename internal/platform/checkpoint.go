package platform

import "encoding/json"

// Checkpointer is implemented by actors (and other engine-owned
// components) whose internal state must survive a session checkpoint.
// CheckpointState returns a self-contained JSON document; RestoreState
// rebuilds the component from one, with the device available for
// components that must re-create runtime artifacts (e.g. a governor
// republishing its sysfs tunable files before the checkpointed file
// values are applied).
//
// The contract is bit-exactness: a component restored from its own
// CheckpointState must behave identically to the uninterrupted original
// from the capture point on. Snapshots are taken only between engine
// steps, when every actor is quiescent, so implementations never need
// to worry about mid-tick consistency.
type Checkpointer interface {
	CheckpointState() (json.RawMessage, error)
	RestoreState(state json.RawMessage, dev Device) error
}
