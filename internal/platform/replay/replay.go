// Package replay implements a trace-driven platform backend: a Device
// whose observation surface (clock, PMU counters, power rail, telemetry)
// is reconstructed step-for-step from a recorded run, and an Engine that
// drives actors over it with the same scheduling semantics as the
// simulator.
//
// A full-rate recording (one trace.Point per engine step, written by
// trace.Recorder.WriteJSON) is a complete measurement record: it carries
// the cumulative PMU and telemetry counters as of the end of every step,
// so software replayed on top of it observes bit-for-bit what it would
// have observed live. A deterministic consumer — the energy controller
// with a fixed seed — therefore reproduces its recorded decisions
// cycle-for-cycle, with no simulation engine in the loop.
//
// Replay is open-loop: actuation (SetFreqIdx, sysfs writes) is accepted,
// protocol-checked and tracked, but does not alter the recorded
// trajectory. That is exactly what makes it useful — it separates "what
// did the policy decide" from "what did the platform do", and it is the
// harness for regression-testing controller logic against traces
// captured from other backends, including real hardware.
package replay

import (
	"fmt"
	"strconv"
	"time"

	"aspeo/internal/obs"
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
	"aspeo/internal/trace"
)

// Device is the trace-driven platform.Device. It is a single-threaded
// cell like every backend: not safe for concurrent use.
type Device struct {
	chip *soc.SoC
	fs   *sysfs.FS
	pts  []trace.Point
	step time.Duration
	cur  int // next step to replay; Now() is its start time

	freqIdx        int
	bwIdx          int
	thermalCap     int
	pendingTouches int
	freqChanges    int
	bwChanges      int
	health         platform.Health // last RecordHealth publication
	spanSink       obs.Sink        // decision-trace sink; nil drops spans
}

var _ platform.Device = (*Device)(nil)

// newDevice validates the trace and builds the device over it.
func newDevice(pts []trace.Point, chip *soc.SoC) (*Device, error) {
	if chip == nil {
		chip = soc.Nexus6()
	}
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("replay: trace has %d points, need at least 2", len(pts))
	}
	if pts[0].T != 0 {
		return nil, fmt.Errorf("replay: trace starts at %v, want 0 (record the whole run)", pts[0].T)
	}
	step := pts[1].T - pts[0].T
	if step <= 0 {
		return nil, fmt.Errorf("replay: non-increasing trace times (%v then %v)", pts[0].T, pts[1].T)
	}
	for i := range pts {
		if pts[i].T != time.Duration(i)*step {
			return nil, fmt.Errorf("replay: trace is not full-rate: point %d at %v, want %v (record with TraceEvery = engine step)",
				i, pts[i].T, time.Duration(i)*step)
		}
	}
	if pts[len(pts)-1].CumInstr == 0 {
		return nil, fmt.Errorf("replay: trace carries no cumulative counters (recorded by an older recorder, or via CSV?); re-record with WriteJSON")
	}
	d := &Device{chip: chip, fs: sysfs.New(), pts: pts, step: step, thermalCap: -1}
	d.buildSysfs()
	return d, nil
}

// buildSysfs registers the same cpufreq/devfreq file protocol the
// simulated phone exposes, so installers and governors see an identical
// tree: userspace actuation paths apply only under the userspace
// governor, exactly like the kernel.
func (d *Device) buildSysfs() {
	s := d.chip
	freqList, bwList := "", ""
	for i := range s.CPUFreqs {
		freqList += strconv.Itoa(freqKHz(s.Freq(i))) + " "
	}
	for i := range s.MemBWs {
		bwList += strconv.Itoa(int(s.BW(i).MBps())) + " "
	}

	d.fs.Create(sysfs.CPUScalingGovernor, platform.GovInteractive, true)
	d.fs.Create(sysfs.CPUScalingSetSpeed, strconv.Itoa(freqKHz(s.Freq(0))), true)
	d.fs.Create(sysfs.CPUAvailableFreqs, freqList, false)
	d.fs.Create(sysfs.CPUAvailableGovs, "interactive ondemand conservative userspace performance powersave", false)
	d.fs.Create(sysfs.CPUScalingMinFreq, strconv.Itoa(freqKHz(s.Freq(0))), true)
	d.fs.Create(sysfs.CPUScalingMaxFreq, strconv.Itoa(freqKHz(s.Freq(len(s.CPUFreqs)-1))), true)
	d.fs.CreateDynamic(sysfs.CPUScalingCurFreq, func(string) string {
		return strconv.Itoa(freqKHz(s.Freq(d.freqIdx)))
	})
	d.fs.CreateDynamic(sysfs.CPUInfoCurFreq, func(string) string {
		return strconv.Itoa(freqKHz(s.Freq(d.freqIdx)))
	})

	d.fs.Create(sysfs.DevFreqGovernor, platform.GovCPUBWHwmon, true)
	d.fs.Create(sysfs.DevFreqSetFreq, strconv.Itoa(int(s.BW(0).MBps())), true)
	d.fs.Create(sysfs.DevFreqAvailFreqs, bwList, false)
	d.fs.Create(sysfs.DevFreqAvailGovs, "cpubw_hwmon userspace performance powersave", false)
	d.fs.Create(sysfs.DevFreqMinFreq, strconv.Itoa(int(s.BW(0).MBps())), true)
	d.fs.Create(sysfs.DevFreqMaxFreq, strconv.Itoa(int(s.BW(len(s.MemBWs)-1).MBps())), true)
	d.fs.CreateDynamic(sysfs.DevFreqCurFreq, func(string) string {
		return strconv.Itoa(int(s.BW(d.bwIdx).MBps()))
	})

	// The trace does not carry the load model; the informational files
	// exist (software probing them must not error) with quiescent values.
	d.fs.Create(sysfs.ProcLoadAvg, "0.00 0.00 0.00 2/812 12345", false)
	d.fs.Create(sysfs.ProcMemInfoFreeMB, "512", false)
	d.fs.Create(sysfs.MPDecisionEnabled, "0", true)
	d.fs.Create(sysfs.TouchBoostEnabled, "0", true)

	d.fs.OnWrite(sysfs.CPUScalingSetSpeed, func(_, _, val string) error {
		gov, _ := d.fs.Read(sysfs.CPUScalingGovernor)
		if gov != platform.GovUserspace {
			return fmt.Errorf("scaling_setspeed: governor is %q, not userspace", gov)
		}
		khz, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scaling_setspeed: %w", err)
		}
		d.SetFreqIdx(s.NearestFreqIdx(soc.Freq(float64(khz) / 1e6)))
		return nil
	})
	d.fs.OnWrite(sysfs.DevFreqSetFreq, func(_, _, val string) error {
		gov, _ := d.fs.Read(sysfs.DevFreqGovernor)
		if gov != platform.GovUserspace {
			return fmt.Errorf("devfreq set_freq: governor is %q, not userspace", gov)
		}
		mbps, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("devfreq set_freq: %w", err)
		}
		d.SetBWIdx(s.NearestBWIdx(soc.Bandwidth(mbps)))
		return nil
	})
}

// freqKHz converts a ladder frequency to the kHz integer cpufreq uses.
func freqKHz(f soc.Freq) int { return int(f.GHz()*1e6 + 0.5) }

// observed returns the trace point whose counters are visible at the
// current time: the one covering the step that just completed. Before
// the first step everything reads zero.
func (d *Device) observed() trace.Point {
	if d.cur == 0 {
		return trace.Point{}
	}
	i := d.cur
	if i > len(d.pts) {
		i = len(d.pts)
	}
	return d.pts[i-1]
}

// advance replays one recorded step; it reports false once the trace is
// exhausted.
func (d *Device) advance() bool {
	if d.cur >= len(d.pts) {
		return false
	}
	d.pendingTouches += d.pts[d.cur].Touches
	d.cur++
	return true
}

// Done reports whether the whole trace has been replayed.
func (d *Device) Done() bool { return d.cur >= len(d.pts) }

// --- platform.Clock ---

// Now returns the replay clock: the start time of the next recorded
// step, or the end of the trace once exhausted.
func (d *Device) Now() time.Duration {
	if d.cur < len(d.pts) {
		return d.pts[d.cur].T
	}
	return d.pts[len(d.pts)-1].T + d.step
}

// --- platform.PerfReader ---

// PMUSnapshot reconstructs the counter state a live reader would see at
// this instant from the recorded absolutes. Deltas between two
// snapshots are plain subtractions of recorded values, so a recorded
// measurement chain reproduces bit-for-bit. The cycle counter is not
// recorded and reads zero.
func (d *Device) PMUSnapshot() pmu.Snapshot {
	p := d.observed()
	return pmu.SnapshotAt(p.CumInstr, 0, p.CumTrafficBytes)
}

// SetPerfOverhead is a no-op: the recorded power already includes the
// instrumentation cost the original run paid.
func (d *Device) SetPerfOverhead(cpuFrac, standingW float64) {}

// --- platform.PowerMeter ---

// LastPowerW returns the recorded device power over the most recent
// replayed step.
func (d *Device) LastPowerW() float64 { return d.observed().PowerW }

// LastCPUPowerW returns the recorded CPU power component.
func (d *Device) LastCPUPowerW() float64 { return d.observed().CPUPowerW }

// AddOverlayEnergyJ is a no-op: replayed power is measured, not modeled,
// so one-shot instrumentation costs are already in the record.
func (d *Device) AddOverlayEnergyJ(j float64) {}

// --- platform.ConfigActuator ---
//
// Actuation is tracked (protocol checks, clamps and the thermal cap
// behave exactly as on the phone) but open-loop: it does not change the
// recorded trajectory.

// SoC describes the chip's ladders.
func (d *Device) SoC() *soc.SoC { return d.chip }

// CurFreqIdx returns the last actuated CPU frequency index.
func (d *Device) CurFreqIdx() int { return d.freqIdx }

// CurBWIdx returns the last actuated bandwidth index.
func (d *Device) CurBWIdx() int { return d.bwIdx }

// SetFreqIdx tracks a CPU frequency request, clamped and bounded by an
// active thermal cap like the kernel's thermal driver bounding
// policy->max.
func (d *Device) SetFreqIdx(i int) {
	i = d.chip.ClampFreqIdx(i)
	if d.thermalCap >= 0 && i > d.thermalCap {
		i = d.thermalCap
	}
	if i != d.freqIdx {
		d.freqIdx = i
		d.freqChanges++
	}
}

// SetBWIdx tracks a memory bandwidth vote.
func (d *Device) SetBWIdx(i int) {
	i = d.chip.ClampBWIdx(i)
	if i != d.bwIdx {
		d.bwIdx = i
		d.bwChanges++
	}
}

// SetThermalCapIdx bounds the tracked frequency; negative lifts the cap.
func (d *Device) SetThermalCapIdx(i int) {
	if i < 0 {
		d.thermalCap = -1
		return
	}
	d.thermalCap = d.chip.ClampFreqIdx(i)
	if d.freqIdx > d.thermalCap {
		d.SetFreqIdx(d.thermalCap)
	}
}

// ThermalCapIdx returns the active cap, or -1 when none.
func (d *Device) ThermalCapIdx() int { return d.thermalCap }

// FreqChanges returns how many tracked frequency transitions actuation
// requested during replay.
func (d *Device) FreqChanges() int { return d.freqChanges }

// BWChanges returns how many tracked bandwidth transitions actuation
// requested during replay.
func (d *Device) BWChanges() int { return d.bwChanges }

// --- platform.SysfsView ---

// ReadFile implements platform.SysfsView.
func (d *Device) ReadFile(path string) (string, error) { return d.fs.Read(path) }

// WriteFile implements platform.SysfsView (userspace semantics).
func (d *Device) WriteFile(path, value string) error { return d.fs.Write(path, value) }

// SetFile implements platform.SysfsView (root semantics).
func (d *Device) SetFile(path, value string) { d.fs.Set(path, value) }

// FileExists implements platform.SysfsView.
func (d *Device) FileExists(path string) bool { return d.fs.Exists(path) }

// CreateFile implements platform.SysfsView.
func (d *Device) CreateFile(path, initial string, writable bool, hook sysfs.WriteHook) {
	d.fs.Create(path, initial, writable)
	if hook != nil {
		d.fs.OnWrite(path, hook)
	}
}

// --- platform.Telemetry ---

// CumMachineBusySec returns the recorded cumulative machine-busy time.
func (d *Device) CumMachineBusySec() float64 { return d.observed().CumBusySec }

// CumBusyCoreSec returns the recorded cumulative busy core-seconds.
func (d *Device) CumBusyCoreSec() float64 { return d.observed().CumCoreSec }

// CumTrafficBytes returns the recorded cumulative DRAM traffic.
func (d *Device) CumTrafficBytes() float64 { return d.observed().CumTrafficBytes }

// TakeTouches drains the input events accumulated over the replayed
// steps since the last call.
func (d *Device) TakeTouches() int {
	n := d.pendingTouches
	d.pendingTouches = 0
	return n
}

// RecordHealth stores the control software's latest health ledger.
// Like all replay actuation surfaces it never alters the recorded
// trajectory.
func (d *Device) RecordHealth(h platform.Health) { d.health = h }

// AttachSpanSink installs the decision-trace sink RecordSpan forwards
// to; nil detaches it. A replayed run traced through the same sink type
// emits the identical span stream as the live run it replays.
func (d *Device) AttachSpanSink(s obs.Sink) { d.spanSink = s }

// RecordSpan forwards a decision-trace span to the attached sink, or
// drops it when none is attached (platform.Telemetry).
func (d *Device) RecordSpan(s obs.Span) {
	if d.spanSink != nil {
		d.spanSink.Emit(s)
	}
}

// LastHealth returns the most recently recorded health ledger.
func (d *Device) LastHealth() platform.Health { return d.health }

// Engine drives actors over a replayed Device with the simulator's
// scheduling semantics: actors tick at their period boundaries, in
// registration order, before the device advances one step.
type Engine struct {
	dev    *Device
	actors []scheduled
}

type scheduled struct {
	actor platform.Actor
	next  time.Duration
}

var _ platform.Runner = (*Engine)(nil)

// NewEngine builds a replay engine over a full-rate recorded trace. A
// nil chip defaults to the Nexus 6 ladders (the trace records ladder
// indices, so the chip must match the recording backend's).
func NewEngine(pts []trace.Point, chip *soc.SoC) (*Engine, error) {
	dev, err := newDevice(pts, chip)
	if err != nil {
		return nil, err
	}
	return &Engine{dev: dev}, nil
}

// Device implements platform.Runner.
func (e *Engine) Device() platform.Device { return e.dev }

// AttachSpanSink installs the decision-trace sink on the replayed
// device (see Device.AttachSpanSink).
func (e *Engine) AttachSpanSink(s obs.Sink) { e.dev.AttachSpanSink(s) }

// Step returns the engine's scheduling quantum: the recorded step.
func (e *Engine) Step() time.Duration { return e.dev.step }

// Register implements platform.Runner.
func (e *Engine) Register(a platform.Actor) error {
	p := a.Period()
	if p <= 0 || p%e.dev.step != 0 {
		return fmt.Errorf("replay: actor %q period %v is not a positive multiple of step %v",
			a.Name(), p, e.dev.step)
	}
	e.actors = append(e.actors, scheduled{actor: a, next: e.dev.Now()})
	return nil
}

// Run replays until `until` elapses on the trace clock or the trace is
// exhausted, whichever comes first, and returns statistics over exactly
// the replayed interval. There is no foreground-task notion in a trace,
// so stopWhenFGDone only matters through the recorded Stats it produced
// originally; it is accepted for interface symmetry and ignored.
func (e *Engine) Run(until time.Duration, stopWhenFGDone bool) platform.Stats {
	dev := e.dev
	start := dev.Now()
	deadline := start + until
	startInstr := dev.observed().CumInstr
	fcAtStart, bwAtStart := dev.freqChanges, dev.bwChanges

	var energyJ, peakW float64
	for dev.Now() < deadline && !dev.Done() {
		now := dev.Now()
		for i := range e.actors {
			if now >= e.actors[i].next {
				e.actors[i].actor.Tick(now, dev)
				e.actors[i].next = now + e.actors[i].actor.Period()
			}
		}
		stepPower := dev.pts[dev.cur].PowerW
		if !dev.advance() {
			break
		}
		energyJ += stepPower * dev.step.Seconds()
		if stepPower > peakW {
			peakW = stepPower
		}
	}

	dur := dev.Now() - start
	instr := dev.observed().CumInstr - startInstr
	st := platform.Stats{
		Duration:     dur,
		EnergyJ:      energyJ,
		PeakPowerW:   peakW,
		Instructions: instr,
		FreqChanges:  dev.freqChanges - fcAtStart,
		BWChanges:    dev.bwChanges - bwAtStart,
	}
	if dur > 0 {
		st.AvgPowerW = energyJ / dur.Seconds()
		st.GIPS = instr / dur.Seconds() / 1e9
	}
	return st
}
