package replay_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"aspeo/internal/core"
	"aspeo/internal/obs"
	"aspeo/internal/platform/replay"
	"aspeo/internal/profile"
	"aspeo/internal/sim"
	"aspeo/internal/trace"
	"aspeo/internal/workload"
)

// goldenTable builds a synthetic coordinated profile with a strictly
// convex power/speedup frontier, so the optimizer's choice is unique.
func goldenTable(base float64) *profile.Table {
	t := &profile.Table{App: "golden", Load: "BL", Mode: profile.Coordinated, BaseGIPS: base}
	s, p, step := 1.0, 1.6, 0.012
	for f := 0; f < 9; f++ {
		for bw := 0; bw < 13; bw++ {
			t.Entries = append(t.Entries, profile.Entry{
				FreqIdx: 2 * f, BWIdx: bw,
				Speedup: s, PowerW: p, GIPS: s * base,
			})
			s += 0.02
			p += step
			step += 0.0004
		}
	}
	return t
}

// The golden replay property, the platform layer's acceptance test: a
// full-rate trace recorded from a live simulated run, serialized through
// JSON and replayed through platform/replay, drives a fresh controller
// (same options, same seed) to the exact same allocation sequence,
// cycle for cycle. The replay backend reconstructs the controller's
// whole observation surface bit-for-bit; nothing in the decision path
// may depend on the backend behind the platform interfaces.
func TestReplayGolden(t *testing.T) {
	tab := goldenTable(0.8)
	target := 0.5 * (tab.MinSpeedup() + tab.MaxSpeedup()) * tab.BaseGIPS
	opts := core.DefaultOptions(tab, target)
	opts.Seed = 42
	opts.LogAllocations = true
	opts.Trace = true
	const session = 30 * time.Second

	// Live run: full-rate recording attached.
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.BaselineLoad,
		Seed: 42, ScreenOn: true, WiFiOn: true, TraceEvery: sim.DefaultStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(ph)
	liveTrace := obs.NewTrace()
	ph.AttachSpanSink(liveTrace)
	live, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Install(eng); err != nil {
		t.Fatal(err)
	}
	eng.Run(session, false)
	liveLog := live.AllocationLog()
	if len(liveLog) < 10 {
		t.Fatalf("live run logged only %d allocation cycles", len(liveLog))
	}

	// Round-trip the recording through the JSON wire format — the same
	// path `aspeo-run -record` and `make smoke-replay` exercise.
	var buf bytes.Buffer
	if err := ph.Recorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	pts, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Replayed run: a fresh controller over the trace-driven device.
	reng, err := replay.NewEngine(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	replayTrace := obs.NewTrace()
	reng.AttachSpanSink(replayTrace)
	replayed, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := replayed.Install(reng); err != nil {
		t.Fatal(err)
	}
	reng.Run(session, false)
	replayLog := replayed.AllocationLog()

	if len(replayLog) != len(liveLog) {
		t.Fatalf("replay logged %d cycles, live logged %d", len(replayLog), len(liveLog))
	}
	for i := range liveLog {
		if !reflect.DeepEqual(liveLog[i], replayLog[i]) {
			t.Fatalf("allocation cycle %d diverged:\nlive:   %+v\nreplay: %+v",
				i, liveLog[i], replayLog[i])
		}
	}

	// The decision traces must agree too — the span stream is part of
	// the platform contract (Telemetry.RecordSpan records identically on
	// any backend), so `aspeo-trace diff` of live vs replay is zero
	// divergent cycles with per-stage attributes equal.
	if len(liveTrace.Spans()) == 0 {
		t.Fatal("live run emitted no spans")
	}
	if res := obs.Diff(liveTrace.Spans(), replayTrace.Spans()); !res.Identical() {
		t.Fatalf("live and replay traces diverged at cycle %d:\n%v",
			res.FirstDivergent, res.Deltas)
	}
}
