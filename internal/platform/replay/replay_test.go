package replay_test

import (
	"strings"
	"testing"
	"time"

	"aspeo/internal/platform"
	"aspeo/internal/platform/platformtest"
	"aspeo/internal/platform/replay"
	"aspeo/internal/trace"
)

// syntheticTrace builds a full-rate recording of a busy machine: steady
// instruction retirement, steady power, periodic input events.
func syntheticTrace(n int) []trace.Point {
	pts := make([]trace.Point, n)
	var instr, busy, core, traffic float64
	for i := range pts {
		instr += 1.2e6 // ~1.2 GIPS at a 1 ms step
		busy += 0.8e-3
		core += 2.5e-3
		traffic += 1.5e6
		pts[i] = trace.Point{
			T: time.Duration(i) * time.Millisecond, FreqIdx: 3, BWIdx: 2,
			PowerW: 1.8, GIPS: 1.2, CPUPowerW: 0.9,
			CumInstr: instr, CumBusySec: busy, CumCoreSec: core,
			CumTrafficBytes: traffic,
		}
		if i%250 == 0 {
			pts[i].Touches = 1
		}
	}
	return pts
}

// The replay backend must pass the same conformance suite as the
// simulator.
func TestReplayConformance(t *testing.T) {
	platformtest.Run(t, "replay", func(t *testing.T) platformtest.Fixture {
		eng, err := replay.NewEngine(syntheticTrace(3000), nil)
		if err != nil {
			t.Fatal(err)
		}
		return platformtest.Fixture{
			Device: eng.Device(),
			Step:   func() { eng.Run(eng.Step(), false) },
		}
	})
}

// NewEngine rejects traces that cannot drive a faithful replay.
func TestTraceValidation(t *testing.T) {
	good := syntheticTrace(10)

	cases := []struct {
		name    string
		mutate  func([]trace.Point) []trace.Point
		wantErr string
	}{
		{"too short", func(p []trace.Point) []trace.Point { return p[:1] }, "at least 2"},
		{"nonzero start", func(p []trace.Point) []trace.Point { return p[3:] }, "starts at"},
		{"non-uniform", func(p []trace.Point) []trace.Point {
			return []trace.Point{p[0], p[1], p[3], p[4]}
		}, "not full-rate"},
		{"no counters", func(p []trace.Point) []trace.Point {
			out := make([]trace.Point, len(p))
			copy(out, p)
			for i := range out {
				out[i].CumInstr = 0
			}
			return out
		}, "no cumulative counters"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := make([]trace.Point, len(good))
			copy(in, good)
			_, err := replay.NewEngine(c.mutate(in), nil)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}

	if _, err := replay.NewEngine(good, nil); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

// countingActor records its tick times.
type countingActor struct {
	period time.Duration
	ticks  []time.Duration
}

func (c *countingActor) Name() string          { return "counter" }
func (c *countingActor) Period() time.Duration { return c.period }
func (c *countingActor) Tick(now time.Duration, _ platform.Device) {
	c.ticks = append(c.ticks, now)
}

// The engine schedules actors at their period boundaries, like the
// simulator, and Run's stats integrate the recorded power.
func TestEngineScheduling(t *testing.T) {
	eng, err := replay.NewEngine(syntheticTrace(1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	act := &countingActor{period: 10 * time.Millisecond}
	if err := eng.Register(act); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(&countingActor{period: 2500 * time.Microsecond}); err == nil {
		t.Fatal("period not a multiple of the step was accepted")
	}

	st := eng.Run(100*time.Millisecond, false)
	if len(act.ticks) != 10 {
		t.Fatalf("actor ticked %d times over 100 ms at a 10 ms period, want 10", len(act.ticks))
	}
	for i, at := range act.ticks {
		if want := time.Duration(i) * 10 * time.Millisecond; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if st.Duration != 100*time.Millisecond {
		t.Fatalf("Duration = %v, want 100ms", st.Duration)
	}
	wantE := 1.8 * 0.1 // constant 1.8 W over 0.1 s
	if diff := st.EnergyJ - wantE; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("EnergyJ = %v, want %v", st.EnergyJ, wantE)
	}
	if st.GIPS < 1.19 || st.GIPS > 1.21 {
		t.Fatalf("GIPS = %v, want ~1.2", st.GIPS)
	}

	// Running past the end of the trace stops at the end.
	st = eng.Run(10*time.Second, false)
	if got := st.Duration; got != 900*time.Millisecond {
		t.Fatalf("post-exhaustion Duration = %v, want 900ms", got)
	}
}
