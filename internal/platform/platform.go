// Package platform defines the device abstraction the runtime stack is
// written against. The paper's controller is explicitly portable — it
// needs a perf counter to read, a power rail to meter, and sysfs knobs
// to write — so every software layer (the controller and its resilience
// ladder, the stock governors, the perf tool, the fault injector)
// consumes these capability interfaces instead of a concrete device.
//
// Backends implement Device: internal/sim's Phone (the cycle-accurate
// simulator), internal/platform/replay (a trace-driven device replaying
// a recorded run), and — the design target — a future adb/sysfs backend
// driving real Android hardware.
//
// Backend contract:
//
//   - Single-threaded cell: a Device, its Runner and every registered
//     Actor form one single-threaded cell. None of them needs to be safe
//     for concurrent use, and none may hold global state; parallel
//     campaigns run one cell per goroutine sharing only read-only inputs.
//   - Determinism: for a fixed backend state and seed set, a run is
//     bit-identical regardless of wall-clock time or worker count. All
//     randomness comes from seeded PRNGs owned by actors.
//   - Clock: Now is the backend's virtual (or measured) time; it is
//     monotonically non-decreasing and advances only between actor ticks.
//   - Fault decoration: fault injection composes over these interfaces
//     (internal/fault's WrapActuator/WrapPerf/WrapRunner decorators), so
//     a fault plan applies unchanged to any backend.
package platform

import (
	"time"

	"aspeo/internal/obs"
	"aspeo/internal/pmu"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
)

// Governor names understood by the cpufreq/devfreq file protocol. They
// belong to the platform contract: every backend's sysfs view speaks
// them, and consumers compare against them when dispatching policies.
const (
	GovInteractive  = "interactive"
	GovOndemand     = "ondemand"
	GovUserspace    = "userspace"
	GovPerformance  = "performance"
	GovPowersave    = "powersave"
	GovCPUBWHwmon   = "cpubw_hwmon"
	GovConservative = "conservative"
)

// Clock exposes the backend's time base.
type Clock interface {
	// Now returns the current backend time. Monotonically non-decreasing.
	Now() time.Duration
}

// PerfReader is the PMU surface the perf tool samples: consistent
// counter snapshots from which GIPS windows are derived, plus the knob
// for charging the sampling instrumentation's own cost to the device.
type PerfReader interface {
	// PMUSnapshot captures all hardware counters at once, so a reader
	// can compute mutually consistent deltas.
	PMUSnapshot() pmu.Snapshot
	// SetPerfOverhead installs the sampling instrumentation's standing
	// cost: cpuFrac of machine time plus standingW of power. Backends
	// whose recorded/measured power already includes instrumentation
	// (replay, real hardware) treat this as a no-op.
	SetPerfOverhead(cpuFrac, standingW float64)
}

// PowerMeter is the power rail: per-step device power, its CPU
// component (the heat source thermal models integrate), and a hook for
// charging one-shot instrumentation energy.
type PowerMeter interface {
	// LastPowerW returns the device power over the most recent step.
	LastPowerW() float64
	// LastCPUPowerW returns the CPU share (dynamic + leakage) of the
	// most recent step's power.
	LastCPUPowerW() float64
	// AddOverlayEnergyJ charges a one-shot instrumentation energy cost
	// (controller compute, actuation) to the device. Backends that
	// measure rather than model power ignore it.
	AddOverlayEnergyJ(j float64)
}

// ConfigActuator is the DVFS actuation surface: the (CPU frequency,
// memory bandwidth) ladder position and the thermal bound on it.
// Index-based setters are the raw mechanism; policy software actuates
// through the sysfs userspace-governor files (SysfsView), which route
// here after protocol checks.
type ConfigActuator interface {
	// SoC describes the chip's frequency and bandwidth ladders.
	SoC() *soc.SoC
	// CurFreqIdx returns the current CPU frequency ladder index.
	CurFreqIdx() int
	// CurBWIdx returns the current bandwidth ladder index.
	CurBWIdx() int
	// SetFreqIdx requests a CPU frequency; out-of-range indices clamp
	// and an active thermal cap bounds the request.
	SetFreqIdx(i int)
	// SetBWIdx requests a memory bandwidth vote; clamps like SetFreqIdx.
	SetBWIdx(i int)
	// SetThermalCapIdx bounds the CPU frequency at ladder index i (the
	// thermal driver's mitigation); negative lifts the cap.
	SetThermalCapIdx(i int)
	// ThermalCapIdx returns the active cap, or -1 when none.
	ThermalCapIdx() int
}

// SysfsView is the file protocol: the cpufreq/devfreq trees with their
// kernel-faithful write semantics. This is the surface the fault
// decorators intercept, so policy software MUST actuate through
// WriteFile (not the raw index setters) to stay inside the fault model.
type SysfsView interface {
	// ReadFile returns the file's current value.
	ReadFile(path string) (string, error)
	// WriteFile writes with userspace semantics: permissions, write
	// hooks and any installed decorator apply, and a rejected write
	// leaves the old value in place.
	WriteFile(path, value string) error
	// SetFile writes with root semantics: hooks, permissions and
	// decorators do not apply (an OEM daemon with root, the kernel
	// itself). The fault injector's hijacks use it.
	SetFile(path, value string)
	// FileExists reports whether the path is registered.
	FileExists(path string) bool
	// CreateFile registers a new node — governors publishing tunables.
	// A non-nil hook validates writes like a kernel store() callback.
	CreateFile(path, initial string, writable bool, hook sysfs.WriteHook)
}

// FileWrite is one sysfs write of a batch (see BatchWriter).
type FileWrite struct {
	Path, Value string
}

// BatchWriter is an optional capability a backend may add to its
// SysfsView: apply several userspace-semantics writes in one call.
// Semantics are exactly sequential WriteFile calls — writes apply in
// order and the first error aborts the batch, leaving later files
// untouched — so a caller may use it purely as a fast path.
//
// Capability discovery is by type assertion on the device a consumer
// holds. Fault decorators wrap devices in a plain platform.Device
// embedding, which deliberately does NOT expose this interface: under
// fault injection the assertion fails and consumers fall back to
// per-file WriteFile, keeping every write inside the fault model.
type BatchWriter interface {
	// WriteFiles applies the writes in order with WriteFile semantics,
	// stopping at (and returning) the first error.
	WriteFiles(writes []FileWrite) error
}

// Health is a control actor's self-diagnostics ledger: what its fault
// ladder observed and did. It lives in the platform contract (rather
// than internal/core, whose controller populates it) so every backend
// records the same shape through Telemetry.RecordHealth and every
// consumer — the report layer, the fleet rollups, the resilience tests —
// reads one definition.
type Health struct {
	// ActuationFailures counts failed sysfs actuation writes, retries
	// included.
	ActuationFailures int `json:"actuation_failures"`
	// ActuationRetries counts retry attempts spent on failed writes.
	ActuationRetries int `json:"actuation_retries"`
	// GovernorReinstalls counts hijacks detected and repaired by
	// rewriting the governor file back to userspace.
	GovernorReinstalls int `json:"governor_reinstalls"`
	// MaxFreqRestores counts scaling_max_freq clamps undone.
	MaxFreqRestores int `json:"max_freq_restores"`
	// RejectedSamples counts measurements the validation gate kept out
	// of the Kalman update; the next three break it down by cause.
	RejectedSamples  int `json:"rejected_samples"`
	NonFiniteSamples int `json:"non_finite_samples"`
	StuckSamples     int `json:"stuck_samples"`
	OutlierSamples   int `json:"outlier_samples"`
	// DegradedCycles counts control cycles spent at the safe
	// configuration.
	DegradedCycles int `json:"degraded_cycles"`
	// WatchdogTrips counts degrade and relinquish transitions.
	WatchdogTrips int `json:"watchdog_trips"`
	// ConsecutiveFailures is the watchdog's current failing-cycle run.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Relinquished is set once control is handed back to the stock
	// governors; the controller stops actuating for good.
	Relinquished bool `json:"relinquished"`
	// LastTransition names the most recent ladder transition and the
	// control cycle it fired on ("degraded@41", "recovered@44",
	// "relinquished@52"); empty until a transition fires. It mirrors the
	// ladder events of the decision trace, so an aggregate that only
	// sees the ledger still knows which rung fired last.
	LastTransition string `json:"last_transition,omitempty"`
}

// Add folds another ledger into this one, field by field. Fleet rollups
// use it to sum health across sessions; ConsecutiveFailures sums too
// (it reads as "failing cycles currently in flight" fleet-wide) and
// Relinquished ORs.
func (h *Health) Add(o Health) {
	h.ActuationFailures += o.ActuationFailures
	h.ActuationRetries += o.ActuationRetries
	h.GovernorReinstalls += o.GovernorReinstalls
	h.MaxFreqRestores += o.MaxFreqRestores
	h.RejectedSamples += o.RejectedSamples
	h.NonFiniteSamples += o.NonFiniteSamples
	h.StuckSamples += o.StuckSamples
	h.OutlierSamples += o.OutlierSamples
	h.DegradedCycles += o.DegradedCycles
	h.WatchdogTrips += o.WatchdogTrips
	h.ConsecutiveFailures += o.ConsecutiveFailures
	h.Relinquished = h.Relinquished || o.Relinquished
	if o.LastTransition != "" {
		// Fold order is the fleet's session-store order, so fleet-wide
		// this reads "a transition some session fired most recently".
		h.LastTransition = o.LastTransition
	}
}

// Telemetry is the device's statistics surface. Downward, it is what the
// stock governors sample: cumulative busy-time and traffic counters
// (snapshot and diff, like /proc/stat) and the input-event queue.
// Upward, it is where control software publishes its own health ledger,
// so any backend (sim, replay, a real device shim) records controller
// self-diagnostics uniformly and harnesses read them back without
// holding a concrete controller pointer.
type Telemetry interface {
	// CumMachineBusySec returns cumulative aggregate machine-busy
	// seconds. Monotonically non-decreasing.
	CumMachineBusySec() float64
	// CumBusyCoreSec returns cumulative OS-visible busy core-seconds.
	CumBusyCoreSec() float64
	// CumTrafficBytes returns cumulative DRAM traffic.
	CumTrafficBytes() float64
	// TakeTouches drains and returns pending input events; an immediate
	// second call returns 0.
	TakeTouches() int
	// RecordHealth publishes a control actor's health ledger. Recording
	// must not alter the device's trajectory: it is observation, not
	// actuation, and replaying a recorded run with or without a recorder
	// attached yields identical behavior.
	RecordHealth(h Health)
	// LastHealth returns the most recently recorded ledger, or the zero
	// value when nothing has been recorded.
	LastHealth() Health
	// RecordSpan publishes one decision-trace span from a control actor.
	// Like RecordHealth it is observation only: recording must not alter
	// the device's trajectory, and a run traced through any backend —
	// sim, replay, a real-device shim — produces the identical span
	// stream. Backends forward spans to an attached obs.Sink and drop
	// them when none is attached.
	RecordSpan(s obs.Span)
}

// Device bundles every capability a backend provides. Consumers should
// accept the narrowest interface that covers their needs; Device is the
// currency the Runner hands to actors.
type Device interface {
	Clock
	PerfReader
	PowerMeter
	ConfigActuator
	SysfsView
	Telemetry
}

// Actor is a periodically scheduled software component: a governor, the
// perf tool, the energy controller, the fault injector. Tick runs at
// the actor's period boundaries, before the device advances.
type Actor interface {
	// Name identifies the actor in logs and errors.
	Name() string
	// Period is the scheduling interval; it must be a positive multiple
	// of the runner's step.
	Period() time.Duration
	// Tick lets the actor observe and actuate the device.
	Tick(now time.Duration, dev Device)
}

// Runner drives one device and its actors in lockstep — the backend's
// event loop. sim.Engine and replay.Engine implement it.
type Runner interface {
	// Device returns the device the runner drives — possibly decorated
	// (see fault.WrapRunner); actors that bind the device at install
	// time must take it from here, not keep a backend pointer.
	Device() Device
	// Register adds an actor; it fails if the actor's period is not a
	// positive multiple of the runner's step.
	Register(a Actor) error
}

// Stats summarizes a run.
type Stats struct {
	Duration     time.Duration // run time on the backend clock
	EnergyJ      float64
	AvgPowerW    float64
	PeakPowerW   float64
	GIPS         float64 // PMU-derived system GIPS over the run
	Instructions float64
	FGCompleted  bool    // foreground batch work finished
	DroppedInstr float64 // paced work dropped by the foreground app
	FreqChanges  int
	BWChanges    int
}
