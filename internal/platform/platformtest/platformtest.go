// Package platformtest is the interface-conformance suite every
// platform.Device backend must pass. Backends import it from their own
// tests (internal/sim, internal/platform/replay) so the platform
// contract — clock monotonicity, PMU snapshot consistency, the sysfs
// governor-file protocol, actuator clamping, telemetry semantics — is
// asserted once and enforced everywhere, including future backends such
// as an adb/sysfs driver for real hardware.
package platformtest

import (
	"strconv"
	"testing"

	"aspeo/internal/obs"
	"aspeo/internal/platform"
	"aspeo/internal/pmu"
	"aspeo/internal/sysfs"
)

// Fixture is one backend instance under test. Step advances the backend
// by one of its native steps (time moves, counters may move); the suite
// calls it repeatedly, so it must stay valid for at least a few hundred
// steps.
type Fixture struct {
	Device platform.Device
	Step   func()
}

// Run executes the conformance suite against fresh fixtures from mk.
func Run(t *testing.T, name string, mk func(t *testing.T) Fixture) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, f Fixture)
	}{
		{"clock", testClock},
		{"pmu", testPMU},
		{"governor-files", testGovernorFiles},
		{"setspeed-protocol", testSetSpeedProtocol},
		{"root-writes", testRootWrites},
		{"create-file", testCreateFile},
		{"actuator", testActuator},
		{"thermal-cap", testThermalCap},
		{"telemetry", testTelemetry},
		{"power", testPower},
	}
	for _, tc := range tests {
		t.Run(name+"/"+tc.name, func(t *testing.T) {
			tc.fn(t, mk(t))
		})
	}
}

// testClock: time starts somewhere, never goes backward, and advances
// across steps.
func testClock(t *testing.T, f Fixture) {
	dev := f.Device
	t0 := dev.Now()
	if t0 < 0 {
		t.Fatalf("Now() = %v, want >= 0", t0)
	}
	prev := t0
	for i := 0; i < 10; i++ {
		f.Step()
		now := dev.Now()
		if now < prev {
			t.Fatalf("clock went backward: %v after %v", now, prev)
		}
		prev = now
	}
	if prev == t0 {
		t.Fatal("clock did not advance over 10 steps")
	}
}

// testPMU: snapshots are consistent and counters only move forward.
func testPMU(t *testing.T, f Fixture) {
	dev := f.Device
	before := dev.PMUSnapshot()
	for i := 0; i < 200; i++ {
		f.Step()
	}
	after := dev.PMUSnapshot()
	for _, c := range []pmu.Counter{pmu.Instructions, pmu.Cycles, pmu.BusAccessBytes} {
		if d := after.Delta(before, c); d < 0 {
			t.Fatalf("counter %v moved backward: delta %v", c, d)
		}
	}
	if d := after.Delta(before, pmu.Instructions); d == 0 {
		t.Fatal("instruction counter did not advance over 200 steps")
	}
}

// testGovernorFiles: both governor files exist, round-trip writes, and
// reject unknown interactions gracefully (missing path errors, not
// panics).
func testGovernorFiles(t *testing.T, f Fixture) {
	dev := f.Device
	for _, path := range []string{sysfs.CPUScalingGovernor, sysfs.DevFreqGovernor} {
		if !dev.FileExists(path) {
			t.Fatalf("governor file %s missing", path)
		}
		if err := dev.WriteFile(path, platform.GovUserspace); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		got, err := dev.ReadFile(path)
		if err != nil || got != platform.GovUserspace {
			t.Fatalf("readback of %s = %q, %v; want %q", path, got, err, platform.GovUserspace)
		}
	}
	if _, err := dev.ReadFile("/no/such/file"); err == nil {
		t.Fatal("reading a missing path succeeded")
	}
	if err := dev.WriteFile("/no/such/file", "x"); err == nil {
		t.Fatal("writing a missing path succeeded")
	}
}

// testSetSpeedProtocol: scaling_setspeed applies only under the
// userspace governor and routes to the frequency actuator, like the
// kernel's cpufreq userspace governor.
func testSetSpeedProtocol(t *testing.T, f Fixture) {
	dev := f.Device
	chip := dev.SoC()
	if err := dev.WriteFile(sysfs.CPUScalingGovernor, platform.GovInteractive); err != nil {
		t.Fatal(err)
	}
	khz := int(chip.Freq(1).GHz()*1e6 + 0.5)
	if err := dev.WriteFile(sysfs.CPUScalingSetSpeed, strconv.Itoa(khz)); err == nil {
		t.Fatal("setspeed accepted under a non-userspace governor")
	}
	if err := dev.WriteFile(sysfs.CPUScalingGovernor, platform.GovUserspace); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFile(sysfs.CPUScalingSetSpeed, "not-a-number"); err == nil {
		t.Fatal("setspeed accepted a non-numeric value")
	}
	if err := dev.WriteFile(sysfs.CPUScalingSetSpeed, strconv.Itoa(khz)); err != nil {
		t.Fatalf("setspeed under userspace: %v", err)
	}
	if got := dev.CurFreqIdx(); got != 1 {
		t.Fatalf("CurFreqIdx = %d after setspeed to ladder index 1", got)
	}
}

// testRootWrites: SetFile bypasses the userspace protocol (hooks and
// permissions), the way a root daemon or the kernel itself mutates the
// tree.
func testRootWrites(t *testing.T, f Fixture) {
	dev := f.Device
	if err := dev.WriteFile(sysfs.CPUAvailableFreqs, "tampered"); err == nil {
		t.Fatal("userspace write to a read-only file succeeded")
	}
	dev.SetFile(sysfs.CPUScalingGovernor, platform.GovInteractive)
	if got, _ := dev.ReadFile(sysfs.CPUScalingGovernor); got != platform.GovInteractive {
		t.Fatalf("SetFile did not take effect: governor %q", got)
	}
}

// testCreateFile: backends support governors publishing tunables with a
// kernel-style store() validation hook.
func testCreateFile(t *testing.T, f Fixture) {
	dev := f.Device
	const path = "/sys/devices/test/knob"
	dev.CreateFile(path, "10", true, func(_, _, val string) error {
		if _, err := strconv.Atoi(val); err != nil {
			return err
		}
		return nil
	})
	if !dev.FileExists(path) {
		t.Fatal("created file does not exist")
	}
	if err := dev.WriteFile(path, "junk"); err == nil {
		t.Fatal("write hook did not reject an invalid value")
	}
	if got, _ := dev.ReadFile(path); got != "10" {
		t.Fatalf("rejected write changed the value to %q", got)
	}
	if err := dev.WriteFile(path, "42"); err != nil {
		t.Fatalf("valid write rejected: %v", err)
	}
	if got, _ := dev.ReadFile(path); got != "42" {
		t.Fatalf("value = %q after write, want 42", got)
	}
}

// testActuator: index setters clamp to the ladders and report through
// the Cur accessors.
func testActuator(t *testing.T, f Fixture) {
	dev := f.Device
	chip := dev.SoC()
	top := len(chip.CPUFreqs) - 1
	dev.SetFreqIdx(top + 100)
	if got := dev.CurFreqIdx(); got != top {
		t.Fatalf("CurFreqIdx = %d after over-range request, want %d", got, top)
	}
	dev.SetFreqIdx(-5)
	if got := dev.CurFreqIdx(); got != 0 {
		t.Fatalf("CurFreqIdx = %d after under-range request, want 0", got)
	}
	topBW := len(chip.MemBWs) - 1
	dev.SetBWIdx(topBW + 100)
	if got := dev.CurBWIdx(); got != topBW {
		t.Fatalf("CurBWIdx = %d after over-range request, want %d", got, topBW)
	}
}

// testThermalCap: an active cap bounds requests (and the current point),
// a negative value lifts it.
func testThermalCap(t *testing.T, f Fixture) {
	dev := f.Device
	chip := dev.SoC()
	top := len(chip.CPUFreqs) - 1
	dev.SetFreqIdx(top)
	dev.SetThermalCapIdx(1)
	if got := dev.ThermalCapIdx(); got != 1 {
		t.Fatalf("ThermalCapIdx = %d, want 1", got)
	}
	if got := dev.CurFreqIdx(); got > 1 {
		t.Fatalf("CurFreqIdx = %d above an active cap of 1", got)
	}
	dev.SetFreqIdx(top)
	if got := dev.CurFreqIdx(); got > 1 {
		t.Fatalf("request above the cap landed at %d", got)
	}
	dev.SetThermalCapIdx(-1)
	if got := dev.ThermalCapIdx(); got != -1 {
		t.Fatalf("ThermalCapIdx = %d after lifting, want -1", got)
	}
	dev.SetFreqIdx(top)
	if got := dev.CurFreqIdx(); got != top {
		t.Fatalf("CurFreqIdx = %d after lifting the cap, want %d", got, top)
	}
}

// testTelemetry: cumulative counters never decrease and TakeTouches
// drains.
func testTelemetry(t *testing.T, f Fixture) {
	dev := f.Device
	busy0, core0, traffic0 := dev.CumMachineBusySec(), dev.CumBusyCoreSec(), dev.CumTrafficBytes()
	for i := 0; i < 200; i++ {
		f.Step()
	}
	if b := dev.CumMachineBusySec(); b < busy0 {
		t.Fatalf("CumMachineBusySec decreased: %v -> %v", busy0, b)
	}
	if c := dev.CumBusyCoreSec(); c < core0 {
		t.Fatalf("CumBusyCoreSec decreased: %v -> %v", core0, c)
	}
	if tr := dev.CumTrafficBytes(); tr < traffic0 {
		t.Fatalf("CumTrafficBytes decreased: %v -> %v", traffic0, tr)
	}
	dev.TakeTouches()
	if n := dev.TakeTouches(); n != 0 {
		t.Fatalf("second TakeTouches = %d, want 0 (drain semantics)", n)
	}

	// Health recording: zero before any publication, read-back equal
	// after, and recording must not perturb the device's trajectory
	// (the clock keeps advancing identically either way — asserted
	// implicitly by the determinism suites that run with controllers
	// attached, which record every cycle).
	if h := dev.LastHealth(); h != (platform.Health{}) {
		t.Fatalf("LastHealth before any RecordHealth = %+v, want zero", h)
	}
	want := platform.Health{ActuationFailures: 3, RejectedSamples: 2, StuckSamples: 2, WatchdogTrips: 1}
	dev.RecordHealth(want)
	if got := dev.LastHealth(); got != want {
		t.Fatalf("LastHealth = %+v, want %+v", got, want)
	}
	dev.RecordHealth(platform.Health{})

	// Span recording: with no sink attached, RecordSpan must be a safe
	// no-op (dropped, not buffered), and like RecordHealth it must not
	// perturb the device — same clock and counters before and after.
	now0, busy1 := dev.Now(), dev.CumMachineBusySec()
	dev.RecordSpan(obs.Span{Cycle: 1, Stage: obs.StageCycle, At: now0,
		Attrs: obs.Attrs{"probe": true}})
	if got := dev.Now(); got != now0 {
		t.Fatalf("RecordSpan advanced the clock: %v -> %v", now0, got)
	}
	if b := dev.CumMachineBusySec(); b != busy1 {
		t.Fatalf("RecordSpan changed CumMachineBusySec: %v -> %v", busy1, b)
	}
}

// testPower: the rail reads sanely after a step and the instrumentation
// hooks are accepted (possibly as no-ops).
func testPower(t *testing.T, f Fixture) {
	dev := f.Device
	for i := 0; i < 5; i++ {
		f.Step()
	}
	p, cpu := dev.LastPowerW(), dev.LastCPUPowerW()
	if p < 0 || cpu < 0 {
		t.Fatalf("negative power: device %v, cpu %v", p, cpu)
	}
	if cpu > p {
		t.Fatalf("CPU power %v exceeds device power %v", cpu, p)
	}
	dev.SetPerfOverhead(0.04, 0.015)
	dev.AddOverlayEnergyJ(1e-3)
	dev.SetPerfOverhead(0, 0)
	f.Step()
}
