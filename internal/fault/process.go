package fault

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"aspeo/internal/ckpt"
)

// Process-level chaos: where Plan torments a session's I/O surfaces
// (sysfs writes, perf readings), ProcessPlan torments the runtime
// around the session — worker panics at chosen control cycles, stalls,
// and checkpoint-write failures. The fleet manager wires these in; the
// plan itself is immutable and seeded by attempt/cycle ordinals, so a
// chaos run is exactly reproducible.
type ProcessPlan struct {
	// PanicAtCycle, when positive, panics the session worker when the
	// controller reaches this control cycle (requires a controller-mode
	// session — governor cells have no cycles).
	PanicAtCycle int `json:"panic_at_cycle,omitempty"`
	// PanicOnAttempts lists the 1-based attempt ordinals on which
	// PanicAtCycle fires; empty means the first attempt only, so a
	// restart ladder with budget ≥ 1 always recovers.
	PanicOnAttempts []int `json:"panic_on_attempts,omitempty"`
	// StallAtCycle, when positive, injects a wall-clock sleep of
	// StallFor when the controller reaches this cycle — a hung/slow
	// backend read, visible to drain deadlines and HTTP request
	// timeouts but not to the simulated cell.
	StallAtCycle int           `json:"stall_at_cycle,omitempty"`
	StallFor     time.Duration `json:"stall_for_ns,omitempty"`
	// CheckpointFailures lists 1-based ordinals of checkpoint writes
	// (per manager, across all sessions) that fail at CreateTemp.
	CheckpointFailures []int `json:"checkpoint_failures,omitempty"`
}

// Zero reports whether the plan injects nothing.
func (p ProcessPlan) Zero() bool {
	return p.PanicAtCycle == 0 && p.StallAtCycle == 0 && len(p.CheckpointFailures) == 0
}

// Validate rejects unusable plans.
func (p ProcessPlan) Validate() error {
	if p.PanicAtCycle < 0 {
		return fmt.Errorf("fault: negative PanicAtCycle %d", p.PanicAtCycle)
	}
	if p.StallAtCycle < 0 {
		return fmt.Errorf("fault: negative StallAtCycle %d", p.StallAtCycle)
	}
	if p.StallAtCycle > 0 && p.StallFor <= 0 {
		return fmt.Errorf("fault: StallAtCycle without a positive StallFor")
	}
	for _, a := range p.PanicOnAttempts {
		if a < 1 {
			return fmt.Errorf("fault: attempt ordinal %d (1-based)", a)
		}
	}
	for _, o := range p.CheckpointFailures {
		if o < 1 {
			return fmt.Errorf("fault: checkpoint-failure ordinal %d (1-based)", o)
		}
	}
	return nil
}

// ShouldPanic reports whether the worker running the given 1-based
// attempt should panic at the given control cycle.
func (p ProcessPlan) ShouldPanic(attempt, cycle int) bool {
	if p.PanicAtCycle == 0 || cycle != p.PanicAtCycle {
		return false
	}
	if len(p.PanicOnAttempts) == 0 {
		return attempt == 1
	}
	for _, a := range p.PanicOnAttempts {
		if a == attempt {
			return true
		}
	}
	return false
}

// ShouldStall reports whether to inject the stall at this cycle.
func (p ProcessPlan) ShouldStall(cycle int) bool {
	return p.StallAtCycle > 0 && cycle == p.StallAtCycle
}

// ChaosFS wraps a ckpt.FS and fails chosen checkpoint writes: the Nth
// CreateTemp (1-based, counted across the FS's lifetime) errors for
// every N in the plan's CheckpointFailures. All other operations pass
// through. Safe for concurrent use — fleet workers share one ChaosFS.
type ChaosFS struct {
	inner ckpt.FS

	mu     sync.Mutex
	writes int
	fail   map[int]bool
}

// NewChaosFS builds a ChaosFS failing the given 1-based write ordinals.
func NewChaosFS(inner ckpt.FS, failWrites []int) *ChaosFS {
	c := &ChaosFS{inner: inner, fail: make(map[int]bool, len(failWrites))}
	for _, o := range failWrites {
		c.fail[o] = true
	}
	return c
}

// Writes returns how many checkpoint writes were attempted.
func (c *ChaosFS) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// MkdirAll implements ckpt.FS.
func (c *ChaosFS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

// CreateTemp implements ckpt.FS, failing planned ordinals. Only
// checkpoint writes (the ".ckpt-*" temp pattern) are counted and
// failed — readiness probes and other temp files pass through, so a
// /readyz check never shifts the planned failure schedule.
func (c *ChaosFS) CreateTemp(dir, pattern string) (ckpt.File, error) {
	if !strings.HasPrefix(pattern, ".ckpt") {
		return c.inner.CreateTemp(dir, pattern)
	}
	c.mu.Lock()
	c.writes++
	n := c.writes
	c.mu.Unlock()
	if c.fail[n] {
		return nil, fmt.Errorf("fault: injected checkpoint-write failure (write %d)", n)
	}
	return c.inner.CreateTemp(dir, pattern)
}

// Rename implements ckpt.FS.
func (c *ChaosFS) Rename(oldpath, newpath string) error { return c.inner.Rename(oldpath, newpath) }

// Remove implements ckpt.FS.
func (c *ChaosFS) Remove(name string) error { return c.inner.Remove(name) }

// ReadFile implements ckpt.FS.
func (c *ChaosFS) ReadFile(name string) ([]byte, error) { return c.inner.ReadFile(name) }

// ReadDir implements ckpt.FS.
func (c *ChaosFS) ReadDir(dir string) ([]string, error) { return c.inner.ReadDir(dir) }

var _ ckpt.FS = (*ChaosFS)(nil)
