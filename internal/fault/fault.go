// Package fault is a deterministic, seeded fault injector for the two
// I/O surfaces the online controller depends on: the sysfs actuation
// files and the perf reader.
//
// On a real Nexus 6 neither surface is trustworthy. Sysfs stores return
// transient -EBUSY/-EINVAL, OEM daemons (msm_thermal, mpdecision, touch
// boost) silently rewrite scaling_governor and clamp scaling_max_freq
// out from under userspace DVFS, and PMU-derived perf readings drop
// samples, spike under counter multiplexing, and occasionally stick at a
// stale or zero value (Bokhari et al.; Hoque et al.). A Plan describes
// such a scenario as scheduled events plus seeded probabilistic event
// rates; an Injector executes it against one simulation cell.
//
// Determinism contract: a Plan is an immutable value shared across
// cells; every cell builds its own Injector from (Plan, seed), all rng
// draws happen inside that single-threaded cell, and draw order is fixed
// by the plan (a probability of zero never consumes a draw). A scenario
// therefore replays bit-identically under internal/par at any worker
// count.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"aspeo/internal/detrand"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/soc"
	"aspeo/internal/sysfs"
)

// Hijack is a scheduled governor-hijack event: a simulated OEM daemon
// rewriting the DVFS policy files behind userspace's back (with root, so
// write hooks and permissions do not apply).
type Hijack struct {
	// At is the first firing time.
	At time.Duration
	// Governor replaces scaling_governor; empty means "interactive".
	Governor string
	// MaxFreqKHz, when positive, clamps scaling_max_freq and the current
	// CPU frequency the way msm_thermal bounds policy->max.
	MaxFreqKHz int
	// Repeat re-fires the event at this period; 0 fires once.
	Repeat time.Duration
}

// StuckFile freezes a sysfs file: every write from From on is rejected
// with EBUSY, the way a wedged firmware interface stops accepting
// stores while still reading back its last value.
type StuckFile struct {
	Path string
	From time.Duration
}

// Plan is one fault scenario. The zero value injects nothing.
type Plan struct {
	// --- sysfs faults ---

	// WriteFailProb is the per-write probability of a transient
	// EBUSY/EINVAL rejection on the faultable paths.
	WriteFailProb float64
	// WriteFailPaths restricts probabilistic write failures; nil means
	// the two actuation files (scaling_setspeed, devfreq set_freq).
	WriteFailPaths []string
	// WriteFailFrom/WriteFailUntil bound the failure window; both zero
	// means the whole run.
	WriteFailFrom  time.Duration
	WriteFailUntil time.Duration
	// Hijacks are the scheduled governor-hijack events.
	Hijacks []Hijack
	// StuckFiles are the frozen sysfs nodes.
	StuckFiles []StuckFile

	// --- perf faults ---

	// DropProb is the per-sample probability that a completed reading is
	// discarded before publication.
	DropProb float64
	// SpikeProb/SpikeFactor inject counter-multiplexing spikes: the
	// reading's GIPS is multiplied by SpikeFactor (default 4).
	SpikeProb   float64
	SpikeFactor float64
	// ZeroProb is the per-sample probability of a zero reading (counter
	// wrap / lost event group).
	ZeroProb float64
	// StuckReadFrom/StuckReadFor freeze readings at the last published
	// value for the given window; StuckReadFor 0 disables.
	StuckReadFrom time.Duration
	StuckReadFor  time.Duration
}

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	for name, pr := range map[string]float64{
		"WriteFailProb": p.WriteFailProb,
		"DropProb":      p.DropProb,
		"SpikeProb":     p.SpikeProb,
		"ZeroProb":      p.ZeroProb,
	} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", name, pr)
		}
	}
	if p.SpikeFactor < 0 {
		return fmt.Errorf("fault: negative spike factor %v", p.SpikeFactor)
	}
	if p.WriteFailUntil != 0 && p.WriteFailUntil < p.WriteFailFrom {
		return fmt.Errorf("fault: write-failure window ends (%v) before it starts (%v)",
			p.WriteFailUntil, p.WriteFailFrom)
	}
	for _, h := range p.Hijacks {
		if h.At < 0 || h.Repeat < 0 {
			return fmt.Errorf("fault: negative hijack time in %+v", h)
		}
	}
	for _, s := range p.StuckFiles {
		if s.Path == "" {
			return fmt.Errorf("fault: stuck file with empty path")
		}
	}
	if p.StuckReadFor < 0 || p.StuckReadFrom < 0 {
		return fmt.Errorf("fault: negative stuck-read window")
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.WriteFailProb > 0 || len(p.Hijacks) > 0 || len(p.StuckFiles) > 0 ||
		p.DropProb > 0 || p.SpikeProb > 0 || p.ZeroProb > 0 || p.StuckReadFor > 0
}

// Counts tallies the faults an Injector actually delivered; the
// resilience tests match them against the controller's Health counters.
type Counts struct {
	WriteFailures  int // probabilistic EBUSY/EINVAL rejections
	StuckWrites    int // rejections by frozen files
	Hijacks        int // governor-hijack events fired
	DroppedSamples int
	Spikes         int
	ZeroReads      int
	StuckReads     int
}

// Injector executes one Plan against one simulation cell. It implements
// platform.Actor for the scheduled events and the scenario clock;
// register it before the actors it torments so its clock leads theirs,
// then compose it onto the cell's I/O surfaces with WrapRunner (or
// WrapActuator) and WrapPerf. The injector is backend-agnostic: it
// decorates platform interfaces, so one Plan torments the simulator, the
// replay backend, or a real device identically.
type Injector struct {
	plan   Plan
	rng    *rand.Rand
	rngSrc *detrand.Source

	now      time.Duration
	nextFire []time.Duration // per hijack; <0 when exhausted

	lastGIPS float64
	haveLast bool

	counts Counts
}

// NewInjector validates the plan and builds an injector. Cells of one
// campaign pass their own seeds so probabilistic faults vary per seed
// while staying reproducible.
func NewInjector(plan Plan, seed int64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	rng, src := detrand.New(seed)
	in := &Injector{
		plan:     plan,
		rng:      rng,
		rngSrc:   src,
		nextFire: make([]time.Duration, len(plan.Hijacks)),
	}
	for i, h := range plan.Hijacks {
		in.nextFire[i] = h.At
	}
	return in, nil
}

// MustNewInjector is NewInjector but panics on invalid plans.
func MustNewInjector(plan Plan, seed int64) *Injector {
	in, err := NewInjector(plan, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// WrapActuator decorates a device so every userspace sysfs write passes
// through the injector: frozen files reject, faultable paths fail with
// the planned probability. Root-semantics SetFile and all reads pass
// through untouched, exactly like the kernel: faults hit the store path,
// not the readback.
func WrapActuator(dev platform.Device, in *Injector) platform.Device {
	return &faultDevice{Device: dev, in: in}
}

type faultDevice struct {
	platform.Device
	in *Injector
}

// WriteFile implements platform.SysfsView with fault interception.
func (d *faultDevice) WriteFile(path, value string) error {
	if err := d.in.interceptWrite(path, value); err != nil {
		return err
	}
	return d.Device.WriteFile(path, value)
}

// WrapPerf installs the injector's reading hook on a perf reader and
// returns it, so wiring reads as one composition expression.
func WrapPerf(p *perftool.Perf, in *Injector) *perftool.Perf {
	p.SetFaultHook(in.interceptReading)
	return p
}

// WrapRunner returns a runner whose Device carries the injector's write
// decoration: actors installed through it (the controller, stock
// governors) actuate through the faulty surface while the runner's
// scheduling is untouched.
func WrapRunner(r platform.Runner, in *Injector) platform.Runner {
	return &faultRunner{Runner: r, dev: WrapActuator(r.Device(), in)}
}

type faultRunner struct {
	platform.Runner
	dev platform.Device
}

// Device implements platform.Runner.
func (r *faultRunner) Device() platform.Device { return r.dev }

// Counts returns the faults delivered so far.
func (in *Injector) Counts() Counts { return in.counts }

// Name implements platform.Actor.
func (in *Injector) Name() string { return "fault-injector" }

// Period implements platform.Actor: the injector's clock advances at the
// sysfs-daemon granularity (100 ms), finer than every control period.
func (in *Injector) Period() time.Duration { return 100 * time.Millisecond }

// Tick implements platform.Actor: advance the scenario clock and fire
// due hijack events.
func (in *Injector) Tick(now time.Duration, dev platform.Device) {
	in.now = now
	for i := range in.plan.Hijacks {
		if in.nextFire[i] < 0 || now < in.nextFire[i] {
			continue
		}
		in.fireHijack(dev, in.plan.Hijacks[i])
		if r := in.plan.Hijacks[i].Repeat; r > 0 {
			in.nextFire[i] = now + r
		} else {
			in.nextFire[i] = -1
		}
	}
}

// fireHijack performs one governor-hijack event with root semantics
// (SetFile bypasses hooks, permissions and any fault decoration).
func (in *Injector) fireHijack(dev platform.Device, h Hijack) {
	gov := h.Governor
	if gov == "" {
		gov = platform.GovInteractive
	}
	dev.SetFile(sysfs.CPUScalingGovernor, gov)
	if h.MaxFreqKHz > 0 {
		dev.SetFile(sysfs.CPUScalingMaxFreq, strconv.Itoa(h.MaxFreqKHz))
		// msm_thermal clamps the running frequency too, not just the
		// policy bound.
		capIdx := dev.SoC().NearestFreqIdx(soc.Freq(float64(h.MaxFreqKHz) / 1e6))
		if dev.CurFreqIdx() > capIdx {
			dev.SetFreqIdx(capIdx)
		}
	}
	in.counts.Hijacks++
}

// interceptWrite vets one userspace write (the WrapActuator hot path):
// frozen files reject every write; faultable paths fail with the planned
// probability inside the failure window, alternating EBUSY and EINVAL
// deterministically.
func (in *Injector) interceptWrite(path, _ string) error {
	for _, s := range in.plan.StuckFiles {
		if s.Path == path && in.now >= s.From {
			in.counts.StuckWrites++
			return sysfs.ErrBusy
		}
	}
	if in.plan.WriteFailProb > 0 && in.writeFaultable(path) && in.windowActive() {
		if in.rng.Float64() < in.plan.WriteFailProb {
			in.counts.WriteFailures++
			if in.counts.WriteFailures%2 == 1 {
				return sysfs.ErrBusy
			}
			return sysfs.ErrInvalid
		}
	}
	return nil
}

func (in *Injector) writeFaultable(path string) bool {
	paths := in.plan.WriteFailPaths
	if paths == nil {
		paths = []string{sysfs.CPUScalingSetSpeed, sysfs.DevFreqSetFreq}
	}
	for _, p := range paths {
		if p == path {
			return true
		}
	}
	return false
}

func (in *Injector) windowActive() bool {
	if in.now < in.plan.WriteFailFrom {
		return false
	}
	return in.plan.WriteFailUntil == 0 || in.now < in.plan.WriteFailUntil
}

// interceptReading is the perftool.FaultHook. Evaluation order is fixed
// by the plan — stuck window, drop, zero, spike — and a zero probability
// never consumes an rng draw, so replays are bit-identical.
func (in *Injector) interceptReading(r perftool.Reading) (perftool.Reading, bool) {
	if in.plan.StuckReadFor > 0 && in.haveLast &&
		r.EndedAt >= in.plan.StuckReadFrom &&
		r.EndedAt < in.plan.StuckReadFrom+in.plan.StuckReadFor {
		in.counts.StuckReads++
		r.GIPS = in.lastGIPS
		return r, true
	}
	if in.plan.DropProb > 0 && in.rng.Float64() < in.plan.DropProb {
		in.counts.DroppedSamples++
		return r, false
	}
	if in.plan.ZeroProb > 0 && in.rng.Float64() < in.plan.ZeroProb {
		in.counts.ZeroReads++
		r.GIPS = 0
		return r, true
	}
	if in.plan.SpikeProb > 0 && in.rng.Float64() < in.plan.SpikeProb {
		in.counts.Spikes++
		f := in.plan.SpikeFactor
		if f == 0 {
			f = 4
		}
		r.GIPS *= f
		return r, true
	}
	in.lastGIPS = r.GIPS
	in.haveLast = true
	return r, true
}
