package fault

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"aspeo/internal/perftool"
	"aspeo/internal/sim"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

func testPhone(t *testing.T) *sim.Phone {
	t.Helper()
	ph, err := sim.NewPhone(sim.Config{
		Foreground: workload.Spotify(), Load: workload.NoLoad, Seed: 1, ScreenOn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ph
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"full valid", Plan{
			WriteFailProb: 0.5, DropProb: 0.1, SpikeProb: 0.1, ZeroProb: 0.1,
			SpikeFactor: 4,
			Hijacks:     []Hijack{{At: time.Second, Repeat: 2 * time.Second}},
			StuckFiles:  []StuckFile{{Path: sysfs.CPUScalingSetSpeed}},
		}, true},
		{"probability above one", Plan{WriteFailProb: 1.5}, false},
		{"negative probability", Plan{DropProb: -0.1}, false},
		{"negative spike factor", Plan{SpikeFactor: -1}, false},
		{"inverted window", Plan{WriteFailProb: 0.1, WriteFailFrom: 5 * time.Second, WriteFailUntil: time.Second}, false},
		{"negative hijack time", Plan{Hijacks: []Hijack{{At: -time.Second}}}, false},
		{"stuck file no path", Plan{StuckFiles: []StuckFile{{}}}, false},
		{"negative stuck read", Plan{StuckReadFor: -time.Second}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if c.ok && err != nil {
				t.Fatalf("valid plan rejected: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("invalid plan accepted")
			}
		})
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Fatal("zero plan reported active")
	}
	for i, p := range []Plan{
		{WriteFailProb: 0.1},
		{Hijacks: []Hijack{{}}},
		{StuckFiles: []StuckFile{{Path: "x"}}},
		{DropProb: 0.1},
		{SpikeProb: 0.1},
		{ZeroProb: 0.1},
		{StuckReadFor: time.Second},
	} {
		if !p.Active() {
			t.Fatalf("plan %d should be active", i)
		}
	}
}

// A hijack fires at its scheduled time, rewrites the governor with root
// semantics, clamps the max-freq bound, and re-fires at its period.
func TestHijackFiresOnSchedule(t *testing.T) {
	ph := testPhone(t)
	fs := ph.FS()
	if err := fs.Write(sysfs.CPUScalingGovernor, sim.GovUserspace); err != nil {
		t.Fatal(err)
	}
	maxIdx := len(ph.SoC().CPUFreqs) - 1
	ph.SetFreqIdx(maxIdx)
	capKHz := int(ph.SoC().Freq(2).GHz()*1e6 + 0.5)

	in := MustNewInjector(Plan{Hijacks: []Hijack{{
		At: 2 * time.Second, MaxFreqKHz: capKHz, Repeat: 3 * time.Second,
	}}}, 1)

	in.Tick(time.Second, ph)
	if gov, _ := fs.Read(sysfs.CPUScalingGovernor); gov != sim.GovUserspace {
		t.Fatalf("hijack fired early: governor %q at t=1s", gov)
	}
	in.Tick(2*time.Second, ph)
	if gov, _ := fs.Read(sysfs.CPUScalingGovernor); gov != sim.GovInteractive {
		t.Fatalf("governor %q after hijack, want default interactive", gov)
	}
	if mf, _ := fs.Read(sysfs.CPUScalingMaxFreq); mf != strconv.Itoa(capKHz) {
		t.Fatalf("max_freq %q after hijack, want %d", mf, capKHz)
	}
	if ph.CurFreqIdx() > 2 {
		t.Fatalf("running frequency idx %d not clamped to 2", ph.CurFreqIdx())
	}
	if in.Counts().Hijacks != 1 {
		t.Fatalf("Hijacks = %d, want 1", in.Counts().Hijacks)
	}

	// Repair, then the repeat must re-fire one period later.
	fs.Set(sysfs.CPUScalingGovernor, sim.GovUserspace)
	in.Tick(4*time.Second, ph)
	if in.Counts().Hijacks != 1 {
		t.Fatal("repeat fired before its period elapsed")
	}
	in.Tick(5*time.Second, ph)
	if in.Counts().Hijacks != 2 {
		t.Fatalf("Hijacks = %d after repeat period, want 2", in.Counts().Hijacks)
	}
	if gov, _ := fs.Read(sysfs.CPUScalingGovernor); gov != sim.GovInteractive {
		t.Fatal("repeat hijack did not rewrite the governor")
	}
}

// One-shot hijacks fire exactly once.
func TestHijackOneShot(t *testing.T) {
	ph := testPhone(t)
	in := MustNewInjector(Plan{Hijacks: []Hijack{{At: time.Second}}}, 1)
	for now := time.Duration(0); now <= 10*time.Second; now += 100 * time.Millisecond {
		in.Tick(now, ph)
	}
	if in.Counts().Hijacks != 1 {
		t.Fatalf("one-shot hijack fired %d times", in.Counts().Hijacks)
	}
}

// Stuck files reject every write from their onset with EBUSY while the
// old value stays readable; probabilistic failures alternate EBUSY and
// EINVAL.
func TestInterceptWrite(t *testing.T) {
	ph := testPhone(t)
	fs := ph.FS()
	fs.Write(sysfs.CPUScalingGovernor, sim.GovUserspace)

	in := MustNewInjector(Plan{
		WriteFailProb: 1, // deterministic: every faultable write fails
		StuckFiles:    []StuckFile{{Path: sysfs.CPUScalingMaxFreq, From: 5 * time.Second}},
	}, 1)
	dev := WrapActuator(ph, in)

	// Before the stuck onset the file accepts writes.
	in.Tick(time.Second, ph)
	if err := dev.WriteFile(sysfs.CPUScalingMaxFreq, "1000000"); err != nil {
		t.Fatalf("write before stuck onset failed: %v", err)
	}
	in.Tick(5*time.Second, ph)
	if err := dev.WriteFile(sysfs.CPUScalingMaxFreq, "2649600"); !errorsIsBusy(err) {
		t.Fatalf("stuck file write error = %v, want EBUSY", err)
	}
	if v, _ := fs.Read(sysfs.CPUScalingMaxFreq); v != "1000000" {
		t.Fatalf("stuck file value changed to %q", v)
	}
	if in.Counts().StuckWrites != 1 {
		t.Fatalf("StuckWrites = %d", in.Counts().StuckWrites)
	}

	// Probabilistic failures on the actuation file alternate errno.
	err1 := dev.WriteFile(sysfs.CPUScalingSetSpeed, "1000000")
	err2 := dev.WriteFile(sysfs.CPUScalingSetSpeed, "1000000")
	if !errorsIsBusy(err1) {
		t.Fatalf("first failure = %v, want EBUSY", err1)
	}
	if !errorsIsInvalid(err2) {
		t.Fatalf("second failure = %v, want EINVAL", err2)
	}
	if in.Counts().WriteFailures != 2 {
		t.Fatalf("WriteFailures = %d", in.Counts().WriteFailures)
	}

	// Non-faultable paths pass through untouched.
	if err := dev.WriteFile(sysfs.CPUScalingGovernor, sim.GovUserspace); err != nil {
		t.Fatalf("non-faultable write failed: %v", err)
	}
}

// The write-failure window bounds probabilistic failures.
func TestWriteFailureWindow(t *testing.T) {
	ph := testPhone(t)
	fs := ph.FS()
	fs.Write(sysfs.CPUScalingGovernor, sim.GovUserspace)
	in := MustNewInjector(Plan{
		WriteFailProb: 1,
		WriteFailFrom: 2 * time.Second, WriteFailUntil: 4 * time.Second,
	}, 1)
	dev := WrapActuator(ph, in)

	check := func(now time.Duration, wantFail bool) {
		t.Helper()
		in.Tick(now, ph)
		err := dev.WriteFile(sysfs.CPUScalingSetSpeed, "1000000")
		if wantFail && err == nil {
			t.Fatalf("write at %v succeeded inside the failure window", now)
		}
		if !wantFail && err != nil {
			t.Fatalf("write at %v failed outside the window: %v", now, err)
		}
	}
	check(time.Second, false)
	check(2*time.Second, true)
	check(3*time.Second, true)
	check(4*time.Second, false)
}

// The perf hook delivers drops, zeros, spikes and stuck windows with the
// planned semantics and counts each delivered fault.
func TestInterceptReading(t *testing.T) {
	in := MustNewInjector(Plan{ZeroProb: 1}, 1)
	r, keep := in.interceptReading(perftool.Reading{GIPS: 2, EndedAt: time.Second})
	if !keep || r.GIPS != 0 {
		t.Fatalf("zero fault: keep=%v gips=%v", keep, r.GIPS)
	}
	if in.Counts().ZeroReads != 1 {
		t.Fatalf("ZeroReads = %d", in.Counts().ZeroReads)
	}

	in = MustNewInjector(Plan{DropProb: 1}, 1)
	if _, keep := in.interceptReading(perftool.Reading{GIPS: 2}); keep {
		t.Fatal("drop fault kept the reading")
	}
	if in.Counts().DroppedSamples != 1 {
		t.Fatalf("DroppedSamples = %d", in.Counts().DroppedSamples)
	}

	in = MustNewInjector(Plan{SpikeProb: 1}, 1) // default factor 4
	r, keep = in.interceptReading(perftool.Reading{GIPS: 2})
	if !keep || r.GIPS != 8 {
		t.Fatalf("spike fault: keep=%v gips=%v, want 8", keep, r.GIPS)
	}

	// Stuck window: readings freeze at the last clean value.
	in = MustNewInjector(Plan{StuckReadFrom: 2 * time.Second, StuckReadFor: 3 * time.Second}, 1)
	r, _ = in.interceptReading(perftool.Reading{GIPS: 1.5, EndedAt: time.Second})
	if r.GIPS != 1.5 {
		t.Fatal("clean reading altered before stuck window")
	}
	r, _ = in.interceptReading(perftool.Reading{GIPS: 9, EndedAt: 3 * time.Second})
	if r.GIPS != 1.5 {
		t.Fatalf("stuck reading = %v, want frozen 1.5", r.GIPS)
	}
	r, _ = in.interceptReading(perftool.Reading{GIPS: 9, EndedAt: 6 * time.Second})
	if r.GIPS != 9 {
		t.Fatalf("reading after stuck window = %v, want 9", r.GIPS)
	}
	if in.Counts().StuckReads != 1 {
		t.Fatalf("StuckReads = %d", in.Counts().StuckReads)
	}
}

// Determinism: the same (plan, seed) delivers the same fault sequence;
// different seeds differ.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{
		WriteFailProb: 0.3, DropProb: 0.2, SpikeProb: 0.1, ZeroProb: 0.05,
	}
	runOnce := func(seed int64) string {
		ph := testPhone(t)
		fs := ph.FS()
		fs.Write(sysfs.CPUScalingGovernor, sim.GovUserspace)
		in := MustNewInjector(plan, seed)
		dev := WrapActuator(ph, in)
		var sig string
		for i := 0; i < 200; i++ {
			err := dev.WriteFile(sysfs.CPUScalingSetSpeed, "1000000")
			r, keep := in.interceptReading(perftool.Reading{GIPS: 1, Seq: i})
			sig += fmt.Sprintf("%v|%v|%v;", err != nil, keep, r.GIPS)
		}
		return sig + fmt.Sprintf("%+v", in.Counts())
	}
	if runOnce(42) != runOnce(42) {
		t.Fatal("same (plan, seed) produced different fault sequences")
	}
	if runOnce(42) == runOnce(43) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// A zero probability must not consume an rng draw: adding an inactive
// fault type to a plan must not change the sequence of the active one.
func TestZeroProbConsumesNoDraw(t *testing.T) {
	seq := func(plan Plan) string {
		in := MustNewInjector(plan, 7)
		var sig string
		for i := 0; i < 100; i++ {
			_, keep := in.interceptReading(perftool.Reading{GIPS: 1})
			sig += fmt.Sprintf("%v", keep)
		}
		return sig
	}
	base := seq(Plan{DropProb: 0.3})
	withInactive := seq(Plan{DropProb: 0.3, SpikeProb: 0, ZeroProb: 0})
	if base != withInactive {
		t.Fatal("inactive fault types perturbed the active drop sequence")
	}
}

func errorsIsBusy(err error) bool    { return errors.Is(err, sysfs.ErrBusy) }
func errorsIsInvalid(err error) bool { return errors.Is(err, sysfs.ErrInvalid) }
