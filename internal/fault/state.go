package fault

import (
	"encoding/json"
	"fmt"
	"time"

	"aspeo/internal/platform"
)

// state is the JSON shape of a checkpointed injector: the rng stream
// position, the scenario clock, per-hijack fire schedule, the stuck-read
// memory, and the delivered-fault tallies. The plan itself is not
// serialized — a restored cell is rebuilt from the same immutable Plan —
// but its hijack count is recorded so a mismatched plan fails loudly.
type state struct {
	Hijacks  int             `json:"hijacks"`
	RNGSeed  int64           `json:"rng_seed"`
	RNGDraws uint64          `json:"rng_draws"`
	Now      time.Duration   `json:"now_ns"`
	NextFire []time.Duration `json:"next_fire_ns"`
	LastGIPS float64         `json:"last_gips"`
	HaveLast bool            `json:"have_last"`
	Counts   Counts          `json:"counts"`
}

// CheckpointState implements platform.Checkpointer.
func (in *Injector) CheckpointState() (json.RawMessage, error) {
	seed, draws := in.rngSrc.State()
	s := state{
		Hijacks: len(in.plan.Hijacks), RNGSeed: seed, RNGDraws: draws,
		Now: in.now, NextFire: in.nextFire,
		LastGIPS: in.lastGIPS, HaveLast: in.haveLast, Counts: in.counts,
	}
	return json.Marshal(s)
}

// RestoreState implements platform.Checkpointer.
func (in *Injector) RestoreState(raw json.RawMessage, _ platform.Device) error {
	var s state
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	if s.Hijacks != len(in.plan.Hijacks) || len(s.NextFire) != len(in.plan.Hijacks) {
		return fmt.Errorf("fault: restore state for %d hijacks into plan with %d", s.Hijacks, len(in.plan.Hijacks))
	}
	if err := in.rngSrc.Restore(s.RNGSeed, s.RNGDraws); err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	in.now = s.Now
	copy(in.nextFire, s.NextFire)
	in.lastGIPS = s.LastGIPS
	in.haveLast = s.HaveLast
	in.counts = s.Counts
	return nil
}
