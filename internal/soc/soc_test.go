package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNexus6MatchesTableII(t *testing.T) {
	n6 := Nexus6()
	if err := n6.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(n6.CPUFreqs); got != 18 {
		t.Fatalf("CPU ladder has %d steps, want 18", got)
	}
	if got := len(n6.MemBWs); got != 13 {
		t.Fatalf("BW ladder has %d steps, want 13", got)
	}
	if n6.NumCores != 4 {
		t.Fatalf("NumCores = %d, want 4 (quad-core Krait 450)", n6.NumCores)
	}
	// Spot-check the exact Table II anchors the paper's text cites.
	anchors := map[int]Freq{0: 0.3000, 4: 0.8832, 9: 1.4976, 12: 1.9584, 17: 2.6496}
	for idx, want := range anchors {
		if got := n6.Freq(idx); math.Abs(got.GHz()-want.GHz()) > 1e-9 {
			t.Errorf("freq[%d] = %v, want %v", idx, got, want)
		}
	}
	bwAnchors := map[int]Bandwidth{0: 762, 2: 1525, 4: 3051, 12: 16250}
	for idx, want := range bwAnchors {
		if got := n6.BW(idx); got != want {
			t.Errorf("bw[%d] = %v, want %v", idx, got, want)
		}
	}
	if got := n6.NumConfigs(); got != 234 {
		t.Fatalf("NumConfigs = %d, want 18*13 = 234", got)
	}
}

func TestNexus6IsFreshCopy(t *testing.T) {
	a, b := Nexus6(), Nexus6()
	a.CPUFreqs[0].Freq = 99
	a.MemBWs[0] = 99
	if b.CPUFreqs[0].Freq == 99 || b.MemBWs[0] == 99 {
		t.Fatal("Nexus6() instances share ladder storage")
	}
}

func TestMinMaxConfig(t *testing.T) {
	n6 := Nexus6()
	if got := n6.MinConfig(); got != (Config{0, 0}) {
		t.Fatalf("MinConfig = %v", got)
	}
	if got := n6.MaxConfig(); got != (Config{17, 12}) {
		t.Fatalf("MaxConfig = %v", got)
	}
}

func TestClamping(t *testing.T) {
	n6 := Nexus6()
	if got := n6.ClampFreqIdx(-3); got != 0 {
		t.Fatalf("ClampFreqIdx(-3) = %d", got)
	}
	if got := n6.ClampFreqIdx(99); got != 17 {
		t.Fatalf("ClampFreqIdx(99) = %d", got)
	}
	if got := n6.ClampBWIdx(7); got != 7 {
		t.Fatalf("ClampBWIdx(7) = %d", got)
	}
	if got := n6.ClampBWIdx(50); got != 12 {
		t.Fatalf("ClampBWIdx(50) = %d", got)
	}
}

func TestNearestFreqIdx(t *testing.T) {
	n6 := Nexus6()
	cases := []struct {
		f    Freq
		want int
	}{
		{0.1, 0},     // below ladder → lowest
		{0.3, 0},     // exact
		{0.31, 1},    // rounds up (CPUFREQ_RELATION_L)
		{1.4976, 9},  // exact mid
		{2.6496, 17}, // exact top
		{9.9, 17},    // above ladder → highest
	}
	for _, c := range cases {
		if got := n6.NearestFreqIdx(c.f); got != c.want {
			t.Errorf("NearestFreqIdx(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestNearestBWIdx(t *testing.T) {
	n6 := Nexus6()
	cases := []struct {
		b    Bandwidth
		want int
	}{
		{100, 0}, {762, 0}, {763, 1}, {16250, 12}, {99999, 12},
	}
	for _, c := range cases {
		if got := n6.NearestBWIdx(c.b); got != c.want {
			t.Errorf("NearestBWIdx(%v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestVoltageMonotone(t *testing.T) {
	n6 := Nexus6()
	for i := 1; i < len(n6.CPUFreqs); i++ {
		if n6.Voltage(i) < n6.Voltage(i-1) {
			t.Fatalf("voltage not monotone at %d", i)
		}
	}
	if v := n6.Voltage(0); v < 0.6 || v > 0.85 {
		t.Fatalf("lowest voltage %v outside plausible Krait range", v)
	}
	if v := n6.Voltage(17); v < 1.0 || v > 1.25 {
		t.Fatalf("highest voltage %v outside plausible Krait range", v)
	}
}

func TestValidateCatchesBadLadders(t *testing.T) {
	bad := Nexus6()
	bad.CPUFreqs[3].Freq = bad.CPUFreqs[2].Freq // not ascending
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for non-ascending freqs")
	}
	bad = Nexus6()
	bad.MemBWs[5] = bad.MemBWs[4]
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for non-ascending bandwidths")
	}
	bad = Nexus6()
	bad.NumCores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero cores")
	}
	bad = Nexus6()
	bad.CPUFreqs = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty ladder")
	}
}

// Property: NearestFreqIdx always returns the least index whose frequency
// is >= the request (or the top of the ladder).
func TestNearestFreqIdxProperty(t *testing.T) {
	n6 := Nexus6()
	f := func(raw float64) bool {
		q := Freq(math.Abs(math.Mod(raw, 3.0)))
		i := n6.NearestFreqIdx(q)
		if n6.CPUFreqs[i].Freq < q && i != len(n6.CPUFreqs)-1 {
			return false
		}
		if i > 0 && n6.CPUFreqs[i-1].Freq >= q {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := Freq(1.4976).String(); got != "1.4976GHz" {
		t.Fatalf("Freq.String = %q", got)
	}
	if got := Bandwidth(762).String(); got != "762MBps" {
		t.Fatalf("Bandwidth.String = %q", got)
	}
	if got := (Config{4, 0}).String(); got != "(f5, bw1)" {
		t.Fatalf("Config.String = %q", got)
	}
	if got := Freq(2.6496).Hz(); got != 2.6496e9 {
		t.Fatalf("Hz = %v", got)
	}
	if got := Bandwidth(762).BytesPerSec(); got != 762e6 {
		t.Fatalf("BytesPerSec = %v", got)
	}
}
