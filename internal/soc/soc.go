// Package soc describes the system-on-chip hardware that the simulator,
// the stock governors and the energy controller all operate on.
//
// The default model is the Qualcomm Snapdragon 805 found in the Nexus 6
// used by the paper: a quad-core Krait 450 CPU with 18 DVFS operating
// points and a memory bus with 13 selectable bandwidths (paper Table II).
// The package is parametric, so any other ladder can be described.
package soc

import (
	"fmt"
	"time"
)

// Freq is a CPU clock frequency in GHz.
type Freq float64

// GHz returns the frequency in GHz as a plain float64.
func (f Freq) GHz() float64 { return float64(f) }

// Hz returns the frequency in cycles per second.
func (f Freq) Hz() float64 { return float64(f) * 1e9 }

// String formats the frequency the way the paper's tables do.
func (f Freq) String() string { return fmt.Sprintf("%.4fGHz", float64(f)) }

// Bandwidth is a memory-bus bandwidth in MBps (as exposed by devfreq).
type Bandwidth float64

// MBps returns the bandwidth in megabytes per second.
func (b Bandwidth) MBps() float64 { return float64(b) }

// BytesPerSec returns the bandwidth in bytes per second.
func (b Bandwidth) BytesPerSec() float64 { return float64(b) * 1e6 }

// String formats the bandwidth the way the paper's tables do.
func (b Bandwidth) String() string { return fmt.Sprintf("%.0fMBps", float64(b)) }

// Config identifies one system configuration: a (CPU frequency, memory
// bandwidth) index pair into an SoC's ladders. This is the unit the
// controller schedules and the profiler measures.
type Config struct {
	FreqIdx int // index into SoC.CPUFreqs (0-based)
	BWIdx   int // index into SoC.MemBWs (0-based)
}

// String renders the configuration as the paper does, e.g. "(0.3000GHz, 762MBps)".
func (c Config) String() string {
	return fmt.Sprintf("(f%d, bw%d)", c.FreqIdx+1, c.BWIdx+1)
}

// OPP is one CPU operating performance point: a frequency and the supply
// voltage the voltage regulator applies at that frequency.
type OPP struct {
	Freq    Freq
	Voltage float64 // volts
}

// SoC is a static description of the chip: its DVFS ladders and timing
// properties. It carries no runtime state; see internal/sim for the
// dynamic device.
type SoC struct {
	Name     string
	NumCores int

	// CPUFreqs is the ascending ladder of CPU operating points.
	CPUFreqs []OPP

	// MemBWs is the ascending ladder of memory-bus bandwidths.
	MemBWs []Bandwidth

	// FreqTransition is the latency of a CPU frequency change
	// (microseconds on real hardware).
	FreqTransition time.Duration

	// BWTransition is the latency of a bandwidth change.
	BWTransition time.Duration
}

// NumConfigs returns the size of the full configuration space.
func (s *SoC) NumConfigs() int { return len(s.CPUFreqs) * len(s.MemBWs) }

// Freq returns the frequency at ladder index i (0-based).
func (s *SoC) Freq(i int) Freq { return s.CPUFreqs[i].Freq }

// Voltage returns the supply voltage at ladder index i (0-based).
func (s *SoC) Voltage(i int) float64 { return s.CPUFreqs[i].Voltage }

// BW returns the bandwidth at ladder index i (0-based).
func (s *SoC) BW(i int) Bandwidth { return s.MemBWs[i] }

// MinConfig returns the lowest system configuration (lowest CPU frequency
// and lowest memory bandwidth), which defines base speed in the paper.
func (s *SoC) MinConfig() Config { return Config{0, 0} }

// MaxConfig returns the highest system configuration.
func (s *SoC) MaxConfig() Config {
	return Config{len(s.CPUFreqs) - 1, len(s.MemBWs) - 1}
}

// ClampFreqIdx clamps i into the valid frequency index range.
func (s *SoC) ClampFreqIdx(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(s.CPUFreqs) {
		return len(s.CPUFreqs) - 1
	}
	return i
}

// ClampBWIdx clamps i into the valid bandwidth index range.
func (s *SoC) ClampBWIdx(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(s.MemBWs) {
		return len(s.MemBWs) - 1
	}
	return i
}

// NearestFreqIdx returns the index of the lowest ladder frequency that is
// >= f, or the highest index if f exceeds the ladder. This mirrors how
// cpufreq resolves a userspace setspeed request (CPUFREQ_RELATION_L).
func (s *SoC) NearestFreqIdx(f Freq) int {
	for i, opp := range s.CPUFreqs {
		if opp.Freq >= f {
			return i
		}
	}
	return len(s.CPUFreqs) - 1
}

// NearestBWIdx returns the index of the lowest ladder bandwidth >= b, or
// the highest index if b exceeds the ladder.
func (s *SoC) NearestBWIdx(b Bandwidth) int {
	for i, bw := range s.MemBWs {
		if bw >= b {
			return i
		}
	}
	return len(s.MemBWs) - 1
}

// Validate checks structural invariants: non-empty strictly ascending
// ladders and a positive core count.
func (s *SoC) Validate() error {
	if s.NumCores <= 0 {
		return fmt.Errorf("soc %q: NumCores must be positive, got %d", s.Name, s.NumCores)
	}
	if len(s.CPUFreqs) == 0 {
		return fmt.Errorf("soc %q: empty CPU frequency ladder", s.Name)
	}
	if len(s.MemBWs) == 0 {
		return fmt.Errorf("soc %q: empty memory bandwidth ladder", s.Name)
	}
	for i := 1; i < len(s.CPUFreqs); i++ {
		if s.CPUFreqs[i].Freq <= s.CPUFreqs[i-1].Freq {
			return fmt.Errorf("soc %q: CPU frequencies not strictly ascending at index %d", s.Name, i)
		}
		if s.CPUFreqs[i].Voltage < s.CPUFreqs[i-1].Voltage {
			return fmt.Errorf("soc %q: voltage not monotone at index %d", s.Name, i)
		}
	}
	for i := 1; i < len(s.MemBWs); i++ {
		if s.MemBWs[i] <= s.MemBWs[i-1] {
			return fmt.Errorf("soc %q: bandwidths not strictly ascending at index %d", s.Name, i)
		}
	}
	return nil
}

// nexus6Freqs is the exact 18-step CPU frequency ladder of the Snapdragon
// 805 (paper Table II), in GHz.
var nexus6Freqs = []Freq{
	0.3000, 0.4224, 0.6528, 0.7296, 0.8832, 0.9600,
	1.0368, 1.1904, 1.2672, 1.4976, 1.5744, 1.7280,
	1.9584, 2.2656, 2.4576, 2.4960, 2.5728, 2.6496,
}

// nexus6BWs is the exact 13-step memory bandwidth ladder of the Snapdragon
// 805 (paper Table II), in MBps.
var nexus6BWs = []Bandwidth{
	762, 1144, 1525, 2288, 3051, 3952, 4684, 5996, 7019, 8056, 10101, 12145, 16250,
}

// krait450Voltage models the Krait 450 voltage/frequency curve. The exact
// PMIC tables are not public; we use a monotone affine fit from ~0.80 V at
// 300 MHz to ~1.15 V at 2.65 GHz, which is in the range reported for
// 28 nm HPm silicon.
func krait450Voltage(f Freq) float64 {
	return 0.76 + 0.147*f.GHz()
}

// Nexus6 returns the SoC description of the paper's experimental platform.
// The frequency and bandwidth ladders are bit-identical to paper Table II.
func Nexus6() *SoC {
	opps := make([]OPP, len(nexus6Freqs))
	for i, f := range nexus6Freqs {
		opps[i] = OPP{Freq: f, Voltage: krait450Voltage(f)}
	}
	bws := make([]Bandwidth, len(nexus6BWs))
	copy(bws, nexus6BWs)
	return &SoC{
		Name:           "snapdragon805-nexus6",
		NumCores:       4,
		CPUFreqs:       opps,
		MemBWs:         bws,
		FreqTransition: 50 * time.Microsecond,
		BWTransition:   100 * time.Microsecond,
	}
}
