package benchrec

import (
	"path/filepath"
	"strings"
	"testing"
)

func record(calib float64, scenarios ...Scenario) *Record {
	r := New(true)
	r.CalibScore = calib
	r.Scenarios = scenarios
	return r
}

func scenario(name string, cyclesPerSec, simPerWall, allocs float64) Scenario {
	return Scenario{
		Name: name, Cycles: 100,
		CyclesPerSec: cyclesPerSec, SimPerWall: simPerWall,
		AllocsPerCycle: allocs,
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := record(42.5, scenario("ebook/BL", 1500, 7000, 0.2))
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != Schema || out.CalibScore != 42.5 {
		t.Fatalf("round trip lost header: %+v", out)
	}
	if len(out.Scenarios) != 1 || out.Scenarios[0] != in.Scenarios[0] {
		t.Fatalf("round trip lost scenarios: %+v", out.Scenarios)
	}
}

func TestCompareDetectsThroughputRegression(t *testing.T) {
	// A hot-path regression slows every scenario; the suite-level
	// geomean gate fires on both throughput metrics.
	base := record(10, scenario("a", 1000, 5000, 1), scenario("b", 2000, 9000, 1))
	cur := record(10, scenario("a", 800, 4000, 1), scenario("b", 1600, 7200, 1)) // 20% slower
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Scenario != "suite" || regs[1].Scenario != "suite" {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Metric != "cycles_per_sec(geomean,normalized)" ||
		regs[1].Metric != "sim_s_per_wall_s(geomean,normalized)" {
		t.Fatalf("regressions = %v", regs)
	}
}

// One scenario swinging on machine noise must not fail the suite: the
// geomean over many stable scenarios stays within tolerance.
func TestCompareToleratesSingleScenarioNoise(t *testing.T) {
	var bs, cs []Scenario
	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		bs = append(bs, scenario(name, 1000, 5000, 1))
		cs = append(cs, scenario(name, 1000, 5000, 1))
	}
	cs[3].CyclesPerSec = 700 // one scenario 30% slower (scheduler burst)
	cs[3].SimPerWall = 3500
	regs, err := Compare(record(10, bs...), record(10, cs...), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("single-scenario noise failed the suite: %v", regs)
	}
}

// A slower machine is not a regression: the calibration score scales
// with the raw throughput and the normalized values match.
func TestCompareNormalizesByMachineSpeed(t *testing.T) {
	base := record(10, scenario("s", 1000, 5000, 1))
	cur := record(5, scenario("s", 510, 2550, 1)) // half-speed machine, same code
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("machine-speed difference flagged as regression: %v", regs)
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	base := record(10, scenario("s", 1000, 5000, 0))
	cur := record(10, scenario("s", 1000, 5000, 1)) // 0 -> 1 alloc/cycle
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs_per_cycle" {
		t.Fatalf("regressions = %v", regs)
	}
	// Sub-slack wobble on a near-zero baseline passes.
	cur = record(10, scenario("s", 1000, 5000, 0.3))
	if regs, _ := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("fractional alloc wobble flagged: %v", regs)
	}
}

func TestCompareMissingScenario(t *testing.T) {
	base := record(10, scenario("kept", 1000, 5000, 1), scenario("dropped", 1000, 5000, 1))
	cur := record(10, scenario("kept", 1000, 5000, 1))
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Scenario != "dropped" || regs[0].Metric != "present" {
		t.Fatalf("regressions = %v", regs)
	}
}

func TestCompareRefusesMismatchedRecords(t *testing.T) {
	base := record(10, scenario("s", 1000, 5000, 1))
	fus := record(10, scenario("s", 1000, 5000, 1))
	fus.Fusion = false
	if _, err := Compare(base, fus, 0.10); err == nil || !strings.Contains(err.Error(), "fusion") {
		t.Fatalf("fusion mismatch not refused: %v", err)
	}
	v2 := record(10, scenario("s", 1000, 5000, 1))
	v2.SchemaVersion = Schema + 1
	if _, err := Compare(base, v2, 0.10); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not refused: %v", err)
	}
	zero := record(0, scenario("s", 1000, 5000, 1))
	if _, err := Compare(base, zero, 0.10); err == nil || !strings.Contains(err.Error(), "calibration") {
		t.Fatalf("zero calibration not refused: %v", err)
	}
}

func TestCalibratePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration kernel takes ~100ms")
	}
	if s := Calibrate(); s <= 0 {
		t.Fatalf("calibration score %v", s)
	}
}
