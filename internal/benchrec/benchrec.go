// Package benchrec defines the tracked benchmark record — the
// BENCH_*.json files `make bench` writes at the repo root — and the
// regression comparison `make ci` runs against the committed record.
//
// A record is a fixed suite of seeded scenarios (the six evaluated apps
// under the controller, plus a fleet slice) with four metrics each:
//
//   - cycles/sec — control cycles retired per wall second;
//   - sim_s_per_wall_s — simulated device seconds per wall second;
//   - allocs_per_cycle — heap allocations per control cycle
//     (AllocsPerRun-style: a Mallocs delta over the measured run);
//   - p95_cycle_ms — the 95th-percentile wall-clock latency of one
//     control cycle, from an internal/histogram.Dist of inter-cycle
//     gaps.
//
// Wall-clock throughput is machine-dependent, so a record carries a
// calibration score — the throughput of a fixed arithmetic kernel on
// the machine that produced it — and Compare normalizes cycles/sec and
// sim/wall by it, then gates on the geometric mean across the suite
// rather than per scenario (one short scenario's wall time is noise; a
// real hot-path regression slows the whole suite). Allocation counts
// are machine-independent and gate per scenario, raw.
package benchrec

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"
)

// Schema is the record format version; Compare refuses records from a
// different schema rather than misreading renamed fields as zeros.
const Schema = 1

// Scenario is one measured suite entry.
type Scenario struct {
	Name string `json:"name"`
	// SimSeconds is the simulated duration covered by the measurement.
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is the wall-clock time the measurement took.
	WallSeconds float64 `json:"wall_seconds"`
	// Cycles is the number of control cycles retired (0 for
	// governor-only scenarios).
	Cycles int `json:"cycles"`
	// CyclesPerSec is Cycles / WallSeconds.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// SimPerWall is SimSeconds / WallSeconds.
	SimPerWall float64 `json:"sim_s_per_wall_s"`
	// AllocsPerCycle is the heap-allocation count per control cycle
	// over the measured run (runtime.MemStats.Mallocs delta / Cycles).
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// P95CycleMs is the 95th-percentile wall latency of one control
	// cycle in milliseconds (0 when not measured, e.g. fleet slices).
	P95CycleMs float64 `json:"p95_cycle_ms"`
}

// Record is one complete benchmark run.
type Record struct {
	SchemaVersion int    `json:"schema"`
	GoVersion     string `json:"go_version"`
	// Fusion records whether the simulator's K-step fused fast path was
	// enabled; Compare refuses to diff records taken on different
	// settings.
	Fusion bool `json:"fusion"`
	// CalibScore is the machine-speed proxy: iterations/µs of the fixed
	// Calibrate kernel on the machine that produced the record.
	CalibScore float64    `json:"calibration_score"`
	Scenarios  []Scenario `json:"scenarios"`
}

// New returns a Record stamped with the current schema and toolchain.
func New(fusion bool) *Record {
	return &Record{SchemaVersion: Schema, GoVersion: runtime.Version(), Fusion: fusion}
}

// Find returns the named scenario, or nil.
func (r *Record) Find(name string) *Scenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// WriteFile writes the record as indented JSON (newline-terminated, so
// the committed file is diff-friendly).
func (r *Record) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads a record written by WriteFile.
func ReadFile(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchrec: %s: %w", path, err)
	}
	return &r, nil
}

// calibSink keeps the calibration kernel's result observable so the
// compiler cannot elide the loop.
var calibSink float64

// calibIters is sized so Calibrate takes on the order of 100 ms on a
// mid-range core — long enough to ride out scheduler noise, short
// enough to run on every bench invocation.
const calibIters = 1 << 25

// Calibrate measures the machine-speed proxy: iterations/µs of a fixed
// mixed integer/floating kernel shaped like the simulator's hot loop
// (multiply-adds and a cheap PRNG step). Records taken on machines of
// different speeds become comparable after dividing their wall-clock
// throughputs by this score.
func Calibrate() float64 {
	start := time.Now()
	var x uint64 = 0x9E3779B97F4A7C15
	s := 1.0
	for i := 0; i < calibIters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s = s*1.0000000001 + float64(x&0xFF)*1e-12
	}
	el := time.Since(start)
	calibSink = s
	return float64(calibIters) / (float64(el.Nanoseconds()) / 1e3)
}

// Regression is one failed comparison.
type Regression struct {
	Scenario string
	Metric   string
	// Base and Cur are the compared values — normalized by the records'
	// calibration scores for wall-clock metrics, raw for allocations.
	Base, Cur float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed: %.4g -> %.4g", r.Scenario, r.Metric, r.Base, r.Cur)
}

// allocSlack is the absolute allocation headroom per cycle on top of
// the relative tolerance, so near-zero baselines (the steady state is
// allocation-free) do not fail on a fractional-alloc wobble while a
// genuine 0 → 1 allocs/cycle regression still does.
const allocSlack = 0.5

// Compare diffs cur against base and returns every regression beyond
// tol (e.g. 0.10 for 10%).
//
// Machine-independent metrics gate per scenario: allocs/cycle (raw,
// with half-an-allocation absolute slack) and scenario presence (a
// suite that silently shrank is a regression). Wall-clock throughput
// gates at the suite level: the geometric mean, across all shared
// scenarios, of the per-scenario ratio of calibration-normalized
// cycles/sec (and likewise sim/wall) must not fall below 1−tol. A
// single short scenario's wall time is at the mercy of the scheduler
// even after calibration normalization; the geomean over the whole
// suite averages that noise out while still catching a real hot-path
// regression, which slows every scenario at once. Records from
// different schemas or fusion settings are an error, not a comparison.
func Compare(base, cur *Record, tol float64) ([]Regression, error) {
	if base.SchemaVersion != cur.SchemaVersion {
		return nil, fmt.Errorf("benchrec: schema mismatch: baseline v%d vs current v%d",
			base.SchemaVersion, cur.SchemaVersion)
	}
	if base.Fusion != cur.Fusion {
		return nil, fmt.Errorf("benchrec: fusion mismatch: baseline fusion=%v vs current fusion=%v",
			base.Fusion, cur.Fusion)
	}
	if base.CalibScore <= 0 || cur.CalibScore <= 0 {
		return nil, fmt.Errorf("benchrec: non-positive calibration score (baseline %v, current %v)",
			base.CalibScore, cur.CalibScore)
	}
	var regs []Regression
	var logCyc, logSim float64
	var nCyc, nSim int
	for _, b := range base.Scenarios {
		c := cur.Find(b.Name)
		if c == nil {
			regs = append(regs, Regression{Scenario: b.Name, Metric: "present", Base: 1, Cur: 0})
			continue
		}
		if b.CyclesPerSec > 0 && c.CyclesPerSec > 0 {
			logCyc += math.Log((c.CyclesPerSec / cur.CalibScore) / (b.CyclesPerSec / base.CalibScore))
			nCyc++
		}
		if b.SimPerWall > 0 && c.SimPerWall > 0 {
			logSim += math.Log((c.SimPerWall / cur.CalibScore) / (b.SimPerWall / base.CalibScore))
			nSim++
		}
		if b.Cycles > 0 && c.AllocsPerCycle > b.AllocsPerCycle*(1+tol)+allocSlack {
			regs = append(regs, Regression{
				Scenario: b.Name, Metric: "allocs_per_cycle",
				Base: b.AllocsPerCycle, Cur: c.AllocsPerCycle,
			})
		}
	}
	if nCyc > 0 {
		if ratio := math.Exp(logCyc / float64(nCyc)); ratio < 1-tol {
			regs = append(regs, Regression{
				Scenario: "suite", Metric: "cycles_per_sec(geomean,normalized)",
				Base: 1, Cur: ratio,
			})
		}
	}
	if nSim > 0 {
		if ratio := math.Exp(logSim / float64(nSim)); ratio < 1-tol {
			regs = append(regs, Regression{
				Scenario: "suite", Metric: "sim_s_per_wall_s(geomean,normalized)",
				Base: 1, Cur: ratio,
			})
		}
	}
	return regs, nil
}
