package fpacc

import (
	"math"
	"math/rand"
	"testing"
)

// naiveAddK is the reference semantics: the literal sequential loop.
func naiveAddK(a, c float64, k int) float64 {
	for i := 0; i < k; i++ {
		a += c
	}
	return a
}

func checkAddK(t *testing.T, a, c float64, k int) {
	t.Helper()
	got := AddK(a, c, k)
	want := naiveAddK(a, c, k)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("AddK(%v, %v, %d) = %v (%#x), want %v (%#x)",
			a, c, k, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestAddKRandomized sweeps random accumulator/increment magnitude
// pairs, including many binade crossings, against the naive loop.
func TestAddKRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed8))
	for trial := 0; trial < 5000; trial++ {
		// Magnitudes spanning ~60 decades so the ratio a/c covers
		// absorption, comparable-magnitude, and tiny-accumulator cases.
		a := math.Ldexp(rng.Float64(), rng.Intn(200)-100)
		c := math.Ldexp(rng.Float64(), rng.Intn(200)-100)
		k := rng.Intn(3000)
		checkAddK(t, a, c, k)
	}
}

// TestAddKTies constructs increments whose sub-ulp remainder is exactly
// half an ulp of the accumulator's binade, forcing round-to-nearest-even
// tie-breaking on every step — the hardest regime for the jump logic.
func TestAddKTies(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7135))
	for trial := 0; trial < 2000; trial++ {
		exp := rng.Intn(40) - 20
		u := math.Ldexp(1, exp-52) // ulp of binade [2^(exp-1), 2^exp)... close enough: pick a in it
		a := math.Ldexp(1, exp) * (1 + rng.Float64()) / 2
		// Recompute the true ulp of a.
		u = math.Nextafter(a, math.Inf(1)) - a
		m := float64(1 + rng.Intn(64))
		// c = m*u + u/2: exact tie each step while a stays in its binade.
		c := m*u + u/2
		k := rng.Intn(2000)
		checkAddK(t, a, c, k)
		// Also the even-mantissa-increment variant.
		checkAddK(t, a, (m*2)*u+u/2, k)
	}
}

// TestAddKEdgeCases pins the degenerate regimes.
func TestAddKEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		a, c float64
		k    int
	}{
		{0, 0, 5},
		{1, 0, 5},
		{math.Copysign(0, -1), 0, 3},           // -0 + 0 = +0, then stable
		{math.Copysign(0, -1), 1e-3, 10},       // leaves -0 on first add
		{0, 1, 0},                              // k = 0: unchanged
		{3.5, 1.25, 1},                         // k = 1
		{1, inf, 7},                            // +Inf absorbs
		{inf, 1, 7},                            // accumulator already +Inf
		{-inf, 1, 7},                           // -Inf + finite stays -Inf
		{inf, -inf, 4},                         // NaN after first add, absorbing
		{1, nan, 3},                            // NaN increment
		{nan, 1, 3},                            // NaN accumulator
		{1e308, 1e308, 10},                     // overflow to +Inf mid-run
		{-1e-3, -1e-5, 500},                    // negative regime (sign symmetry)
		{-0.0, -1e-5, 500},                     // negative regime from -0
		{5, -1e-3, 5000},                       // mixed sign: loop fallback
		{-5, 1e-3, 5000},                       // mixed sign: loop fallback
		{0, math.SmallestNonzeroFloat64, 4000}, // subnormal growth
		{1e-310, 3e-312, 4000},                 // subnormal accumulator
		{1e-310, math.SmallestNonzeroFloat64, 4000},
		{1, 0.25, 1000},                   // exact power-of-two-ish increment
		{1, 1.0 / 3.0, 1000},              // non-dyadic increment, many binades
		{1e16, 1, 1000},                   // increment exactly 1 ulp region
		{1e16, 0.4, 1000},                 // increment rounds below 1 ulp sometimes
		{9.007199254740992e15, 0.5, 2000}, // 2^53: exact half-ulp ties
	}
	for _, tc := range cases {
		checkAddK(t, tc.a, tc.c, tc.k)
	}
}

// TestAddKAbsorption verifies that once fl(a+c) == a, AddK stops in O(1)
// and matches the loop for arbitrarily large k.
func TestAddKAbsorption(t *testing.T) {
	a, c := 1e18, 1e-3 // absorbed immediately
	if got := AddK(a, c, 1<<40); got != a {
		t.Fatalf("absorbed AddK = %v, want %v", got, a)
	}
	// Absorption reached mid-run: growing accumulator eventually absorbs c.
	checkAddK(t, 1e12, 0.03, 100000)
}

// TestAddKLargeKExact checks a case where the closed form must cover
// millions of steps across several binades and still agree bit-for-bit
// with the loop.
func TestAddKLargeKExact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-step reference loop")
	}
	cases := []struct {
		a, c float64
		k    int
	}{
		{0, 1e-4, 5_000_000},
		{0.1, 7.3e-6, 5_000_000},
		{123.456, 0.001953125, 3_000_000}, // dyadic increment
		{1e9, 0.9999999, 3_000_000},
	}
	for _, tc := range cases {
		checkAddK(t, tc.a, tc.c, tc.k)
	}
}

// TestAddKMatchesSimulatorAccumulators exercises the exact shapes the
// sim hot path feeds AddK: per-step energy (power*dt), busy-seconds,
// traffic bytes, and instruction counts over hour-scale step counts.
func TestAddKMatchesSimulatorAccumulators(t *testing.T) {
	shapes := []struct {
		name string
		a, c float64
	}{
		{"energy", 12.345, 1.8432e-3}, // ~1.8 W * 1 ms
		{"busy-sec", 900.0, 1e-3},     // dt accumulation
		{"traffic", 1.5e9, 1500.0},    // bytes per step
		{"instr", 2.75e11, 7.5e4},     // instructions per step
		{"samples", 3600.0, 0.001},    // monitor elapsed
	}
	for _, s := range shapes {
		for _, k := range []int{1, 2, 3, 17, 1000, 180000} {
			checkAddK(t, s.a, s.c, k)
		}
	}
}

func BenchmarkAddK(b *testing.B) {
	b.Run("closed-form-180k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = AddK(12.345, 1.8432e-3, 180000)
		}
	})
	b.Run("naive-180k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = naiveAddK(12.345, 1.8432e-3, 180000)
		}
	})
}

var sink float64
