// Package fpacc fast-forwards sequential floating-point accumulation.
//
// The simulator's bit-exactness contract forbids replacing a per-step
// accumulation loop (`for i := 0; i < k; i++ { a += c }`) with the
// closed form `a + c*k`: IEEE-754 addition is not associative, and every
// golden test in the repo pins the sequentially-rounded result. What the
// contract does allow is computing the *same sequentially-rounded
// result* faster. AddK does exactly that.
//
// The key observation: within one binade [2^e, 2^(e+1)) every double is
// a multiple of the binade's ulp u, and the rounded increment
// fl(a+c) − a depends only on c's sub-ulp remainder and (for round-to-
// nearest-even ties) the parity of the landing mantissa — not on a
// itself. Two consecutive equal increments therefore prove a constant-
// increment regime that holds until the accumulator approaches the top
// of the binade, and the whole regime telescopes exactly:
// a + inc·j is computed without rounding error because every quantity is
// a multiple of u and stays below 2^(e+1). The loop collapses to one
// probe-and-jump per binade — logarithmic in k — while returning the
// bit-identical sequential result.
//
// The event-queue simulation backend (internal/sim) uses AddK to
// integrate monitor energy, PMU counters and task progress over
// variable-length quiescent intervals in closed form; the fixed-step
// backend keeps the literal loops, and the cross-engine goldens compare
// the two byte for byte.
package fpacc

import "math"

// AddK returns the bit-identical result of
//
//	for i := 0; i < k; i++ { a += c }
//
// in time logarithmic in k for the regime the simulator uses
// (non-negative accumulator, positive finite increment). Outside that
// regime it degrades gracefully: zero/NaN/Inf increments absorb in one
// add, the negative regime is handled by sign symmetry, and anything
// else falls back to the literal loop.
func AddK(a, c float64, k int) float64 {
	if k <= 0 {
		return a
	}
	if c == 0 || math.IsNaN(c) || math.IsNaN(a) || math.IsInf(c, 0) || math.IsInf(a, 0) {
		// One add is idempotent for all of these: -0+0 = +0 then stable,
		// NaN and ±Inf are absorbing.
		return a + c
	}
	if c > 0 && a >= 0 {
		return addKPos(a, c, k)
	}
	if c < 0 && a <= 0 {
		// Round-to-nearest-even is symmetric under negation.
		return -addKPos(-a, -c, k)
	}
	// Mixed signs (accumulator decaying through zero): not a regime the
	// simulator produces; run the literal loop.
	for i := 0; i < k; i++ {
		a += c
	}
	return a
}

// addKPos is AddK for a >= 0, 0 < c < +Inf.
func addKPos(a, c float64, k int) float64 {
	for k > 0 {
		// Probe two real steps. Each probe IS a step of the sequential
		// loop, so committing it is always correct.
		a1 := a + c
		if a1 == a {
			return a // absorbed: every further add is a no-op
		}
		k--
		if k == 0 {
			return a1
		}
		a2 := a1 + c
		if a2 == a1 {
			return a1
		}
		k--
		if k == 0 || math.IsInf(a2, 0) {
			return a2 // +Inf absorbs all further adds
		}
		// inc2 is exact by Sterbenz (a1 >= c > 0 implies a2 <= 2·a1).
		inc2 := a2 - a1
		if sameBinade(a1, a2) && a1-a == inc2 {
			// Two equal increments with both evidence steps on the jump
			// range's grid: constant regime. (inc1 = a1-a may be inexact
			// when a is many binades below c; the binade check rejects
			// exactly those cases.)
			a = a2
			k = jump(&a, c, inc2, k)
			continue
		}
		// Increment changed (or evidence straddled a binade boundary):
		// probe once more. A round-to-even tie takes at most one
		// odd-parity step before the landing parity chain stabilizes, so
		// inc3 == inc2 re-establishes a constant regime from a2 on.
		a3 := a2 + c
		if a3 == a2 {
			return a2
		}
		k--
		if k == 0 || math.IsInf(a3, 0) {
			return a3
		}
		inc3 := a3 - a2
		a = a3
		if sameBinade(a2, a3) && inc3 == inc2 {
			k = jump(&a, c, inc3, k)
		}
		// Otherwise: a binade boundary inside the probe window; the
		// outer loop re-probes from a3 (three steps of progress made).
	}
	return a
}

// jump advances *pa by up to k constant increments of inc, staying a
// safe margin below the top of *pa's binade so that every skipped
// addition provably rounds to the same increment, and returns the steps
// remaining. All quantities in the jumped range are multiples of the
// binade ulp and stay below the binade top, so a + inc·j is exact.
func jump(pa *float64, c, inc float64, k int) int {
	a := *pa
	_, exp := math.Frexp(a)
	top := math.Ldexp(1, exp)
	// Margin: results <= top − 3c − 4·inc keep every skipped addition's
	// real sum strictly inside the binade even after the float rounding
	// of the margin arithmetic itself (inc >= ulp covers the slack).
	lim := top - 4*(c+inc)
	if !(lim > a) {
		return k
	}
	q := (lim - a) / inc
	var j int
	if q >= float64(k) {
		j = k
	} else {
		j = int(q)
	}
	for j > 0 && a+inc*float64(j) > lim {
		j--
	}
	if j <= 0 {
		return k
	}
	*pa = a + inc*float64(j)
	return k - j
}

// sameBinade reports whether x and y share a floating-point exponent —
// i.e. lie on the same ulp grid. (For subnormals the grid is uniform,
// so equal Frexp exponents remain a sufficient condition.)
func sameBinade(x, y float64) bool {
	_, ex := math.Frexp(x)
	_, ey := math.Frexp(y)
	return ex == ey
}
