package profile

import (
	"math"
	"strings"
	"testing"
	"time"

	"aspeo/internal/workload"
)

// quickOpts keeps profiling cheap for tests.
func quickOpts(load workload.BGLoad, mode BWMode) Options {
	return Options{
		Load: load, Mode: mode,
		Seeds:  []int64{11},
		Warmup: time.Second,
		Window: 8 * time.Second,
	}
}

func TestRunValidation(t *testing.T) {
	spec := workload.Spotify()
	bad := quickOpts(workload.BaselineLoad, Coordinated)
	bad.Seeds = nil
	if _, err := Run(spec, bad); err == nil {
		t.Fatal("no seeds should fail")
	}
	bad = quickOpts(workload.BaselineLoad, Coordinated)
	bad.Window = 0
	if _, err := Run(spec, bad); err == nil {
		t.Fatal("zero window should fail")
	}
	noFreqs := workload.Spotify()
	noFreqs.ProfileFreqIdxs = nil
	if _, err := Run(noFreqs, quickOpts(workload.BaselineLoad, Coordinated)); err == nil {
		t.Fatal("empty frequency list should fail")
	}
}

func TestCoordinatedTableShape(t *testing.T) {
	spec := workload.Spotify() // 3 profiled freqs → 3 bandwidth anchors
	tab, err := Run(spec, quickOpts(workload.BaselineLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 freqs × 13 interpolated bandwidths.
	if got := tab.Len(); got != 3*13 {
		t.Fatalf("table has %d rows, want 39", got)
	}
	anchors := 0
	for _, e := range tab.Entries {
		if !e.Interpolated {
			anchors++
		}
	}
	// 3 freqs × 3 measured anchors — within the paper's 18-point budget.
	if anchors != 9 {
		t.Fatalf("measured anchors = %d, want 9", anchors)
	}
	if anchors > 18 {
		t.Fatal("measurement budget exceeded")
	}
}

func TestWideRangeUsesTwoAnchors(t *testing.T) {
	spec := workload.WeChat() // 8 profiled freqs → 2 anchors (8×3 > 18)
	tab, err := Run(spec, quickOpts(workload.BaselineLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	anchors := 0
	for _, e := range tab.Entries {
		if !e.Interpolated {
			anchors++
		}
	}
	if anchors != 16 {
		t.Fatalf("measured anchors = %d, want 8×2 = 16", anchors)
	}
}

func TestSpeedupNormalization(t *testing.T) {
	tab, err := Run(workload.Spotify(), quickOpts(workload.BaselineLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	if tab.BaseGIPS <= 0 {
		t.Fatal("base speed must be positive")
	}
	for _, e := range tab.Entries {
		if want := e.GIPS / tab.BaseGIPS; math.Abs(e.Speedup-want) > 1e-9 {
			t.Fatalf("speedup %v != GIPS/base %v", e.Speedup, want)
		}
	}
}

func TestGovernedMode(t *testing.T) {
	tab, err := Run(workload.Spotify(), quickOpts(workload.BaselineLoad, Governed))
	if err != nil {
		t.Fatal(err)
	}
	// One row per profiled frequency; bandwidth column is governed.
	if got := tab.Len(); got != 3 {
		t.Fatalf("governed table rows = %d, want 3", got)
	}
	for _, e := range tab.Entries {
		if e.BWIdx != GovernedBW {
			t.Fatalf("governed entry carries bw idx %d", e.BWIdx)
		}
		if e.Config().BWIdx != 0 {
			t.Fatal("governed Config() must clamp bandwidth to 0")
		}
	}
}

func TestPowerIncreasesWithBandwidthAnchor(t *testing.T) {
	tab, err := Run(workload.MXPlayer(), quickOpts(workload.BaselineLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	// For each frequency, power at bw13 must exceed power at bw1: the
	// provisioned-bandwidth rail is monotone.
	byFreq := map[int]map[int]Entry{}
	for _, e := range tab.Entries {
		if byFreq[e.FreqIdx] == nil {
			byFreq[e.FreqIdx] = map[int]Entry{}
		}
		byFreq[e.FreqIdx][e.BWIdx] = e
	}
	for f, row := range byFreq {
		if row[12].PowerW <= row[0].PowerW {
			t.Fatalf("freq %d: power at bw13 (%.3f) <= bw1 (%.3f)", f, row[12].PowerW, row[0].PowerW)
		}
	}
}

func TestSortedBySpeedup(t *testing.T) {
	tab, err := Run(workload.Spotify(), quickOpts(workload.BaselineLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	sorted := tab.SortedBySpeedup()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Speedup < sorted[i-1].Speedup {
			t.Fatal("SortedBySpeedup is not sorted")
		}
	}
	// Original order untouched.
	if tab.Entries[0].FreqIdx != tab.Entries[1].FreqIdx && len(tab.Entries) > 13 {
		t.Fatal("original table order mutated")
	}
	if tab.MinSpeedup() != sorted[0].Speedup || tab.MaxSpeedup() != sorted[len(sorted)-1].Speedup {
		t.Fatal("Min/MaxSpeedup disagree with the sort")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab, err := Run(workload.Spotify(), quickOpts(workload.BaselineLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tab.App || got.Len() != tab.Len() || got.BaseGIPS != tab.BaseGIPS {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Entries[5] != tab.Entries[5] {
		t.Fatal("entry drift through JSON")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"app":"x","entries":[]}`)); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestValidateTable(t *testing.T) {
	bad := &Table{App: "x", BaseGIPS: 1, Entries: []Entry{{Speedup: -1, PowerW: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative speedup accepted")
	}
	bad = &Table{App: "x", BaseGIPS: 0, Entries: []Entry{{Speedup: 1, PowerW: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero base speed accepted")
	}
}

// The deadline-app fix: profiling a finite workload must not dilute GIPS
// with an idle tail after the workload completes inside the window.
func TestFiniteWorkloadLoopedDuringProfiling(t *testing.T) {
	spec := workload.MXPlayer() // LoopCount 1, 137 s nominal
	tab, err := Run(spec, quickOpts(workload.NoLoad, Coordinated))
	if err != nil {
		t.Fatal(err)
	}
	// All measured speedups must exceed base (the app at min config);
	// a diluted tail would push top-config speedups toward zero.
	for _, e := range tab.Entries {
		if e.Speedup < 0.5 {
			t.Fatalf("suspicious speedup %v — idle tail leaked into profiling", e.Speedup)
		}
	}
	// The caller's spec must not be mutated by the looped copy.
	if spec.LoopCount != 1 || !spec.Loop {
		t.Fatal("profiler mutated the caller's spec")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if len(o.Seeds) != 3 {
		t.Fatalf("paper protocol averages 3 runs, got %d", len(o.Seeds))
	}
	if o.Load != workload.BaselineLoad {
		t.Fatal("paper profiles under baseline load")
	}
	if o.Mode != Coordinated {
		t.Fatal("default mode must be coordinated")
	}
}
