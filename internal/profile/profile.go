// Package profile implements the paper's Stage 1: offline profiling of an
// application's performance (speedup) and whole-device power across
// system configurations (paper §III-A, Table I).
//
// Following the paper's space-reduction rule, only the app's allowed
// alternate CPU frequencies × {lowest, highest} memory bandwidth are
// actually run (≤ 9×2 = 18 measurements); the remaining bandwidths are
// filled in by linear interpolation. Each measured point is averaged over
// three seeded runs, mirroring the paper's three-run averaging. Speedups
// are normalized to the application's base speed — its performance at the
// SoC's lowest configuration — which is also what the controller's Kalman
// filter tracks at runtime.
package profile

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"aspeo/internal/governor"
	"aspeo/internal/par"
	"aspeo/internal/perftool"
	"aspeo/internal/platform"
	"aspeo/internal/sim"
	"aspeo/internal/soc"
	"aspeo/internal/stats"
	"aspeo/internal/sysfs"
	"aspeo/internal/workload"
)

// BWMode selects how the memory bandwidth behaves during profiling.
type BWMode int

const (
	// Coordinated profiles bandwidth endpoints and interpolates: the
	// paper's main method, producing (freq, bw) configurations.
	Coordinated BWMode = iota
	// Governed leaves bandwidth to the default cpubw_hwmon governor and
	// profiles CPU frequencies only — the Table V baseline. Entries
	// carry BWIdx = GovernedBW.
	Governed
)

// GovernedBW marks entries whose bandwidth is under the default governor.
const GovernedBW = -1

// Entry is one row of the profiling table.
type Entry struct {
	FreqIdx      int     `json:"freq_idx"` // 0-based ladder index
	BWIdx        int     `json:"bw_idx"`   // 0-based, or GovernedBW
	Speedup      float64 `json:"speedup"`
	PowerW       float64 `json:"power_w"`
	GIPS         float64 `json:"gips"`
	Interpolated bool    `json:"interpolated"`
}

// Config returns the entry's configuration (BWIdx clamped to 0 for
// governed entries, which carry no bandwidth of their own).
func (e Entry) Config() soc.Config {
	bw := e.BWIdx
	if bw < 0 {
		bw = 0
	}
	return soc.Config{FreqIdx: e.FreqIdx, BWIdx: bw}
}

// Table is an application's offline profile.
type Table struct {
	App      string  `json:"app"`
	Load     string  `json:"load"`
	Mode     BWMode  `json:"mode"`
	BaseGIPS float64 `json:"base_gips"` // speed at the SoC's lowest configuration
	Entries  []Entry `json:"entries"`
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Entries) }

// Speedups returns the speedup column.
func (t *Table) Speedups() []float64 {
	out := make([]float64, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.Speedup
	}
	return out
}

// Powers returns the power column in watts.
func (t *Table) Powers() []float64 {
	out := make([]float64, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.PowerW
	}
	return out
}

// MinSpeedup returns the smallest speedup in the table.
func (t *Table) MinSpeedup() float64 {
	m := t.Entries[0].Speedup
	for _, e := range t.Entries[1:] {
		if e.Speedup < m {
			m = e.Speedup
		}
	}
	return m
}

// MaxSpeedup returns the largest speedup in the table.
func (t *Table) MaxSpeedup() float64 {
	m := t.Entries[0].Speedup
	for _, e := range t.Entries[1:] {
		if e.Speedup > m {
			m = e.Speedup
		}
	}
	return m
}

// SortedBySpeedup returns a copy of the entries in ascending speedup
// order (the shape the energy optimizer consumes).
func (t *Table) SortedBySpeedup() []Entry {
	out := append([]Entry(nil), t.Entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Speedup < out[j].Speedup })
	return out
}

// Validate checks structural invariants.
func (t *Table) Validate() error {
	if len(t.Entries) == 0 {
		return fmt.Errorf("profile: empty table for %s", t.App)
	}
	if t.BaseGIPS <= 0 {
		return fmt.Errorf("profile: non-positive base speed for %s", t.App)
	}
	for i, e := range t.Entries {
		if e.Speedup <= 0 || e.PowerW <= 0 {
			return fmt.Errorf("profile: entry %d has non-positive speedup/power", i)
		}
	}
	return nil
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a table.
func ReadJSON(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Options configure a profiling campaign.
type Options struct {
	SoC    *soc.SoC
	Load   workload.BGLoad
	Mode   BWMode
	Seeds  []int64       // one run per seed, averaged (paper: 3 runs)
	Warmup time.Duration // discarded settling time per configuration
	Window time.Duration // measured interval per configuration
	// Workers bounds the measurement worker pool: every (configuration,
	// seed) point is an independent simulation with its own sim.Phone,
	// so the grid fans out. 0 or negative means one worker per CPU;
	// results are bit-identical for every setting.
	Workers int
}

// DefaultOptions mirrors the paper's protocol: baseline load, three runs.
func DefaultOptions() Options {
	return Options{
		Load:   workload.BaselineLoad,
		Mode:   Coordinated,
		Seeds:  []int64{11, 22, 33},
		Warmup: 4 * time.Second,
		Window: 36 * time.Second,
	}
}

// measureOne runs the app for one seed pinned at (freqIdx, bwIdx) and
// returns its GIPS and power. bwIdx = GovernedBW leaves the bandwidth to
// the hwmon governor. Each call builds its own sim.Phone, so calls are
// safe to fan out across goroutines.
func measureOne(spec *workload.Spec, opt Options, freqIdx, bwIdx int, seed int64) (gips, powerW float64, err error) {
	// Profile a looped copy of the app: a finite workload (a 12-site
	// browsing session, a 137 s video) must not run dry inside the
	// measurement window at fast configurations, or the idle tail would
	// dilute the measured GIPS.
	looped := *spec
	looped.Loop = true
	looped.LoopCount = 0
	ph, err := sim.NewPhone(sim.Config{
		SoC: opt.SoC, Foreground: &looped, Load: opt.Load,
		Seed: seed, ScreenOn: true, WiFiOn: true,
	})
	if err != nil {
		return 0, 0, err
	}
	eng := sim.NewEngine(ph)
	if bwIdx == GovernedBW {
		// Pin the CPU, leave the bus to the stock governor.
		if err := ph.WriteFile(sysfs.DevFreqGovernor, platform.GovCPUBWHwmon); err != nil {
			return 0, 0, err
		}
		eng.MustRegister(governor.NewDevFreq())
		eng.MustRegister(&cpuPin{idx: freqIdx})
	} else {
		eng.MustRegister(&sim.FixedConfigActor{FreqIdx: freqIdx, BWIdx: bwIdx})
	}
	eng.MustRegister(perftool.MustNew(time.Second, seed))
	eng.Run(opt.Warmup, false)
	st := eng.Run(opt.Window, false)
	return st.GIPS, st.AvgPowerW, nil
}

// measurePoint is one profiled configuration.
type measurePoint struct{ fi, bi int }

// measurement is a point's seed-averaged result.
type measurement struct{ gips, powerW float64 }

// measureAll fans the (point × seed) measurement grid out over the
// worker pool and folds each point's seeds into their mean, in seed
// order — bit-identical to the serial per-point loop.
func measureAll(spec *workload.Spec, opt Options, pts []measurePoint) ([]measurement, error) {
	type cellRes struct{ gips, powerW float64 }
	nSeeds := len(opt.Seeds)
	cells, err := par.Map(context.Background(), par.Workers(opt.Workers), len(pts)*nSeeds,
		func(_ context.Context, i int) (cellRes, error) {
			pt := pts[i/nSeeds]
			g, p, err := measureOne(spec, opt, pt.fi, pt.bi, opt.Seeds[i%nSeeds])
			if err != nil {
				return cellRes{}, err
			}
			return cellRes{gips: g, powerW: p}, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]measurement, len(pts))
	for p := range pts {
		gipsS := make([]float64, nSeeds)
		powS := make([]float64, nSeeds)
		for s := 0; s < nSeeds; s++ {
			gipsS[s] = cells[p*nSeeds+s].gips
			powS[s] = cells[p*nSeeds+s].powerW
		}
		out[p] = measurement{gips: stats.Mean(gipsS), powerW: stats.Mean(powS)}
	}
	return out, nil
}

// cpuPin pins only the CPU frequency.
type cpuPin struct{ idx int }

func (c *cpuPin) Name() string          { return "cpu-pin" }
func (c *cpuPin) Period() time.Duration { return 100 * time.Millisecond }

func (c *cpuPin) Tick(_ time.Duration, dev platform.Device) { dev.SetFreqIdx(c.idx) }

// Run profiles the application per the paper's protocol and returns the
// completed table.
func Run(spec *workload.Spec, opt Options) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(opt.Seeds) == 0 {
		return nil, fmt.Errorf("profile: no seeds")
	}
	if opt.Window <= 0 || opt.Warmup < 0 {
		return nil, fmt.Errorf("profile: bad warmup/window")
	}
	chip := opt.SoC
	if chip == nil {
		chip = soc.Nexus6()
	}
	freqs := spec.ProfileFreqIdxs
	if len(freqs) == 0 {
		return nil, fmt.Errorf("profile: %s has no profiled frequencies", spec.Name)
	}

	// Build the measurement plan up front — the base-speed cell plus the
	// per-frequency anchor grid — then fan the whole plan out over the
	// worker pool at once. Bandwidth anchors (Coordinated mode): the
	// paper's measurement budget is at most 9×2 = 18 configurations —
	// every allowed alternate frequency at the lowest and highest
	// bandwidth. When the app's allowed frequency range is narrow enough
	// that a third anchor still fits in the same 18-point budget, we add
	// a mid-ladder anchor (3051 MBps) so the piecewise-linear
	// interpolation can see the memory roofline knee; otherwise we use
	// the paper's two endpoints.
	var anchors []int
	pts := []measurePoint{{fi: 0, bi: 0}} // base speed: the SoC's lowest configuration
	if opt.Mode == Governed {
		for _, fi := range freqs {
			pts = append(pts, measurePoint{fi: fi, bi: GovernedBW})
		}
	} else {
		anchors = []int{0, len(chip.MemBWs) - 1}
		if 3*len(freqs) <= 18 {
			anchors = []int{0, midBWIdx(chip), len(chip.MemBWs) - 1}
		}
		for _, fi := range freqs {
			for _, bi := range anchors {
				pts = append(pts, measurePoint{fi: fi, bi: bi})
			}
		}
	}
	ms, err := measureAll(spec, opt, pts)
	if err != nil {
		return nil, err
	}

	baseGIPS := ms[0].gips
	if baseGIPS <= 0 {
		return nil, fmt.Errorf("profile: %s base speed measured as %v", spec.Name, baseGIPS)
	}
	t := &Table{App: spec.Name, Load: opt.Load.String(), Mode: opt.Mode, BaseGIPS: baseGIPS}

	if opt.Mode == Governed {
		for i := range freqs {
			m := ms[1+i]
			t.Entries = append(t.Entries, Entry{
				FreqIdx: freqs[i], BWIdx: GovernedBW,
				Speedup: m.gips / baseGIPS, PowerW: m.powerW, GIPS: m.gips,
			})
		}
		return t, t.Validate()
	}

	for f := range freqs {
		type point struct {
			bw   int
			gips float64
			pw   float64
		}
		anchored := make([]point, 0, len(anchors))
		for a, bi := range anchors {
			m := ms[1+f*len(anchors)+a]
			anchored = append(anchored, point{bw: bi, gips: m.gips, pw: m.powerW})
		}
		isAnchor := func(bi int) bool {
			for _, a := range anchors {
				if a == bi {
					return true
				}
			}
			return false
		}
		// Piecewise-linear interpolation across the bandwidth ladder
		// (paper §III-A), between consecutive measured anchors.
		seg := 0
		for bi := 0; bi < len(chip.MemBWs); bi++ {
			for seg+1 < len(anchored)-1 && bi > anchored[seg+1].bw {
				seg++
			}
			lo, hi := anchored[seg], anchored[seg+1]
			span := chip.BW(hi.bw).MBps() - chip.BW(lo.bw).MBps()
			frac := (chip.BW(bi).MBps() - chip.BW(lo.bw).MBps()) / span
			g := stats.Lerp(lo.gips, hi.gips, frac)
			p := stats.Lerp(lo.pw, hi.pw, frac)
			t.Entries = append(t.Entries, Entry{
				FreqIdx: freqs[f], BWIdx: bi,
				Speedup: g / baseGIPS, PowerW: p, GIPS: g,
				Interpolated: !isAnchor(bi),
			})
		}
	}
	return t, t.Validate()
}

// midBWIdx returns the ladder index used as the third interpolation
// anchor (3051 MBps on the Nexus 6).
func midBWIdx(chip *soc.SoC) int {
	return len(chip.MemBWs) / 3 // index 4 of 13 → 3051 MBps
}
