package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aspeo/internal/workload"
)

// richSpec exercises every generation feature at once: bursty arrivals
// under a load curve, chains, perturbation, storms, trace imports,
// controller and governor cohorts.
func richSpec() *Spec {
	return &Spec{
		Name:     "rich",
		Seed:     42,
		Sessions: 48,
		HorizonS: 900,
		Arrival:  Arrival{Process: ProcessBursty, BurstFactor: 3, MeanBurstS: 30, MeanCalmS: 90},
		LoadCurve: []CurveTerm{
			{PeriodS: 900, Amplitude: 0.4, Phase: 0.75},
			{PeriodS: 300, Amplitude: 0.2},
		},
		Cohorts: []Cohort{
			{
				Name: "gamers", Weight: 0.5,
				Apps:    []string{"angrybirds", "spotify"},
				Chain:   &Chain{Length: 3, DwellS: 15, DwellJitter: 0.3},
				Loads:   map[string]float64{"BL": 0.7, "HL": 0.3},
				RunForS: 30,
				Perturb: &Perturb{DemandSigma: 0.2, DurationSigma: 0.1},
				AdStorm: &AdStorm{PeriodS: 20, BurstS: 2, GIPS: 0.3, NetBps: 1e6, AuxW: 0.2},
			},
			{
				Name: "replayers", Weight: 0.3,
				Apps:    []string{"trace:short"},
				RunForS: 20,
			},
			{
				Name: "readers", Weight: 0.2,
				Apps: []string{"ebook"}, Governor: "powersave", RunForS: 25,
			},
		},
		Traces:         map[string]string{"short": "unused.json"},
		TraceWorkloads: map[string]*workload.Spec{"short": syntheticTraceWorkload()},
	}
}

// syntheticTraceWorkload stands in for a resolved trace import.
func syntheticTraceWorkload() *workload.Spec {
	w, err := ImportTrace("short", syntheticTracePoints())
	if err != nil {
		panic(err)
	}
	return w
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestCompileDeterministicAcrossWorkers is the package's central
// contract: the compiled stream is byte-identical at any worker count.
func TestCompileDeterministicAcrossWorkers(t *testing.T) {
	s := richSpec()
	var ref []byte
	for _, workers := range []int{1, 4, 16} {
		g, err := s.compile(s.Seed, workers)
		if err != nil {
			t.Fatalf("compile(workers=%d): %v", workers, err)
		}
		b := marshal(t, g)
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(ref, b) {
			t.Fatalf("stream differs between 1 and %d workers", workers)
		}
	}
}

// TestCompileRepeatable: same spec, same seed, same bytes — across
// independent Spec values too (no hidden state in the spec).
func TestCompileRepeatable(t *testing.T) {
	g1, err := richSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := richSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, g1), marshal(t, g2)) {
		t.Fatal("two compilations of the same spec differ")
	}
}

// TestCompileSeedSensitivity: a different seed must produce a different
// stream (arrival times and synthesis draws).
func TestCompileSeedSensitivity(t *testing.T) {
	s := richSpec()
	g1, err := s.CompileSeed(42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.CompileSeed(43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshal(t, g1.Sessions), marshal(t, g2.Sessions)) {
		t.Fatal("seeds 42 and 43 produced identical streams")
	}
}

// TestCompiledSessionsRunnable: every generated session must pass the
// experiment layer's validation — the compiler must never emit a spec
// the fleet would reject.
func TestCompiledSessionsRunnable(t *testing.T) {
	g, err := richSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sessions) != 48 {
		t.Fatalf("got %d sessions, want 48", len(g.Sessions))
	}
	for i := range g.Sessions {
		sess := &g.Sessions[i]
		if err := sess.SessionSpec().Validate(); err != nil {
			t.Errorf("session %d (%s): %v", i, sess.App.Name, err)
		}
		if sess.ArrivalS < 0 || sess.ArrivalS > 900 {
			t.Errorf("session %d: arrival %v outside horizon", i, sess.ArrivalS)
		}
		if i > 0 && sess.ArrivalS < g.Sessions[i-1].ArrivalS {
			t.Errorf("session %d: arrivals not sorted", i)
		}
	}
}

// TestCompiledSpecsUnaliased: generated workloads must not alias the
// library specs — mutating one session's spec must not leak anywhere.
func TestCompiledSpecsUnaliased(t *testing.T) {
	g, err := richSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := workload.ByName("ebook")
	before := lib.Phases[0].DemandGIPS
	for i := range g.Sessions {
		for j := range g.Sessions[i].App.Phases {
			g.Sessions[i].App.Phases[j].DemandGIPS *= 7
		}
	}
	if lib.Phases[0].DemandGIPS != before {
		t.Fatal("generated session aliases the library spec")
	}
	// Two sessions of the same cohort must not share phase storage.
	g2, err := richSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*workload.Phase]bool{}
	for i := range g2.Sessions {
		p := &g2.Sessions[i].App.Phases[0]
		if seen[p] {
			t.Fatal("two sessions share phase storage")
		}
		seen[p] = true
	}
}

// TestFixedArrivalsFollowCurve: the fixed process must place more
// arrivals where the curve is high.
func TestFixedArrivalsFollowCurve(t *testing.T) {
	s := &Spec{
		Name: "curve", Seed: 1, Sessions: 1000, HorizonS: 1000,
		// Phase 0.25 turns the sine into a cosine: factor 1.5 at t=0
		// falling to 0.5 at t=1000, so the first half holds the mass.
		LoadCurve: []CurveTerm{{PeriodS: 2000, Amplitude: 0.5, Phase: 0.25}},
		Cohorts:   []Cohort{{Name: "c", Weight: 1, Apps: []string{"spotify"}}},
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	first := 0
	for i := range g.Sessions {
		if g.Sessions[i].ArrivalS < 500 {
			first++
		}
	}
	if first <= 550 {
		t.Fatalf("first half-horizon got %d/1000 arrivals; want well above 500 (curve peak)", first)
	}
}

// TestValidateFieldPaths: malformed specs must fail with the offending
// field path.
func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		mutate  func(*Spec)
		wantSub string
	}{
		{func(s *Spec) { s.Sessions = 0 }, "sessions"},
		{func(s *Spec) { s.Arrival.Process = "lumpy" }, "arrival.process"},
		{func(s *Spec) { s.Arrival = Arrival{Process: ProcessBursty, BurstFactor: 0.5, MeanBurstS: 1, MeanCalmS: 1} }, "arrival.burst_factor"},
		{func(s *Spec) { s.LoadCurve = []CurveTerm{{PeriodS: -1, Amplitude: 0.1}} }, "load_curve[0].period_s"},
		{func(s *Spec) { s.LoadCurve = []CurveTerm{{PeriodS: 10, Amplitude: 0.6}, {PeriodS: 10, Amplitude: 0.6}} }, "load_curve"},
		{func(s *Spec) { s.Cohorts = nil }, "cohorts"},
		{func(s *Spec) { s.Cohorts[1].Apps = []string{"trace:missing"} }, `cohorts[1].apps[0]`},
		{func(s *Spec) { s.Cohorts[0].Apps[1] = "doom" }, "cohorts[0].apps[1]"},
		{func(s *Spec) { s.Cohorts[0].Weight = -1 }, "cohorts[0].weight"},
		{func(s *Spec) { s.Cohorts[0].Chain.Length = 1 }, "cohorts[0].chain.length"},
		{func(s *Spec) { s.Cohorts[0].Loads = map[string]float64{"XX": 1} }, "cohorts[0].loads"},
		{func(s *Spec) { s.Cohorts[2].Governor = "warp" }, "cohorts[2].governor"},
		{func(s *Spec) { s.Cohorts[0].Faults = "gremlins" }, "cohorts[0].faults"},
		{func(s *Spec) { s.Cohorts[0].AdStorm.BurstS = -1 }, "cohorts[0].ad_storm.burst_s"},
		{func(s *Spec) { s.Cohorts[0].Perturb.DemandSigma = 9 }, "cohorts[0].perturb.demand_sigma"},
		{func(s *Spec) { s.Cohorts[0].RunForS = -5 }, "cohorts[0].run_for_s"},
	}
	for i, tc := range cases {
		s := richSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("case %d: invalid spec validated", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("case %d: error %q does not name %q", i, err, tc.wantSub)
		}
	}
}

// TestParseStrict: unknown fields and type mismatches fail with paths.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","seed":1,"sessions":4,"cohortz":[]}`)); err == nil || !strings.Contains(err.Error(), "cohortz") {
		t.Errorf("unknown field: got %v", err)
	}
	if _, err := Parse([]byte(`{"name":"x","seed":1,"sessions":"many"}`)); err == nil || !strings.Contains(err.Error(), "sessions") {
		t.Errorf("type mismatch: got %v", err)
	}
	if _, err := Parse([]byte(`{"name":"x","sessions":1,"cohorts":[{"name":"c","weight":1,"apps":["spotify"]}]}{}`)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing content: got %v", err)
	}
	ok := `{"name":"x","sessions":2,"cohorts":[{"name":"c","weight":1,"apps":["spotify"]}]}`
	s, err := Parse([]byte(ok))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.horizon() != DefaultHorizonS {
		t.Errorf("default horizon: got %v", s.horizon())
	}
}

// TestChainProfileIdxs: the chain's profiling ladder is the
// intersection of its constituents', falling back to the union.
func TestChainProfileIdxs(t *testing.T) {
	a := &workload.Spec{ProfileFreqIdxs: []int{2, 3, 4, 5}}
	b := &workload.Spec{ProfileFreqIdxs: []int{4, 5, 6}}
	got := chainFreqIdxs([]*workload.Spec{a, b})
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("intersection: got %v, want [4 5]", got)
	}
	c := &workload.Spec{ProfileFreqIdxs: []int{0, 1}}
	got = chainFreqIdxs([]*workload.Spec{a, c})
	if len(got) != 6 {
		t.Fatalf("union fallback: got %v, want the 6-element union", got)
	}
}

// TestAdStormSpecValid: the synthesized storm passes workload
// validation and is marked background.
func TestAdStormSpecValid(t *testing.T) {
	st := adStormSpec(&AdStorm{PeriodS: 30, BurstS: 3, GIPS: 0.5, NetBps: 1e6, AuxW: 0.3})
	if err := st.Validate(); err != nil {
		t.Fatalf("storm spec invalid: %v", err)
	}
	if !st.Background || !st.Loop {
		t.Fatal("storm must be a looping background spec")
	}
}

// TestSummarize: counts add up and the arrival curve has full mass.
func TestSummarize(t *testing.T) {
	s := richSpec()
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Summarize(g)
	for _, rows := range [][]CountRow{sum.Cohorts, sum.Apps, sum.Loads} {
		n := 0
		for _, r := range rows {
			n += r.Count
		}
		if n != len(g.Sessions) {
			t.Errorf("count rows sum to %d, want %d", n, len(g.Sessions))
		}
	}
	arr := 0
	for _, p := range sum.ArrivalCurve {
		arr += p.Arrivals
	}
	if arr != len(g.Sessions) {
		t.Errorf("arrival curve holds %d sessions, want %d", arr, len(g.Sessions))
	}
}

// TestCompileRejectsUnresolvedTraces: declared but unresolved traces
// are a compile-time error, not a mid-generation surprise.
func TestCompileRejectsUnresolvedTraces(t *testing.T) {
	s := richSpec()
	s.TraceWorkloads = nil
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "not resolved") {
		t.Fatalf("got %v, want unresolved-trace error", err)
	}
}

// TestChainDurations: a chain session's RunFor equals the sum of its
// phase durations (every synthesized phase is duration-bounded).
func TestChainDurations(t *testing.T) {
	s := richSpec()
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Sessions {
		app := g.Sessions[i].App
		if !strings.HasPrefix(app.Name, "chain:") {
			continue
		}
		var total time.Duration
		for _, p := range app.Phases {
			if p.Duration <= 0 {
				t.Fatalf("session %d: chain phase %q has no duration bound", i, p.Name)
			}
			total += p.Duration
		}
		if total != app.RunFor {
			t.Fatalf("session %d: phases sum to %v, RunFor %v", i, total, app.RunFor)
		}
	}
}
