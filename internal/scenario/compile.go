package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"aspeo/internal/experiment"
	"aspeo/internal/par"
	"aspeo/internal/workload"
)

// arrivalSalt keys the arrival master stream; far outside the
// per-session index range so the streams never collide.
const arrivalSalt = 1<<30 + 41

// Session is one compiled session: a concrete, self-contained run
// description. Every field is plain data (the workload specs are owned
// clones), so a Generated stream marshals to JSON deterministically —
// the bit-reproducibility contract is checked on these bytes.
type Session struct {
	// Index is the session's position in the arrival order.
	Index int `json:"index"`
	// ArrivalS is the session's arrival time, seconds from scenario
	// start.
	ArrivalS float64 `json:"arrival_s"`
	// Cohort names the cohort the session was drawn into.
	Cohort string `json:"cohort"`
	// Seed drives the session's whole stochastic state.
	Seed int64 `json:"seed"`
	// App is the synthesized foreground workload (owned by this
	// session; never aliased).
	App *workload.Spec `json:"app"`
	// ExtraBackground carries ambient scenario tasks (ad storms).
	ExtraBackground []*workload.Spec `json:"extra_background,omitempty"`

	// Run conditions, mirroring experiment.SessionSpec.
	Load        string  `json:"load"`
	Controller  bool    `json:"controller,omitempty"`
	CPUOnly     bool    `json:"cpu_only,omitempty"`
	Governor    string  `json:"governor,omitempty"`
	TargetGIPS  float64 `json:"target_gips,omitempty"`
	Quick       bool    `json:"quick,omitempty"`
	Engine      string  `json:"engine,omitempty"`
	Faults      string  `json:"faults,omitempty"`
	RunForS     float64 `json:"run_for_s,omitempty"`
	MaxRestarts int     `json:"max_restarts,omitempty"`

	// StormPeriodS/StormBurstS carry the cohort's ad-storm phase so the
	// fleet telemetry pipeline can tag storm-active cycles without
	// reverse-engineering the background workload.
	StormPeriodS float64 `json:"storm_period_s,omitempty"`
	StormBurstS  float64 `json:"storm_burst_s,omitempty"`
}

// SessionSpec converts the compiled session into the experiment layer's
// run description.
func (g *Session) SessionSpec() experiment.SessionSpec {
	return experiment.SessionSpec{
		App:             g.App.Name,
		AppSpec:         g.App,
		ExtraBackground: g.ExtraBackground,
		Load:            g.Load,
		Governor:        g.Governor,
		Controller:      g.Controller,
		CPUOnly:         g.CPUOnly,
		TargetGIPS:      g.TargetGIPS,
		Quick:           g.Quick,
		Seed:            g.Seed,
		Engine:          g.Engine,
		Faults:          g.Faults,
		RunFor:          time.Duration(g.RunForS * float64(time.Second)),
	}
}

// Generated is a compiled scenario: the concrete session stream.
type Generated struct {
	Name     string    `json:"name"`
	Seed     int64     `json:"seed"`
	Sessions []Session `json:"sessions"`
}

// Compile compiles the spec with its own seed. See CompileSeed.
func (s *Spec) Compile() (*Generated, error) { return s.CompileSeed(s.Seed) }

// CompileSeed turns the spec into its concrete session stream — a pure
// function of (spec, seed), byte-identical at any worker count. Arrival
// times are drawn first from one sequential master stream; every
// per-session decision then derives from an rng keyed by mix(seed,
// index), so the parallel synthesis stage is order-independent.
//
// Trace references must be resolved (LoadFile does; programmatic
// callers populate TraceWorkloads or call ResolveTraces).
func (s *Spec) CompileSeed(seed int64) (*Generated, error) {
	return s.compile(seed, 0)
}

// compile is CompileSeed with an explicit worker bound (the determinism
// property tests pin it; 0 means GOMAXPROCS).
func (s *Spec) compile(seed int64, workers int) (*Generated, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	for name := range s.Traces {
		if s.TraceWorkloads[name] == nil {
			return nil, fmt.Errorf("scenario %q: trace %q declared but not resolved (use LoadFile or ResolveTraces)", s.Name, name)
		}
	}

	arrivals := s.arrivalTimes(rand.New(rand.NewSource(mix(seed, arrivalSalt))))

	g := &Generated{Name: s.Name, Seed: seed, Sessions: make([]Session, s.Sessions)}
	err := par.ForEach(context.Background(), workers, s.Sessions, func(_ context.Context, i int) error {
		sess, err := s.synthSession(i, seed, arrivals[i])
		if err != nil {
			return err
		}
		g.Sessions[i] = sess
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return g, nil
}

// synthSession generates session i from its own rng stream.
func (s *Spec) synthSession(i int, seed int64, arrival float64) (Session, error) {
	rng := rand.New(rand.NewSource(mix(seed, i)))

	c := s.pickCohort(rng)
	load := "BL"
	if len(c.Loads) > 0 {
		load = pickWeighted(rng, c.Loads)
	}
	app, err := s.synthApp(c, rng)
	if err != nil {
		return Session{}, fmt.Errorf("session %d (cohort %s): %w", i, c.Name, err)
	}

	sess := Session{
		Index:       i,
		ArrivalS:    arrival,
		Cohort:      c.Name,
		Seed:        mix(seed, i) ^ 0x5e55_10, // decision stream and sim seed decoupled
		App:         app,
		Load:        strings.ToUpper(load),
		Controller:  c.Controller,
		CPUOnly:     c.CPUOnly,
		Governor:    c.Governor,
		TargetGIPS:  c.TargetGIPS,
		Quick:       c.Quick,
		Engine:      c.Engine,
		Faults:      c.Faults,
		RunForS:     c.RunForS,
		MaxRestarts: c.MaxRestarts,
	}
	if !sess.Controller && sess.Governor == "" {
		sess.Governor = "interactive"
	}
	if st := c.AdStorm; st != nil {
		sess.ExtraBackground = append(sess.ExtraBackground, adStormSpec(st))
		sess.StormPeriodS = st.PeriodS
		sess.StormBurstS = st.BurstS
	}
	return sess, nil
}

// pickCohort draws a cohort by weight from the session's rng.
func (s *Spec) pickCohort(rng *rand.Rand) *Cohort {
	total := 0.0
	for i := range s.Cohorts {
		total += s.Cohorts[i].Weight
	}
	x := rng.Float64() * total
	for i := range s.Cohorts {
		x -= s.Cohorts[i].Weight
		if x < 0 {
			return &s.Cohorts[i]
		}
	}
	return &s.Cohorts[len(s.Cohorts)-1]
}
