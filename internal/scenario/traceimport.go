package scenario

import (
	"fmt"
	"math"
	"time"

	"aspeo/internal/perfmodel"
	"aspeo/internal/trace"
	"aspeo/internal/workload"
)

// Trace-import tuning.
const (
	// importWindow is the demand-extraction granularity: each window of
	// trace time becomes (at most) one paced phase.
	importWindow = time.Second
	// importMergeTol merges adjacent windows whose demand differs by
	// less than this relative fraction, so a steady playback trace
	// becomes one long phase, not 300 one-second phases.
	importMergeTol = 0.05
	// importMinGIPS floors each window's demand. A recorded idle window
	// still becomes a valid paced phase (Validate requires positive
	// demand) at a rate too small to matter energetically.
	importMinGIPS = 1e-3
)

// importTraits is the neutral architectural profile assigned to
// trace-imported phases. A trace records what the app achieved, not why
// — the CPI/BPI decomposition is unobservable from (t, GIPS) pairs — so
// imports use a mid-road compute profile; the replayed quantity is the
// demand timeline, which IS observable.
var importTraits = perfmodel.Traits{CPI: 2.0, BPI: 1.0, Par: 1.0, Overlap: 0.05}

// importFreqIdxs is the profile ladder for trace imports: alternate
// indices across the full range, the generated-workload compromise
// between table fidelity and profiling cost.
var importFreqIdxs = []int{0, 2, 4, 6, 8, 10, 12, 14, 16}

// ImportTrace converts a recorded run (aspeo-run -record, read with
// trace.ReadJSON) into a runnable workload: the observed performance
// timeline becomes a sequence of paced phases reproducing the recorded
// demand envelope. The import is deterministic — no rng — so the same
// trace always yields the byte-identical spec.
//
// Demand per window prefers the cumulative instruction counter
// (full-rate recordings carry it; deltas are exact) and falls back to
// averaging the instantaneous GIPS samples for decimated or legacy
// traces.
func ImportTrace(name string, pts []trace.Point) (*workload.Spec, error) {
	if name == "" {
		return nil, fmt.Errorf("scenario: trace import needs a name")
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("scenario: trace %q: %d points, want >= 2", name, len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("scenario: trace %q: non-monotonic time at point %d", name, i)
		}
	}
	total := pts[len(pts)-1].T - pts[0].T
	if total < importWindow {
		return nil, fmt.Errorf("scenario: trace %q: %v of data, want >= %v", name, total, importWindow)
	}

	demands := windowDemands(pts)
	phases := make([]workload.Phase, 0, len(demands))
	for _, g := range demands {
		if g < importMinGIPS {
			g = importMinGIPS
		}
		n := len(phases)
		if n > 0 && relDiff(phases[n-1].DemandGIPS, g) < importMergeTol {
			// Extend the previous phase at its demand: the window is
			// statistically the same load level.
			phases[n-1].Duration += importWindow
			continue
		}
		phases = append(phases, workload.Phase{
			Name:       fmt.Sprintf("seg%d", n),
			Kind:       workload.Paced,
			Traits:     importTraits,
			Duration:   importWindow,
			DemandGIPS: g,
		})
	}

	spec := &workload.Spec{
		Name:   "trace:" + name,
		Phases: phases,
		// One pass replays the recording; looping replays it again for
		// sessions longer than the trace.
		Loop:            true,
		RunFor:          time.Duration(len(demands)) * importWindow,
		ProfileFreqIdxs: append([]int(nil), importFreqIdxs...),
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: trace %q: imported spec invalid: %w", name, err)
	}
	return spec, nil
}

// windowDemands slices the trace into importWindow buckets and returns
// the mean demand (GIPS) of each.
func windowDemands(pts []trace.Point) []float64 {
	t0 := pts[0].T
	nWin := int((pts[len(pts)-1].T - t0) / importWindow)
	if nWin < 1 {
		nWin = 1
	}
	useCum := pts[len(pts)-1].CumInstr > pts[0].CumInstr

	demands := make([]float64, 0, nWin)
	lo := 0
	for w := 0; w < nWin; w++ {
		end := t0 + time.Duration(w+1)*importWindow
		hi := lo
		for hi < len(pts)-1 && pts[hi+1].T <= end {
			hi++
		}
		if hi == lo {
			// Sparse decimation left this window empty; carry the last
			// sample's level forward.
			demands = append(demands, pts[lo].GIPS)
			continue
		}
		var g float64
		if useCum {
			dt := (pts[hi].T - pts[lo].T).Seconds()
			g = (pts[hi].CumInstr - pts[lo].CumInstr) / dt / 1e9
		} else {
			sum := 0.0
			for i := lo + 1; i <= hi; i++ {
				sum += pts[i].GIPS
			}
			g = sum / float64(hi-lo)
		}
		demands = append(demands, g)
		lo = hi
	}
	return demands
}

// relDiff is the relative difference of two non-negative levels.
func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}
