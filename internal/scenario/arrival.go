package scenario

import (
	"math"
	"math/rand"
	"sort"
)

// curveFloor is the minimum value of the load-curve factor. Validation
// bounds the amplitude sum at 0.95, so a valid spec never reaches the
// floor; it exists as numerical insurance for the rejection sampler.
const curveFloor = 0.05

// curveFactor evaluates the load curve's intensity multiplier at time t
// (seconds): 1 plus the sum of the sinusoidal terms.
func (s *Spec) curveFactor(t float64) float64 {
	f := 1.0
	for _, ct := range s.LoadCurve {
		f += ct.Amplitude * math.Sin(2*math.Pi*(t/ct.PeriodS+ct.Phase))
	}
	if f < curveFloor {
		f = curveFloor
	}
	return f
}

// curveMax is an upper bound on curveFactor over all t.
func (s *Spec) curveMax() float64 {
	m := 1.0
	for _, ct := range s.LoadCurve {
		m += math.Abs(ct.Amplitude)
	}
	return m
}

// arrivalTimes generates the sorted arrival times (seconds in
// [0, horizon)) of all sessions. The fixed process is fully
// deterministic; the stochastic processes draw sequentially from rng —
// arrival order is inherently a sequence, so this stage is the
// compiler's one sequential phase.
func (s *Spec) arrivalTimes(rng *rand.Rand) []float64 {
	switch s.Arrival.Process {
	case ProcessPoisson:
		return s.sampleArrivals(rng, func(t float64) float64 { return s.curveFactor(t) }, s.curveMax())
	case ProcessBursty:
		return s.burstyArrivals(rng)
	default: // ProcessFixed and ""
		return s.fixedArrivals()
	}
}

// fixedArrivals spaces the population deterministically so the local
// arrival density follows the load curve exactly: session i arrives
// where the cumulative curve mass reaches (i+½)/N of the total —
// time-warped even spacing, zero variance.
func (s *Spec) fixedArrivals() []float64 {
	h := s.horizon()
	// Trapezoidal cumulative integral of the curve on a fine grid; the
	// grid resolution only has to resolve the shortest curve period.
	const grid = 4096
	cum := make([]float64, grid+1)
	dt := h / grid
	for k := 1; k <= grid; k++ {
		a := s.curveFactor(float64(k-1) * dt)
		b := s.curveFactor(float64(k) * dt)
		cum[k] = cum[k-1] + (a+b)/2*dt
	}
	total := cum[grid]

	out := make([]float64, s.Sessions)
	k := 0
	for i := range out {
		target := (float64(i) + 0.5) / float64(s.Sessions) * total
		for k < grid && cum[k+1] < target {
			k++
		}
		// Linear inversion within grid cell k.
		span := cum[k+1] - cum[k]
		frac := 0.0
		if span > 0 {
			frac = (target - cum[k]) / span
		}
		out[i] = (float64(k) + frac) * dt
	}
	return out
}

// sampleArrivals draws the population i.i.d. from the density
// proportional to rate(t) on [0, horizon) by rejection against the
// bound, then sorts — conditioned on the population size, an
// inhomogeneous Poisson process's arrival times are exactly such an
// i.i.d. sample.
func (s *Spec) sampleArrivals(rng *rand.Rand, rate func(float64) float64, bound float64) []float64 {
	h := s.horizon()
	out := make([]float64, s.Sessions)
	for i := range out {
		for {
			t := rng.Float64() * h
			if rng.Float64()*bound <= rate(t) {
				out[i] = t
				break
			}
		}
	}
	sort.Float64s(out)
	return out
}

// burstyArrivals modulates the curve with a two-state Markov burst/calm
// process (an MMPP): the burst timeline is drawn first from exponential
// dwells, then the population is sampled against the combined rate.
func (s *Spec) burstyArrivals(rng *rand.Rand) []float64 {
	h := s.horizon()
	// Alternating calm/burst interval boundaries covering [0, h]. bounds
	// holds the switch times; the state starting at bounds[k] is burst
	// when k is odd (the timeline starts calm).
	bounds := []float64{0}
	t := 0.0
	for t < h {
		mean := s.Arrival.MeanCalmS
		if len(bounds)%2 == 0 { // next interval is burst
			mean = s.Arrival.MeanBurstS
		}
		t += rng.ExpFloat64() * mean
		bounds = append(bounds, t)
	}
	burstAt := func(t float64) bool {
		k := sort.SearchFloat64s(bounds, t)
		// t falls in the interval starting at bounds[k-1]; that interval
		// is burst when k-1 is odd.
		return (k-1)%2 == 1
	}
	rate := func(t float64) float64 {
		f := s.curveFactor(t)
		if burstAt(t) {
			f *= s.Arrival.BurstFactor
		}
		return f
	}
	return s.sampleArrivals(rng, rate, s.curveMax()*s.Arrival.BurstFactor)
}
