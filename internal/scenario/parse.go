package scenario

import (
	"fmt"
	"os"
	"path/filepath"

	"aspeo/internal/jsonx"
	"aspeo/internal/trace"
	"aspeo/internal/workload"
)

// Parse decodes a JSON scenario spec strictly — unknown fields, type
// mismatches and trailing garbage are errors carrying the offending
// field path — and validates it. Trace references are validated but not
// resolved; use LoadFile (which resolves paths against the spec file's
// directory) or ResolveTraces.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := jsonx.UnmarshalStrict(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// LoadFile reads, parses and fully resolves a scenario spec: relative
// trace paths resolve against the spec file's directory, and every
// declared trace is imported into a runnable workload.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.ResolveTraces(filepath.Dir(path)); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ResolveTraces imports every declared trace file into TraceWorkloads.
// Relative paths resolve against dir ("" = the working directory).
// Already-resolved names (programmatically populated TraceWorkloads)
// are kept.
func (s *Spec) ResolveTraces(dir string) error {
	for name, p := range s.Traces {
		if s.TraceWorkloads[name] != nil {
			continue
		}
		if !filepath.IsAbs(p) && dir != "" {
			p = filepath.Join(dir, p)
		}
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("traces[%s]: %w", name, err)
		}
		pts, err := trace.ReadJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("traces[%s]: %w", name, err)
		}
		w, err := ImportTrace(name, pts)
		if err != nil {
			return fmt.Errorf("traces[%s]: %w", name, err)
		}
		if s.TraceWorkloads == nil {
			s.TraceWorkloads = map[string]*workload.Spec{}
		}
		s.TraceWorkloads[name] = w
	}
	return nil
}
