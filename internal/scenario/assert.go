package scenario

import (
	"fmt"
	"sort"

	"aspeo/internal/obs/pipeline"
)

// Assertion is one scenario-level acceptance check, evaluated against
// the final telemetry rollup once the population lands: "the population
// (or one cohort) must satisfy metric OP value". A spec carries its own
// pass/fail contract, so a scenario is a runnable regression test.
type Assertion struct {
	// Metric names the rollup quantity; see assertionMetrics.
	Metric string `json:"metric"`
	// Cohort scopes the metric to one cohort; empty means the whole
	// population. Population-only metrics reject a cohort scope.
	Cohort string `json:"cohort,omitempty"`
	// Op is the comparison: >=, <=, >, <, == or !=.
	Op string `json:"op"`
	// Value is the right-hand side.
	Value float64 `json:"value"`
}

// assertionMetric resolves one metric from a rollup; cohortOK marks
// metrics that may be scoped to a cohort.
type assertionMetric struct {
	cohortOK bool
	pop      func(r *pipeline.Rollup) float64
	cohort   func(c *pipeline.CohortStats) float64
}

var assertionMetrics = map[string]assertionMetric{
	"cycles": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return float64(r.Cycles) },
		cohort: func(c *pipeline.CohortStats) float64 { return float64(c.Cycles) }},
	"sessions": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return float64(r.Sessions) },
		cohort: func(c *pipeline.CohortStats) float64 { return float64(c.Sessions) }},
	"finished": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return float64(r.Totals.Finished) },
		cohort: func(c *pipeline.CohortStats) float64 { return float64(c.Finished) }},
	"mean_gips": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return r.GIPS.Mean() },
		cohort: func(c *pipeline.CohortStats) float64 { return c.MeanGIPS }},
	"mean_power_w": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return r.Power.Mean() },
		cohort: func(c *pipeline.CohortStats) float64 { return c.MeanPowerW }},
	"mean_power_mw": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return 1000 * r.Power.Mean() },
		cohort: func(c *pipeline.CohortStats) float64 { return 1000 * c.MeanPowerW }},
	"mean_slack_pct": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return r.Slack.Mean() },
		cohort: func(c *pipeline.CohortStats) float64 { return c.MeanSlackPct }},
	"p50_slack_pct": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return r.Slack.Dist().Quantile(0.50) },
		cohort: func(c *pipeline.CohortStats) float64 { return c.P50SlackPct }},
	"p95_slack_pct": {cohortOK: true,
		pop:    func(r *pipeline.Rollup) float64 { return r.Slack.Dist().Quantile(0.95) },
		cohort: func(c *pipeline.CohortStats) float64 { return c.P95SlackPct }},
	"energy_j":    {pop: func(r *pipeline.Rollup) float64 { return r.Totals.EnergyJ }},
	"sim_seconds": {pop: func(r *pipeline.Rollup) float64 { return r.Totals.SimSeconds }},
	"mean_abs_err_gips": {
		pop: func(r *pipeline.Rollup) float64 { return r.Totals.MeanAbsErrGIPS }},
	"brownouts": {pop: func(r *pipeline.Rollup) float64 {
		if r.Saturation == nil {
			return 0
		}
		return float64(len(r.Saturation.Brownouts))
	}},
	"brownout_max_depth": {pop: func(r *pipeline.Rollup) float64 {
		if r.Saturation == nil {
			return 0
		}
		return r.Saturation.WorstDepth
	}},
}

// assertionMetricNames lists the known metrics, sorted, for error text.
func assertionMetricNames() []string {
	names := make([]string, 0, len(assertionMetrics))
	for n := range assertionMetrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var assertionOps = map[string]func(a, b float64) bool{
	">=": func(a, b float64) bool { return a >= b },
	"<=": func(a, b float64) bool { return a <= b },
	">":  func(a, b float64) bool { return a > b },
	"<":  func(a, b float64) bool { return a < b },
	"==": func(a, b float64) bool { return a == b },
	"!=": func(a, b float64) bool { return a != b },
}

// validate checks one assertion against the spec's cohort list; the
// caller wraps the error with its field path.
func (a Assertion) validate(s *Spec) error {
	m, ok := assertionMetrics[a.Metric]
	if !ok {
		return fmt.Errorf("metric: unknown metric %q (want one of: %v)", a.Metric, assertionMetricNames())
	}
	if a.Cohort != "" {
		if !m.cohortOK {
			return fmt.Errorf("cohort: metric %q is population-only", a.Metric)
		}
		found := false
		for i := range s.Cohorts {
			if s.Cohorts[i].Name == a.Cohort {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cohort: unknown cohort %q", a.Cohort)
		}
	}
	if _, ok := assertionOps[a.Op]; !ok {
		return fmt.Errorf("op: unknown op %q (want >=, <=, >, <, == or !=)", a.Op)
	}
	if !finite(a.Value) {
		return fmt.Errorf("value: %v, want finite", a.Value)
	}
	return nil
}

// Evaluate checks every assertion against the rollup and returns one
// error per failed assertion, each carrying its field path
// ("assertions[2]: cohort game mean_power_mw = 2150.3, want <= 2000").
// A validated spec never hits the unknown-metric path here.
func (s *Spec) Evaluate(r *pipeline.Rollup) []error {
	if r == nil {
		if len(s.Assertions) == 0 {
			return nil
		}
		return []error{fmt.Errorf("assertions: no telemetry rollup to evaluate against")}
	}
	var errs []error
	for i, a := range s.Assertions {
		m, ok := assertionMetrics[a.Metric]
		if !ok {
			errs = append(errs, fmt.Errorf("assertions[%d].metric: unknown metric %q", i, a.Metric))
			continue
		}
		var got float64
		scope := "population"
		if a.Cohort != "" {
			scope = "cohort " + a.Cohort
			c := r.Cohort(a.Cohort)
			if c == nil {
				errs = append(errs, fmt.Errorf("assertions[%d]: cohort %q absent from the rollup", i, a.Cohort))
				continue
			}
			got = m.cohort(c)
		} else {
			got = m.pop(r)
		}
		if !assertionOps[a.Op](got, a.Value) {
			errs = append(errs, fmt.Errorf("assertions[%d]: %s %s = %g, want %s %g",
				i, scope, a.Metric, got, a.Op, a.Value))
		}
	}
	return errs
}
