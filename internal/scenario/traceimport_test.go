package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aspeo/internal/experiment"
	"aspeo/internal/sim"
	"aspeo/internal/trace"
	"aspeo/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticTracePoints builds a small two-level trace: ~3s around 0.4
// GIPS, then ~3s around 1.2 GIPS, sampled every 100ms with exact
// cumulative counters.
func syntheticTracePoints() []trace.Point {
	var pts []trace.Point
	cum := 0.0
	for i := 0; i <= 60; i++ {
		t := time.Duration(i) * 100 * time.Millisecond
		g := 0.4
		if i >= 30 {
			g = 1.2
		}
		pts = append(pts, trace.Point{T: t, GIPS: g, CumInstr: cum})
		cum += g * 1e9 * 0.1
	}
	return pts
}

func TestImportTraceMergesSteadyWindows(t *testing.T) {
	w, err := ImportTrace("short", syntheticTracePoints())
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "trace:short" {
		t.Errorf("name %q", w.Name)
	}
	// Two demand levels → two merged phases.
	if len(w.Phases) != 2 {
		t.Fatalf("got %d phases, want 2 (merged levels): %+v", len(w.Phases), w.Phases)
	}
	if w.Phases[0].DemandGIPS > w.Phases[1].DemandGIPS {
		t.Errorf("levels out of order: %v then %v", w.Phases[0].DemandGIPS, w.Phases[1].DemandGIPS)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("imported spec invalid: %v", err)
	}
}

func TestImportTraceDeterministic(t *testing.T) {
	w1, err := ImportTrace("a", syntheticTracePoints())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ImportTrace("a", syntheticTracePoints())
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(w1)
	b2, _ := json.Marshal(w2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same trace imported twice differs")
	}
}

func TestImportTraceRejectsGarbage(t *testing.T) {
	if _, err := ImportTrace("", syntheticTracePoints()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := ImportTrace("x", nil); err == nil {
		t.Error("empty trace accepted")
	}
	pts := syntheticTracePoints()
	pts[5].T = pts[4].T // non-monotonic
	if _, err := ImportTrace("x", pts); err == nil || !strings.Contains(err.Error(), "non-monotonic") {
		t.Errorf("non-monotonic trace: got %v", err)
	}
}

// TestRecordRoundTrip is the end-to-end golden: run a real session with
// full-rate recording (the aspeo-run -record path), import the trace as
// a workload, and run a scenario session generated from it. The
// imported spec is golden-checked byte for byte; regenerate with
// `go test ./internal/scenario -run RoundTrip -update`.
func TestRecordRoundTrip(t *testing.T) {
	// 1. Record: a short governor-mode run at full rate.
	sess, err := experiment.NewSession(experiment.SessionSpec{
		App: "spotify", Load: "BL", Governor: "interactive",
		Seed: 7, RunFor: 5 * time.Second, TraceEvery: sim.DefaultStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Run(nil)
	var buf bytes.Buffer
	if err := sess.Harness.Phone.Recorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// 2. Import: the recorded JSON becomes a runnable workload.
	pts, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ImportTrace("recorded", pts)
	if err != nil {
		t.Fatal(err)
	}

	got, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "import_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("imported spec differs from golden (run with -update after intended changes)\ngot:  %d bytes\nwant: %d bytes", len(got), len(want))
	}

	// 3. Run: a scenario over the imported trace generates sessions the
	// experiment layer accepts and completes.
	sc := &Spec{
		Name: "replay", Seed: 3, Sessions: 2, HorizonS: 60,
		Cohorts:        []Cohort{{Name: "r", Weight: 1, Apps: []string{"trace:recorded"}, RunForS: 2}},
		TraceWorkloads: map[string]*workload.Spec{"recorded": w},
	}
	g, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	run, err := experiment.NewSession(g.Sessions[0].SessionSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := run.Run(nil)
	if st.Duration <= 0 {
		t.Fatalf("replayed session did not run: %+v", st)
	}
}
